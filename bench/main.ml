(* Benchmark harness reproducing the paper's evaluation.

   Usage:
     bench/main.exe                 -- run every reproduction experiment
     bench/main.exe table1          -- Table 1 (the paper's only table)
     bench/main.exe fig_bandwidth   -- §5 claim: low bandwidth degrades MII
     bench/main.exe fig_scaling     -- §7 claim: flat ICA vs HCA state space
     bench/main.exe fig_rcp         -- Fig. 1: feasible topology on the RCP ring
     bench/main.exe fig_mapper      -- Fig. 9: broadcast merge + copy balancing
     bench/main.exe baselines       -- HCA vs unified / random / Chu partitioning
     bench/main.exe optgap          -- HCA vs the exact SAT oracle (lib/exact)
     bench/main.exe sched           -- modulo scheduling on top of HCA (future work)
     bench/main.exe ablation        -- design-choice ablations (DESIGN.md §6)
     bench/main.exe bechamel        -- wall-clock micro benchmarks (Bechamel)

   The global flag --json switches the per-kernel experiments (table1,
   fig_scaling, extended, optgap) to newline-delimited JSON records on
   stdout — one object per kernel with at least "kernel", "final_mii",
   "copies" and "runtime_s" — so the bench trajectory can be tracked
   across PRs by machines instead of eyeballs.

   The global flag --profile turns the lib/obs tracer on around each
   kernel of those experiments and appends per-phase wall-clock columns
   (phase_probe_s, phase_see_s, phase_mapper_s, phase_router_s,
   phase_oracle_s, spec_applies) to every JSON row; kernel-axis
   parallelism drops to 1 so the attribution window brackets exactly one
   kernel.  Every row also carries "config_hash" and "git" so results
   can be tied back to the code state that produced them.

   The global flag --telemetry arms the production observability stack
   (the lib/obs flight-recorder ring, exactly what `hca serve` runs
   with) around the experiments WITHOUT renaming them — rows stay
   comparable row-for-row with a plain run, which is how CI's
   telemetry-overhead gate measures the cost of leaving the recorder
   on: same experiment/kernel keys, bit-identical quality fields, only
   runtime_s may move (and bench_guard --overhead-budget bounds by how
   much).

   The global flag --jobs N (default: Domain.recommended_domain_count)
   sizes the domain pool: table1 fans out the portfolio configurations,
   fig_scaling/extended fan out over kernels, and optgap probes oracle
   MII bounds concurrently.  Results are emitted in the sequential
   order and are identical at every N; only the wall clock changes.

   Absolute numbers are NOT expected to match the paper (the substrate
   is a reconstruction); the shapes — who is legal, who degrades, where
   the bounds sit — are the reproduction target. *)

open Hca_ddg
open Hca_machine
open Hca_core

let reference = Dspfabric.reference

let json_mode = ref false

let profile_mode = ref false

let telemetry_mode = ref false

let jobs = ref (Hca_util.Domain_pool.default_jobs ())

(* optgap knobs for the CI smoke lane: override the per-kernel oracle
   budget and skip kernels above a size cap. *)
let oracle_budget = ref None

let max_n = ref None

let heading title = if not !json_mode then Printf.printf "\n=== %s ===\n%!" title

let jstr_of s = Printf.sprintf "%S" s

(* Run-identification echo: every NDJSON row carries the configuration
   fingerprint and the git state it was produced under, so BENCH_*.json
   rows and trace files can be correlated after the fact. *)
let stamp_fields =
  lazy
    [
      ( "config_hash",
        (* [Dspfabric.id], not [name]: the name elides fan-outs and
           port counts, so two different machines could stamp alike. *)
        jstr_of
          (Hca_util.Stamp.hash (Config.default, Dspfabric.id reference)) );
      ("git", jstr_of (Hca_util.Stamp.git_describe ()));
    ]

(* One NDJSON record.  Values arrive already JSON-encoded (use the j*
   helpers); OCaml's %S escaping is JSON-compatible for the plain ASCII
   names used here. *)
let emit_json ~experiment ~kernel fields =
  Printf.printf "{\"experiment\":%S,\"kernel\":%S%s}\n%!" experiment kernel
    (String.concat ""
       (List.map
          (fun (k, v) -> Printf.sprintf ",%S:%s" k v)
          (fields @ Lazy.force stamp_fields)))

let jint = string_of_int

let jopt_int = function Some i -> string_of_int i | None -> "null"

let jfloat = Printf.sprintf "%.6f"

let jstr = Printf.sprintf "%S"

let jbool = string_of_bool

(* Allocation-churn columns, appended to every NDJSON row built from a
   [Report.t]: the flat-layout work is judged on these as much as on the
   wall clock.  Meaningful at [--jobs 1] (the counters are per-domain). *)
let alloc_fields (r : Report.t) =
  [
    ("alloc_mb", jfloat r.Report.alloc_mb);
    ("minor_gcs", jint r.Report.minor_gcs);
  ]

let left h = (h, Hca_util.Tabular.Left)

let right h = (h, Hca_util.Tabular.Right)

(* Per-kernel phase attribution under --profile: reset the tracer, run
   one kernel's work, and summarise what accumulated.  The window
   brackets a single kernel, so any inner parallelism (the portfolio or
   oracle fan-out) is fully contained in it and every domain's buffer
   merges into the same summary.  Experiments that fan out over kernels
   must iterate them sequentially in profile mode for the attribution to
   hold — they drop to [~jobs:1] on the kernel axis when profiling. *)
let profiled f =
  if not !profile_mode then (f (), [])
  else begin
    Hca_obs.Obs.reset ();
    Hca_obs.Obs.enable ();
    let v = Fun.protect ~finally:Hca_obs.Obs.disable f in
    let s = Hca_obs.Obs.Summary.collect () in
    let phase col name = (col, jfloat (Hca_obs.Obs.Summary.phase_s s name)) in
    ( v,
      [
        phase "phase_probe_s" "report.probe";
        phase "phase_see_s" "see.solve";
        phase "phase_mapper_s" "mapper.map";
        phase "phase_router_s" "router.route";
        phase "phase_oracle_s" "oracle.run";
        ( "spec_applies",
          jint (Hca_obs.Obs.Summary.counter s "state.spec_apply") );
      ] )
  end

(* ------------------------------------------------------------------ *)
(* Table 1: HCA test on four multimedia application loops.             *)
(* ------------------------------------------------------------------ *)

let table1 () =
  heading "Table 1: HCA on four multimedia loops (N=M=K=8, 64 CNs)";
  let t =
    Hca_util.Tabular.create
      [
        left "Loop"; right "N_Instr"; right "MIIRec"; right "MIIRes";
        left "Legal"; right "Final MII"; right "Portfolio"; right "Optimum";
        right "Paper final";
      ]
  in
  let paper_final = [ 3; 3; 8; 6 ] in
  List.iter2
    (fun (name, f) paper ->
      let ddg = f () in
      (* One portfolio sweep per kernel: the "default" entry doubles as
         the plain [Report.run] row, so the default configuration is
         searched once, not twice. *)
      let reports, phases =
        profiled (fun () -> Portfolio.run_all ~jobs:!jobs reference ddg)
      in
      let r = List.assoc "default" reports in
      let best, _ = Portfolio.best_of reports in
      let optimum = Hca_baseline.Unified.mii ddg reference in
      if !json_mode then
        emit_json ~experiment:"table1" ~kernel:name
          ([
             ("n_instr", jint r.Report.n_instr);
             ("legal", jbool r.Report.legal);
             ("final_mii", jopt_int r.Report.final_mii);
             ("portfolio_mii", jopt_int best.Report.final_mii);
             ("unified_mii", jint optimum);
             ("copies", jint r.Report.copies);
             ("runtime_s", jfloat r.Report.runtime_s);
             ("cache_hits", jint r.Report.cache_hits);
             ("cache_misses", jint r.Report.cache_misses);
             ("reused_subproblems", jint r.Report.reused_subproblems);
           ]
          @ alloc_fields r @ phases)
      else
        Hca_util.Tabular.add_row t
          [
            name;
            string_of_int r.Report.n_instr;
            string_of_int r.Report.mii_rec;
            string_of_int r.Report.mii_res;
            (if r.Report.legal then "yes" else "no");
            (match r.Report.final_mii with Some m -> string_of_int m | None -> "-");
            (match best.Report.final_mii with
            | Some m when best.Report.legal -> string_of_int m
            | _ -> "-");
            string_of_int optimum;
            string_of_int paper;
          ])
    Hca_kernels.Registry.all paper_final;
  if not !json_mode then Hca_util.Tabular.print t

(* ------------------------------------------------------------------ *)
(* §5 bandwidth claim: sweep the MUX capacities.                       *)
(* ------------------------------------------------------------------ *)

let fig_bandwidth () =
  heading
    "Bandwidth sweep (§5): final MII as N=M=K shrinks ('-' = no legal \
     clusterization)";
  let widths = [ 16; 8; 4; 2; 1 ] in
  let t =
    Hca_util.Tabular.create
      (left "Loop" :: List.map (fun w -> right (Printf.sprintf "N=M=K=%d" w)) widths)
  in
  List.iter
    (fun (name, f) ->
      let cells =
        List.map
          (fun w ->
            let fabric = Dspfabric.make ~n:w ~m:w ~k:w () in
            let r = Report.run fabric (f ()) in
            match (r.Report.legal, r.Report.final_mii) with
            | true, Some m -> string_of_int m
            | _ -> "-")
          widths
      in
      Hca_util.Tabular.add_row t (name :: cells))
    Hca_kernels.Registry.all;
  Hca_util.Tabular.print t;
  Printf.printf
    "Expected shape: MII grows (or clusterization fails) as the wires thin \
     out.\n"

(* ------------------------------------------------------------------ *)
(* §7 scaling claim: flat ICA explodes, HCA cuts the state space.      *)
(* ------------------------------------------------------------------ *)

let fig_scaling () =
  heading "State-space scaling (§7): HCA vs flat K64 ICA";
  let t =
    Hca_util.Tabular.create
      [
        left "Loop"; right "HCA states"; right "HCA time(s)";
        right "Flat states"; right "Flat time(s)"; right "Flat MUX violations";
      ]
  in
  let rows =
    (* Independent kernels fan out; the row list comes back in registry
       order, so the table reads the same at every --jobs.  Profile mode
       walks the kernels sequentially so each [profiled] window captures
       exactly one kernel. *)
    Hca_util.Domain_pool.parallel_map
      ~jobs:(if !profile_mode then 1 else !jobs)
      (fun (name, f) ->
        let ddg = f () in
        let (hca, flat), phases =
          profiled (fun () ->
              let hca = Report.run reference ddg in
              let flat = Hca_baseline.Flat_ica.run reference ddg in
              (hca, flat))
        in
        (name, hca, flat, phases))
      Hca_kernels.Registry.all
  in
  List.iter
    (fun (name, hca, flat, phases) ->
      let violations =
        match flat.Hca_baseline.Flat_ica.outcome with
        | Some o ->
            Some (Hca_baseline.Flat_ica.hierarchy_violations reference o)
        | None -> None
      in
      if !json_mode then
        emit_json ~experiment:"fig_scaling" ~kernel:name
          ([
             ("final_mii", jopt_int hca.Report.final_mii);
             ("copies", jint hca.Report.copies);
             ("runtime_s", jfloat hca.Report.runtime_s);
             ("hca_states", jint hca.Report.explored_states);
             ("cache_hits", jint hca.Report.cache_hits);
             ("cache_misses", jint hca.Report.cache_misses);
             ("reused_subproblems", jint hca.Report.reused_subproblems);
             ("flat_states", jint flat.Hca_baseline.Flat_ica.explored);
             ("flat_runtime_s", jfloat flat.Hca_baseline.Flat_ica.runtime_s);
             ("flat_mux_violations", jopt_int violations);
           ]
          @ alloc_fields hca @ phases)
      else
        Hca_util.Tabular.add_row t
          [
            name;
            string_of_int hca.Report.explored_states;
            Printf.sprintf "%.3f" hca.Report.runtime_s;
            string_of_int flat.Hca_baseline.Flat_ica.explored;
            Printf.sprintf "%.3f" flat.Hca_baseline.Flat_ica.runtime_s;
            (match violations with Some v -> string_of_int v | None -> "failed");
          ])
    rows;
  if not !json_mode then begin
    Hca_util.Tabular.print t;
    Printf.printf
      "The flat view is also optimistic: its MUX-violation count shows how \
       often\nthe 'legal' flat result could not actually be configured on the \
       fabric.\n"
  end

(* ------------------------------------------------------------------ *)
(* Fig. 1: the RCP ring picks a feasible topology under K ports.        *)
(* ------------------------------------------------------------------ *)

let fig_rcp () =
  heading "RCP ring (Fig. 1): single-level assignment under the input-port limit";
  let t =
    Hca_util.Tabular.create
      [
        left "Kernel"; right "ports"; left "Feasible"; right "II used";
        right "copies"; right "max in-degree";
      ]
  in
  let kernels =
    [ ("fir2dim", Hca_kernels.Fir2dim.ddg); ("idcthor", Hca_kernels.Idcthor.ddg) ]
  in
  List.iter
    (fun (name, f) ->
      List.iter
        (fun ports ->
          let rcp = Rcp.make ~in_ports:ports () in
          let pg = Rcp.pattern_graph rcp in
          let ddg = f () in
          let problem = Problem.of_ddg ~name:(name ^ ".rcp") ~ddg ~pg () in
          let rec climb ii =
            if ii > 64 then None
            else
              match See.solve problem ~ii with
              | Ok o -> Some (ii, o)
              | Error _ -> climb (ii + 1)
          in
          match climb (Mii.rec_mii ddg) with
          | None ->
              Hca_util.Tabular.add_row t
                [ name; string_of_int ports; "no"; "-"; "-"; "-" ]
          | Some (ii, o) ->
              let flow = State.flow o.See.state in
              let max_in =
                List.fold_left
                  (fun acc (nd : Pattern_graph.node) ->
                    max acc
                      (List.length (Copy_flow.real_in_neighbors flow nd.id)))
                  0
                  (Pattern_graph.regular_nodes pg)
              in
              Hca_util.Tabular.add_row t
                [
                  name;
                  string_of_int ports;
                  "yes";
                  string_of_int ii;
                  string_of_int (Copy_flow.copy_count flow);
                  string_of_int max_in;
                ])
        [ 4; 2; 1 ])
    kernels;
  Hca_util.Tabular.print t;
  Printf.printf
    "The selected topology never uses more in-neighbours than the port \
     budget.\n"

(* ------------------------------------------------------------------ *)
(* Fig. 9: broadcast merging and copy balancing in the Mapper.          *)
(* ------------------------------------------------------------------ *)

let fig_mapper () =
  heading
    "Mapper policy (Fig. 9): broadcasts share one wire, spread mode balances \
     the rest";
  (* Rebuild the paper's worked example: cluster 0 produces x (broadcast
     to 1 and 2), z (broadcast to 2 and 3) and a, b, c all flowing to 1. *)
  let b = Ddg.Builder.create ~name:"fig9" () in
  let x = Ddg.Builder.add_instr b ~name:"x" Opcode.Add in
  let z = Ddg.Builder.add_instr b ~name:"z" Opcode.Add in
  let a = Ddg.Builder.add_instr b ~name:"a" Opcode.Add in
  let b' = Ddg.Builder.add_instr b ~name:"b" Opcode.Add in
  let c = Ddg.Builder.add_instr b ~name:"c" Opcode.Add in
  let consumer src =
    let u = Ddg.Builder.add_instr b Opcode.Mov in
    Ddg.Builder.add_dep b ~src ~dst:u;
    u
  in
  let ux1 = consumer x and ux2 = consumer x in
  let uz1 = consumer z and uz2 = consumer z in
  let ua = consumer a and ub = consumer b' and uc = consumer c in
  let ddg = Ddg.Builder.freeze b in
  let pg =
    Pattern_graph.complete ~name:"fig9"
      ~capacities:(Array.make 4 { Resource.alus = 8; ags = 8 })
      ~max_in:4
  in
  let problem = Problem.of_ddg ~name:"fig9" ~ddg ~pg () in
  let w = Cost.default_weights in
  let place node cluster st =
    Result.get_ok
      (State.try_assign st ~node ~cluster ~ii:8 ~target_ii:8 ~weights:w)
  in
  let st =
    State.create problem
    |> place x 0 |> place z 0 |> place a 0 |> place b' 0 |> place c 0
    |> place ux1 1 |> place ux2 2 |> place uz1 2 |> place uz2 3 |> place ua 1
    |> place ub 1 |> place uc 1
  in
  match
    Mapper.map ~consolidate:false ~problem ~state:st ~in_capacity:4
      ~out_capacity:4 ()
  with
  | Error e -> Printf.printf "mapper failed: %s\n" e
  | Ok res ->
      let model = res.Mapper.model in
      List.iter
        (fun wire ->
          Printf.printf "  wire %d of cluster 0 -> clusters [%s] carrying [%s]\n"
            wire
            (String.concat ","
               (List.map string_of_int (Machine_model.wire_sinks model wire)))
            (String.concat ","
               (List.map
                  (fun v -> (Ddg.instr ddg v).Instr.name)
                  (Machine_model.wire_values model wire))))
        (Machine_model.used_out_wires model 0);
      Printf.printf "  max wire load: %d\n" res.Mapper.max_wire_load

(* ------------------------------------------------------------------ *)
(* Baselines: HCA vs unified optimum vs random floor vs Chu partition. *)
(* ------------------------------------------------------------------ *)

let baselines () =
  heading "Baselines: projected/achieved MII and copies";
  let t =
    Hca_util.Tabular.create
      [
        left "Loop"; right "Unified opt"; right "HCA final"; right "HCA copies";
        right "Chu proj."; right "Chu copies"; right "Chu viol.";
        right "Random proj."; right "Random copies";
      ]
  in
  List.iter
    (fun (name, f) ->
      let ddg = f () in
      let opt = Hca_baseline.Unified.mii ddg reference in
      let hca = Report.run reference ddg in
      let ii = max 4 hca.Report.ii_used in
      let chu = Hca_baseline.Chu_partition.run reference ddg ~ii in
      let rand = Hca_baseline.Random_assign.run reference ddg ~ii in
      let cell = function Some s -> s | None -> "-" in
      Hca_util.Tabular.add_row t
        [
          name;
          string_of_int opt;
          cell (Option.map string_of_int hca.Report.final_mii);
          string_of_int hca.Report.copies;
          cell
            (Result.to_option chu
            |> Option.map (fun c ->
                   string_of_int c.Hca_baseline.Chu_partition.projected_mii));
          cell
            (Result.to_option chu
            |> Option.map (fun c ->
                   string_of_int c.Hca_baseline.Chu_partition.copies));
          cell
            (Result.to_option chu
            |> Option.map (fun c ->
                   string_of_int c.Hca_baseline.Chu_partition.violations));
          cell
            (Result.to_option rand
            |> Option.map (fun r ->
                   string_of_int r.Hca_baseline.Random_assign.projected_mii));
          cell
            (Result.to_option rand
            |> Option.map (fun r ->
                   string_of_int r.Hca_baseline.Random_assign.copies));
        ])
    Hca_kernels.Registry.all;
  Hca_util.Tabular.print t

(* ------------------------------------------------------------------ *)
(* Optimality gap: HCA vs the exact SAT oracle (lib/exact).             *)
(* ------------------------------------------------------------------ *)

let optgap () =
  heading
    "Optimality gap: HCA vs the exact SAT oracle on a scaled-down fabric \
     (8 CNs, N=M=K=4)";
  let fabric = Dspfabric.make ~fanouts:[| 2; 2; 2 |] ~n:4 ~m:4 ~k:4 () in
  let synthetic size seed =
    ( Printf.sprintf "syn%d" size,
      fun () ->
        Hca_kernels.Synthetic.generate
          {
            Hca_kernels.Synthetic.default with
            size;
            layers = 3;
            recurrences = 1;
            seed;
          } )
  in
  (* Small kernels the oracle can close; the Table-1 loops then show the
     graceful degradation to bounded-feasible under the time budget. *)
  let kernels =
    [ synthetic 10 1; synthetic 14 2; synthetic 18 3 ]
    @ Hca_kernels.Registry.all
  in
  let t =
    Hca_util.Tabular.create
      [
        left "Kernel"; right "N_Instr"; right "HCA final"; left "Oracle";
        right "Oracle MII"; right "Lower bound"; right "Gap <=";
        right "Probes"; right "Reused"; right "SAT time(s)";
      ]
  in
  let kernels =
    match !max_n with
    | None -> kernels
    | Some mx -> List.filter (fun (_, f) -> Ddg.size (f ()) <= mx) kernels
  in
  List.iter
    (fun (name, f) ->
      let ddg = f () in
      let n = Ddg.size ddg in
      let budget_s =
        match !oracle_budget with
        | Some b -> b
        | None -> if n <= 24 then 10. else 5.
      in
      let (hca, oracle), phases =
        profiled (fun () ->
            let hca = Report.run fabric ddg in
            (* Seed the oracle's downward walk with the heuristic's
               result: in relaxed mode the incumbent is feasible by
               construction, so the budget is spent tightening the
               bound, not rediscovering a model. *)
            let incumbent =
              if hca.Report.legal then hca.Report.final_mii else None
            in
            let oracle =
              Hca_exact.Oracle.run ~budget_s ?incumbent fabric ddg
            in
            (hca, oracle))
      in
      let gap =
        match (hca.Report.final_mii, hca.Report.legal) with
        | Some achieved, true ->
            (* Against the proven optimum when we have one, else against
               the certified lower bound — an upper bound on the gap. *)
            let denom =
              match (oracle.Hca_exact.Oracle.status, oracle.Hca_exact.Oracle.final_mii) with
              | Hca_exact.Oracle.Optimal, Some o -> Some o
              | _ -> Some oracle.Hca_exact.Oracle.lower_bound
            in
            Option.map
              (fun o -> Hca_baseline.Unified.optgap ~achieved ~oracle:o)
              denom
        | _ -> None
      in
      if !json_mode then
        emit_json ~experiment:"optgap" ~kernel:name
          ([
             ("n_instr", jint n);
             ("hca_final_mii", jopt_int hca.Report.final_mii);
             ("hca_legal", jbool hca.Report.legal);
             ("hca_cache_hits", jint hca.Report.cache_hits);
             ("status", jstr (Hca_exact.Oracle.status_to_string oracle.Hca_exact.Oracle.status));
             ("final_mii", jopt_int oracle.Hca_exact.Oracle.final_mii);
             ("lower_bound", jint oracle.Hca_exact.Oracle.lower_bound);
             ("copies", jint oracle.Hca_exact.Oracle.copies);
             ( "gap",
               match gap with Some g -> jfloat g | None -> "null" );
             ("sat_conflicts", jint oracle.Hca_exact.Oracle.explored);
             ("sat_propagations", jint oracle.Hca_exact.Oracle.propagations);
             ("sat_learnt", jint oracle.Hca_exact.Oracle.learnt_total);
             ("sat_reused_hits", jint oracle.Hca_exact.Oracle.reused_hits);
             ("sat_probes", jint (List.length oracle.Hca_exact.Oracle.probes));
             ("oracle_alloc_mb", jfloat oracle.Hca_exact.Oracle.alloc_mb);
             ("oracle_minor_gcs", jint oracle.Hca_exact.Oracle.minor_gcs);
             ("runtime_s", jfloat oracle.Hca_exact.Oracle.runtime_s);
           ]
          @ alloc_fields hca @ phases)
      else
        Hca_util.Tabular.add_row t
          [
            name;
            string_of_int n;
            (match hca.Report.final_mii with
            | Some m when hca.Report.legal -> string_of_int m
            | _ -> "-");
            Hca_exact.Oracle.status_to_string oracle.Hca_exact.Oracle.status;
            (match oracle.Hca_exact.Oracle.final_mii with
            | Some m -> string_of_int m
            | None -> "-");
            string_of_int oracle.Hca_exact.Oracle.lower_bound;
            (match gap with Some g -> Printf.sprintf "%.2f" g | None -> "-");
            string_of_int (List.length oracle.Hca_exact.Oracle.probes);
            string_of_int oracle.Hca_exact.Oracle.reused_hits;
            Printf.sprintf "%.2f" oracle.Hca_exact.Oracle.runtime_s;
          ])
    kernels;
  if not !json_mode then begin
    Hca_util.Tabular.print t;
    Printf.printf
      "'optimal' rows certify the flat projected-MII optimum; on the rest \
       the\ngap column is an upper bound computed against the certified \
       lower bound.\n"
  end

(* ------------------------------------------------------------------ *)
(* Modulo scheduling on top of HCA: the paper's future work, validated. *)
(* ------------------------------------------------------------------ *)

let sched () =
  heading "Kernel-only modulo scheduling on the HCA placement (paper future work)";
  let t =
    Hca_util.Tabular.create
      [
        left "Loop"; right "final MII"; right "achieved II"; right "stages";
        right "occupancy"; right "max live"; right "speedup@100";
      ]
  in
  List.iter
    (fun (name, f) ->
      let ddg = f () in
      let r = Report.run reference ddg in
      match (r.Report.result, r.Report.final_mii) with
      | Some res, Some final -> (
          (* Schedule the expanded DDG: receives and forwards are real
             instructions with their transport latency on the edges. *)
          let exp = Postprocess.expand res in
          let params =
            { Hca_sched.Modulo.default_params with copy_latency = 0 }
          in
          match
            Hca_sched.Modulo.run ~params ~ddg:exp.Postprocess.ddg
              ~cn_of_instr:exp.Postprocess.cn_of_node
              ~cns:(Dspfabric.total_cns reference)
              ~dma_ports:(Dspfabric.dma_ports reference) ~start_ii:final ()
          with
          | Error e ->
              Hca_util.Tabular.add_row t
                [ name; string_of_int final; e; "-"; "-"; "-"; "-" ]
          | Ok s ->
              let koms = Hca_sched.Koms.analyse s in
              let rp =
                Hca_sched.Regpress.analyse ~ddg:exp.Postprocess.ddg
                  ~cn_of_instr:exp.Postprocess.cn_of_node ~copy_latency:0 s
              in
              let sl = Graph_algo.critical_path ddg + 1 in
              Hca_util.Tabular.add_row t
                [
                  name;
                  string_of_int final;
                  string_of_int s.Hca_sched.Modulo.ii;
                  string_of_int s.Hca_sched.Modulo.stages;
                  Printf.sprintf "%.2f" s.Hca_sched.Modulo.occupancy;
                  string_of_int rp.Hca_sched.Regpress.max_live;
                  Printf.sprintf "%.1fx"
                    (Hca_sched.Koms.speedup_vs_unpipelined koms ~trip:100
                       ~schedule_length:sl);
                ])
      | _ -> Hca_util.Tabular.add_row t [ name; "-"; "-"; "-"; "-"; "-"; "-" ])
    Hca_kernels.Registry.all;
  Hca_util.Tabular.print t

(* ------------------------------------------------------------------ *)
(* Ablations over the design choices listed in DESIGN.md §6.            *)
(* ------------------------------------------------------------------ *)

let ablation () =
  heading "Ablations: final MII under degraded configurations (fir2dim / idcthor)";
  let variants =
    [
      ("default", Config.default);
      ("greedy (beam 1)", { Config.default with beam_width = 1; candidate_width = 1 });
      ("beam 16", { Config.default with beam_width = 16 });
      ("no router", { Config.default with enable_router = false });
      ("criticality order", { Config.default with priority = Config.Criticality });
      ("source order", { Config.default with priority = Config.Source_order });
      ("spread wires", { Config.default with mapper_spread = true });
      ("no backtracking", { Config.default with max_alternatives = 1 });
    ]
  in
  let kernels =
    [ ("fir2dim", Hca_kernels.Fir2dim.ddg); ("idcthor", Hca_kernels.Idcthor.ddg) ]
  in
  let t =
    Hca_util.Tabular.create
      (left "Variant"
      :: List.concat_map
           (fun (n, _) -> [ right (n ^ " MII"); right "legal" ])
           kernels)
  in
  List.iter
    (fun (vname, config) ->
      let cells =
        List.concat_map
          (fun (_, f) ->
            let r = Report.run ~config reference (f ()) in
            [
              (match r.Report.final_mii with Some m -> string_of_int m | None -> "-");
              (if r.Report.legal then "yes" else "no");
            ])
          kernels
      in
      Hca_util.Tabular.add_row t (vname :: cells))
    variants;
  Hca_util.Tabular.print t

(* ------------------------------------------------------------------ *)
(* Bechamel micro benchmarks.                                          *)
(* ------------------------------------------------------------------ *)

let bechamel () =
  heading "Bechamel timing (one Test.make per experiment family)";
  let open Bechamel in
  let open Toolkit in
  let hca_test name f =
    Test.make ~name
      (Staged.stage (fun () ->
           ignore (Report.run ~jobs:!jobs reference (f ()))))
  in
  let tests =
    [
      hca_test "table1/fir2dim" Hca_kernels.Fir2dim.ddg;
      hca_test "table1/idcthor" Hca_kernels.Idcthor.ddg;
      hca_test "table1/mpeg2inter" Hca_kernels.Mpeg2inter.ddg;
      hca_test "table1/h264deblocking" Hca_kernels.H264deblock.ddg;
      Test.make ~name:"fig_bandwidth/fir2dim-narrow"
        (Staged.stage (fun () ->
             ignore
               (Report.run
                  (Dspfabric.make ~n:2 ~m:2 ~k:2 ())
                  (Hca_kernels.Fir2dim.ddg ()))));
      Test.make ~name:"fig_scaling/flat-fir2dim"
        (Staged.stage (fun () ->
             ignore
               (Hca_baseline.Flat_ica.run reference (Hca_kernels.Fir2dim.ddg ()))));
      Test.make ~name:"mii/rec-h264"
        (Staged.stage
           (let g = Hca_kernels.H264deblock.ddg () in
            fun () -> ignore (Mii.rec_mii g)));
      (* The hot paths the incremental-cost work targets: one SEE
         packing pass, the warm-cache cost summary, and the from-scratch
         recompute it replaced on the move path. *)
      (let see_problem =
         let ddg = Hca_kernels.Fir2dim.ddg () in
         let pg =
           Pattern_graph.complete ~name:"bench-see"
             ~capacities:(Array.make 4 { Resource.alus = 8; ags = 8 })
             ~max_in:4
         in
         Problem.of_ddg ~name:"bench-see" ~ddg ~pg ()
       in
       let rec solved ii =
         if ii > 64 then invalid_arg "bench-see: no feasible II"
         else
           match See.solve see_problem ~ii with
           | Ok o -> (ii, o.See.state)
           | Error _ -> solved (ii + 1)
       in
       let see_ii, see_state =
         solved (Mii.rec_mii (Hca_kernels.Fir2dim.ddg ()))
       in
       Test.make_grouped ~name:"core" ~fmt:"%s/%s"
         [
           Test.make ~name:"see-solve-fir2dim"
             (Staged.stage (fun () -> ignore (See.solve see_problem ~ii:see_ii)));
           Test.make ~name:"state-summary-fir2dim"
             (Staged.stage (fun () -> ignore (State.summary see_state ~ii:see_ii)));
           Test.make ~name:"state-recompute-fir2dim"
             (Staged.stage (fun () ->
                  State.recompute_cost see_state ~target_ii:see_ii
                    ~weights:Cost.default_weights));
         ]);
      (* Batched frontier scoring against the per-candidate
         speculate/penalise/undo loop it replaced: one mid-search
         frontier state, the same candidate clusters, the same tear
         penalty — the scores are bit-identical (property tested), so
         the delta is pure data-layout/batching win. *)
      (let spec_problem =
         let ddg = Hca_kernels.Fir2dim.ddg () in
         let pg =
           Pattern_graph.complete ~name:"bench-spec"
             ~capacities:(Array.make 4 { Resource.alus = 8; ags = 8 })
             ~max_in:4
         in
         Problem.of_ddg ~name:"bench-spec" ~ddg ~pg ()
       in
       let ii = 8 and weights = Cost.default_weights in
       let st = ref (State.create spec_problem) in
       (* Park every node but the last on some legal cluster, leaving a
          deep frontier state with one unassigned node to score. *)
       let node = Problem.size spec_problem - 1 in
       for n = 0 to node - 1 do
         let rec try_from c =
           if c < 4 then
             match
               State.try_assign !st ~node:n ~cluster:c ~ii ~target_ii:ii
                 ~weights
             with
             | Ok st' -> st := st'
             | Error _ -> try_from (c + 1)
         in
         try_from 0
       done;
       let st = !st in
       let clusters = [| 0; 1; 2; 3 |] in
       let scores = Array.make (Array.length clusters) nan in
       let tail_of_region = 3 in
       Test.make_grouped ~name:"spec" ~fmt:"%s/%s"
         [
           Test.make ~name:"batched-score-moves"
             (Staged.stage (fun () ->
                  ignore
                    (State.score_moves st ~node ~clusters ~ii ~target_ii:ii
                       ~weights ~tail_of_region ~scores
                      : int)));
           Test.make ~name:"per-candidate-speculate"
             (Staged.stage (fun () ->
                  Array.iteri
                    (fun k cluster ->
                      scores.(k) <- nan;
                      match
                        State.speculate_assign st ~node ~cluster ~ii
                          ~target_ii:ii ~weights
                      with
                      | Ok () ->
                          let deficit =
                            tail_of_region - 1
                            - State.free_issue_slots st ~cluster ~ii
                          in
                          if deficit > 0 then
                            State.add_penalty st
                              (weights.Cost.w_tear *. float_of_int deficit);
                          scores.(k) <- State.cost st;
                          State.undo_speculation st
                      | Error _ -> ())
                    clusters));
         ]);
      Test.make ~name:"sched/modulo-fir2dim"
        (Staged.stage
           (let ddg = Hca_kernels.Fir2dim.ddg () in
            let r = Report.run reference ddg in
            let res = Option.get r.Report.result in
            fun () ->
              ignore
                (Hca_sched.Modulo.run ~ddg
                   ~cn_of_instr:res.Hierarchy.cn_of_instr ~cns:64 ~dma_ports:8
                   ~start_ii:(Option.get r.Report.final_mii) ())));
    ]
  in
  let benchmark test =
    let instances = Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) ()
    in
    Benchmark.all cfg instances test
  in
  let analyze results =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    Analyze.all ols Instance.monotonic_clock results
  in
  List.iter
    (fun test ->
      let results = analyze (benchmark test) in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "  %-36s %12.0f ns/run\n%!" name est
          | _ -> Printf.printf "  %-36s (no estimate)\n%!" name)
        results)
    tests

(* ------------------------------------------------------------------ *)
(* Semantic equivalence: simulate the compiled kernel.                  *)
(* ------------------------------------------------------------------ *)

let simulate () =
  heading
    "Machine simulation: the clusterised + scheduled kernel computes the \
     reference values";
  let t =
    Hca_util.Tabular.create
      [
        left "Loop"; left "Trace match"; right "II"; right "stages in flight";
        right "cycles (8 iters)"; right "dyn. instrs";
      ]
  in
  List.iter
    (fun (name, f) ->
      let ddg = f () in
      let r = Report.run reference ddg in
      match (r.Report.result, r.Report.final_mii) with
      | Some res, Some final -> (
          let exp = Postprocess.expand res in
          let params =
            { Hca_sched.Modulo.default_params with copy_latency = 0 }
          in
          match
            Hca_sched.Modulo.run ~params ~ddg:exp.Postprocess.ddg
              ~cn_of_instr:exp.Postprocess.cn_of_node
              ~cns:(Dspfabric.total_cns reference)
              ~dma_ports:(Dspfabric.dma_ports reference) ~start_ii:final ()
          with
          | Error e ->
              Hca_util.Tabular.add_row t [ name; e; "-"; "-"; "-"; "-" ]
          | Ok schedule -> (
              match
                Hca_sim.Machine_sim.check_against_reference ~iterations:8
                  ~original:ddg ~expanded:exp.Postprocess.ddg
                  ~cn_of_node:exp.Postprocess.cn_of_node ~schedule ()
              with
              | Error e ->
                  Hca_util.Tabular.add_row t
                    [ name; "DIVERGED: " ^ e; "-"; "-"; "-"; "-" ]
              | Ok stats ->
                  Hca_util.Tabular.add_row t
                    [
                      name;
                      "yes";
                      string_of_int schedule.Hca_sched.Modulo.ii;
                      string_of_int stats.Hca_sim.Machine_sim.max_inflight;
                      string_of_int stats.Hca_sim.Machine_sim.cycles;
                      string_of_int stats.Hca_sim.Machine_sim.issued;
                    ]))
      | _ -> Hca_util.Tabular.add_row t [ name; "no clusterisation"; "-"; "-"; "-"; "-" ])
    Hca_kernels.Registry.all;
  Hca_util.Tabular.print t

(* ------------------------------------------------------------------ *)
(* Extended workloads: loop shapes beyond Table 1.                      *)
(* ------------------------------------------------------------------ *)

let extended () =
  heading "Extended kernels: loop shapes beyond Table 1";
  let t =
    Hca_util.Tabular.create
      [
        left "Kernel"; right "N_Instr"; right "ini MII"; left "Legal";
        right "Final MII"; right "copies"; right "wires";
      ]
  in
  let rows =
    Hca_util.Domain_pool.parallel_map
      ~jobs:(if !profile_mode then 1 else !jobs)
      (fun (name, f) ->
        let ddg = f () in
        let r, phases = profiled (fun () -> Report.run reference ddg) in
        (name, r, phases))
      Hca_kernels.Extended.all
  in
  List.iter
    (fun (name, r, phases) ->
      let wires =
        match r.Report.result with
        | Some res -> Some (Topology.wire_count (Topology.of_result res))
        | None -> None
      in
      if !json_mode then
        emit_json ~experiment:"extended" ~kernel:name
          ([
             ("n_instr", jint r.Report.n_instr);
             ("ini_mii", jint r.Report.ini_mii);
             ("legal", jbool r.Report.legal);
             ("final_mii", jopt_int r.Report.final_mii);
             ("copies", jint r.Report.copies);
             ("runtime_s", jfloat r.Report.runtime_s);
             ("cache_hits", jint r.Report.cache_hits);
             ("cache_misses", jint r.Report.cache_misses);
             ("reused_subproblems", jint r.Report.reused_subproblems);
             ("wires", jopt_int wires);
           ]
          @ alloc_fields r @ phases)
      else
        Hca_util.Tabular.add_row t
          [
            name;
            string_of_int r.Report.n_instr;
            string_of_int r.Report.ini_mii;
            (if r.Report.legal then "yes" else "no");
            (match r.Report.final_mii with Some m -> string_of_int m | None -> "-");
            string_of_int r.Report.copies;
            (match wires with Some w -> string_of_int w | None -> "-");
          ])
    rows;
  if not !json_mode then Hca_util.Tabular.print t

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("table1", table1);
    ("fig_bandwidth", fig_bandwidth);
    ("fig_scaling", fig_scaling);
    ("fig_rcp", fig_rcp);
    ("fig_mapper", fig_mapper);
    ("baselines", baselines);
    ("optgap", optgap);
    ("extended", extended);
    ("sched", sched);
    ("simulate", simulate);
    ("ablation", ablation);
    ("bechamel", bechamel);
  ]

let () =
  let bad_jobs v =
    Printf.eprintf "bad --jobs value %S: expected a positive integer\n" v;
    exit 2
  in
  let set_jobs v =
    match int_of_string_opt v with
    | Some n when n >= 1 -> jobs := n
    | _ -> bad_jobs v
  in
  let rec parse acc = function
    | [] -> List.rev acc
    | "--json" :: rest ->
        json_mode := true;
        parse acc rest
    | "--profile" :: rest ->
        profile_mode := true;
        parse acc rest
    | "--telemetry" :: rest ->
        telemetry_mode := true;
        parse acc rest
    | "--jobs" :: v :: rest ->
        set_jobs v;
        parse acc rest
    | [ "--jobs" ] -> bad_jobs ""
    | a :: rest when String.length a > 7 && String.sub a 0 7 = "--jobs=" ->
        set_jobs (String.sub a 7 (String.length a - 7));
        parse acc rest
    | "--oracle-budget" :: v :: rest ->
        (match float_of_string_opt v with
        | Some b when b > 0. -> oracle_budget := Some b
        | _ ->
            Printf.eprintf
              "bad --oracle-budget value %S: expected positive seconds\n" v;
            exit 2);
        parse acc rest
    | "--max-n" :: v :: rest ->
        (match int_of_string_opt v with
        | Some m when m >= 1 -> max_n := Some m
        | _ ->
            Printf.eprintf
              "bad --max-n value %S: expected a positive integer\n" v;
            exit 2);
        parse acc rest
    | a :: rest -> parse (a :: acc) rest
  in
  let args = parse [] (List.tl (Array.to_list Sys.argv)) in
  (* Arm the daemon's production telemetry (the flight ring) for the
     whole run; every span instrumentation point now pays its armed
     cost.  The experiment names stay the same on purpose — see the
     header comment. *)
  if !telemetry_mode then Hca_obs.Obs.Ring.arm ();
  match args with
  | _ :: _ as names ->
      List.iter
        (fun name ->
          match List.assoc_opt name experiments with
          | Some f -> f ()
          | None ->
              Printf.eprintf "unknown experiment %S; available: %s\n" name
                (String.concat ", " (List.map fst experiments));
              exit 1)
        names
  | _ -> List.iter (fun (_, f) -> f ()) experiments
