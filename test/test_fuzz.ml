(* Property suite of the differential-fuzzing subsystem (lib/gen): the
   generator, the shrinker, the corpus codec and a bounded campaign.
   Everything here is seeded — a failure reproduces verbatim. *)

open Hca_ddg
open Hca_gen

(* --- generator ---------------------------------------------------------- *)

let test_generator_deterministic () =
  let a = Gen.instance ~seed:42 () and b = Gen.instance ~seed:42 () in
  Alcotest.(check string)
    "same seed, same kernel"
    (Ddg_io.to_string a.Gen.ddg)
    (Ddg_io.to_string b.Gen.ddg);
  Alcotest.(check string)
    "same seed, same machine"
    (Corpus.fabric_to_string a.Gen.fabric)
    (Corpus.fabric_to_string b.Gen.fabric);
  let c = Gen.instance ~seed:43 () in
  Alcotest.(check bool) "different seed, different kernel" false
    (Ddg_io.to_string a.Gen.ddg = Ddg_io.to_string c.Gen.ddg)

let seed_arb = QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 100_000)

let prop_generated_well_formed =
  QCheck.Test.make ~name:"generated kernels are well-formed" ~count:150
    seed_arb (fun seed ->
      let g = Gen.ddg ~seed () in
      Gen.well_formed g
      && Array.exists
           (fun (i : Instr.t) -> i.Instr.opcode = Opcode.Store)
           (Ddg.instrs g)
      && Array.for_all
           (fun (e : Ddg.edge) -> e.distance > 0 || e.src < e.dst)
           (Ddg.edges g))

let prop_generated_fabric_sane =
  QCheck.Test.make ~name:"generated machines expose their knobs" ~count:100
    seed_arb (fun seed ->
      let f = Gen.fabric ~seed () in
      let fanouts = Gen.fanouts_of f in
      Array.length fanouts >= 2
      && Array.for_all (fun x -> x >= 2) fanouts
      && Gen.cn_in_wires_of f >= 1)

let prop_roundtrip_exact =
  QCheck.Test.make ~name:"Ddg_io round-trips generated kernels exactly"
    ~count:150 seed_arb (fun seed ->
      let g = Gen.ddg ~seed () in
      match Ddg_io.of_string (Ddg_io.to_string g) with
      | Ok g' -> Ddg.equal_exact g g'
      | Error _ -> false)

let test_roundtrip_weird_names () =
  (* Names with the characters the printer must escape. *)
  let b = Ddg.Builder.create ~name:"odd name\twith \\ specials" () in
  let c = Ddg.Builder.add_instr b ~name:"a const" (Opcode.Const 7) in
  let m = Ddg.Builder.add_instr b ~name:"esc\\_x" Opcode.Mov in
  let s = Ddg.Builder.add_instr b ~name:"s t o r e" Opcode.Store in
  Ddg.Builder.add_dep b ~src:c ~dst:m;
  Ddg.Builder.add_dep b ~src:m ~dst:s ~distance:1;
  let g = Ddg.Builder.freeze b in
  match Ddg_io.of_string (Ddg_io.to_string g) with
  | Ok g' -> Alcotest.(check bool) "exact round-trip" true (Ddg.equal_exact g g')
  | Error e -> Alcotest.fail e

let test_corpus_roundtrip_file () =
  let inst = Gen.instance ~seed:7 () in
  let dir = "tmp-corpus-roundtrip" in
  Corpus.write ~dir ~name:"probe" inst (Corpus.Expect_gap 2);
  match Corpus.read (Filename.concat dir "probe.repro") with
  | Error e -> Alcotest.fail e
  | Ok entry ->
      Alcotest.(check bool) "kernel identical" true
        (Ddg.equal_exact inst.Gen.ddg entry.Corpus.instance.Gen.ddg);
      Alcotest.(check string)
        "machine identical"
        (Corpus.fabric_to_string inst.Gen.fabric)
        (Corpus.fabric_to_string entry.Corpus.instance.Gen.fabric);
      Alcotest.(check bool) "expectation preserved" true
        (entry.Corpus.expect = Corpus.Expect_gap 2)

(* --- shrinker ----------------------------------------------------------- *)

let has_store g =
  Array.exists
    (fun (i : Instr.t) -> i.Instr.opcode = Opcode.Store)
    (Ddg.instrs g)

let test_shrinker_minimizes () =
  let inst = Gen.instance ~seed:5 () in
  let keep (i : Gen.instance) = has_store i.Gen.ddg in
  let small = Shrink.minimize ~keep inst in
  Alcotest.(check bool) "predicate preserved" true (keep small);
  Alcotest.(check bool) "well-formed" true (Gen.well_formed small.Gen.ddg);
  (* The smallest well-formed kernel with a store is producer+store. *)
  Alcotest.(check int) "two nodes left" 2 (Ddg.size small.Gen.ddg);
  Alcotest.(check (array int))
    "machine collapsed to the smallest shape" [| 2; 2 |]
    (Gen.fanouts_of small.Gen.fabric);
  (* Fixpoint: no accepted one-step reduction remains. *)
  Alcotest.(check bool) "no smaller candidate" true
    (List.for_all
       (fun d -> not (keep { small with Gen.ddg = d }))
       (Shrink.ddg_candidates small.Gen.ddg))

let test_shrinker_rejects_bad_keep () =
  let inst = Gen.instance ~seed:5 () in
  Alcotest.check_raises "keep must accept the start"
    (Invalid_argument "Shrink.minimize: predicate rejects the initial instance")
    (fun () -> ignore (Shrink.minimize ~keep:(fun _ -> false) inst))

(* --- bounded campaign --------------------------------------------------- *)

let test_bounded_campaign_green () =
  let buf = Buffer.create 256 in
  let log line = Buffer.add_string buf (line ^ "\n") in
  let stats = Fuzz.run ~log ~seed:0 ~count:20 () in
  Alcotest.(check int) "all instances visited" 20 stats.Fuzz.instances;
  Alcotest.(check int) "no failures" 0 stats.Fuzz.failed;
  Alcotest.(check int) "ok + infeasible covers the range" 20
    (stats.Fuzz.ok + stats.Fuzz.infeasible);
  (* The transcript is a pure function of the seed range. *)
  let buf' = Buffer.create 256 in
  let stats' =
    Fuzz.run ~log:(fun l -> Buffer.add_string buf' (l ^ "\n")) ~seed:0
      ~count:20 ()
  in
  Alcotest.(check string) "transcript deterministic" (Buffer.contents buf)
    (Buffer.contents buf');
  Alcotest.(check string) "summary deterministic" (Fuzz.summary_line stats)
    (Fuzz.summary_line stats')

let test_corpus_replays_clean () =
  let total, mismatches = Fuzz.replay_dir "corpus" in
  Alcotest.(check bool) "corpus is not empty" true (total >= 2);
  Alcotest.(check int) "all reproducers replay to their verdict" 0 mismatches

let () =
  Alcotest.run "fuzz"
    [
      ( "generator",
        [
          Alcotest.test_case "deterministic" `Quick test_generator_deterministic;
          QCheck_alcotest.to_alcotest prop_generated_well_formed;
          QCheck_alcotest.to_alcotest prop_generated_fabric_sane;
        ] );
      ( "round-trip",
        [
          QCheck_alcotest.to_alcotest prop_roundtrip_exact;
          Alcotest.test_case "weird names" `Quick test_roundtrip_weird_names;
          Alcotest.test_case "corpus files" `Quick test_corpus_roundtrip_file;
        ] );
      ( "shrinker",
        [
          Alcotest.test_case "minimizes to producer+store" `Quick
            test_shrinker_minimizes;
          Alcotest.test_case "rejects bad keep" `Quick
            test_shrinker_rejects_bad_keep;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "bounded run is green" `Slow
            test_bounded_campaign_green;
          Alcotest.test_case "corpus replays clean" `Slow
            test_corpus_replays_clean;
        ] );
    ]
