(* Tests for the HCA core: subproblem construction, the SEE, the Route
   Allocator, the Mapper and ILIs, the hierarchical driver, the
   coherency checker and the metrics — including the paper's worked
   examples (Fig. 6 routing, Fig. 10 forced co-location). *)

open Hca_ddg
open Hca_machine
open Hca_core

let r alus ags = { Resource.alus; ags }

(* Small diamond: a feeds b and c, both feed d. *)
let diamond () =
  let b = Ddg.Builder.create ~name:"diamond" () in
  let a = Ddg.Builder.add_instr b ~name:"a" Opcode.Add in
  let x = Ddg.Builder.add_instr b ~name:"x" Opcode.Add in
  let y = Ddg.Builder.add_instr b ~name:"y" Opcode.Add in
  let d = Ddg.Builder.add_instr b ~name:"d" Opcode.Add in
  Ddg.Builder.add_dep b ~src:a ~dst:x;
  Ddg.Builder.add_dep b ~src:a ~dst:y;
  Ddg.Builder.add_dep b ~src:x ~dst:d;
  Ddg.Builder.add_dep b ~src:y ~dst:d;
  Ddg.Builder.freeze b

let complete4 ?(cap = r 4 4) ?(max_in = 2) () =
  Pattern_graph.complete ~name:"t" ~capacities:(Array.make 4 cap) ~max_in

(* --- problem ------------------------------------------------------- *)

let test_problem_of_ddg () =
  let p = Problem.of_ddg ~name:"p" ~ddg:(diamond ()) ~pg:(complete4 ()) () in
  Alcotest.(check int) "nodes" 4 (Problem.size p);
  Alcotest.(check int) "free" 4 (List.length (Problem.free_nodes p));
  Alcotest.(check int) "edges" 4 (Array.length (Problem.edges p))

let test_problem_of_ddg_rejects_ports () =
  let pg = Pattern_graph.with_ports (complete4 ()) ~inputs:[ (0, [ 0 ]) ] ~outputs:[] in
  Alcotest.check_raises "ports"
    (Invalid_argument "Problem.of_ddg: PG must be port-free (use of_working_set)")
    (fun () -> ignore (Problem.of_ddg ~name:"p" ~ddg:(diamond ()) ~pg ()))

let test_problem_working_set_ports () =
  let ddg = diamond () in
  (* WS = {x, d}: value a arrives on a wire, y's value arrives on
     another; d's result leaves. *)
  let pg =
    Pattern_graph.with_ports (complete4 ())
      ~inputs:[ (0, [ 0 ]); (1, [ 2 ]) ]
      ~outputs:[ (0, [ 3 ]) ]
  in
  match Problem.of_working_set ~name:"p" ~ddg ~ws:[ 1; 3 ] ~pg () with
  | Error e -> Alcotest.fail e
  | Ok p ->
      (* 2 ws nodes + 2 in ports + 1 out port. *)
      Alcotest.(check int) "nodes" 5 (Problem.size p);
      Alcotest.(check int) "free" 2 (List.length (Problem.free_nodes p));
      Alcotest.(check int) "no forwards" 0 (List.length (Problem.forwards p));
      (* Edges: in0 -> x (value a), in0 -> d? no (d consumes x, y):
         x -> d (value x), in1 -> d (value y), d -> out (value d). *)
      Alcotest.(check int) "edges" 4 (Array.length (Problem.edges p))

let test_problem_missing_input_fails () =
  let ddg = diamond () in
  let pg = Pattern_graph.with_ports (complete4 ()) ~inputs:[] ~outputs:[] in
  match Problem.of_working_set ~name:"p" ~ddg ~ws:[ 3 ] ~pg () with
  | Error e ->
      Alcotest.(check bool) "mentions port" true
        (String.length e > 0)
  | Ok _ -> Alcotest.fail "consumer without input port must fail"

let test_problem_pass_through_forward () =
  let ddg = diamond () in
  (* WS empty of the producer of value 0, yet value 0 is owed out:
     a forward node must appear. *)
  let pg =
    Pattern_graph.with_ports (complete4 ())
      ~inputs:[ (0, [ 0 ]) ]
      ~outputs:[ (0, [ 0 ]) ]
  in
  match Problem.of_working_set ~name:"p" ~ddg ~ws:[] ~pg () with
  | Error e -> Alcotest.fail e
  | Ok p ->
      Alcotest.(check int) "one forward" 1 (List.length (Problem.forwards p));
      let fwd = List.hd (Problem.forwards p) in
      Alcotest.(check int) "forward value" 0 fwd.Problem.value;
      Alcotest.(check bool) "forward demands an ALU slot" true
        (Resource.equal fwd.Problem.demand (r 1 0))

let test_problem_orphan_output_fails () =
  let ddg = diamond () in
  let pg =
    Pattern_graph.with_ports (complete4 ()) ~inputs:[] ~outputs:[ (0, [ 0 ]) ]
  in
  match Problem.of_working_set ~name:"p" ~ddg ~ws:[] ~pg () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "owed value without source must fail"

let test_problem_height_depth () =
  let p = Problem.of_ddg ~name:"p" ~ddg:(diamond ()) ~pg:(complete4 ()) () in
  let h = Problem.height p and d = Problem.depth p in
  Alcotest.(check int) "height of a" 2 h.(0);
  Alcotest.(check int) "depth of d" 2 d.(3)

(* --- state ---------------------------------------------------------- *)

let mk_state ?(max_in = 2) () =
  let p = Problem.of_ddg ~name:"p" ~ddg:(diamond ()) ~pg:(complete4 ~max_in ()) () in
  (p, State.create p)

let weights = Cost.default_weights

let test_state_assign_basic () =
  let _, st = mk_state () in
  match State.try_assign st ~node:0 ~cluster:1 ~ii:2 ~target_ii:2 ~weights with
  | Error e -> Alcotest.fail e
  | Ok st' ->
      Alcotest.(check (option int)) "placed" (Some 1) (State.placement st' 0);
      Alcotest.(check (option int)) "input untouched" None (State.placement st 0);
      Alcotest.(check bool) "demand counted" true
        (Resource.equal (r 1 0) (State.demand st' 1))

let test_state_same_cluster_no_copy () =
  let _, st = mk_state () in
  let st = Result.get_ok (State.try_assign st ~node:0 ~cluster:0 ~ii:4 ~target_ii:4 ~weights) in
  let st = Result.get_ok (State.try_assign st ~node:1 ~cluster:0 ~ii:4 ~target_ii:4 ~weights) in
  Alcotest.(check int) "no copies" 0 (Copy_flow.copy_count (State.flow st))

let test_state_cross_cluster_copy () =
  let _, st = mk_state () in
  let st = Result.get_ok (State.try_assign st ~node:0 ~cluster:0 ~ii:4 ~target_ii:4 ~weights) in
  let st = Result.get_ok (State.try_assign st ~node:1 ~cluster:1 ~ii:4 ~target_ii:4 ~weights) in
  Alcotest.(check (list int)) "value 0 on arc" [ 0 ]
    (Copy_flow.copies (State.flow st) ~src:0 ~dst:1)

let test_state_resource_rejection () =
  let _, st = mk_state () in
  (* Capacity 4+4 per cluster but single-issue: ii 1 allows 4 ops; put
     all four on one cluster at ii 1: the 5th would fail, but even the
     fourth fits. At ii 0 invalid anyway; use a tiny cluster instead. *)
  let p =
    Problem.of_ddg ~name:"tiny" ~ddg:(diamond ())
      ~pg:(complete4 ~cap:(r 1 0) ())
      ()
  in
  let st0 = State.create p in
  let st1 = Result.get_ok (State.try_assign st0 ~node:0 ~cluster:0 ~ii:1 ~target_ii:1 ~weights) in
  (match State.try_assign st1 ~node:1 ~cluster:0 ~ii:1 ~target_ii:1 ~weights with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "over capacity");
  ignore st

let test_state_comm_rejection () =
  (* max_in 1: d cannot hear from two clusters. *)
  let p = Problem.of_ddg ~name:"p" ~ddg:(diamond ()) ~pg:(complete4 ~max_in:1 ()) () in
  let st = State.create p in
  let st = Result.get_ok (State.try_assign st ~node:0 ~cluster:0 ~ii:8 ~target_ii:8 ~weights) in
  let st = Result.get_ok (State.try_assign st ~node:1 ~cluster:1 ~ii:8 ~target_ii:8 ~weights) in
  let st = Result.get_ok (State.try_assign st ~node:2 ~cluster:2 ~ii:8 ~target_ii:8 ~weights) in
  (* d on cluster 3 would need arcs from 1 and 2: max_in 1 forbids. *)
  match State.try_assign st ~node:3 ~cluster:3 ~ii:8 ~target_ii:8 ~weights with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "two in-neighbours with max_in 1"

let test_state_force_assign_blocked () =
  let p = Problem.of_ddg ~name:"p" ~ddg:(diamond ()) ~pg:(complete4 ~max_in:1 ()) () in
  let st = State.create p in
  let st = Result.get_ok (State.try_assign st ~node:0 ~cluster:0 ~ii:8 ~target_ii:8 ~weights) in
  let st = Result.get_ok (State.try_assign st ~node:1 ~cluster:1 ~ii:8 ~target_ii:8 ~weights) in
  let st = Result.get_ok (State.try_assign st ~node:2 ~cluster:2 ~ii:8 ~target_ii:8 ~weights) in
  match State.force_assign st ~node:3 ~cluster:3 ~ii:8 with
  | Error e -> Alcotest.fail e
  | Ok (st', blocked) ->
      Alcotest.(check int) "one blocked arc" 1 (List.length blocked);
      Alcotest.(check (option int)) "placed anyway" (Some 3) (State.placement st' 3)

let test_state_penalty () =
  let _, st = mk_state () in
  let before = State.cost st in
  State.add_penalty st 2.5;
  Alcotest.(check (float 1e-9)) "penalty" (before +. 2.5) (State.cost st)

let test_state_summary_pressure () =
  let _, st = mk_state () in
  let st = Result.get_ok (State.try_assign st ~node:0 ~cluster:0 ~ii:1 ~target_ii:1 ~weights) in
  let st = Result.get_ok (State.try_assign st ~node:1 ~cluster:1 ~ii:1 ~target_ii:1 ~weights) in
  let s = State.summary st ~ii:1 in
  Alcotest.(check int) "one copy" 1 s.Cost.copies;
  Alcotest.(check bool) "projected >= 1" true (s.Cost.projected_ii >= 1)

(* --- router (Fig. 6) ------------------------------------------------- *)

let test_router_detour () =
  (* Machine is a directed chain 0 -> 1 -> 2: assigning consumer to 2
     with producer on 0 requires routing through 1 (Fig. 6 (b)). *)
  let b = Ddg.Builder.create ~name:"pair" () in
  let p0 = Ddg.Builder.add_instr b Opcode.Add in
  let c0 = Ddg.Builder.add_instr b Opcode.Add in
  Ddg.Builder.add_dep b ~src:p0 ~dst:c0;
  let ddg = Ddg.Builder.freeze b in
  let pg =
    Pattern_graph.of_adjacency ~name:"chain" ~capacities:(Array.make 3 (r 2 2))
      ~max_in:1 ~potential:[ (0, 1); (1, 2) ]
  in
  let problem = Problem.of_ddg ~name:"p" ~ddg ~pg () in
  let st = State.create problem in
  let st = Result.get_ok (State.try_assign st ~node:0 ~cluster:0 ~ii:4 ~target_ii:4 ~weights) in
  (* Direct assignment to 2 fails (no arc 0 -> 2)... *)
  (match State.try_assign st ~node:1 ~cluster:2 ~ii:4 ~target_ii:4 ~weights with
  | Ok _ -> Alcotest.fail "should need routing"
  | Error _ -> ());
  (* ...but the Route Allocator detours through 1. *)
  match Router.assign_with_routing st ~node:1 ~cluster:2 ~ii:4 ~target_ii:4 ~weights ~max_hops:3 with
  | Error e -> Alcotest.fail e
  | Ok st' ->
      Alcotest.(check (list int)) "hop 0->1" [ 0 ]
        (Copy_flow.copies (State.flow st') ~src:0 ~dst:1);
      Alcotest.(check (list int)) "hop 1->2" [ 0 ]
        (Copy_flow.copies (State.flow st') ~src:1 ~dst:2);
      Alcotest.(check (list (pair int int))) "forward recorded" [ (0, 1) ]
        (State.forwards st')

let test_router_hop_limit () =
  let b = Ddg.Builder.create ~name:"pair" () in
  let p0 = Ddg.Builder.add_instr b Opcode.Add in
  let c0 = Ddg.Builder.add_instr b Opcode.Add in
  Ddg.Builder.add_dep b ~src:p0 ~dst:c0;
  let ddg = Ddg.Builder.freeze b in
  let pg =
    Pattern_graph.of_adjacency ~name:"chain4" ~capacities:(Array.make 4 (r 2 2))
      ~max_in:1 ~potential:[ (0, 1); (1, 2); (2, 3) ]
  in
  let problem = Problem.of_ddg ~name:"p" ~ddg ~pg () in
  let st = State.create problem in
  let st = Result.get_ok (State.try_assign st ~node:0 ~cluster:0 ~ii:8 ~target_ii:8 ~weights) in
  (match Router.assign_with_routing st ~node:1 ~cluster:3 ~ii:8 ~target_ii:8 ~weights ~max_hops:2 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "2 hops cannot span 3 arcs");
  match Router.assign_with_routing st ~node:1 ~cluster:3 ~ii:8 ~target_ii:8 ~weights ~max_hops:3 with
  | Error e -> Alcotest.fail e
  | Ok st' -> Alcotest.(check int) "two forwards" 2 (List.length (State.forwards st'))

(* --- see -------------------------------------------------------------- *)

let test_see_solves_diamond () =
  let p = Problem.of_ddg ~name:"p" ~ddg:(diamond ()) ~pg:(complete4 ()) () in
  match See.solve p ~ii:2 with
  | Error e -> Alcotest.fail e
  | Ok o ->
      Alcotest.(check bool) "complete" true (State.is_complete o.See.state);
      Alcotest.(check bool) "explored some" true (o.See.explored > 0)

let test_see_respects_capacity () =
  (* 8 ALU ops on 4 single-ALU clusters at ii 2 fill the machine. *)
  let b = Ddg.Builder.create ~name:"eight" () in
  for _ = 1 to 8 do
    ignore (Ddg.Builder.add_instr b Opcode.Add)
  done;
  let ddg = Ddg.Builder.freeze b in
  let p = Problem.of_ddg ~name:"p" ~ddg ~pg:(complete4 ~cap:(r 1 1) ()) () in
  (match See.solve p ~ii:1 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "8 ops on 4 slots at ii 1");
  match See.solve p ~ii:2 with
  | Error e -> Alcotest.fail e
  | Ok o ->
      (* Perfect balance: every cluster holds exactly 2. *)
      List.iter
        (fun (nd : Pattern_graph.node) ->
          Alcotest.(check int) "balanced" 2
            (List.length (State.cluster_nodes o.See.state nd.id)))
        (Pattern_graph.regular_nodes (Problem.pg p))

let test_see_pinned_ports_preassigned () =
  let ddg = diamond () in
  let pg =
    Pattern_graph.with_ports (complete4 ())
      ~inputs:[ (0, [ 0 ]); (1, [ 2 ]) ]
      ~outputs:[ (0, [ 3 ]) ]
  in
  let p = Result.get_ok (Problem.of_working_set ~name:"p" ~ddg ~ws:[ 1; 3 ] ~pg ()) in
  match See.solve p ~ii:4 with
  | Error e -> Alcotest.fail e
  | Ok o ->
      (* The out port must be fed with value 3 by d's cluster. *)
      let flow = State.flow o.See.state in
      let port = (List.hd (Pattern_graph.out_ports pg)).Pattern_graph.id in
      (match Copy_flow.real_in_neighbors flow port with
      | [ src ] ->
          Alcotest.(check (list int)) "value delivered" [ 3 ]
            (Copy_flow.copies flow ~src ~dst:port)
      | _ -> Alcotest.fail "out port must have one feeder")

let test_see_forced_colocation_fig10 () =
  (* Two values k, h owed to ONE output wire: their producers must land
     on the same cluster (Fig. 10 (c)). *)
  let b = Ddg.Builder.create ~name:"kh" () in
  let k = Ddg.Builder.add_instr b ~name:"k" Opcode.Add in
  let h = Ddg.Builder.add_instr b ~name:"h" Opcode.Add in
  ignore k;
  ignore h;
  let ddg = Ddg.Builder.freeze b in
  let pg =
    Pattern_graph.with_ports (complete4 ()) ~inputs:[] ~outputs:[ (0, [ 0; 1 ]) ]
  in
  let p = Result.get_ok (Problem.of_working_set ~name:"p" ~ddg ~ws:[ 0; 1 ] ~pg ()) in
  match See.solve p ~ii:4 with
  | Error e -> Alcotest.fail e
  | Ok o ->
      Alcotest.(check (option int)) "same cluster"
        (State.placement o.See.state 0)
        (State.placement o.See.state 1)

let test_see_alternatives_sorted () =
  let p = Problem.of_ddg ~name:"p" ~ddg:(diamond ()) ~pg:(complete4 ()) () in
  let config = { Config.default with beam_width = 6 } in
  match See.solve ~config p ~ii:4 with
  | Error e -> Alcotest.fail e
  | Ok o ->
      let costs = List.map State.cost (o.See.state :: o.See.alternatives) in
      Alcotest.(check bool) "sorted" true (List.sort compare costs = costs)

let test_see_priority_modes () =
  let p = Problem.of_ddg ~name:"p" ~ddg:(Hca_kernels.Fir2dim.ddg ()) ~pg:(complete4 ~cap:(r 16 16) ~max_in:8 ()) () in
  List.iter
    (fun priority ->
      let config = { Config.default with priority } in
      match See.solve ~config p ~ii:4 with
      | Ok o -> Alcotest.(check bool) "complete" true (State.is_complete o.See.state)
      | Error e -> Alcotest.failf "priority mode failed: %s" e)
    [ Config.Affinity; Config.Criticality; Config.Topological; Config.Source_order ]

(* --- regions ----------------------------------------------------------- *)

let test_regions_cover_free_nodes () =
  let p = Problem.of_ddg ~name:"p" ~ddg:(Hca_kernels.Idcthor.ddg ()) ~pg:(complete4 ~cap:(r 16 16) ~max_in:8 ()) () in
  let region = Regions.partition p ~capacity:32 in
  Array.iter
    (fun (nd : Problem.node) ->
      if nd.Problem.pinned = None then
        Alcotest.(check bool) "region assigned" true (region.(nd.Problem.id) >= 0))
    (Problem.nodes p)

let test_regions_capacity () =
  let p = Problem.of_ddg ~name:"p" ~ddg:(Hca_kernels.H264deblock.ddg ()) ~pg:(complete4 ~cap:(r 16 16) ~max_in:8 ()) () in
  let capacity = 20 in
  let region = Regions.partition p ~capacity in
  let counts = Hashtbl.create 16 in
  Array.iter
    (fun r ->
      if r >= 0 then
        Hashtbl.replace counts r (1 + Option.value ~default:0 (Hashtbl.find_opt counts r)))
    region;
  Hashtbl.iter
    (fun _ c -> Alcotest.(check bool) "capacity respected" true (c <= capacity))
    counts

let test_regions_separate_columns () =
  (* Two disjoint chains must never share a region. *)
  let b = Ddg.Builder.create ~name:"two" () in
  let mk () =
    let a = Ddg.Builder.add_instr b Opcode.Add in
    let c = Ddg.Builder.add_instr b Opcode.Add in
    Ddg.Builder.add_dep b ~src:a ~dst:c;
    (a, c)
  in
  let a0, c0 = mk () in
  let a1, c1 = mk () in
  let ddg = Ddg.Builder.freeze b in
  let p = Problem.of_ddg ~name:"p" ~ddg ~pg:(complete4 ()) () in
  let region = Regions.partition p ~capacity:8 in
  Alcotest.(check int) "chain 0 together" region.(a0) region.(c0);
  Alcotest.(check int) "chain 1 together" region.(a1) region.(c1);
  Alcotest.(check bool) "chains apart" true (region.(a0) <> region.(a1))

(* --- mapper / ili ------------------------------------------------------- *)

let solved_diamond () =
  let p = Problem.of_ddg ~name:"p" ~ddg:(diamond ()) ~pg:(complete4 ()) () in
  let o = Result.get_ok (See.solve p ~ii:2) in
  (p, o)

let test_mapper_basic () =
  let p, o = solved_diamond () in
  match Mapper.map ~problem:p ~state:o.See.state ~in_capacity:2 ~out_capacity:2 () with
  | Error e -> Alcotest.fail e
  | Ok res ->
      Alcotest.(check bool) "model valid" true
        (Machine_model.validate res.Mapper.model = Ok ());
      Alcotest.(check int) "one ILI per child" 4 (Array.length res.Mapper.child_ilis)

let test_mapper_broadcast_merging () =
  (* One producer, broadcast to two clusters: a single wire suffices. *)
  let b = Ddg.Builder.create ~name:"bcast" () in
  let src = Ddg.Builder.add_instr b Opcode.Add in
  let c1 = Ddg.Builder.add_instr b Opcode.Add in
  let c2 = Ddg.Builder.add_instr b Opcode.Add in
  Ddg.Builder.add_dep b ~src ~dst:c1;
  Ddg.Builder.add_dep b ~src ~dst:c2;
  let ddg = Ddg.Builder.freeze b in
  let p = Problem.of_ddg ~name:"p" ~ddg ~pg:(complete4 ()) () in
  let st = State.create p in
  let st = Result.get_ok (State.try_assign st ~node:0 ~cluster:0 ~ii:2 ~target_ii:2 ~weights) in
  let st = Result.get_ok (State.try_assign st ~node:1 ~cluster:1 ~ii:2 ~target_ii:2 ~weights) in
  let st = Result.get_ok (State.try_assign st ~node:2 ~cluster:2 ~ii:2 ~target_ii:2 ~weights) in
  match Mapper.map ~problem:p ~state:st ~in_capacity:2 ~out_capacity:2 () with
  | Error e -> Alcotest.fail e
  | Ok res ->
      Alcotest.(check int) "one wire broadcast" 1
        (List.length (Machine_model.used_out_wires res.Mapper.model 0));
      let w = List.hd (Machine_model.used_out_wires res.Mapper.model 0) in
      Alcotest.(check (list int)) "both sinks" [ 1; 2 ]
        (List.sort compare (Machine_model.wire_sinks res.Mapper.model w))

let test_mapper_ili_payloads () =
  let p, o = solved_diamond () in
  match Mapper.map ~problem:p ~state:o.See.state ~in_capacity:2 ~out_capacity:2 () with
  | Error e -> Alcotest.fail e
  | Ok res ->
      (* Every copy in the flow shows up in some child ILI input. *)
      let all_in =
        Array.to_list res.Mapper.child_ilis
        |> List.concat_map (fun ili -> Ili.input_values ili)
      in
      let flow = State.flow o.See.state in
      List.iter
        (fun (_, _, values) ->
          List.iter
            (fun v ->
              Alcotest.(check bool) "value delivered" true (List.mem v all_in))
            values)
        (Copy_flow.arcs flow)

let test_mapper_wire_cap () =
  (* Three values from cluster 0 to cluster 1 with wire_cap 1: three
     distinct wires. *)
  let b = Ddg.Builder.create ~name:"three" () in
  let srcs = List.init 3 (fun _ -> Ddg.Builder.add_instr b Opcode.Add) in
  let dst = Ddg.Builder.add_instr b Opcode.Mov in
  List.iter (fun s -> Ddg.Builder.add_dep b ~src:s ~dst) srcs;
  let ddg = Ddg.Builder.freeze b in
  let pg = Pattern_graph.complete ~name:"t" ~capacities:(Array.make 2 (r 4 4)) ~max_in:4 in
  let p = Problem.of_ddg ~name:"p" ~ddg ~pg () in
  let st = State.create p in
  let st = List.fold_left (fun st s -> Result.get_ok (State.try_assign st ~node:s ~cluster:0 ~ii:4 ~target_ii:4 ~weights)) st srcs in
  let st = Result.get_ok (State.try_assign st ~node:dst ~cluster:1 ~ii:4 ~target_ii:4 ~weights) in
  match Mapper.map ~wire_cap:1 ~problem:p ~state:st ~in_capacity:4 ~out_capacity:4 () with
  | Error e -> Alcotest.fail e
  | Ok res ->
      Alcotest.(check int) "three wires" 3
        (List.length (Machine_model.used_out_wires res.Mapper.model 0));
      Alcotest.(check int) "load 1" 1 res.Mapper.max_wire_load

let test_ili_accessors () =
  let ili = { Ili.inputs = [ (0, [ 1; 2 ]); (1, [ 2; 3 ]) ]; outputs = [ (0, [ 9 ]) ] } in
  Alcotest.(check (list int)) "inputs dedup" [ 1; 2; 3 ] (Ili.input_values ili);
  Alcotest.(check (list int)) "outputs" [ 9 ] (Ili.output_values ili);
  Alcotest.(check bool) "not empty" false (Ili.is_empty ili);
  Alcotest.(check bool) "empty" true (Ili.is_empty Ili.empty)

(* --- hierarchy / coherency / metrics ------------------------------------ *)

let small_fabric = Dspfabric.make ~fanouts:[| 2; 2 |] ~n:4 ~m:4 ~k:4 ()

let test_hierarchy_small_fabric () =
  (* 4-CN fabric, diamond kernel. *)
  match Hierarchy.solve small_fabric (diamond ()) ~ii:4 with
  | Error e -> Alcotest.fail e
  | Ok res ->
      Array.iter
        (fun cn -> Alcotest.(check bool) "cn in range" true (cn >= 0 && cn < 4))
        res.Hierarchy.cn_of_instr;
      Alcotest.(check bool) "legal" true (Coherency.is_legal res)

let test_hierarchy_full_kernels_legal () =
  List.iter
    (fun (name, f) ->
      let ddg = f () in
      let report = Report.run Dspfabric.reference ddg in
      Alcotest.(check bool) (name ^ " legal") true report.Report.legal;
      match report.Report.final_mii with
      | None -> Alcotest.failf "%s: no final MII" name
      | Some final ->
          Alcotest.(check bool)
            (name ^ " final >= ini")
            true
            (final >= report.Report.ini_mii))
    Hca_kernels.Registry.all

let test_coherency_catches_corruption () =
  match Hierarchy.solve small_fabric (diamond ()) ~ii:4 with
  | Error e -> Alcotest.fail e
  | Ok res ->
      Alcotest.(check bool) "initially legal" true (Coherency.is_legal res);
      (* Teleport an instruction to a CN no value was wired to: the
         checker must notice (unless it already sits there). *)
      let original = res.Hierarchy.cn_of_instr.(3) in
      res.Hierarchy.cn_of_instr.(3) <- (original + 1) mod 4;
      Alcotest.(check bool) "corruption caught" false (Coherency.is_legal res);
      res.Hierarchy.cn_of_instr.(3) <- original

let test_metrics_sanity () =
  match Hierarchy.solve small_fabric (diamond ()) ~ii:4 with
  | Error e -> Alcotest.fail e
  | Ok res ->
      let m = Metrics.of_result res in
      Alcotest.(check int) "rec" 1 m.Metrics.rec_mii;
      Alcotest.(check bool) "final >= ini" true (m.Metrics.final_mii >= m.Metrics.ini_mii);
      Alcotest.(check bool) "final >= cls" true (m.Metrics.final_mii >= m.Metrics.max_cls_mii)

let test_report_rows () =
  let report = Report.run Dspfabric.reference (Hca_kernels.Fir2dim.ddg ()) in
  let row = Report.row report in
  Alcotest.(check int) "columns" (List.length Report.header) (List.length row);
  Alcotest.(check string) "name" "fir2dim" (List.hd row)

let test_report_failure_row () =
  let row =
    Report.failure_row ~kernel:"x" ~machine:"m" (diamond ()) "boom"
  in
  Alcotest.(check bool) "not legal" false row.Report.legal;
  Alcotest.(check (option string)) "error kept" (Some "boom") row.Report.error

let test_hierarchy_narrow_fabric_fails_or_degrades () =
  (* N = M = K = 1 cannot carry idcthor's traffic at any II we allow:
     either it fails or legality costs a much larger final MII. *)
  let narrow = Dspfabric.make ~n:1 ~m:1 ~k:1 () in
  let report = Report.run narrow (Hca_kernels.Idcthor.ddg ()) in
  let wide = Report.run Dspfabric.reference (Hca_kernels.Idcthor.ddg ()) in
  match (report.Report.final_mii, wide.Report.final_mii) with
  | None, _ -> () (* failing outright is acceptable degradation *)
  | Some narrow_mii, Some wide_mii ->
      Alcotest.(check bool) "degrades" true (narrow_mii >= wide_mii)
  | Some _, None -> Alcotest.fail "reference machine must clusterise idcthor"

(* --- coherency negative cases --------------------------------------- *)


let test_coherency_lists_specific_errors () =
  match Hierarchy.solve small_fabric (diamond ()) ~ii:4 with
  | Error e -> Alcotest.fail e
  | Ok res -> (
      (* Invalidate the placement out of machine range. *)
      let original = res.Hierarchy.cn_of_instr.(0) in
      res.Hierarchy.cn_of_instr.(0) <- 99;
      (match Coherency.check res with
      | Ok () -> Alcotest.fail "out-of-range CN accepted"
      | Error msgs ->
          Alcotest.(check bool) "explains the violation" true
            (List.exists
               (fun m ->
                 let re = "%0" in
                 let rec search i =
                   i + String.length re <= String.length m
                   && (String.sub m i (String.length re) = re || search (i + 1))
                 in
                 search 0)
               msgs));
      res.Hierarchy.cn_of_instr.(0) <- original;
      Alcotest.(check bool) "restored" true (Coherency.is_legal res))

(* --- negative paths: mutated known-good configurations ------------------ *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let solve_spread () =
  (* ii=1 forces the diamond across all four CNs, so every hierarchy
     level carries real traffic worth corrupting. *)
  match Hierarchy.solve small_fabric (diamond ()) ~ii:1 with
  | Error e -> Alcotest.fail e
  | Ok res ->
      Alcotest.(check bool) "initially legal" true (Coherency.is_legal res);
      res

let root_subresult res =
  List.find
    (fun (s : Hierarchy.subresult) -> s.Hierarchy.path = [])
    (Hierarchy.subresults res)

let expect_rejection res label substrings =
  match Coherency.check res with
  | Ok () -> Alcotest.failf "%s: mutation accepted" label
  | Error msgs ->
      let all = String.concat " | " msgs in
      Alcotest.(check bool)
        (label ^ ": diagnostic names the violation")
        true
        (List.exists (contains all) substrings)

let test_coherency_rejects_dropped_copy () =
  let res = solve_spread () in
  let flow = State.flow (root_subresult res).Hierarchy.state in
  (match List.find_opt (fun (_, _, vs) -> vs <> []) (Copy_flow.arcs flow) with
  | Some (src, dst, v :: _) -> Copy_flow.remove_copy flow ~src ~dst v
  | _ -> Alcotest.fail "no copy to drop at the root");
  expect_rejection res "dropped copy" [ "no path between the two cluster sets" ]

let test_coherency_rejects_dropped_wire_value () =
  let res = solve_spread () in
  let model = (root_subresult res).Hierarchy.mapres.Mapper.model in
  let exception Done in
  (try
     for nd = 0 to Machine_model.nodes model - 1 do
       List.iter
         (fun w ->
           match Machine_model.wire_values model w with
           | v :: _ ->
               Machine_model.remove_value model ~wire:w v;
               raise Done
           | [] -> ())
         (Machine_model.used_out_wires model nd)
     done;
     Alcotest.fail "no wire value to drop at the root"
   with Done -> ());
  expect_rejection res "dropped wire value"
    [ "no path between the two cluster sets" ]

let test_coherency_rejects_overfilled_mux () =
  (* A 4-children root offers enough foreign wires to overfill one
     MUX with distinct connections (duplicates are a separate error). *)
  let wide = Dspfabric.make ~fanouts:[| 4; 2 |] ~n:4 ~m:4 ~k:4 () in
  match Hierarchy.solve wide (diamond ()) ~ii:1 with
  | Error e -> Alcotest.fail e
  | Ok res ->
      Alcotest.(check bool) "initially legal" true (Coherency.is_legal res);
      let model = (root_subresult res).Hierarchy.mapres.Mapper.model in
      let nodes = Machine_model.nodes model
      and cap = Machine_model.in_capacity model
      and out_cap = Machine_model.out_capacity model in
      let dst = nodes - 1 in
      let added = ref 0 in
      for w = 0 to (nodes * out_cap) - 1 do
        if
          !added <= cap && w / out_cap <> dst
          && not (List.mem dst (Machine_model.wire_sinks model w))
        then begin
          Machine_model.inject_sink model ~wire:w ~dst;
          incr added
        end
      done;
      Alcotest.(check bool) "injected past capacity" true (!added > cap);
      expect_rejection res "overfilled mux" [ "exceed capacity" ]

let test_coherency_rejects_dropped_external_in () =
  let res = solve_spread () in
  let rec find = function
    | [] -> Alcotest.fail "no external input reservation to drop"
    | (sub : Hierarchy.subresult) :: rest ->
        let model = sub.Hierarchy.mapres.Mapper.model in
        let rec node nd =
          if nd >= Machine_model.nodes model then find rest
          else
            match Machine_model.external_ins model nd with
            | label :: _ -> Machine_model.drop_external_in model ~dst:nd ~label
            | [] -> node (nd + 1)
        in
        node 0
  in
  find (Hierarchy.subresults res);
  expect_rejection res "dropped external input"
    [
      "value does not reach the consumer's cluster set";
      "value enters on no input port";
    ]

let test_coherency_rejects_cross_wired_clusters () =
  let res = solve_spread () in
  (* Swap two instructions across the level-0 boundary: every routed
     copy now serves the wrong producer. *)
  let a = res.Hierarchy.cn_of_instr.(1) and b = res.Hierarchy.cn_of_instr.(2) in
  Alcotest.(check bool) "placed on distinct CNs" true (a <> b);
  res.Hierarchy.cn_of_instr.(1) <- b;
  res.Hierarchy.cn_of_instr.(2) <- a;
  expect_rejection res "cross-wired clusters"
    [
      "no path between the two cluster sets";
      "value owed upwards on no output port";
      "value does not reach its output port";
      "value does not reach the consumer's cluster set";
    ]

let test_hierarchy_leaf_of_path () =
  match Hierarchy.solve small_fabric (diamond ()) ~ii:4 with
  | Error e -> Alcotest.fail e
  | Ok res ->
      Alcotest.(check bool) "root" true (Hierarchy.leaf_of_path res [] <> None);
      Alcotest.(check bool) "bad path" true (Hierarchy.leaf_of_path res [ 9 ] = None)

let test_hierarchy_counts_consistent () =
  match Hierarchy.solve small_fabric (diamond ()) ~ii:4 with
  | Error e -> Alcotest.fail e
  | Ok res ->
      let total =
        List.init 4 (fun cn -> Hierarchy.cn_count res cn)
        |> List.fold_left ( + ) 0
      in
      (* Every instruction plus every forward is on some CN. *)
      Alcotest.(check int) "all placed" (4 + List.length res.Hierarchy.forwards) total

let () =
  Alcotest.run "core"
    [
      ( "problem",
        [
          Alcotest.test_case "of_ddg" `Quick test_problem_of_ddg;
          Alcotest.test_case "rejects ports" `Quick test_problem_of_ddg_rejects_ports;
          Alcotest.test_case "working set" `Quick test_problem_working_set_ports;
          Alcotest.test_case "missing input" `Quick test_problem_missing_input_fails;
          Alcotest.test_case "pass-through" `Quick test_problem_pass_through_forward;
          Alcotest.test_case "orphan output" `Quick test_problem_orphan_output_fails;
          Alcotest.test_case "height/depth" `Quick test_problem_height_depth;
        ] );
      ( "state",
        [
          Alcotest.test_case "assign" `Quick test_state_assign_basic;
          Alcotest.test_case "same cluster" `Quick test_state_same_cluster_no_copy;
          Alcotest.test_case "cross cluster" `Quick test_state_cross_cluster_copy;
          Alcotest.test_case "resources" `Quick test_state_resource_rejection;
          Alcotest.test_case "communication" `Quick test_state_comm_rejection;
          Alcotest.test_case "force assign" `Quick test_state_force_assign_blocked;
          Alcotest.test_case "penalty" `Quick test_state_penalty;
          Alcotest.test_case "summary" `Quick test_state_summary_pressure;
        ] );
      ( "router",
        [
          Alcotest.test_case "detour (Fig. 6)" `Quick test_router_detour;
          Alcotest.test_case "hop limit" `Quick test_router_hop_limit;
        ] );
      ( "see",
        [
          Alcotest.test_case "diamond" `Quick test_see_solves_diamond;
          Alcotest.test_case "capacity" `Quick test_see_respects_capacity;
          Alcotest.test_case "ports preassigned" `Quick test_see_pinned_ports_preassigned;
          Alcotest.test_case "co-location (Fig. 10)" `Quick test_see_forced_colocation_fig10;
          Alcotest.test_case "alternatives sorted" `Quick test_see_alternatives_sorted;
          Alcotest.test_case "priority modes" `Quick test_see_priority_modes;
        ] );
      ( "regions",
        [
          Alcotest.test_case "coverage" `Quick test_regions_cover_free_nodes;
          Alcotest.test_case "capacity" `Quick test_regions_capacity;
          Alcotest.test_case "separation" `Quick test_regions_separate_columns;
        ] );
      ( "mapper",
        [
          Alcotest.test_case "basic" `Quick test_mapper_basic;
          Alcotest.test_case "broadcast merge (Fig. 9)" `Quick test_mapper_broadcast_merging;
          Alcotest.test_case "ILI payloads" `Quick test_mapper_ili_payloads;
          Alcotest.test_case "wire cap" `Quick test_mapper_wire_cap;
          Alcotest.test_case "ili accessors" `Quick test_ili_accessors;
        ] );
      ( "hierarchy",
        [
          Alcotest.test_case "small fabric" `Quick test_hierarchy_small_fabric;
          Alcotest.test_case "all kernels legal" `Slow test_hierarchy_full_kernels_legal;
          Alcotest.test_case "coherency catches corruption" `Quick
            test_coherency_catches_corruption;
          Alcotest.test_case "metrics" `Quick test_metrics_sanity;
          Alcotest.test_case "report rows" `Slow test_report_rows;
          Alcotest.test_case "failure row" `Quick test_report_failure_row;
          Alcotest.test_case "narrow fabric degrades" `Slow
            test_hierarchy_narrow_fabric_fails_or_degrades;
          Alcotest.test_case "specific errors" `Quick
            test_coherency_lists_specific_errors;
          Alcotest.test_case "rejects dropped copy" `Quick
            test_coherency_rejects_dropped_copy;
          Alcotest.test_case "rejects dropped wire value" `Quick
            test_coherency_rejects_dropped_wire_value;
          Alcotest.test_case "rejects overfilled mux" `Quick
            test_coherency_rejects_overfilled_mux;
          Alcotest.test_case "rejects dropped external in" `Quick
            test_coherency_rejects_dropped_external_in;
          Alcotest.test_case "rejects cross-wired clusters" `Quick
            test_coherency_rejects_cross_wired_clusters;
          Alcotest.test_case "leaf_of_path" `Quick test_hierarchy_leaf_of_path;
          Alcotest.test_case "count consistency" `Quick
            test_hierarchy_counts_consistent;
        ] );
    ]

