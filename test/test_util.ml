(* Unit and property tests for the utility library: Vec, Prng, Tabular. *)

open Hca_util

let test_vec_push_get () =
  let v = Vec.create () in
  for i = 0 to 99 do
    Alcotest.(check int) "push returns index" i (Vec.push v (i * 2))
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  for i = 0 to 99 do
    Alcotest.(check int) "get" (i * 2) (Vec.get v i)
  done

let test_vec_set () =
  let v = Vec.create () in
  ignore (Vec.push v 1);
  ignore (Vec.push v 2);
  Vec.set v 0 42;
  Alcotest.(check int) "set" 42 (Vec.get v 0);
  Alcotest.(check int) "untouched" 2 (Vec.get v 1)

let test_vec_bounds () =
  let v = Vec.create () in
  ignore (Vec.push v 0);
  Alcotest.check_raises "get out of bounds"
    (Invalid_argument "Vec: index out of bounds") (fun () ->
      ignore (Vec.get v 1));
  Alcotest.check_raises "negative index"
    (Invalid_argument "Vec: index out of bounds") (fun () ->
      ignore (Vec.get v (-1)))

let test_vec_iter_fold () =
  let v = Vec.of_array [| 1; 2; 3; 4 |] in
  Alcotest.(check int) "fold sum" 10 (Vec.fold ( + ) 0 v);
  let seen = ref [] in
  Vec.iteri (fun i x -> seen := (i, x) :: !seen) v;
  Alcotest.(check (list (pair int int)))
    "iteri order"
    [ (0, 1); (1, 2); (2, 3); (3, 4) ]
    (List.rev !seen);
  Alcotest.(check bool) "exists" true (Vec.exists (fun x -> x = 3) v);
  Alcotest.(check bool) "not exists" false (Vec.exists (fun x -> x = 9) v)

let test_vec_to_array_copies () =
  let v = Vec.of_array [| 1; 2 |] in
  let a = Vec.to_array v in
  a.(0) <- 99;
  Alcotest.(check int) "to_array is a copy" 1 (Vec.get v 0)

let test_prng_deterministic () =
  let a = Prng.create 7 and b = Prng.create 7 in
  for _ = 1 to 50 do
    Alcotest.(check int64) "same stream" (Prng.next a) (Prng.next b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let differs = ref false in
  for _ = 1 to 16 do
    if Prng.next a <> Prng.next b then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_prng_int_range () =
  let rng = Prng.create 42 in
  for _ = 1 to 1000 do
    let x = Prng.int rng 17 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 17)
  done

let test_prng_int_bad_bound () =
  let rng = Prng.create 1 in
  Alcotest.check_raises "zero bound"
    (Invalid_argument "Prng.int: bound must be positive") (fun () ->
      ignore (Prng.int rng 0))

let test_prng_float_range () =
  let rng = Prng.create 9 in
  for _ = 1 to 1000 do
    let x = Prng.float rng 2.5 in
    Alcotest.(check bool) "in range" true (x >= 0.0 && x < 2.5)
  done

let test_prng_shuffle_permutation () =
  let rng = Prng.create 5 in
  let a = Array.init 64 (fun i -> i) in
  Prng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 64 (fun i -> i)) sorted

let test_prng_split_independent () =
  let rng = Prng.create 11 in
  let child = Prng.split rng in
  (* The two streams should not be identical. *)
  let differs = ref false in
  for _ = 1 to 16 do
    if Prng.next rng <> Prng.next child then differs := true
  done;
  Alcotest.(check bool) "split stream differs" true !differs

let test_tabular_alignment () =
  let t = Tabular.create [ ("name", Tabular.Left); ("n", Tabular.Right) ] in
  Tabular.add_row t [ "a"; "1" ];
  Tabular.add_row t [ "long-name"; "12345" ];
  let out = Tabular.render t in
  let lines = String.split_on_char '\n' out in
  (match lines with
  | header :: _ ->
      Alcotest.(check bool)
        "header padded" true
        (String.length header >= String.length "long-name  12345")
  | [] -> Alcotest.fail "no output");
  Alcotest.(check bool) "contains rule" true (String.contains out '-')

let test_tabular_arity_check () =
  let t = Tabular.create [ ("a", Tabular.Left) ] in
  Alcotest.check_raises "cell count"
    (Invalid_argument "Tabular.add_row: cell count mismatch") (fun () ->
      Tabular.add_row t [ "x"; "y" ])

(* Bitset vs a boolean-array model: any interleaving of set/clear/reset
   leaves both agreeing on membership, cardinality and enumeration. *)
let apply_ops width ops =
  let b = Bitset.create width in
  let model = Array.make width false in
  List.iter
    (fun (tag, i) ->
      let i = i mod width in
      match tag mod 3 with
      | 0 ->
          Bitset.set b i;
          model.(i) <- true
      | 1 ->
          Bitset.clear b i;
          model.(i) <- false
      | _ ->
          Bitset.reset b;
          Array.fill model 0 width false)
    ops;
  (b, model)

let ops_gen =
  QCheck.(pair (int_range 1 80) (small_list (pair small_int small_int)))

let prop_bitset_model =
  QCheck.Test.make ~name:"Bitset agrees with bool-array model" ~count:300
    ops_gen (fun (width, ops) ->
      let b, model = apply_ops width ops in
      let mem_ok = ref true in
      for i = 0 to width - 1 do
        if Bitset.mem b i <> model.(i) then mem_ok := false
      done;
      let card = Array.fold_left (fun n x -> if x then n + 1 else n) 0 model in
      let listed =
        Array.to_list model
        |> List.mapi (fun i x -> (i, x))
        |> List.filter_map (fun (i, x) -> if x then Some i else None)
      in
      !mem_ok
      && Bitset.cardinal b = card
      && Bitset.to_list b = listed
      && Bitset.fold (fun _ n -> n + 1) b 0 = card)

let prop_bitset_inter =
  QCheck.Test.make ~name:"Bitset.inter_count matches the model intersection"
    ~count:300
    QCheck.(
      triple (int_range 1 80)
        (small_list (pair small_int small_int))
        (small_list (pair small_int small_int)))
    (fun (width, ops_a, ops_b) ->
      let a, ma = apply_ops width ops_a in
      let b, mb = apply_ops width ops_b in
      let expect = ref 0 in
      for i = 0 to width - 1 do
        if ma.(i) && mb.(i) then incr expect
      done;
      Bitset.inter_count a b = !expect)

let prop_bitset_copy =
  QCheck.Test.make ~name:"Bitset.copy is independent and equal" ~count:200
    ops_gen (fun (width, ops) ->
      let b, _ = apply_ops width ops in
      let c = Bitset.copy b in
      let eq_before = Bitset.equal b c in
      Bitset.set c 0;
      Bitset.clear b 0;
      eq_before && Bitset.mem c 0 && not (Bitset.mem b 0))

let test_bitset_bounds () =
  let b = Bitset.create 9 in
  Alcotest.check_raises "set out of bounds"
    (Invalid_argument "Bitset: index out of bounds") (fun () -> Bitset.set b 9);
  Alcotest.check_raises "mem negative"
    (Invalid_argument "Bitset: index out of bounds") (fun () ->
      ignore (Bitset.mem b (-1)));
  Alcotest.check_raises "width mismatch"
    (Invalid_argument "Bitset.inter_count: width mismatch") (fun () ->
      ignore (Bitset.inter_count b (Bitset.create 8)))

let prop_vec_roundtrip =
  QCheck.Test.make ~name:"Vec.of_array |> to_array is identity" ~count:200
    QCheck.(array small_int)
    (fun a -> Hca_util.Vec.to_array (Hca_util.Vec.of_array a) = a)

let prop_prng_bounded =
  QCheck.Test.make ~name:"Prng.int stays within any bound" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Prng.create seed in
      let x = Prng.int rng bound in
      x >= 0 && x < bound)

let () =
  Alcotest.run "util"
    [
      ( "vec",
        [
          Alcotest.test_case "push/get" `Quick test_vec_push_get;
          Alcotest.test_case "set" `Quick test_vec_set;
          Alcotest.test_case "bounds" `Quick test_vec_bounds;
          Alcotest.test_case "iter/fold" `Quick test_vec_iter_fold;
          Alcotest.test_case "to_array copies" `Quick test_vec_to_array_copies;
          QCheck_alcotest.to_alcotest prop_vec_roundtrip;
        ] );
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "int range" `Quick test_prng_int_range;
          Alcotest.test_case "bad bound" `Quick test_prng_int_bad_bound;
          Alcotest.test_case "float range" `Quick test_prng_float_range;
          Alcotest.test_case "shuffle permutes" `Quick test_prng_shuffle_permutation;
          Alcotest.test_case "split independent" `Quick test_prng_split_independent;
          QCheck_alcotest.to_alcotest prop_prng_bounded;
        ] );
      ( "bitset",
        [
          Alcotest.test_case "bounds" `Quick test_bitset_bounds;
          QCheck_alcotest.to_alcotest prop_bitset_model;
          QCheck_alcotest.to_alcotest prop_bitset_inter;
          QCheck_alcotest.to_alcotest prop_bitset_copy;
        ] );
      ( "tabular",
        [
          Alcotest.test_case "alignment" `Quick test_tabular_alignment;
          Alcotest.test_case "arity check" `Quick test_tabular_arity_check;
        ] );
    ]
