(* Tests for the machine models: resource tables, pattern graphs, copy
   flow, DSPFabric and RCP descriptions, and the wire-level model. *)

open Hca_machine
open Hca_ddg

(* --- resources ------------------------------------------------------ *)

let r alus ags = { Resource.alus; ags }

let test_resource_arith () =
  Alcotest.(check bool) "add" true
    (Resource.equal (r 3 5) (Resource.add (r 1 2) (r 2 3)));
  Alcotest.(check bool) "scale" true (Resource.equal (r 8 8) (Resource.scale 8 Resource.cn))

let test_resource_classes () =
  Alcotest.(check bool) "alu demand" true
    (Resource.equal (r 1 0) (Resource.of_unit_class Opcode.Alu));
  Alcotest.(check bool) "ag demand" true
    (Resource.equal (r 0 1) (Resource.of_unit_class Opcode.Ag))

let test_resource_fits_single_issue () =
  (* One CN: 1 ALU + 1 AG but single issue => 2 ALU ops need ii 2. *)
  let cap = Resource.cn in
  Alcotest.(check bool) "1 op at ii 1" true
    (Resource.fits ~demand:(r 1 0) ~capacity:cap ~ii:1);
  Alcotest.(check bool) "alu+ag at ii 1 blocked by issue" false
    (Resource.fits ~demand:(r 1 1) ~capacity:cap ~ii:1);
  Alcotest.(check bool) "alu+ag at ii 2" true
    (Resource.fits ~demand:(r 1 1) ~capacity:cap ~ii:2)

let test_resource_min_ii () =
  Alcotest.(check int) "empty" 1 (Resource.min_ii ~demand:Resource.zero ~capacity:Resource.cn);
  Alcotest.(check int) "issue bound" 5
    (Resource.min_ii ~demand:(r 3 2) ~capacity:Resource.cn);
  Alcotest.(check int) "no ag capacity" max_int
    (Resource.min_ii ~demand:(r 0 1) ~capacity:(r 4 0))

let test_resource_demand () =
  let g = Hca_kernels.Fir2dim.ddg () in
  let all = List.init (Ddg.size g) (fun i -> i) in
  let d = Resource.demand g all in
  Alcotest.(check int) "total" (Ddg.size g) (d.Resource.alus + d.Resource.ags)

(* --- pattern graph --------------------------------------------------- *)

let complete4 () =
  Pattern_graph.complete ~name:"t" ~capacities:(Array.make 4 (r 4 4)) ~max_in:2

let test_pg_complete () =
  let pg = complete4 () in
  Alcotest.(check int) "size" 4 (Pattern_graph.size pg);
  Alcotest.(check bool) "no self arc" false (Pattern_graph.is_potential pg ~src:0 ~dst:0);
  Alcotest.(check bool) "cross arc" true (Pattern_graph.is_potential pg ~src:0 ~dst:3);
  Alcotest.(check int) "preds" 3 (List.length (Pattern_graph.potential_preds pg 1))

let test_pg_with_ports () =
  let pg =
    Pattern_graph.with_ports (complete4 ())
      ~inputs:[ (0, [ 10; 11 ]); (1, [ 12 ]) ]
      ~outputs:[ (0, [ 13 ]) ]
  in
  Alcotest.(check int) "size" 7 (Pattern_graph.size pg);
  Alcotest.(check int) "in ports" 2 (List.length (Pattern_graph.in_ports pg));
  Alcotest.(check int) "out ports" 1 (List.length (Pattern_graph.out_ports pg));
  (* Input ports reach every regular node but not other ports. *)
  Alcotest.(check bool) "in->reg" true (Pattern_graph.is_potential pg ~src:4 ~dst:0);
  Alcotest.(check bool) "in->out" false (Pattern_graph.is_potential pg ~src:4 ~dst:6);
  Alcotest.(check bool) "reg->out" true (Pattern_graph.is_potential pg ~src:2 ~dst:6);
  Alcotest.(check bool) "out is sink" false (Pattern_graph.is_potential pg ~src:6 ~dst:0);
  let port = List.hd (Pattern_graph.in_ports pg) in
  Alcotest.(check (list int)) "port values" [ 10; 11 ] (Pattern_graph.port_values port)

let test_pg_double_ports_rejected () =
  let pg = Pattern_graph.with_ports (complete4 ()) ~inputs:[ (0, [ 1 ]) ] ~outputs:[] in
  Alcotest.check_raises "double ports"
    (Invalid_argument "Pattern_graph.with_ports: graph already has ports")
    (fun () -> ignore (Pattern_graph.with_ports pg ~inputs:[] ~outputs:[]))

let test_pg_adjacency () =
  let pg =
    Pattern_graph.of_adjacency ~name:"ring" ~capacities:(Array.make 3 (r 1 1))
      ~max_in:1 ~potential:[ (0, 1); (1, 2); (2, 0) ]
  in
  Alcotest.(check bool) "0->1" true (Pattern_graph.is_potential pg ~src:0 ~dst:1);
  Alcotest.(check bool) "1->0 absent" false (Pattern_graph.is_potential pg ~src:1 ~dst:0)

(* --- copy flow -------------------------------------------------------- *)

let test_flow_add_and_query () =
  let flow = Copy_flow.create (complete4 ()) in
  Copy_flow.add_copy flow ~src:0 ~dst:1 7;
  Copy_flow.add_copy flow ~src:0 ~dst:1 8;
  Copy_flow.add_copy flow ~src:0 ~dst:1 7;
  Alcotest.(check (list int)) "dedup, order kept" [ 7; 8 ]
    (Copy_flow.copies flow ~src:0 ~dst:1);
  Alcotest.(check int) "count" 2 (Copy_flow.copy_count flow);
  Alcotest.(check (list int)) "in neighbors" [ 0 ] (Copy_flow.real_in_neighbors flow 1);
  Alcotest.(check int) "in pressure" 2 (Copy_flow.in_pressure flow 1);
  Alcotest.(check int) "out pressure" 2 (Copy_flow.out_pressure flow 0)

let test_flow_max_in_enforced () =
  let flow = Copy_flow.create (complete4 ()) in
  Copy_flow.add_copy flow ~src:1 ~dst:0 1;
  Copy_flow.add_copy flow ~src:2 ~dst:0 2;
  (* max_in = 2: a third distinct source is rejected. *)
  Alcotest.(check bool) "third source blocked" false
    (Copy_flow.can_add flow ~src:3 ~dst:0);
  (* But more values on an existing arc are fine. *)
  Alcotest.(check bool) "existing arc open" true
    (Copy_flow.can_add flow ~src:1 ~dst:0);
  Alcotest.check_raises "add_copy checks"
    (Invalid_argument "Copy_flow.add_copy: arc 3->0 not allowed") (fun () ->
      Copy_flow.add_copy flow ~src:3 ~dst:0 9)

let test_flow_out_port_unary () =
  let pg =
    Pattern_graph.with_ports (complete4 ()) ~inputs:[] ~outputs:[ (0, [ 1; 2 ]) ]
  in
  let flow = Copy_flow.create pg in
  let port = (List.hd (Pattern_graph.out_ports pg)).Pattern_graph.id in
  Copy_flow.add_copy flow ~src:0 ~dst:port 1;
  Alcotest.(check bool) "same cluster again" true (Copy_flow.can_add flow ~src:0 ~dst:port);
  Alcotest.(check bool) "second cluster rejected" false
    (Copy_flow.can_add flow ~src:1 ~dst:port)

let test_flow_in_port_limit () =
  let pg =
    Pattern_graph.with_ports (complete4 ()) ~inputs:[ (0, [ 1 ]); (1, [ 2 ]) ]
      ~outputs:[]
  in
  let flow = Copy_flow.create ~max_in_ports:1 pg in
  let ports = List.map (fun (n : Pattern_graph.node) -> n.id) (Pattern_graph.in_ports pg) in
  match ports with
  | [ p1; p2 ] ->
      Copy_flow.add_copy flow ~src:p1 ~dst:0 1;
      Alcotest.(check bool) "second port blocked" false
        (Copy_flow.can_add flow ~src:p2 ~dst:1);
      Alcotest.(check bool) "same port ok" true (Copy_flow.can_add flow ~src:p1 ~dst:1)
  | _ -> Alcotest.fail "expected two ports"

let test_flow_reserved_backbone () =
  let flow = Copy_flow.create (complete4 ()) in
  Copy_flow.reserve_neighbor flow ~src:1 ~dst:0;
  Copy_flow.add_copy flow ~src:2 ~dst:0 5;
  (* Reserved + one real = in-degree budget (2) committed. *)
  Alcotest.(check bool) "third blocked" false (Copy_flow.can_add flow ~src:3 ~dst:0);
  Alcotest.(check bool) "reserved arc open" true (Copy_flow.can_add flow ~src:1 ~dst:0);
  Copy_flow.add_copy flow ~src:1 ~dst:0 6;
  Alcotest.(check int) "copies" 2 (Copy_flow.copy_count flow)

let test_flow_clone_isolation () =
  let flow = Copy_flow.create (complete4 ()) in
  Copy_flow.add_copy flow ~src:0 ~dst:1 1;
  let copy = Copy_flow.clone flow in
  Copy_flow.add_copy copy ~src:0 ~dst:1 2;
  Alcotest.(check int) "original untouched" 1 (Copy_flow.copy_count flow);
  Alcotest.(check int) "clone grew" 2 (Copy_flow.copy_count copy)

(* --- dspfabric -------------------------------------------------------- *)

let test_fabric_reference () =
  let f = Dspfabric.reference in
  Alcotest.(check int) "64 CNs" 64 (Dspfabric.total_cns f);
  Alcotest.(check int) "3 levels" 3 (Dspfabric.depth f);
  Alcotest.(check int) "N" 8 (Dspfabric.n f);
  Alcotest.(check int) "K" 8 (Dspfabric.k f);
  Alcotest.(check int) "dma" 8 (Dspfabric.dma_ports f)

let test_fabric_level_views () =
  let f = Dspfabric.reference in
  let v0 = Dspfabric.level_view f ~level:0 in
  Alcotest.(check int) "level0 children" 4 v0.Dspfabric.children;
  Alcotest.(check int) "level0 cns" 16 v0.Dspfabric.cns_per_child;
  Alcotest.(check bool) "level0 not leaf" false v0.Dspfabric.is_leaf;
  Alcotest.(check int) "level0 mux" 8 v0.Dspfabric.mux_capacity;
  let v2 = Dspfabric.level_view f ~level:2 in
  Alcotest.(check bool) "leaf" true v2.Dspfabric.is_leaf;
  Alcotest.(check int) "leaf in wires" 2 v2.Dspfabric.mux_capacity;
  Alcotest.(check int) "leaf out wires" 1 v2.Dspfabric.out_capacity;
  Alcotest.(check int) "leaf K" 8 v2.Dspfabric.max_in_ports;
  Alcotest.(check bool) "leaf capacity is one CN" true
    (Array.for_all (Resource.equal Resource.cn)
       (Dspfabric.child_capacities f ~path:[ 0; 0 ]))

let test_fabric_validation () =
  Alcotest.check_raises "bad N"
    (Invalid_argument "Dspfabric.make: MUX capacities must be positive")
    (fun () -> ignore (Dspfabric.make ~n:0 ~m:1 ~k:1 ()));
  Alcotest.check_raises "bad level"
    (Invalid_argument "Machine_desc.level_view: level out of range") (fun () ->
      ignore (Dspfabric.level_view Dspfabric.reference ~level:3))

let test_fabric_resources () =
  let r = Dspfabric.resources Dspfabric.reference in
  Alcotest.(check int) "issue" 64 r.Mii.issue_slots;
  Alcotest.(check int) "dma" 8 r.Mii.dma_ports

(* --- rcp --------------------------------------------------------------- *)

let test_rcp_sources () =
  let t = Rcp.default in
  Alcotest.(check int) "8 clusters" 8 (Rcp.clusters t);
  Alcotest.(check (list int)) "ring neighbours of 0" [ 1; 2; 6; 7 ]
    (Rcp.potential_sources t 0)

let test_rcp_pattern_graph () =
  let pg = Rcp.pattern_graph Rcp.default in
  Alcotest.(check int) "nodes" 8 (Pattern_graph.size pg);
  Alcotest.(check int) "max_in = ports" 2 (Pattern_graph.max_in pg);
  Alcotest.(check bool) "ring arc" true (Pattern_graph.is_potential pg ~src:1 ~dst:0);
  Alcotest.(check bool) "far arc absent" false (Pattern_graph.is_potential pg ~src:4 ~dst:0);
  (* Heterogeneous: odd clusters have no AG. *)
  let cap1 = (Pattern_graph.node pg 1).Pattern_graph.capacity in
  Alcotest.(check int) "no ag on odd" 0 cap1.Resource.ags;
  let cap0 = (Pattern_graph.node pg 0).Pattern_graph.capacity in
  Alcotest.(check int) "ag on even" 1 cap0.Resource.ags

(* --- machine model ------------------------------------------------------ *)

let test_model_wires () =
  let m = Machine_model.create ~nodes:4 ~in_capacity:2 ~out_capacity:2 in
  let w = Option.get (Machine_model.alloc_out_wire m 0) in
  Alcotest.(check int) "owner" 0 (Machine_model.owner m w);
  Alcotest.(check int) "free out" 1 (Machine_model.free_out_wires m 0);
  (match Machine_model.connect m ~wire:w ~dst:1 with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Machine_model.put_value m ~wire:w 42;
  Alcotest.(check (list int)) "payload" [ 42 ] (Machine_model.wire_values m w);
  Alcotest.(check (list int)) "sinks" [ 1 ] (Machine_model.wire_sinks m w);
  Alcotest.(check int) "in slots" 1 (Machine_model.free_in_slots m 1);
  Alcotest.(check bool) "validate" true (Machine_model.validate m = Ok ())

let test_model_connect_errors () =
  let m = Machine_model.create ~nodes:2 ~in_capacity:1 ~out_capacity:1 in
  let w = Option.get (Machine_model.alloc_out_wire m 0) in
  (match Machine_model.connect m ~wire:w ~dst:0 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "self feed allowed");
  (match Machine_model.connect m ~wire:w ~dst:1 with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match Machine_model.connect m ~wire:w ~dst:1 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "duplicate feed allowed");
  Alcotest.(check bool) "out exhausted" true (Machine_model.alloc_out_wire m 0 = None)

let test_model_external_reservations () =
  let m = Machine_model.create ~nodes:2 ~in_capacity:2 ~out_capacity:1 in
  (match Machine_model.reserve_external_in m ~dst:0 ~label:7 with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check (list int)) "labels" [ 7 ] (Machine_model.external_ins m 0);
  Alcotest.(check int) "slot consumed" 1 (Machine_model.free_in_slots m 0);
  let w1 =
    match Machine_model.reserve_external_out m ~src:1 ~label:3 with
    | Ok w -> w
    | Error e -> Alcotest.fail e
  in
  (* Out capacity is 1: the second reservation shares the wire. *)
  let w2 =
    match Machine_model.reserve_external_out m ~src:1 ~label:4 with
    | Ok w -> w
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check int) "shared wire" w1 w2;
  Alcotest.(check bool) "validate" true (Machine_model.validate m = Ok ())

let test_model_max_wire_load () =
  let m = Machine_model.create ~nodes:2 ~in_capacity:2 ~out_capacity:1 in
  let w = Option.get (Machine_model.alloc_out_wire m 0) in
  List.iter (fun v -> Machine_model.put_value m ~wire:w v) [ 1; 2; 3 ];
  Alcotest.(check int) "load" 3 (Machine_model.max_wire_load m)

let test_model_clone () =
  let m = Machine_model.create ~nodes:2 ~in_capacity:1 ~out_capacity:1 in
  let w = Option.get (Machine_model.alloc_out_wire m 0) in
  let m' = Machine_model.clone m in
  Machine_model.put_value m' ~wire:w 9;
  Alcotest.(check (list int)) "original empty" [] (Machine_model.wire_values m w)

let () =
  Alcotest.run "machine"
    [
      ( "resource",
        [
          Alcotest.test_case "arith" `Quick test_resource_arith;
          Alcotest.test_case "classes" `Quick test_resource_classes;
          Alcotest.test_case "single issue" `Quick test_resource_fits_single_issue;
          Alcotest.test_case "min_ii" `Quick test_resource_min_ii;
          Alcotest.test_case "demand" `Quick test_resource_demand;
        ] );
      ( "pattern-graph",
        [
          Alcotest.test_case "complete" `Quick test_pg_complete;
          Alcotest.test_case "ports" `Quick test_pg_with_ports;
          Alcotest.test_case "double ports" `Quick test_pg_double_ports_rejected;
          Alcotest.test_case "adjacency" `Quick test_pg_adjacency;
        ] );
      ( "copy-flow",
        [
          Alcotest.test_case "add/query" `Quick test_flow_add_and_query;
          Alcotest.test_case "max_in" `Quick test_flow_max_in_enforced;
          Alcotest.test_case "out port unary" `Quick test_flow_out_port_unary;
          Alcotest.test_case "in port limit" `Quick test_flow_in_port_limit;
          Alcotest.test_case "reserved backbone" `Quick test_flow_reserved_backbone;
          Alcotest.test_case "clone" `Quick test_flow_clone_isolation;
        ] );
      ( "dspfabric",
        [
          Alcotest.test_case "reference" `Quick test_fabric_reference;
          Alcotest.test_case "level views" `Quick test_fabric_level_views;
          Alcotest.test_case "validation" `Quick test_fabric_validation;
          Alcotest.test_case "resources" `Quick test_fabric_resources;
        ] );
      ( "rcp",
        [
          Alcotest.test_case "sources" `Quick test_rcp_sources;
          Alcotest.test_case "pattern graph" `Quick test_rcp_pattern_graph;
        ] );
      ( "machine-model",
        [
          Alcotest.test_case "wires" `Quick test_model_wires;
          Alcotest.test_case "connect errors" `Quick test_model_connect_errors;
          Alcotest.test_case "external" `Quick test_model_external_reservations;
          Alcotest.test_case "wire load" `Quick test_model_max_wire_load;
          Alcotest.test_case "clone" `Quick test_model_clone;
        ] );
    ]
