(* The multicore runtime and the incremental cost path.

   Everything here checks one contract: adding domains (or the
   incremental cache) never changes a result, only the wall clock.  The
   pool must preserve order and surface the sequential error; the top-k
   filter must equal the sorted prefix it replaced; the incremental
   cost must agree bit for bit with the from-scratch recompute; and the
   parallel portfolio/oracle drivers must reproduce their sequential
   runs field for field. *)

open Hca_machine
open Hca_core

(* ------------------------------------------------------------------ *)
(* Domain_pool                                                         *)
(* ------------------------------------------------------------------ *)

let test_pool_order () =
  let xs = List.init 100 Fun.id in
  let expect = List.map (fun i -> i * i) xs in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "order at jobs=%d" jobs)
        expect
        (Hca_util.Domain_pool.parallel_map ~jobs (fun i -> i * i) xs))
    [ 1; 2; 4; 8 ]

let test_pool_empty_and_single () =
  Alcotest.(check (list int))
    "empty" []
    (Hca_util.Domain_pool.parallel_map ~jobs:4 (fun i -> i) []);
  Alcotest.(check (list int))
    "singleton" [ 7 ]
    (Hca_util.Domain_pool.parallel_map ~jobs:4 (fun i -> i + 1) [ 6 ])

let test_pool_first_error_wins () =
  (* The sequential run would die on index 5; the pool must raise that
     same failure no matter which domain finishes first. *)
  List.iter
    (fun jobs ->
      Alcotest.check_raises
        (Printf.sprintf "lowest-index error at jobs=%d" jobs)
        (Failure "boom5")
        (fun () ->
          ignore
            (Hca_util.Domain_pool.parallel_map ~jobs
               (fun i ->
                 if i >= 5 then failwith (Printf.sprintf "boom%d" i) else i)
               (List.init 10 Fun.id))))
    [ 1; 4 ]

let test_pool_reusable () =
  Hca_util.Domain_pool.with_pool ~jobs:3 (fun pool ->
      for round = 1 to 5 do
        let got =
          Hca_util.Domain_pool.map pool (fun i -> i * round) [ 1; 2; 3 ]
        in
        Alcotest.(check (list int))
          (Printf.sprintf "round %d" round)
          [ round; 2 * round; 3 * round ]
          got
      done)

(* ------------------------------------------------------------------ *)
(* Topk                                                                *)
(* ------------------------------------------------------------------ *)

let prop_topk_matches_sorted_prefix =
  (* Small keys force ties, so this also pins the stability contract:
     among equal keys the earlier list element wins. *)
  QCheck.Test.make ~name:"Topk.smallest = sorted prefix (stable)" ~count:500
    QCheck.(pair (int_range 0 12) (small_list (int_range 0 5)))
    (fun (k, keys) ->
      let l = List.mapi (fun i key -> (float_of_int key, i)) keys in
      let key (x, _) = x in
      let reference =
        List.filteri
          (fun i _ -> i < k)
          (List.sort (fun a b -> compare (key a) (key b)) l)
      in
      Hca_util.Topk.smallest ~k ~key l = reference)

(* ------------------------------------------------------------------ *)
(* Incremental cost == from-scratch recompute                          *)
(* ------------------------------------------------------------------ *)

let synthetic_problem seed size =
  let ddg =
    Hca_kernels.Synthetic.generate
      {
        Hca_kernels.Synthetic.default with
        size;
        layers = 3;
        mem_ratio = 0.0;
        recurrences = 1;
        seed;
      }
  in
  let pg =
    Pattern_graph.complete ~name:"inc-cost"
      ~capacities:(Array.make 4 { Resource.alus = 8; ags = 8 })
      ~max_in:4
  in
  Problem.of_ddg ~name:"inc-cost" ~ddg ~pg ()

let prop_incremental_cost_exact =
  QCheck.Test.make
    ~name:"State cost after random moves = recompute_cost, bit for bit"
    ~count:60
    QCheck.(pair (int_range 0 1000) (int_range 6 16))
    (fun (seed, size) ->
      let problem = synthetic_problem seed size in
      let rng = Hca_util.Prng.create (seed + 17) in
      let ii = 8 and target_ii = 8 in
      let weights = Cost.default_weights in
      (* Creation order is topological for the layered generator, so
         producers are placed before their consumers, as in the SEE. *)
      let st = ref (State.create problem) in
      for node = 0 to Problem.size problem - 1 do
        let start = Hca_util.Prng.int rng 4 in
        let rec try_from i =
          if i < 4 then
            match
              State.try_assign !st ~node
                ~cluster:((start + i) mod 4)
                ~ii ~target_ii ~weights
            with
            | Ok st' -> st := st'
            | Error _ -> try_from (i + 1)
        in
        try_from 0
      done;
      let incremental = State.cost !st in
      State.recompute_cost !st ~target_ii ~weights;
      let from_scratch = State.cost !st in
      incremental = from_scratch)

(* ------------------------------------------------------------------ *)
(* Speculative assignment == clone-based assignment                    *)
(* ------------------------------------------------------------------ *)

(* Random walk committing one legal move per node; at every step each
   cluster is probed first speculatively, so the probes run against
   states of every depth.  [probe] sees the current state and a
   pristine clone of it, and returns false to fail the property. *)
let walk_with_probes ~seed ~size probe =
  let problem = synthetic_problem seed size in
  let rng = Hca_util.Prng.create (seed + 23) in
  let ii = 8 and target_ii = 8 in
  let weights = Cost.default_weights in
  let st = ref (State.create problem) in
  let ok = ref true in
  for node = 0 to Problem.size problem - 1 do
    let pristine = State.clone !st in
    for cluster = 0 to 3 do
      if not (probe !st pristine ~node ~cluster ~ii ~target_ii ~weights) then
        ok := false
    done;
    let start = Hca_util.Prng.int rng 4 in
    let rec try_from i =
      if i < 4 then
        match
          State.try_assign !st ~node
            ~cluster:((start + i) mod 4)
            ~ii ~target_ii ~weights
        with
        | Ok st' -> st := st'
        | Error _ -> try_from (i + 1)
    in
    try_from 0
  done;
  !ok

let prop_speculation_roundtrip =
  QCheck.Test.make
    ~name:"speculate_assign + undo leaves the state bit-identical" ~count:40
    QCheck.(pair (int_range 0 1000) (int_range 6 16))
    (fun (seed, size) ->
      walk_with_probes ~seed ~size
        (fun st pristine ~node ~cluster ~ii ~target_ii ~weights ->
          let sig0 = State.signature st in
          (match
             State.speculate_assign st ~node ~cluster ~ii ~target_ii ~weights
           with
          | Ok () -> State.undo_speculation st
          | Error _ -> () (* failed moves roll back on their own *));
          State.debug_identical st pristine
          && State.signature st = sig0
          && State.signature st = State.signature pristine))

let prop_speculative_cost_exact =
  QCheck.Test.make
    ~name:"speculative cost = clone-based try_assign cost, bit for bit"
    ~count:40
    QCheck.(pair (int_range 0 1000) (int_range 6 16))
    (fun (seed, size) ->
      walk_with_probes ~seed ~size
        (fun st _pristine ~node ~cluster ~ii ~target_ii ~weights ->
          let spec =
            match
              State.speculate_assign st ~node ~cluster ~ii ~target_ii ~weights
            with
            | Ok () ->
                let c = State.cost st in
                State.undo_speculation st;
                Some c
            | Error _ -> None
          in
          let cloned =
            match
              State.try_assign st ~node ~cluster ~ii ~target_ii ~weights
            with
            | Ok st' -> Some (State.cost st')
            | Error _ -> None
          in
          match (spec, cloned) with
          | Some a, Some b -> Int64.bits_of_float a = Int64.bits_of_float b
          | None, None -> true
          | _ -> false))

(* The SEE's batched frontier scoring against the per-candidate
   speculate/penalise/undo loop it replaced: same feasibility verdicts,
   bit-equal scores (region-tear penalty included), and the state comes
   back bit-identical.  The candidate array deliberately carries a port
   id and a far out-of-range id to pin the [nan] path. *)
let prop_score_moves_exact =
  QCheck.Test.make
    ~name:"score_moves = speculate/penalise/undo per candidate, bit for bit"
    ~count:40
    QCheck.(triple (int_range 0 1000) (int_range 6 16) (int_range 1 6))
    (fun (seed, size, tail_of_region) ->
      walk_with_probes ~seed ~size
        (fun st pristine ~node ~cluster:_ ~ii ~target_ii ~weights ->
          let clusters = [| 0; 1; 2; 3; 4; 1000 |] in
          let scores = Array.make (Array.length clusters) nan in
          let feasible =
            State.score_moves st ~node ~clusters ~ii ~target_ii ~weights
              ~tail_of_region ~scores
          in
          let expect_feasible = ref 0 in
          let ok = ref (State.debug_identical st pristine) in
          Array.iteri
            (fun k cluster ->
              let reference =
                match
                  State.speculate_assign st ~node ~cluster ~ii ~target_ii
                    ~weights
                with
                | Ok () ->
                    let deficit =
                      tail_of_region - 1
                      - State.free_issue_slots st ~cluster ~ii
                    in
                    if deficit > 0 then
                      State.add_penalty st
                        (weights.Cost.w_tear *. float_of_int deficit);
                    let c = State.cost st in
                    State.undo_speculation st;
                    incr expect_feasible;
                    Some c
                | Error _ -> None
              in
              match reference with
              | Some c ->
                  if Int64.bits_of_float scores.(k) <> Int64.bits_of_float c
                  then ok := false
              | None -> if not (Float.is_nan scores.(k)) then ok := false)
            clusters;
          !ok && feasible = !expect_feasible))

(* ------------------------------------------------------------------ *)
(* Route-Allocator probes == clone-based force_assign                  *)
(* ------------------------------------------------------------------ *)

(* [probe_force]/[commit_probe]/[abort_force] against the retained
   clone path: same error, same blocked triples, a committed snapshot
   indistinguishable from the force_assign clone after its
   [recompute_cost], and the probed state rewound bit for bit. *)
let prop_probe_force_matches_clone_path =
  QCheck.Test.make
    ~name:"probe_force/commit/abort = force_assign on a clone" ~count:40
    QCheck.(pair (int_range 0 1000) (int_range 6 16))
    (fun (seed, size) ->
      walk_with_probes ~seed ~size
        (fun st pristine ~node ~cluster ~ii ~target_ii ~weights ->
          match State.probe_force st ~node ~cluster ~ii with
          | Error e -> (
              State.debug_identical st pristine
              &&
              match State.force_assign st ~node ~cluster ~ii with
              | Error e' -> e = e'
              | Ok _ -> false)
          | Ok blocked -> (
              let committed =
                State.commit_probe st ~target_ii ~weights
              in
              State.abort_force st;
              State.debug_identical st pristine
              && State.signature st = State.signature pristine
              &&
              match State.force_assign st ~node ~cluster ~ii with
              | Error _ -> false
              | Ok (t', blocked') ->
                  State.recompute_cost t' ~target_ii ~weights;
                  blocked = blocked'
                  && State.debug_identical committed t'
                  && State.signature committed = State.signature t')))

(* ------------------------------------------------------------------ *)
(* Parallel drivers reproduce their sequential runs                    *)
(* ------------------------------------------------------------------ *)

let quality_fields (r : Report.t) =
  ( (r.Report.legal, r.Report.final_mii, r.Report.ii_used, r.Report.copies),
    ( r.Report.forwards,
      r.Report.max_wire_load,
      r.Report.explored_states,
      r.Report.routed_moves ) )

(* The memo counters are part of the jobs-invariance contract too:
   only attempts of the sequential walk count towards them. *)
let report_fields (r : Report.t) =
  ( quality_fields r,
    (r.Report.cache_hits, r.Report.cache_misses, r.Report.reused_subproblems)
  )

let test_portfolio_jobs_invariant () =
  let fabric = Dspfabric.reference in
  List.iter
    (fun (name, f) ->
      let ddg = f () in
      let seq = Portfolio.run_all ~jobs:1 fabric ddg in
      let par = Portfolio.run_all ~jobs:4 fabric ddg in
      List.iter2
        (fun (cfg1, r1) (cfg4, r4) ->
          Alcotest.(check string)
            (name ^ ": config order") cfg1 cfg4;
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s: identical report" name cfg1)
            true
            (report_fields r1 = report_fields r4))
        seq par;
      let _, winner1 = Portfolio.best_of seq in
      let _, winner4 = Portfolio.best_of par in
      Alcotest.(check string) (name ^ ": same winner") winner1 winner4)
    Hca_kernels.Registry.all

let test_report_jobs_invariant () =
  let fabric = Dspfabric.reference in
  let ddg = Hca_kernels.Fir2dim.ddg () in
  let seq = Report.run ~jobs:1 fabric ddg in
  let par = Report.run ~jobs:4 fabric ddg in
  Alcotest.(check bool)
    "Report.run jobs=4 = jobs=1" true
    (report_fields seq = report_fields par)

let test_memo_invariant () =
  let fabric = Dspfabric.reference in
  List.iter
    (fun (name, f) ->
      let ddg = f () in
      let on = Report.run ~memo:true fabric ddg in
      let off = Report.run ~memo:false fabric ddg in
      Alcotest.(check bool)
        (name ^ ": memo on = memo off")
        true
        (quality_fields on = quality_fields off);
      Alcotest.(check bool)
        (name ^ ": memo off counts nothing")
        true
        ((off.Report.cache_hits, off.Report.cache_misses,
          off.Report.reused_subproblems)
        = (0, 0, 0)))
    Hca_kernels.Registry.all

let test_oracle_jobs_invariant () =
  let fabric = Dspfabric.make ~fanouts:[| 2; 2; 2 |] ~n:4 ~m:4 ~k:4 () in
  let ddg =
    Hca_kernels.Synthetic.generate
      { Hca_kernels.Synthetic.default with size = 10; layers = 3; seed = 1 }
  in
  let seq = Hca_exact.Oracle.run ~budget_s:20. ~jobs:1 fabric ddg in
  let par = Hca_exact.Oracle.run ~budget_s:20. ~jobs:2 fabric ddg in
  let fields (o : Hca_exact.Oracle.t) =
    ( o.Hca_exact.Oracle.status,
      o.Hca_exact.Oracle.final_mii,
      o.Hca_exact.Oracle.lower_bound,
      o.Hca_exact.Oracle.copies )
  in
  (* [explored] counts conflicts over whichever probes ran, so it may
     differ; the certified answer may not. *)
  Alcotest.(check bool) "oracle jobs=2 = jobs=1" true (fields seq = fields par)

let () =
  Alcotest.run "parallel"
    [
      ( "domain_pool",
        [
          Alcotest.test_case "order preserved" `Quick test_pool_order;
          Alcotest.test_case "empty/singleton" `Quick test_pool_empty_and_single;
          Alcotest.test_case "first error wins" `Quick test_pool_first_error_wins;
          Alcotest.test_case "pool reusable" `Quick test_pool_reusable;
        ] );
      ("topk", [ QCheck_alcotest.to_alcotest prop_topk_matches_sorted_prefix ]);
      ( "incremental_cost",
        [ QCheck_alcotest.to_alcotest prop_incremental_cost_exact ] );
      ( "speculation",
        [
          QCheck_alcotest.to_alcotest prop_speculation_roundtrip;
          QCheck_alcotest.to_alcotest prop_speculative_cost_exact;
          QCheck_alcotest.to_alcotest prop_score_moves_exact;
          QCheck_alcotest.to_alcotest prop_probe_force_matches_clone_path;
        ] );
      ( "drivers",
        [
          Alcotest.test_case "report jobs invariant" `Quick
            test_report_jobs_invariant;
          Alcotest.test_case "memo on/off invariant" `Slow test_memo_invariant;
          Alcotest.test_case "portfolio jobs invariant" `Slow
            test_portfolio_jobs_invariant;
          Alcotest.test_case "oracle jobs invariant" `Quick
            test_oracle_jobs_invariant;
        ] );
    ]
