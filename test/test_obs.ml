(* Tests for the lib/obs tracing layer: per-domain stream
   well-formedness under the domain pool, counter merge associativity,
   histogram percentile sanity, the no-observer-effect property of the
   instrumented search, and the Chrome-trace export format. *)

open Hca_obs

let fabric = Hca_machine.Dspfabric.reference

(* Every test drives the global tracer, so each one owns the full
   enable→work→disable cycle and always releases it on exit. *)
let with_tracing f =
  Obs.reset ();
  Obs.enable ();
  Fun.protect ~finally:Obs.disable f

(* ------------------------------------------------------------------ *)
(* Span streams nest well-formedly per domain under parallel_map.       *)
(* ------------------------------------------------------------------ *)

let test_span_nesting_parallel () =
  let items = List.init 20 Fun.id in
  let results =
    with_tracing (fun () ->
        Hca_util.Domain_pool.parallel_map ~jobs:4
          (fun i ->
            Obs.span "outer"
              ~args:[ ("i", string_of_int i) ]
              (fun () -> Obs.span "inner" (fun () -> i * i)))
          items)
  in
  Alcotest.(check (list int))
    "computation unaffected"
    (List.map (fun i -> i * i) items)
    results;
  let outer = ref 0 and inner = ref 0 in
  List.iter
    (fun (dom, evs) ->
      let depth = ref 0 in
      List.iter
        (fun (e : Obs.event) ->
          match e.Obs.kind with
          | `Begin ->
              incr depth;
              if e.Obs.name = "outer" then incr outer;
              if e.Obs.name = "inner" then incr inner
          | `End ->
              if !depth <= 0 then
                Alcotest.failf "domain %d: End with empty span stack" dom;
              decr depth
          | _ -> ())
        evs;
      Alcotest.(check int)
        (Printf.sprintf "domain %d stream balanced" dom)
        0 !depth)
    (Obs.events ());
  Alcotest.(check int) "one outer span per item" (List.length items) !outer;
  Alcotest.(check int) "one inner span per item" (List.length items) !inner

let test_span_survives_exception () =
  with_tracing (fun () ->
      (try Obs.span "boom" (fun () -> failwith "expected") with
      | Failure _ -> ());
      let evs = List.concat_map snd (Obs.events ()) in
      let begins =
        List.length (List.filter (fun e -> e.Obs.kind = `Begin) evs)
      in
      let ends = List.length (List.filter (fun e -> e.Obs.kind = `End) evs) in
      Alcotest.(check int) "begin recorded" 1 begins;
      Alcotest.(check int) "end recorded despite raise" 1 ends)

(* ------------------------------------------------------------------ *)
(* Counter merge: per-domain partials sum to the sequential total.      *)
(* ------------------------------------------------------------------ *)

let test_counter_merge () =
  let expected = List.fold_left ( + ) 0 (List.init 100 Fun.id) in
  with_tracing (fun () ->
      ignore
        (Hca_util.Domain_pool.parallel_map ~jobs:4
           (fun i ->
             Obs.count "c" i;
             i)
           (List.init 100 Fun.id));
      let s = Obs.Summary.collect () in
      Alcotest.(check int)
        "total independent of domain placement" expected
        (Obs.Summary.counter s "c");
      Alcotest.(check int) "absent counter reads 0" 0
        (Obs.Summary.counter s "nope"))

(* ------------------------------------------------------------------ *)
(* Histogram percentiles.                                              *)
(* ------------------------------------------------------------------ *)

let test_histogram_percentiles () =
  with_tracing (fun () ->
      List.iter
        (fun i -> Obs.observe "h" (float_of_int i))
        (List.init 100 (fun i -> i + 1));
      let s = Obs.Summary.collect () in
      match
        List.find_opt
          (fun h -> h.Obs.Summary.h_name = "h")
          s.Obs.Summary.histograms
      with
      | None -> Alcotest.fail "histogram 'h' missing from summary"
      | Some h ->
          Alcotest.(check int) "samples" 100 h.Obs.Summary.samples;
          Alcotest.(check (float 1e-9)) "min" 1. h.Obs.Summary.min_v;
          Alcotest.(check (float 1e-9)) "max" 100. h.Obs.Summary.max_v;
          Alcotest.(check (float 0.5)) "mean" 50.5 h.Obs.Summary.mean;
          let within lo hi v = v >= lo && v <= hi in
          Alcotest.(check bool) "p50 near median" true
            (within 45. 55. h.Obs.Summary.p50);
          Alcotest.(check bool) "p90 near 90th" true
            (within 85. 95. h.Obs.Summary.p90))

(* ------------------------------------------------------------------ *)
(* No observer effect: Report.run is bit-identical traced or not.       *)
(* ------------------------------------------------------------------ *)

(* Everything except the wall clock and the (structurally equal but
   allocation-fresh) result payload. *)
let fingerprint (r : Hca_core.Report.t) =
  ( ( r.Hca_core.Report.kernel,
      r.Hca_core.Report.n_instr,
      r.Hca_core.Report.mii_rec,
      r.Hca_core.Report.mii_res,
      r.Hca_core.Report.ini_mii,
      r.Hca_core.Report.legal,
      r.Hca_core.Report.final_mii,
      r.Hca_core.Report.ii_used ),
    ( r.Hca_core.Report.copies,
      r.Hca_core.Report.forwards,
      r.Hca_core.Report.max_wire_load,
      r.Hca_core.Report.explored_states,
      r.Hca_core.Report.routed_moves,
      r.Hca_core.Report.cache_hits,
      r.Hca_core.Report.cache_misses,
      r.Hca_core.Report.reused_subproblems ) )

let test_trace_no_observer_effect () =
  let ddg = Hca_kernels.Fir2dim.ddg () in
  List.iter
    (fun jobs ->
      let plain = Hca_core.Report.run ~jobs fabric ddg in
      let traced =
        with_tracing (fun () -> Hca_core.Report.run ~jobs fabric ddg)
      in
      Alcotest.(check bool)
        (Printf.sprintf "identical search at jobs=%d" jobs)
        true
        (fingerprint plain = fingerprint traced))
    [ 1; 2 ]

(* ------------------------------------------------------------------ *)
(* Chrome-trace export: parses, balances, and names the spans.          *)
(* ------------------------------------------------------------------ *)

let test_chrome_trace_valid () =
  let ddg = Hca_kernels.Fir2dim.ddg () in
  let json =
    with_tracing (fun () ->
        ignore (Hca_core.Report.run fabric ddg);
        Obs.Trace.to_chrome_json ~meta:[ ("origin", "test_obs") ] ())
  in
  match Trace_check.validate json with
  | Error e -> Alcotest.failf "invalid Chrome trace: %s" e
  | Ok stats ->
      Alcotest.(check bool) "has events" true (stats.Trace_check.events > 0);
      Alcotest.(check bool)
        "at least one domain track" true
        (List.length stats.Trace_check.tracks >= 1);
      List.iter
        (fun name ->
          match List.assoc_opt name stats.Trace_check.span_names with
          | Some n when n > 0 -> ()
          | _ -> Alcotest.failf "expected span %S in the trace" name)
        [ "report.run"; "hierarchy.solve"; "subproblem.L0"; "see.solve" ]

let test_chrome_trace_rejects_garbage () =
  (match Trace_check.validate "{\"traceEvents\":" with
  | Ok _ -> Alcotest.fail "truncated JSON accepted"
  | Error _ -> ());
  match
    Trace_check.validate
      "{\"traceEvents\":[{\"ph\":\"E\",\"ts\":0,\"pid\":1,\"tid\":1}]}"
  with
  | Ok _ -> Alcotest.fail "unbalanced E accepted"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Structured logging: every emitted line is flat JSON, the level      *)
(* threshold filters, fields and escapes survive the round-trip.       *)
(* ------------------------------------------------------------------ *)

let tmp_file name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "hca_obs_%s_%d" name (Unix.getpid ()))

let read_lines path =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !lines

let parse_json line =
  match Hca_serve.Json.parse line with
  | Ok j -> j
  | Error e -> Alcotest.failf "log line is not JSON %S: %s" line e

let jfield j k = Hca_serve.Json.member k j

let jstr j k = Option.bind (jfield j k) Hca_serve.Json.str

let test_log_json_and_level_filter () =
  let path = tmp_file "log" in
  if Sys.file_exists path then Sys.remove path;
  Obs.Log.to_file path;
  Obs.Log.set_level Obs.Log.Warn;
  Fun.protect
    ~finally:(fun () ->
      Obs.Log.off ();
      Obs.Log.set_level Obs.Log.Info)
    (fun () ->
      Alcotest.(check bool) "below threshold inactive" false
        (Obs.Log.active Obs.Log.Info);
      Alcotest.(check bool) "at threshold active" true
        (Obs.Log.active Obs.Log.Warn);
      Obs.Log.debug "drop.debug" [];
      Obs.Log.info "drop.info" [ ("x", Obs.Log.I 1) ];
      Obs.Log.warn ~req:7 "keep.warn"
        [
          ("s", Obs.Log.S "v");
          ("i", Obs.Log.I 42);
          ("f", Obs.Log.F 1.5);
          ("b", Obs.Log.B true);
        ];
      Obs.Log.error "keep.error" [ ("why", Obs.Log.S "boom \"quoted\"\n") ]);
  let lines = read_lines path in
  Sys.remove path;
  Alcotest.(check int) "below-threshold lines dropped" 2 (List.length lines);
  let w = parse_json (List.nth lines 0) in
  let e = parse_json (List.nth lines 1) in
  Alcotest.(check (option string)) "level name" (Some "warn") (jstr w "level");
  Alcotest.(check (option string)) "event name" (Some "keep.warn")
    (jstr w "event");
  Alcotest.(check (option int)) "request id" (Some 7)
    (Option.bind (jfield w "req") Hca_serve.Json.int);
  Alcotest.(check (option string)) "string field" (Some "v") (jstr w "s");
  Alcotest.(check (option int)) "int field" (Some 42)
    (Option.bind (jfield w "i") Hca_serve.Json.int);
  Alcotest.(check (option bool)) "bool field" (Some true)
    (Option.bind (jfield w "b") Hca_serve.Json.bool);
  Alcotest.(check (option (float 1e-9))) "float field" (Some 1.5)
    (Option.bind (jfield w "f") Hca_serve.Json.num);
  Alcotest.(check (option string)) "error level" (Some "error")
    (jstr e "level");
  Alcotest.(check (option string)) "escapes survive the round-trip"
    (Some "boom \"quoted\"\n") (jstr e "why");
  let ts j = Option.get (Option.bind (jfield j "ts") Hca_serve.Json.num) in
  Alcotest.(check bool) "timestamps monotone" true (ts e >= ts w);
  Alcotest.(check bool) "level_of_string" true
    (Obs.Log.level_of_string "warning" = Some Obs.Log.Warn
    && Obs.Log.level_of_string "debug" = Some Obs.Log.Debug
    && Obs.Log.level_of_string "frobnicate" = None)

(* ------------------------------------------------------------------ *)
(* Registry: cross-domain counter merge, quantile estimation, and      *)
(* both exposition formats.                                            *)
(* ------------------------------------------------------------------ *)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let test_registry_cross_domain_merge () =
  Obs.Registry.clear ();
  Fun.protect ~finally:Obs.Registry.clear (fun () ->
      ignore
        (Hca_util.Domain_pool.parallel_map ~jobs:4
           (fun i ->
             Obs.Registry.inc ~by:i "r_total";
             i)
           (List.init 100 Fun.id));
      Alcotest.(check int) "total independent of domain placement" 4950
        (Obs.Registry.counter "r_total");
      Obs.Registry.inc "r_total";
      Alcotest.(check int) "default increment is 1" 4951
        (Obs.Registry.counter "r_total");
      Alcotest.(check int) "absent counter reads 0" 0
        (Obs.Registry.counter "nope");
      (* A name keeps its first kind: telemetry misuse is ignored, not
         an exception in the serving path. *)
      Obs.Registry.set "r_total" 0.;
      Alcotest.(check int) "kind mismatch ignored" 4951
        (Obs.Registry.counter "r_total"))

let test_registry_quantile_and_exposition () =
  Obs.Registry.clear ();
  Fun.protect ~finally:Obs.Registry.clear (fun () ->
      let buckets = [| 10.; 20.; 30.; 40.; 50.; 60.; 70.; 80.; 90.; 100. |] in
      List.iter
        (fun i -> Obs.Registry.observe ~buckets "r_lat_ms" (float_of_int (i + 1)))
        (List.init 100 Fun.id);
      Obs.Registry.set "r_depth" 3.;
      Obs.Registry.inc ~by:5 {|r_hits{verb="submit"}|};
      let snap = Obs.Registry.snapshot () in
      (match List.assoc_opt "r_lat_ms" snap.Obs.Registry.hists with
      | None -> Alcotest.fail "histogram missing from snapshot"
      | Some hv ->
          Alcotest.(check int) "sample count" 100 hv.Obs.Registry.count;
          Alcotest.(check (float 1e-6)) "sum" 5050. hv.Obs.Registry.sum;
          let p50 = Obs.Registry.quantile hv 0.5 in
          let p99 = Obs.Registry.quantile hv 0.99 in
          Alcotest.(check bool) "p50 within its bucket" true
            (p50 >= 40. && p50 <= 60.);
          Alcotest.(check bool) "p99 in the upper tail" true (p99 >= 90.);
          Alcotest.(check bool) "quantiles ordered" true (p99 >= p50));
      Alcotest.(check (option (float 1e-9))) "gauge readable" (Some 3.)
        (List.assoc_opt "r_depth" snap.Obs.Registry.gauges);
      (* Prometheus text: typed base names, labelled series kept intact,
         every sample line ends in a parseable value. *)
      let text = Obs.Registry.to_prometheus () in
      Alcotest.(check bool) "counter TYPE line" true
        (contains ~sub:"# TYPE r_hits counter" text);
      Alcotest.(check bool) "labelled series" true
        (contains ~sub:{|r_hits{verb="submit"} 5|} text);
      Alcotest.(check bool) "cumulative buckets" true
        (contains ~sub:{|r_lat_ms_bucket{le="+Inf"} 100|} text);
      Alcotest.(check bool) "histogram count series" true
        (contains ~sub:"r_lat_ms_count 100" text);
      List.iter
        (fun line ->
          if line <> "" && line.[0] <> '#' then
            match String.rindex_opt line ' ' with
            | None -> Alcotest.failf "no sample value on %S" line
            | Some i ->
                let v = String.sub line (i + 1) (String.length line - i - 1) in
                if float_of_string_opt v = None then
                  Alcotest.failf "unparseable sample on %S" line)
        (String.split_on_char '\n' text);
      (* JSON exposition parses and carries the same figures. *)
      match Hca_serve.Json.parse (Obs.Registry.to_json_string ()) with
      | Error e -> Alcotest.failf "metrics JSON does not parse: %s" e
      | Ok j ->
          let counters = Option.get (jfield j "counters") in
          Alcotest.(check (option int)) "counter in JSON" (Some 5)
            (Option.bind
               (Hca_serve.Json.member {|r_hits{verb="submit"}|} counters)
               Hca_serve.Json.int);
          let hists = Option.get (jfield j "histograms") in
          let h = Option.get (Hca_serve.Json.member "r_lat_ms" hists) in
          Alcotest.(check (option int)) "histogram count in JSON" (Some 100)
            (Option.bind (jfield h "count") Hca_serve.Json.int))

(* ------------------------------------------------------------------ *)
(* Flight ring: bounded, always dumps a valid trace even after heavy   *)
(* overwrite, and per-request captures export standalone traces.       *)
(* ------------------------------------------------------------------ *)

let test_ring_dump_bounded_and_valid () =
  Obs.Ring.arm ~capacity:64 ();
  Fun.protect ~finally:Obs.Ring.disarm (fun () ->
      Alcotest.(check bool) "armed" true (Obs.Ring.armed ());
      Alcotest.(check int) "capacity" 64 (Obs.Ring.capacity ());
      (* Overflow the ring many times over: overwritten Begins must not
         leave orphan Ends in the dump. *)
      for i = 0 to 199 do
        Obs.span "work"
          ~args:[ ("i", string_of_int i) ]
          (fun () -> Obs.instant "tick")
      done;
      let path = tmp_file "ring.json" in
      Obs.Ring.write ~meta:[ ("origin", "test_obs") ] path;
      (match Trace_check.validate_file path with
      | Error e -> Alcotest.failf "ring dump invalid: %s" e
      | Ok stats ->
          Alcotest.(check bool) "kept recent events" true
            (stats.Trace_check.events > 0);
          Alcotest.(check bool) "bounded by ring capacity" true
            (stats.Trace_check.events <= Obs.Ring.capacity () + 16));
      Sys.remove path)

let test_capture_standalone_trace () =
  Obs.Capture.start ();
  Alcotest.(check bool) "capture active" true (Obs.Capture.active ());
  Obs.span "request.work" (fun () -> Obs.instant "step");
  let evs = Obs.Capture.stop () in
  Alcotest.(check bool) "capture stopped" false (Obs.Capture.active ());
  Alcotest.(check bool) "events captured" true (List.length evs >= 3);
  let path = tmp_file "capture.json" in
  Obs.Capture.write ~meta:[ ("request", "42") ] path evs;
  (match Trace_check.validate_file path with
  | Error e -> Alcotest.failf "capture trace invalid: %s" e
  | Ok stats -> (
      match List.assoc_opt "request.work" stats.Trace_check.span_names with
      | Some n when n > 0 -> ()
      | _ -> Alcotest.fail "captured span missing"));
  Sys.remove path;
  Alcotest.(check (list (pair int string))) "stop with no capture is empty" []
    (List.map (fun (e : Obs.event) -> (0, e.Obs.name)) (Obs.Capture.stop ()))

let () =
  Alcotest.run "obs"
    [
      ( "spans",
        [
          Alcotest.test_case "nesting under parallel_map" `Quick
            test_span_nesting_parallel;
          Alcotest.test_case "end recorded on exception" `Quick
            test_span_survives_exception;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter merge associativity" `Quick
            test_counter_merge;
          Alcotest.test_case "histogram percentiles" `Quick
            test_histogram_percentiles;
        ] );
      ( "no-observer-effect",
        [
          Alcotest.test_case "Report.run bit-identical traced/untraced"
            `Quick test_trace_no_observer_effect;
        ] );
      ( "chrome-trace",
        [
          Alcotest.test_case "export validates" `Quick test_chrome_trace_valid;
          Alcotest.test_case "checker rejects garbage" `Quick
            test_chrome_trace_rejects_garbage;
        ] );
      ( "log",
        [
          Alcotest.test_case "JSON lines + level filter" `Quick
            test_log_json_and_level_filter;
        ] );
      ( "registry",
        [
          Alcotest.test_case "cross-domain counter merge" `Quick
            test_registry_cross_domain_merge;
          Alcotest.test_case "quantile + exposition" `Quick
            test_registry_quantile_and_exposition;
        ] );
      ( "flight",
        [
          Alcotest.test_case "ring dump bounded and valid" `Quick
            test_ring_dump_bounded_and_valid;
          Alcotest.test_case "capture standalone trace" `Quick
            test_capture_standalone_trace;
        ] );
    ]
