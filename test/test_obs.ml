(* Tests for the lib/obs tracing layer: per-domain stream
   well-formedness under the domain pool, counter merge associativity,
   histogram percentile sanity, the no-observer-effect property of the
   instrumented search, and the Chrome-trace export format. *)

open Hca_obs

let fabric = Hca_machine.Dspfabric.reference

(* Every test drives the global tracer, so each one owns the full
   enable→work→disable cycle and always releases it on exit. *)
let with_tracing f =
  Obs.reset ();
  Obs.enable ();
  Fun.protect ~finally:Obs.disable f

(* ------------------------------------------------------------------ *)
(* Span streams nest well-formedly per domain under parallel_map.       *)
(* ------------------------------------------------------------------ *)

let test_span_nesting_parallel () =
  let items = List.init 20 Fun.id in
  let results =
    with_tracing (fun () ->
        Hca_util.Domain_pool.parallel_map ~jobs:4
          (fun i ->
            Obs.span "outer"
              ~args:[ ("i", string_of_int i) ]
              (fun () -> Obs.span "inner" (fun () -> i * i)))
          items)
  in
  Alcotest.(check (list int))
    "computation unaffected"
    (List.map (fun i -> i * i) items)
    results;
  let outer = ref 0 and inner = ref 0 in
  List.iter
    (fun (dom, evs) ->
      let depth = ref 0 in
      List.iter
        (fun (e : Obs.event) ->
          match e.Obs.kind with
          | `Begin ->
              incr depth;
              if e.Obs.name = "outer" then incr outer;
              if e.Obs.name = "inner" then incr inner
          | `End ->
              if !depth <= 0 then
                Alcotest.failf "domain %d: End with empty span stack" dom;
              decr depth
          | _ -> ())
        evs;
      Alcotest.(check int)
        (Printf.sprintf "domain %d stream balanced" dom)
        0 !depth)
    (Obs.events ());
  Alcotest.(check int) "one outer span per item" (List.length items) !outer;
  Alcotest.(check int) "one inner span per item" (List.length items) !inner

let test_span_survives_exception () =
  with_tracing (fun () ->
      (try Obs.span "boom" (fun () -> failwith "expected") with
      | Failure _ -> ());
      let evs = List.concat_map snd (Obs.events ()) in
      let begins =
        List.length (List.filter (fun e -> e.Obs.kind = `Begin) evs)
      in
      let ends = List.length (List.filter (fun e -> e.Obs.kind = `End) evs) in
      Alcotest.(check int) "begin recorded" 1 begins;
      Alcotest.(check int) "end recorded despite raise" 1 ends)

(* ------------------------------------------------------------------ *)
(* Counter merge: per-domain partials sum to the sequential total.      *)
(* ------------------------------------------------------------------ *)

let test_counter_merge () =
  let expected = List.fold_left ( + ) 0 (List.init 100 Fun.id) in
  with_tracing (fun () ->
      ignore
        (Hca_util.Domain_pool.parallel_map ~jobs:4
           (fun i ->
             Obs.count "c" i;
             i)
           (List.init 100 Fun.id));
      let s = Obs.Summary.collect () in
      Alcotest.(check int)
        "total independent of domain placement" expected
        (Obs.Summary.counter s "c");
      Alcotest.(check int) "absent counter reads 0" 0
        (Obs.Summary.counter s "nope"))

(* ------------------------------------------------------------------ *)
(* Histogram percentiles.                                              *)
(* ------------------------------------------------------------------ *)

let test_histogram_percentiles () =
  with_tracing (fun () ->
      List.iter
        (fun i -> Obs.observe "h" (float_of_int i))
        (List.init 100 (fun i -> i + 1));
      let s = Obs.Summary.collect () in
      match
        List.find_opt
          (fun h -> h.Obs.Summary.h_name = "h")
          s.Obs.Summary.histograms
      with
      | None -> Alcotest.fail "histogram 'h' missing from summary"
      | Some h ->
          Alcotest.(check int) "samples" 100 h.Obs.Summary.samples;
          Alcotest.(check (float 1e-9)) "min" 1. h.Obs.Summary.min_v;
          Alcotest.(check (float 1e-9)) "max" 100. h.Obs.Summary.max_v;
          Alcotest.(check (float 0.5)) "mean" 50.5 h.Obs.Summary.mean;
          let within lo hi v = v >= lo && v <= hi in
          Alcotest.(check bool) "p50 near median" true
            (within 45. 55. h.Obs.Summary.p50);
          Alcotest.(check bool) "p90 near 90th" true
            (within 85. 95. h.Obs.Summary.p90))

(* ------------------------------------------------------------------ *)
(* No observer effect: Report.run is bit-identical traced or not.       *)
(* ------------------------------------------------------------------ *)

(* Everything except the wall clock and the (structurally equal but
   allocation-fresh) result payload. *)
let fingerprint (r : Hca_core.Report.t) =
  ( ( r.Hca_core.Report.kernel,
      r.Hca_core.Report.n_instr,
      r.Hca_core.Report.mii_rec,
      r.Hca_core.Report.mii_res,
      r.Hca_core.Report.ini_mii,
      r.Hca_core.Report.legal,
      r.Hca_core.Report.final_mii,
      r.Hca_core.Report.ii_used ),
    ( r.Hca_core.Report.copies,
      r.Hca_core.Report.forwards,
      r.Hca_core.Report.max_wire_load,
      r.Hca_core.Report.explored_states,
      r.Hca_core.Report.routed_moves,
      r.Hca_core.Report.cache_hits,
      r.Hca_core.Report.cache_misses,
      r.Hca_core.Report.reused_subproblems ) )

let test_trace_no_observer_effect () =
  let ddg = Hca_kernels.Fir2dim.ddg () in
  List.iter
    (fun jobs ->
      let plain = Hca_core.Report.run ~jobs fabric ddg in
      let traced =
        with_tracing (fun () -> Hca_core.Report.run ~jobs fabric ddg)
      in
      Alcotest.(check bool)
        (Printf.sprintf "identical search at jobs=%d" jobs)
        true
        (fingerprint plain = fingerprint traced))
    [ 1; 2 ]

(* ------------------------------------------------------------------ *)
(* Chrome-trace export: parses, balances, and names the spans.          *)
(* ------------------------------------------------------------------ *)

let test_chrome_trace_valid () =
  let ddg = Hca_kernels.Fir2dim.ddg () in
  let json =
    with_tracing (fun () ->
        ignore (Hca_core.Report.run fabric ddg);
        Obs.Trace.to_chrome_json ~meta:[ ("origin", "test_obs") ] ())
  in
  match Trace_check.validate json with
  | Error e -> Alcotest.failf "invalid Chrome trace: %s" e
  | Ok stats ->
      Alcotest.(check bool) "has events" true (stats.Trace_check.events > 0);
      Alcotest.(check bool)
        "at least one domain track" true
        (List.length stats.Trace_check.tracks >= 1);
      List.iter
        (fun name ->
          match List.assoc_opt name stats.Trace_check.span_names with
          | Some n when n > 0 -> ()
          | _ -> Alcotest.failf "expected span %S in the trace" name)
        [ "report.run"; "hierarchy.solve"; "subproblem.L0"; "see.solve" ]

let test_chrome_trace_rejects_garbage () =
  (match Trace_check.validate "{\"traceEvents\":" with
  | Ok _ -> Alcotest.fail "truncated JSON accepted"
  | Error _ -> ());
  match
    Trace_check.validate
      "{\"traceEvents\":[{\"ph\":\"E\",\"ts\":0,\"pid\":1,\"tid\":1}]}"
  with
  | Ok _ -> Alcotest.fail "unbalanced E accepted"
  | Error _ -> ()

let () =
  Alcotest.run "obs"
    [
      ( "spans",
        [
          Alcotest.test_case "nesting under parallel_map" `Quick
            test_span_nesting_parallel;
          Alcotest.test_case "end recorded on exception" `Quick
            test_span_survives_exception;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter merge associativity" `Quick
            test_counter_merge;
          Alcotest.test_case "histogram percentiles" `Quick
            test_histogram_percentiles;
        ] );
      ( "no-observer-effect",
        [
          Alcotest.test_case "Report.run bit-identical traced/untraced"
            `Quick test_trace_no_observer_effect;
        ] );
      ( "chrome-trace",
        [
          Alcotest.test_case "export validates" `Quick test_chrome_trace_valid;
          Alcotest.test_case "checker rejects garbage" `Quick
            test_chrome_trace_rejects_garbage;
        ] );
    ]
