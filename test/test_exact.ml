(* Tests for the exact SAT-based cluster-assignment oracle: the CDCL
   solver on hand-built CNFs, the cardinality encoder, and the oracle
   cross-checked against the flat-ICA heuristic. *)

open Hca_ddg
open Hca_machine
open Hca_exact

(* ------------------------------------------------------------------ *)
(* CDCL solver on hand-built formulas.                                 *)
(* ------------------------------------------------------------------ *)

let result =
  Alcotest.testable
    (fun ppf -> function
      | Sat.Sat -> Format.pp_print_string ppf "sat"
      | Sat.Unsat -> Format.pp_print_string ppf "unsat"
      | Sat.Unknown -> Format.pp_print_string ppf "unknown")
    ( = )

let test_sat_basic () =
  let s = Sat.create () in
  let a = Sat.new_var s and b = Sat.new_var s in
  Sat.add_clause s [ a; b ];
  Sat.add_clause s [ -a ];
  Alcotest.check result "sat" Sat.Sat (Sat.solve s);
  Alcotest.(check bool) "a false" false (Sat.value s a);
  Alcotest.(check bool) "b true" true (Sat.value s b)

let test_unsat_basic () =
  let s = Sat.create () in
  let a = Sat.new_var s in
  Sat.add_clause s [ a ];
  Sat.add_clause s [ -a ];
  Alcotest.check result "unsat" Sat.Unsat (Sat.solve s)

let test_empty_clause () =
  let s = Sat.create () in
  let _ = Sat.new_var s in
  Sat.add_clause s [];
  Alcotest.check result "unsat" Sat.Unsat (Sat.solve s)

let test_pigeonhole () =
  (* 4 pigeons, 3 holes: needs real conflict learning to refute. *)
  let s = Sat.create () in
  let v = Array.init 4 (fun _ -> Array.init 3 (fun _ -> Sat.new_var s)) in
  for p = 0 to 3 do
    Sat.add_clause s (Array.to_list v.(p))
  done;
  for h = 0 to 2 do
    for p = 0 to 3 do
      for q = p + 1 to 3 do
        Sat.add_clause s [ -v.(p).(h); -v.(q).(h) ]
      done
    done
  done;
  Alcotest.check result "php(4,3)" Sat.Unsat (Sat.solve s)

let test_assumptions_incremental () =
  let s = Sat.create () in
  let a = Sat.new_var s and b = Sat.new_var s in
  Sat.add_clause s [ a; b ];
  Alcotest.check result "sat under -a" Sat.Sat (Sat.solve ~assumptions:[ -a ] s);
  Alcotest.(check bool) "b forced" true (Sat.value s b);
  (* The clause set stays usable after an unsat-under-assumptions call. *)
  Sat.add_clause s [ -b ];
  Alcotest.check result "unsat under -a" Sat.Unsat
    (Sat.solve ~assumptions:[ -a ] s);
  Alcotest.check result "still sat" Sat.Sat (Sat.solve s);
  Alcotest.(check bool) "a forced" true (Sat.value s a)

(* Cross-check the solver against brute force on random 3-CNFs. *)
let test_random_3sat_vs_bruteforce () =
  let prng = Hca_util.Prng.create 20260805 in
  let nvars = 8 and nclauses = 32 in
  for _ = 1 to 40 do
    let clauses =
      List.init nclauses (fun _ ->
          List.init 3 (fun _ ->
              let v = 1 + Hca_util.Prng.int prng nvars in
              if Hca_util.Prng.bool prng then v else -v))
    in
    let brute =
      let sat = ref false in
      for m = 0 to (1 lsl nvars) - 1 do
        if
          (not !sat)
          && List.for_all
               (List.exists (fun l ->
                    let v = abs l - 1 in
                    let bit = m land (1 lsl v) <> 0 in
                    if l > 0 then bit else not bit))
               clauses
        then sat := true
      done;
      if !sat then Sat.Sat else Sat.Unsat
    in
    let s = Sat.create () in
    for _ = 1 to nvars do
      ignore (Sat.new_var s)
    done;
    List.iter (Sat.add_clause s) clauses;
    Alcotest.check result "matches brute force" brute (Sat.solve s)
  done

(* ------------------------------------------------------------------ *)
(* Cardinality encoding.                                               *)
(* ------------------------------------------------------------------ *)

let test_at_most () =
  let s = Sat.create () in
  let vars = List.init 5 (fun _ -> Sat.new_var s) in
  Encode.at_most s vars 2;
  (* Forcing three of the five true must contradict the counter. *)
  (match vars with
  | a :: b :: c :: _ ->
      Alcotest.check result "3 > 2" Sat.Unsat
        (Sat.solve ~assumptions:[ a; b; c ] s)
  | _ -> assert false);
  (match vars with
  | a :: b :: _ ->
      Alcotest.check result "2 <= 2" Sat.Sat (Sat.solve ~assumptions:[ a; b ] s)
  | _ -> assert false)

let test_at_most_zero () =
  let s = Sat.create () in
  let vars = List.init 3 (fun _ -> Sat.new_var s) in
  Encode.at_most s vars 0;
  Alcotest.check result "sat all-false" Sat.Sat (Sat.solve s);
  List.iter
    (fun v -> Alcotest.(check bool) "forced false" false (Sat.value s v))
    vars

(* ------------------------------------------------------------------ *)
(* Oracle on a hand-built kernel with a known optimum.                  *)
(* ------------------------------------------------------------------ *)

let small_fabric = Dspfabric.make ~fanouts:[| 2; 2; 2 |] ~n:2 ~m:2 ~k:2 ()

let chain4 () =
  (* a -> b -> c -> d, all ALU ops.  On unit-capacity CNs every non-head
     segment of the chain pays one receive on its ALU slot, so feasible
     bounds k admit one head segment of k ops plus tail segments of
     k - 1 ops each: k = 1 packs at most 1 node, k = 2 packs 2+1+1 = 4.
     The proven optimum of the projected final MII is therefore 2. *)
  let b = Ddg.Builder.create ~name:"chain4" () in
  let a = Ddg.Builder.add_instr b ~name:"a" Opcode.Add in
  let b' = Ddg.Builder.add_instr b ~name:"b" Opcode.Add in
  let c = Ddg.Builder.add_instr b ~name:"c" Opcode.Add in
  let d = Ddg.Builder.add_instr b ~name:"d" Opcode.Add in
  Ddg.Builder.add_dep b ~src:a ~dst:b';
  Ddg.Builder.add_dep b ~src:b' ~dst:c;
  Ddg.Builder.add_dep b ~src:c ~dst:d;
  Ddg.Builder.freeze b

let test_oracle_chain_optimal () =
  let r = Oracle.run ~budget_s:20. small_fabric (chain4 ()) in
  (match r.Oracle.status with
  | Oracle.Optimal -> ()
  | s -> Alcotest.failf "expected optimal, got %s" (Oracle.status_to_string s));
  Alcotest.(check (option int)) "optimum 2" (Some 2) r.Oracle.final_mii;
  Alcotest.(check int) "lower bound matches" 2 r.Oracle.lower_bound;
  match r.Oracle.assignment with
  | None -> Alcotest.fail "optimal without a model"
  | Some a ->
      Alcotest.(check int) "every node placed" 0
        (Array.fold_left (fun acc c -> if c < 0 then acc + 1 else acc) 0 a)

let test_oracle_strict_no_better () =
  (* The structural wire clauses can only shrink the feasible set. *)
  let relaxed = Oracle.run ~budget_s:20. small_fabric (chain4 ()) in
  let strict = Oracle.run ~strict:true ~budget_s:20. small_fabric (chain4 ()) in
  match (relaxed.Oracle.final_mii, strict.Oracle.final_mii) with
  | Some r, Some s -> Alcotest.(check bool) "strict >= relaxed" true (s >= r)
  | _ -> Alcotest.fail "both searches should conclude on 4 nodes"

let test_encode_model_checks () =
  let problem = Oracle.problem_of small_fabric (chain4 ()) in
  let inst = Encode.of_problem problem in
  let enc = Encode.encode inst ~k:2 in
  Alcotest.check result "k=2 sat" Sat.Sat (Sat.solve enc.Encode.sat);
  let a = Encode.decode inst enc in
  Alcotest.(check bool) "recomputed MII within bound" true
    (Encode.cluster_mii_of_assignment inst a <= 2);
  let enc1 = Encode.encode inst ~k:1 in
  Alcotest.check result "k=1 unsat" Sat.Unsat (Sat.solve enc1.Encode.sat)

(* ------------------------------------------------------------------ *)
(* Counter ladder: the incremental probing brick.                       *)
(* ------------------------------------------------------------------ *)

let test_counter_ladder () =
  let s = Sat.create () in
  let vars = List.init 6 (fun _ -> Sat.new_var s) in
  let out = Encode.counter s vars ~width:4 in
  Alcotest.(check int) "width respected" 4 (Array.length out);
  (* The same solver answers every bound b through one assumption. *)
  let take n = List.filteri (fun i _ -> i < n) vars in
  for b = 1 to 3 do
    Alcotest.check result
      (Printf.sprintf "%d > %d refuted" (b + 1) b)
      Sat.Unsat
      (Sat.solve ~assumptions:(-out.(b) :: take (b + 1)) s);
    Alcotest.check result
      (Printf.sprintf "%d <= %d fine" b b)
      Sat.Sat
      (Sat.solve ~assumptions:(-out.(b) :: take b) s)
  done;
  (* Unconstrained without the assumption: all six can be true. *)
  Alcotest.check result "no bound assumed" Sat.Sat (Sat.solve ~assumptions:vars s)

(* ------------------------------------------------------------------ *)
(* Incremental vs fresh equivalence, with and without clause reuse.     *)
(* ------------------------------------------------------------------ *)

(* Probe "cluster MII <= k" for every k in [1, max_k], three ways: a
   fresh encoding+solver per k, one incremental solver reusing learnt
   clauses across the walk, and one incremental solver dropping them
   before every probe.  All three must return the same verdict at every
   single k — which also pins the certified optimum. *)
(* Indexed ascending by k (element i is the verdict at k = i + 1); the
   incremental solvers still probe in the oracle's downward order. *)
let probe_every_k inst ~max_k =
  let fresh =
    List.init max_k (fun i ->
        let enc = Encode.encode inst ~k:(i + 1) in
        Sat.solve enc.Encode.sat)
  in
  let incremental ~reuse =
    let inc = Encode.make inst ~max_k in
    let sat = inc.Encode.enc.Encode.sat in
    List.rev_map
      (fun k ->
        if not reuse then Sat.clear_learnt sat;
        Sat.new_probe sat;
        Sat.solve ~assumptions:(Encode.assumptions inc ~k) sat)
      (List.init max_k (fun i -> max_k - i))
  in
  (fresh, incremental ~reuse:true, incremental ~reuse:false)

let test_incremental_vs_fresh () =
  List.iter
    (fun seed ->
      let ddg = Hca_gen.Gen.ddg ~seed () in
      let fabric = Hca_gen.Gen.fabric ~seed () in
      let inst = Encode.of_problem (Oracle.problem_of fabric ddg) in
      let max_k = min 6 (Encode.size inst) in
      let fresh, inc_reuse, inc_noreuse = probe_every_k inst ~max_k in
      let check_against label =
        List.iteri (fun i v ->
            Alcotest.check result
              (Printf.sprintf "seed %d k=%d %s matches fresh" seed (i + 1)
                 label)
              (List.nth fresh i) v)
      in
      check_against "reuse" inc_reuse;
      check_against "no-reuse" inc_noreuse)
    [ 3; 11; 23 ]

let test_oracle_reuse_equivalence () =
  (* Same verdict and same certified bounds with and without clause
     reuse, at a fixed conflict budget (pure function of the instance). *)
  let kernels =
    chain4 () :: List.map (fun seed -> Hca_gen.Gen.ddg ~seed ()) [ 5; 29 ]
  in
  List.iter
    (fun ddg ->
      let go reuse =
        Oracle.run ~budget_s:infinity ~max_conflicts:50_000 ~reuse small_fabric
          ddg
      in
      let a = go true and b = go false in
      Alcotest.(check string)
        (Ddg.name ddg ^ ": status agrees")
        (Oracle.status_to_string a.Oracle.status)
        (Oracle.status_to_string b.Oracle.status);
      Alcotest.(check (option int))
        (Ddg.name ddg ^ ": final MII agrees")
        a.Oracle.final_mii b.Oracle.final_mii;
      Alcotest.(check int)
        (Ddg.name ddg ^ ": lower bound agrees")
        a.Oracle.lower_bound b.Oracle.lower_bound;
      (* The reuse arm can only see reused hits; the control arm none. *)
      Alcotest.(check int)
        (Ddg.name ddg ^ ": control arm has no cross-probe hits")
        0 b.Oracle.reused_hits)
    kernels

(* ------------------------------------------------------------------ *)
(* Model soundness across clause-DB reductions.                         *)
(* ------------------------------------------------------------------ *)

let test_model_check_after_reduction () =
  (* A reduce_start low enough that every non-trivial solve crosses it
     several times: models must still satisfy the original clauses. *)
  (* 3-SAT near the phase transition (ratio ~4.25) so each solve racks
     up enough conflicts to cross the reduction limit repeatedly. *)
  let prng = Hca_util.Prng.create 20260808 in
  let nvars = 40 and nclauses = 170 in
  let reductions = ref 0 in
  for round = 1 to 12 do
    let clauses =
      List.init nclauses (fun _ ->
          List.init 3 (fun _ ->
              let v = 1 + Hca_util.Prng.int prng nvars in
              if Hca_util.Prng.bool prng then v else -v))
    in
    let s = Sat.create ~reduce_start:8 () in
    for _ = 1 to nvars do
      ignore (Sat.new_var s)
    done;
    List.iter (Sat.add_clause s) clauses;
    (match Sat.solve s with
    | Sat.Sat ->
        (* Against the original clause list... *)
        List.iter
          (fun clause ->
            Alcotest.(check bool)
              (Printf.sprintf "round %d: original clause satisfied" round)
              true
              (List.exists
                 (fun l ->
                   if l > 0 then Sat.value s l else not (Sat.value s (-l)))
                 clause))
          clauses;
        (* ... and against what the arena still stores after GC. *)
        Sat.fold_problem_clauses s
          (fun () clause ->
            Alcotest.(check bool)
              (Printf.sprintf "round %d: stored clause satisfied" round)
              true
              (List.exists
                 (fun l ->
                   if l > 0 then Sat.value s l else not (Sat.value s (-l)))
                 clause))
          ()
    | Sat.Unsat -> ()
    | Sat.Unknown -> Alcotest.fail "no budget was set");
    reductions := !reductions + Sat.deleted_total s
  done;
  Alcotest.(check bool)
    "the reduction path was actually exercised" true (!reductions > 0)

let test_probe_epoch_stats () =
  (* Two probes of the same instance: the second must fire clauses the
     first learned.  chain4 at k=1 is a refutation with real learning. *)
  let inst = Encode.of_problem (Oracle.problem_of small_fabric (chain4 ())) in
  let inc = Encode.make inst ~max_k:4 in
  let sat = inc.Encode.enc.Encode.sat in
  Sat.new_probe sat;
  Alcotest.check result "k=1 unsat" Sat.Unsat
    (Sat.solve ~assumptions:(Encode.assumptions inc ~k:1) sat);
  Alcotest.(check int) "no cross-probe hits yet" 0 (Sat.reused_hits sat);
  let learnt_before = Sat.learnt_total sat in
  Sat.new_probe sat;
  Alcotest.check result "k=1 unsat again" Sat.Unsat
    (Sat.solve ~assumptions:(Encode.assumptions inc ~k:1) sat);
  Alcotest.(check bool) "second refutation reused learned clauses" true
    (Sat.reused_hits sat > 0 || Sat.learnt_total sat = learnt_before)

(* ------------------------------------------------------------------ *)
(* Cross-check: the oracle is a certified lower bound on the SEE.       *)
(* ------------------------------------------------------------------ *)

let crosscheck_kernel name ddg =
  let fabric = small_fabric in
  let flat = Hca_baseline.Flat_ica.run ~config:Hca_core.Config.greedy fabric ddg in
  match (flat.Hca_baseline.Flat_ica.outcome, flat.Hca_baseline.Flat_ica.projected_mii) with
  | Some _, Some projected ->
      let ini = Mii.mii ddg (Dspfabric.resources fabric) in
      let achieved = max ini projected in
      let oracle = Oracle.run ~budget_s:10. fabric ddg in
      Alcotest.(check bool)
        (name ^ ": certified lower bound <= SEE result")
        true
        (oracle.Oracle.lower_bound <= achieved);
      (match oracle.Oracle.final_mii with
      | Some f ->
          Alcotest.(check bool)
            (name ^ ": oracle never above a legal SEE MII")
            true (f <= achieved)
      | None -> ())
  | _ -> () (* SEE found nothing to compare against *)

let test_crosscheck_synthetic () =
  List.iter
    (fun (size, seed) ->
      let ddg =
        Hca_kernels.Synthetic.generate
          {
            Hca_kernels.Synthetic.default with
            size;
            layers = 3;
            seed;
            recurrences = 1;
          }
      in
      crosscheck_kernel (Printf.sprintf "syn%d/%d" size seed) ddg)
    [ (10, 1); (12, 2); (14, 3) ]

let test_crosscheck_chain () = crosscheck_kernel "chain4" (chain4 ())

let () =
  Alcotest.run "exact"
    [
      ( "sat",
        [
          Alcotest.test_case "basic sat" `Quick test_sat_basic;
          Alcotest.test_case "basic unsat" `Quick test_unsat_basic;
          Alcotest.test_case "empty clause" `Quick test_empty_clause;
          Alcotest.test_case "pigeonhole" `Quick test_pigeonhole;
          Alcotest.test_case "assumptions" `Quick test_assumptions_incremental;
          Alcotest.test_case "vs brute force" `Quick test_random_3sat_vs_bruteforce;
        ] );
      ( "cardinality",
        [
          Alcotest.test_case "at most k" `Quick test_at_most;
          Alcotest.test_case "at most 0" `Quick test_at_most_zero;
          Alcotest.test_case "counter ladder" `Quick test_counter_ladder;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "vs fresh at every k" `Slow
            test_incremental_vs_fresh;
          Alcotest.test_case "oracle reuse on/off" `Slow
            test_oracle_reuse_equivalence;
          Alcotest.test_case "model check after reduction" `Quick
            test_model_check_after_reduction;
          Alcotest.test_case "probe epochs" `Quick test_probe_epoch_stats;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "chain optimum" `Quick test_oracle_chain_optimal;
          Alcotest.test_case "strict no better" `Quick test_oracle_strict_no_better;
          Alcotest.test_case "model checks" `Quick test_encode_model_checks;
        ] );
      ( "crosscheck",
        [
          Alcotest.test_case "synthetic" `Slow test_crosscheck_synthetic;
          Alcotest.test_case "chain" `Quick test_crosscheck_chain;
        ] );
    ]
