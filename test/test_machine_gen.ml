(* PR-10 suite: conformance of the generalized machine model against
   the legacy DSPFabric formulas, the [.machine] round-trip properties,
   determinism of the DSE driver, and the machine/cache aliasing
   regression.

   Everything here is seeded; a failure reproduces verbatim. *)

open Hca_machine
open Hca_core
open Hca_gen
module Prng = Hca_util.Prng

let r alus ags = { Resource.alus; ags }

let seed_arb = QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 100_000)

(* ------------------------------------------------------------------ *)
(* Conformance: the legacy DSPFabric formulas                          *)
(* ------------------------------------------------------------------ *)

(* Before the generalization, Dspfabric computed its level views
   directly from (fanouts, n, m, k, cn_in_wires).  This replica is
   written against the old code's arithmetic — independently of
   Machine_desc — so the two implementations can actually disagree. *)
let legacy_view ~fanouts ~n ~m ~k ~cn_in_wires ~level =
  let depth = Array.length fanouts in
  let is_leaf = level = depth - 1 in
  let cap = if level = 0 then n else if is_leaf then k else m in
  let cns_per_child = ref 1 in
  for l = level + 1 to depth - 1 do
    cns_per_child := !cns_per_child * fanouts.(l)
  done;
  ( fanouts.(level),
    !cns_per_child,
    (if is_leaf then cn_in_wires else cap),
    (if is_leaf then 1 else cap),
    (if is_leaf then cap else max_int) )

let test_legacy_level_views () =
  let shapes =
    [ [| 4; 4; 4 |]; [| 2; 2 |]; [| 4; 2 |]; [| 2; 2; 2 |]; [| 4; 4 |] ]
  in
  List.iter
    (fun fanouts ->
      List.iter
        (fun (n, m, k) ->
          let f = Dspfabric.make ~fanouts ~n ~m ~k () in
          for level = 0 to Dspfabric.depth f - 1 do
            let v = Dspfabric.level_view f ~level in
            let children, cns_per_child, mux, out, max_in =
              legacy_view ~fanouts ~n ~m ~k ~cn_in_wires:2 ~level
            in
            let ctx = Printf.sprintf "level %d of %s" level (Dspfabric.name f) in
            Alcotest.(check int) (ctx ^ " children") children v.Dspfabric.children;
            Alcotest.(check int)
              (ctx ^ " cns_per_child") cns_per_child v.Dspfabric.cns_per_child;
            Alcotest.(check int) (ctx ^ " mux") mux v.Dspfabric.mux_capacity;
            Alcotest.(check int) (ctx ^ " out") out v.Dspfabric.out_capacity;
            Alcotest.(check int) (ctx ^ " max_in") max_in v.Dspfabric.max_in_ports;
            Alcotest.(check bool)
              (ctx ^ " is_leaf")
              (level = Array.length fanouts - 1)
              v.Dspfabric.is_leaf;
            (* Uniform machine: every child of every cluster owns
               cns_per_child default CNs — the legacy capacity_per_child. *)
            let caps = Dspfabric.child_capacities f ~path:[] in
            Alcotest.(check int)
              (ctx ^ " root caps len") fanouts.(0) (Array.length caps);
            Array.iter
              (fun c ->
                Alcotest.(check bool)
                  (ctx ^ " root caps uniform") true
                  (Resource.equal c
                     (Resource.scale
                        (Dspfabric.level_view f ~level:0).Dspfabric.cns_per_child
                        Resource.cn)))
              caps
          done)
        [ (8, 8, 8); (4, 2, 3) ])
    shapes

let test_reference_constants () =
  let f = Dspfabric.reference in
  Alcotest.(check int) "total CNs" 64 (Dspfabric.total_cns f);
  Alcotest.(check int) "depth" 3 (Dspfabric.depth f);
  Alcotest.(check string)
    "name" "dspfabric-64(N=8,M=8,K=8)" (Dspfabric.name f);
  (* 4 set clusters x 8 out wires + 16 x 8 + 64 CNs x 1. *)
  Alcotest.(check int) "wire cost" 224 (Machine_desc.wire_cost f);
  let res = Dspfabric.resources f in
  Alcotest.(check int) "alu slots" 64 res.Hca_ddg.Mii.alu_slots;
  Alcotest.(check int) "ag slots" 64 res.Hca_ddg.Mii.ag_slots;
  Alcotest.(check int) "issue slots" 64 res.Hca_ddg.Mii.issue_slots;
  Alcotest.(check int) "dma ports" 8 res.Hca_ddg.Mii.dma_ports;
  Alcotest.(check bool) "uniform" true (Machine_desc.is_uniform f)

let test_hetero_capacities () =
  let base =
    Machine_desc.make ~name:"het2x2"
      ~levels:[| { Machine_desc.fanout = 2; mux_cap = 4 }; { fanout = 2; mux_cap = 2 } |]
      ~cn_in_wires:2 ~dma_ports:4 ()
  in
  let m = Machine_desc.with_tables base [| r 2 1; r 1 0; r 1 2; r 1 1 |] in
  Alcotest.(check bool) "non-uniform" false (Machine_desc.is_uniform m);
  Alcotest.(check bool) "cn 1 table" true
    (Resource.equal (r 1 0) (Machine_desc.cn_table m 1));
  (* Root children sum their subtree's CN tables... *)
  let caps = Machine_desc.child_capacities m ~path:[] in
  Alcotest.(check bool) "cluster 0" true (Resource.equal (r 3 1) caps.(0));
  Alcotest.(check bool) "cluster 1" true (Resource.equal (r 2 3) caps.(1));
  (* ...and a leaf parent sees the individual CNs. *)
  let leaf = Machine_desc.child_capacities m ~path:[ 1 ] in
  Alcotest.(check bool) "cn 2" true (Resource.equal (r 1 2) leaf.(0));
  Alcotest.(check bool) "cn 3" true (Resource.equal (r 1 1) leaf.(1));
  (* Whole-machine pools: 5 ALUs, 4 AGs, issue = sum over CNs of
     [max alus ags] (the single-issue window widens with the FUs). *)
  let res = Machine_desc.resources m in
  Alcotest.(check int) "hetero alu slots" 5 res.Hca_ddg.Mii.alu_slots;
  Alcotest.(check int) "hetero ag slots" 4 res.Hca_ddg.Mii.ag_slots;
  Alcotest.(check int) "hetero issue slots" 6 res.Hca_ddg.Mii.issue_slots;
  (* An all-default explicit table normalises away: equal and same id. *)
  let spelled = Machine_desc.with_tables base [| Resource.cn; Resource.cn; Resource.cn; Resource.cn |] in
  Alcotest.(check bool) "normalised equal" true (Machine_desc.equal base spelled);
  Alcotest.(check string) "normalised id" (Machine_desc.id base) (Machine_desc.id spelled)

let test_cluster_mii_hetero () =
  (* An ALU-heavy cluster (2 ALUs, 1 AG) absorbs 4 ALU ops in 2 cycles. *)
  Alcotest.(check int) "alu-heavy" 2
    (Cost.cluster_mii ~demand:(r 4 0) ~capacity:(r 2 1) ~receives:0 ~max_in:8);
  (* A pure-compute cluster (no AG) can never host an AG op. *)
  Alcotest.(check int) "no ag capacity" max_int
    (Cost.cluster_mii ~demand:(r 0 1) ~capacity:(r 4 0) ~receives:0 ~max_in:8);
  (* Receives compete with ALU ops for the issue window and serialise
     on the incoming wires. *)
  Alcotest.(check int) "receive pressure" 2
    (Cost.cluster_mii ~demand:(r 2 0) ~capacity:(r 2 2) ~receives:2 ~max_in:1)

(* ------------------------------------------------------------------ *)
(* Conformance: bit-identical reports across construction routes       *)
(* ------------------------------------------------------------------ *)

let roundtrip m =
  match Machine_io.of_string (Machine_io.to_string m) with
  | Ok m' -> m'
  | Error e -> Alcotest.failf "round-trip of %s failed: %s" (Machine_desc.name m) e

let test_paper_kernel_routes () =
  (* Three spellings of the reference machine: the Dspfabric builder,
     a [.machine] round-trip, and an explicit Machine_desc.make.  All
     must be equal as values and produce bit-identical reports. *)
  let a = Dspfabric.reference in
  let b = roundtrip a in
  let c =
    Machine_desc.make ~name:"dspfabric-64(N=8,M=8,K=8)"
      ~levels:
        [|
          { Machine_desc.fanout = 4; mux_cap = 8 };
          { fanout = 4; mux_cap = 8 };
          { fanout = 4; mux_cap = 8 };
        |]
      ~cn_in_wires:2 ~dma_ports:8 ()
  in
  Alcotest.(check bool) "roundtrip equal" true (Machine_desc.equal a b);
  Alcotest.(check bool) "explicit equal" true (Machine_desc.equal a c);
  Alcotest.(check string) "ids agree" (Machine_desc.id a) (Machine_desc.id b);
  List.iter
    (fun (name, kernel) ->
      let g = kernel () in
      let via_fabric = Report.run a g in
      let via_io = Report.run b g in
      let via_desc = Report.run c g in
      Alcotest.(check string)
        (name ^ " io route")
        (Report.invariant_string via_fabric)
        (Report.invariant_string via_io);
      Alcotest.(check string)
        (name ^ " desc route")
        (Report.invariant_string via_fabric)
        (Report.invariant_string via_desc))
    Hca_kernels.Registry.all

let prop_fuzz_roundtrip_reports =
  QCheck.Test.make ~name:"fuzz instances report identically after round-trip"
    ~count:50 seed_arb (fun seed ->
      let inst = Gen.instance ~seed () in
      let rt = roundtrip inst.Gen.fabric in
      Machine_desc.equal inst.Gen.fabric rt
      && Report.invariant_string (Report.run inst.Gen.fabric inst.Gen.ddg)
         = Report.invariant_string (Report.run rt inst.Gen.ddg))

(* ------------------------------------------------------------------ *)
(* The [.machine] format                                               *)
(* ------------------------------------------------------------------ *)

(* Deterministic description sampler for the round-trip property:
   adversarial names (spaces, escapes, comment and record characters),
   degenerate shapes (one level, fan-out 1) and heterogeneous tables
   are all drawn. *)
let desc_of_seed seed =
  let rng = Prng.create (seed + 0x6d61) in
  let depth = 1 + Prng.int rng 3 in
  let levels =
    Array.init depth (fun _ ->
        { Machine_desc.fanout = 1 + Prng.int rng 3; mux_cap = 1 + Prng.int rng 8 })
  in
  let pool = [| 'a'; 'b'; 'z'; ' '; '#'; '\\'; ';'; '['; '-'; '\t'; '\n' |] in
  let name =
    String.init (Prng.int rng 12) (fun _ ->
        pool.(Prng.int rng (Array.length pool)))
  in
  let base =
    Machine_desc.make ~name ~levels
      ~cn_in_wires:(1 + Prng.int rng 4)
      ~dma_ports:(1 + Prng.int rng 8)
      ()
  in
  if Prng.bool rng then base
  else
    Machine_desc.with_tables base
      (Array.init (Machine_desc.total_cns base) (fun _ ->
           match Prng.int rng 4 with
           | 0 -> r 2 1
           | 1 -> r 1 0
           | 2 -> r 1 2
           | _ -> Resource.cn))

let prop_machine_roundtrip =
  QCheck.Test.make ~name:".machine round-trips exactly (parse o print = id)"
    ~count:300 seed_arb (fun seed ->
      let m = desc_of_seed seed in
      let m' = roundtrip m in
      Machine_desc.equal m m'
      && Machine_desc.id m = Machine_desc.id m'
      && Machine_io.to_string m = Machine_io.to_string m')

let test_degenerate_roundtrip () =
  let single =
    Machine_desc.make ~name:"" ~levels:[| { Machine_desc.fanout = 1; mux_cap = 1 } |]
      ~cn_in_wires:1 ~dma_ports:1 ()
  in
  Alcotest.(check bool) "1-level, 1-CN, empty name" true
    (Machine_desc.equal single (roundtrip single));
  Alcotest.(check int) "single CN" 1 (Machine_desc.total_cns single);
  Alcotest.(check int) "single wire" 1 (Machine_desc.wire_cost single);
  let weird =
    Machine_desc.make ~name:"a b\\c#d\te\nf"
      ~levels:[| { Machine_desc.fanout = 2; mux_cap = 3 }; { fanout = 1; mux_cap = 2 } |]
      ~cn_in_wires:2 ~dma_ports:3 ()
  in
  Alcotest.(check bool) "escaped name survives" true
    (Machine_desc.equal weird (roundtrip weird));
  Alcotest.(check string) "name intact" "a b\\c#d\te\nf"
    (Machine_desc.name (roundtrip weird))

let test_malformed_rejection () =
  let expect text msg =
    match Machine_io.of_string text with
    | Ok m -> Alcotest.failf "accepted %S as %s" text (Machine_desc.name m)
    | Error e -> Alcotest.(check string) ("error for " ^ String.escaped text) msg e
  in
  expect "" "line 1: missing machine header";
  expect "level 2 2\n" "line 1: expected the machine header, got \"level\"";
  expect "machine m\ncn 0 2 1\n" "line 2: cn record before any level";
  expect "machine m\nlevel 2 2\ncn 0 2 1\nlevel 2 2\n"
    "line 4: level records must precede cn records";
  expect "machine m\nlevel 2 2\ncn 0-4 2 1\n" "line 3: cn range 0-4 outside [0, 2)";
  expect "machine m\nlevel 2 2\ncn 1 0 0\n" "line 3: a CN needs at least one unit";
  expect "machine m\nlevel 2 2\ncn_in_wires 2\ncn_in_wires 2\n"
    "line 4: duplicate cn_in_wires";
  expect "machine m\nwat 1\n" "line 2: unknown record \"wat\"";
  expect "machine m\nlevel x 2\n" "line 2: fan-out must be an integer, got \"x\"";
  expect "machine m\nlevel 2 2\ndma_ports 8\n" "missing cn_in_wires record";
  expect "machine m\ncn_in_wires 2\ndma_ports 8\n" "missing level records";
  (* Comments and blank lines do not shift the reported position. *)
  expect "machine m\n# comment\n\nlevel 0 2\n" "line 4: fan-out must be >= 1"

(* ------------------------------------------------------------------ *)
(* DSE determinism and Pareto logic                                    *)
(* ------------------------------------------------------------------ *)

let dse_kernels =
  [ ("fz3", Gen.ddg ~seed:3 ()); ("fz8", Gen.ddg ~seed:8 ()) ]

let dse_points () =
  Dse.grid_points ~fanouts:[ [| 2; 2 |]; [| 4; 2 |] ] ~caps:[ 2; 4 ] ()

let test_dse_jobs_invariant () =
  let p = dse_points () in
  let seq = Dse.run ~jobs:1 ~kernels:dse_kernels p in
  let par = Dse.run ~jobs:4 ~kernels:dse_kernels p in
  Alcotest.(check string)
    "NDJSON byte-identical at jobs 1 vs 4" (Dse.to_ndjson seq)
    (Dse.to_ndjson par);
  Alcotest.(check string)
    "ranked table identical" (Dse.ranked_table seq) (Dse.ranked_table par);
  (match Dse.check seq with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("self-check: " ^ e));
  (* Tampering with the front must trip the self-check. *)
  (match seq.Dse.front with
  | [] -> Alcotest.fail "expected a non-empty front"
  | _ :: rest -> (
      match Dse.check { seq with Dse.front = rest } with
      | Ok () -> Alcotest.fail "self-check accepted a truncated front"
      | Error _ -> ()))

let test_dse_permutation_stable () =
  let p = dse_points () in
  let fwd = Dse.run ~kernels:dse_kernels p in
  let rev = Dse.run ~kernels:dse_kernels (List.rev p) in
  let front r = List.map (fun s -> s.Dse.point) r.Dse.front in
  Alcotest.(check (list string))
    "front invariant under enumeration order" (front fwd) (front rev);
  List.iter
    (fun (s : Dse.summary) ->
      let s' =
        List.find (fun (x : Dse.summary) -> x.Dse.point = s.Dse.point)
          rev.Dse.summaries
      in
      Alcotest.(check bool)
        (s.Dse.point ^ " pareto flag stable") s.Dse.pareto s'.Dse.pareto)
    fwd.Dse.summaries

let test_dse_rows_match_standalone () =
  let p = dse_points () in
  let res = Dse.run ~jobs:2 ~kernels:dse_kernels p in
  List.iter
    (fun (e : Dse.eval) ->
      let point = List.find (fun q -> q.Dse.pname = e.Dse.point) p in
      let standalone =
        Report.run point.Dse.desc (List.assoc e.Dse.kernel dse_kernels)
      in
      Alcotest.(check string)
        (e.Dse.point ^ "/" ^ e.Dse.kernel ^ " equals standalone run")
        (Report.invariant_string standalone)
        (Report.invariant_string e.Dse.report))
    res.Dse.evals

let prop_non_dominated =
  QCheck.Test.make ~name:"non_dominated agrees with the definition" ~count:300
    seed_arb (fun seed ->
      let rng = Prng.create (seed + 0xd5e) in
      let n = 1 + Prng.int rng 8 in
      let costs =
        Array.init n (fun _ ->
            (Prng.int rng 4, Prng.int rng 4, Prng.int rng 4))
      in
      let keep = Dse.non_dominated costs in
      let dominates (a1, a2, a3) (b1, b2, b3) =
        a1 <= b1 && a2 <= b2 && a3 <= b3 && (a1 < b1 || a2 < b2 || a3 < b3)
      in
      let ok = ref (Array.exists Fun.id keep) in
      Array.iteri
        (fun i ci ->
          let expect =
            not
              (Array.exists Fun.id
                 (Array.mapi
                    (fun j cj -> j <> i && dominates cj ci)
                    costs))
          in
          if keep.(i) <> expect then ok := false)
        costs;
      !ok)

(* ------------------------------------------------------------------ *)
(* Machine identity: no two machines may alias a cache entry           *)
(* ------------------------------------------------------------------ *)

let prop_id_injective =
  QCheck.Test.make ~name:"Machine_desc.id is injective" ~count:200
    QCheck.(pair seed_arb seed_arb)
    (fun (s1, s2) ->
      let a = desc_of_seed s1 and b = desc_of_seed s2 in
      Machine_desc.equal a b = (Machine_desc.id a = Machine_desc.id b))

let test_id_forgery () =
  (* A name crafted to spell another description's id suffix still
     cannot collide: the length prefix pins where the name ends. *)
  let levels = [| { Machine_desc.fanout = 2; mux_cap = 2 } |] in
  let a =
    Machine_desc.make ~name:"x;levels=2:2;cn_in=1;dma=1;tables=uniform]"
      ~levels ~cn_in_wires:1 ~dma_ports:1 ()
  in
  let b =
    Machine_desc.make ~name:"x" ~levels ~cn_in_wires:1 ~dma_ports:1 ()
  in
  Alcotest.(check bool) "forged ids differ" false
    (Machine_desc.id a = Machine_desc.id b)

let test_cache_no_cross_machine_hits () =
  let g = Gen.ddg ~seed:5 () in
  let machine_a = Dspfabric.make ~fanouts:[| 2; 2 |] ~n:4 ~m:4 ~k:4 () in
  let machine_b = Dspfabric.make ~fanouts:[| 2; 2 |] ~n:4 ~m:4 ~k:2 () in
  let cache = Hierarchy.create_cache () in
  let cold_a = Report.run ~cache machine_a g in
  Alcotest.(check int) "cold run hits nothing" 0 cold_a.Report.cache_hits;
  Alcotest.(check bool) "cold run fills the store" true
    (cold_a.Report.cache_misses > 0);
  (* A different machine, same kernel, same store: the store is warm
     but every key embeds the machine id, so nothing may alias. *)
  let cold_b = Report.run ~cache machine_b g in
  Alcotest.(check int)
    "machine B misses machine A's entries" 0 cold_b.Report.cache_hits;
  (* The same machine again does hit — the store itself works. *)
  let warm_a = Report.run ~cache machine_a g in
  Alcotest.(check bool) "machine A reruns warm" true
    (warm_a.Report.cache_hits > 0);
  Alcotest.(check string) "warm rerun bit-identical"
    (Report.invariant_string cold_a)
    (Report.invariant_string warm_a)

let () =
  Alcotest.run "machine_gen"
    [
      ( "conformance",
        [
          Alcotest.test_case "legacy level views" `Quick test_legacy_level_views;
          Alcotest.test_case "reference constants" `Quick test_reference_constants;
          Alcotest.test_case "hetero capacities" `Quick test_hetero_capacities;
          Alcotest.test_case "hetero cluster MII" `Quick test_cluster_mii_hetero;
          Alcotest.test_case "paper-kernel routes" `Quick test_paper_kernel_routes;
          QCheck_alcotest.to_alcotest prop_fuzz_roundtrip_reports;
        ] );
      ( "machine-format",
        [
          QCheck_alcotest.to_alcotest prop_machine_roundtrip;
          Alcotest.test_case "degenerate machines" `Quick test_degenerate_roundtrip;
          Alcotest.test_case "malformed rejection" `Quick test_malformed_rejection;
        ] );
      ( "dse",
        [
          Alcotest.test_case "jobs-invariant output" `Quick test_dse_jobs_invariant;
          Alcotest.test_case "permutation-stable front" `Quick
            test_dse_permutation_stable;
          Alcotest.test_case "rows equal standalone runs" `Quick
            test_dse_rows_match_standalone;
          QCheck_alcotest.to_alcotest prop_non_dominated;
        ] );
      ( "aliasing",
        [
          QCheck_alcotest.to_alcotest prop_id_injective;
          Alcotest.test_case "id forgery" `Quick test_id_forgery;
          Alcotest.test_case "no cross-machine cache hits" `Quick
            test_cache_no_cross_machine_hits;
        ] );
    ]
