(* Tests for the lib/serve compile daemon: JSON/protocol round-trips
   (malformed input included), job-queue priority / cancel / deadline
   semantics, the in-process daemon handler, and the persistent memo
   store — warm-restart bit-equality against a cold run plus
   stale-stamp invalidation. *)

open Hca_serve

let tmp_store name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "hca_test_%s_%d.bin" name (Unix.getpid ()))

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let cases =
    [
      {|null|};
      {|true|};
      {|42|};
      {|-1.5|};
      {|"a\"b\\c\nd"|};
      {|[1,[2,3],{"k":null}]|};
      {|{"a":1,"b":[true,false],"c":{"d":"e"}}|};
    ]
  in
  List.iter
    (fun s ->
      match Json.parse s with
      | Error e -> Alcotest.failf "parse %s: %s" s e
      | Ok j -> (
          let printed = Json.to_string j in
          match Json.parse printed with
          | Error e -> Alcotest.failf "reparse %s: %s" printed e
          | Ok j' ->
              Alcotest.(check bool)
                (Printf.sprintf "roundtrip %s" s)
                true (j = j')))
    cases

let test_json_escapes () =
  match Json.parse {|"A\té"|} with
  | Ok (Json.Str s) -> Alcotest.(check string) "unicode escapes" "A\t\xc3\xa9" s
  | Ok _ -> Alcotest.fail "expected a string"
  | Error e -> Alcotest.fail e

let test_json_errors () =
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.failf "accepted malformed %S" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; {|{"a":}|}; "tru"; {|"unterminated|}; "1 2"; "{\"a\":1,}" ]

(* ------------------------------------------------------------------ *)
(* Protocol                                                            *)
(* ------------------------------------------------------------------ *)

let test_protocol_verbs () =
  (match Protocol.request_of_line {|{"verb":"ping"}|} with
  | Ok Protocol.Ping -> ()
  | _ -> Alcotest.fail "ping");
  (match Protocol.request_of_line {|{"verb":"stats"}|} with
  | Ok Protocol.Stats -> ()
  | _ -> Alcotest.fail "stats");
  (match Protocol.request_of_line {|{"verb":"shutdown"}|} with
  | Ok Protocol.Shutdown -> ()
  | _ -> Alcotest.fail "shutdown");
  (match Protocol.request_of_line {|{"verb":"status","id":3}|} with
  | Ok (Protocol.Status 3) -> ()
  | _ -> Alcotest.fail "status");
  (match Protocol.request_of_line {|{"verb":"result","id":7,"wait":true}|} with
  | Ok (Protocol.Result { id = 7; wait = true }) -> ()
  | _ -> Alcotest.fail "result wait");
  match Protocol.request_of_line {|{"verb":"cancel","id":1}|} with
  | Ok (Protocol.Cancel 1) -> ()
  | _ -> Alcotest.fail "cancel"

let test_protocol_submit () =
  match
    Protocol.request_of_line
      {|{"verb":"submit","kernel":"fir2dim","machine":{"n":4,"m":4,"k":4},"config":{"beam":2,"candidates":3,"spread":true,"fanin_cap":5},"priority":9,"deadline_s":1.5,"memo":false}|}
  with
  | Ok (Protocol.Submit s) ->
      (match s.Protocol.source with
      | Protocol.Named "fir2dim" -> ()
      | _ -> Alcotest.fail "source");
      Alcotest.(check (option (triple int int int)))
        "machine" (Some (4, 4, 4)) s.Protocol.machine;
      Alcotest.(check (option int)) "beam" (Some 2) s.Protocol.beam;
      Alcotest.(check (option int)) "candidates" (Some 3) s.Protocol.candidates;
      Alcotest.(check (option bool)) "spread" (Some true) s.Protocol.spread;
      Alcotest.(check (option int)) "fanin_cap" (Some 5) s.Protocol.fanin_cap;
      Alcotest.(check int) "priority" 9 s.Protocol.priority;
      Alcotest.(check (option (float 1e-9)))
        "deadline" (Some 1.5) s.Protocol.deadline_s;
      Alcotest.(check bool) "memo" false s.Protocol.memo
  | Ok _ -> Alcotest.fail "not a submit"
  | Error e -> Alcotest.fail e

let test_protocol_submit_machine_desc () =
  match
    Protocol.request_of_line
      {|{"verb":"submit","kernel":"fir2dim","machine_desc":"machine tiny\nlevel 2 4\nlevel 2 2\ncn_in_wires 2\ndma_ports 4\n"}|}
  with
  | Ok (Protocol.Submit s) ->
      Alcotest.(check (option (triple int int int)))
        "no shorthand machine" None s.Protocol.machine;
      let text = Option.get s.Protocol.machine_desc in
      (match Hca_machine.Machine_io.of_string text with
      | Ok m ->
          Alcotest.(check string) "name" "tiny" (Hca_machine.Machine_desc.name m);
          Alcotest.(check int) "cns" 4 (Hca_machine.Machine_desc.total_cns m)
      | Error e -> Alcotest.fail ("inline text should parse: " ^ e))
  | Ok _ -> Alcotest.fail "not a submit"
  | Error e -> Alcotest.fail e

let test_protocol_rejects () =
  let expect_error line =
    match Protocol.request_of_line line with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted %s" line
  in
  expect_error "not json at all";
  expect_error {|[1,2,3]|};
  expect_error {|{"no_verb":true}|};
  expect_error {|{"verb":"frobnicate"}|};
  expect_error {|{"verb":"status"}|};
  expect_error {|{"verb":"status","id":-1}|};
  expect_error {|{"verb":"submit"}|};
  expect_error {|{"verb":"submit","kernel":"a","gen_seed":1}|};
  expect_error {|{"verb":"submit","kernel":"a","deadline_s":-1}|};
  expect_error {|{"verb":"submit","kernel":"a","machine":{"n":0,"m":8,"k":8}}|};
  (* machine and machine_desc are mutually exclusive; the latter must
     be a string. *)
  expect_error
    {|{"verb":"submit","kernel":"a","machine":{"n":8,"m":8,"k":8},"machine_desc":"machine x\n"}|};
  expect_error {|{"verb":"submit","kernel":"a","machine_desc":42}|}

(* ------------------------------------------------------------------ *)
(* Job queue                                                           *)
(* ------------------------------------------------------------------ *)

let small_kernel seed = Daemon.gen_kernel ~seed ~max_size:(Some 6)

let quick_report () =
  Hca_core.Report.run Hca_machine.Dspfabric.reference (small_kernel 1)

let test_jobq_priority_order () =
  let q = Jobq.create () in
  let order = ref [] in
  let mk tag = fun ~id:_ ~deadline_s:_ ->
    order := tag :: !order;
    quick_report ()
  in
  let a = Jobq.submit q ~label:"a" ~priority:0 (mk "a") in
  let b = Jobq.submit q ~label:"b" ~priority:5 (mk "b") in
  let c = Jobq.submit q ~label:"c" ~priority:5 (mk "c") in
  let d = Jobq.submit q ~label:"d" ~priority:1 (mk "d") in
  while Jobq.pump q do () done;
  (* b and c share the top priority: FIFO between them; then d, then a. *)
  Alcotest.(check (list string)) "drain order" [ "b"; "c"; "d"; "a" ]
    (List.rev !order);
  List.iter
    (fun id ->
      match Jobq.state q id with
      | Some (Jobq.Finished (Jobq.Solved _)) -> ()
      | _ -> Alcotest.failf "job %d not solved" id)
    [ a; b; c; d ]

let test_jobq_cancel_and_expiry () =
  let q = Jobq.create () in
  let ran = ref false in
  let id =
    Jobq.submit q ~label:"x" (fun ~id:_ ~deadline_s:_ ->
        ran := true;
        quick_report ())
  in
  (match Jobq.cancel q id with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "cancel is terminal" true
    (Jobq.state q id = Some Jobq.Cancelled);
  (match Jobq.cancel q id with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "double cancel accepted");
  Alcotest.(check bool) "cancelled job never ran" false !ran;
  Alcotest.(check bool) "cancelled job left the queue" false (Jobq.pump q);
  (* A zero deadline expires while queued: the work closure never runs. *)
  let id2 =
    Jobq.submit q ~label:"y" ~deadline_s:0. (fun ~id:_ ~deadline_s:_ ->
        ran := true;
        quick_report ())
  in
  Alcotest.(check bool) "expiry consumed a pump step" true (Jobq.pump q);
  Alcotest.(check bool) "expired without running" true
    (Jobq.state q id2 = Some (Jobq.Finished Jobq.Expired) && not !ran);
  (match Jobq.cancel q 999 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "cancelled unknown id");
  let tot = Jobq.totals q in
  Alcotest.(check int) "cancelled counted" 1 tot.Jobq.cancelled;
  Alcotest.(check int) "expired counted" 1 tot.Jobq.expired

let test_jobq_crash_isolated () =
  let q = Jobq.create () in
  let id =
    Jobq.submit q ~label:"boom" (fun ~id:_ ~deadline_s:_ -> failwith "kaboom")
  in
  ignore (Jobq.pump q);
  match Jobq.state q id with
  | Some (Jobq.Finished (Jobq.Crashed msg)) ->
      Alcotest.(check bool) "message kept" true
        (String.length msg > 0)
  | _ -> Alcotest.fail "crash not captured"

(* ------------------------------------------------------------------ *)
(* Report deadline semantics                                           *)
(* ------------------------------------------------------------------ *)

let test_report_deadline_partial () =
  let fabric = Hca_machine.Dspfabric.reference in
  let ddg = Hca_kernels.Registry.find "fir2dim" |> Option.get |> fun f -> f () in
  (* An expired budget must yield a structured timeout, never raise. *)
  let r = Hca_core.Report.run ~deadline_s:0. fabric ddg in
  Alcotest.(check bool) "timed_out set" true r.Hca_core.Report.timed_out;
  Alcotest.(check bool) "structured outcome" true
    (r.Hca_core.Report.legal || r.Hca_core.Report.error <> None);
  (* No deadline: flag stays clear on the same input. *)
  let r2 = Hca_core.Report.run fabric ddg in
  Alcotest.(check bool) "no deadline, no flag" false
    r2.Hca_core.Report.timed_out;
  Alcotest.(check bool) "full run legal" true r2.Hca_core.Report.legal

(* ------------------------------------------------------------------ *)
(* Daemon handler (in-process, no pool: deterministic pumping)         *)
(* ------------------------------------------------------------------ *)

let line_of = function
  | Daemon.Line s -> s
  | Daemon.Wait_for _ -> Alcotest.fail "unexpected deferred reply"
  | Daemon.Shutdown_after s -> s

let ok_json s =
  match Json.parse s with
  | Ok j ->
      Alcotest.(check (option bool))
        "ok field" (Some true)
        (Option.bind (Json.member "ok" j) Json.bool);
      j
  | Error e -> Alcotest.failf "bad response %S: %s" s e

let err_json s =
  match Json.parse s with
  | Ok j ->
      Alcotest.(check (option bool))
        "ok field" (Some false)
        (Option.bind (Json.member "ok" j) Json.bool);
      j
  | Error e -> Alcotest.failf "bad response %S: %s" s e

let jint j k = Option.get (Option.bind (Json.member k j) Json.int)

let jstr j k = Option.get (Option.bind (Json.member k j) Json.str)

let test_daemon_submit_result () =
  let t = Daemon.create () in
  let j =
    ok_json (line_of (Daemon.handle_line t {|{"verb":"submit","kernel":"fir2dim"}|}))
  in
  let id = jint j "id" in
  (* Not finished yet (nothing pumps without a pool): result without
     wait is a client error, with wait defers. *)
  ignore
    (err_json
       (line_of
          (Daemon.handle_line t
             (Printf.sprintf {|{"verb":"result","id":%d}|} id))));
  (match
     Daemon.handle_line t
       (Printf.sprintf {|{"verb":"result","id":%d,"wait":true}|} id)
   with
  | Daemon.Wait_for i -> Alcotest.(check int) "deferred id" id i
  | _ -> Alcotest.fail "expected Wait_for");
  ignore (Jobq.wait (Daemon.jobq t) id);
  let r = ok_json (Daemon.result_line t id) in
  Alcotest.(check string) "state" "done" (jstr r "state");
  Alcotest.(check string) "kernel" "fir2dim" (jstr r "kernel");
  Alcotest.(check bool) "legal" true
    (Option.get (Option.bind (Json.member "legal" r) Json.bool));
  Alcotest.(check bool) "invariant present" true
    (Json.member "invariant" r <> None);
  let st = ok_json (line_of (Daemon.handle_line t {|{"verb":"stats"}|})) in
  Alcotest.(check int) "submitted" 1 (jint st "submitted");
  Alcotest.(check int) "finished" 1 (jint st "finished");
  Alcotest.(check bool) "cache grew" true (jint st "cache_entries" > 0)

let test_daemon_rejects () =
  let t = Daemon.create () in
  ignore (err_json (line_of (Daemon.handle_line t "not json")));
  ignore (err_json (line_of (Daemon.handle_line t {|{"verb":"frobnicate"}|})));
  ignore
    (err_json (line_of (Daemon.handle_line t {|{"verb":"status","id":42}|})));
  ignore
    (err_json
       (line_of (Daemon.handle_line t {|{"verb":"submit","kernel":"nope"}|})));
  ignore
    (err_json
       (line_of (Daemon.handle_line t {|{"verb":"submit","ddg":"garbage"}|})))

let test_daemon_cancel_and_shutdown () =
  let t = Daemon.create () in
  let j =
    ok_json
      (line_of (Daemon.handle_line t {|{"verb":"submit","gen_seed":3}|}))
  in
  let id = jint j "id" in
  let c =
    ok_json
      (line_of
         (Daemon.handle_line t (Printf.sprintf {|{"verb":"cancel","id":%d}|} id)))
  in
  Alcotest.(check string) "cancelled" "cancelled" (jstr c "state");
  let r = ok_json (Daemon.result_line t id) in
  Alcotest.(check string) "result of cancelled" "cancelled" (jstr r "state");
  (match Daemon.handle_line t {|{"verb":"shutdown"}|} with
  | Daemon.Shutdown_after _ -> ()
  | _ -> Alcotest.fail "expected Shutdown_after");
  (* Post-shutdown submissions are refused. *)
  ignore
    (err_json
       (line_of (Daemon.handle_line t {|{"verb":"submit","gen_seed":4}|})))

let test_daemon_deadline_expired_row () =
  let t = Daemon.create () in
  let j =
    ok_json
      (line_of
         (Daemon.handle_line t
            {|{"verb":"submit","gen_seed":5,"deadline_s":0}|}))
  in
  let id = jint j "id" in
  ignore (Jobq.wait (Daemon.jobq t) id);
  let r = ok_json (Daemon.result_line t id) in
  Alcotest.(check string) "deadline row" "deadline_exceeded" (jstr r "state")

(* Inline kernels are keyed by content, not by their given name: two
   different graphs must get different cache identities. *)
let test_daemon_inline_content_named () =
  let t = Daemon.create () in
  let submit ddg =
    let line =
      Json.to_string
        (Json.Obj
           [ ("verb", Json.Str "submit"); ("ddg", Json.Str ddg) ])
    in
    let j = ok_json (line_of (Daemon.handle_line t line)) in
    jstr j "kernel"
  in
  let g1 = Hca_ddg.Ddg_io.to_string (small_kernel 1) in
  let g2 = Hca_ddg.Ddg_io.to_string (small_kernel 2) in
  let n1 = submit g1 and n2 = submit g2 and n1' = submit g1 in
  Alcotest.(check bool) "different graphs, different names" true (n1 <> n2);
  Alcotest.(check string) "same graph, same name" n1 n1'

(* ------------------------------------------------------------------ *)
(* Persistent store                                                    *)
(* ------------------------------------------------------------------ *)

let run_one t line =
  let j = ok_json (line_of (Daemon.handle_line t line)) in
  let id = jint j "id" in
  ignore (Jobq.wait (Daemon.jobq t) id);
  ok_json (Daemon.result_line t id)

let test_daemon_machine_desc () =
  let t = Daemon.create () in
  (* An inline [.machine] description carries the whole topology —
     heterogeneous table included — through the wire protocol. *)
  let r =
    run_one t
      {|{"verb":"submit","gen_seed":2,"machine_desc":"machine wide\nlevel 2 4\nlevel 2 4\ncn_in_wires 2\ndma_ports 4\ncn 0-1 2 1\n"}|}
  in
  Alcotest.(check string) "state" "done" (jstr r "state");
  Alcotest.(check string) "runs on the inline machine" "wide"
    (jstr r "machine");
  (* A description that fails to parse is rejected with its position. *)
  match
    Daemon.handle_line t
      {|{"verb":"submit","gen_seed":2,"machine_desc":"machine wide\nlevel 0 4\n"}|}
  with
  | Daemon.Line l ->
      let e = err_json l in
      let err = jstr e "error" in
      let has_pos =
        let sub = "line 2" in
        let n = String.length err and k = String.length sub in
        let rec go i = i + k <= n && (String.sub err i k = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "parse error carries its position" true has_pos
  | _ -> Alcotest.fail "expected an immediate rejection"

let test_store_warm_restart_bit_equal () =
  let path = tmp_store "warm" in
  if Sys.file_exists path then Sys.remove path;
  let submit = {|{"verb":"submit","kernel":"fir2dim"}|} in
  (* Cold lifetime. *)
  let a = Daemon.create ~store_path:path () in
  Alcotest.(check int) "cold start" 0 (Daemon.loaded_entries a);
  let ra = run_one a submit in
  (match Daemon.flush_store a with
  | Ok (Some n) -> Alcotest.(check bool) "entries flushed" true (n > 0)
  | _ -> Alcotest.fail "flush failed");
  (* Warm lifetime: inherits the store, answers bit-identically. *)
  let b = Daemon.create ~store_path:path () in
  Alcotest.(check bool) "warm start" true (Daemon.loaded_entries b > 0);
  let rb = run_one b submit in
  Alcotest.(check string) "bit-identical across lifetimes"
    (jstr ra "invariant") (jstr rb "invariant");
  Alcotest.(check bool) "warm run hit the store" true
    (jint rb "cache_hits" > 0);
  Alcotest.(check int) "warm run missed nothing" 0 (jint rb "cache_misses");
  Sys.remove path

let test_store_stale_stamp_invalidation () =
  let path = tmp_store "stale" in
  if Sys.file_exists path then Sys.remove path;
  let a = Daemon.create ~store_path:path ~stamp:"stamp-A" () in
  ignore (run_one a {|{"verb":"submit","gen_seed":11}|});
  (match Daemon.flush_store a with
  | Ok (Some _) -> ()
  | _ -> Alcotest.fail "flush failed");
  (* Same stamp: loads. *)
  let b = Daemon.create ~store_path:path ~stamp:"stamp-A" () in
  Alcotest.(check bool) "same stamp loads" true (Daemon.loaded_entries b > 0);
  (* Different stamp: the whole file is discarded, cold start. *)
  let c = Daemon.create ~store_path:path ~stamp:"stamp-B" () in
  Alcotest.(check int) "stale stamp discarded" 0 (Daemon.loaded_entries c);
  (* Direct load mirrors both verdicts. *)
  (match Store.load ~path ~stamp:"stamp-A" with
  | Ok (Some _) -> ()
  | _ -> Alcotest.fail "expected a snapshot");
  (match Store.load ~path ~stamp:"stamp-B" with
  | Ok None -> ()
  | _ -> Alcotest.fail "expected stale rejection");
  Sys.remove path

let test_store_corrupt_and_missing () =
  let path = tmp_store "corrupt" in
  (match Store.load ~path:(path ^ ".nope") ~stamp:"s" with
  | Ok None -> ()
  | _ -> Alcotest.fail "missing file should be a cold start");
  let oc = open_out_bin path in
  output_string oc "definitely not a store\n";
  close_out oc;
  (match Store.load ~path ~stamp:"s" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "corrupt store accepted");
  (* A corrupt store must not kill the daemon: it warns and starts cold. *)
  let t = Daemon.create ~store_path:path () in
  Alcotest.(check int) "daemon survives corruption" 0 (Daemon.loaded_entries t);
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* Telemetry: the metrics verb, per-request traces, the flight         *)
(* recorder, and the extended stats fields.  The registry and the      *)
(* flight ring are process-global, so every test here clears / disarms *)
(* what it armed.                                                      *)
(* ------------------------------------------------------------------ *)

module Obs = Hca_obs.Obs

let with_clean_registry f =
  Obs.Registry.clear ();
  Fun.protect ~finally:Obs.Registry.clear f

let tmp_dir name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "hca_test_%s_%d" name (Unix.getpid ()))

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let jnum j k = Option.get (Option.bind (Json.member k j) Json.num)

let test_metrics_verb_roundtrip () =
  with_clean_registry (fun () ->
      let t = Daemon.create () in
      ignore (run_one t {|{"verb":"submit","kernel":"fir2dim"}|});
      (* JSON exposition: the daemon's own counters and latency
         histogram come back through the protocol parser, so the
         round-trip also proves Registry.to_json_string is valid
         JSON. *)
      let j =
        ok_json (line_of (Daemon.handle_line t {|{"verb":"metrics"}|}))
      in
      let m = Option.get (Json.member "metrics" j) in
      let counters = Option.get (Json.member "counters" m) in
      let cnt k = Option.bind (Json.member k counters) Json.int in
      Alcotest.(check (option int)) "submissions counted" (Some 1)
        (cnt "hca_jobs_submitted_total");
      Alcotest.(check (option int)) "solved outcome counted" (Some 1)
        (cnt {|hca_jobs_done_total{outcome="solved"}|});
      Alcotest.(check (option int)) "per-verb request counter" (Some 1)
        (cnt {|hca_requests_total{verb="submit"}|});
      let hists = Option.get (Json.member "histograms" m) in
      (match Json.member "hca_request_latency_ms" hists with
      | Some h ->
          Alcotest.(check (option int)) "latency samples" (Some 1)
            (Option.bind (Json.member "count" h) Json.int)
      | None -> Alcotest.fail "latency histogram missing");
      (* Prometheus exposition: typed, and every sample line parses. *)
      let p =
        ok_json
          (line_of
             (Daemon.handle_line t {|{"verb":"metrics","format":"prometheus"}|}))
      in
      Alcotest.(check string) "format tag" "prometheus" (jstr p "format");
      let text = jstr p "prometheus" in
      Alcotest.(check bool) "TYPE lines present" true
        (contains ~sub:"# TYPE hca_jobs_submitted_total counter" text);
      Alcotest.(check bool) "histogram series present" true
        (contains ~sub:"hca_request_latency_ms_bucket{le=" text);
      List.iter
        (fun line ->
          if line <> "" && line.[0] <> '#' then
            match String.rindex_opt line ' ' with
            | None -> Alcotest.failf "no sample value on %S" line
            | Some i ->
                let v =
                  String.sub line (i + 1) (String.length line - i - 1)
                in
                if float_of_string_opt v = None then
                  Alcotest.failf "unparseable sample on %S" line)
        (String.split_on_char '\n' text))

let test_trace_request_and_bit_equal () =
  with_clean_registry (fun () ->
      let tel =
        { Daemon.default_telemetry with Daemon.trace_dir = tmp_dir "traces" }
      in
      let t = Daemon.create ~telemetry:tel () in
      let j =
        ok_json
          (line_of
             (Daemon.handle_line t
                {|{"verb":"submit","kernel":"fir2dim","trace":true}|}))
      in
      let id = jint j "id" in
      ignore (Jobq.wait (Daemon.jobq t) id);
      let traced = ok_json (Daemon.result_line t id) in
      let file = Daemon.trace_file t id in
      Alcotest.(check bool) "trace file written" true (Sys.file_exists file);
      (match Hca_obs.Trace_check.validate_file file with
      | Error e -> Alcotest.failf "invalid request trace: %s" e
      | Ok stats ->
          Alcotest.(check bool) "capture has events" true
            (stats.Hca_obs.Trace_check.events > 0);
          (* The capture wraps the whole work closure, so the search's
             own top-level span must be inside. *)
          match
            List.assoc_opt "report.run" stats.Hca_obs.Trace_check.span_names
          with
          | Some n when n > 0 -> ()
          | _ -> Alcotest.fail "report.run span missing from request trace");
      Alcotest.(check int) "trace file counted" 1
        (Obs.Registry.counter "hca_trace_files_total");
      Sys.remove file;
      (* The identical submission with telemetry entirely off answers
         bit-identically: recording never influences the search. *)
      let plain = Daemon.create () in
      let untraced = run_one plain {|{"verb":"submit","kernel":"fir2dim"}|} in
      Alcotest.(check string) "traced vs untraced bit-equal"
        (jstr untraced "invariant") (jstr traced "invariant"))

let test_flight_dump_on_crash () =
  with_clean_registry (fun () ->
      let dir = tmp_dir "flight" in
      let tel =
        {
          Daemon.default_telemetry with
          Daemon.trace_dir = dir;
          flight = true;
          flight_capacity = 256;
        }
      in
      let t = Daemon.create ~telemetry:tel () in
      Fun.protect ~finally:Obs.Ring.disarm (fun () ->
          Alcotest.(check bool) "create armed the ring" true (Obs.Ring.armed ());
          let id =
            Daemon.inject t ~label:"boom" (fun ~deadline_s:_ ->
                failwith "kaboom")
          in
          ignore (Jobq.wait (Daemon.jobq t) id);
          (match Jobq.state (Daemon.jobq t) id with
          | Some (Jobq.Finished (Jobq.Crashed _)) -> ()
          | _ -> Alcotest.fail "expected a crash");
          let file =
            Filename.concat dir (Printf.sprintf "flight-%d.json" id)
          in
          Alcotest.(check bool) "flight dump written" true
            (Sys.file_exists file);
          (match Hca_obs.Trace_check.validate_file file with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "invalid flight dump: %s" e);
          Alcotest.(check int) "dump counted" 1
            (Obs.Registry.counter "hca_flight_dumps_total");
          Sys.remove file))

let test_flight_dump_on_slow () =
  with_clean_registry (fun () ->
      let dir = tmp_dir "slow" in
      let tel =
        {
          Daemon.default_telemetry with
          Daemon.trace_dir = dir;
          flight = true;
          slow_ms = Some 0.;
        }
      in
      let t = Daemon.create ~telemetry:tel () in
      Fun.protect ~finally:Obs.Ring.disarm (fun () ->
          (* Any successful job has positive latency, so slow_ms = 0
             trips the dump without needing an actually slow kernel. *)
          let id =
            Daemon.inject t ~label:"slow" (fun ~deadline_s:_ ->
                quick_report ())
          in
          ignore (Jobq.wait (Daemon.jobq t) id);
          (match Jobq.state (Daemon.jobq t) id with
          | Some (Jobq.Finished (Jobq.Solved _)) -> ()
          | _ -> Alcotest.fail "slow job should still solve");
          let file =
            Filename.concat dir (Printf.sprintf "flight-%d.json" id)
          in
          Alcotest.(check bool) "slow-ms tripped a dump" true
            (Sys.file_exists file);
          (match Hca_obs.Trace_check.validate_file file with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "invalid flight dump: %s" e);
          Sys.remove file))

let test_stats_telemetry_fields () =
  with_clean_registry (fun () ->
      let t = Daemon.create () in
      ignore (run_one t {|{"verb":"submit","gen_seed":7}|});
      let st = ok_json (line_of (Daemon.handle_line t {|{"verb":"stats"}|})) in
      let p50 = jnum st "latency_p50_ms" in
      let p99 = jnum st "latency_p99_ms" in
      Alcotest.(check bool) "latency quantiles populated and ordered" true
        (p50 >= 0. && p99 >= p50);
      Alcotest.(check int) "trace_files" 0 (jint st "trace_files");
      Alcotest.(check int) "flight_dumps" 0 (jint st "flight_dumps"))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "serve"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "escapes" `Quick test_json_escapes;
          Alcotest.test_case "errors" `Quick test_json_errors;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "verbs" `Quick test_protocol_verbs;
          Alcotest.test_case "submit" `Quick test_protocol_submit;
          Alcotest.test_case "submit machine_desc" `Quick
            test_protocol_submit_machine_desc;
          Alcotest.test_case "rejects" `Quick test_protocol_rejects;
        ] );
      ( "jobq",
        [
          Alcotest.test_case "priority order" `Quick test_jobq_priority_order;
          Alcotest.test_case "cancel and expiry" `Quick
            test_jobq_cancel_and_expiry;
          Alcotest.test_case "crash isolated" `Quick test_jobq_crash_isolated;
        ] );
      ( "deadline",
        [
          Alcotest.test_case "report partial best-so-far" `Quick
            test_report_deadline_partial;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "submit/result" `Quick test_daemon_submit_result;
          Alcotest.test_case "rejects" `Quick test_daemon_rejects;
          Alcotest.test_case "cancel + shutdown" `Quick
            test_daemon_cancel_and_shutdown;
          Alcotest.test_case "deadline row" `Quick
            test_daemon_deadline_expired_row;
          Alcotest.test_case "inline content naming" `Quick
            test_daemon_inline_content_named;
          Alcotest.test_case "inline machine description" `Quick
            test_daemon_machine_desc;
        ] );
      ( "store",
        [
          Alcotest.test_case "warm restart bit-equal" `Quick
            test_store_warm_restart_bit_equal;
          Alcotest.test_case "stale stamp invalidation" `Quick
            test_store_stale_stamp_invalidation;
          Alcotest.test_case "corrupt and missing" `Quick
            test_store_corrupt_and_missing;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "metrics verb roundtrip" `Quick
            test_metrics_verb_roundtrip;
          Alcotest.test_case "request trace + bit-equal" `Quick
            test_trace_request_and_bit_equal;
          Alcotest.test_case "flight dump on crash" `Quick
            test_flight_dump_on_crash;
          Alcotest.test_case "flight dump on slow-ms" `Quick
            test_flight_dump_on_slow;
          Alcotest.test_case "stats telemetry fields" `Quick
            test_stats_telemetry_fields;
        ] );
    ]
