examples/arch_explore.mli:
