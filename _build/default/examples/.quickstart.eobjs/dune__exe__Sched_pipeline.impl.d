examples/sched_pipeline.ml: Dspfabric Hca_core Hca_ddg Hca_kernels Hca_machine Hca_sched Hierarchy Koms List Modulo Option Printf Regpress Report
