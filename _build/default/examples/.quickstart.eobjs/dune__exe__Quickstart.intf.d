examples/quickstart.mli:
