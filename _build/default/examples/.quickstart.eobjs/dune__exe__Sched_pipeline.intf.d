examples/sched_pipeline.mli:
