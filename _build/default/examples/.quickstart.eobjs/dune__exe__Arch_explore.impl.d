examples/arch_explore.ml: Dspfabric Hca_core Hca_kernels Hca_machine Hca_util List Printf Report
