examples/quickstart.ml: Array Dspfabric Format Hca_baseline Hca_core Hca_ddg Hca_kernels Hca_machine Hierarchy Option Printf Report
