examples/custom_kernel.ml: Array Ddg Ddg_io Dspfabric Format Graph_algo Hca_core Hca_ddg Hca_kernels Hca_machine Hierarchy Mii Opcode Out_channel Printf Report
