(* End-to-end compilation pipeline: cluster assignment (this paper) +
   the modulo-scheduling phase the authors defer to future work — a
   preview of the complete DSPFabric toolchain.

   Run with:  dune exec examples/sched_pipeline.exe *)

open Hca_machine
open Hca_core
open Hca_sched

let () =
  let fabric = Dspfabric.reference in
  let ddg = Hca_kernels.Mpeg2inter.ddg () in
  Printf.printf "=== %s on %s ===\n" (Hca_ddg.Ddg.name ddg)
    (Dspfabric.name fabric);

  (* Phase 1: Hierarchical Cluster Assignment. *)
  let report = Report.run fabric ddg in
  (match report.Report.final_mii with
  | None -> failwith "clusterisation failed"
  | Some final ->
      Printf.printf "HCA: legal=%b, final MII=%d (ini %d)\n" report.Report.legal
        final report.Report.ini_mii);
  let res = Option.get report.Report.result in
  let final = Option.get report.Report.final_mii in

  (* Phase 2: iterative modulo scheduling on the clusterised DDG. *)
  match
    Modulo.run ~ddg ~cn_of_instr:res.Hierarchy.cn_of_instr
      ~cns:(Dspfabric.total_cns fabric)
      ~dma_ports:(Dspfabric.dma_ports fabric) ~start_ii:final ()
  with
  | Error e -> Printf.printf "scheduling failed: %s\n" e
  | Ok schedule ->
      Printf.printf "modulo schedule: II=%d, %d stages, occupancy %.2f\n"
        schedule.Modulo.ii schedule.Modulo.stages schedule.Modulo.occupancy;
      (match Modulo.validate ~ddg ~cn_of_instr:res.Hierarchy.cn_of_instr
               ~copy_latency:1 schedule
       with
      | Ok () -> print_endline "schedule validated (dependences + resources)"
      | Error e -> Printf.printf "INVALID schedule: %s\n" e);

      (* Phase 3: kernel-only code-generation statistics (§2.2: DSPFabric
         runs fully predicated kernels under a cyclic program counter). *)
      let koms = Koms.analyse schedule in
      Printf.printf
        "kernel-only execution: %d staging predicates, %d fill/drain cycles\n"
        koms.Koms.predicates koms.Koms.fill_drain_cycles;
      List.iter
        (fun trip ->
          Printf.printf "  %4d iterations: %6d cycles (%.1fx vs unpipelined)\n"
            trip
            (Koms.total_cycles koms ~trip)
            (Koms.speedup_vs_unpipelined koms ~trip
               ~schedule_length:
                 (Hca_ddg.Graph_algo.critical_path ddg + 1)))
        [ 10; 100; 1000 ];

      (* Phase 4: register pressure, the cost factor the paper plans to
         fold into the HCA objective next. *)
      let rp =
        Regpress.analyse ~ddg ~cn_of_instr:res.Hierarchy.cn_of_instr
          ~copy_latency:1 schedule
      in
      Printf.printf
        "register pressure: max %d simultaneous live values on a CN, total \
         lifetime %d cycles\n"
        rp.Regpress.max_live rp.Regpress.total_lifetime
