(* Writing your own kernel with the Kbuild DSL: a complex multiply
   (a+bi)(c+di) over a vector, the inner loop of a radix-2 FFT stage —
   exactly the kind of streaming kernel DSPFabric targets.

   Run with:  dune exec examples/custom_kernel.exe *)

open Hca_ddg
open Hca_machine
open Hca_core

let complex_multiply () =
  let b = Hca_kernels.Kbuild.create "cmul" in
  let open Hca_kernels.Kbuild in
  (* Stream pointer: one new complex pair per iteration. *)
  let idx = induction b ~name:"idx" () in
  (* Twiddle factor, loop-invariant. *)
  let wr = const b ~name:"wr" 181 in
  let wi = const b ~name:"wi" 181 in
  (* Load the complex operand (packed re/im words). *)
  let addr_re = op b ~name:"a_re" Opcode.Agen [ idx ] in
  let addr_im = op b ~name:"a_im" Opcode.Agen [ idx ] in
  let re = load b ~name:"re" ~addr:addr_re in
  let im = load b ~name:"im" ~addr:addr_im in
  (* (re + im*i) * (wr + wi*i) *)
  let rr = op b Opcode.Mul [ re; wr ] in
  let ii_ = op b Opcode.Mul [ im; wi ] in
  let ri = op b Opcode.Mul [ re; wi ] in
  let ir = op b Opcode.Mul [ im; wr ] in
  let out_re = op b Opcode.Sub [ rr; ii_ ] in
  let out_im = op b Opcode.Add [ ri; ir ] in
  (* Scale back to 16 bits and store. *)
  let sre = op b Opcode.Shr [ out_re ] in
  let sim = op b Opcode.Shr [ out_im ] in
  let _ = store b ~name:"st_re" ~addr:addr_re sre in
  let _ = store b ~name:"st_im" ~addr:addr_im sim in
  freeze b

let () =
  let ddg = complex_multiply () in
  Printf.printf "kernel %s: %d instructions, %d memory ops\n" (Ddg.name ddg)
    (Ddg.size ddg) (Ddg.memory_ops ddg);
  Printf.printf "MIIRec=%d, critical path=%d cycles\n" (Mii.rec_mii ddg)
    (Graph_algo.critical_path ddg);

  (* Clusterise it on a small 16-CN fabric — a complex multiply does not
     need all 64 nodes. *)
  let fabric = Dspfabric.make ~fanouts:[| 4; 4 |] ~n:4 ~m:4 ~k:4 () in
  Printf.printf "machine: %s\n" (Dspfabric.name fabric);
  let report = Report.run fabric ddg in
  Format.printf "%a@." Report.pp report;

  (* Dump the clustered DDG as DOT for inspection:
     dot -Tpng cmul.dot -o cmul.png *)
  match report.Report.result with
  | None -> ()
  | Some res ->
      let cluster_of i =
        Some (Printf.sprintf "CN %d" res.Hierarchy.cn_of_instr.(i))
      in
      let dot = Ddg_io.to_dot ~cluster_of ddg in
      Out_channel.with_open_text "cmul.dot" (fun oc -> output_string oc dot);
      print_endline "wrote cmul.dot (clustered dataflow graph)"
