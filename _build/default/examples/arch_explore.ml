(* Architecture exploration: how do the MUX capacities N, M, K and the
   machine size trade off against the final MII?  This is the design
   question §5 of the paper raises ("lower bandwidths cause a rapid
   degradation of the clusterization quality") and explicitly leaves
   open ("the focus of this paper is neither to explore the
   architecture design space...").

   Run with:  dune exec examples/arch_explore.exe *)

open Hca_machine
open Hca_core

let kernels =
  [
    ("idcthor", Hca_kernels.Idcthor.ddg);
    ("mpeg2inter", Hca_kernels.Mpeg2inter.ddg);
  ]

let run fabric f =
  let r = Report.run fabric (f ()) in
  match (r.Report.legal, r.Report.final_mii) with
  | true, Some m -> string_of_int m
  | _ -> "-"

let () =
  (* Sweep 1: uniform bandwidth on the 64-CN machine. *)
  print_endline "final MII vs uniform MUX capacity (64 CNs):";
  let t =
    Hca_util.Tabular.create
      (("loop", Hca_util.Tabular.Left)
      :: List.map
           (fun w -> (Printf.sprintf "w=%d" w, Hca_util.Tabular.Right))
           [ 1; 2; 4; 8; 16 ])
  in
  List.iter
    (fun (name, f) ->
      Hca_util.Tabular.add_row t
        (name
        :: List.map
             (fun w -> run (Dspfabric.make ~n:w ~m:w ~k:w ()) f)
             [ 1; 2; 4; 8; 16 ]))
    kernels;
  Hca_util.Tabular.print t;

  (* Sweep 2: asymmetric budgets — is the leaf crossbar (K) or the top
     network (N) the scarcer resource? *)
  print_endline "\nfinal MII for asymmetric budgets (idcthor):";
  let t2 =
    Hca_util.Tabular.create
      [
        ("config", Hca_util.Tabular.Left); ("final MII", Hca_util.Tabular.Right);
      ]
  in
  List.iter
    (fun (label, n, m, k) ->
      Hca_util.Tabular.add_row t2
        [ label; run (Dspfabric.make ~n ~m ~k ()) Hca_kernels.Idcthor.ddg ])
    [
      ("N=8 M=8 K=8", 8, 8, 8);
      ("N=2 M=8 K=8", 2, 8, 8);
      ("N=8 M=2 K=8", 8, 2, 8);
      ("N=8 M=8 K=2", 8, 8, 2);
    ];
  Hca_util.Tabular.print t2;

  (* Sweep 3: machine size at fixed bandwidth — scalability of the
     hierarchy (16, 64 CNs). *)
  print_endline "\nfinal MII vs machine size (w=8):";
  let t3 =
    Hca_util.Tabular.create
      [
        ("loop", Hca_util.Tabular.Left); ("16 CNs", Hca_util.Tabular.Right);
        ("64 CNs", Hca_util.Tabular.Right);
      ]
  in
  List.iter
    (fun (name, f) ->
      Hca_util.Tabular.add_row t3
        [
          name;
          run (Dspfabric.make ~fanouts:[| 4; 4 |] ~n:8 ~m:8 ~k:8 ()) f;
          run (Dspfabric.make ~n:8 ~m:8 ~k:8 ()) f;
        ])
    kernels;
  Hca_util.Tabular.print t3
