(* Quickstart: clusterise one of the paper's kernels onto the reference
   DSPFabric machine and inspect the result.

   Run with:  dune exec examples/quickstart.exe *)

open Hca_machine
open Hca_core

let () =
  (* 1. Pick a kernel.  The four loops of Table 1 ship with the library;
     Hca_kernels.Kbuild lets you write your own (see custom_kernel.ml). *)
  let ddg = Hca_kernels.Fir2dim.ddg () in
  Printf.printf "kernel: %s (%d instructions)\n" (Hca_ddg.Ddg.name ddg)
    (Hca_ddg.Ddg.size ddg);

  (* 2. Pick a machine: the paper's best configuration is 64 computation
     nodes with MUX capacities N = M = K = 8. *)
  let fabric = Dspfabric.reference in
  Printf.printf "machine: %s\n" (Dspfabric.name fabric);

  (* 3. Run the whole HCA pipeline: II search, hierarchical assignment,
     wire mapping, coherency check. *)
  let report = Report.run fabric ddg in
  Format.printf "%a@." Report.pp report;

  (* 4. The assignment itself: every instruction now lives on a CN. *)
  match report.Report.result with
  | None -> print_endline "no legal clusterisation found"
  | Some res ->
      print_endline "placement (instruction -> computation node):";
      Array.iteri
        (fun i cn ->
          if i < 8 then
            Printf.printf "  %-8s -> CN %d\n"
              (Hca_ddg.Ddg.instr ddg i).Hca_ddg.Instr.name cn)
        res.Hierarchy.cn_of_instr;
      Printf.printf "  ... (%d more)\n" (Hca_ddg.Ddg.size ddg - 8);
      (* 5. And the headline number: the smallest initiation interval the
         clusterised loop can be modulo-scheduled at. *)
      Printf.printf "final MII: %d (theoretical optimum %d)\n"
        (Option.get report.Report.final_mii)
        (Hca_baseline.Unified.mii ddg fabric)
