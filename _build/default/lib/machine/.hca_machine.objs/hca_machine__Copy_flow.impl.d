lib/machine/copy_flow.ml: Array Format Hca_ddg Instr Int List Pattern_graph Printf Set String
