lib/machine/machine_model.ml: Array Format Hca_ddg Instr List Printf String
