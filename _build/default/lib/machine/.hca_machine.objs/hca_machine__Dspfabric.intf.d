lib/machine/dspfabric.mli: Format Hca_ddg Resource
