lib/machine/copy_flow.mli: Format Hca_ddg Instr Pattern_graph
