lib/machine/dspfabric.ml: Array Format Hca_ddg Printf Resource String
