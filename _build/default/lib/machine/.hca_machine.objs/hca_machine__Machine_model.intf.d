lib/machine/machine_model.mli: Format Hca_ddg Instr
