lib/machine/resource.ml: Ddg Format Hca_ddg Instr List Opcode
