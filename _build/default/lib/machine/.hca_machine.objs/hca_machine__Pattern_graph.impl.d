lib/machine/pattern_graph.ml: Array Format Hca_ddg Instr List Printf Resource
