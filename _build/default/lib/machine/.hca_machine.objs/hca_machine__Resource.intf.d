lib/machine/resource.mli: Ddg Format Hca_ddg Instr Opcode
