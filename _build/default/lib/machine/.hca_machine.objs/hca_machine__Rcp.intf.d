lib/machine/rcp.mli: Pattern_graph
