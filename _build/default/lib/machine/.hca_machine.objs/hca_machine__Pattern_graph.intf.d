lib/machine/pattern_graph.mli: Format Hca_ddg Instr Resource
