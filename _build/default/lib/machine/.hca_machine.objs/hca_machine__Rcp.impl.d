lib/machine/rcp.ml: Array List Pattern_graph Printf Resource
