open Hca_ddg

type t = {
  alus : int;
  ags : int;
}

let zero = { alus = 0; ags = 0 }

let cn = { alus = 1; ags = 1 }

let scale k r = { alus = k * r.alus; ags = k * r.ags }

let add a b = { alus = a.alus + b.alus; ags = a.ags + b.ags }

let of_unit_class = function
  | Opcode.Alu -> { alus = 1; ags = 0 }
  | Opcode.Ag -> { alus = 0; ags = 1 }

let demand g ids =
  List.fold_left
    (fun acc id ->
      add acc (of_unit_class (Opcode.unit_class (Ddg.instr g id).Instr.opcode)))
    zero ids

let issue_slots t = max t.alus t.ags

let fits ~demand ~capacity ~ii =
  demand.alus <= capacity.alus * ii
  && demand.ags <= capacity.ags * ii
  && demand.alus + demand.ags <= issue_slots capacity * ii

let headroom ~demand ~capacity ~ii =
  ((capacity.alus * ii) - demand.alus) + ((capacity.ags * ii) - demand.ags)

let ceil_div a b = (a + b - 1) / b

let min_ii ~demand ~capacity =
  let need amount cap =
    if amount = 0 then 1
    else if cap = 0 then max_int
    else ceil_div amount cap
  in
  max
    (need (demand.alus + demand.ags) (issue_slots capacity))
    (max (need demand.alus capacity.alus) (need demand.ags capacity.ags))

let equal a b = a.alus = b.alus && a.ags = b.ags

let pp ppf r = Format.fprintf ppf "{alu=%d; ag=%d}" r.alus r.ags
