(** Model of the Reconfigurable Co-Processor (RCP, §2.1).

    A flat (non-hierarchical) ring of clusters: each cluster can
    potentially receive values from its [span] nearest neighbours on
    each side (Fig. 1 shows 8 clusters with 4 potential sources each),
    but only [in_ports] input ports are available, so a feasible
    topology selects a subset of the potential connections.  RCP is
    heterogeneous: only some PEs issue memory instructions. *)

type t

val make :
  ?clusters:int ->
  ?span:int ->
  ?issue_width:int ->
  ?mem_clusters:int list ->
  in_ports:int ->
  unit ->
  t
(** Defaults: [clusters = 8], [span = 2] (i.e. 4 potential in-neighbours,
    offsets ±1 and ±2 on the ring), [issue_width = 1], and memory
    capability on the even clusters. *)

val default : t
(** 8 clusters, [in_ports = 2] — the configuration of Fig. 1 (b). *)

val name : t -> string

val clusters : t -> int

val in_ports : t -> int

val is_memory_cluster : t -> int -> bool

val potential_sources : t -> int -> int list
(** Ring neighbours a cluster may receive from. *)

val pattern_graph : t -> Pattern_graph.t
(** The PG fed to a single-level cluster assignment: potential arcs are
    the ring connections, [max_in] is [in_ports], and non-memory
    clusters have an empty AG entry in their resource table. *)
