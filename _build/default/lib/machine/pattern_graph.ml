open Hca_ddg

type node_id = int

type kind =
  | Regular
  | In_port of { wire : int; values : Instr.id list }
  | Out_port of { wire : int; values : Instr.id list }

type node = {
  id : node_id;
  kind : kind;
  capacity : Resource.t;
}

type t = {
  name : string;
  nodes : node array;
  potential : bool array array;
  max_in : int;
}

let check_capacities capacities =
  if Array.length capacities = 0 then
    invalid_arg "Pattern_graph: no cluster nodes"

let complete ~name ~capacities ~max_in =
  check_capacities capacities;
  if max_in <= 0 then invalid_arg "Pattern_graph.complete: max_in must be > 0";
  let n = Array.length capacities in
  let nodes =
    Array.mapi (fun id capacity -> { id; kind = Regular; capacity }) capacities
  in
  let potential =
    Array.init n (fun i -> Array.init n (fun j -> i <> j))
  in
  { name; nodes; potential; max_in }

let of_adjacency ~name ~capacities ~max_in ~potential =
  check_capacities capacities;
  if max_in <= 0 then
    invalid_arg "Pattern_graph.of_adjacency: max_in must be > 0";
  let n = Array.length capacities in
  let nodes =
    Array.mapi (fun id capacity -> { id; kind = Regular; capacity }) capacities
  in
  let adj = Array.init n (fun _ -> Array.make n false) in
  List.iter
    (fun (src, dst) ->
      if src < 0 || src >= n || dst < 0 || dst >= n || src = dst then
        invalid_arg "Pattern_graph.of_adjacency: bad potential arc";
      adj.(src).(dst) <- true)
    potential;
  { name; nodes; potential = adj; max_in }

let has_ports t =
  Array.exists (fun nd -> nd.kind <> Regular) t.nodes

let with_ports t ~inputs ~outputs =
  if has_ports t then
    invalid_arg "Pattern_graph.with_ports: graph already has ports";
  let n_reg = Array.length t.nodes in
  let n_in = List.length inputs in
  let n_out = List.length outputs in
  let n = n_reg + n_in + n_out in
  let nodes = Array.make n t.nodes.(0) in
  Array.blit t.nodes 0 nodes 0 n_reg;
  List.iteri
    (fun i (wire, values) ->
      let id = n_reg + i in
      nodes.(id) <- { id; kind = In_port { wire; values }; capacity = Resource.zero })
    inputs;
  List.iteri
    (fun i (wire, values) ->
      let id = n_reg + n_in + i in
      nodes.(id) <-
        { id; kind = Out_port { wire; values }; capacity = Resource.zero })
    outputs;
  let potential = Array.init n (fun _ -> Array.make n false) in
  for i = 0 to n_reg - 1 do
    for j = 0 to n_reg - 1 do
      potential.(i).(j) <- t.potential.(i).(j)
    done
  done;
  (* Input ports broadcast to every regular node; every regular node can
     reach every output port. *)
  for p = n_reg to n_reg + n_in - 1 do
    for j = 0 to n_reg - 1 do
      potential.(p).(j) <- true
    done
  done;
  for p = n_reg + n_in to n - 1 do
    for i = 0 to n_reg - 1 do
      potential.(i).(p) <- true
    done
  done;
  { t with nodes; potential }

let name t = t.name

let size t = Array.length t.nodes

let node t id =
  if id < 0 || id >= size t then invalid_arg "Pattern_graph.node: bad id";
  t.nodes.(id)

let nodes t = t.nodes

let filter_nodes t p = Array.to_list t.nodes |> List.filter p

let regular_nodes t = filter_nodes t (fun nd -> nd.kind = Regular)

let in_ports t =
  filter_nodes t (fun nd -> match nd.kind with In_port _ -> true | _ -> false)

let out_ports t =
  filter_nodes t (fun nd ->
      match nd.kind with Out_port _ -> true | _ -> false)

let max_in t = t.max_in

let is_potential t ~src ~dst =
  src >= 0 && src < size t && dst >= 0 && dst < size t && t.potential.(src).(dst)

let potential_preds t id =
  let acc = ref [] in
  for src = size t - 1 downto 0 do
    if t.potential.(src).(id) then acc := src :: !acc
  done;
  !acc

let potential_succs t id =
  let acc = ref [] in
  for dst = size t - 1 downto 0 do
    if t.potential.(id).(dst) then acc := dst :: !acc
  done;
  !acc

let is_regular t id = (node t id).kind = Regular

let port_values nd =
  match nd.kind with
  | Regular -> []
  | In_port { values; _ } | Out_port { values; _ } -> values

let total_capacity t =
  Array.fold_left (fun acc nd -> Resource.add acc nd.capacity) Resource.zero
    t.nodes

let pp ppf t =
  Format.fprintf ppf "@[<v>pg %s (%d nodes, max_in=%d)" t.name (size t) t.max_in;
  Array.iter
    (fun nd ->
      let kind =
        match nd.kind with
        | Regular -> "reg"
        | In_port { wire; _ } -> Printf.sprintf "in(w%d)" wire
        | Out_port { wire; _ } -> Printf.sprintf "out(w%d)" wire
      in
      Format.fprintf ppf "@,  #%d %s %a" nd.id kind Resource.pp nd.capacity)
    t.nodes;
  Format.fprintf ppf "@]"
