(** Pattern Graph (PG): the abstract, per-level view of the machine
    topology consumed by the Space Exploration Engine (§3).

    Each node embraces a set of computation nodes and carries their
    aggregated {!Resource.t}; an arc is a *potential* communication
    pattern.  Real patterns (arcs that carry at least one copy) are
    tracked separately by {!Copy_flow}, because the PG itself is
    immutable while the search mutates the flow.

    Beyond the regular cluster nodes, a PG for a nested subproblem is
    completed with *special nodes* (§4.1):

    - an {e input node} per wire entering from the father level, holding
      the list of values pumped in, with potential arcs towards every
      regular node (incoming values are broadcastable);
    - an {e output node} per wire leaving towards the father, holding
      the list of values owed, reachable from every regular node but
      accepting {b one} real in-arc only (the [outNode_MaxIn]
      constraint: MUX inputs have unary fan-in). *)

open Hca_ddg

type node_id = int

type kind =
  | Regular
  | In_port of { wire : int; values : Instr.id list }
      (** [wire] is the father-level wire index this port stands for. *)
  | Out_port of { wire : int; values : Instr.id list }

type node = {
  id : node_id;
  kind : kind;
  capacity : Resource.t;  (** zero for special nodes *)
}

type t

(** {1 Construction} *)

val complete : name:string -> capacities:Resource.t array -> max_in:int -> t
(** Fully connected cluster view (a DSPFabric level seen from above is a
    complete graph, Fig. 7).  [max_in] is the MUX capacity bounding the
    number of distinct real in-neighbours per node. *)

val of_adjacency :
  name:string ->
  capacities:Resource.t array ->
  max_in:int ->
  potential:(int * int) list ->
  t
(** Explicit potential-arc list [(src, dst)], for non-complete topologies
    such as the RCP ring. *)

val with_ports :
  t ->
  inputs:(int * Instr.id list) list ->
  outputs:(int * Instr.id list) list ->
  t
(** [with_ports pg ~inputs ~outputs] appends special nodes for the given
    [(wire, values)] lists.  Regular node ids are preserved.
    @raise Invalid_argument if [pg] already has ports. *)

(** {1 Accessors} *)

val name : t -> string

val size : t -> int
(** Total nodes, special ones included. *)

val node : t -> node_id -> node

val nodes : t -> node array

val regular_nodes : t -> node list

val in_ports : t -> node list

val out_ports : t -> node list

val max_in : t -> int

val is_potential : t -> src:node_id -> dst:node_id -> bool

val potential_preds : t -> node_id -> node_id list

val potential_succs : t -> node_id -> node_id list

val is_regular : t -> node_id -> bool

val port_values : node -> Instr.id list
(** Values held by a special node ([[]] for regular nodes). *)

val total_capacity : t -> Resource.t

val pp : Format.formatter -> t -> unit
