(** Resource table of a Pattern Graph node (§3: each PG node "is
    represented by its Resource Table").

    A PG node embraces a set of computation nodes; its table is the sum
    of the CN tables.  A DSPFabric CN exposes one ALU and one AG, so a
    level-0 node of the 64-CN instance has [alus = 16, ags = 16]. *)

open Hca_ddg

type t = {
  alus : int;
  ags : int;
}

val zero : t

val cn : t
(** One computation node: [{ alus = 1; ags = 1 }]. *)

val scale : int -> t -> t

val add : t -> t -> t

val of_unit_class : Opcode.unit_class -> t
(** The unit-resource demand of one instruction of that class. *)

val demand : Ddg.t -> Instr.id list -> t
(** Total per-iteration demand of a set of instructions. *)

val issue_slots : t -> int
(** Issue slots per cycle of a cluster with this table: CNs are
    single-issue machines exposing one ALU {e and} one AG, so a node of
    [q] CNs issues [q] operations per cycle — [max alus ags], which also
    covers the heterogeneous RCP clusters whose AG entry may be zero. *)

val fits : demand:t -> capacity:t -> ii:int -> bool
(** Modulo-scheduling feasibility: every FU class fits its capacity over
    the [ii]-cycle window {e and} the total operation count fits the
    issue slots ([issue_slots capacity * ii]). *)

val headroom : demand:t -> capacity:t -> ii:int -> int
(** Remaining ALU+AG issue slots under [ii]; negative when overfull. *)

val min_ii : demand:t -> capacity:t -> int
(** Smallest [ii] making [fits] true ([max_int] if capacity is zero in a
    demanded class). *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
