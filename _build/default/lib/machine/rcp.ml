type t = {
  clusters : int;
  span : int;
  issue_width : int;
  mem_clusters : int list;
  in_ports : int;
}

let make ?(clusters = 8) ?(span = 2) ?(issue_width = 1) ?mem_clusters
    ~in_ports () =
  if clusters < 3 then invalid_arg "Rcp.make: need at least 3 clusters";
  if span < 1 || 2 * span >= clusters then
    invalid_arg "Rcp.make: span out of range";
  if issue_width < 1 then invalid_arg "Rcp.make: issue_width must be >= 1";
  if in_ports < 1 then invalid_arg "Rcp.make: in_ports must be >= 1";
  let mem_clusters =
    match mem_clusters with
    | Some l ->
        List.iter
          (fun c ->
            if c < 0 || c >= clusters then
              invalid_arg "Rcp.make: bad memory cluster index")
          l;
        List.sort_uniq compare l
    | None -> List.init ((clusters + 1) / 2) (fun i -> 2 * i)
  in
  { clusters; span; issue_width; mem_clusters; in_ports }

let default = make ~in_ports:2 ()

let name t = Printf.sprintf "rcp-%d(ports=%d)" t.clusters t.in_ports

let clusters t = t.clusters

let in_ports t = t.in_ports

let is_memory_cluster t c = List.mem c t.mem_clusters

let potential_sources t c =
  let offsets =
    List.concat (List.init t.span (fun i -> [ -(i + 1); i + 1 ]))
  in
  List.map (fun o -> ((c + o) mod t.clusters + t.clusters) mod t.clusters)
    offsets
  |> List.sort_uniq compare

let pattern_graph t =
  let capacities =
    Array.init t.clusters (fun c ->
        {
          Resource.alus = t.issue_width;
          ags = (if is_memory_cluster t c then t.issue_width else 0);
        })
  in
  let potential =
    List.concat
      (List.init t.clusters (fun dst ->
           List.map (fun src -> (src, dst)) (potential_sources t dst)))
  in
  Pattern_graph.of_adjacency ~name:(name t) ~capacities ~max_in:t.in_ports
    ~potential
