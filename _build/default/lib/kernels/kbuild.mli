(** Small value-level DSL over {!Hca_ddg.Ddg.Builder} used to write the
    benchmark kernels: each combinator appends one instruction and wires
    its operand dependences, so a kernel reads like three-address code. *)

open Hca_ddg

type v = Instr.id
(** A value is identified by its producing instruction. *)

type t

val create : string -> t

val const : t -> ?name:string -> int -> v

val op : t -> ?name:string -> Opcode.t -> v list -> v
(** [op b opcode args]: new instruction depending on every [arg] with
    the producer's latency and distance 0. *)

val op_carried : t -> ?name:string -> Opcode.t -> (v * int) list -> v
(** Like {!op} but each argument carries its own loop distance. *)

val back_edge : ?distance:int -> t -> src:v -> dst:v -> unit
(** Add a loop-carried dependence closing a recurrence circuit
    ([distance] defaults to 1). *)

val induction : t -> ?name:string -> ?step_ops:int -> unit -> v
(** An induction variable: a chain of [step_ops] (default 1) unit-latency
    ALU operations closed by a distance-1 back edge, giving a recurrence
    of MII exactly [step_ops].  Returns the chain head (the value
    consumers should read). *)

val load : ?name:string -> t -> addr:v -> v

val store : t -> ?name:string -> addr:v -> v -> v

val reduce : t -> ?name:string -> Opcode.t -> v list -> v
(** Balanced binary reduction tree (e.g. the adder tree of a FIR);
    returns the root.  @raise Invalid_argument on an empty list. *)

val freeze : t -> Ddg.t
