open Hca_ddg

let ddg () =
  let b = Kbuild.create "fir2dim" in
  (* Window pointer with wrap-around: add column step, compare against
     the row end, select the wrapped base — a 3-op recurrence circuit. *)
  let col = Kbuild.induction b ~name:"col" ~step_ops:3 () in
  (* Output pointer: independent unit-step recurrence. *)
  let outp = Kbuild.induction b ~name:"outp" () in
  (* 3x3 coefficient window, held in registers. *)
  let coeff r c = Kbuild.const b ~name:(Printf.sprintf "c%d%d" r c) ((3 * r) + c) in
  let coeffs = List.init 3 (fun r -> List.init 3 (fun c -> coeff r c)) in
  (* Row base addresses: window pointer plus row stride. *)
  let row_base r =
    Kbuild.op b ~name:(Printf.sprintf "row%d" r) Opcode.Agen [ col ]
  in
  let bases = List.init 3 row_base in
  (* Per-row pixel addresses and loads: base+0, base+1, base+2. *)
  let pixel r base c =
    let addr =
      Kbuild.op b ~name:(Printf.sprintf "a%d%d" r c) Opcode.Agen [ base ]
    in
    Kbuild.load b ~name:(Printf.sprintf "x%d%d" r c) ~addr
  in
  let pixels =
    List.mapi (fun r base -> List.init 3 (fun c -> pixel r base c)) bases
  in
  (* Multiply-accumulate tree. *)
  let products =
    List.concat
      (List.map2
         (fun crow prow ->
           List.map2
             (fun cf px -> Kbuild.op b Opcode.Mul [ cf; px ])
             crow prow)
         coeffs pixels)
  in
  let sum = Kbuild.reduce b Opcode.Add products in
  (* Round, scale, saturate, store. *)
  let half = Kbuild.const b ~name:"half" 128 in
  let rounded = Kbuild.op b Opcode.Add [ sum; half ] in
  let scaled = Kbuild.op b Opcode.Shr [ rounded ] in
  let sat = Kbuild.op b ~name:"sat" Opcode.Clip [ scaled ] in
  let out_addr = Kbuild.op b ~name:"oaddr" Opcode.Agen [ outp ] in
  let _ = Kbuild.store b ~name:"st" ~addr:out_addr sat in
  Kbuild.freeze b
