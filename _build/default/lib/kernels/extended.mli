(** Kernels beyond Table 1: the other loop shapes the paper's
    introduction motivates (filtering, transforms, motion estimation,
    colour conversion).  They exercise corners the four paper loops do
    not — deep reductions, wide independent lanes, heavy recurrences —
    and feed the extended benches and property tests. *)

val fir1d : unit -> Hca_ddg.Ddg.t
(** 16-tap 1-D FIR (DSPStone fir): one long multiply-accumulate
    reduction — deep dataflow, minimal parallel width. *)

val matmul4 : unit -> Hca_ddg.Ddg.t
(** One result row of a 4x4 integer matrix multiply: four independent
    dot products over a shared operand row. *)

val fft_stage : unit -> Hca_ddg.Ddg.t
(** One radix-2 decimation-in-time stage over 8 complex points: four
    butterflies with twiddle multiplication — the classic reconfigurable
    array showcase. *)

val rgb2ycc : unit -> Hca_ddg.Ddg.t
(** RGB to YCbCr conversion of two pixels: nine multiplies per pixel,
    three clipped outputs — wide, shallow, store-heavy. *)

val sad16 : unit -> Hca_ddg.Ddg.t
(** Sum of absolute differences over a 16-pixel row with a loop-carried
    accumulator: the motion-estimation inner loop — a reduction feeding
    a recurrence. *)

val autocorr : unit -> Hca_ddg.Ddg.t
(** Autocorrelation lags 0..3 over a sliding window: four parallel MAC
    recurrences sharing one loaded sample — recurrence-dominated. *)

val all : (string * (unit -> Hca_ddg.Ddg.t)) list
(** Name-indexed, in the order above. *)
