lib/kernels/mpeg2inter.mli: Hca_ddg
