lib/kernels/h264deblock.ml: Hca_ddg Kbuild Opcode Printf
