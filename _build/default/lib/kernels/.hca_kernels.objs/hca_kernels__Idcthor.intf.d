lib/kernels/idcthor.mli: Hca_ddg
