lib/kernels/idcthor.ml: Hca_ddg Kbuild List Opcode Printf
