lib/kernels/synthetic.ml: Array Hca_ddg Hca_util Kbuild List Opcode Printf
