lib/kernels/kbuild.mli: Ddg Hca_ddg Instr Opcode
