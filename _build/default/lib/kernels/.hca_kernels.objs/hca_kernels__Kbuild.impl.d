lib/kernels/kbuild.ml: Ddg Hca_ddg Instr List Opcode
