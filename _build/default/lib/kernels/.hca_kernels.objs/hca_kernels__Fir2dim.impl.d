lib/kernels/fir2dim.ml: Hca_ddg Kbuild List Opcode Printf
