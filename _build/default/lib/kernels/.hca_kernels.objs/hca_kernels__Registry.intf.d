lib/kernels/registry.mli: Hca_ddg
