lib/kernels/synthetic.mli: Hca_ddg
