lib/kernels/fir2dim.mli: Hca_ddg
