lib/kernels/h264deblock.mli: Hca_ddg
