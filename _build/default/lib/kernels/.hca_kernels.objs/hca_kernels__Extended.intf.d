lib/kernels/extended.mli: Hca_ddg
