lib/kernels/registry.ml: Extended Fir2dim H264deblock Idcthor List Mpeg2inter
