lib/kernels/extended.ml: Hca_ddg Kbuild List Opcode Printf
