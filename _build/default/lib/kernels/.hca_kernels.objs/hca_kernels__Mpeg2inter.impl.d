lib/kernels/mpeg2inter.ml: Hca_ddg Kbuild Opcode Printf
