open Hca_ddg

let ddg () =
  let b = Kbuild.create "idcthor" in
  let row = Kbuild.induction b ~name:"row" () in
  (* Element addresses, shared by the loads and the in-place stores. *)
  let addrs =
    List.init 8 (fun i ->
        Kbuild.op b ~name:(Printf.sprintf "a%d" i) Opcode.Agen [ row ])
  in
  let xs =
    List.mapi
      (fun i addr -> Kbuild.load b ~name:(Printf.sprintf "x%d" i) ~addr)
      addrs
  in
  let x i = List.nth xs i in
  let c i = Kbuild.const b ~name:(Printf.sprintf "c%d" i) i in
  let c1 = c 1 and c2 = c 2 and c3 = c 3 and c4 = c 4 in
  let c5 = c 5 and c6 = c 6 and c7 = c 7 in
  let rnd = Kbuild.const b ~name:"rnd" 4 in
  let add a b' = Kbuild.op b Opcode.Add [ a; b' ] in
  let sub a b' = Kbuild.op b Opcode.Sub [ a; b' ] in
  let mul a b' = Kbuild.op b Opcode.Mul [ a; b' ] in
  (* Even part on x0, x2, x4, x6 (rounding folded into the DC term). *)
  let x0r = add (x 0) rnd in
  let e0 = add x0r (x 4) in
  let e1 = sub x0r (x 4) in
  let e2 = sub (mul (x 2) c2) (mul (x 6) c6) in
  let e3 = add (mul (x 2) c6) (mul (x 6) c2) in
  let s0 = add e0 e3 in
  let s3 = sub e0 e3 in
  let s1 = add e1 e2 in
  let s2 = sub e1 e2 in
  (* Odd part on x1, x3, x5, x7 with the sqrt2 rotation. *)
  let o0 = add (mul (x 1) c1) (mul (x 7) c7) in
  let o1 = add (mul (x 5) c5) (mul (x 3) c3) in
  let o2 = sub (mul (x 1) c7) (mul (x 7) c1) in
  let o3 = sub (mul (x 5) c3) (mul (x 3) c5) in
  let z0 = add o0 o1 in
  let z3 = sub o0 o1 in
  let z1 = add o2 o3 in
  let z2 = sub o2 o3 in
  let rot = mul (add z1 z2) c4 in
  let z1' = sub rot z2 in
  let z2' = sub rot z1 in
  (* Butterfly outputs, scaled back. *)
  let shr v = Kbuild.op b Opcode.Shr [ v ] in
  let y0 = shr (add s0 z0) in
  let y7 = shr (sub s0 z0) in
  let y1 = shr (add s1 z1') in
  let y6 = shr (sub s1 z1') in
  let y2 = shr (add s2 z2') in
  let y5 = shr (sub s2 z2') in
  let y3 = shr (add s3 z3) in
  let y4 = shr (sub s3 z3) in
  let ys = [ y0; y1; y2; y3; y4; y5; y6; y7 ] in
  List.iteri
    (fun i y ->
      ignore
        (Kbuild.store b ~name:(Printf.sprintf "st%d" i)
           ~addr:(List.nth addrs i) y))
    ys;
  Kbuild.freeze b
