open Hca_ddg

let fir1d () =
  let b = Kbuild.create "fir1d" in
  let idx = Kbuild.induction b ~name:"idx" () in
  let taps = List.init 16 (fun i -> Kbuild.const b ~name:(Printf.sprintf "h%d" i) i) in
  let samples =
    List.init 16 (fun i ->
        let addr = Kbuild.op b ~name:(Printf.sprintf "a%d" i) Opcode.Agen [ idx ] in
        Kbuild.load b ~name:(Printf.sprintf "x%d" i) ~addr)
  in
  let products =
    List.map2 (fun h x -> Kbuild.op b Opcode.Mul [ h; x ]) taps samples
  in
  let acc = Kbuild.reduce b Opcode.Add products in
  let scaled = Kbuild.op b Opcode.Shr [ acc ] in
  let sat = Kbuild.op b Opcode.Clip [ scaled ] in
  let out = Kbuild.op b ~name:"oaddr" Opcode.Agen [ idx ] in
  let _ = Kbuild.store b ~name:"st" ~addr:out sat in
  Kbuild.freeze b

let matmul4 () =
  let b = Kbuild.create "matmul4" in
  let row = Kbuild.induction b ~name:"row" () in
  (* The current row of A, loaded once. *)
  let a =
    List.init 4 (fun i ->
        let addr = Kbuild.op b ~name:(Printf.sprintf "aa%d" i) Opcode.Agen [ row ] in
        Kbuild.load b ~name:(Printf.sprintf "a%d" i) ~addr)
  in
  (* B is loop-invariant: registers. *)
  let bmat =
    List.init 4 (fun j ->
        List.init 4 (fun i -> Kbuild.const b ~name:(Printf.sprintf "b%d%d" i j) (i + j)))
  in
  List.iteri
    (fun j bcol ->
      let products = List.map2 (fun x y -> Kbuild.op b Opcode.Mul [ x; y ]) a bcol in
      let dot = Kbuild.reduce b Opcode.Add products in
      let sat = Kbuild.op b Opcode.Clip [ dot ] in
      let addr = Kbuild.op b ~name:(Printf.sprintf "oc%d" j) Opcode.Agen [ row ] in
      ignore (Kbuild.store b ~name:(Printf.sprintf "st%d" j) ~addr sat))
    bmat;
  Kbuild.freeze b

let fft_stage () =
  let b = Kbuild.create "fft_stage" in
  let idx = Kbuild.induction b ~name:"idx" () in
  let wr = Kbuild.const b ~name:"wr" 181 in
  let wi = Kbuild.const b ~name:"wi" 181 in
  let butterfly k =
    let name fmt = Printf.sprintf fmt k in
    let load tag =
      let addr = Kbuild.op b ~name:(Printf.sprintf "%s_a%d" tag k) Opcode.Agen [ idx ] in
      (addr, Kbuild.load b ~name:(Printf.sprintf "%s%d" tag k) ~addr)
    in
    let a_ur, ur = load "ur" in
    let a_ui, ui = load "ui" in
    let a_vr, vr = load "vr" in
    let a_vi, vi = load "vi" in
    (* t = w * v (complex) *)
    let tr =
      Kbuild.op b ~name:(name "tr%d") Opcode.Sub
        [ Kbuild.op b Opcode.Mul [ vr; wr ]; Kbuild.op b Opcode.Mul [ vi; wi ] ]
    in
    let ti =
      Kbuild.op b ~name:(name "ti%d") Opcode.Add
        [ Kbuild.op b Opcode.Mul [ vr; wi ]; Kbuild.op b Opcode.Mul [ vi; wr ] ]
    in
    (* u' = u + t, v' = u - t *)
    let st addr v = ignore (Kbuild.store b ~addr v) in
    st a_ur (Kbuild.op b Opcode.Shr [ Kbuild.op b Opcode.Add [ ur; tr ] ]);
    st a_ui (Kbuild.op b Opcode.Shr [ Kbuild.op b Opcode.Add [ ui; ti ] ]);
    st a_vr (Kbuild.op b Opcode.Shr [ Kbuild.op b Opcode.Sub [ ur; tr ] ]);
    st a_vi (Kbuild.op b Opcode.Shr [ Kbuild.op b Opcode.Sub [ ui; ti ] ])
  in
  for k = 0 to 3 do
    butterfly k
  done;
  Kbuild.freeze b

let rgb2ycc () =
  let b = Kbuild.create "rgb2ycc" in
  let idx = Kbuild.induction b ~name:"idx" () in
  let coeffs = List.init 9 (fun i -> Kbuild.const b ~name:(Printf.sprintf "c%d" i) i) in
  let half = Kbuild.const b ~name:"half" 128 in
  let pixel p =
    let load tag =
      let addr =
        Kbuild.op b ~name:(Printf.sprintf "%s_a%d" tag p) Opcode.Agen [ idx ]
      in
      Kbuild.load b ~name:(Printf.sprintf "%s%d" tag p) ~addr
    in
    let r = load "r" and g = load "g" and bl = load "b" in
    List.iteri
      (fun plane cs ->
        match cs with
        | [ cr; cg; cb ] ->
            let v =
              Kbuild.reduce b Opcode.Add
                [
                  Kbuild.op b Opcode.Mul [ r; cr ];
                  Kbuild.op b Opcode.Mul [ g; cg ];
                  Kbuild.op b Opcode.Mul [ bl; cb ];
                ]
            in
            let v = Kbuild.op b Opcode.Add [ v; half ] in
            let v = Kbuild.op b Opcode.Shr [ v ] in
            let v = Kbuild.op b Opcode.Clip [ v ] in
            let addr =
              Kbuild.op b
                ~name:(Printf.sprintf "o%d_%d" plane p)
                Opcode.Agen [ idx ]
            in
            ignore (Kbuild.store b ~addr v)
        | _ -> assert false)
      [
        [ List.nth coeffs 0; List.nth coeffs 1; List.nth coeffs 2 ];
        [ List.nth coeffs 3; List.nth coeffs 4; List.nth coeffs 5 ];
        [ List.nth coeffs 6; List.nth coeffs 7; List.nth coeffs 8 ];
      ]
  in
  pixel 0;
  pixel 1;
  Kbuild.freeze b

let sad16 () =
  let b = Kbuild.create "sad16" in
  let idx = Kbuild.induction b ~name:"idx" () in
  let diffs =
    List.init 16 (fun i ->
        let aa = Kbuild.op b ~name:(Printf.sprintf "ca%d" i) Opcode.Agen [ idx ] in
        let ab = Kbuild.op b ~name:(Printf.sprintf "cb%d" i) Opcode.Agen [ idx ] in
        let xa = Kbuild.load b ~name:(Printf.sprintf "xa%d" i) ~addr:aa in
        let xb = Kbuild.load b ~name:(Printf.sprintf "xb%d" i) ~addr:ab in
        Kbuild.op b Opcode.Abs [ Kbuild.op b Opcode.Sub [ xa; xb ] ])
  in
  let row_sum = Kbuild.reduce b Opcode.Add diffs in
  (* Running SAD across iterations: accumulator recurrence. *)
  let acc = Kbuild.op b ~name:"acc" Opcode.Add [ row_sum ] in
  Kbuild.back_edge b ~src:acc ~dst:acc;
  let best = Kbuild.op_carried b ~name:"best" Opcode.Min [ (acc, 0); (acc, 1) ] in
  let oaddr = Kbuild.op b ~name:"oaddr" Opcode.Agen [ idx ] in
  let _ = Kbuild.store b ~name:"st" ~addr:oaddr best in
  Kbuild.freeze b

let autocorr () =
  let b = Kbuild.create "autocorr" in
  let idx = Kbuild.induction b ~name:"idx" () in
  let addr = Kbuild.op b ~name:"sa" Opcode.Agen [ idx ] in
  let sample = Kbuild.load b ~name:"x" ~addr in
  (* r[k] += x[n] * x[n-k]: the lagged sample is the same load consumed
     k iterations later; each lag keeps its own MAC accumulator. *)
  for lag = 0 to 3 do
    let lagged =
      Kbuild.op_carried b
        ~name:(Printf.sprintf "prod%d" lag)
        Opcode.Mul
        [ (sample, 0); (sample, lag) ]
    in
    let acc =
      Kbuild.op b ~name:(Printf.sprintf "r%d" lag) Opcode.Add [ lagged ]
    in
    Kbuild.back_edge b ~src:acc ~dst:acc;
    let oaddr =
      Kbuild.op b ~name:(Printf.sprintf "ra%d" lag) Opcode.Agen [ idx ]
    in
    ignore (Kbuild.store b ~name:(Printf.sprintf "st%d" lag) ~addr:oaddr acc)
  done;
  Kbuild.freeze b

let all =
  [
    ("fir1d", fir1d);
    ("matmul4", matmul4);
    ("fft_stage", fft_stage);
    ("rgb2ycc", rgb2ycc);
    ("sad16", sad16);
    ("autocorr", autocorr);
  ]
