(** fir2dim: the 2-dimensional FIR filter loop of the DSPStone suite —
    first row of Table 1 (57 instructions, MIIRec 3, MIIRes 2).

    One iteration convolves a 3x3 coefficient window around the current
    pixel and writes one filtered output.  The recurrence of the loop is
    the window-pointer update with wrap-around handling (three dependent
    ALU operations, distance 1), which gives MIIRec = 3; ten DMA
    operations (nine window loads, one store) against eight DMA ports
    give MIIRes = 2 on the 64-CN machine. *)

val ddg : unit -> Hca_ddg.Ddg.t
