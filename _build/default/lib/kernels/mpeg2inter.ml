open Hca_ddg

let ddg () =
  let b = Kbuild.create "mpeg2inter" in
  let row = Kbuild.induction b ~name:"row" () in
  let outp = Kbuild.induction b ~name:"outp" () in
  let one = Kbuild.const b ~name:"one" 1 in
  let zero = Kbuild.const b ~name:"zero" 0 in
  let cm = Kbuild.const b ~name:"cm" 3 in
  let cb = Kbuild.const b ~name:"cb" 2 in
  (* Rounding-control recurrence: accumulate the running error, weight
     it, saturate, apply the bias correction, and feed the drift back —
     a distance-1 circuit of latency 1+2+1+1+1 = 6. *)
  let acc = Kbuild.op b ~name:"acc" Opcode.Add [ one ] in
  let weighted = Kbuild.op b Opcode.Mul [ acc; cm ] in
  let saturated = Kbuild.op b Opcode.Clip [ weighted ] in
  let biased = Kbuild.op b Opcode.Add [ saturated; cb ] in
  let drift = Kbuild.op b ~name:"drift" Opcode.Sub [ biased; acc ] in
  Kbuild.back_edge b ~src:drift ~dst:acc;
  (* Rounding bit for even pixels, complemented for odd ones. *)
  let magnitude = Kbuild.op b Opcode.Abs [ saturated ] in
  let flag = Kbuild.op b Opcode.Cmp [ magnitude; zero ] in
  let round = Kbuild.op b ~name:"round" Opcode.Sel [ flag; one; zero ] in
  let round' = Kbuild.op b ~name:"round'" Opcode.Xor [ round; one ] in
  (* Eight pixels: current row loaded, previous row loop-carried from
     the same loads at distance 1. *)
  for i = 0 to 7 do
    let addr = Kbuild.op b ~name:(Printf.sprintf "a%d" i) Opcode.Agen [ row ] in
    let cur = Kbuild.load b ~name:(Printf.sprintf "x%d" i) ~addr in
    let sum = Kbuild.op_carried b Opcode.Add [ (cur, 0); (cur, 1) ] in
    let r = if i mod 2 = 0 then round else round' in
    let rounded = Kbuild.op b Opcode.Add [ sum; r ] in
    let halved = Kbuild.op b Opcode.Shr [ rounded ] in
    let sat = Kbuild.op b Opcode.Clip [ halved ] in
    let oaddr =
      Kbuild.op b ~name:(Printf.sprintf "o%d" i) Opcode.Agen [ outp ]
    in
    ignore (Kbuild.store b ~name:(Printf.sprintf "st%d" i) ~addr:oaddr sat)
  done;
  Kbuild.freeze b
