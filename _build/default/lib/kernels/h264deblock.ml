open Hca_ddg

(* Row deblocking of eight 4-pixel block edges.  Pixels cross the edge
   as packed words (one load carries p1:p0, one carries q0:q1), so each
   column costs four DMA operations — 32 in total, which against the
   eight DMA ports yields the MIIRes = 4 of Table 1.  Seven columns run
   the short (chroma-style) filter; one runs the full luma check with
   the beta side-conditions. *)
let ddg () =
  let b = Kbuild.create "h264deblocking" in
  (* Boundary-strength pointer: advance, fetch-select, wrap — a 3-op
     distance-1 recurrence. *)
  let bs = Kbuild.induction b ~name:"bs" ~step_ops:3 () in
  let col = Kbuild.induction b ~name:"col" () in
  let alpha = Kbuild.const b ~name:"alpha" 40 in
  let beta = Kbuild.const b ~name:"beta" 10 in
  let tc = Kbuild.const b ~name:"tc" 4 in
  let four = Kbuild.const b ~name:"four" 4 in
  let zero = Kbuild.const b ~name:"zero" 0 in
  let mask = Kbuild.const b ~name:"mask" 255 in
  let add x y = Kbuild.op b Opcode.Add [ x; y ] in
  let sub x y = Kbuild.op b Opcode.Sub [ x; y ] in
  let abs x = Kbuild.op b Opcode.Abs [ x ] in
  let cmp x y = Kbuild.op b Opcode.Cmp [ x; y ] in
  let and_ x y = Kbuild.op b Opcode.And_ [ x; y ] in
  let shl x = Kbuild.op b Opcode.Shl [ x ] in
  let shr x = Kbuild.op b Opcode.Shr [ x ] in
  let sel c x y = Kbuild.op b Opcode.Sel [ c; x; y ] in
  let clip x = Kbuild.op b Opcode.Clip [ x ] in
  let min_ x y = Kbuild.op b Opcode.Min [ x; y ] in
  let max_ x y = Kbuild.op b Opcode.Max [ x; y ] in
  (* Loop-invariant pieces: the lower clamp bound and the
     boundary-strength gate. *)
  let neg_tc = Kbuild.op b ~name:"neg_tc" Opcode.Sub [ zero; tc ] in
  let strength = Kbuild.op b ~name:"strength" Opcode.Cmp [ bs; zero ] in
  let column ~luma e =
    let name fmt = Printf.sprintf fmt e in
    let a_p =
      Kbuild.op b ~name:(name "ap%d") Opcode.Agen [ col; bs ]
    in
    let a_q =
      Kbuild.op b ~name:(name "aq%d") Opcode.Agen [ col; bs ]
    in
    let pw = Kbuild.load b ~name:(name "pw%d") ~addr:a_p in
    let qw = Kbuild.load b ~name:(name "qw%d") ~addr:a_q in
    let p0 = and_ pw mask in
    let q0 = and_ qw mask in
    (* Filtering condition: |p0 - q0| < alpha, gated by the strength. *)
    let c0 = cmp (abs (sub p0 q0)) alpha in
    let gate = and_ c0 strength in
    let gate =
      if not luma then gate
      else begin
        (* Full luma check adds |p1-p0| < beta and |q1-q0| < beta on the
           high halves of the packed words. *)
        let p1 = shr pw in
        let q1 = shr qw in
        let c1 = cmp (abs (sub p1 p0)) beta in
        let c2 = cmp (abs (sub q1 q0)) beta in
        and_ gate (and_ c1 c2)
      end
    in
    (* delta = clip3(-tc, tc, ((p0-q0) << 2 + 4) >> 3). *)
    let raw = shr (add (shl (sub p0 q0)) four) in
    let delta = max_ (min_ raw tc) neg_tc in
    let p0' = sel gate (clip (sub p0 delta)) p0 in
    let q0' = sel gate (clip (add q0 delta)) q0 in
    ignore (Kbuild.store b ~name:(name "sp%d") ~addr:a_p p0');
    ignore (Kbuild.store b ~name:(name "sq%d") ~addr:a_q q0')
  in
  for e = 0 to 7 do
    column ~luma:(e < 1) e
  done;
  Kbuild.freeze b
