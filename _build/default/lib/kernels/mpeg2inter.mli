(** mpeg2inter: the half-pel interpolation filter of the MPEG-2
    decoder's motion compensation — third row of Table 1
    (79 instructions, MIIRec 6, MIIRes 2).

    One iteration averages the current 8-pixel row with the previous one
    (the previous row is loop-carried, not reloaded) and writes the
    interpolated row.  The rounding-control recurrence — accumulate,
    weight, saturate, correct — is a 6-cycle circuit at distance 1,
    giving MIIRec = 6; sixteen DMA operations give MIIRes = 2. *)

val ddg : unit -> Hca_ddg.Ddg.t
