open Hca_ddg

type params = {
  size : int;
  layers : int;
  mem_ratio : float;
  recurrences : int;
  recurrence_latency : int;
  seed : int;
}

let default =
  {
    size = 64;
    layers = 6;
    mem_ratio = 0.15;
    recurrences = 1;
    recurrence_latency = 2;
    seed = 42;
  }

let alu_ops =
  [|
    Opcode.Add; Opcode.Sub; Opcode.Mul; Opcode.Shl; Opcode.Shr; Opcode.And_;
    Opcode.Or_; Opcode.Xor; Opcode.Min; Opcode.Max;
  |]

let generate p =
  if p.size < 2 then invalid_arg "Synthetic.generate: size must be >= 2";
  if p.layers < 1 then invalid_arg "Synthetic.generate: layers must be >= 1";
  if p.mem_ratio < 0.0 || p.mem_ratio > 0.5 then
    invalid_arg "Synthetic.generate: mem_ratio out of [0, 0.5]";
  if p.recurrences < 0 || p.recurrence_latency < 1 then
    invalid_arg "Synthetic.generate: bad recurrence parameters";
  let rng = Hca_util.Prng.create p.seed in
  let b = Kbuild.create (Printf.sprintf "synthetic-%d-%d" p.size p.seed) in
  let rec_ops = p.recurrences * p.recurrence_latency in
  if rec_ops >= p.size then
    invalid_arg "Synthetic.generate: recurrences exceed the size budget";
  let carried =
    List.init p.recurrences (fun i ->
        Kbuild.induction b
          ~name:(Printf.sprintf "ind%d" i)
          ~step_ops:p.recurrence_latency ())
  in
  let budget = p.size - rec_ops in
  let mem_budget = int_of_float (p.mem_ratio *. float_of_int budget) in
  (* Layer sizes: split the remaining budget as evenly as possible. *)
  let per_layer = Array.make p.layers (budget / p.layers) in
  for i = 0 to (budget mod p.layers) - 1 do
    per_layer.(i) <- per_layer.(i) + 1
  done;
  let previous = ref (Array.of_list carried) in
  let all_mem = ref 0 in
  for layer = 0 to p.layers - 1 do
    let this = ref [] in
    for _ = 1 to per_layer.(layer) do
      let pick_dep () =
        if Array.length !previous = 0 then None
        else Some (Hca_util.Prng.pick rng !previous)
      in
      let v =
        if layer = 0 && Array.length !previous = 0 then
          Kbuild.const b (Hca_util.Prng.int rng 256)
        else if !all_mem < mem_budget && Hca_util.Prng.float rng 1.0 < 0.5 then begin
          incr all_mem;
          match pick_dep () with
          | Some addr ->
              if Hca_util.Prng.bool rng then Kbuild.load b ~addr
              else Kbuild.store b ~addr addr
          | None -> Kbuild.const b 0
        end
        else
          match (pick_dep (), pick_dep ()) with
          | Some a, Some c ->
              Kbuild.op b (Hca_util.Prng.pick rng alu_ops) [ a; c ]
          | Some a, None | None, Some a ->
              Kbuild.op b (Hca_util.Prng.pick rng alu_ops) [ a ]
          | None, None -> Kbuild.const b (Hca_util.Prng.int rng 256)
      in
      this := v :: !this
    done;
    if !this <> [] then previous := Array.of_list !this
  done;
  Kbuild.freeze b
