(** h264deblocking: the row (horizontal-edge) deblocking filter of the
    H.264 decoder — last row of Table 1 (214 instructions, MIIRec 3,
    MIIRes 4).

    One iteration filters the four pixel columns of one 4-pixel block
    edge: for each column it loads the boundary pixels p1 p0 q0 q1,
    evaluates the filtering condition against alpha/beta, computes the
    clipped delta, conditionally updates all four pixels and stores them
    back.  The boundary-strength pointer update is a 3-op recurrence
    (MIIRec = 3); thirty-two DMA operations give MIIRes = 4. *)

val ddg : unit -> Hca_ddg.Ddg.t
