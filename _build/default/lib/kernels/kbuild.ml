open Hca_ddg

type v = Instr.id

type t = Ddg.Builder.t

let create name = Ddg.Builder.create ~name ()

let const b ?name k = Ddg.Builder.add_instr b ?name (Opcode.Const k)

let op b ?name opcode args =
  let id = Ddg.Builder.add_instr b ?name opcode in
  List.iter (fun src -> Ddg.Builder.add_dep b ~src ~dst:id) args;
  id

let op_carried b ?name opcode args =
  let id = Ddg.Builder.add_instr b ?name opcode in
  List.iter
    (fun (src, distance) -> Ddg.Builder.add_dep b ~distance ~src ~dst:id)
    args;
  id

let back_edge ?(distance = 1) b ~src ~dst =
  Ddg.Builder.add_dep b ~distance ~src ~dst

let induction b ?name ?(step_ops = 1) () =
  if step_ops < 1 then invalid_arg "Kbuild.induction: step_ops must be >= 1";
  let head = Ddg.Builder.add_instr b ?name Opcode.Add in
  let rec extend prev k =
    if k = 0 then prev
    else
      let next = op b Opcode.Add [ prev ] in
      extend next (k - 1)
  in
  let tail = extend head (step_ops - 1) in
  back_edge b ~src:tail ~dst:head;
  head

let load ?name b ~addr = op b ?name Opcode.Load [ addr ]

let store b ?name ~addr value = op b ?name Opcode.Store [ addr; value ]

let reduce b ?name opcode values =
  let rec round = function
    | [] -> invalid_arg "Kbuild.reduce: empty list"
    | [ v ] -> v
    | vs ->
        let rec pair = function
          | a :: c :: rest -> op b opcode [ a; c ] :: pair rest
          | [ a ] -> [ a ]
          | [] -> []
        in
        round (pair vs)
  in
  let root = round values in
  match name with
  | None -> root
  | Some n -> op b ~name:n Opcode.Mov [ root ]

let freeze b = Ddg.Builder.freeze b
