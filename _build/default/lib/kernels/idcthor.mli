(** idcthor: the horizontal (row) pass of the 8-point Inverse Discrete
    Cosine Transform, as in the OpenDivx decoder — second row of Table 1
    (82 instructions, MIIRec 1, MIIRes 2).

    One iteration transforms one row of eight coefficients in place with
    the even/odd (LLM-style) decomposition.  The only recurrence is the
    unit-step row pointer, so MIIRec = 1; sixteen DMA operations (eight
    loads, eight in-place stores) give MIIRes = 2. *)

val ddg : unit -> Hca_ddg.Ddg.t
