(** Seeded synthetic-kernel generator, used by the property tests, the
    scaling benches and the architecture-exploration example.

    The generator produces layered DAGs shaped like media kernels:
    mostly independent arithmetic with a configurable memory-operation
    share, a few loop-carried recurrence circuits of bounded latency,
    and fan-in limited to two (three-address code). *)

type params = {
  size : int;  (** instruction count (recurrence ops included) *)
  layers : int;  (** dataflow depth; more layers = less ILP *)
  mem_ratio : float;  (** share of DMA operations, in [0, 0.5] *)
  recurrences : int;  (** number of distance-1 circuits *)
  recurrence_latency : int;  (** latency of each circuit: the MIIRec target *)
  seed : int;
}

val default : params
(** 64 instructions, 6 layers, 15% memory, one latency-2 recurrence. *)

val generate : params -> Hca_ddg.Ddg.t
(** Deterministic in [params] (including the seed).
    @raise Invalid_argument on nonsense parameters. *)
