(** Operation set of the loop-kernel IR.

    The DSPFabric computation nodes (CNs) of the paper are single-issue
    machines exposing an ALU and an Address Generator (AG) towards the
    programmable DMA.  Every opcode therefore consumes either the ALU or
    the AG of the cluster it is assigned to; memory operations
    additionally consume one of the globally shared DMA request ports. *)

type t =
  | Add
  | Sub
  | Mul
  | Mac  (** multiply-accumulate, the FIR/IDCT workhorse *)
  | Shl
  | Shr
  | And_
  | Or_
  | Xor
  | Min
  | Max
  | Abs
  | Clip  (** saturation, used by deblocking and interpolation *)
  | Cmp
  | Sel  (** predicated select, the if-conversion primitive *)
  | Mov
  | Const of int
  | Load  (** DMA read request; result arrives in the register file *)
  | Store  (** DMA write request *)
  | Agen  (** explicit address computation on the AG *)
  | Recv  (** inter-cluster receive primitive, inserted after HCA *)

(** Functional-unit class consumed on the owning cluster. *)
type unit_class = Alu | Ag

val unit_class : t -> unit_class
(** [Load]/[Store]/[Agen] execute on the AG; everything else (including
    [Recv], which occupies an issue slot of the receiving CN) on the ALU. *)

val is_memory : t -> bool
(** True for the opcodes that consume a DMA request port. *)

val latency : t -> int
(** Producer latency in cycles: number of cycles before a consumer on the
    same cluster may issue.  Memory operations report the DMA round-trip
    used by the model. *)

val mnemonic : t -> string

val of_mnemonic : string -> t option
(** Inverse of {!mnemonic}; [Const] parses from ["const:<k>"]. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

val all : t list
(** One representative of every constructor (with [Const 0]). *)
