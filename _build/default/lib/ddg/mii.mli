(** Minimum Initiation Interval bounds for modulo scheduling (Rau 1994),
    as used by the paper's objective function (§4.2).

    [MII = max (MIIRec, MIIRes)].  HCA evaluates these both globally
    (level 0, the whole machine) and per cluster with an extra
    copy-pressure term (see {!Hca_core.Cost}). *)

val rec_mii : Ddg.t -> int
(** Recurrence-constrained bound:
    [max over circuits C of ceil (latency(C) / distance(C))],
    computed per non-trivial SCC by binary search on the II with a
    Bellman–Ford positive-circuit test on weights
    [latency - II * distance].  Returns [1] for a recurrence-free graph
    (one iteration can start every cycle as far as data flow goes). *)

val rec_mii_of_scc : Ddg.t -> Instr.id list -> int
(** The same bound restricted to one strongly connected component. *)

type resources = {
  alu_slots : int;  (** ALUs usable per cycle (one per CN) *)
  ag_slots : int;  (** address generators usable per cycle *)
  issue_slots : int;  (** total instruction issues per cycle: CN count *)
  dma_ports : int;  (** simultaneous outstanding DMA requests (paper: 8) *)
}

val res_mii : Ddg.t -> resources -> int
(** Resource-constrained bound: for each resource, uses per iteration
    divided by per-cycle capacity, rounded up; the bound is the max. *)

val mii : Ddg.t -> resources -> int
(** [max (rec_mii g) (res_mii g r)]. *)

val achievable : Ddg.t -> ii:int -> bool
(** True iff no recurrence circuit forbids initiation interval [ii],
    i.e. [ii >= rec_mii g].  Exposed for property tests. *)
