(** Graph algorithms over a {!Ddg.t}.

    All functions treat the [distance = 0] subgraph as the acyclic
    intra-iteration structure (guaranteed by {!Ddg.Builder.freeze});
    loop-carried edges are only considered where stated. *)

val topological_order : Ddg.t -> Instr.id array
(** Order of the intra-iteration DAG: every [distance = 0] edge goes
    from an earlier to a later position. Deterministic (Kahn with a
    smallest-id tie-break). *)

val depth : Ddg.t -> int array
(** [depth.(i)]: longest latency-weighted path from any source to [i]
    over intra-iteration edges, i.e. the earliest issue cycle of [i] on
    an unbounded machine (ASAP). *)

val height : Ddg.t -> int array
(** Longest latency-weighted path from [i] to any sink (intra-iteration
    edges): the classic criticality measure. *)

val critical_path : Ddg.t -> int
(** Length in cycles of the longest intra-iteration path, i.e. the
    schedule length of one iteration on an unbounded machine. *)

val slack : Ddg.t -> int array
(** [slack.(i) = critical_path - depth.(i) - height.(i)]; zero for nodes
    on a critical path. *)

val sccs : Ddg.t -> Instr.id list array
(** Strongly connected components of the full graph (all distances),
    Tarjan's algorithm, in reverse topological order of the condensation.
    Components of size one without a self-loop are trivial. *)

val nontrivial_sccs : Ddg.t -> Instr.id list array
(** Only the components that contain a circuit (size > 1, or a
    loop-carried self-edge): the recurrences of the loop. *)

val reachable : Ddg.t -> Instr.id -> bool array
(** Forward reachability over all edges. *)

val undirected_components : Ddg.t -> Instr.id list array
(** Weakly connected components (over all edges, directions ignored). *)
