(** A single IR instruction: a node of the data dependency graph.

    Instruction ids are dense indices assigned by {!Ddg.Builder}; the id
    of an instruction is also its position in the frozen graph's node
    array. *)

type id = int

type t = {
  id : id;
  opcode : Opcode.t;
  name : string;  (** human label, e.g. ["acc0"]; never used for identity *)
}

val make : id:id -> ?name:string -> Opcode.t -> t
(** Defaults [name] to ["%<id>"]. *)

val equal : t -> t -> bool
(** Identity equality (by [id]). *)

val pp : Format.formatter -> t -> unit
(** Prints as [%id:name=opcode]. *)
