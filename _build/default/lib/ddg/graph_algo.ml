let intra_succs g u =
  List.filter (fun (e : Ddg.edge) -> e.distance = 0) (Ddg.succs g u)

(* Kahn's algorithm with a min-heap on ids (a sorted module Set works and
   keeps the order deterministic). *)
let topological_order g =
  let n = Ddg.size g in
  let indeg = Array.make n 0 in
  for u = 0 to n - 1 do
    List.iter (fun (e : Ddg.edge) -> indeg.(e.dst) <- indeg.(e.dst) + 1)
      (intra_succs g u)
  done;
  let module S = Set.Make (Int) in
  let ready = ref S.empty in
  for u = 0 to n - 1 do
    if indeg.(u) = 0 then ready := S.add u !ready
  done;
  let order = Array.make n (-1) in
  let pos = ref 0 in
  while not (S.is_empty !ready) do
    let u = S.min_elt !ready in
    ready := S.remove u !ready;
    order.(!pos) <- u;
    incr pos;
    List.iter
      (fun (e : Ddg.edge) ->
        indeg.(e.dst) <- indeg.(e.dst) - 1;
        if indeg.(e.dst) = 0 then ready := S.add e.dst !ready)
      (intra_succs g u)
  done;
  assert (!pos = n);
  order

let depth g =
  let order = topological_order g in
  let d = Array.make (Ddg.size g) 0 in
  Array.iter
    (fun u ->
      List.iter
        (fun (e : Ddg.edge) -> d.(e.dst) <- max d.(e.dst) (d.(u) + e.latency))
        (intra_succs g u))
    order;
  d

let height g =
  let order = topological_order g in
  let h = Array.make (Ddg.size g) 0 in
  for i = Array.length order - 1 downto 0 do
    let u = order.(i) in
    List.iter
      (fun (e : Ddg.edge) -> h.(u) <- max h.(u) (e.latency + h.(e.dst)))
      (intra_succs g u)
  done;
  h

let critical_path g =
  if Ddg.size g = 0 then 0
  else
    let d = depth g in
    Array.fold_left max 0 d

let slack g =
  let d = depth g and h = height g in
  let cp = Array.fold_left max 0 d in
  Array.mapi (fun i di -> cp - di - h.(i)) d

(* Tarjan, iterative to survive the 200+-node kernels without fear of the
   system stack (and arbitrary synthetic inputs). *)
let sccs g =
  let n = Ddg.size g in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let next_index = ref 0 in
  let out = Hca_util.Vec.create () in
  let succ_ids u = List.map (fun (e : Ddg.edge) -> e.dst) (Ddg.succs g u) in
  let strongconnect v =
    (* Explicit work stack of (node, remaining successors). *)
    let work = ref [ (v, succ_ids v) ] in
    index.(v) <- !next_index;
    lowlink.(v) <- !next_index;
    incr next_index;
    stack := v :: !stack;
    on_stack.(v) <- true;
    while !work <> [] do
      match !work with
      | [] -> ()
      | (u, ws) :: rest -> (
          match ws with
          | [] ->
              work := rest;
              (match rest with
              | (p, _) :: _ -> lowlink.(p) <- min lowlink.(p) lowlink.(u)
              | [] -> ());
              if lowlink.(u) = index.(u) then begin
                let comp = ref [] in
                let stop = ref false in
                while not !stop do
                  match !stack with
                  | [] -> stop := true
                  | w :: tl ->
                      stack := tl;
                      on_stack.(w) <- false;
                      comp := w :: !comp;
                      if w = u then stop := true
                done;
                ignore (Hca_util.Vec.push out !comp)
              end
          | w :: ws' ->
              work := (u, ws') :: rest;
              if index.(w) = -1 then begin
                index.(w) <- !next_index;
                lowlink.(w) <- !next_index;
                incr next_index;
                stack := w :: !stack;
                on_stack.(w) <- true;
                work := (w, succ_ids w) :: !work
              end
              else if on_stack.(w) then
                lowlink.(u) <- min lowlink.(u) index.(w))
    done
  in
  for v = 0 to n - 1 do
    if index.(v) = -1 then strongconnect v
  done;
  Hca_util.Vec.to_array out

let has_circuit g comp =
  match comp with
  | [] -> false
  | [ u ] ->
      List.exists (fun (e : Ddg.edge) -> e.dst = u) (Ddg.succs g u)
  | _ :: _ :: _ -> true

let nontrivial_sccs g =
  sccs g |> Array.to_list
  |> List.filter (has_circuit g)
  |> Array.of_list

let reachable g start =
  let n = Ddg.size g in
  let seen = Array.make n false in
  let rec go u =
    if not seen.(u) then begin
      seen.(u) <- true;
      List.iter (fun (e : Ddg.edge) -> go e.dst) (Ddg.succs g u)
    end
  in
  go start;
  seen

let undirected_components g =
  let n = Ddg.size g in
  let parent = Array.init n (fun i -> i) in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then parent.(ra) <- rb
  in
  Ddg.iter_edges (fun e -> union e.src e.dst) g;
  let buckets = Hashtbl.create 16 in
  for i = n - 1 downto 0 do
    let r = find i in
    let cur = try Hashtbl.find buckets r with Not_found -> [] in
    Hashtbl.replace buckets r (i :: cur)
  done;
  Hashtbl.fold (fun _ comp acc -> comp :: acc) buckets []
  |> List.sort compare |> Array.of_list
