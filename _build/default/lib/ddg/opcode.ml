type t =
  | Add
  | Sub
  | Mul
  | Mac
  | Shl
  | Shr
  | And_
  | Or_
  | Xor
  | Min
  | Max
  | Abs
  | Clip
  | Cmp
  | Sel
  | Mov
  | Const of int
  | Load
  | Store
  | Agen
  | Recv

type unit_class = Alu | Ag

let unit_class = function
  | Load | Store | Agen -> Ag
  | Add | Sub | Mul | Mac | Shl | Shr | And_ | Or_ | Xor | Min | Max | Abs
  | Clip | Cmp | Sel | Mov | Const _ | Recv ->
      Alu

let is_memory = function
  | Load | Store -> true
  | Add | Sub | Mul | Mac | Shl | Shr | And_ | Or_ | Xor | Min | Max | Abs
  | Clip | Cmp | Sel | Mov | Const _ | Agen | Recv ->
      false

let latency = function
  | Mul | Mac -> 2
  | Load -> 3
  | Store -> 1
  | Add | Sub | Shl | Shr | And_ | Or_ | Xor | Min | Max | Abs | Clip | Cmp
  | Sel | Mov | Const _ | Agen ->
      1
  | Recv -> 1

let mnemonic = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Mac -> "mac"
  | Shl -> "shl"
  | Shr -> "shr"
  | And_ -> "and"
  | Or_ -> "or"
  | Xor -> "xor"
  | Min -> "min"
  | Max -> "max"
  | Abs -> "abs"
  | Clip -> "clip"
  | Cmp -> "cmp"
  | Sel -> "sel"
  | Mov -> "mov"
  | Const k -> "const:" ^ string_of_int k
  | Load -> "load"
  | Store -> "store"
  | Agen -> "agen"
  | Recv -> "recv"

let of_mnemonic s =
  match s with
  | "add" -> Some Add
  | "sub" -> Some Sub
  | "mul" -> Some Mul
  | "mac" -> Some Mac
  | "shl" -> Some Shl
  | "shr" -> Some Shr
  | "and" -> Some And_
  | "or" -> Some Or_
  | "xor" -> Some Xor
  | "min" -> Some Min
  | "max" -> Some Max
  | "abs" -> Some Abs
  | "clip" -> Some Clip
  | "cmp" -> Some Cmp
  | "sel" -> Some Sel
  | "mov" -> Some Mov
  | "load" -> Some Load
  | "store" -> Some Store
  | "agen" -> Some Agen
  | "recv" -> Some Recv
  | _ ->
      if String.length s > 6 && String.sub s 0 6 = "const:" then
        match int_of_string_opt (String.sub s 6 (String.length s - 6)) with
        | Some k -> Some (Const k)
        | None -> None
      else None

let equal a b =
  match (a, b) with
  | Const x, Const y -> x = y
  | _ -> a = b

let pp ppf op = Format.pp_print_string ppf (mnemonic op)

let all =
  [
    Add; Sub; Mul; Mac; Shl; Shr; And_; Or_; Xor; Min; Max; Abs; Clip; Cmp;
    Sel; Mov; Const 0; Load; Store; Agen; Recv;
  ]
