type id = int

type t = {
  id : id;
  opcode : Opcode.t;
  name : string;
}

let make ~id ?name opcode =
  let name = match name with Some n -> n | None -> "%" ^ string_of_int id in
  { id; opcode; name }

let equal a b = a.id = b.id

let pp ppf t = Format.fprintf ppf "%%%d:%s=%a" t.id t.name Opcode.pp t.opcode
