lib/ddg/instr.mli: Format Opcode
