lib/ddg/ddg.ml: Array Format Hca_util Instr List Opcode
