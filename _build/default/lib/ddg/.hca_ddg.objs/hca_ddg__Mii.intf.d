lib/ddg/mii.mli: Ddg Instr
