lib/ddg/opcode.ml: Format String
