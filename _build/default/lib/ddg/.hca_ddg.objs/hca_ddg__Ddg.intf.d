lib/ddg/ddg.mli: Format Instr Opcode
