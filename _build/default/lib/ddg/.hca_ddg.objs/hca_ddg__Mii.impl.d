lib/ddg/mii.ml: Array Ddg Graph_algo Hashtbl Instr List Opcode
