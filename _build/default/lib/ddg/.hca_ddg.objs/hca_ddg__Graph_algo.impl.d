lib/ddg/graph_algo.ml: Array Ddg Hashtbl Hca_util Int List Set
