lib/ddg/graph_algo.mli: Ddg Instr
