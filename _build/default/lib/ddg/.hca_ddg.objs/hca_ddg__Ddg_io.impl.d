lib/ddg/ddg_io.ml: Array Buffer Ddg Fun Hashtbl Instr List Opcode Printf String
