lib/ddg/instr.ml: Format Opcode
