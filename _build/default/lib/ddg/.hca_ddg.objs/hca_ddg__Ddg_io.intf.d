lib/ddg/ddg_io.mli: Ddg Instr
