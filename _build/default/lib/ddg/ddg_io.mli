(** Serialisation of DDGs: a line-oriented text format (round-trippable)
    and Graphviz DOT output for inspection.

    Text format, one record per line, ['#'] comments allowed:
    {v
    ddg <name>
    i <id> <mnemonic> <name>
    e <src> <dst> <latency> <distance>
    v}
    Instruction ids must be dense and in order (the parser checks). *)

val to_string : Ddg.t -> string

val of_string : string -> (Ddg.t, string) result
(** Error message carries the offending line number. *)

val to_dot : ?cluster_of:(Instr.id -> string option) -> Ddg.t -> string
(** DOT digraph; loop-carried edges are dashed and labelled with their
    distance.  [cluster_of] optionally groups nodes into subgraph
    clusters (used to visualise an assignment). *)

val write_file : string -> Ddg.t -> unit

val read_file : string -> (Ddg.t, string) result
