(* MIIRec: a circuit C forbids an initiation interval ii iff
   latency(C) - ii * distance(C) > 0.  So ii is achievable iff the graph
   weighted by (latency - ii * distance) has no positive circuit, which
   Bellman-Ford detects as a longest-path relaxation that does not
   settle.  rec_mii is the smallest achievable ii, found by binary
   search; latencies are non-negative so the search range is bounded by
   the total latency of the component. *)

let positive_circuit g nodes ii =
  let member = Hashtbl.create (List.length nodes) in
  List.iter (fun u -> Hashtbl.replace member u ()) nodes;
  let dist = Hashtbl.create (List.length nodes) in
  List.iter (fun u -> Hashtbl.replace dist u 0) nodes;
  let n = List.length nodes in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds <= n do
    changed := false;
    incr rounds;
    List.iter
      (fun u ->
        let du = Hashtbl.find dist u in
        List.iter
          (fun (e : Ddg.edge) ->
            if Hashtbl.mem member e.dst then begin
              let w = e.latency - (ii * e.distance) in
              let cand = du + w in
              if cand > Hashtbl.find dist e.dst then begin
                Hashtbl.replace dist e.dst cand;
                changed := true
              end
            end)
          (Ddg.succs g u))
      nodes
  done;
  !changed

let rec_mii_of_scc g nodes =
  match nodes with
  | [] -> 1
  | _ ->
      let total_latency =
        List.fold_left
          (fun acc u ->
            List.fold_left
              (fun acc (e : Ddg.edge) -> acc + e.latency)
              acc (Ddg.succs g u))
          0 nodes
      in
      let lo = ref 1 and hi = ref (max 1 total_latency) in
      (* Invariant: ii < lo forbidden or untested-below, ii >= hi allowed. *)
      if positive_circuit g nodes !hi then
        invalid_arg "Mii.rec_mii_of_scc: circuit with zero total distance";
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if positive_circuit g nodes mid then lo := mid + 1 else hi := mid
      done;
      !lo

let rec_mii g =
  let comps = Graph_algo.nontrivial_sccs g in
  Array.fold_left (fun acc comp -> max acc (rec_mii_of_scc g comp)) 1 comps

type resources = {
  alu_slots : int;
  ag_slots : int;
  issue_slots : int;
  dma_ports : int;
}

let ceil_div a b = (a + b - 1) / b

let res_mii g r =
  if r.alu_slots <= 0 || r.ag_slots <= 0 || r.issue_slots <= 0
     || r.dma_ports <= 0
  then invalid_arg "Mii.res_mii: non-positive resource capacity";
  let alu_ops =
    Ddg.count g (fun i -> Opcode.unit_class i.Instr.opcode = Opcode.Alu)
  in
  let ag_ops =
    Ddg.count g (fun i -> Opcode.unit_class i.Instr.opcode = Opcode.Ag)
  in
  let mem_ops = Ddg.memory_ops g in
  let bound = [
    ceil_div alu_ops r.alu_slots;
    ceil_div ag_ops r.ag_slots;
    ceil_div (Ddg.size g) r.issue_slots;
    ceil_div mem_ops r.dma_ports;
  ]
  in
  List.fold_left max 1 bound

let mii g r = max (rec_mii g) (res_mii g r)

let achievable g ~ii = ii >= rec_mii g
