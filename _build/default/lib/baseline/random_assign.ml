open Hca_ddg
open Hca_machine

type t = {
  cn_of_instr : int array;
  copies : int;
  projected_mii : int;
  seed : int;
}

let run ?(seed = 1) fabric ddg ~ii =
  let cns = Dspfabric.total_cns fabric in
  let n = Ddg.size ddg in
  if n > cns * ii then Error "not enough issue slots at this II"
  else begin
    let rng = Hca_util.Prng.create seed in
    let order = Array.init n (fun i -> i) in
    Hca_util.Prng.shuffle rng order;
    let load = Array.make cns 0 in
    let cn_of_instr = Array.make n (-1) in
    Array.iter
      (fun i ->
        (* Rejection-sample a CN with remaining budget; fall back to a
           linear scan when unlucky. *)
        let rec pick tries =
          if tries = 0 then
            let rec scan c = if load.(c) < ii then c else scan ((c + 1) mod cns) in
            scan 0
          else
            let c = Hca_util.Prng.int rng cns in
            if load.(c) < ii then c else pick (tries - 1)
        in
        let c = pick 16 in
        load.(c) <- load.(c) + 1;
        cn_of_instr.(i) <- c)
      order;
    let copies = ref 0 in
    let incoming = Array.make cns 0 in
    Ddg.iter_edges
      (fun e ->
        if cn_of_instr.(e.src) <> cn_of_instr.(e.dst) then begin
          incr copies;
          let d = cn_of_instr.(e.dst) in
          incoming.(d) <- incoming.(d) + 1
        end)
      ddg;
    let projected_mii = ref 1 in
    for c = 0 to cns - 1 do
      projected_mii := max !projected_mii (load.(c) + incoming.(c))
    done;
    Ok { cn_of_instr; copies = !copies; projected_mii = !projected_mii; seed }
  end
