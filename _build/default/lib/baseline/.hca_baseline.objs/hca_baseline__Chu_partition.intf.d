lib/baseline/chu_partition.mli: Ddg Dspfabric Hca_ddg Hca_machine
