lib/baseline/random_assign.mli: Ddg Dspfabric Hca_ddg Hca_machine
