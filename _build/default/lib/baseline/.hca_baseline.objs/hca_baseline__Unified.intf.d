lib/baseline/unified.mli: Ddg Dspfabric Hca_ddg Hca_machine
