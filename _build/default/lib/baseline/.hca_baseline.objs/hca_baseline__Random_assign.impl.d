lib/baseline/random_assign.ml: Array Ddg Dspfabric Hca_ddg Hca_machine Hca_util
