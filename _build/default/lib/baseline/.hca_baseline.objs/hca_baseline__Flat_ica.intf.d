lib/baseline/flat_ica.mli: Config Ddg Dspfabric Hca_core Hca_ddg Hca_machine See
