lib/baseline/unified.ml: Dspfabric Hca_ddg Hca_machine Mii
