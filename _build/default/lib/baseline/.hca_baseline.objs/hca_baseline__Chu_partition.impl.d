lib/baseline/chu_partition.ml: Array Ddg Dspfabric Hashtbl Hca_ddg Hca_machine List Option
