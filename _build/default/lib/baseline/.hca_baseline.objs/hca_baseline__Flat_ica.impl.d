lib/baseline/flat_ica.ml: Array Config Copy_flow Cost Ddg Dspfabric Hca_core Hca_ddg Hca_machine List Mii Pattern_graph Problem Resource See State Sys
