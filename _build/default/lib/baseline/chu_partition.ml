open Hca_ddg
open Hca_machine

type t = {
  cn_of_instr : int array;
  copies : int;
  projected_mii : int;
  violations : int;
}

(* Greedy balanced k-way clustering by edge affinity: grow [k] groups
   from high-degree seeds, always placing the most-connected remaining
   node into the group it has the strongest affinity with (capacity
   permitting). *)
let cluster ddg ids ~k ~capacity =
  let affinity = Hashtbl.create 64 in
  let bump a b =
    let key = (min a b, max a b) in
    Hashtbl.replace affinity key
      (1 + Option.value ~default:0 (Hashtbl.find_opt affinity key))
  in
  Ddg.iter_edges (fun e -> if e.src <> e.dst then bump e.src e.dst) ddg;
  let member = Hashtbl.create (List.length ids) in
  List.iter (fun i -> Hashtbl.replace member i ()) ids;
  let degree i =
    List.length (Ddg.succs ddg i) + List.length (Ddg.preds ddg i)
  in
  let sorted =
    List.sort (fun a b -> compare (-degree a, a) (-degree b, b)) ids
  in
  let group_of = Hashtbl.create (List.length ids) in
  let sizes = Array.make k 0 in
  let place i g =
    Hashtbl.replace group_of i g;
    sizes.(g) <- sizes.(g) + 1
  in
  (* Seeds: the k highest-degree nodes, one per group. *)
  List.iteri (fun idx i -> if idx < k then place i idx) sorted;
  let group_affinity i g =
    let aff neighbor =
      if Hashtbl.mem member neighbor then
        match Hashtbl.find_opt group_of neighbor with
        | Some g' when g' = g ->
            Option.value ~default:0
              (Hashtbl.find_opt affinity (min i neighbor, max i neighbor))
        | _ -> 0
      else 0
    in
    List.fold_left
      (fun acc (e : Ddg.edge) -> acc + aff e.dst)
      (List.fold_left
         (fun acc (e : Ddg.edge) -> acc + aff e.src)
         0 (Ddg.preds ddg i))
      (Ddg.succs ddg i)
  in
  List.iteri
    (fun idx i ->
      if idx >= k then begin
        let best = ref (-1) and best_key = ref (min_int, min_int) in
        for g = 0 to k - 1 do
          if sizes.(g) < capacity then begin
            let key = (group_affinity i g, -sizes.(g)) in
            if key > !best_key then begin
              best_key := key;
              best := g
            end
          end
        done;
        if !best >= 0 then place i !best
      end)
    sorted;
  List.map
    (fun i -> (i, Option.value ~default:0 (Hashtbl.find_opt group_of i)))
    ids

let violations_of fabric cn_of_instr ddg =
  let cns = Dspfabric.total_cns fabric in
  let depth = Dspfabric.depth fabric in
  let total = ref 0 in
  for level = 0 to depth - 1 do
    let view = Dspfabric.level_view fabric ~level in
    let group_size = view.Dspfabric.cns_per_child in
    let groups = cns / group_size in
    let in_sets = Array.make groups [] in
    Ddg.iter_edges
      (fun e ->
        let gs = cn_of_instr.(e.src) / group_size
        and gd = cn_of_instr.(e.dst) / group_size in
        if gs <> gd && not (List.mem gs in_sets.(gd)) then
          in_sets.(gd) <- gs :: in_sets.(gd))
      ddg;
    Array.iter
      (fun sources ->
        let overflow = List.length sources - view.Dspfabric.mux_capacity in
        if overflow > 0 then total := !total + overflow)
      in_sets
  done;
  !total

let run fabric ddg ~ii =
  let cns = Dspfabric.total_cns fabric in
  let n = Ddg.size ddg in
  if n > cns * ii then Error "not enough issue slots at this II"
  else begin
    let cn_of_instr = Array.make n (-1) in
    (* Recursive multilevel split following the fabric's fan-outs, so
       the group shapes are comparable with HCA's working sets. *)
    let rec split_range ids ~level ~first_cn =
      match ids with
      | [] -> ()
      | _ ->
          let view = Dspfabric.level_view fabric ~level in
          let k = view.Dspfabric.children in
          let capacity = view.Dspfabric.cns_per_child * ii in
          let groups = cluster ddg ids ~k ~capacity in
          if view.Dspfabric.is_leaf then
            List.iter (fun (i, g) -> cn_of_instr.(i) <- first_cn + g) groups
          else
            for g = 0 to k - 1 do
              let sub =
                List.filter_map
                  (fun (i, g') -> if g' = g then Some i else None)
                  groups
              in
              split_range sub ~level:(level + 1)
                ~first_cn:(first_cn + (g * view.Dspfabric.cns_per_child))
            done
    in
    split_range (List.init n (fun i -> i)) ~level:0 ~first_cn:0;
    if Array.exists (fun c -> c < 0) cn_of_instr then
      Error "clustering left instructions unplaced (capacity too tight)"
    else begin
      let copies = ref 0 in
      let load = Array.make cns 0 in
      let incoming = Array.make cns 0 in
      Array.iter (fun c -> load.(c) <- load.(c) + 1) cn_of_instr;
      Ddg.iter_edges
        (fun e ->
          if cn_of_instr.(e.src) <> cn_of_instr.(e.dst) then begin
            incr copies;
            let d = cn_of_instr.(e.dst) in
            incoming.(d) <- incoming.(d) + 1
          end)
        ddg;
      let projected = ref 1 in
      for c = 0 to cns - 1 do
        projected := max !projected (load.(c) + incoming.(c))
      done;
      Ok
        {
          cn_of_instr;
          copies = !copies;
          projected_mii = !projected;
          violations = violations_of fabric cn_of_instr ddg;
        }
    end
  end
