(** Flat (non-hierarchical) Instruction Cluster Assignment: the
    strawman HCA replaces (§4, §7).

    The whole machine is abstracted as one K{_64} Pattern Graph — every
    CN can potentially reach every other — with only the per-CN port
    limits as constraints, and a single SEE pass maps the entire DDG
    onto it.  This view is {e optimistic} (it forgets the MUX hierarchy,
    so a "legal" flat result may be unroutable on the real machine) and
    {e expensive} (the candidate set is all 64 CNs at every step); the
    scaling bench quantifies both effects. *)

open Hca_ddg
open Hca_machine
open Hca_core

type t = {
  outcome : See.outcome option;
  projected_mii : int option;  (** per-CN load + receive pressure estimate *)
  copies : int;
  ii_used : int;
  explored : int;
  runtime_s : float;
  error : string option;
}

val run : ?config:Config.t -> Dspfabric.t -> Ddg.t -> t
(** Same II-climbing protocol as {!Hca_core.Report.run}, for an
    apples-to-apples comparison. *)

val hierarchy_violations : Dspfabric.t -> See.outcome -> int
(** How many of the flat result's copies cross a set boundary the MUX
    capacities could not actually carry — counted by re-checking each
    level-0/level-1 cut against [N] and [M].  Non-zero means the flat
    "solution" is not implementable on the real fabric. *)
