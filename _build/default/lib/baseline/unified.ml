open Hca_ddg
open Hca_machine

let mii ddg fabric = Mii.mii ddg (Dspfabric.resources fabric)

let gap ddg fabric ~final_mii =
  float_of_int final_mii /. float_of_int (mii ddg fabric)
