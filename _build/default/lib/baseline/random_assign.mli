(** Random legal-resource placement: the floor any heuristic must beat.

    Instructions are shuffled onto CNs subject only to the per-CN issue
    budget at the target II; communication feasibility is ignored.  The
    quality metrics (inter-cluster copies, per-CN pressure) show what
    ignoring locality costs. *)

open Hca_ddg
open Hca_machine

type t = {
  cn_of_instr : int array;
  copies : int;  (** DDG edges whose endpoints landed on different CNs *)
  projected_mii : int;  (** max per-CN ops + incoming values *)
  seed : int;
}

val run : ?seed:int -> Dspfabric.t -> Ddg.t -> ii:int -> (t, string) result
(** Fails when the shuffled placement cannot satisfy the issue budget
    (only possible when [ii * cns < size]). *)
