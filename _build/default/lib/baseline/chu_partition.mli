(** Baseline after Chu, Fan and Mahlke (PLDI'03): region-based
    hierarchical operation partitioning by multilevel graph clustering.

    Unlike HCA, the hierarchy here lives in the {e algorithm}, not in
    the machine: the DDG is recursively split into balanced groups with
    a greedy edge-affinity clustering, and the groups are then assigned
    to the fabric's cluster sets by position.  The method knows nothing
    about MUX capacities or reconfigurable wires, which is exactly the
    gap the paper's related-work section points at — the benches measure
    how often its partitions are unroutable. *)

open Hca_ddg
open Hca_machine

type t = {
  cn_of_instr : int array;
  copies : int;  (** edges cut by the final placement *)
  projected_mii : int;
  violations : int;  (** wire-capacity overflows, as in {!Flat_ica} *)
}

val run : Dspfabric.t -> Ddg.t -> ii:int -> (t, string) result
