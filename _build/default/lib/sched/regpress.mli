(** Register-pressure estimation over a modulo schedule: the
    scheduling-aware cost factor the paper plans to fold into the HCA
    objective function (§5, future work).

    In a modulo schedule with initiation interval [ii], a value defined
    at cycle [d] and last used at cycle [u] is live for [u - d] cycles
    and therefore occupies [ceil ((u - d) / ii)] overlapping rotating
    registers in the kernel.  MaxLive per CN approximates the rotating
    register-file demand. *)

open Hca_ddg

type t = {
  max_live : int;  (** worst per-CN simultaneous live values *)
  per_cn : (int * int) list;  (** (cn, max_live) for occupied CNs *)
  total_lifetime : int;  (** sum of value lifetimes, the paper's
                             "lifetime of the temporaries" *)
}

val analyse :
  ddg:Ddg.t ->
  cn_of_instr:int array ->
  copy_latency:int ->
  Modulo.schedule ->
  t
