(** Modulo Reservation Table (Rau 1994): the per-CN issue slots and the
    global DMA ports of one kernel window of [ii] cycles.

    A resource used at [cycle] occupies its column at [cycle mod ii] in
    every iteration, so two operations conflict iff they need the same
    resource in the same column. *)

type t

val create : ii:int -> cns:int -> dma_ports:int -> t

val ii : t -> int

val issue_free : t -> cn:int -> cycle:int -> bool

val dma_free : t -> cycle:int -> bool

val reserve : t -> cn:int -> cycle:int -> memory:bool -> bool
(** Take the issue slot (and a DMA port when [memory]); [false] and no
    change when something is occupied. *)

val release : t -> cn:int -> cycle:int -> memory:bool -> unit
(** Inverse of {!reserve} for backtracking/eviction.
    @raise Invalid_argument when releasing an empty slot. *)

val occupancy : t -> float
(** Fraction of issue slots in use — a packing-quality diagnostic. *)
