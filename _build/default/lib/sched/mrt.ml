type t = {
  ii : int;
  cns : int;
  dma_ports : int;
  issue : bool array;  (* cns * ii, true = taken *)
  dma : int array;  (* per column *)
}

let create ~ii ~cns ~dma_ports =
  if ii <= 0 || cns <= 0 || dma_ports <= 0 then
    invalid_arg "Mrt.create: non-positive size";
  {
    ii;
    cns;
    dma_ports;
    issue = Array.make (cns * ii) false;
    dma = Array.make ii 0;
  }

let ii t = t.ii

let column t cycle = ((cycle mod t.ii) + t.ii) mod t.ii

let slot t cn cycle =
  if cn < 0 || cn >= t.cns then invalid_arg "Mrt: bad CN";
  (cn * t.ii) + column t cycle

let issue_free t ~cn ~cycle = not t.issue.(slot t cn cycle)

let dma_free t ~cycle = t.dma.(column t cycle) < t.dma_ports

let reserve t ~cn ~cycle ~memory =
  if (not (issue_free t ~cn ~cycle)) || (memory && not (dma_free t ~cycle))
  then false
  else begin
    t.issue.(slot t cn cycle) <- true;
    if memory then begin
      let c = column t cycle in
      t.dma.(c) <- t.dma.(c) + 1
    end;
    true
  end

let release t ~cn ~cycle ~memory =
  let s = slot t cn cycle in
  if not t.issue.(s) then invalid_arg "Mrt.release: slot not reserved";
  t.issue.(s) <- false;
  if memory then begin
    let c = column t cycle in
    if t.dma.(c) <= 0 then invalid_arg "Mrt.release: DMA not reserved";
    t.dma.(c) <- t.dma.(c) - 1
  end

let occupancy t =
  let used = Array.fold_left (fun n b -> if b then n + 1 else n) 0 t.issue in
  float_of_int used /. float_of_int (t.cns * t.ii)
