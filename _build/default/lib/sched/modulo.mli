(** Iterative Modulo Scheduling (Rau, MICRO'94) over a clusterised DDG —
    the compilation phase the paper defers to future work (§5), built
    here so the reproduction can {e validate} that the MII reported by
    HCA is actually achievable by a schedule.

    The scheduler works on the original DDG plus the cluster assignment:
    an edge between instructions on different CNs pays [copy_latency]
    extra cycles and charges the receive on the consumer's CN implicitly
    through its issue slot.  Resources are the per-CN single issue slots
    and the shared DMA ports, tracked in a {!Mrt.t}. *)

open Hca_ddg

type schedule = {
  ii : int;  (** achieved initiation interval *)
  cycle_of : int array;  (** issue cycle per instruction *)
  stages : int;  (** kernel-only software-pipeline stage count *)
  occupancy : float;
  backtracks : int;
}

type params = {
  copy_latency : int;  (** extra cycles on inter-CN edges (default 1) *)
  budget_ratio : int;  (** eviction budget per II attempt, x instructions *)
  max_ii : int;
}

val default_params : params

val run :
  ?params:params ->
  ddg:Ddg.t ->
  cn_of_instr:int array ->
  cns:int ->
  dma_ports:int ->
  start_ii:int ->
  unit ->
  (schedule, string) result
(** Climbs from [start_ii] until a schedule fits or [max_ii] is hit. *)

val validate :
  ddg:Ddg.t ->
  cn_of_instr:int array ->
  copy_latency:int ->
  schedule ->
  (unit, string) result
(** Re-checks every dependence [start(v) >= start(u) + lat - ii*dist]
    and every resource column — the schedule analogue of the coherency
    checker. *)
