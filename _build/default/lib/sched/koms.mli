(** Kernel-Only Modulo Scheduling statistics (Rau, Schlansker, Tirumalai
    1992): RCP and DSPFabric execute only the pipelined kernel — the
    prologue and epilogue are folded into it with full predication and a
    cyclic program counter (§2.2).

    The cost of the scheme is one predicate (staging register) per
    pipeline stage and [stages - 1] iterations of fill and of drain
    overhead around a loop of [trip] iterations. *)

type t = {
  stages : int;
  predicates : int;  (** staging predicates needed: one per stage *)
  fill_drain_cycles : int;  (** [(stages - 1) * ii * 2] *)
  kernel_cycles_per_iter : int;  (** the II *)
}

val analyse : Modulo.schedule -> t

val total_cycles : t -> trip:int -> int
(** Wall-clock cycles to run [trip] iterations kernel-only:
    [(trip + stages - 1) * ii]. *)

val speedup_vs_unpipelined : t -> trip:int -> schedule_length:int -> float
(** Against issuing one iteration every [schedule_length] cycles. *)
