open Hca_ddg

type t = {
  max_live : int;
  per_cn : (int * int) list;
  total_lifetime : int;
}

let analyse ~ddg ~cn_of_instr ~copy_latency (s : Modulo.schedule) =
  let n = Ddg.size ddg in
  (* Lifetime of each value on its defining CN: from definition to the
     latest (modulo-adjusted) use. *)
  let last_use = Array.make n 0 in
  Ddg.iter_edges
    (fun e ->
      let extra =
        if cn_of_instr.(e.src) = cn_of_instr.(e.dst) then 0 else copy_latency
      in
      let use = s.Modulo.cycle_of.(e.dst) + (s.Modulo.ii * e.distance) + extra in
      if use > last_use.(e.src) then last_use.(e.src) <- use)
    ddg;
  let total_lifetime = ref 0 in
  let cns = Array.fold_left max 0 cn_of_instr + 1 in
  (* Live counts folded into the modulo window, per CN. *)
  let live = Array.make (cns * s.Modulo.ii) 0 in
  for i = 0 to n - 1 do
    let def = s.Modulo.cycle_of.(i) in
    if last_use.(i) > def then begin
      let lifetime = last_use.(i) - def in
      total_lifetime := !total_lifetime + lifetime;
      let cn = cn_of_instr.(i) in
      (* A value live for L cycles occupies column (def+k) mod ii for
         k = 0..L-1, with multiplicity for overlapped iterations. *)
      for k = 0 to lifetime - 1 do
        let col = (def + k) mod s.Modulo.ii in
        live.((cn * s.Modulo.ii) + col) <- live.((cn * s.Modulo.ii) + col) + 1
      done
    end
  done;
  let per_cn = ref [] in
  let max_live = ref 0 in
  for cn = cns - 1 downto 0 do
    let m = ref 0 in
    for col = 0 to s.Modulo.ii - 1 do
      if live.((cn * s.Modulo.ii) + col) > !m then
        m := live.((cn * s.Modulo.ii) + col)
    done;
    if !m > 0 then per_cn := (cn, !m) :: !per_cn;
    if !m > !max_live then max_live := !m
  done;
  { max_live = !max_live; per_cn = !per_cn; total_lifetime = !total_lifetime }
