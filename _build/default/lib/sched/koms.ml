type t = {
  stages : int;
  predicates : int;
  fill_drain_cycles : int;
  kernel_cycles_per_iter : int;
}

let analyse (s : Modulo.schedule) =
  {
    stages = s.Modulo.stages;
    predicates = s.Modulo.stages;
    fill_drain_cycles = (s.Modulo.stages - 1) * s.Modulo.ii * 2;
    kernel_cycles_per_iter = s.Modulo.ii;
  }

let total_cycles t ~trip =
  if trip < 0 then invalid_arg "Koms.total_cycles: negative trip count";
  (trip + t.stages - 1) * t.kernel_cycles_per_iter

let speedup_vs_unpipelined t ~trip ~schedule_length =
  let pipelined = total_cycles t ~trip in
  if pipelined = 0 then 1.0
  else float_of_int (trip * schedule_length) /. float_of_int pipelined
