lib/sched/regpress.mli: Ddg Hca_ddg Modulo
