lib/sched/mrt.mli:
