lib/sched/koms.ml: Modulo
