lib/sched/koms.mli: Modulo
