lib/sched/regpress.ml: Array Ddg Hca_ddg Modulo
