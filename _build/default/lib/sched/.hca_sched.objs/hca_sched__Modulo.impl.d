lib/sched/modulo.ml: Array Ddg Graph_algo Hashtbl Hca_ddg Instr List Mrt Opcode Printf Queue String
