lib/sched/modulo.mli: Ddg Hca_ddg
