lib/sched/mrt.ml: Array
