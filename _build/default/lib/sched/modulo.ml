open Hca_ddg

type schedule = {
  ii : int;
  cycle_of : int array;
  stages : int;
  occupancy : float;
  backtracks : int;
}

type params = {
  copy_latency : int;
  budget_ratio : int;
  max_ii : int;
}

let default_params = { copy_latency = 1; budget_ratio = 8; max_ii = 512 }

let effective_latency ~copy_latency ~cn_of_instr (e : Ddg.edge) =
  if cn_of_instr.(e.src) = cn_of_instr.(e.dst) then e.latency
  else e.latency + copy_latency

let is_memory ddg i = Opcode.is_memory (Ddg.instr ddg i).Instr.opcode

(* One II attempt, following Rau's algorithm: operations in priority
   order (height first); each op is placed at the earliest
   dependence-legal cycle, scanning at most ii slots for a free column;
   when every column is taken, the op is force-placed and the conflicting
   op is evicted and rescheduled later.  A budget bounds the total number
   of placements. *)
let attempt ~params ~ddg ~cn_of_instr ~cns ~dma_ports ~ii =
  let n = Ddg.size ddg in
  let mrt = Mrt.create ~ii ~cns ~dma_ports in
  let cycle_of = Array.make n min_int in
  let height = Graph_algo.height ddg in
  let order =
    List.init n (fun i -> i)
    |> List.sort (fun a b -> compare (-height.(a), a) (-height.(b), b))
  in
  let never_scheduled = Array.make n true in
  let budget = ref (params.budget_ratio * n) in
  let backtracks = ref 0 in
  let queue = Queue.create () in
  List.iter (fun i -> Queue.push i queue) order;
  let earliest op =
    List.fold_left
      (fun acc (e : Ddg.edge) ->
        if cycle_of.(e.src) = min_int then acc
        else
          let lat = effective_latency ~copy_latency:params.copy_latency ~cn_of_instr e in
          max acc (cycle_of.(e.src) + lat - (ii * e.distance)))
      0 (Ddg.preds ddg op)
  in
  let unschedule op =
    if cycle_of.(op) <> min_int then begin
      Mrt.release mrt ~cn:cn_of_instr.(op) ~cycle:cycle_of.(op)
        ~memory:(is_memory ddg op);
      cycle_of.(op) <- min_int;
      incr backtracks;
      Queue.push op queue
    end
  in
  let evict_conflicting op cycle =
    (* The op claiming (cn, cycle mod ii): find and unschedule it. *)
    let cn = cn_of_instr.(op) in
    let col = ((cycle mod ii) + ii) mod ii in
    let victim = ref None in
    Array.iteri
      (fun j cj ->
        if
          !victim = None && j <> op && cj <> min_int && cn_of_instr.(j) = cn
          && ((cj mod ii) + ii) mod ii = col
        then victim := Some j)
      cycle_of;
    (match !victim with
    | Some j -> unschedule j
    | None ->
        (* The conflict is on the DMA ports: evict any memory op in the
           column. *)
        Array.iteri
          (fun j cj ->
            if
              !victim = None && j <> op && cj <> min_int
              && is_memory ddg j
              && ((cj mod ii) + ii) mod ii = col
            then begin
              victim := Some j;
              unschedule j
            end)
          cycle_of);
    !victim <> None
  in
  let place op cycle =
    cycle_of.(op) <- cycle;
    (* Scheduling [op] invalidates successors placed too early. *)
    List.iter
      (fun (e : Ddg.edge) ->
        if e.dst <> op && cycle_of.(e.dst) <> min_int then begin
          let lat =
            effective_latency ~copy_latency:params.copy_latency ~cn_of_instr e
          in
          if cycle_of.(e.dst) < cycle + lat - (ii * e.distance) then
            unschedule e.dst
        end)
      (Ddg.succs ddg op)
  in
  let ok = ref true in
  while !ok && not (Queue.is_empty queue) do
    if !budget <= 0 then ok := false
    else begin
      decr budget;
      let op = Queue.pop queue in
      if cycle_of.(op) = min_int then begin
        let e0 = earliest op in
        let e0 =
          if never_scheduled.(op) then e0
          else max e0 1 (* forward progress on re-schedule *)
        in
        never_scheduled.(op) <- false;
        let cn = cn_of_instr.(op) in
        let memory = is_memory ddg op in
        let rec scan c tries =
          if tries = 0 then None
          else if Mrt.reserve mrt ~cn ~cycle:c ~memory then Some c
          else scan (c + 1) (tries - 1)
        in
        match scan e0 ii with
        | Some c -> place op c
        | None ->
            (* Force placement at the earliest cycle. *)
            if evict_conflicting op e0 then begin
              if Mrt.reserve mrt ~cn ~cycle:e0 ~memory then place op e0
              else Queue.push op queue
            end
            else ok := false
      end
    end
  done;
  if (not !ok) || Array.exists (fun c -> c = min_int) cycle_of then None
  else begin
    let max_cycle = Array.fold_left max 0 cycle_of in
    Some
      {
        ii;
        cycle_of = Array.copy cycle_of;
        stages = (max_cycle / ii) + 1;
        occupancy = Mrt.occupancy mrt;
        backtracks = !backtracks;
      }
  end

let run ?(params = default_params) ~ddg ~cn_of_instr ~cns ~dma_ports ~start_ii
    () =
  if Array.length cn_of_instr <> Ddg.size ddg then
    Error "cn_of_instr length mismatch"
  else begin
    let rec climb ii =
      if ii > params.max_ii then
        Error (Printf.sprintf "no schedule up to II=%d" params.max_ii)
      else
        match attempt ~params ~ddg ~cn_of_instr ~cns ~dma_ports ~ii with
        | Some s -> Ok s
        | None -> climb (ii + 1)
    in
    climb (max 1 start_ii)
  end

let validate ~ddg ~cn_of_instr ~copy_latency s =
  let errors = ref [] in
  Ddg.iter_edges
    (fun e ->
      let lat = effective_latency ~copy_latency ~cn_of_instr e in
      if s.cycle_of.(e.dst) < s.cycle_of.(e.src) + lat - (s.ii * e.distance)
      then
        errors :=
          Printf.sprintf "dependence %%%d->%%%d violated" e.src e.dst
          :: !errors)
    ddg;
  (* One issue per CN per column. *)
  let seen = Hashtbl.create 64 in
  Array.iteri
    (fun i c ->
      let key = (cn_of_instr.(i), ((c mod s.ii) + s.ii) mod s.ii) in
      if Hashtbl.mem seen key then
        errors :=
          Printf.sprintf "issue conflict on CN %d column %d" (fst key)
            (snd key)
          :: !errors
      else Hashtbl.replace seen key ())
    s.cycle_of;
  match !errors with [] -> Ok () | es -> Error (String.concat "; " es)
