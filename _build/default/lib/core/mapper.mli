(** The Mapper (§3): lowers the copy flow of a solved subproblem from
    the Pattern-Graph abstraction onto the physical wires of the level's
    {!Hca_machine.Machine_model}, and produces the Inter-Level Interface
    of every child subproblem (§4.1, Fig. 9).

    The lowering follows the paper's policy: the connections gluing this
    level to its father are pre-allocated first (Fig. 11) and withdrawn
    from the copy-distribution budget; a broadcast value is merged onto
    a single source wire; the remaining copies are spread over as many
    wires as available to keep the per-wire pressure — hence the II —
    low. *)

open Hca_machine

type result = {
  model : Machine_model.t;
  child_ilis : Ili.t array;  (** indexed by regular PG node id *)
  max_wire_load : int;
}

val map :
  ?consolidate:bool ->
  ?wire_cap:int ->
  ?color:(Hca_ddg.Instr.id -> int) ->
  problem:Problem.t ->
  state:State.t ->
  in_capacity:int ->
  out_capacity:int ->
  unit ->
  (result, string) Stdlib.result
(** Lowers the level's copy flow onto its wires.  With
    [consolidate = false] (default, the set levels) copies are spread
    over as many wires as available to keep per-wire pressure low, as
    Fig. 9 shows; with [consolidate = true] (the level feeding the leaf
    quads, where each new wire burns one of a CN's two input slots)
    values are packed onto as few wires as possible instead.

    [color] restricts which values may share a wire (default: all): a
    wire's payload later funnels through one downstream sub-cluster, so
    the driver colours values by producer regions sized to that
    sub-cluster and the Mapper never mixes colours on a wire.

    [wire_cap] bounds the payload of a single wire (default unlimited).
    The driver passes its capacity II: a wire serialises one value per
    cycle, so a fatter wire could not meet the II anyway — and since the
    whole payload of a wire must leave one child cluster (unary fan-in
    of the child's output port), the cap also keeps the forced
    co-location downstream within one cluster's issue budget.

    Fails when the wire budget cannot carry the flow (e.g. more distinct
    in-sources than input wires after the pre-allocations) — the driver
    then retries at a larger II or reports the architecture as too
    narrow, which is exactly the §5 bandwidth-degradation effect. *)

val wire_pressure_ii : result -> int
(** Smallest II compatible with the heaviest wire (one value per wire
    per cycle). *)

val pp_result : Format.formatter -> result -> unit
