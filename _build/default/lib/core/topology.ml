open Hca_ddg
open Hca_machine

type entry = {
  path : int list;
  owner : int;
  wire : int;
  sinks : int list;
  uplink : int option;
  values : Instr.id list;
}

type t = {
  machine : string;
  kernel : string;
  entries : entry list;
}

let of_result (res : Hierarchy.t) =
  let entries =
    List.concat_map
      (fun (sub : Hierarchy.subresult) ->
        let model = sub.Hierarchy.mapres.Mapper.model in
        List.concat_map
          (fun owner ->
            let uplinks = Machine_model.external_outs model owner in
            List.filter_map
              (fun w ->
                let values = Machine_model.wire_values model w in
                let sinks = Machine_model.wire_sinks model w in
                let uplink =
                  List.find_map
                    (fun (label, w') -> if w' = w then Some label else None)
                    uplinks
                in
                if values = [] && sinks = [] && uplink = None then None
                else
                  Some
                    {
                      path = sub.Hierarchy.path;
                      owner;
                      wire = w - (owner * Machine_model.out_capacity model);
                      sinks;
                      uplink;
                      values;
                    })
              (Machine_model.used_out_wires model owner))
          (List.init (Machine_model.nodes model) (fun i -> i)))
      (Hierarchy.subresults res)
  in
  {
    machine = Dspfabric.name res.Hierarchy.fabric;
    kernel = Ddg.name res.Hierarchy.ddg;
    entries;
  }

let wire_count t = List.length t.entries

let select_count t =
  List.fold_left
    (fun acc e ->
      acc + List.length e.sinks + match e.uplink with Some _ -> 1 | None -> 0)
    0 t.entries

let entry_to_string e =
  Printf.sprintf "at %s: c%d.w%d -> [%s]%s carrying [%s]"
    (match e.path with
    | [] -> "top"
    | p -> String.concat "," (List.map string_of_int p))
    e.owner e.wire
    (String.concat "," (List.map string_of_int e.sinks))
    (match e.uplink with
    | Some l -> Printf.sprintf " up w%d" l
    | None -> "")
    (String.concat "," (List.map (fun v -> "%" ^ string_of_int v) e.values))

let to_string t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "reconfiguration program: %s on %s (%d wires, %d selects)\n"
       t.kernel t.machine (wire_count t) (select_count t));
  List.iter
    (fun e ->
      Buffer.add_string buf ("  " ^ entry_to_string e ^ "\n"))
    t.entries;
  Buffer.contents buf

let pp ppf t = Format.pp_print_string ppf (to_string t)
