(** The Hierarchical Cluster Assignment driver (§4).

    Starting at level 0, each subproblem — identified by its path of
    nesting indexes, Fig. 8 (a) — maps its Working Set onto the PG of
    its level with the SEE, lowers the resulting copy flow onto the
    level's wires with the Mapper, and spawns one child subproblem per
    cluster set with the ILI the Mapper produced.  The recursion bottoms
    out at the leaf crossbar, where the PG nodes are single computation
    nodes and the placement becomes final. *)

open Hca_ddg
open Hca_machine

type subresult = {
  path : int list;  (** nesting indexes, [[]] for the root problem *)
  problem : Problem.t;
  outcome : See.outcome;
  state : State.t;
      (** the committed solution — [outcome.state], or one of its beam
          alternatives when a child subproblem of the best state proved
          infeasible and the driver backtracked *)
  mapres : Mapper.result;
  children : subresult option array;
      (** one slot per PG regular node; [None] when nothing was assigned
          to — or flows through — that cluster set (always all-[None] at
          the leaf) *)
}

type t = {
  fabric : Dspfabric.t;
  ddg : Ddg.t;
  ii : int;  (** target II the assignment was built against *)
  root : subresult;
  cn_of_instr : int array;  (** instruction id -> absolute CN index *)
  forwards : (Instr.id * int) list;
      (** routed pass-through moves: (value, absolute CN executing it) *)
  explored : int;  (** partial solutions generated across all subproblems *)
  routed : int;  (** SEE moves that needed the Route Allocator *)
}

val solve :
  ?config:Config.t ->
  ?target_ii:int ->
  Dspfabric.t ->
  Ddg.t ->
  ii:int ->
  (t, string) result
(** One full HCA pass with capacity window [ii] (cost functions aim at
    [target_ii], default [ii]).  Fails with the path and node of the
    first subproblem that admits no legal clusterisation. *)

val subresults : t -> subresult list
(** Pre-order walk of the problem tree. *)

val leaf_of_path : t -> int list -> subresult option

val cn_count : t -> int -> int
(** Instructions (forwards included) placed on an absolute CN. *)

val recv_count : t -> int -> int
(** Distinct values a CN receives — each costs one receive primitive. *)

val pp : Format.formatter -> t -> unit
