type priority =
  | Affinity
  | Criticality
  | Topological
  | Source_order

type t = {
  beam_width : int;
  candidate_width : int;
  priority : priority;
  weights : Cost.weights;
  enable_router : bool;
  max_route_hops : int;
  leaf_feed_fanin_cap : int;
  mapper_spread : bool;
  max_alternatives : int;
  ii_patience : int;
  max_ii : int;
}

let default =
  {
    beam_width = 8;
    candidate_width = 4;
    priority = Affinity;
    weights = Cost.default_weights;
    enable_router = true;
    max_route_hops = 4;
    leaf_feed_fanin_cap = 4;
    mapper_spread = false;
    max_alternatives = 4;
    ii_patience = 3;
    max_ii = 256;
  }

let greedy = { default with beam_width = 1; candidate_width = 1 }

let priority_name = function
  | Affinity -> "affinity"
  | Criticality -> "criticality"
  | Topological -> "topological"
  | Source_order -> "source-order"

let pp ppf t =
  Format.fprintf ppf
    "{beam=%d; cand=%d; prio=%s; router=%b; hops=%d; patience=%d; weights=%a}"
    t.beam_width t.candidate_width (priority_name t.priority) t.enable_router
    t.max_route_hops t.ii_patience Cost.pp_weights t.weights
