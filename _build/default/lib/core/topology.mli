(** The final reconfiguration program (§2: "the compiler must select a
    sub-set of feasible cluster connections for data flowing, and emit
    the reconfiguration instructions for activating the selected wires").

    Walks the solved hierarchy and linearises every selected wire into a
    flat list of configuration entries — what a runtime loader would
    write into the MUX select registers before starting the loop. *)

open Hca_ddg

type entry = {
  path : int list;  (** subproblem the wire lives in ([[]] = level 0) *)
  owner : int;  (** cluster (set or CN index) owning the output wire *)
  wire : int;  (** wire index within the owner *)
  sinks : int list;  (** sibling clusters listening to the wire *)
  uplink : int option;  (** father wire label this wire also feeds, if any *)
  values : Instr.id list;  (** payload, for diagnostics *)
}

type t = {
  machine : string;
  kernel : string;
  entries : entry list;
}

val of_result : Hierarchy.t -> t

val wire_count : t -> int
(** Configured (selected) wires — the paper's "feasible topology" size. *)

val select_count : t -> int
(** Individual MUX selects: one per (wire, sink) pair plus one per
    uplink — the length of the reconfiguration program. *)

val to_string : t -> string
(** One line per entry:
    [at 0,2: set1.w0 -> sets [0,3] up w2 carrying [%5,%9]]. *)

val pp : Format.formatter -> t -> unit
