(** Inter-Level Interface (§4.1, Fig. 9 (c)): what the Mapper of a
    father problem tells each child subproblem about the wires crossing
    its boundary.

    Each entry pairs a wire label (unique within the child) with the
    full payload the wire physically carries; the child consumes the
    values it needs and forwards the ones its own output wires owe. *)

open Hca_ddg

type t = {
  inputs : (int * Instr.id list) list;
  outputs : (int * Instr.id list) list;
}

val empty : t
(** The interface of the root problem: level 0 has no father. *)

val is_empty : t -> bool

val input_values : t -> Instr.id list
(** Distinct values entering, sorted. *)

val output_values : t -> Instr.id list

val pp : Format.formatter -> t -> unit
