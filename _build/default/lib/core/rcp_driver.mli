(** Single-level cluster assignment for the RCP architecture (§2.1):
    the non-hierarchical target that motivates the framework before the
    DSPFabric hierarchy enters (Fig. 1).

    RCP needs no decomposition: the whole DDG maps onto the ring's
    Pattern Graph in one SEE pass, and the "topology selection" is
    exactly the set of real arcs of the resulting copy flow — each one a
    neighbour link to configure, at most [in_ports] per cluster. *)

open Hca_ddg
open Hca_machine

type t = {
  rcp : Rcp.t;
  ddg : Ddg.t;
  ii : int;  (** first feasible initiation interval *)
  state : State.t;
  topology : (int * int) list;  (** configured links, Fig. 1 (b) *)
  projected_mii : int;
  copies : int;
  explored : int;
}

val solve : ?config:Config.t -> Rcp.t -> Ddg.t -> (t, string) result
(** Climbs the II from [MIIRec] until the SEE finds an assignment. *)

val validate : t -> (unit, string list) result
(** Re-checks the selected topology against the architecture: every
    link is a potential ring connection, no cluster exceeds its input
    ports, memory instructions sit on memory-capable clusters, and
    every inter-cluster dependence rides a configured link. *)

val pp : Format.formatter -> t -> unit
