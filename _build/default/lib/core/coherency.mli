(** The coherency checker that closes the HCA pass (§4.1): "verifies if
    the DDG is compatible with the topology itself.  More precisely it
    checks for the presence of a communication path on the final
    architecture between each pair of clusters that contains dependent
    nodes of the DDG."

    The checker re-derives legality from the recorded artefacts alone —
    it trusts neither the SEE nor the Mapper:

    - every wire model satisfies its structural invariants
      ({!Hca_machine.Machine_model.validate});
    - every output port owed a value is actually fed it;
    - for every DDG edge whose endpoints sit on different CNs, the value
      travels hop by hop: sideways on wires that physically carry it,
      upwards through output ports, and downwards through the
      pre-allocated father wires, at every level between the two CNs. *)

val check : Hierarchy.t -> (unit, string list) result
(** [Ok ()] means the clusterisation is legal; [Error msgs] collects
    every violation found (the benches report the first few). *)

val is_legal : Hierarchy.t -> bool
