type weights = {
  w_copy : float;
  w_balance : float;
  w_pressure : float;
  w_port : float;
  w_util : float;
  w_fanin : float;
  w_tear : float;
  w_carried : float;
}

let default_weights =
  {
    w_copy = 1.0;
    w_balance = 0.5;
    w_pressure = 8.0;
    w_port = 0.25;
    w_util = 0.5;
    w_fanin = 2.0;
    w_tear = 1.5;
    w_carried = 6.0;
  }

type summary = {
  copies : int;
  max_util : float;
  util_spread : float;
  projected_ii : int;
  target_ii : int;
  used_in_ports : int;
  fanin_sat : float;
  carried_cuts : int;
}

let ceil_div a b = (a + b - 1) / b

let cluster_mii ~demand ~capacity ~receives ~max_in =
  let open Hca_machine in
  let p = Resource.min_ii ~demand ~capacity in
  let p =
    if capacity.Resource.alus > 0 then
      max p (ceil_div (demand.Resource.alus + receives) capacity.Resource.alus)
    else p
  in
  if receives > 0 then max p (ceil_div receives max_in) else p

let score w s =
  let overshoot = max 0 (s.projected_ii - s.target_ii) in
  (w.w_copy *. float_of_int s.copies)
  +. (w.w_balance *. s.util_spread)
  +. (w.w_pressure *. float_of_int overshoot)
  +. (w.w_port *. float_of_int s.used_in_ports)
  +. (w.w_util *. s.max_util)
  +. (w.w_fanin *. s.fanin_sat)
  +. (w.w_carried *. float_of_int s.carried_cuts)

let pp_weights ppf w =
  Format.fprintf ppf
    "{copy=%g; balance=%g; pressure=%g; port=%g; util=%g; fanin=%g; tear=%g; \
     carried=%g}"
    w.w_copy w.w_balance w.w_pressure w.w_port w.w_util w.w_fanin w.w_tear
    w.w_carried
