open Hca_ddg

(* Shared region-growing engine: [n] nodes, [free] membership mask,
   pairwise affinities, criticality used to pick seeds. *)
let grow_regions ?(min_affinity = 2) ~n ~free ~affinity ~criticality ~capacity () =
  let aff a b =
    Option.value ~default:0 (Hashtbl.find_opt affinity (min a b, max a b))
  in
  let neighbors = Array.make n [] in
  Hashtbl.iter
    (fun (a, b) _ ->
      neighbors.(a) <- b :: neighbors.(a);
      neighbors.(b) <- a :: neighbors.(b))
    affinity;
  let region = Array.make n (-1) in
  let order =
    List.init n (fun i -> i)
    |> List.filter (fun i -> free.(i))
    |> List.sort (fun a b ->
           compare (-criticality.(a), a) (-criticality.(b), b))
  in
  let next_region = ref 0 in
  let grow seed =
    let r = !next_region in
    incr next_region;
    region.(seed) <- r;
    let members = ref [ seed ] in
    let size = ref 1 in
    let continue = ref true in
    while !continue && !size < capacity do
      (* Best unassigned node by affinity to the region; the frontier is
         small (regions are cluster-sized), so a scan over the members'
         neighbourhoods is cheap. *)
      let best = ref (-1) and best_aff = ref 0 in
      List.iter
        (fun m ->
          List.iter
            (fun cand ->
              if region.(cand) = -1 && free.(cand) then begin
                let a =
                  List.fold_left (fun acc m' -> acc + aff cand m') 0 !members
                in
                if a > !best_aff || (a = !best_aff && !best >= 0 && cand < !best)
                then begin
                  best := cand;
                  best_aff := a
                end
              end)
            neighbors.(m))
        !members;
      if !best >= 0 && !best_aff >= min_affinity then begin
        region.(!best) <- r;
        members := !best :: !members;
        incr size
      end
      else continue := false
    done
  in
  List.iter (fun seed -> if region.(seed) = -1 then grow seed) order;
  region

let is_out_port problem id =
  let nd = Problem.node problem id in
  nd.Problem.pinned <> None && Problem.succs problem id = []

let is_in_port problem id =
  let nd = Problem.node problem id in
  nd.Problem.pinned <> None && Problem.preds problem id = []

let partition problem ~capacity =
  if capacity < 1 then invalid_arg "Regions.partition: capacity must be >= 1";
  let n = Problem.size problem in
  let free = Array.make n false in
  Array.iter
    (fun (nd : Problem.node) -> free.(nd.Problem.id) <- nd.Problem.pinned = None)
    (Problem.nodes problem);
  let affinity = Hashtbl.create (4 * n) in
  let bump a b w =
    if a <> b && free.(a) && free.(b) then begin
      let key = (min a b, max a b) in
      Hashtbl.replace affinity key
        (w + Option.value ~default:0 (Hashtbl.find_opt affinity key))
    end
  in
  (* Broadcast producers (constants, shared inductions) link every
     consumer to every other; discounting their edges by fan-out keeps
     them from welding unrelated regions together. *)
  let fanout = Array.make n 0 in
  Array.iter
    (fun (e : Problem.edge) -> fanout.(e.src) <- fanout.(e.src) + 1)
    (Problem.edges problem);
  let edge_weight f = if f >= 6 then 1 else max 2 (8 / (1 + f)) in
  let scc = Problem.scc_of problem in
  Array.iter
    (fun (e : Problem.edge) ->
      (* Any edge inside a recurrence circuit: tearing it across
         clusters stretches the circuit by the copy latency and inflates
         MIIRec, so circuit members stick hard. *)
      let w =
        if
          e.Problem.distance > 0
          || (scc.(e.src) >= 0 && scc.(e.src) = scc.(e.dst))
        then 10
        else edge_weight fanout.(e.src)
      in
      bump e.src e.dst w)
    (Problem.edges problem);
  (* Co-location pressure through the ports. *)
  for id = 0 to n - 1 do
    if is_out_port problem id then begin
      let feeders =
        List.map (fun (e : Problem.edge) -> e.src) (Problem.preds problem id)
        |> List.sort_uniq compare
      in
      List.iter
        (fun a -> List.iter (fun b -> bump a b 6) feeders)
        feeders
    end
    else if is_in_port problem id then begin
      (* Consumers of the same delivered value share one copy slot. *)
      let by_value = Hashtbl.create 8 in
      List.iter
        (fun (e : Problem.edge) ->
          Hashtbl.replace by_value e.Problem.value
            (e.Problem.dst
            :: Option.value ~default:[] (Hashtbl.find_opt by_value e.Problem.value)))
        (Problem.succs problem id);
      Hashtbl.iter
        (fun _ consumers ->
          let consumers = List.sort_uniq compare consumers in
          List.iter
            (fun a -> List.iter (fun b -> bump a b 1) consumers)
            consumers)
        by_value
    end
  done;
  grow_regions ~n ~free ~affinity ~criticality:(Problem.height problem)
    ~capacity ()

let partition_ddg ddg ~members ~capacity =
  if capacity < 1 then
    invalid_arg "Regions.partition_ddg: capacity must be >= 1";
  let n = Ddg.size ddg in
  let free = Array.make n false in
  List.iter (fun g -> free.(g) <- true) members;
  let fanout = Array.make n 0 in
  Ddg.iter_edges (fun e -> fanout.(e.src) <- fanout.(e.src) + 1) ddg;
  let affinity = Hashtbl.create (4 * n) in
  Ddg.iter_edges
    (fun e ->
      if e.src <> e.dst && free.(e.src) && free.(e.dst) then begin
        let key = (min e.src e.dst, max e.src e.dst) in
        let w =
          if e.distance > 0 then 10
          else if fanout.(e.src) >= 6 then 1
          else max 2 (8 / (1 + fanout.(e.src)))
        in
        Hashtbl.replace affinity key
          (w + Option.value ~default:0 (Hashtbl.find_opt affinity key))
      end)
    ddg;
  let region =
    grow_regions ~n ~free ~affinity ~criticality:(Graph_algo.height ddg)
      ~capacity ()
  in
  fun g -> if g >= 0 && g < n then region.(g) else -1
