open Hca_ddg
open Hca_machine

type node = {
  id : int;
  demand : Resource.t;
  pinned : Pattern_graph.node_id option;
  global : Instr.id option;
  value : Instr.id;
  label : string;
}

type edge = {
  src : int;
  dst : int;
  value : Instr.id;
  latency : int;
  distance : int;
}

type t = {
  name : string;
  nodes : node array;
  edges : edge array;
  succs : edge list array;
  preds : edge list array;
  pg : Pattern_graph.t;
  max_in_ports : int;
  scc : int array;  (* recurrence-circuit id per node, -1 when trivial *)
}

(* Iterative Tarjan over the full edge set (loop-carried included):
   only the circuits matter, so trivial components collapse to -1. *)
let compute_sccs ~n ~succs ~edges =
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let next_index = ref 0 in
  let comp = Array.make n (-1) in
  let next_comp = ref 0 in
  let succ_ids u = List.map (fun e -> e.dst) succs.(u) in
  let strongconnect v =
    let work = ref [ (v, succ_ids v) ] in
    index.(v) <- !next_index;
    lowlink.(v) <- !next_index;
    incr next_index;
    stack := v :: !stack;
    on_stack.(v) <- true;
    while !work <> [] do
      match !work with
      | [] -> ()
      | (u, ws) :: rest -> (
          match ws with
          | [] ->
              work := rest;
              (match rest with
              | (p, _) :: _ -> lowlink.(p) <- min lowlink.(p) lowlink.(u)
              | [] -> ());
              if lowlink.(u) = index.(u) then begin
                let members = ref [] in
                let stop = ref false in
                while not !stop do
                  match !stack with
                  | [] -> stop := true
                  | w :: tl ->
                      stack := tl;
                      on_stack.(w) <- false;
                      members := w :: !members;
                      if w = u then stop := true
                done;
                let id = !next_comp in
                incr next_comp;
                List.iter (fun w -> comp.(w) <- id) !members
              end
          | w :: ws' ->
              work := (u, ws') :: rest;
              if index.(w) = -1 then begin
                index.(w) <- !next_index;
                lowlink.(w) <- !next_index;
                incr next_index;
                stack := w :: !stack;
                on_stack.(w) <- true;
                work := (w, succ_ids w) :: !work
              end
              else if on_stack.(w) then
                lowlink.(u) <- min lowlink.(u) index.(w))
    done
  in
  for v = 0 to n - 1 do
    if index.(v) = -1 then strongconnect v
  done;
  (* Demote the trivial components: size one without a self loop. *)
  let size = Array.make !next_comp 0 in
  Array.iter (fun c -> size.(c) <- size.(c) + 1) comp;
  let has_self = Array.make n false in
  Array.iter (fun e -> if e.src = e.dst then has_self.(e.src) <- true) edges;
  Array.mapi
    (fun v c -> if size.(c) > 1 || has_self.(v) then c else -1)
    comp

let finish ~name ~nodes ~edges ~pg ~max_in_ports =
  let nodes = Array.of_list (List.rev nodes) in
  let edges = Array.of_list (List.rev edges) in
  let n = Array.length nodes in
  let succs = Array.make n [] in
  let preds = Array.make n [] in
  Array.iter
    (fun e ->
      succs.(e.src) <- e :: succs.(e.src);
      preds.(e.dst) <- e :: preds.(e.dst))
    edges;
  Array.iteri (fun i l -> succs.(i) <- List.rev l) succs;
  Array.iteri (fun i l -> preds.(i) <- List.rev l) preds;
  let scc = compute_sccs ~n ~succs ~edges in
  { name; nodes; edges; succs; preds; pg; max_in_ports; scc }

let instr_node ~id (i : Instr.t) =
  {
    id;
    demand = Resource.of_unit_class (Opcode.unit_class i.opcode);
    pinned = None;
    global = Some i.id;
    value = i.id;
    label = i.name;
  }

let of_ddg ~name ~ddg ~pg ?(max_in_ports = max_int) () =
  if Pattern_graph.in_ports pg <> [] || Pattern_graph.out_ports pg <> [] then
    invalid_arg "Problem.of_ddg: PG must be port-free (use of_working_set)";
  let nodes =
    Array.to_list (Ddg.instrs ddg)
    |> List.rev_map (fun i -> instr_node ~id:i.Instr.id i)
  in
  let edges =
    Array.to_list (Ddg.edges ddg)
    |> List.rev_map (fun (e : Ddg.edge) ->
           {
             src = e.src;
             dst = e.dst;
             value = e.src;
             latency = e.latency;
             distance = e.distance;
           })
  in
  finish ~name ~nodes ~edges ~pg ~max_in_ports

let of_working_set ~name ~ddg ~ws ~pg ?(max_in_ports = max_int) () =
  let in_ws = Hashtbl.create (List.length ws) in
  List.iter (fun g -> Hashtbl.replace in_ws g ()) ws;
  let nodes = ref [] in
  let edges = ref [] in
  let next_id = ref 0 in
  let push_node mk =
    let id = !next_id in
    incr next_id;
    nodes := mk id :: !nodes;
    id
  in
  let push_edge e = edges := e :: !edges in
  (* Working-set instructions first, in global id order. *)
  let local_of_global = Hashtbl.create (List.length ws) in
  List.sort compare ws
  |> List.iter (fun g ->
         let i = Ddg.instr ddg g in
         let id = push_node (fun id -> instr_node ~id i) in
         Hashtbl.replace local_of_global g id);
  (* One pinned pseudo node per port.  [in_port_of] finds which input
     port delivers a given global value. *)
  let in_port_nodes = ref [] in
  List.iter
    (fun (pnd : Pattern_graph.node) ->
      let values = Pattern_graph.port_values pnd in
      let id =
        push_node (fun id ->
            {
              id;
              demand = Resource.zero;
              pinned = Some pnd.id;
              global = None;
              value = -1;
              label = Printf.sprintf "in@%d" pnd.id;
            })
      in
      in_port_nodes := (id, values) :: !in_port_nodes)
    (Pattern_graph.in_ports pg);
  let in_port_nodes = List.rev !in_port_nodes in
  let in_port_of v =
    List.find_opt (fun (_, values) -> List.mem v values) in_port_nodes
    |> Option.map fst
  in
  let out_port_nodes = ref [] in
  List.iter
    (fun (pnd : Pattern_graph.node) ->
      let values = Pattern_graph.port_values pnd in
      let id =
        push_node (fun id ->
            {
              id;
              demand = Resource.zero;
              pinned = Some pnd.id;
              global = None;
              value = -1;
              label = Printf.sprintf "out@%d" pnd.id;
            })
      in
      out_port_nodes := (id, values) :: !out_port_nodes)
    (Pattern_graph.out_ports pg);
  let out_port_nodes = List.rev !out_port_nodes in
  let error = ref None in
  let fail msg = if !error = None then error := Some msg in
  (* Internal and inbound dependences. *)
  Ddg.iter_edges
    (fun (e : Ddg.edge) ->
      let src_in = Hashtbl.mem in_ws e.src
      and dst_in = Hashtbl.mem in_ws e.dst in
      if dst_in then
        let dst = Hashtbl.find local_of_global e.dst in
        if src_in then
          push_edge
            {
              src = Hashtbl.find local_of_global e.src;
              dst;
              value = e.src;
              latency = e.latency;
              distance = e.distance;
            }
        else
          match in_port_of e.src with
          | Some port ->
              push_edge
                {
                  src = port;
                  dst;
                  value = e.src;
                  latency = e.latency;
                  distance = e.distance;
                }
          | None ->
              fail
                (Printf.sprintf
                   "value %%%d consumed by %%%d is on no input port" e.src
                   e.dst))
    ddg;
  (* Outbound values and pass-throughs.  A forward node is created once
     per (value, output port) pair that lacks a local producer. *)
  List.iter
    (fun (port, values) ->
      List.iter
        (fun v ->
          match Hashtbl.find_opt local_of_global v with
          | Some producer ->
              push_edge
                {
                  src = producer;
                  dst = port;
                  value = v;
                  latency = Opcode.latency (Ddg.instr ddg v).Instr.opcode;
                  distance = 0;
                }
          | None -> (
              match in_port_of v with
              | Some in_port ->
                  let fwd =
                    push_node (fun id ->
                        {
                          id;
                          demand = { Resource.alus = 1; ags = 0 };
                          pinned = None;
                          global = None;
                          value = v;
                          label = Printf.sprintf "fwd:%%%d" v;
                        })
                  in
                  push_edge
                    {
                      src = in_port;
                      dst = fwd;
                      value = v;
                      latency = Opcode.latency (Ddg.instr ddg v).Instr.opcode;
                      distance = 0;
                    };
                  push_edge
                    { src = fwd; dst = port; value = v; latency = 1; distance = 0 }
              | None ->
                  fail
                    (Printf.sprintf
                       "value %%%d owed to an output port has no producer \
                        nor input port"
                       v)))
        values)
    out_port_nodes;
  match !error with
  | Some msg -> Error (name ^ ": " ^ msg)
  | None -> Ok (finish ~name ~nodes:!nodes ~edges:!edges ~pg ~max_in_ports)

let name t = t.name

let size t = Array.length t.nodes

let node t id =
  if id < 0 || id >= size t then invalid_arg "Problem.node: bad id";
  t.nodes.(id)

let nodes t = t.nodes

let edges t = t.edges

let succs t id =
  if id < 0 || id >= size t then invalid_arg "Problem.succs: bad id";
  t.succs.(id)

let preds t id =
  if id < 0 || id >= size t then invalid_arg "Problem.preds: bad id";
  t.preds.(id)

let pg t = t.pg

let max_in_ports t = t.max_in_ports

let free_nodes t =
  Array.to_list t.nodes
  |> List.filter_map (fun n -> if n.pinned = None then Some n.id else None)

let forwards t =
  Array.to_list t.nodes
  |> List.filter (fun n -> n.pinned = None && n.global = None)

(* Longest path to a sink over distance-0 edges; the pseudo-node layer
   cannot create cycles (ports only source or only sink values). *)
let height t =
  let n = size t in
  let h = Array.make n 0 in
  let state = Array.make n 0 in
  let rec visit u =
    if state.(u) = 1 then
      (* Defensive: a malformed working set could smuggle a cycle in;
         treat the back edge as height 0 rather than looping. *)
      ()
    else if state.(u) = 0 then begin
      state.(u) <- 1;
      List.iter
        (fun e ->
          if e.distance = 0 then begin
            visit e.dst;
            h.(u) <- max h.(u) (e.latency + h.(e.dst))
          end)
        t.succs.(u);
      state.(u) <- 2
    end
  in
  for u = 0 to n - 1 do
    visit u
  done;
  h

let depth t =
  let n = size t in
  let d = Array.make n 0 in
  let state = Array.make n 0 in
  let rec visit u =
    if state.(u) = 1 then ()
    else if state.(u) = 0 then begin
      state.(u) <- 1;
      List.iter
        (fun e ->
          if e.distance = 0 then begin
            visit e.src;
            d.(u) <- max d.(u) (d.(e.src) + e.latency)
          end)
        t.preds.(u);
      state.(u) <- 2
    end
  in
  for u = 0 to n - 1 do
    visit u
  done;
  d

let scc_of t = t.scc

let total_demand t =
  Array.fold_left (fun acc n -> Resource.add acc n.demand) Resource.zero t.nodes

let pp ppf t =
  Format.fprintf ppf "@[<v>problem %s: %d nodes (%d free), %d edges on %s"
    t.name (size t)
    (List.length (free_nodes t))
    (Array.length t.edges) (Pattern_graph.name t.pg);
  Array.iter
    (fun n ->
      Format.fprintf ppf "@,  #%d %s %a%s" n.id n.label Resource.pp n.demand
        (match n.pinned with
        | Some c -> Printf.sprintf " pinned@%d" c
        | None -> ""))
    t.nodes;
  Format.fprintf ppf "@]"
