(** Tunables of the whole HCA pipeline: the SEE search shape (§3), the
    no-candidates action, and the initiation-interval search of the
    driver. *)

(** Order in which the SEE picks nodes from the priority list of
    unassigned ones. *)
type priority =
  | Affinity
      (** the default: a greedy balanced edge-affinity clustering
          (after Chu et al., PLDI'03) pre-groups the nodes into
          cluster-sized regions, and each region is presented to the
          search consecutively — so the copy cost naturally lands a
          whole region on one cluster instead of tearing it across the
          capacity boundary *)
  | Criticality  (** decreasing height (longest path to a sink) *)
  | Topological  (** producers before consumers *)
  | Source_order  (** DDG id order — the ablation strawman *)

type t = {
  beam_width : int;
      (** frontier size kept by the node filter (Fig. 5); 1 = greedy *)
  candidate_width : int;
      (** candidates kept per partial solution by the candidate filter *)
  priority : priority;
  weights : Cost.weights;
  enable_router : bool;
      (** no-candidates action: invoke the Route Allocator (Fig. 6 (b))
          instead of giving up on the partial solution *)
  max_route_hops : int;  (** detour length bound for the Route Allocator *)
  leaf_feed_fanin_cap : int;
      (** heuristic cap on the in-neighbours of each cluster at the
          level whose children are leaf quads: every distinct wire into
          a quad burns one of its 8 CN input slots, so the level above
          must stay well under its own MUX capacity [M] *)
  mapper_spread : bool;
      (** copy-distribution policy of the set levels: [true] spreads
          copies over all available wires to minimise per-wire pressure
          (the Fig. 9 policy), [false] (default) packs them onto as few
          wires as possible — every extra wire becomes an input port of
          a child subproblem and eats its in-neighbour budget.  The
          level feeding the leaf quads always packs. *)
  max_alternatives : int;
      (** inter-level backtracking width: how many of a subproblem's
          surviving beam states the driver may try when a child
          subproblem of the best one turns out infeasible *)
  ii_patience : int;
      (** after the first feasible II, how many further II values the
          driver explores looking for a smaller final MII *)
  max_ii : int;  (** absolute II search ceiling *)
}

val default : t

val greedy : t
(** [beam_width = 1, candidate_width = 1]: the cheapest configuration,
    used by ablations and by the flat-ICA baseline at scale. *)

val pp : Format.formatter -> t -> unit
