open Hca_ddg
open Hca_machine

(* Mixed-radix decomposition of an absolute CN index into per-level
   child indexes. *)
let digits fabric cn =
  let rec go cn level acc =
    if level < 0 then acc
    else
      let children = (Dspfabric.level_view fabric ~level).Dspfabric.children in
      go (cn / children) (level - 1) ((cn mod children) :: acc)
  in
  go cn (Dspfabric.depth fabric - 1) []

let prefix l n = List.filteri (fun i _ -> i < n) l

(* Does the recorded machine model physically carry [value] over the
   PG hop [src -> dst]?  Regular hops need a wire with the right owner,
   sink and payload; port hops need the matching pre-allocation. *)
let wire_confirms (sub : Hierarchy.subresult) ~src ~dst ~value =
  let pg = Problem.pg sub.Hierarchy.problem in
  let model = sub.Hierarchy.mapres.Mapper.model in
  let port_label id =
    match (Pattern_graph.node pg id).Pattern_graph.kind with
    | Pattern_graph.In_port { wire; _ } | Pattern_graph.Out_port { wire; _ } ->
        Some wire
    | Pattern_graph.Regular -> None
  in
  match (Pattern_graph.is_regular pg src, Pattern_graph.is_regular pg dst) with
  | true, true ->
      List.exists
        (fun w ->
          List.mem dst (Machine_model.wire_sinks model w)
          && List.mem value (Machine_model.wire_values model w))
        (Machine_model.used_out_wires model src)
  | false, true -> (
      match port_label src with
      | Some label ->
          List.mem label (Machine_model.external_ins model dst)
          && List.mem value
               (Pattern_graph.port_values (Pattern_graph.node pg src))
      | None -> false)
  | true, false -> (
      match port_label dst with
      | Some label ->
          List.exists
            (fun (l, w) ->
              l = label && List.mem value (Machine_model.wire_values model w))
            (Machine_model.external_outs model src)
      | None -> false)
  | false, false -> false

(* Breadth-first reachability over the flow arcs that carry [value] and
   are confirmed by the wires. *)
let value_reaches (sub : Hierarchy.subresult) ~value ~start ~goal =
  let flow = State.flow sub.Hierarchy.state in
  let pg = Copy_flow.pg flow in
  let n = Pattern_graph.size pg in
  let seen = Array.make n false in
  let q = Queue.create () in
  List.iter
    (fun s ->
      if not seen.(s) then begin
        seen.(s) <- true;
        Queue.push s q
      end)
    start;
  let found = ref (List.exists goal start) in
  while (not !found) && not (Queue.is_empty q) do
    let x = Queue.pop q in
    List.iter
      (fun y ->
        if
          (not seen.(y))
          && List.mem value (Copy_flow.copies flow ~src:x ~dst:y)
          && wire_confirms sub ~src:x ~dst:y ~value
        then
          if goal y then found := true
          else begin
            seen.(y) <- true;
            Queue.push y q
          end)
      (Copy_flow.real_out_neighbors flow x)
  done;
  !found

let in_ports_holding pg value =
  Pattern_graph.in_ports pg
  |> List.filter_map (fun (nd : Pattern_graph.node) ->
         if List.mem value (Pattern_graph.port_values nd) then Some nd.id
         else None)

let check_edge t (e : Ddg.edge) =
  let fabric = t.Hierarchy.fabric in
  let cn_u = t.Hierarchy.cn_of_instr.(e.src)
  and cn_v = t.Hierarchy.cn_of_instr.(e.dst) in
  if cn_u = cn_v then []
  else begin
    let du = digits fabric cn_u and dv = digits fabric cn_v in
    let depth = Dspfabric.depth fabric in
    let rec lca_len i =
      if i >= depth then i
      else if List.nth du i = List.nth dv i then lca_len (i + 1)
      else i
    in
    let lca = lca_len 0 in
    let value = e.src in
    let errors = ref [] in
    let fail path msg =
      errors :=
        Printf.sprintf "edge %%%d->%%%d (cn %d->%d) at [%s]: %s" e.src e.dst
          cn_u cn_v
          (String.concat "," (List.map string_of_int path))
          msg
        :: !errors
    in
    let sub_at path =
      match Hierarchy.leaf_of_path t path with
      | Some sub -> Some sub
      | None ->
          fail path "subproblem missing";
          None
    in
    (* Ascend on the producer's side: the value must exit each nested
       level between the producer's leaf and the LCA. *)
    for i = depth - 1 downto lca + 1 do
      let path = prefix du i in
      match sub_at path with
      | None -> ()
      | Some sub ->
          let pg = Problem.pg sub.Hierarchy.problem in
          let outs =
            Pattern_graph.out_ports pg
            |> List.filter_map (fun (nd : Pattern_graph.node) ->
                   if List.mem value (Pattern_graph.port_values nd) then
                     Some nd.id
                   else None)
          in
          if outs = [] then fail path "value owed upwards on no output port"
          else if
            not
              (value_reaches sub ~value
                 ~start:[ List.nth du i ]
                 ~goal:(fun y -> List.mem y outs))
          then fail path "value does not reach its output port"
    done;
    (* Sideways at the LCA. *)
    (match sub_at (prefix du lca) with
    | None -> ()
    | Some sub ->
        if
          not
            (value_reaches sub ~value
               ~start:[ List.nth du lca ]
               ~goal:(fun y -> y = List.nth dv lca))
        then fail (prefix du lca) "no path between the two cluster sets")
    ;
    (* Descend on the consumer's side. *)
    for i = lca + 1 to depth - 1 do
      let path = prefix dv i in
      match sub_at path with
      | None -> ()
      | Some sub ->
          let pg = Problem.pg sub.Hierarchy.problem in
          let ins = in_ports_holding pg value in
          if ins = [] then fail path "value enters on no input port"
          else if
            not
              (value_reaches sub ~value ~start:ins ~goal:(fun y ->
                   y = List.nth dv i))
          then fail path "value does not reach the consumer's cluster set"
    done;
    !errors
  end

let check_models t =
  List.concat_map
    (fun (sub : Hierarchy.subresult) ->
      match Machine_model.validate sub.Hierarchy.mapres.Mapper.model with
      | Ok () -> []
      | Error m ->
          [
            Printf.sprintf "model at [%s]: %s"
              (String.concat "," (List.map string_of_int sub.Hierarchy.path))
              m;
          ])
    (Hierarchy.subresults t)

let check_out_ports t =
  List.concat_map
    (fun (sub : Hierarchy.subresult) ->
      let pg = Problem.pg sub.Hierarchy.problem in
      let flow = State.flow sub.Hierarchy.state in
      List.concat_map
        (fun (nd : Pattern_graph.node) ->
          let values = Pattern_graph.port_values nd in
          if values = [] then []
          else
            match Copy_flow.real_in_neighbors flow nd.id with
            | [ src ] ->
                List.filter_map
                  (fun v ->
                    if
                      List.mem v (Copy_flow.copies flow ~src ~dst:nd.id)
                      && wire_confirms sub ~src ~dst:nd.id ~value:v
                    then None
                    else
                      Some
                        (Printf.sprintf "out port %d at [%s]: value %%%d missing"
                           nd.id
                           (String.concat ","
                              (List.map string_of_int sub.Hierarchy.path))
                           v))
                  values
            | [] ->
                [
                  Printf.sprintf "out port %d at [%s]: no source" nd.id
                    (String.concat ","
                       (List.map string_of_int sub.Hierarchy.path));
                ]
            | _ :: _ :: _ ->
                [
                  Printf.sprintf "out port %d at [%s]: several sources" nd.id
                    (String.concat ","
                       (List.map string_of_int sub.Hierarchy.path));
                ])
        (Pattern_graph.out_ports pg))
    (Hierarchy.subresults t)

let check t =
  let placement_errors =
    let total = Dspfabric.total_cns t.Hierarchy.fabric in
    Array.to_list t.Hierarchy.cn_of_instr
    |> List.mapi (fun g cn -> (g, cn))
    |> List.filter_map (fun (g, cn) ->
           if cn < 0 || cn >= total then
             Some (Printf.sprintf "instruction %%%d has no valid CN" g)
           else None)
  in
  let edge_errors =
    Array.to_list (Ddg.edges t.Hierarchy.ddg)
    |> List.concat_map (fun e -> check_edge t e)
  in
  let errors =
    placement_errors @ check_models t @ check_out_ports t @ edge_errors
  in
  match errors with [] -> Ok () | es -> Error es

let is_legal t = match check t with Ok () -> true | Error _ -> false
