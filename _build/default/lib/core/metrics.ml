open Hca_ddg
open Hca_machine

type t = {
  rec_mii : int;
  res_mii : int;
  ini_mii : int;
  max_cls_mii : int;
  wire_mii : int;
  final_mii : int;
  copies : int;
  forwards : int;
  max_wire_load : int;
}

let of_result (r : Hierarchy.t) =
  let rec_mii = Mii.rec_mii r.Hierarchy.ddg in
  let res_mii = Mii.res_mii r.Hierarchy.ddg (Dspfabric.resources r.Hierarchy.fabric) in
  let ini_mii = max rec_mii res_mii in
  let cns = Dspfabric.total_cns r.Hierarchy.fabric in
  let max_cls_mii = ref 1 in
  for cn = 0 to cns - 1 do
    let load = Hierarchy.cn_count r cn + Hierarchy.recv_count r cn in
    if load > !max_cls_mii then max_cls_mii := load
  done;
  let subs = Hierarchy.subresults r in
  let max_wire_load =
    List.fold_left
      (fun acc (s : Hierarchy.subresult) ->
        max acc s.Hierarchy.mapres.Mapper.max_wire_load)
      0 subs
  in
  let copies =
    List.fold_left
      (fun acc (s : Hierarchy.subresult) ->
        acc + Copy_flow.copy_count (State.flow s.Hierarchy.state))
      0 subs
  in
  let wire_mii = max 1 max_wire_load in
  {
    rec_mii;
    res_mii;
    ini_mii;
    max_cls_mii = !max_cls_mii;
    wire_mii;
    final_mii = max ini_mii (max !max_cls_mii wire_mii);
    copies;
    forwards = List.length r.Hierarchy.forwards;
    max_wire_load;
  }

let pp ppf t =
  Format.fprintf ppf
    "rec=%d res=%d ini=%d cls=%d wire=%d final=%d copies=%d forwards=%d"
    t.rec_mii t.res_mii t.ini_mii t.max_cls_mii t.wire_mii t.final_mii t.copies
    t.forwards
