open Hca_ddg
open Hca_machine

type t = {
  rcp : Rcp.t;
  ddg : Ddg.t;
  ii : int;
  state : State.t;
  topology : (int * int) list;
  projected_mii : int;
  copies : int;
  explored : int;
}

let solve ?(config = Config.default) rcp ddg =
  let pg = Rcp.pattern_graph rcp in
  let problem = Problem.of_ddg ~name:(Ddg.name ddg ^ ".rcp") ~ddg ~pg () in
  let lower = Mii.rec_mii ddg in
  let limit = (4 * Ddg.size ddg) + 16 in
  let explored = ref 0 in
  let rec climb ii last_error =
    if ii > limit then
      Error
        (Option.value last_error
           ~default:(Printf.sprintf "no assignment up to II=%d" limit))
    else
      match See.solve ~config problem ~ii with
      | Error e ->
          incr explored;
          climb (ii + 1) (Some e)
      | Ok outcome ->
          explored := !explored + outcome.See.explored;
          let state = outcome.See.state in
          let flow = State.flow state in
          let topology =
            List.map (fun (src, dst, _) -> (src, dst)) (Copy_flow.arcs flow)
          in
          let summary = State.summary state ~ii in
          Ok
            {
              rcp;
              ddg;
              ii;
              state;
              topology;
              projected_mii = summary.Cost.projected_ii;
              copies = summary.Cost.copies;
              explored = !explored;
            }
  in
  climb lower None

let validate t =
  let errors = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
  (* Topology feasibility: ring links only, within the port budget. *)
  let in_degree = Array.make (Rcp.clusters t.rcp) 0 in
  List.iter
    (fun (src, dst) ->
      if not (List.mem src (Rcp.potential_sources t.rcp dst)) then
        fail "link %d->%d is not a ring connection" src dst;
      in_degree.(dst) <- in_degree.(dst) + 1)
    t.topology;
  Array.iteri
    (fun c d ->
      if d > Rcp.in_ports t.rcp then
        fail "cluster %d uses %d input ports (limit %d)" c d
          (Rcp.in_ports t.rcp))
    in_degree;
  (* Heterogeneity: memory instructions only on memory clusters. *)
  Array.iter
    (fun (i : Instr.t) ->
      if Opcode.unit_class i.opcode = Opcode.Ag then
        match State.placement t.state i.id with
        | Some c when not (Rcp.is_memory_cluster t.rcp c) ->
            fail "memory instruction %%%d on non-memory cluster %d" i.id c
        | Some _ -> ()
        | None -> fail "instruction %%%d unplaced" i.id)
    (Ddg.instrs t.ddg);
  (* Every inter-cluster dependence rides a configured link (possibly
     through Route-Allocator detours, i.e. a path of links carrying the
     value). *)
  let flow = State.flow t.state in
  Ddg.iter_edges
    (fun (e : Ddg.edge) ->
      match (State.placement t.state e.src, State.placement t.state e.dst) with
      | Some a, Some b when a <> b ->
          let n = Rcp.clusters t.rcp in
          let seen = Array.make n false in
          let q = Queue.create () in
          seen.(a) <- true;
          Queue.push a q;
          let found = ref false in
          while (not !found) && not (Queue.is_empty q) do
            let x = Queue.pop q in
            List.iter
              (fun y ->
                if
                  (not !found) && y < n && (not seen.(y))
                  && List.mem e.src (Copy_flow.copies flow ~src:x ~dst:y)
                then
                  if y = b then found := true
                  else begin
                    seen.(y) <- true;
                    Queue.push y q
                  end)
              (Copy_flow.real_out_neighbors flow x)
          done;
          if not !found then
            fail "dependence %%%d->%%%d has no configured path (%d->%d)" e.src
              e.dst a b
      | Some _, Some _ -> ()
      | _ -> fail "edge %%%d->%%%d not fully placed" e.src e.dst)
    t.ddg;
  match !errors with [] -> Ok () | es -> Error (List.rev es)

let pp ppf t =
  Format.fprintf ppf
    "@[<v>%s on %s: II=%d, projected MII=%d, %d copies over %d links@,links:"
    (Ddg.name t.ddg) (Rcp.name t.rcp) t.ii t.projected_mii t.copies
    (List.length t.topology);
  List.iter (fun (a, b) -> Format.fprintf ppf " %d->%d" a b) t.topology;
  Format.fprintf ppf "@]"
