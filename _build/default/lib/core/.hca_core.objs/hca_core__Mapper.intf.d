lib/core/mapper.mli: Format Hca_ddg Hca_machine Ili Machine_model Problem State Stdlib
