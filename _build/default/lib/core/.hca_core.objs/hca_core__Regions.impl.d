lib/core/regions.ml: Array Ddg Graph_algo Hashtbl Hca_ddg List Option Problem
