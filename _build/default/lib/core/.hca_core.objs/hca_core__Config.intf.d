lib/core/config.mli: Cost Format
