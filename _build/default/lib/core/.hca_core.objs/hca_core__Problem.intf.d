lib/core/problem.mli: Ddg Format Hca_ddg Hca_machine Instr Pattern_graph Resource
