lib/core/router.mli: Cost Hca_ddg Hca_machine Pattern_graph State
