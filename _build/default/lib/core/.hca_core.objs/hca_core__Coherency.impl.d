lib/core/coherency.ml: Array Copy_flow Ddg Dspfabric Hca_ddg Hca_machine Hierarchy List Machine_model Mapper Pattern_graph Printf Problem Queue State String
