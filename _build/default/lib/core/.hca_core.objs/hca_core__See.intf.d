lib/core/see.mli: Config Hca_machine Problem State
