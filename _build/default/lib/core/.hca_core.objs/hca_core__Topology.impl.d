lib/core/topology.ml: Buffer Ddg Dspfabric Format Hca_ddg Hca_machine Hierarchy Instr List Machine_model Mapper Printf String
