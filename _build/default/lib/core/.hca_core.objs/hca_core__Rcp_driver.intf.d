lib/core/rcp_driver.mli: Config Ddg Format Hca_ddg Hca_machine Rcp State
