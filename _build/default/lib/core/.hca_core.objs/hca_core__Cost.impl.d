lib/core/cost.ml: Format Hca_machine Resource
