lib/core/cost.mli: Format Hca_machine
