lib/core/portfolio.ml: Config Cost List Report
