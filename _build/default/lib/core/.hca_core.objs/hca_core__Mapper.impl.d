lib/core/mapper.ml: Array Copy_flow Format Hashtbl Hca_ddg Hca_machine Ili List Machine_model Option Pattern_graph Printf Problem Result State String
