lib/core/postprocess.ml: Array Ddg Dspfabric Hashtbl Hca_ddg Hca_machine Hca_util Hierarchy Instr List Opcode Printf String
