lib/core/topology.mli: Format Hca_ddg Hierarchy Instr
