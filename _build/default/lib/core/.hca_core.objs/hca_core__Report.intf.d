lib/core/report.mli: Config Ddg Dspfabric Format Hca_ddg Hca_machine Hierarchy
