lib/core/state.ml: Array Copy_flow Cost Format Hca_ddg Hca_machine Instr List Pattern_graph Printf Problem Resource
