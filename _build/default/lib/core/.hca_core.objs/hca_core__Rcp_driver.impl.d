lib/core/rcp_driver.ml: Array Config Copy_flow Cost Ddg Format Hca_ddg Hca_machine Instr List Mii Opcode Option Printf Problem Queue Rcp See State
