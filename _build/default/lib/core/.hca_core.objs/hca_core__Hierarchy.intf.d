lib/core/hierarchy.mli: Config Ddg Dspfabric Format Hca_ddg Hca_machine Instr Mapper Problem See State
