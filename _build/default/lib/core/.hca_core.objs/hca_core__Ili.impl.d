lib/core/ili.ml: Format Hca_ddg Instr List String
