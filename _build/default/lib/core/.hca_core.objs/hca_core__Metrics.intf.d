lib/core/metrics.mli: Format Hierarchy
