lib/core/regions.mli: Hca_ddg Problem
