lib/core/hierarchy.ml: Array Config Copy_flow Ddg Dspfabric Format Hashtbl Hca_ddg Hca_machine Ili Instr List Mapper Option Pattern_graph Printf Problem Regions Resource Result See State String
