lib/core/ili.mli: Format Hca_ddg Instr
