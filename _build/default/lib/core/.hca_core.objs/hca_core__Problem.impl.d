lib/core/problem.ml: Array Ddg Format Hashtbl Hca_ddg Hca_machine Instr List Opcode Option Pattern_graph Printf Resource
