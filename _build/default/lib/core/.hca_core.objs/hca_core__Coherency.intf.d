lib/core/coherency.mli: Hierarchy
