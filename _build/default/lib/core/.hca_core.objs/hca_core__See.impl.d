lib/core/see.ml: Array Config Cost Hashtbl Hca_machine List Option Printf Problem Regions Router State String
