lib/core/state.mli: Copy_flow Cost Format Hca_ddg Hca_machine Instr Pattern_graph Problem Resource
