lib/core/postprocess.mli: Ddg Hca_ddg Hierarchy
