lib/core/report.ml: Coherency Config Ddg Dspfabric Format Hca_ddg Hca_machine Hierarchy Metrics Mii Sys
