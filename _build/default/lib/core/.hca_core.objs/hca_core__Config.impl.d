lib/core/config.ml: Cost Format
