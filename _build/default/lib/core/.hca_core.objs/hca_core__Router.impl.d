lib/core/router.ml: Array Copy_flow Hca_machine List Pattern_graph Queue Resource State
