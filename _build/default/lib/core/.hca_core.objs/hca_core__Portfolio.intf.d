lib/core/portfolio.mli: Config Ddg Dspfabric Hca_ddg Hca_machine Report
