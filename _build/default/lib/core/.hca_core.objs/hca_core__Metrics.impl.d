lib/core/metrics.ml: Copy_flow Dspfabric Format Hca_ddg Hca_machine Hierarchy List Mapper Mii State
