(** One single-level cluster-assignment subproblem (§4.1).

    A subproblem is fully described by a DDG, a Working Set, a
    constrained PG and an Inter-Level Interface.  This module folds the
    four into one search-ready graph:

    - every Working-Set instruction becomes a local node carrying its
      resource demand;
    - every PG input/output port becomes a *pinned* pseudo node with
      zero demand, pre-assigned to its special PG node;
    - values crossing the boundary become edges from input-port nodes /
      to output-port nodes, labelled with the *global* producing
      instruction so the copy flow always speaks in global value ids;
    - a value owed to an output port but not produced in the Working
      Set is a pass-through: a fresh *forward* node (one ALU slot — the
      move a cluster spends re-emitting the value) is synthesised
      between the input port holding the value and the output port.

    The same representation also hosts a whole-DDG, port-free problem
    (level 0, the RCP, and the flat-ICA baseline). *)

open Hca_ddg
open Hca_machine

type node = {
  id : int;
  demand : Resource.t;  (** zero for pinned port nodes *)
  pinned : Pattern_graph.node_id option;
  global : Instr.id option;
      (** original instruction; [None] for ports and forwards *)
  value : Instr.id;
      (** the global value this node produces / stands for; for a
          Working-Set node this is its own global id, for a forward
          node the forwarded value, for ports [-1] (ports hold many) *)
  label : string;
}

type edge = {
  src : int;
  dst : int;
  value : Instr.id;  (** global id of the flowing value *)
  latency : int;
  distance : int;
}

type t

(** {1 Construction} *)

val of_ddg :
  name:string -> ddg:Ddg.t -> pg:Pattern_graph.t -> ?max_in_ports:int -> unit -> t
(** Whole-graph problem over a port-free PG. *)

val of_working_set :
  name:string ->
  ddg:Ddg.t ->
  ws:Instr.id list ->
  pg:Pattern_graph.t ->
  ?max_in_ports:int ->
  unit ->
  (t, string) result
(** [pg] must already carry the ILI ports ({!Pattern_graph.with_ports}).
    Fails when a boundary value is not available on any input port or
    owed by an output port without a local producer or pass-through
    source — i.e. when the father broke inter-level coherence. *)

(** {1 Accessors} *)

val name : t -> string

val size : t -> int

val node : t -> int -> node

val nodes : t -> node array

val edges : t -> edge array

val succs : t -> int -> edge list

val preds : t -> int -> edge list

val pg : t -> Pattern_graph.t

val max_in_ports : t -> int

val free_nodes : t -> int list
(** Nodes the SEE must place (not pinned), in id order. *)

val forwards : t -> node list
(** The synthesised pass-through nodes. *)

val height : t -> int array
(** Longest latency-weighted intra-iteration path to any sink, the
    criticality key of the priority list. *)

val depth : t -> int array
(** Longest latency-weighted intra-iteration path from any source: the
    ASAP issue cycle, used by the topological priority order. *)

val scc_of : t -> int array
(** Recurrence-circuit membership: nodes in the same non-trivial
    strongly connected component (over all edges, loop-carried included)
    share an id; nodes on no circuit get [-1].  Cutting {e any} edge of
    a circuit across clusters stretches MIIRec by the copy latency, so
    both the cost function and the region clustering treat circuit
    edges as high-affinity. *)

val total_demand : t -> Resource.t

val pp : Format.formatter -> t -> unit
