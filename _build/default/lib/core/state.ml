open Hca_ddg
open Hca_machine

type t = {
  problem : Problem.t;
  place : int array;  (* problem node -> PG node, -1 when unassigned *)
  flow : Copy_flow.t;
  dem : Resource.t array;  (* per PG node *)
  mutable fwds : (Instr.id * Pattern_graph.node_id) list;
  mutable carried_cuts : int;
  mutable cost_v : float;
  mutable extra_cost : float;
  mutable assigned : int;
}

let create ?(backbone = []) problem =
  let pg = Problem.pg problem in
  let n = Problem.size problem in
  let place = Array.make n (-1) in
  let assigned = ref 0 in
  Array.iter
    (fun (nd : Problem.node) ->
      match nd.pinned with
      | Some c ->
          place.(nd.id) <- c;
          incr assigned
      | None -> ())
    (Problem.nodes problem);
  let flow = Copy_flow.create ~max_in_ports:(Problem.max_in_ports problem) pg in
  List.iter (fun (src, dst) -> Copy_flow.reserve_neighbor flow ~src ~dst) backbone;
  {
    problem;
    place;
    flow;
    dem = Array.make (Pattern_graph.size pg) Resource.zero;
    fwds = [];
    carried_cuts = 0;
    cost_v = 0.0;
    extra_cost = 0.0;
    assigned = !assigned;
  }

let problem t = t.problem

let clone t =
  {
    t with
    place = Array.copy t.place;
    flow = Copy_flow.clone t.flow;
    dem = Array.copy t.dem;
  }

let placement t id = if t.place.(id) < 0 then None else Some t.place.(id)

let is_complete t = t.assigned = Problem.size t.problem

let assigned_count t = t.assigned

let flow t = t.flow

let demand t c = t.dem.(c)

let cluster_nodes t c =
  let acc = ref [] in
  for id = Array.length t.place - 1 downto 0 do
    if t.place.(id) = c then acc := id :: !acc
  done;
  !acc

let forwards t = t.fwds

let summary t ~ii =
  let pg = Problem.pg t.problem in
  let regs = Pattern_graph.regular_nodes pg in
  let max_util = ref 0.0 and min_util = ref infinity in
  let projected = ref 1 in
  let fanin_sat = ref 0.0 in
  List.iter
    (fun (nd : Pattern_graph.node) ->
      let cap = nd.capacity in
      let d = t.dem.(nd.id) in
      let slots = cap.Resource.alus + cap.Resource.ags in
      if slots > 0 then begin
        let used = d.Resource.alus + d.Resource.ags in
        let util = float_of_int used /. float_of_int (slots * ii) in
        if util > !max_util then max_util := util;
        if util < !min_util then min_util := util
      end;
      let in_p = Copy_flow.in_pressure t.flow nd.id in
      projected :=
        max !projected
          (Cost.cluster_mii ~demand:d ~capacity:cap ~receives:in_p
             ~max_in:(Pattern_graph.max_in pg));
      let sat =
        float_of_int (List.length (Copy_flow.real_in_neighbors t.flow nd.id))
        /. float_of_int (Pattern_graph.max_in pg)
      in
      fanin_sat := !fanin_sat +. (sat *. sat))
    regs;
  let min_util = if !min_util = infinity then 0.0 else !min_util in
  {
    Cost.copies = Copy_flow.copy_count t.flow;
    max_util = !max_util;
    util_spread = !max_util -. min_util;
    projected_ii = !projected;
    target_ii = ii;
    used_in_ports = List.length (Copy_flow.used_in_ports t.flow);
    fanin_sat = !fanin_sat;
    carried_cuts = t.carried_cuts;
  }

let cost t = t.cost_v +. t.extra_cost

let add_penalty t p = t.extra_cost <- t.extra_cost +. p

let free_issue_slots t ~cluster ~ii =
  let cap = (Pattern_graph.node (Problem.pg t.problem) cluster).capacity in
  let d = t.dem.(cluster) in
  (Resource.issue_slots cap * ii) - (d.Resource.alus + d.Resource.ags)

let recompute_cost t ~target_ii ~weights =
  t.cost_v <- Cost.score weights (summary t ~ii:target_ii)

let same_circuit t a b =
  let scc = Problem.scc_of t.problem in
  scc.(a) >= 0 && scc.(a) = scc.(b)

let try_assign t ~node ~cluster ~ii ~target_ii ~weights =
  let nd = Problem.node t.problem node in
  if t.place.(node) >= 0 then Error "node already assigned"
  else if not (Pattern_graph.is_regular (Problem.pg t.problem) cluster) then
    Error "target is not a regular cluster"
  else
    let capacity = (Pattern_graph.node (Problem.pg t.problem) cluster).capacity in
    let demand' = Resource.add t.dem.(cluster) nd.demand in
    if not (Resource.fits ~demand:demand' ~capacity ~ii) then
      Error "resource table exhausted under target II"
    else begin
      let t' = clone t in
      t'.place.(node) <- cluster;
      t'.dem.(cluster) <- demand';
      t'.assigned <- t'.assigned + 1;
      let route ~src ~dst ~carried value =
        if src = dst then Ok ()
        else if Copy_flow.can_add t'.flow ~src ~dst then begin
          Copy_flow.add_copy t'.flow ~src ~dst value;
          if carried then t'.carried_cuts <- t'.carried_cuts + 1;
          Ok ()
        end
        else Error (Printf.sprintf "no communication pattern %d->%d" src dst)
      in
      let exception Blocked of string in
      try
        List.iter
          (fun (e : Problem.edge) ->
            let s = t'.place.(e.src) in
            if s >= 0 then
              match
                route ~src:s ~dst:cluster
                  ~carried:(e.distance > 0 || same_circuit t e.src e.dst)
                  e.value
              with
              | Ok () -> ()
              | Error m -> raise (Blocked m))
          (Problem.preds t.problem node);
        List.iter
          (fun (e : Problem.edge) ->
            let d = t'.place.(e.dst) in
            if d >= 0 then
              match
                route ~src:cluster ~dst:d
                  ~carried:(e.distance > 0 || same_circuit t e.src e.dst)
                  e.value
              with
              | Ok () -> ()
              | Error m -> raise (Blocked m))
          (Problem.succs t.problem node);
        recompute_cost t' ~target_ii ~weights;
        Ok t'
      with Blocked m -> Error m
    end

let force_assign t ~node ~cluster ~ii =
  let nd = Problem.node t.problem node in
  if t.place.(node) >= 0 then Error "node already assigned"
  else if not (Pattern_graph.is_regular (Problem.pg t.problem) cluster) then
    Error "target is not a regular cluster"
  else
    let capacity = (Pattern_graph.node (Problem.pg t.problem) cluster).capacity in
    let demand' = Resource.add t.dem.(cluster) nd.demand in
    if not (Resource.fits ~demand:demand' ~capacity ~ii) then
      Error "resource table exhausted under target II"
    else begin
      let t' = clone t in
      t'.place.(node) <- cluster;
      t'.dem.(cluster) <- demand';
      t'.assigned <- t'.assigned + 1;
      let blocked = ref [] in
      let route ~src ~dst ~carried value =
        if src <> dst then
          if Copy_flow.can_add t'.flow ~src ~dst then begin
            Copy_flow.add_copy t'.flow ~src ~dst value;
            if carried then t'.carried_cuts <- t'.carried_cuts + 1
          end
          else blocked := (value, src, dst) :: !blocked
      in
      List.iter
        (fun (e : Problem.edge) ->
          let s = t'.place.(e.src) in
          if s >= 0 then
            route ~src:s ~dst:cluster
              ~carried:(e.distance > 0 || same_circuit t e.src e.dst)
              e.value)
        (Problem.preds t.problem node);
      List.iter
        (fun (e : Problem.edge) ->
          let d = t'.place.(e.dst) in
          if d >= 0 then
            route ~src:cluster ~dst:d
              ~carried:(e.distance > 0 || same_circuit t e.src e.dst)
              e.value)
        (Problem.succs t.problem node);
      Ok (t', List.rev !blocked)
    end

let add_forward t ~value ~via =
  t.dem.(via) <- Resource.add t.dem.(via) { Resource.alus = 1; ags = 0 };
  t.fwds <- (value, via) :: t.fwds

let pp ppf t =
  Format.fprintf ppf "@[<v>state (%d/%d assigned, cost %.2f)" t.assigned
    (Problem.size t.problem) t.cost_v;
  Array.iteri
    (fun id c ->
      if c >= 0 then
        Format.fprintf ppf "@,  %s -> @%d"
          (Problem.node t.problem id).Problem.label c)
    t.place;
  Format.fprintf ppf "@]"
