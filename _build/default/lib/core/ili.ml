open Hca_ddg

type t = {
  inputs : (int * Instr.id list) list;
  outputs : (int * Instr.id list) list;
}

let empty = { inputs = []; outputs = [] }

let is_empty t = t.inputs = [] && t.outputs = []

let distinct_values wires =
  List.concat_map snd wires |> List.sort_uniq compare

let input_values t = distinct_values t.inputs

let output_values t = distinct_values t.outputs

let pp ppf t =
  let pp_side name wires =
    List.iter
      (fun (w, vs) ->
        Format.fprintf ppf "@,  %s w%d: [%s]" name w
          (String.concat "," (List.map string_of_int vs)))
      wires
  in
  Format.fprintf ppf "@[<v>ili:";
  pp_side "in" t.inputs;
  pp_side "out" t.outputs;
  Format.fprintf ppf "@]"
