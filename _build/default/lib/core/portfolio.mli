(** Portfolio search: the heuristic knobs of {!Config.t} interact with
    the kernel shape in ways no single setting wins everywhere (§7:
    "ongoing research aims at tuning of the heuristics and cost
    functions").  The portfolio runs the full pipeline under a small set
    of deliberately diverse configurations and keeps the best legal
    clusterisation — smaller final MII first, fewer copies as the
    tie-break. *)

open Hca_ddg
open Hca_machine

val default_configs : (string * Config.t) list
(** Diverse and cheap: default, wide beam, criticality order, spread
    wires, and copy-averse weights. *)

val run :
  ?configs:(string * Config.t) list -> Dspfabric.t -> Ddg.t -> Report.t * string
(** Best report plus the name of the winning configuration.  Falls back
    to the default configuration's report when nothing is legal. *)
