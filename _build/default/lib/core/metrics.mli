(** Quality metrics of a completed HCA pass, headed by the paper's main
    cost factor (§4.2):
    [final MII = max (iniMII, maxClsMII)], where [iniMII] is the MII of
    the kernel on the whole machine and [maxClsMII] folds in, per
    cluster, the resource MII plus the copy-pressure terms (receive
    primitives on the CN issue slot, values serialised on single
    wires). *)

type t = {
  rec_mii : int;  (** recurrence bound of the original DDG *)
  res_mii : int;  (** whole-machine resource bound *)
  ini_mii : int;  (** [max rec_mii res_mii] — the theoretical optimum of
                      an equivalent-issue-width unified machine *)
  max_cls_mii : int;
      (** heaviest CN: opcodes + forwards + receive primitives, all on
          the single issue slot *)
  wire_mii : int;  (** heaviest wire payload across every level *)
  final_mii : int;
  copies : int;  (** value hops summed over every level's flow *)
  forwards : int;
  max_wire_load : int;
}

val of_result : Hierarchy.t -> t

val pp : Format.formatter -> t -> unit
