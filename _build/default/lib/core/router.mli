(** The configurable Route Allocator (§3, Fig. 6).

    When the candidate filter leaves no cluster for the current node —
    every direct assignment would violate a communication constraint —
    the *no-candidates action* places the node on a convenient cluster
    anyway and routes the blocked values through intermediate clusters:
    each hop turns one cluster into a forwarder, spending one of its ALU
    issue slots on the re-emitting move and one communication pattern
    per arc. *)

open Hca_machine

val route_value :
  State.t ->
  value:Hca_ddg.Instr.id ->
  src:Pattern_graph.node_id ->
  dst:Pattern_graph.node_id ->
  ii:int ->
  max_hops:int ->
  bool
(** Find the shortest feasible detour [src -> x1 -> ... -> dst] over
    regular clusters (every arc addable in the current flow, every
    intermediate hop with a spare ALU slot under [ii]), commit its
    copies and forwards into the state, and report success.  The state
    is mutated only on success. *)

val assign_with_routing :
  State.t ->
  node:int ->
  cluster:Pattern_graph.node_id ->
  ii:int ->
  target_ii:int ->
  weights:Cost.weights ->
  max_hops:int ->
  (State.t, string) result
(** Like {!State.try_assign} but falls back to {!route_value} for every
    neighbour the direct arc cannot serve.  Returns the successor state
    (input state untouched). *)
