(** Region growing for the Affinity priority order: a greedy balanced
    clustering of a subproblem's free nodes into cluster-sized groups
    with high internal edge affinity (after the multilevel partitioning
    of Chu, Fan and Mahlke, PLDI'03, §6 of the paper).

    Regions only shape the {e order} in which the SEE visits nodes —
    the beam search still chooses the clusters — so there may be more
    regions than PG nodes; each is simply presented consecutively. *)

val partition : Problem.t -> capacity:int -> int array
(** [partition problem ~capacity] returns a region index per problem
    node ([-1] for pinned port nodes).  Each region holds at most
    [capacity] nodes.  Regions are numbered in discovery order, seeds
    being picked by decreasing criticality, so lower-numbered regions
    tend to hold the earlier/denser dataflow.

    Affinity between two free nodes counts their direct dependences,
    plus a strong bonus for feeding the same output port (they must end
    up on the same cluster: unary port fan-in) and a mild bonus for
    consuming the same input-port value (sharing one delivered copy). *)

val partition_ddg :
  Hca_ddg.Ddg.t ->
  members:Hca_ddg.Instr.id list ->
  capacity:int ->
  (Hca_ddg.Instr.id -> int)
(** Same region growing, directly on a set of global instructions: used
    by the Mapper to colour the values it puts on wires.  A wire's whole
    payload later funnels through a single downstream sub-cluster, so
    only values whose producers plausibly co-locate (same region, sized
    to that sub-cluster) may share a wire.  Non-members map to [-1]. *)
