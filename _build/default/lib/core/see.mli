(** The Space Exploration Engine (§3): a local-scope beam search that
    maps the nodes of one subproblem onto the nodes of its PG.

    At each step the SEE picks the next node from the priority list of
    unassigned ones, evaluates the assignment [n -> c] for every
    candidate cluster with the objective function, keeps the best
    [candidate_width] moves per partial solution (candidate filter),
    and prunes the resulting frontier back to [beam_width] partial
    solutions (node filter, Fig. 5).  When a partial solution has no
    candidate at all, the no-candidates action invokes the Route
    Allocator before dropping it. *)

type outcome = {
  state : State.t;  (** best complete solution found *)
  alternatives : State.t list;
      (** the rest of the final frontier, best first: complete solutions
          the node filter kept alive.  The hierarchical driver falls
          back on them when a child subproblem of the best solution
          turns out to be infeasible — inter-level backtracking. *)
  explored : int;  (** partial solutions generated (scaling metric) *)
  routed : int;  (** moves that needed the Route Allocator *)
}

val solve :
  ?config:Config.t ->
  ?target_ii:int ->
  ?backbone:(Hca_machine.Pattern_graph.node_id * Hca_machine.Pattern_graph.node_id) list ->
  Problem.t ->
  ii:int ->
  (outcome, string) result
(** [ii] is the capacity window the assignment must fit; [target_ii]
    (default [ii]) is the II the objective function optimises towards —
    the driver keeps it at the kernel's iniMII even when it has to relax
    [ii] for feasibility.  Fails when the frontier empties: no legal
    clusterisation exists at this II under the configured search
    effort. *)
