(** Deterministic splitmix64 pseudo-random number generator.

    Used by the synthetic-workload generator and the randomised baselines
    so that every experiment is reproducible from a seed, independently of
    the OCaml stdlib [Random] state. *)

type t

val create : int -> t
(** [create seed] builds a generator from a 63-bit seed. *)

val next : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val split : t -> t
(** Derive an independent generator (for parallel sub-streams). *)
