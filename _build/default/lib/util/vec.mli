(** Growable array, used by graph builders before freezing into fixed
    arrays.  Indices are dense and stable: [push] returns the index of the
    new element and indices are never reused. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t

val length : 'a t -> int

(** [push v x] appends [x] and returns its index. *)
val push : 'a t -> 'a -> int

val get : 'a t -> int -> 'a

val set : 'a t -> int -> 'a -> unit

val iter : ('a -> unit) -> 'a t -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

(** [to_array v] copies the contents into a fresh fixed array. *)
val to_array : 'a t -> 'a array

val of_array : 'a array -> 'a t

val exists : ('a -> bool) -> 'a t -> bool

val to_list : 'a t -> 'a list
