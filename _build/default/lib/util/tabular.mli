(** Minimal fixed-width ASCII table rendering, used by the benchmark
    harness and the CLI to print paper-style result tables. *)

type align = Left | Right

type t

val create : (string * align) list -> t
(** [create headers] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** Rows must have as many cells as there are headers. *)

val render : t -> string
(** Render with a header rule and aligned columns. *)

val print : t -> unit
(** [render] to stdout followed by a newline. *)
