lib/util/vec.mli:
