lib/util/tabular.mli:
