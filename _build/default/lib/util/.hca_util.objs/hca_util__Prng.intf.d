lib/util/prng.mli:
