lib/util/tabular.ml: Array Buffer List String Vec
