type align = Left | Right

type t = {
  headers : (string * align) array;
  rows : string list Vec.t;
}

let create headers = { headers = Array.of_list headers; rows = Vec.create () }

let add_row t cells =
  if List.length cells <> Array.length t.headers then
    invalid_arg "Tabular.add_row: cell count mismatch";
  ignore (Vec.push t.rows cells)

let pad align width s =
  let n = width - String.length s in
  if n <= 0 then s
  else
    match align with
    | Left -> s ^ String.make n ' '
    | Right -> String.make n ' ' ^ s

let render t =
  let ncols = Array.length t.headers in
  let widths = Array.map (fun (h, _) -> String.length h) t.headers in
  Vec.iter
    (fun row ->
      List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) row)
    t.rows;
  let buf = Buffer.create 256 in
  let emit_row cells =
    List.iteri
      (fun i c ->
        let _, align = t.headers.(i) in
        Buffer.add_string buf (pad align widths.(i) c);
        if i < ncols - 1 then Buffer.add_string buf "  ")
      cells;
    Buffer.add_char buf '\n'
  in
  emit_row (Array.to_list (Array.map fst t.headers));
  Array.iteri
    (fun i w ->
      Buffer.add_string buf (String.make w '-');
      if i < ncols - 1 then Buffer.add_string buf "  ")
    widths;
  Buffer.add_char buf '\n';
  Vec.iter emit_row t.rows;
  Buffer.contents buf

let print t = print_string (render t)
