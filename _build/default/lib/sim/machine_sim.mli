(** Timed simulator of the clusterised, modulo-scheduled kernel: the
    end-to-end validation the paper's planned on-silicon prototype would
    have provided.

    Events (one per instruction per iteration) execute in global cycle
    order — [cycle_of(i) + iteration * II] — exactly as the software
    pipeline would issue them on the machine.  The simulator re-checks
    dynamically that every operand was produced in an earlier cycle
    (catching any schedule-validation gap) and that no CN issues twice
    in a cycle; it then compares the store trace against the reference
    interpreter on the original DDG, proving the whole
    HCA + post-processing + scheduling pipeline preserves the kernel's
    semantics. *)

open Hca_ddg

type stats = {
  trace : Interp.trace;  (** store trace of the simulated execution *)
  cycles : int;  (** last issue cycle + 1 *)
  issued : int;  (** dynamic instruction count *)
  max_inflight : int;
      (** peak simultaneously live iterations — the software-pipeline
          depth actually exercised *)
}

val run :
  ?iterations:int ->
  ddg:Ddg.t ->
  cn_of_node:int array ->
  schedule:Hca_sched.Modulo.schedule ->
  unit ->
  (stats, string) result
(** Simulates [iterations] (default 8) iterations of the (expanded) DDG
    under the schedule.  Fails on a dynamic hazard: an operand read
    before it was produced, or two issues on one CN in the same cycle. *)

val check_against_reference :
  ?iterations:int ->
  original:Ddg.t ->
  expanded:Ddg.t ->
  cn_of_node:int array ->
  schedule:Hca_sched.Modulo.schedule ->
  unit ->
  (stats, string) result
(** {!run} on the expanded DDG, then trace equivalence against
    {!Interp.run} on the original: the machine execution must store the
    same values at the same addresses in the same iterations. *)
