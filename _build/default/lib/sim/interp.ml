open Hca_ddg

type event = {
  store : Instr.id;
  iteration : int;
  address : Semantics.value;
  value : Semantics.value;
}

type trace = event list

(* Values per (node, iteration), filled iteration by iteration in
   topological order: intra-iteration operands come from this
   iteration, carried ones from [iteration - distance]. *)
let execute ?(iterations = 8) ddg =
  let n = Ddg.size ddg in
  let values = Array.make (n * iterations) 0l in
  let order = Graph_algo.topological_order ddg in
  let events = ref [] in
  for k = 0 to iterations - 1 do
    Array.iter
      (fun i ->
        let instr = Ddg.instr ddg i in
        let operands =
          List.map
            (fun (e : Ddg.edge) ->
              let src_iter = k - e.distance in
              if src_iter < 0 then Semantics.initial e.src
              else values.((e.src * iterations) + src_iter))
            (Ddg.preds ddg i)
        in
        let v = Semantics.eval instr.Instr.opcode operands in
        values.((i * iterations) + k) <- v;
        if instr.Instr.opcode = Opcode.Store then begin
          let address = match operands with a :: _ -> a | [] -> 0l in
          events := { store = i; iteration = k; address; value = v } :: !events
        end)
      order
  done;
  (values, List.rev !events)

let run ?iterations ddg = snd (execute ?iterations ddg)

let value_of ?(iterations = 8) ddg i k =
  if k < 0 || k >= iterations then invalid_arg "Interp.value_of: bad iteration";
  let values, _ = execute ~iterations ddg in
  values.((i * iterations) + k)

let equal_trace ~by_name ~by_name' a b =
  let key name (e : event) = (name e.store, e.iteration, e.address, e.value) in
  let sort keyed = List.sort compare keyed in
  sort (List.map (key by_name) a) = sort (List.map (key by_name') b)

let pp_trace ppf trace =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun e ->
      Format.fprintf ppf "iter %d: store %%%d [%ld] <- %ld@," e.iteration
        e.store e.address e.value)
    trace;
  Format.fprintf ppf "@]"
