(** Reference interpreter: executes a kernel DDG for a number of loop
    iterations under the {!Semantics}.  The observable behaviour of a
    streaming kernel is its store trace; two executions of the same
    kernel — e.g. the original DDG and the clusterised/scheduled one —
    are equivalent iff their traces match. *)

open Hca_ddg

type event = {
  store : Instr.id;  (** the store instruction (id in the executed DDG) *)
  iteration : int;
  address : Semantics.value;
  value : Semantics.value;
}

type trace = event list
(** In (iteration, store id) order. *)

val run : ?iterations:int -> Ddg.t -> trace
(** Executes [iterations] (default 8) iterations.  Loop-carried
    operands read {!Semantics.initial} values for the first [distance]
    iterations.  Operand order is the dependence insertion order, as
    produced by {!Hca_kernels.Kbuild}. *)

val value_of : ?iterations:int -> Ddg.t -> Instr.id -> int -> Semantics.value
(** [value_of ddg i k]: the value instruction [i] produces in iteration
    [k] — for tests and debugging. *)

val equal_trace : by_name:(Instr.id -> string) -> by_name':(Instr.id -> string) -> trace -> trace -> bool
(** Trace equality matching stores by {e name} rather than id, so the
    original and the expanded DDG (extra receive nodes shift nothing —
    store ids are preserved — but ids are not relied upon) compare. *)

val pp_trace : Format.formatter -> trace -> unit
