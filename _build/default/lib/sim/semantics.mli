(** Executable semantics of the kernel IR, shared by the reference
    interpreter and the machine simulator.

    Values are 32-bit integers (wrapped at the boundaries, like the
    DSPFabric datapath).  Memory is a synthetic read-only image — a
    deterministic hash of the address — plus a write log: media kernels
    stream data through, so the observable behaviour of one loop is
    exactly its store trace. *)

type value = int32

val load_image : value -> value
(** The synthetic memory image: [mem addr] is a deterministic function
    of the address, so every run sees the same input stream. *)

val initial : Hca_ddg.Instr.id -> value
(** Pre-loop value of a loop-carried operand read before its producer
    has run (iteration [k < distance]): deterministic per producer. *)

val eval : Hca_ddg.Opcode.t -> value list -> value
(** Applies an opcode to its operand values.  [Load] interprets its
    first operand as the address and reads {!load_image}; [Store]
    returns the stored value (the write log is kept by the callers);
    [Recv] and [Mov] are identity on their single operand.
    @raise Invalid_argument on an arity mismatch. *)

val clip : value -> value
(** Saturation helper: clamps to [0, 255] like a pixel datapath. *)
