open Hca_ddg

type stats = {
  trace : Interp.trace;
  cycles : int;
  issued : int;
  max_inflight : int;
}

let run ?(iterations = 8) ~ddg ~cn_of_node ~schedule () =
  let n = Ddg.size ddg in
  if Array.length cn_of_node <> n then Error "cn_of_node length mismatch"
  else begin
    let ii = schedule.Hca_sched.Modulo.ii in
    let cycle_of = schedule.Hca_sched.Modulo.cycle_of in
    (* One event per (instruction, iteration), globally cycle-ordered;
       ties broken by CN id (distinct CNs issue in parallel). *)
    let events =
      List.concat_map
        (fun i ->
          List.init iterations (fun k -> (cycle_of.(i) + (k * ii), i, k)))
        (List.init n (fun i -> i))
      |> List.sort compare
    in
    let values = Array.make (n * iterations) 0l in
    let produced = Array.make (n * iterations) (-1) in
    let store_events = ref [] in
    let exception Hazard of string in
    try
      let last_issue = Hashtbl.create 64 in
      (* Pipeline depth: iterations whose windows overlap — the
         schedule's stage count, bounded by the trip count. *)
      let max_inflight =
        min iterations ((Array.fold_left max 0 cycle_of / ii) + 1)
      in
      List.iter
        (fun (cycle, i, k) ->
          let cn = cn_of_node.(i) in
          (match Hashtbl.find_opt last_issue (cn, cycle) with
          | Some j when j <> i ->
              raise
                (Hazard
                   (Printf.sprintf "CN %d double issue at cycle %d (%%%d, %%%d)"
                      cn cycle j i))
          | _ -> Hashtbl.replace last_issue (cn, cycle) i);
          let instr = Ddg.instr ddg i in
          let operands =
            List.map
              (fun (e : Ddg.edge) ->
                let src_iter = k - e.distance in
                if src_iter < 0 then Semantics.initial e.src
                else begin
                  let idx = (e.src * iterations) + src_iter in
                  if produced.(idx) < 0 then
                    raise
                      (Hazard
                         (Printf.sprintf
                            "%%%d@%d reads %%%d@%d before it is produced" i k
                            e.src src_iter));
                  if produced.(idx) > cycle then
                    raise
                      (Hazard
                         (Printf.sprintf
                            "%%%d@%d (cycle %d) reads %%%d@%d produced at \
                             cycle %d"
                            i k cycle e.src src_iter produced.(idx)));
                  values.(idx)
                end)
              (Ddg.preds ddg i)
          in
          let v = Semantics.eval instr.Instr.opcode operands in
          let idx = (i * iterations) + k in
          values.(idx) <- v;
          produced.(idx) <- cycle;
          if instr.Instr.opcode = Opcode.Store then
            let address = match operands with a :: _ -> a | [] -> 0l in
            store_events :=
              { Interp.store = i; iteration = k; address; value = v }
              :: !store_events)
        events;
      let cycles =
        List.fold_left (fun acc (c, _, _) -> max acc (c + 1)) 0 events
      in
      Ok
        {
          trace = List.rev !store_events;
          cycles;
          issued = List.length events;
          max_inflight;
        }
    with Hazard m -> Error m
  end

let check_against_reference ?(iterations = 8) ~original ~expanded ~cn_of_node
    ~schedule () =
  match run ~iterations ~ddg:expanded ~cn_of_node ~schedule () with
  | Error _ as e -> e
  | Ok stats ->
      let reference = Interp.run ~iterations original in
      let name_in g i = (Ddg.instr g i).Instr.name in
      if
        Interp.equal_trace ~by_name:(name_in original)
          ~by_name':(name_in expanded) reference stats.trace
      then Ok stats
      else Error "store trace diverges from the reference interpretation"
