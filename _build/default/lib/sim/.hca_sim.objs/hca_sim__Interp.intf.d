lib/sim/interp.mli: Ddg Format Hca_ddg Instr Semantics
