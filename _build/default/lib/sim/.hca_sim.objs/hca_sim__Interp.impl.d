lib/sim/interp.ml: Array Ddg Format Graph_algo Hca_ddg Instr List Opcode Semantics
