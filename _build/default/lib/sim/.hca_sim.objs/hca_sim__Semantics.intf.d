lib/sim/semantics.mli: Hca_ddg
