lib/sim/machine_sim.mli: Ddg Hca_ddg Hca_sched Interp
