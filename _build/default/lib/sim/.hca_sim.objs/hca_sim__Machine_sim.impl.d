lib/sim/machine_sim.ml: Array Ddg Hashtbl Hca_ddg Hca_sched Instr Interp List Opcode Printf Semantics
