lib/sim/semantics.ml: Fun Hca_ddg Int32 List Opcode
