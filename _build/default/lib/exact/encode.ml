open Hca_machine
open Hca_core

type instance = {
  n : int;
  cns : int;
  max_in : int;
  demand : Resource.t array;  (* per node *)
  capacity : Resource.t array;  (* per CN *)
  pairs : (int * int) list;  (* distinct (producer, consumer) dep pairs *)
  producers : int list;  (* nodes with at least one consumer, ascending *)
}

let of_problem problem =
  let pg = Problem.pg problem in
  Array.iter
    (fun (nd : Problem.node) ->
      if nd.pinned <> None then
        invalid_arg "Encode.of_problem: instance must be flat (no ports)")
    (Problem.nodes problem);
  let n = Problem.size problem in
  let demand = Array.map (fun (nd : Problem.node) -> nd.demand) (Problem.nodes problem) in
  let seen = Hashtbl.create 64 in
  let pairs = ref [] in
  Array.iter
    (fun (e : Problem.edge) ->
      if e.src <> e.dst && not (Hashtbl.mem seen (e.src, e.dst)) then begin
        Hashtbl.replace seen (e.src, e.dst) ();
        pairs := (e.src, e.dst) :: !pairs
      end)
    (Problem.edges problem);
  let producers =
    List.sort_uniq compare (List.map fst !pairs)
  in
  {
    n;
    cns = List.length (Pattern_graph.regular_nodes pg);
    max_in = Pattern_graph.max_in pg;
    demand;
    capacity =
      Array.of_list
        (List.map
           (fun (nd : Pattern_graph.node) -> nd.capacity)
           (Pattern_graph.regular_nodes pg));
    pairs = !pairs;
    producers;
  }

let size inst = inst.n

let cns inst = inst.cns

type encoded = {
  sat : Sat.t;
  assign_var : int array array;
}

let is_alu inst node = inst.demand.(node).Resource.alus > 0

(* Sinz sequential-counter encoding of [sum lits <= k]. *)
let at_most sat lits k =
  let lits = Array.of_list lits in
  let m = Array.length lits in
  if k < 0 then Sat.add_clause sat []
  else if k = 0 then Array.iter (fun l -> Sat.add_clause sat [ -l ]) lits
  else if m > k then begin
    (* s.(i).(j): at least j+1 of lits.(0..i) are true. *)
    let s = Array.init (m - 1) (fun _ -> Array.init k (fun _ -> Sat.new_var sat)) in
    Sat.add_clause sat [ -lits.(0); s.(0).(0) ];
    for j = 1 to k - 1 do
      Sat.add_clause sat [ -s.(0).(j) ]
    done;
    for i = 1 to m - 2 do
      Sat.add_clause sat [ -lits.(i); s.(i).(0) ];
      Sat.add_clause sat [ -s.(i - 1).(0); s.(i).(0) ];
      for j = 1 to k - 1 do
        Sat.add_clause sat [ -lits.(i); -s.(i - 1).(j - 1); s.(i).(j) ];
        Sat.add_clause sat [ -s.(i - 1).(j); s.(i).(j) ]
      done;
      Sat.add_clause sat [ -lits.(i); -s.(i - 1).(k - 1) ]
    done;
    if m >= 2 then Sat.add_clause sat [ -lits.(m - 1); -s.(m - 2).(k - 1) ]
  end

let encode ?(strict = false) inst ~k =
  let sat = Sat.create () in
  let x =
    Array.init inst.n (fun _ -> Array.init inst.cns (fun _ -> Sat.new_var sat))
  in
  (* Exactly one CN per node. *)
  for nd = 0 to inst.n - 1 do
    Sat.add_clause sat (Array.to_list x.(nd));
    for a = 0 to inst.cns - 1 do
      for b = a + 1 to inst.cns - 1 do
        Sat.add_clause sat [ -x.(nd).(a); -x.(nd).(b) ]
      done
    done
  done;
  (* Receive indicators: r.(s).(c) is forced whenever a consumer of
     producer s sits on c while s itself does not. *)
  let recv = Hashtbl.create 64 in
  List.iter
    (fun s ->
      Hashtbl.replace recv s (Array.init inst.cns (fun _ -> Sat.new_var sat)))
    inst.producers;
  List.iter
    (fun (s, m) ->
      let r = Hashtbl.find recv s in
      for c = 0 to inst.cns - 1 do
        Sat.add_clause sat [ -x.(m).(c); x.(s).(c); r.(c) ]
      done)
    inst.pairs;
  (* Per-CN windows: the cluster_mii <= k terms, clause for clause. *)
  for c = 0 to inst.cns - 1 do
    let cap = inst.capacity.(c) in
    let issue = Resource.issue_slots cap in
    let all = ref [] and alus = ref [] and ags = ref [] in
    for nd = inst.n - 1 downto 0 do
      all := x.(nd).(c) :: !all;
      if is_alu inst nd then alus := x.(nd).(c) :: !alus
      else ags := x.(nd).(c) :: !ags
    done;
    let recvs =
      List.map (fun s -> (Hashtbl.find recv s).(c)) inst.producers
    in
    (* total issue window (Resource.fits issue term) *)
    at_most sat !all (issue * k);
    (* AG class window *)
    if cap.Resource.ags = 0 then
      List.iter (fun l -> Sat.add_clause sat [ -l ]) !ags
    else at_most sat !ags (cap.Resource.ags * k);
    (* ALU ops + receive primitives on the ALU issue slot *)
    if cap.Resource.alus = 0 then
      List.iter (fun l -> Sat.add_clause sat [ -l ]) !alus
    else at_most sat (!alus @ recvs) (cap.Resource.alus * k);
    (* incoming-wire serialisation: ceil (recv / max_in) <= k *)
    at_most sat recvs (inst.max_in * k)
  done;
  if strict then begin
    (* Real-arc indicators e.(a).(b) bounded by the MUX capacity. *)
    let e =
      Array.init inst.cns (fun _ -> Array.init inst.cns (fun _ -> Sat.new_var sat))
    in
    List.iter
      (fun (s, m) ->
        for a = 0 to inst.cns - 1 do
          for b = 0 to inst.cns - 1 do
            if a <> b then
              Sat.add_clause sat [ -x.(s).(a); -x.(m).(b); e.(a).(b) ]
          done
        done)
      inst.pairs;
    for b = 0 to inst.cns - 1 do
      let ins = ref [] in
      for a = inst.cns - 1 downto 0 do
        if a <> b then ins := e.(a).(b) :: !ins
      done;
      at_most sat !ins inst.max_in
    done;
    (* Single-out-wire payload: distinct values leaving a CN, <= k
       (each flat CN owns one broadcastable outgoing wire). *)
    let w = Hashtbl.create 64 in
    List.iter
      (fun s ->
        Hashtbl.replace w s (Array.init inst.cns (fun _ -> Sat.new_var sat)))
      inst.producers;
    List.iter
      (fun (s, m) ->
        let ws = Hashtbl.find w s in
        for c = 0 to inst.cns - 1 do
          Sat.add_clause sat [ -x.(s).(c); x.(m).(c); ws.(c) ]
        done)
      inst.pairs;
    for c = 0 to inst.cns - 1 do
      at_most sat
        (List.map (fun s -> (Hashtbl.find w s).(c)) inst.producers)
        k
    done
  end;
  { sat; assign_var = x }

let decode inst { sat; assign_var } =
  Array.init inst.n (fun nd ->
      let c = ref (-1) in
      for i = inst.cns - 1 downto 0 do
        if Sat.value sat assign_var.(nd).(i) then c := i
      done;
      !c)

let receives_on inst assignment c =
  List.length
    (List.filter
       (fun s ->
         assignment.(s) <> c
         && List.exists
              (fun (s', m) -> s' = s && assignment.(m) = c)
              inst.pairs)
       inst.producers)

let cluster_mii_of_assignment inst assignment =
  let mii = ref 1 in
  for c = 0 to inst.cns - 1 do
    let demand = ref Resource.zero in
    Array.iteri
      (fun nd cn -> if cn = c then demand := Resource.add !demand inst.demand.(nd))
      assignment;
    let receives = receives_on inst assignment c in
    mii :=
      max !mii
        (Cost.cluster_mii ~demand:!demand ~capacity:inst.capacity.(c) ~receives
           ~max_in:inst.max_in)
  done;
  !mii

let copies_of_assignment inst assignment =
  let seen = Hashtbl.create 64 in
  List.iter
    (fun (s, m) ->
      if assignment.(s) <> assignment.(m) then
        Hashtbl.replace seen (s, assignment.(m)) ())
    inst.pairs;
  Hashtbl.length seen
