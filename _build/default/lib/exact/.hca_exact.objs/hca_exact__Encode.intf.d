lib/exact/encode.mli: Hca_core Problem Sat
