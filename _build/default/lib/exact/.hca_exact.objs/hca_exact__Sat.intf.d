lib/exact/sat.mli: Format
