lib/exact/oracle.ml: Array Ddg Dspfabric Encode Format Hca_core Hca_ddg Hca_machine Mii Pattern_graph Printf Problem Resource Sat Sys
