lib/exact/sat.ml: Array Format List Printf Sys
