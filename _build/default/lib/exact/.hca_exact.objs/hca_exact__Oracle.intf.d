lib/exact/oracle.mli: Ddg Dspfabric Format Hca_core Hca_ddg Hca_machine Problem
