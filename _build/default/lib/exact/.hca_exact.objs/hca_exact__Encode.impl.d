lib/exact/encode.ml: Array Cost Hashtbl Hca_core Hca_machine List Pattern_graph Problem Resource Sat
