(* Cross-module integration and property tests: the full HCA pipeline
   on synthetic workloads, architecture sweeps, and end-to-end
   invariants tying assignment, coherence and scheduling together. *)

open Hca_machine
open Hca_core

let reference = Dspfabric.reference

let run_hca ?(fabric = reference) ddg = Report.run fabric ddg

(* --- synthetic pipeline sweeps ------------------------------------------- *)

let synth ~size ~seed ~recurrence =
  Hca_kernels.Synthetic.generate
    {
      Hca_kernels.Synthetic.default with
      size;
      seed;
      recurrences = (if recurrence > 0 then 1 else 0);
      recurrence_latency = max 1 recurrence;
    }

let test_synthetic_pipeline_legal () =
  (* A spread of sizes and shapes must all clusterise legally. *)
  List.iter
    (fun (size, seed, recurrence) ->
      let ddg = synth ~size ~seed ~recurrence in
      let report = run_hca ddg in
      Alcotest.(check bool)
        (Printf.sprintf "legal size=%d seed=%d" size seed)
        true report.Report.legal)
    [ (16, 1, 0); (24, 2, 2); (48, 3, 3); (64, 4, 0); (96, 5, 4) ]

let test_final_mii_dominates_bounds () =
  List.iter
    (fun seed ->
      let ddg = synth ~size:40 ~seed ~recurrence:2 in
      let report = run_hca ddg in
      match report.Report.final_mii with
      | None -> Alcotest.fail "should clusterise"
      | Some final ->
          Alcotest.(check bool) "final >= rec" true (final >= report.Report.mii_rec);
          Alcotest.(check bool) "final >= res" true (final >= report.Report.mii_res))
    [ 10; 11; 12 ]

(* --- architecture sweep (§5 bandwidth claim) ----------------------------- *)

let test_bandwidth_degradation () =
  (* "Lower bandwidths cause a rapid degradation of the clusterization
     quality": the final MII on the N=M=K=2 machine must not beat the
     N=M=K=8 machine. *)
  let ddg () = Hca_kernels.Fir2dim.ddg () in
  let wide = run_hca ~fabric:(Dspfabric.make ~n:8 ~m:8 ~k:8 ()) (ddg ()) in
  let narrow = run_hca ~fabric:(Dspfabric.make ~n:2 ~m:2 ~k:2 ()) (ddg ()) in
  match (wide.Report.final_mii, narrow.Report.final_mii) with
  | Some w, Some n -> Alcotest.(check bool) "degrades" true (n >= w)
  | Some _, None -> () (* outright failure is the extreme of degradation *)
  | None, _ -> Alcotest.fail "reference machine must clusterise fir2dim"

(* --- determinism ---------------------------------------------------------- *)

let test_pipeline_deterministic () =
  let a = run_hca (Hca_kernels.Fir2dim.ddg ()) in
  let b = run_hca (Hca_kernels.Fir2dim.ddg ()) in
  Alcotest.(check (option int)) "same final MII" a.Report.final_mii b.Report.final_mii;
  match (a.Report.result, b.Report.result) with
  | Some ra, Some rb ->
      Alcotest.(check (array int)) "same placement" ra.Hierarchy.cn_of_instr
        rb.Hierarchy.cn_of_instr
  | _ -> Alcotest.fail "both runs must succeed"

(* --- placement invariants -------------------------------------------------- *)

let test_placement_respects_issue_budget () =
  List.iter
    (fun (_, f) ->
      let report = run_hca (f ()) in
      match (report.Report.result, report.Report.final_mii) with
      | Some res, Some final ->
          for cn = 0 to Dspfabric.total_cns reference - 1 do
            let load = Hierarchy.cn_count res cn + Hierarchy.recv_count res cn in
            Alcotest.(check bool) "per-CN load within final MII" true (load <= final)
          done
      | _ -> Alcotest.fail "must clusterise")
    Hca_kernels.Registry.all

let test_wire_loads_within_final_mii () =
  List.iter
    (fun (_, f) ->
      let report = run_hca (f ()) in
      match (report.Report.result, report.Report.final_mii) with
      | Some res, Some final ->
          List.iter
            (fun (sub : Hierarchy.subresult) ->
              Alcotest.(check bool) "wire load bounded" true
                (sub.Hierarchy.mapres.Mapper.max_wire_load <= final))
            (Hierarchy.subresults res)
      | _ -> Alcotest.fail "must clusterise")
    Hca_kernels.Registry.all

(* --- property: random kernels never produce an illegal "legal" ------------- *)

let prop_no_false_legality =
  QCheck.Test.make ~name:"coherency accepts only what it can re-verify" ~count:12
    QCheck.(pair (int_range 8 48) (int_range 0 1000))
    (fun (size, seed) ->
      let ddg = synth ~size ~seed ~recurrence:(seed mod 3) in
      let report = run_hca ddg in
      match report.Report.result with
      | None -> true (* failure reported as failure is fine *)
      | Some res -> report.Report.legal = Coherency.is_legal res)

(* --- property: full pipeline preserves semantics --------------------------- *)

let prop_pipeline_preserves_semantics =
  QCheck.Test.make
    ~name:"compile+schedule+simulate matches the reference interpreter"
    ~count:8
    QCheck.(pair (int_range 12 40) (int_range 0 500))
    (fun (size, seed) ->
      let ddg = synth ~size ~seed ~recurrence:(seed mod 3) in
      let report = run_hca ddg in
      match (report.Report.result, report.Report.final_mii) with
      | Some res, Some final -> (
          let exp = Postprocess.expand res in
          let params =
            { Hca_sched.Modulo.default_params with copy_latency = 0 }
          in
          match
            Hca_sched.Modulo.run ~params ~ddg:exp.Postprocess.ddg
              ~cn_of_instr:exp.Postprocess.cn_of_node ~cns:64 ~dma_ports:8
              ~start_ii:final ()
          with
          | Error _ -> true (* unschedulable synthetic shapes are not the property *)
          | Ok schedule -> (
              match
                Hca_sim.Machine_sim.check_against_reference ~iterations:4
                  ~original:ddg ~expanded:exp.Postprocess.ddg
                  ~cn_of_node:exp.Postprocess.cn_of_node ~schedule ()
              with
              | Ok _ -> true
              | Error _ -> false))
      | _ -> true)

(* --- property: topology stays within the wire budget ----------------------- *)

let prop_topology_within_budget =
  QCheck.Test.make ~name:"selected wires never exceed the MUX capacities"
    ~count:8
    QCheck.(int_range 0 500)
    (fun seed ->
      let ddg = synth ~size:32 ~seed ~recurrence:0 in
      let report = run_hca ddg in
      match report.Report.result with
      | None -> true
      | Some res ->
          let topo = Topology.of_result res in
          (* Group entries per (path, owner): out wires <= 8 at set
             levels, <= 1 at leaves. *)
          let counts = Hashtbl.create 32 in
          List.iter
            (fun (e : Topology.entry) ->
              let key = (e.Topology.path, e.Topology.owner) in
              Hashtbl.replace counts key
                (1 + Option.value ~default:0 (Hashtbl.find_opt counts key)))
            topo.Topology.entries;
          Hashtbl.fold
            (fun (path, _) c acc ->
              let cap = if List.length path = 2 then 1 else 8 in
              acc && c <= cap)
            counts true)

(* --- schedule end-to-end ---------------------------------------------------- *)

let test_schedule_validates_hca_mii () =
  (* The scheduler achieves an II within a small factor of the
     clusterisation's final MII — evidence the reported MII is not a
     fantasy bound. *)
  let ddg = Hca_kernels.Idcthor.ddg () in
  let report = run_hca ddg in
  match (report.Report.result, report.Report.final_mii) with
  | Some res, Some final -> (
      match
        Hca_sched.Modulo.run ~ddg ~cn_of_instr:res.Hierarchy.cn_of_instr
          ~cns:(Dspfabric.total_cns reference)
          ~dma_ports:(Dspfabric.dma_ports reference) ~start_ii:final ()
      with
      | Error e -> Alcotest.fail e
      | Ok s ->
          Alcotest.(check bool) "within 3x of final MII" true
            (s.Hca_sched.Modulo.ii <= 3 * final))
  | _ -> Alcotest.fail "idcthor must clusterise"

let () =
  Alcotest.run "integration"
    [
      ( "pipeline",
        [
          Alcotest.test_case "synthetic legal" `Slow test_synthetic_pipeline_legal;
          Alcotest.test_case "bounds dominated" `Slow test_final_mii_dominates_bounds;
          Alcotest.test_case "deterministic" `Slow test_pipeline_deterministic;
          QCheck_alcotest.to_alcotest prop_no_false_legality;
          QCheck_alcotest.to_alcotest prop_pipeline_preserves_semantics;
          QCheck_alcotest.to_alcotest prop_topology_within_budget;
        ] );
      ( "architecture",
        [
          Alcotest.test_case "bandwidth degradation" `Slow test_bandwidth_degradation;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "issue budget" `Slow test_placement_respects_issue_budget;
          Alcotest.test_case "wire loads" `Slow test_wire_loads_within_final_mii;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "validates MII" `Slow test_schedule_validates_hca_mii;
        ] );
    ]
