(* Tests for the post-HCA artefacts: the expanded DDG with receive
   primitives, the reconfiguration-program emitter, and the portfolio
   driver. *)

open Hca_ddg
open Hca_machine
open Hca_core

let reference = Dspfabric.reference

let solved_fir2dim =
  lazy
    (let ddg = Hca_kernels.Fir2dim.ddg () in
     let report = Report.run reference ddg in
     match report.Report.result with
     | Some res -> (ddg, report, res)
     | None -> failwith "fir2dim must clusterise")

(* --- postprocess ---------------------------------------------------- *)

let test_expand_preserves_instructions () =
  let ddg, _, res = Lazy.force solved_fir2dim in
  let exp = Postprocess.expand res in
  Alcotest.(check bool) "grew" true (Ddg.size exp.Postprocess.ddg >= Ddg.size ddg);
  Array.iter
    (fun (i : Instr.t) ->
      Alcotest.(check bool) "opcode kept" true
        (Opcode.equal i.opcode (Ddg.instr exp.Postprocess.ddg i.id).Instr.opcode))
    (Ddg.instrs ddg)

let test_expand_validates () =
  let _, _, res = Lazy.force solved_fir2dim in
  let exp = Postprocess.expand res in
  match Postprocess.validate exp res with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_expand_recv_are_recv () =
  let ddg, _, res = Lazy.force solved_fir2dim in
  let exp = Postprocess.expand res in
  let recvs =
    Ddg.count exp.Postprocess.ddg (fun i -> i.Instr.opcode = Opcode.Recv)
  in
  Alcotest.(check int) "count matches" exp.Postprocess.recv_count recvs;
  Alcotest.(check bool) "cross-CN edges exist" true (recvs > 0);
  ignore ddg

let test_expand_issue_load_counts_everything () =
  let _, _, res = Lazy.force solved_fir2dim in
  let exp = Postprocess.expand res in
  let load = Postprocess.issue_load exp in
  Alcotest.(check int) "total = expanded size"
    (Ddg.size exp.Postprocess.ddg)
    (Array.fold_left ( + ) 0 load)

let test_hop_distance () =
  let _, _, res = Lazy.force solved_fir2dim in
  Alcotest.(check int) "same cn" 0 (Postprocess.hop_distance res ~src_cn:5 ~dst_cn:5);
  (* Same quad (leaf sets of 4): one level crossed. *)
  Alcotest.(check int) "same quad" 1 (Postprocess.hop_distance res ~src_cn:0 ~dst_cn:1);
  (* Opposite corners of the 64-CN machine: all three levels. *)
  Alcotest.(check int) "far" 5 (Postprocess.hop_distance res ~src_cn:0 ~dst_cn:63)

let test_expanded_schedulable () =
  let _, report, res = Lazy.force solved_fir2dim in
  let exp = Postprocess.expand res in
  let params = { Hca_sched.Modulo.default_params with copy_latency = 0 } in
  match
    Hca_sched.Modulo.run ~params ~ddg:exp.Postprocess.ddg
      ~cn_of_instr:exp.Postprocess.cn_of_node ~cns:64 ~dma_ports:8
      ~start_ii:(Option.get report.Report.final_mii) ()
  with
  | Error e -> Alcotest.fail e
  | Ok s ->
      Alcotest.(check bool) "valid" true
        (Hca_sched.Modulo.validate ~ddg:exp.Postprocess.ddg
           ~cn_of_instr:exp.Postprocess.cn_of_node ~copy_latency:0 s
        = Ok ())

(* --- topology --------------------------------------------------------- *)

let test_topology_entries () =
  let _, _, res = Lazy.force solved_fir2dim in
  let topo = Topology.of_result res in
  Alcotest.(check bool) "wires selected" true (Topology.wire_count topo > 0);
  Alcotest.(check bool) "selects >= wires" true
    (Topology.select_count topo >= Topology.wire_count topo);
  List.iter
    (fun (e : Topology.entry) ->
      Alcotest.(check bool) "entry is live" true
        (e.Topology.sinks <> [] || e.Topology.uplink <> None))
    topo.Topology.entries

let test_topology_to_string () =
  let _, _, res = Lazy.force solved_fir2dim in
  let s = Topology.to_string (Topology.of_result res) in
  Alcotest.(check bool) "mentions kernel" true
    (String.length s > 0
    &&
    let re = "fir2dim" in
    let rec search i =
      i + String.length re <= String.length s
      && (String.sub s i (String.length re) = re || search (i + 1))
    in
    search 0)

(* --- portfolio ---------------------------------------------------------- *)

let test_portfolio_beats_or_matches_default () =
  let ddg = Hca_kernels.Mpeg2inter.ddg () in
  let default = Report.run reference ddg in
  let best, winner = Portfolio.run reference ddg in
  Alcotest.(check bool) "legal" true best.Report.legal;
  Alcotest.(check bool) "winner named" true (winner <> "");
  match (best.Report.final_mii, default.Report.final_mii) with
  | Some b, Some d -> Alcotest.(check bool) "no worse" true (b <= d)
  | _ -> Alcotest.fail "both must clusterise"

let test_portfolio_rejects_empty () =
  Alcotest.check_raises "empty configs"
    (Invalid_argument "Portfolio.run: empty configuration list") (fun () ->
      ignore (Portfolio.run ~configs:[] reference (Hca_kernels.Fir2dim.ddg ())))

(* --- extended kernels through the pipeline ------------------------------- *)

let test_extended_kernels_legal () =
  List.iter
    (fun (name, f) ->
      let r = Report.run reference (f ()) in
      Alcotest.(check bool) (name ^ " legal") true r.Report.legal)
    Hca_kernels.Extended.all

let test_extended_registry () =
  Alcotest.(check int) "10 kernels total" 10
    (List.length Hca_kernels.Registry.extended);
  Alcotest.(check bool) "find extended" true
    (Hca_kernels.Registry.find "fft_stage" <> None)

(* --- rcp driver ------------------------------------------------------- *)


let test_rcp_driver_solves () =
  match Rcp_driver.solve Rcp.default (Hca_kernels.Fir2dim.ddg ()) with
  | Error e -> Alcotest.fail e
  | Ok r -> (
      Alcotest.(check bool) "links selected" true (r.Rcp_driver.topology <> []);
      match Rcp_driver.validate r with
      | Ok () -> ()
      | Error es -> Alcotest.fail (String.concat "; " es))

let test_rcp_driver_respects_ports () =
  let rcp = Rcp.make ~in_ports:1 () in
  match Rcp_driver.solve rcp (Hca_kernels.Fir2dim.ddg ()) with
  | Error _ -> () (* failing is acceptable at one port *)
  | Ok r ->
      let in_deg = Array.make (Rcp.clusters rcp) 0 in
      List.iter
        (fun (_, dst) -> in_deg.(dst) <- in_deg.(dst) + 1)
        r.Rcp_driver.topology;
      Array.iter
        (fun d -> Alcotest.(check bool) "port budget" true (d <= 1))
        in_deg

let test_rcp_driver_heterogeneous () =
  (* All memory on cluster 0 only. *)
  let rcp = Rcp.make ~mem_clusters:[ 0 ] ~in_ports:2 () in
  match Rcp_driver.solve rcp (Hca_kernels.Fir2dim.ddg ()) with
  | Error _ -> () (* a single memory cluster may be infeasible; fine *)
  | Ok r -> (
      match Rcp_driver.validate r with
      | Ok () -> ()
      | Error es -> Alcotest.fail (String.concat "; " es))

let () =
  Alcotest.run "postprocess"
    [
      ( "expand",
        [
          Alcotest.test_case "preserves instructions" `Slow test_expand_preserves_instructions;
          Alcotest.test_case "validates" `Slow test_expand_validates;
          Alcotest.test_case "receives" `Slow test_expand_recv_are_recv;
          Alcotest.test_case "issue load" `Slow test_expand_issue_load_counts_everything;
          Alcotest.test_case "hop distance" `Slow test_hop_distance;
          Alcotest.test_case "schedulable" `Slow test_expanded_schedulable;
        ] );
      ( "topology",
        [
          Alcotest.test_case "entries" `Slow test_topology_entries;
          Alcotest.test_case "render" `Slow test_topology_to_string;
        ] );
      ( "portfolio",
        [
          Alcotest.test_case "no worse than default" `Slow test_portfolio_beats_or_matches_default;
          Alcotest.test_case "rejects empty" `Quick test_portfolio_rejects_empty;
        ] );
      ( "extended-kernels",
        [
          Alcotest.test_case "all legal" `Slow test_extended_kernels_legal;
          Alcotest.test_case "registry" `Quick test_extended_registry;
        ] );
      ( "rcp-driver",
        [
          Alcotest.test_case "solves + validates" `Slow test_rcp_driver_solves;
          Alcotest.test_case "port budget" `Slow test_rcp_driver_respects_ports;
          Alcotest.test_case "heterogeneous" `Slow test_rcp_driver_heterogeneous;
        ] );
    ]

