test/test_postprocess.mli:
