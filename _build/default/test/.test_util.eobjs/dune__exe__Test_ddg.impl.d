test/test_ddg.ml: Alcotest Array Ddg Ddg_io Graph_algo Hca_ddg Hca_kernels Instr List Mii Opcode Printf QCheck QCheck_alcotest String
