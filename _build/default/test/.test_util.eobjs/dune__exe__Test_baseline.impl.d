test/test_baseline.ml: Alcotest Array Chu_partition Dspfabric Flat_ica Hca_baseline Hca_core Hca_kernels Hca_machine List Option Random_assign Result Unified
