test/test_baseline.ml: Alcotest Array Chu_partition Ddg Dspfabric Flat_ica Hca_baseline Hca_core Hca_ddg Hca_kernels Hca_machine List Opcode Option Pattern_graph Random_assign Resource Result Unified
