test/test_postprocess.ml: Alcotest Array Ddg Dspfabric Hca_core Hca_ddg Hca_kernels Hca_machine Hca_sched Instr Lazy List Opcode Option Portfolio Postprocess Rcp Rcp_driver Report String Topology
