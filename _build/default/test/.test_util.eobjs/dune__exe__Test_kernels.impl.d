test/test_kernels.ml: Alcotest Array Ddg Hca_ddg Hca_kernels Hca_machine Instr Kbuild List Mii Opcode Printf QCheck QCheck_alcotest Registry Synthetic
