test/test_machine.ml: Alcotest Array Copy_flow Ddg Dspfabric Hca_ddg Hca_kernels Hca_machine List Machine_model Mii Opcode Option Pattern_graph Rcp Resource
