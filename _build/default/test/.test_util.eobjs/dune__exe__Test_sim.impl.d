test/test_sim.ml: Alcotest Array Ddg Dspfabric Hca_core Hca_ddg Hca_kernels Hca_machine Hca_sched Hca_sim Int32 Interp List Machine_sim Opcode Postprocess Report Semantics
