test/test_exact.ml: Alcotest Array Ddg Dspfabric Encode Format Hca_baseline Hca_core Hca_ddg Hca_exact Hca_kernels Hca_machine Hca_util List Mii Opcode Oracle Printf Sat
