test/test_sched.ml: Alcotest Array Ddg Hca_core Hca_ddg Hca_kernels Hca_machine Hca_sched Koms Modulo Mrt Opcode Option Regpress
