test/test_util.ml: Alcotest Array Hca_util List Prng QCheck QCheck_alcotest String Tabular Vec
