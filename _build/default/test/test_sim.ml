(* Tests for the executable semantics, the reference interpreter and the
   timed machine simulator — including the end-to-end equivalence of the
   whole HCA + postprocess + scheduling pipeline. *)

open Hca_ddg
open Hca_machine
open Hca_core
open Hca_sim

(* --- semantics ------------------------------------------------------- *)

let test_semantics_basic () =
  Alcotest.(check int32) "add" 7l (Semantics.eval Opcode.Add [ 3l; 4l ]);
  Alcotest.(check int32) "unary add increments" 4l (Semantics.eval Opcode.Add [ 3l ]);
  Alcotest.(check int32) "sub" (-1l) (Semantics.eval Opcode.Sub [ 3l; 4l ]);
  Alcotest.(check int32) "mul" 12l (Semantics.eval Opcode.Mul [ 3l; 4l ]);
  Alcotest.(check int32) "min" 3l (Semantics.eval Opcode.Min [ 3l; 4l ]);
  Alcotest.(check int32) "abs" 5l (Semantics.eval Opcode.Abs [ -5l ]);
  Alcotest.(check int32) "clip low" 0l (Semantics.eval Opcode.Clip [ -5l ]);
  Alcotest.(check int32) "clip high" 255l (Semantics.eval Opcode.Clip [ 300l ]);
  Alcotest.(check int32) "cmp true" 1l (Semantics.eval Opcode.Cmp [ 1l; 2l ]);
  Alcotest.(check int32) "sel picks" 9l (Semantics.eval Opcode.Sel [ 1l; 9l; 8l ]);
  Alcotest.(check int32) "sel else" 8l (Semantics.eval Opcode.Sel [ 0l; 9l; 8l ]);
  Alcotest.(check int32) "mov id" 5l (Semantics.eval Opcode.Mov [ 5l ]);
  Alcotest.(check int32) "recv id" 5l (Semantics.eval Opcode.Recv [ 5l ]);
  Alcotest.(check int32) "const" 42l (Semantics.eval (Opcode.Const 42) [])

let test_semantics_memory_deterministic () =
  Alcotest.(check int32) "same addr" (Semantics.load_image 7l)
    (Semantics.load_image 7l);
  Alcotest.(check bool) "different addrs differ" true
    (Semantics.load_image 7l <> Semantics.load_image 8l);
  Alcotest.(check int32) "load evals image" (Semantics.load_image 5l)
    (Semantics.eval Opcode.Load [ 5l ])

let test_semantics_arity_checked () =
  Alcotest.check_raises "sub with no operands"
    (Invalid_argument "Semantics.eval: arity of sub") (fun () ->
      ignore (Semantics.eval Opcode.Sub []));
  (* Operators fold over whatever the dependence edges supply. *)
  Alcotest.(check int32) "sub folds" (-6l) (Semantics.eval Opcode.Sub [ 1l; 3l; 4l ])

(* --- interpreter ------------------------------------------------------ *)

let test_interp_induction_counts () =
  let b = Hca_kernels.Kbuild.create "ind" in
  let i = Hca_kernels.Kbuild.induction b ~name:"i" () in
  let addr = Hca_kernels.Kbuild.op b Opcode.Agen [ i ] in
  let _ = Hca_kernels.Kbuild.store b ~addr addr in
  let g = Hca_kernels.Kbuild.freeze b in
  (* The induction increments by one each iteration. *)
  let v0 = Interp.value_of g i 0 and v3 = Interp.value_of g i 3 in
  Alcotest.(check int32) "steps by one" (Int32.add v0 3l) v3

let test_interp_trace_shape () =
  let g = Hca_kernels.Fir2dim.ddg () in
  let trace = Interp.run ~iterations:4 g in
  (* fir2dim has one store per iteration. *)
  Alcotest.(check int) "one store x 4 iterations" 4 (List.length trace);
  List.iter
    (fun (e : Interp.event) ->
      Alcotest.(check bool) "iteration in range" true
        (e.iteration >= 0 && e.iteration < 4))
    trace

let test_interp_deterministic () =
  let g = Hca_kernels.Idcthor.ddg () in
  let a = Interp.run ~iterations:3 g and b = Interp.run ~iterations:3 g in
  Alcotest.(check bool) "same trace" true (a = b)

let test_interp_all_kernels_run () =
  List.iter
    (fun (name, f) ->
      let trace = Interp.run ~iterations:2 (f ()) in
      Alcotest.(check bool) (name ^ " stores") true (trace <> []))
    Hca_kernels.Registry.extended

(* --- machine simulator -------------------------------------------------- *)

let pipeline ddg =
  let fabric = Dspfabric.reference in
  let report = Report.run fabric ddg in
  match (report.Report.result, report.Report.final_mii) with
  | Some res, Some final -> (
      let exp = Postprocess.expand res in
      let params = { Hca_sched.Modulo.default_params with copy_latency = 0 } in
      match
        Hca_sched.Modulo.run ~params ~ddg:exp.Postprocess.ddg
          ~cn_of_instr:exp.Postprocess.cn_of_node
          ~cns:(Dspfabric.total_cns fabric)
          ~dma_ports:(Dspfabric.dma_ports fabric) ~start_ii:final ()
      with
      | Ok schedule -> (exp, schedule)
      | Error e -> failwith e)
  | _ -> failwith "clusterisation failed"

let test_machine_sim_equivalence kernel f () =
  let ddg = f () in
  let exp, schedule = pipeline ddg in
  match
    Machine_sim.check_against_reference ~iterations:6 ~original:ddg
      ~expanded:exp.Postprocess.ddg ~cn_of_node:exp.Postprocess.cn_of_node
      ~schedule ()
  with
  | Error e -> Alcotest.failf "%s: %s" kernel e
  | Ok stats ->
      Alcotest.(check bool) "issued everything" true
        (stats.Machine_sim.issued = 6 * Ddg.size exp.Postprocess.ddg);
      Alcotest.(check bool) "pipelined" true (stats.Machine_sim.max_inflight >= 1)

let test_machine_sim_catches_bad_schedule () =
  let ddg = Hca_kernels.Fir2dim.ddg () in
  let exp, schedule = pipeline ddg in
  (* Flatten the schedule to all-zero cycles: operands are read before
     they are produced (or CNs double-issue) and the simulator objects. *)
  let broken =
    {
      schedule with
      Hca_sched.Modulo.cycle_of =
        Array.map (fun _ -> 0) schedule.Hca_sched.Modulo.cycle_of;
    }
  in
  match
    Machine_sim.run ~iterations:2 ~ddg:exp.Postprocess.ddg
      ~cn_of_node:exp.Postprocess.cn_of_node ~schedule:broken ()
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "hazard not caught"

let test_machine_sim_cycle_count () =
  let ddg = Hca_kernels.Fir2dim.ddg () in
  let exp, schedule = pipeline ddg in
  match
    Machine_sim.run ~iterations:4 ~ddg:exp.Postprocess.ddg
      ~cn_of_node:exp.Postprocess.cn_of_node ~schedule ()
  with
  | Error e -> Alcotest.fail e
  | Ok stats ->
      (* Kernel-only pipeline: (trip + stages - 1) * II cycles, give or
         take the final iteration's tail. *)
      let ii = schedule.Hca_sched.Modulo.ii in
      Alcotest.(check bool) "at least trip x II" true
        (stats.Machine_sim.cycles >= 4 * ii)

let () =
  Alcotest.run "sim"
    [
      ( "semantics",
        [
          Alcotest.test_case "opcodes" `Quick test_semantics_basic;
          Alcotest.test_case "memory" `Quick test_semantics_memory_deterministic;
          Alcotest.test_case "arity" `Quick test_semantics_arity_checked;
        ] );
      ( "interp",
        [
          Alcotest.test_case "induction" `Quick test_interp_induction_counts;
          Alcotest.test_case "trace shape" `Quick test_interp_trace_shape;
          Alcotest.test_case "deterministic" `Quick test_interp_deterministic;
          Alcotest.test_case "all kernels" `Quick test_interp_all_kernels_run;
        ] );
      ( "machine-sim",
        [
          Alcotest.test_case "fir2dim equivalence" `Slow
            (test_machine_sim_equivalence "fir2dim" Hca_kernels.Fir2dim.ddg);
          Alcotest.test_case "idcthor equivalence" `Slow
            (test_machine_sim_equivalence "idcthor" Hca_kernels.Idcthor.ddg);
          Alcotest.test_case "mpeg2inter equivalence" `Slow
            (test_machine_sim_equivalence "mpeg2inter" Hca_kernels.Mpeg2inter.ddg);
          Alcotest.test_case "h264 equivalence" `Slow
            (test_machine_sim_equivalence "h264deblocking"
               Hca_kernels.H264deblock.ddg);
          Alcotest.test_case "hazard detection" `Slow
            test_machine_sim_catches_bad_schedule;
          Alcotest.test_case "cycle count" `Slow test_machine_sim_cycle_count;
        ] );
    ]
