(* Tests for the exact SAT-based cluster-assignment oracle: the CDCL
   solver on hand-built CNFs, the cardinality encoder, and the oracle
   cross-checked against the flat-ICA heuristic. *)

open Hca_ddg
open Hca_machine
open Hca_exact

(* ------------------------------------------------------------------ *)
(* CDCL solver on hand-built formulas.                                 *)
(* ------------------------------------------------------------------ *)

let result =
  Alcotest.testable
    (fun ppf -> function
      | Sat.Sat -> Format.pp_print_string ppf "sat"
      | Sat.Unsat -> Format.pp_print_string ppf "unsat"
      | Sat.Unknown -> Format.pp_print_string ppf "unknown")
    ( = )

let test_sat_basic () =
  let s = Sat.create () in
  let a = Sat.new_var s and b = Sat.new_var s in
  Sat.add_clause s [ a; b ];
  Sat.add_clause s [ -a ];
  Alcotest.check result "sat" Sat.Sat (Sat.solve s);
  Alcotest.(check bool) "a false" false (Sat.value s a);
  Alcotest.(check bool) "b true" true (Sat.value s b)

let test_unsat_basic () =
  let s = Sat.create () in
  let a = Sat.new_var s in
  Sat.add_clause s [ a ];
  Sat.add_clause s [ -a ];
  Alcotest.check result "unsat" Sat.Unsat (Sat.solve s)

let test_empty_clause () =
  let s = Sat.create () in
  let _ = Sat.new_var s in
  Sat.add_clause s [];
  Alcotest.check result "unsat" Sat.Unsat (Sat.solve s)

let test_pigeonhole () =
  (* 4 pigeons, 3 holes: needs real conflict learning to refute. *)
  let s = Sat.create () in
  let v = Array.init 4 (fun _ -> Array.init 3 (fun _ -> Sat.new_var s)) in
  for p = 0 to 3 do
    Sat.add_clause s (Array.to_list v.(p))
  done;
  for h = 0 to 2 do
    for p = 0 to 3 do
      for q = p + 1 to 3 do
        Sat.add_clause s [ -v.(p).(h); -v.(q).(h) ]
      done
    done
  done;
  Alcotest.check result "php(4,3)" Sat.Unsat (Sat.solve s)

let test_assumptions_incremental () =
  let s = Sat.create () in
  let a = Sat.new_var s and b = Sat.new_var s in
  Sat.add_clause s [ a; b ];
  Alcotest.check result "sat under -a" Sat.Sat (Sat.solve ~assumptions:[ -a ] s);
  Alcotest.(check bool) "b forced" true (Sat.value s b);
  (* The clause set stays usable after an unsat-under-assumptions call. *)
  Sat.add_clause s [ -b ];
  Alcotest.check result "unsat under -a" Sat.Unsat
    (Sat.solve ~assumptions:[ -a ] s);
  Alcotest.check result "still sat" Sat.Sat (Sat.solve s);
  Alcotest.(check bool) "a forced" true (Sat.value s a)

(* Cross-check the solver against brute force on random 3-CNFs. *)
let test_random_3sat_vs_bruteforce () =
  let prng = Hca_util.Prng.create 20260805 in
  let nvars = 8 and nclauses = 32 in
  for _ = 1 to 40 do
    let clauses =
      List.init nclauses (fun _ ->
          List.init 3 (fun _ ->
              let v = 1 + Hca_util.Prng.int prng nvars in
              if Hca_util.Prng.bool prng then v else -v))
    in
    let brute =
      let sat = ref false in
      for m = 0 to (1 lsl nvars) - 1 do
        if
          (not !sat)
          && List.for_all
               (List.exists (fun l ->
                    let v = abs l - 1 in
                    let bit = m land (1 lsl v) <> 0 in
                    if l > 0 then bit else not bit))
               clauses
        then sat := true
      done;
      if !sat then Sat.Sat else Sat.Unsat
    in
    let s = Sat.create () in
    for _ = 1 to nvars do
      ignore (Sat.new_var s)
    done;
    List.iter (Sat.add_clause s) clauses;
    Alcotest.check result "matches brute force" brute (Sat.solve s)
  done

(* ------------------------------------------------------------------ *)
(* Cardinality encoding.                                               *)
(* ------------------------------------------------------------------ *)

let test_at_most () =
  let s = Sat.create () in
  let vars = List.init 5 (fun _ -> Sat.new_var s) in
  Encode.at_most s vars 2;
  (* Forcing three of the five true must contradict the counter. *)
  (match vars with
  | a :: b :: c :: _ ->
      Alcotest.check result "3 > 2" Sat.Unsat
        (Sat.solve ~assumptions:[ a; b; c ] s)
  | _ -> assert false);
  (match vars with
  | a :: b :: _ ->
      Alcotest.check result "2 <= 2" Sat.Sat (Sat.solve ~assumptions:[ a; b ] s)
  | _ -> assert false)

let test_at_most_zero () =
  let s = Sat.create () in
  let vars = List.init 3 (fun _ -> Sat.new_var s) in
  Encode.at_most s vars 0;
  Alcotest.check result "sat all-false" Sat.Sat (Sat.solve s);
  List.iter
    (fun v -> Alcotest.(check bool) "forced false" false (Sat.value s v))
    vars

(* ------------------------------------------------------------------ *)
(* Oracle on a hand-built kernel with a known optimum.                  *)
(* ------------------------------------------------------------------ *)

let small_fabric = Dspfabric.make ~fanouts:[| 2; 2; 2 |] ~n:2 ~m:2 ~k:2 ()

let chain4 () =
  (* a -> b -> c -> d, all ALU ops.  On unit-capacity CNs every non-head
     segment of the chain pays one receive on its ALU slot, so feasible
     bounds k admit one head segment of k ops plus tail segments of
     k - 1 ops each: k = 1 packs at most 1 node, k = 2 packs 2+1+1 = 4.
     The proven optimum of the projected final MII is therefore 2. *)
  let b = Ddg.Builder.create ~name:"chain4" () in
  let a = Ddg.Builder.add_instr b ~name:"a" Opcode.Add in
  let b' = Ddg.Builder.add_instr b ~name:"b" Opcode.Add in
  let c = Ddg.Builder.add_instr b ~name:"c" Opcode.Add in
  let d = Ddg.Builder.add_instr b ~name:"d" Opcode.Add in
  Ddg.Builder.add_dep b ~src:a ~dst:b';
  Ddg.Builder.add_dep b ~src:b' ~dst:c;
  Ddg.Builder.add_dep b ~src:c ~dst:d;
  Ddg.Builder.freeze b

let test_oracle_chain_optimal () =
  let r = Oracle.run ~budget_s:20. small_fabric (chain4 ()) in
  (match r.Oracle.status with
  | Oracle.Optimal -> ()
  | s -> Alcotest.failf "expected optimal, got %s" (Oracle.status_to_string s));
  Alcotest.(check (option int)) "optimum 2" (Some 2) r.Oracle.final_mii;
  Alcotest.(check int) "lower bound matches" 2 r.Oracle.lower_bound;
  match r.Oracle.assignment with
  | None -> Alcotest.fail "optimal without a model"
  | Some a ->
      Alcotest.(check int) "every node placed" 0
        (Array.fold_left (fun acc c -> if c < 0 then acc + 1 else acc) 0 a)

let test_oracle_strict_no_better () =
  (* The structural wire clauses can only shrink the feasible set. *)
  let relaxed = Oracle.run ~budget_s:20. small_fabric (chain4 ()) in
  let strict = Oracle.run ~strict:true ~budget_s:20. small_fabric (chain4 ()) in
  match (relaxed.Oracle.final_mii, strict.Oracle.final_mii) with
  | Some r, Some s -> Alcotest.(check bool) "strict >= relaxed" true (s >= r)
  | _ -> Alcotest.fail "both searches should conclude on 4 nodes"

let test_encode_model_checks () =
  let problem = Oracle.problem_of small_fabric (chain4 ()) in
  let inst = Encode.of_problem problem in
  let enc = Encode.encode inst ~k:2 in
  Alcotest.check result "k=2 sat" Sat.Sat (Sat.solve enc.Encode.sat);
  let a = Encode.decode inst enc in
  Alcotest.(check bool) "recomputed MII within bound" true
    (Encode.cluster_mii_of_assignment inst a <= 2);
  let enc1 = Encode.encode inst ~k:1 in
  Alcotest.check result "k=1 unsat" Sat.Unsat (Sat.solve enc1.Encode.sat)

(* ------------------------------------------------------------------ *)
(* Cross-check: the oracle is a certified lower bound on the SEE.       *)
(* ------------------------------------------------------------------ *)

let crosscheck_kernel name ddg =
  let fabric = small_fabric in
  let flat = Hca_baseline.Flat_ica.run ~config:Hca_core.Config.greedy fabric ddg in
  match (flat.Hca_baseline.Flat_ica.outcome, flat.Hca_baseline.Flat_ica.projected_mii) with
  | Some _, Some projected ->
      let ini = Mii.mii ddg (Dspfabric.resources fabric) in
      let achieved = max ini projected in
      let oracle = Oracle.run ~budget_s:10. fabric ddg in
      Alcotest.(check bool)
        (name ^ ": certified lower bound <= SEE result")
        true
        (oracle.Oracle.lower_bound <= achieved);
      (match oracle.Oracle.final_mii with
      | Some f ->
          Alcotest.(check bool)
            (name ^ ": oracle never above a legal SEE MII")
            true (f <= achieved)
      | None -> ())
  | _ -> () (* SEE found nothing to compare against *)

let test_crosscheck_synthetic () =
  List.iter
    (fun (size, seed) ->
      let ddg =
        Hca_kernels.Synthetic.generate
          {
            Hca_kernels.Synthetic.default with
            size;
            layers = 3;
            seed;
            recurrences = 1;
          }
      in
      crosscheck_kernel (Printf.sprintf "syn%d/%d" size seed) ddg)
    [ (10, 1); (12, 2); (14, 3) ]

let test_crosscheck_chain () = crosscheck_kernel "chain4" (chain4 ())

let () =
  Alcotest.run "exact"
    [
      ( "sat",
        [
          Alcotest.test_case "basic sat" `Quick test_sat_basic;
          Alcotest.test_case "basic unsat" `Quick test_unsat_basic;
          Alcotest.test_case "empty clause" `Quick test_empty_clause;
          Alcotest.test_case "pigeonhole" `Quick test_pigeonhole;
          Alcotest.test_case "assumptions" `Quick test_assumptions_incremental;
          Alcotest.test_case "vs brute force" `Quick test_random_3sat_vs_bruteforce;
        ] );
      ( "cardinality",
        [
          Alcotest.test_case "at most k" `Quick test_at_most;
          Alcotest.test_case "at most 0" `Quick test_at_most_zero;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "chain optimum" `Quick test_oracle_chain_optimal;
          Alcotest.test_case "strict no better" `Quick test_oracle_strict_no_better;
          Alcotest.test_case "model checks" `Quick test_encode_model_checks;
        ] );
      ( "crosscheck",
        [
          Alcotest.test_case "synthetic" `Slow test_crosscheck_synthetic;
          Alcotest.test_case "chain" `Quick test_crosscheck_chain;
        ] );
    ]
