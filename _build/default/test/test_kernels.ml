(* The kernels must match Table 1 of the paper exactly on every static
   column; the synthetic generator must honour its parameters. *)

open Hca_ddg
open Hca_kernels

let resources = Hca_machine.Dspfabric.resources Hca_machine.Dspfabric.reference

(* (name, n_instr, mii_rec, mii_res) straight from Table 1. *)
let table1 =
  [
    ("fir2dim", 57, 3, 2);
    ("idcthor", 82, 1, 2);
    ("mpeg2inter", 79, 6, 2);
    ("h264deblocking", 214, 3, 4);
  ]

let check_kernel (name, n, rec_mii, res_mii) () =
  match Registry.find name with
  | None -> Alcotest.failf "kernel %s missing" name
  | Some f ->
      let g = f () in
      Alcotest.(check int) "N_Instr" n (Ddg.size g);
      Alcotest.(check int) "MIIRec" rec_mii (Mii.rec_mii g);
      Alcotest.(check int) "MIIRes" res_mii (Mii.res_mii g resources)

let test_registry_complete () =
  Alcotest.(check (list string))
    "paper order"
    [ "fir2dim"; "idcthor"; "mpeg2inter"; "h264deblocking" ]
    Registry.names;
  Alcotest.(check bool) "unknown" true (Registry.find "nope" = None)

let test_kernels_deterministic () =
  List.iter
    (fun (_, f) ->
      let a = f () and b = f () in
      Alcotest.(check bool) (Ddg.name a) true (Ddg.equal_structure a b))
    Registry.all

let test_kernels_have_stores () =
  (* Every media loop writes its results out. *)
  List.iter
    (fun (name, f) ->
      let g = f () in
      let stores = Ddg.count g (fun i -> i.Instr.opcode = Opcode.Store) in
      Alcotest.(check bool) (name ^ " has stores") true (stores > 0))
    Registry.all

let test_kernels_connected_consumers () =
  (* No dangling ALU results: every non-store instruction is consumed
     (stores and inductions close the dataflow). *)
  List.iter
    (fun (name, f) ->
      let g = f () in
      Array.iter
        (fun (i : Instr.t) ->
          if i.opcode <> Opcode.Store then
            Alcotest.(check bool)
              (Printf.sprintf "%s: %%%d consumed" name i.id)
              true
              (Ddg.succs g i.id <> []))
        (Ddg.instrs g))
    Registry.all

let test_kbuild_reduce () =
  let b = Kbuild.create "t" in
  let xs = List.init 9 (fun i -> Kbuild.const b i) in
  let root = Kbuild.reduce b Opcode.Add xs in
  let g = Kbuild.freeze b in
  (* 9 leaves need 8 binary adds. *)
  Alcotest.(check int) "nodes" (9 + 8) (Ddg.size g);
  Alcotest.(check int) "root is last" root (Ddg.size g - 1)

let test_kbuild_reduce_singleton () =
  let b = Kbuild.create "t" in
  let x = Kbuild.const b 1 in
  Alcotest.(check int) "singleton" x (Kbuild.reduce b Opcode.Add [ x ])

let test_kbuild_induction () =
  let b = Kbuild.create "t" in
  ignore (Kbuild.induction b ~step_ops:4 ());
  let g = Kbuild.freeze b in
  Alcotest.(check int) "step ops" 4 (Ddg.size g);
  Alcotest.(check int) "rec mii" 4 (Mii.rec_mii g)

let test_kbuild_carried () =
  let b = Kbuild.create "t" in
  let x = Kbuild.const b 1 in
  let y = Kbuild.op_carried b Opcode.Add [ (x, 0); (x, 1) ] in
  let g = Kbuild.freeze b in
  let dists =
    List.map (fun (e : Ddg.edge) -> e.distance) (Ddg.preds g y) |> List.sort compare
  in
  Alcotest.(check (list int)) "distances" [ 0; 1 ] dists

let test_synthetic_size () =
  List.iter
    (fun size ->
      let g = Synthetic.generate { Synthetic.default with size } in
      Alcotest.(check int) "size" size (Ddg.size g))
    [ 8; 33; 64; 200 ]

let test_synthetic_deterministic () =
  let p = { Synthetic.default with size = 50; seed = 99 } in
  Alcotest.(check bool) "same seed" true
    (Ddg.equal_structure (Synthetic.generate p) (Synthetic.generate p));
  let p' = { p with seed = 100 } in
  Alcotest.(check bool) "different seed" false
    (Ddg.equal_structure (Synthetic.generate p) (Synthetic.generate p'))

let test_synthetic_recurrence () =
  let g =
    Synthetic.generate
      { Synthetic.default with recurrences = 2; recurrence_latency = 4 }
  in
  Alcotest.(check int) "rec mii" 4 (Mii.rec_mii g)

let test_synthetic_mem_ratio () =
  let g =
    Synthetic.generate { Synthetic.default with size = 100; mem_ratio = 0.3 }
  in
  Alcotest.(check bool) "bounded memory" true (Ddg.memory_ops g <= 30)

let test_synthetic_validation () =
  Alcotest.check_raises "size" (Invalid_argument "Synthetic.generate: size must be >= 2")
    (fun () -> ignore (Synthetic.generate { Synthetic.default with size = 1 }));
  Alcotest.check_raises "mem ratio"
    (Invalid_argument "Synthetic.generate: mem_ratio out of [0, 0.5]") (fun () ->
      ignore (Synthetic.generate { Synthetic.default with mem_ratio = 0.9 }))

let prop_synthetic_always_freezes =
  QCheck.Test.make ~name:"synthetic kernels always freeze (acyclic intra)"
    ~count:100
    QCheck.(triple (int_range 4 120) (int_range 1 8) small_int)
    (fun (size, layers, seed) ->
      let g = Synthetic.generate { Synthetic.default with size; layers; seed } in
      Ddg.size g = size)

let () =
  Alcotest.run "kernels"
    [
      ( "table1",
        List.map
          (fun ((name, _, _, _) as row) ->
            Alcotest.test_case name `Quick (check_kernel row))
          table1 );
      ( "registry",
        [
          Alcotest.test_case "complete" `Quick test_registry_complete;
          Alcotest.test_case "deterministic" `Quick test_kernels_deterministic;
          Alcotest.test_case "stores" `Quick test_kernels_have_stores;
          Alcotest.test_case "consumers" `Quick test_kernels_connected_consumers;
        ] );
      ( "kbuild",
        [
          Alcotest.test_case "reduce" `Quick test_kbuild_reduce;
          Alcotest.test_case "reduce singleton" `Quick test_kbuild_reduce_singleton;
          Alcotest.test_case "induction" `Quick test_kbuild_induction;
          Alcotest.test_case "carried deps" `Quick test_kbuild_carried;
        ] );
      ( "synthetic",
        [
          Alcotest.test_case "size" `Quick test_synthetic_size;
          Alcotest.test_case "deterministic" `Quick test_synthetic_deterministic;
          Alcotest.test_case "recurrence" `Quick test_synthetic_recurrence;
          Alcotest.test_case "mem ratio" `Quick test_synthetic_mem_ratio;
          Alcotest.test_case "validation" `Quick test_synthetic_validation;
          QCheck_alcotest.to_alcotest prop_synthetic_always_freezes;
        ] );
    ]
