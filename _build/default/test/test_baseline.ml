(* Tests for the comparison baselines: the unified-machine optimum, the
   flat (non-hierarchical) ICA, the random floor and the Chu-style
   multilevel partitioner. *)

open Hca_machine
open Hca_baseline

let fabric = Dspfabric.reference

let test_unified_matches_table1 () =
  (* The "theoretical optimum" column implied by §5. *)
  List.iter
    (fun (name, expected) ->
      let ddg = (Option.get (Hca_kernels.Registry.find name)) () in
      Alcotest.(check int) name expected (Unified.mii ddg fabric))
    [ ("fir2dim", 3); ("idcthor", 2); ("mpeg2inter", 6); ("h264deblocking", 4) ]

let test_unified_gap () =
  let ddg = Hca_kernels.Fir2dim.ddg () in
  Alcotest.(check (float 1e-9)) "gap 2x" 2.0 (Unified.gap ddg fabric ~final_mii:6)

let test_flat_ica_runs () =
  let ddg = Hca_kernels.Fir2dim.ddg () in
  let res = Flat_ica.run ~config:Hca_core.Config.greedy fabric ddg in
  match res.Flat_ica.outcome with
  | None -> Alcotest.failf "flat ICA failed: %s" (Option.value ~default:"?" res.Flat_ica.error)
  | Some outcome ->
      Alcotest.(check bool) "complete" true (Hca_core.State.is_complete outcome.Hca_core.See.state);
      Alcotest.(check bool) "some copies" true (res.Flat_ica.copies > 0);
      Alcotest.(check bool) "projected known" true (res.Flat_ica.projected_mii <> None)

let test_flat_ica_violations_detected () =
  (* The flat view ignores the MUX hierarchy; on a communication-heavy
     kernel its assignment generally crosses set boundaries more ways
     than N wires allow.  At minimum the count must be well defined. *)
  let ddg = Hca_kernels.Idcthor.ddg () in
  let res = Flat_ica.run ~config:Hca_core.Config.greedy fabric ddg in
  match res.Flat_ica.outcome with
  | None -> () (* failing outright also demonstrates the point *)
  | Some outcome ->
      let v = Flat_ica.hierarchy_violations fabric outcome in
      Alcotest.(check bool) "non-negative" true (v >= 0)

(* Hand-built outcome with a known violation count: two producers in
   different level-0 sets both feeding one consumer in a third set.
   With every MUX capacity forced to 1, the consumer's set pulls from
   two foreign sets at level 0 (1 overflow) and at level 1 (1 more);
   the leaf crossbar admits 2 incoming wires per CN, so no leaf
   overflow — exactly 2 violations.  With capacity 8 everywhere the
   same placement is clean. *)
let two_feeders_outcome fabric16 =
  let open Hca_ddg in
  let b = Ddg.Builder.create ~name:"two-feeders" () in
  let p0 = Ddg.Builder.add_instr b ~name:"p0" Opcode.Add in
  let p1 = Ddg.Builder.add_instr b ~name:"p1" Opcode.Add in
  let c = Ddg.Builder.add_instr b ~name:"c" Opcode.Add in
  Ddg.Builder.add_dep b ~src:p0 ~dst:c;
  Ddg.Builder.add_dep b ~src:p1 ~dst:c;
  let ddg = Ddg.Builder.freeze b in
  let cns = Dspfabric.total_cns fabric16 in
  let pg =
    Pattern_graph.complete ~name:"flat16"
      ~capacities:(Array.make cns Resource.cn)
      ~max_in:2
  in
  let problem = Hca_core.Problem.of_ddg ~name:"flat16" ~ddg ~pg () in
  let weights = Hca_core.Cost.default_weights in
  let st = Hca_core.State.create problem in
  let assign st node cluster =
    match
      Hca_core.State.try_assign st ~node ~cluster ~ii:4 ~target_ii:4 ~weights
    with
    | Ok st -> st
    | Error e -> Alcotest.failf "assign %d -> CN%d: %s" node cluster e
  in
  let st = assign st p0 0 in
  let st = assign st p1 4 in
  let st = assign st c 8 in
  { Hca_core.See.state = st; alternatives = []; explored = 0; routed = 0 }

let test_hierarchy_violations_counted () =
  let fabric16 = Dspfabric.make ~fanouts:[| 4; 2; 2 |] ~n:1 ~m:1 ~k:1 () in
  let outcome = two_feeders_outcome fabric16 in
  Alcotest.(check int) "two overflows" 2
    (Flat_ica.hierarchy_violations fabric16 outcome)

let test_hierarchy_violations_none_when_wide () =
  let fabric16 = Dspfabric.make ~fanouts:[| 4; 2; 2 |] ~n:8 ~m:8 ~k:8 () in
  let outcome = two_feeders_outcome fabric16 in
  Alcotest.(check int) "fits the muxes" 0
    (Flat_ica.hierarchy_violations fabric16 outcome)

let test_random_assign_legal_budget () =
  let ddg = Hca_kernels.Fir2dim.ddg () in
  match Random_assign.run fabric ddg ~ii:2 with
  | Error e -> Alcotest.fail e
  | Ok r ->
      let load = Array.make 64 0 in
      Array.iter (fun c -> load.(c) <- load.(c) + 1) r.Random_assign.cn_of_instr;
      Array.iter
        (fun l -> Alcotest.(check bool) "issue budget" true (l <= 2))
        load

let test_random_assign_deterministic () =
  let ddg = Hca_kernels.Fir2dim.ddg () in
  let a = Result.get_ok (Random_assign.run ~seed:5 fabric ddg ~ii:4) in
  let b = Result.get_ok (Random_assign.run ~seed:5 fabric ddg ~ii:4) in
  Alcotest.(check (array int)) "same seed same result"
    a.Random_assign.cn_of_instr b.Random_assign.cn_of_instr

let test_random_assign_too_tight () =
  let ddg = Hca_kernels.H264deblock.ddg () in
  match Random_assign.run fabric ddg ~ii:3 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "214 ops cannot fit 192 slots"

let test_random_worse_than_hca () =
  (* The random floor must pay far more copies than HCA's clusterisation. *)
  let ddg = Hca_kernels.Fir2dim.ddg () in
  let report = Hca_core.Report.run fabric ddg in
  let rand = Result.get_ok (Random_assign.run fabric ddg ~ii:report.Hca_core.Report.ii_used) in
  match report.Hca_core.Report.result with
  | None -> Alcotest.fail "hca failed"
  | Some _ ->
      Alcotest.(check bool) "hca beats random pressure" true
        (Option.get report.Hca_core.Report.final_mii
        <= rand.Random_assign.projected_mii)

let test_chu_partition_runs () =
  let ddg = Hca_kernels.Idcthor.ddg () in
  match Chu_partition.run fabric ddg ~ii:4 with
  | Error e -> Alcotest.fail e
  | Ok r ->
      Array.iter
        (fun c -> Alcotest.(check bool) "placed" true (c >= 0 && c < 64))
        r.Chu_partition.cn_of_instr;
      Alcotest.(check bool) "copies counted" true (r.Chu_partition.copies > 0)

let test_chu_partition_balance () =
  let ddg = Hca_kernels.H264deblock.ddg () in
  match Chu_partition.run fabric ddg ~ii:4 with
  | Error e -> Alcotest.fail e
  | Ok r ->
      let load = Array.make 64 0 in
      Array.iter (fun c -> load.(c) <- load.(c) + 1) r.Chu_partition.cn_of_instr;
      Array.iter
        (fun l -> Alcotest.(check bool) "leaf capacity" true (l <= 4))
        load

let test_chu_beats_random_on_copies () =
  let ddg = Hca_kernels.Idcthor.ddg () in
  let chu = Result.get_ok (Chu_partition.run fabric ddg ~ii:4) in
  let rand = Result.get_ok (Random_assign.run fabric ddg ~ii:4) in
  Alcotest.(check bool) "affinity clustering helps" true
    (chu.Chu_partition.copies < rand.Random_assign.copies)

let () =
  Alcotest.run "baseline"
    [
      ( "unified",
        [
          Alcotest.test_case "table1 optima" `Quick test_unified_matches_table1;
          Alcotest.test_case "gap" `Quick test_unified_gap;
        ] );
      ( "flat-ica",
        [
          Alcotest.test_case "runs" `Slow test_flat_ica_runs;
          Alcotest.test_case "violations" `Slow test_flat_ica_violations_detected;
          Alcotest.test_case "violations counted" `Quick
            test_hierarchy_violations_counted;
          Alcotest.test_case "violations none when wide" `Quick
            test_hierarchy_violations_none_when_wide;
        ] );
      ( "random",
        [
          Alcotest.test_case "budget" `Quick test_random_assign_legal_budget;
          Alcotest.test_case "deterministic" `Quick test_random_assign_deterministic;
          Alcotest.test_case "too tight" `Quick test_random_assign_too_tight;
          Alcotest.test_case "worse than HCA" `Slow test_random_worse_than_hca;
        ] );
      ( "chu",
        [
          Alcotest.test_case "runs" `Quick test_chu_partition_runs;
          Alcotest.test_case "balance" `Quick test_chu_partition_balance;
          Alcotest.test_case "beats random" `Quick test_chu_beats_random_on_copies;
        ] );
    ]
