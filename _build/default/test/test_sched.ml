(* Tests for the modulo scheduler built on top of the clusterised DDG:
   the reservation table, Rau's iterative scheme, the kernel-only
   statistics and the register-pressure analysis. *)

open Hca_ddg
open Hca_sched

(* --- mrt -------------------------------------------------------------- *)

let test_mrt_reserve_release () =
  let t = Mrt.create ~ii:4 ~cns:2 ~dma_ports:1 in
  Alcotest.(check bool) "free" true (Mrt.issue_free t ~cn:0 ~cycle:6);
  Alcotest.(check bool) "reserve" true (Mrt.reserve t ~cn:0 ~cycle:6 ~memory:false);
  Alcotest.(check bool) "column taken" false (Mrt.issue_free t ~cn:0 ~cycle:2);
  Alcotest.(check bool) "other cn free" true (Mrt.issue_free t ~cn:1 ~cycle:2);
  Alcotest.(check bool) "conflict" false (Mrt.reserve t ~cn:0 ~cycle:10 ~memory:false);
  Mrt.release t ~cn:0 ~cycle:6 ~memory:false;
  Alcotest.(check bool) "released" true (Mrt.issue_free t ~cn:0 ~cycle:2)

let test_mrt_dma () =
  let t = Mrt.create ~ii:2 ~cns:4 ~dma_ports:1 in
  Alcotest.(check bool) "mem 1" true (Mrt.reserve t ~cn:0 ~cycle:0 ~memory:true);
  (* Same column, different CN: DMA port exhausted. *)
  Alcotest.(check bool) "dma full" false (Mrt.reserve t ~cn:1 ~cycle:2 ~memory:true);
  (* Other column is fine. *)
  Alcotest.(check bool) "other column" true (Mrt.reserve t ~cn:1 ~cycle:1 ~memory:true)

let test_mrt_occupancy () =
  let t = Mrt.create ~ii:2 ~cns:2 ~dma_ports:8 in
  ignore (Mrt.reserve t ~cn:0 ~cycle:0 ~memory:false);
  Alcotest.(check (float 1e-9)) "quarter" 0.25 (Mrt.occupancy t)

let test_mrt_release_unreserved () =
  let t = Mrt.create ~ii:2 ~cns:1 ~dma_ports:1 in
  Alcotest.check_raises "release empty"
    (Invalid_argument "Mrt.release: slot not reserved") (fun () ->
      Mrt.release t ~cn:0 ~cycle:0 ~memory:false)

(* --- modulo ----------------------------------------------------------- *)

let chain_on_one_cn n =
  let b = Ddg.Builder.create ~name:"chain" () in
  let ids = Array.init n (fun _ -> Ddg.Builder.add_instr b Opcode.Add) in
  for i = 0 to n - 2 do
    Ddg.Builder.add_dep b ~src:ids.(i) ~dst:ids.(i + 1)
  done;
  (Ddg.Builder.freeze b, Array.make n 0)

let test_modulo_single_cn_chain () =
  let ddg, cn_of_instr = chain_on_one_cn 4 in
  match Modulo.run ~ddg ~cn_of_instr ~cns:1 ~dma_ports:8 ~start_ii:1 () with
  | Error e -> Alcotest.fail e
  | Ok s ->
      (* 4 dependent ops on one single-issue CN: ii 4. *)
      Alcotest.(check int) "ii" 4 s.Modulo.ii;
      Alcotest.(check bool) "valid" true
        (Modulo.validate ~ddg ~cn_of_instr ~copy_latency:1 s = Ok ())

let test_modulo_parallel_ops () =
  let b = Ddg.Builder.create ~name:"par" () in
  for _ = 1 to 4 do
    ignore (Ddg.Builder.add_instr b Opcode.Add)
  done;
  let ddg = Ddg.Builder.freeze b in
  let cn_of_instr = Array.init 4 (fun i -> i) in
  match Modulo.run ~ddg ~cn_of_instr ~cns:4 ~dma_ports:8 ~start_ii:1 () with
  | Error e -> Alcotest.fail e
  | Ok s -> Alcotest.(check int) "ii 1" 1 s.Modulo.ii

let test_modulo_recurrence_bound () =
  let b = Ddg.Builder.create ~name:"rec" () in
  let x = Ddg.Builder.add_instr b Opcode.Add in
  let y = Ddg.Builder.add_instr b Opcode.Add in
  Ddg.Builder.add_dep b ~src:x ~dst:y;
  Ddg.Builder.add_dep b ~distance:1 ~src:y ~dst:x;
  let ddg = Ddg.Builder.freeze b in
  let cn_of_instr = [| 0; 1 |] in
  match Modulo.run ~ddg ~cn_of_instr ~cns:2 ~dma_ports:8 ~start_ii:1 () with
  | Error e -> Alcotest.fail e
  | Ok s ->
      (* Cross-CN edges pay the copy latency: the 2-op recurrence at
         latency 1+1 plus 2 copy cycles needs ii >= 4. *)
      Alcotest.(check bool) "recurrence + copies" true (s.Modulo.ii >= 4);
      Alcotest.(check bool) "valid" true
        (Modulo.validate ~ddg ~cn_of_instr ~copy_latency:1 s = Ok ())

let test_modulo_dma_pressure () =
  let b = Ddg.Builder.create ~name:"mem" () in
  let a = Ddg.Builder.add_instr b Opcode.Agen in
  for _ = 1 to 8 do
    let l = Ddg.Builder.add_instr b Opcode.Load in
    Ddg.Builder.add_dep b ~src:a ~dst:l
  done;
  let ddg = Ddg.Builder.freeze b in
  let cn_of_instr = Array.init 9 (fun i -> i mod 4) in
  match Modulo.run ~ddg ~cn_of_instr ~cns:4 ~dma_ports:2 ~start_ii:1 () with
  | Error e -> Alcotest.fail e
  | Ok s ->
      (* 8 loads over 2 DMA ports need >= 4 cycles. *)
      Alcotest.(check bool) "dma bound" true (s.Modulo.ii >= 4)

let test_modulo_rejects_bad_input () =
  let ddg, _ = chain_on_one_cn 3 in
  match Modulo.run ~ddg ~cn_of_instr:[| 0 |] ~cns:1 ~dma_ports:1 ~start_ii:1 () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "length mismatch accepted"

let test_modulo_validate_catches_violation () =
  let ddg, cn_of_instr = chain_on_one_cn 2 in
  match Modulo.run ~ddg ~cn_of_instr ~cns:1 ~dma_ports:8 ~start_ii:2 () with
  | Error e -> Alcotest.fail e
  | Ok s ->
      let broken = { s with Modulo.cycle_of = Array.map (fun _ -> 0) s.Modulo.cycle_of } in
      (match Modulo.validate ~ddg ~cn_of_instr ~copy_latency:1 broken with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "validation must fail")

let test_modulo_schedules_hca_output () =
  (* End-to-end: schedule fir2dim on its HCA placement and confirm the
     achieved II is at least the final MII the clusterisation reported. *)
  let fabric = Hca_machine.Dspfabric.reference in
  let ddg = Hca_kernels.Fir2dim.ddg () in
  let report = Hca_core.Report.run fabric ddg in
  match report.Hca_core.Report.result with
  | None -> Alcotest.fail "fir2dim must clusterise"
  | Some res -> (
      match
        Modulo.run ~ddg ~cn_of_instr:res.Hca_core.Hierarchy.cn_of_instr
          ~cns:(Hca_machine.Dspfabric.total_cns fabric)
          ~dma_ports:(Hca_machine.Dspfabric.dma_ports fabric)
          ~start_ii:(Option.get report.Hca_core.Report.final_mii)
          ()
      with
      | Error e -> Alcotest.fail e
      | Ok s ->
          Alcotest.(check bool) "valid schedule" true
            (Modulo.validate ~ddg ~cn_of_instr:res.Hca_core.Hierarchy.cn_of_instr
               ~copy_latency:1 s
            = Ok ());
          Alcotest.(check bool) "ii >= final MII" true
            (s.Modulo.ii >= Option.get report.Hca_core.Report.final_mii))

(* --- koms -------------------------------------------------------------- *)

let test_koms_stats () =
  let s =
    { Modulo.ii = 3; cycle_of = [| 0; 4; 8 |]; stages = 3; occupancy = 0.5; backtracks = 0 }
  in
  let k = Koms.analyse s in
  Alcotest.(check int) "stages" 3 k.Koms.stages;
  Alcotest.(check int) "predicates" 3 k.Koms.predicates;
  Alcotest.(check int) "fill/drain" 12 k.Koms.fill_drain_cycles;
  Alcotest.(check int) "total cycles" ((100 + 2) * 3) (Koms.total_cycles k ~trip:100)

let test_koms_speedup () =
  let s =
    { Modulo.ii = 2; cycle_of = [| 0; 2 |]; stages = 2; occupancy = 0.5; backtracks = 0 }
  in
  let k = Koms.analyse s in
  let sp = Koms.speedup_vs_unpipelined k ~trip:1000 ~schedule_length:10 in
  Alcotest.(check bool) "pipelining wins" true (sp > 4.0)

(* --- regpress ------------------------------------------------------------ *)

let test_regpress_chain () =
  let ddg, cn_of_instr = chain_on_one_cn 3 in
  match Modulo.run ~ddg ~cn_of_instr ~cns:1 ~dma_ports:8 ~start_ii:3 () with
  | Error e -> Alcotest.fail e
  | Ok s ->
      let rp = Regpress.analyse ~ddg ~cn_of_instr ~copy_latency:1 s in
      Alcotest.(check bool) "live values exist" true (rp.Regpress.max_live >= 1);
      Alcotest.(check bool) "lifetimes positive" true (rp.Regpress.total_lifetime >= 2)

let test_regpress_no_edges () =
  let b = Ddg.Builder.create ~name:"flat" () in
  ignore (Ddg.Builder.add_instr b Opcode.Add);
  let ddg = Ddg.Builder.freeze b in
  let s =
    { Modulo.ii = 1; cycle_of = [| 0 |]; stages = 1; occupancy = 1.0; backtracks = 0 }
  in
  let rp = Regpress.analyse ~ddg ~cn_of_instr:[| 0 |] ~copy_latency:1 s in
  Alcotest.(check int) "no liveness" 0 rp.Regpress.max_live

let () =
  Alcotest.run "sched"
    [
      ( "mrt",
        [
          Alcotest.test_case "reserve/release" `Quick test_mrt_reserve_release;
          Alcotest.test_case "dma" `Quick test_mrt_dma;
          Alcotest.test_case "occupancy" `Quick test_mrt_occupancy;
          Alcotest.test_case "release empty" `Quick test_mrt_release_unreserved;
        ] );
      ( "modulo",
        [
          Alcotest.test_case "chain" `Quick test_modulo_single_cn_chain;
          Alcotest.test_case "parallel" `Quick test_modulo_parallel_ops;
          Alcotest.test_case "recurrence" `Quick test_modulo_recurrence_bound;
          Alcotest.test_case "dma pressure" `Quick test_modulo_dma_pressure;
          Alcotest.test_case "bad input" `Quick test_modulo_rejects_bad_input;
          Alcotest.test_case "validate" `Quick test_modulo_validate_catches_violation;
          Alcotest.test_case "schedules HCA output" `Slow test_modulo_schedules_hca_output;
        ] );
      ( "koms",
        [
          Alcotest.test_case "stats" `Quick test_koms_stats;
          Alcotest.test_case "speedup" `Quick test_koms_speedup;
        ] );
      ( "regpress",
        [
          Alcotest.test_case "chain" `Quick test_regpress_chain;
          Alcotest.test_case "no edges" `Quick test_regpress_no_edges;
        ] );
    ]
