(* Tests for the IR: opcodes, DDG construction, graph algorithms, MII
   bounds and serialisation. *)

open Hca_ddg

(* --- helpers ------------------------------------------------------ *)

(* Linear chain a -> b -> c ... with unit latencies. *)
let chain n =
  let b = Ddg.Builder.create ~name:"chain" () in
  let ids = Array.init n (fun _ -> Ddg.Builder.add_instr b Opcode.Add) in
  for i = 0 to n - 2 do
    Ddg.Builder.add_dep b ~src:ids.(i) ~dst:ids.(i + 1)
  done;
  Ddg.Builder.freeze b

(* Self-recurrence of [k] unit ops at distance 1 => MIIRec = k. *)
let cycle k =
  let b = Ddg.Builder.create ~name:"cycle" () in
  let ids = Array.init k (fun _ -> Ddg.Builder.add_instr b Opcode.Add) in
  for i = 0 to k - 2 do
    Ddg.Builder.add_dep b ~src:ids.(i) ~dst:ids.(i + 1)
  done;
  Ddg.Builder.add_dep b ~distance:1 ~src:ids.(k - 1) ~dst:ids.(0);
  Ddg.Builder.freeze b

let default_resources =
  { Mii.alu_slots = 64; ag_slots = 64; issue_slots = 64; dma_ports = 8 }

(* --- opcode ------------------------------------------------------- *)

let test_opcode_roundtrip () =
  List.iter
    (fun op ->
      match Opcode.of_mnemonic (Opcode.mnemonic op) with
      | Some op' ->
          Alcotest.(check bool) (Opcode.mnemonic op) true (Opcode.equal op op')
      | None -> Alcotest.failf "no parse for %s" (Opcode.mnemonic op))
    Opcode.all

let test_opcode_const_roundtrip () =
  match Opcode.of_mnemonic (Opcode.mnemonic (Opcode.Const 42)) with
  | Some (Opcode.Const 42) -> ()
  | _ -> Alcotest.fail "const roundtrip"

let test_opcode_classes () =
  Alcotest.(check bool) "load on AG" true (Opcode.unit_class Opcode.Load = Opcode.Ag);
  Alcotest.(check bool) "agen on AG" true (Opcode.unit_class Opcode.Agen = Opcode.Ag);
  Alcotest.(check bool) "add on ALU" true (Opcode.unit_class Opcode.Add = Opcode.Alu);
  Alcotest.(check bool) "load is memory" true (Opcode.is_memory Opcode.Load);
  Alcotest.(check bool) "store is memory" true (Opcode.is_memory Opcode.Store);
  Alcotest.(check bool) "agen not memory" false (Opcode.is_memory Opcode.Agen)

let test_opcode_latencies () =
  Alcotest.(check int) "mul" 2 (Opcode.latency Opcode.Mul);
  Alcotest.(check int) "load" 3 (Opcode.latency Opcode.Load);
  Alcotest.(check int) "add" 1 (Opcode.latency Opcode.Add)

(* --- builder ------------------------------------------------------ *)

let test_builder_dense_ids () =
  let b = Ddg.Builder.create () in
  Alcotest.(check int) "first id" 0 (Ddg.Builder.add_instr b Opcode.Add);
  Alcotest.(check int) "second id" 1 (Ddg.Builder.add_instr b Opcode.Sub)

let test_builder_rejects_bad_edges () =
  let b = Ddg.Builder.create () in
  let a = Ddg.Builder.add_instr b Opcode.Add in
  Alcotest.check_raises "unknown id"
    (Invalid_argument "Ddg.Builder.add_dep: unknown instruction id") (fun () ->
      Ddg.Builder.add_dep b ~src:a ~dst:7);
  Alcotest.check_raises "self loop"
    (Invalid_argument "Ddg.Builder.add_dep: intra-iteration self-loop")
    (fun () -> Ddg.Builder.add_dep b ~src:a ~dst:a);
  Alcotest.check_raises "negative distance"
    (Invalid_argument "Ddg.Builder.add_dep: negative distance") (fun () ->
      Ddg.Builder.add_dep b ~distance:(-1) ~src:a ~dst:a)

let test_builder_rejects_intra_cycle () =
  let b = Ddg.Builder.create () in
  let x = Ddg.Builder.add_instr b Opcode.Add in
  let y = Ddg.Builder.add_instr b Opcode.Add in
  Ddg.Builder.add_dep b ~src:x ~dst:y;
  Ddg.Builder.add_dep b ~src:y ~dst:x;
  Alcotest.check_raises "intra cycle"
    (Invalid_argument "Ddg.Builder.freeze: intra-iteration dependence cycle")
    (fun () -> ignore (Ddg.Builder.freeze b))

let test_builder_allows_carried_cycle () =
  let g = cycle 3 in
  Alcotest.(check int) "size" 3 (Ddg.size g)

let test_default_latency_from_producer () =
  let b = Ddg.Builder.create () in
  let m = Ddg.Builder.add_instr b Opcode.Mul in
  let a = Ddg.Builder.add_instr b Opcode.Add in
  Ddg.Builder.add_dep b ~src:m ~dst:a;
  let g = Ddg.Builder.freeze b in
  match Ddg.succs g m with
  | [ e ] -> Alcotest.(check int) "mul latency" 2 e.Ddg.latency
  | _ -> Alcotest.fail "expected one edge"

let test_preds_succs_consistency () =
  let g = chain 5 in
  Ddg.iter_edges
    (fun e ->
      Alcotest.(check bool) "in succs" true (List.mem e (Ddg.succs g e.Ddg.src));
      Alcotest.(check bool) "in preds" true (List.mem e (Ddg.preds g e.Ddg.dst)))
    g

let test_induced_subgraph () =
  let g = chain 5 in
  let sub, mapping = Ddg.induced g [ 1; 2; 3 ] in
  Alcotest.(check int) "sub size" 3 (Ddg.size sub);
  Alcotest.(check int) "sub edges" 2 (Array.length (Ddg.edges sub));
  Alcotest.(check (array int)) "mapping" [| 1; 2; 3 |] mapping

let test_induced_rejects_duplicates () =
  let g = chain 3 in
  Alcotest.check_raises "dup" (Invalid_argument "Ddg.induced: duplicate id")
    (fun () -> ignore (Ddg.induced g [ 1; 1 ]))

let test_memory_ops_count () =
  let b = Ddg.Builder.create () in
  let a = Ddg.Builder.add_instr b Opcode.Agen in
  let l = Ddg.Builder.add_instr b Opcode.Load in
  let s = Ddg.Builder.add_instr b Opcode.Store in
  Ddg.Builder.add_dep b ~src:a ~dst:l;
  Ddg.Builder.add_dep b ~src:l ~dst:s;
  let g = Ddg.Builder.freeze b in
  Alcotest.(check int) "memory ops" 2 (Ddg.memory_ops g)

(* --- graph algorithms --------------------------------------------- *)

let test_topological_order () =
  let g = chain 6 in
  let order = Graph_algo.topological_order g in
  let pos = Array.make 6 0 in
  Array.iteri (fun i u -> pos.(u) <- i) order;
  Ddg.iter_edges
    (fun e ->
      if e.Ddg.distance = 0 then
        Alcotest.(check bool) "edge forward" true (pos.(e.Ddg.src) < pos.(e.Ddg.dst)))
    g

let test_depth_height_critical_path () =
  let g = chain 4 in
  let d = Graph_algo.depth g and h = Graph_algo.height g in
  Alcotest.(check int) "depth of head" 0 d.(0);
  Alcotest.(check int) "depth of tail" 3 d.(3);
  Alcotest.(check int) "height of head" 3 h.(0);
  Alcotest.(check int) "height of tail" 0 h.(3);
  Alcotest.(check int) "critical path" 3 (Graph_algo.critical_path g)

let test_slack_zero_on_critical () =
  let g = chain 4 in
  let s = Graph_algo.slack g in
  Array.iter (fun x -> Alcotest.(check int) "slack" 0 x) s

let test_sccs_cycle () =
  let g = cycle 4 in
  let comps = Graph_algo.nontrivial_sccs g in
  Alcotest.(check int) "one component" 1 (Array.length comps);
  Alcotest.(check int) "full size" 4 (List.length comps.(0))

let test_sccs_dag_trivial () =
  let g = chain 4 in
  Alcotest.(check int) "no recurrence" 0
    (Array.length (Graph_algo.nontrivial_sccs g))

let test_self_loop_scc () =
  let b = Ddg.Builder.create () in
  let x = Ddg.Builder.add_instr b Opcode.Add in
  Ddg.Builder.add_dep b ~distance:1 ~src:x ~dst:x;
  let g = Ddg.Builder.freeze b in
  Alcotest.(check int) "self loop counts" 1
    (Array.length (Graph_algo.nontrivial_sccs g))

let test_reachable () =
  let g = chain 4 in
  let r = Graph_algo.reachable g 1 in
  Alcotest.(check (array bool)) "reach" [| false; true; true; true |] r

let test_undirected_components () =
  let b = Ddg.Builder.create () in
  let a = Ddg.Builder.add_instr b Opcode.Add in
  let c = Ddg.Builder.add_instr b Opcode.Add in
  let d = Ddg.Builder.add_instr b Opcode.Add in
  Ddg.Builder.add_dep b ~src:a ~dst:c;
  ignore d;
  let g = Ddg.Builder.freeze b in
  Alcotest.(check int) "two components" 2
    (Array.length (Graph_algo.undirected_components g))

(* --- MII ----------------------------------------------------------- *)

let test_rec_mii_no_recurrence () =
  Alcotest.(check int) "dag" 1 (Mii.rec_mii (chain 8))

let test_rec_mii_cycles () =
  List.iter
    (fun k -> Alcotest.(check int) (Printf.sprintf "cycle %d" k) k (Mii.rec_mii (cycle k)))
    [ 1; 2; 3; 5; 7 ]

let test_rec_mii_distance_divides () =
  (* Cycle of latency 4 at distance 2 => MII = 2. *)
  let b = Ddg.Builder.create () in
  let ids = Array.init 4 (fun _ -> Ddg.Builder.add_instr b Opcode.Add) in
  for i = 0 to 2 do
    Ddg.Builder.add_dep b ~src:ids.(i) ~dst:ids.(i + 1)
  done;
  Ddg.Builder.add_dep b ~distance:2 ~src:ids.(3) ~dst:ids.(0);
  let g = Ddg.Builder.freeze b in
  Alcotest.(check int) "lat4/dist2" 2 (Mii.rec_mii g)

let test_rec_mii_max_over_cycles () =
  let b = Ddg.Builder.create () in
  let x = Ddg.Builder.add_instr b Opcode.Add in
  Ddg.Builder.add_dep b ~distance:1 ~src:x ~dst:x;
  let ids = Array.init 5 (fun _ -> Ddg.Builder.add_instr b Opcode.Add) in
  for i = 0 to 3 do
    Ddg.Builder.add_dep b ~src:ids.(i) ~dst:ids.(i + 1)
  done;
  Ddg.Builder.add_dep b ~distance:1 ~src:ids.(4) ~dst:ids.(0);
  let g = Ddg.Builder.freeze b in
  Alcotest.(check int) "max cycle wins" 5 (Mii.rec_mii g)

let test_res_mii_issue_bound () =
  let g = chain 100 in
  let r = { default_resources with issue_slots = 32; alu_slots = 32; ag_slots = 32 } in
  Alcotest.(check int) "100 ops / 32 slots" 4 (Mii.res_mii g r)

let test_res_mii_dma_bound () =
  let b = Ddg.Builder.create () in
  let a = Ddg.Builder.add_instr b Opcode.Agen in
  for _ = 1 to 20 do
    let l = Ddg.Builder.add_instr b Opcode.Load in
    Ddg.Builder.add_dep b ~src:a ~dst:l
  done;
  let g = Ddg.Builder.freeze b in
  Alcotest.(check int) "20 mem / 8 ports" 3 (Mii.res_mii g default_resources)

let test_mii_combines () =
  let g = cycle 5 in
  Alcotest.(check int) "rec dominates" 5 (Mii.mii g default_resources)

let test_achievable () =
  let g = cycle 3 in
  Alcotest.(check bool) "ii=2 impossible" false (Mii.achievable g ~ii:2);
  Alcotest.(check bool) "ii=3 fine" true (Mii.achievable g ~ii:3)

(* --- serialisation -------------------------------------------------- *)

let test_text_roundtrip () =
  let g = Hca_kernels.Fir2dim.ddg () in
  match Ddg_io.of_string (Ddg_io.to_string g) with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok g' ->
      Alcotest.(check bool) "structure equal" true (Ddg.equal_structure g g')

let test_parse_errors () =
  (match Ddg_io.of_string "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty input should fail");
  (match Ddg_io.of_string "ddg t\ni 0 add a\ne 0 5 1 0\n" with
  | Error e -> Alcotest.(check bool) "line number" true (String.length e > 0)
  | Ok _ -> Alcotest.fail "bad edge should fail");
  match Ddg_io.of_string "ddg t\ni 3 add a\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-dense ids should fail"

let test_dot_output () =
  let g = cycle 2 in
  let dot = Ddg_io.to_dot g in
  Alcotest.(check bool) "digraph" true
    (String.length dot > 0 && String.sub dot 0 7 = "digraph");
  Alcotest.(check bool) "dashed carried edge" true
    (let re = "style=dashed" in
     let rec search i =
       i + String.length re <= String.length dot
       && (String.sub dot i (String.length re) = re || search (i + 1))
     in
     search 0)

let test_dot_clustered () =
  let g = chain 2 in
  let dot = Ddg_io.to_dot ~cluster_of:(fun i -> Some (string_of_int i)) g in
  Alcotest.(check bool) "subgraph present" true
    (let re = "subgraph cluster_" in
     let rec search i =
       i + String.length re <= String.length dot
       && (String.sub dot i (String.length re) = re || search (i + 1))
     in
     search 0)

(* --- properties ----------------------------------------------------- *)

let synthetic_gen =
  QCheck.Gen.(
    map
      (fun (size, layers, seed) ->
        Hca_kernels.Synthetic.generate
          {
            Hca_kernels.Synthetic.default with
            size = 8 + size;
            layers = 1 + layers;
            seed;
          })
      (triple (int_bound 60) (int_bound 6) (int_bound 10000)))

let arbitrary_ddg = QCheck.make ~print:(fun g -> Ddg.name g) synthetic_gen

let prop_topo_respects_edges =
  QCheck.Test.make ~name:"topological order respects intra edges" ~count:60
    arbitrary_ddg (fun g ->
      let order = Graph_algo.topological_order g in
      let pos = Array.make (Ddg.size g) 0 in
      Array.iteri (fun i u -> pos.(u) <- i) order;
      Array.for_all
        (fun (e : Ddg.edge) -> e.distance > 0 || pos.(e.src) < pos.(e.dst))
        (Ddg.edges g))

let prop_rec_mii_achievable =
  QCheck.Test.make ~name:"rec_mii is achievable and minimal" ~count:40
    arbitrary_ddg (fun g ->
      let m = Mii.rec_mii g in
      Mii.achievable g ~ii:m && (m = 1 || not (Mii.achievable g ~ii:(m - 1))))

let prop_depth_height_bound =
  QCheck.Test.make ~name:"depth + height <= critical path" ~count:60
    arbitrary_ddg (fun g ->
      let d = Graph_algo.depth g and h = Graph_algo.height g in
      let cp = Graph_algo.critical_path g in
      Array.for_all (fun i -> d.(i.Instr.id) + h.(i.Instr.id) <= cp) (Ddg.instrs g))

let prop_serialisation_roundtrip =
  QCheck.Test.make ~name:"text serialisation round-trips" ~count:40
    arbitrary_ddg (fun g ->
      match Ddg_io.of_string (Ddg_io.to_string g) with
      | Ok g' -> Ddg.equal_structure g g'
      | Error _ -> false)

let () =
  Alcotest.run "ddg"
    [
      ( "opcode",
        [
          Alcotest.test_case "mnemonic roundtrip" `Quick test_opcode_roundtrip;
          Alcotest.test_case "const roundtrip" `Quick test_opcode_const_roundtrip;
          Alcotest.test_case "unit classes" `Quick test_opcode_classes;
          Alcotest.test_case "latencies" `Quick test_opcode_latencies;
        ] );
      ( "builder",
        [
          Alcotest.test_case "dense ids" `Quick test_builder_dense_ids;
          Alcotest.test_case "bad edges" `Quick test_builder_rejects_bad_edges;
          Alcotest.test_case "intra cycle" `Quick test_builder_rejects_intra_cycle;
          Alcotest.test_case "carried cycle ok" `Quick test_builder_allows_carried_cycle;
          Alcotest.test_case "default latency" `Quick test_default_latency_from_producer;
          Alcotest.test_case "preds/succs" `Quick test_preds_succs_consistency;
          Alcotest.test_case "induced" `Quick test_induced_subgraph;
          Alcotest.test_case "induced dup" `Quick test_induced_rejects_duplicates;
          Alcotest.test_case "memory ops" `Quick test_memory_ops_count;
        ] );
      ( "graph-algo",
        [
          Alcotest.test_case "topological" `Quick test_topological_order;
          Alcotest.test_case "depth/height/cp" `Quick test_depth_height_critical_path;
          Alcotest.test_case "slack" `Quick test_slack_zero_on_critical;
          Alcotest.test_case "scc cycle" `Quick test_sccs_cycle;
          Alcotest.test_case "scc dag" `Quick test_sccs_dag_trivial;
          Alcotest.test_case "self loop" `Quick test_self_loop_scc;
          Alcotest.test_case "reachable" `Quick test_reachable;
          Alcotest.test_case "undirected comps" `Quick test_undirected_components;
          QCheck_alcotest.to_alcotest prop_topo_respects_edges;
          QCheck_alcotest.to_alcotest prop_depth_height_bound;
        ] );
      ( "mii",
        [
          Alcotest.test_case "no recurrence" `Quick test_rec_mii_no_recurrence;
          Alcotest.test_case "cycles" `Quick test_rec_mii_cycles;
          Alcotest.test_case "distance divides" `Quick test_rec_mii_distance_divides;
          Alcotest.test_case "max over cycles" `Quick test_rec_mii_max_over_cycles;
          Alcotest.test_case "issue bound" `Quick test_res_mii_issue_bound;
          Alcotest.test_case "dma bound" `Quick test_res_mii_dma_bound;
          Alcotest.test_case "combined" `Quick test_mii_combines;
          Alcotest.test_case "achievable" `Quick test_achievable;
          QCheck_alcotest.to_alcotest prop_rec_mii_achievable;
        ] );
      ( "io",
        [
          Alcotest.test_case "roundtrip" `Quick test_text_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "dot" `Quick test_dot_output;
          Alcotest.test_case "dot clustered" `Quick test_dot_clustered;
          QCheck_alcotest.to_alcotest prop_serialisation_roundtrip;
        ] );
    ]
