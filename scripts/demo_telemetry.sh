#!/usr/bin/env bash
# End-to-end telemetry walkthrough — the scripted session from ISSUE 9's
# acceptance criteria, doubling as the CI metrics-smoke step.
#
#   1. start the daemon with structured logging, 1-in-2 request-trace
#      sampling and the flight recorder armed;
#   2. drive verified loadtest traffic through it;
#   3. snapshot the live dashboard (hca top) and scrape the Prometheus
#      exposition, asserting the key series are present and every
#      sample line parses;
#   4. validate a sampled per-request Chrome trace with hca tracecheck;
#   5. make a request miss its deadline on purpose and validate the
#      flight-recorder dump it leaves behind;
#   6. check the structured log: lifecycle events present, every line
#      one JSON object;
#   7. replay the same traffic against a telemetry-off daemon and let
#      bench_guard prove the served quality is bit-identical;
#   8. run the table1 bench with and without the flight ring armed and
#      let bench_guard gate the telemetry overhead.
#
# Binaries are resolved from _build so the daemon can be backgrounded
# without a wrapper process swallowing its graceful-shutdown SIGTERM;
# override with HCA= / GUARD= / BENCH=.
set -euo pipefail
cd "$(dirname "$0")/.."

HCA=${HCA:-./_build/default/bin/hca_cli.exe}
GUARD=${GUARD:-./_build/default/bin/bench_guard.exe}
BENCH=${BENCH:-./_build/default/bench/main.exe}

WORK=$(mktemp -d)
SOCK="$WORK/hca.sock"
LOG="$WORK/daemon.log.jsonl"
TRACES="$WORK/traces"
SERVE_PID=""
cleanup() {
  [ -n "$SERVE_PID" ] && kill -TERM "$SERVE_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "== 1. daemon: --log + --trace-sample 2 + flight recorder =="
"$HCA" serve --socket "$SOCK" --jobs 2 \
  --log "$LOG" --log-level debug \
  --trace-sample 2 --trace-dir "$TRACES" --slow-ms 30000 &
SERVE_PID=$!

echo "== 2. verified loadtest traffic =="
"$HCA" loadtest --socket "$SOCK" --count 20 --jobs 2 --verify \
  --out "$WORK/loadtest_on.json"

echo "== 3. live dashboard snapshot =="
"$HCA" top --socket "$SOCK" --once

echo "== 4. Prometheus scrape: parses, key series present =="
"$HCA" top --socket "$SOCK" --prometheus --check > "$WORK/metrics.prom"
for series in hca_requests_total hca_jobs_submitted_total \
              hca_jobs_done_total hca_request_latency_ms_bucket \
              hca_memo_hits_total hca_queue_depth; do
  grep -q "$series" "$WORK/metrics.prom" \
    || { echo "FAIL: series $series missing from the scrape"; exit 1; }
done

echo "== 5. sampled per-request trace validates =="
REQ=$(ls "$TRACES"/req-*.json | head -n 1)
"$HCA" tracecheck "$REQ" --expect report.run

kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
SERVE_PID=""

echo "== 6. structured log: lifecycle events, one JSON object per line =="
for ev in daemon.listen job.submit job.start job.finish trace.write \
          daemon.exit; do
  grep -q "\"event\":\"$ev\"" "$LOG" \
    || { echo "FAIL: log event $ev missing"; exit 1; }
done
python3 - "$LOG" <<'EOF'
import json, sys
for n, line in enumerate(open(sys.argv[1]), 1):
    json.loads(line)
print(f"  {n} log lines, all valid JSON")
EOF

echo "== 7. deadline miss dumps the flight recorder (stdio transport) =="
printf '%s\n' \
  '{"verb":"submit","kernel":"h264deblocking","deadline_s":0.001}' \
  '{"verb":"shutdown"}' \
  | "$HCA" serve --stdio --jobs 1 --trace-dir "$TRACES" --slow-ms 30000 \
  > /dev/null
FLIGHT=$(ls "$TRACES"/flight-*.json | head -n 1)
"$HCA" tracecheck "$FLIGHT"

echo "== 8. telemetry off: same traffic, bit-identical quality =="
"$HCA" serve --socket "$SOCK" --jobs 2 --no-flight &
SERVE_PID=$!
"$HCA" loadtest --socket "$SOCK" --count 20 --jobs 2 --verify \
  --out "$WORK/loadtest_off.json"
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
SERVE_PID=""
"$GUARD" "$WORK/loadtest_off.json" "$WORK/loadtest_on.json"

echo "== 9. telemetry overhead within budget on the table1 bench =="
"$BENCH" table1 --json --jobs 1 > "$WORK/table1_off.json"
"$BENCH" table1 --telemetry --json --jobs 1 > "$WORK/table1_on.json"
"$GUARD" --overhead-budget table1/h264deblocking=1.50 \
  "$WORK/table1_off.json" "$WORK/table1_on.json"

echo "demo_telemetry: all steps passed"
