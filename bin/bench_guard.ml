(* bench_guard: quality-regression gate over bench NDJSON output.

   Usage: bench_guard [--runtime-budget EXP/KERNEL=SECONDS]...
                      [--gate-optgap] BASELINE.json CURRENT.json

   Both files hold newline-delimited JSON records as emitted by
   [bench/main.exe --json].  For every (experiment, kernel) row present
   in BOTH files, the quality fields — "final_mii", "legal", "copies",
   and "wires" when present — must match exactly; runtimes and counters
   may drift, quality may not.  Rows only one side has (new kernels,
   new experiments) are reported but do not fail the gate, so the
   baseline does not need to grow in lockstep with the suite.

   The "optgap" experiment is skipped by default: its oracle columns
   depend on a SAT budget, so exact equality is not stable across
   machines.  [--gate-optgap] turns on the budget-robust checks
   instead: the two runs' {e certificates} must not contradict (a
   current certified lower bound above a baseline model, or a current
   model below the baseline's certified lower bound, is always a solver
   bug regardless of budget), two proven optima must agree, and the
   number of proven-optimal rows must not drop — a solver speed
   regression shows up as a probe that no longer closes in budget.

   Each repeatable [--runtime-budget exp/kernel=seconds] flag adds a
   wall-clock ceiling on one CURRENT row's "runtime_s": a row over its
   budget (or a budgeted row that is missing) fails the gate exactly
   like a quality regression.  Budgets are opt-in per row, so the
   default gate stays machine-independent; CI pins them only on the
   kernels whose hot-path performance is a tracked deliverable.

   Each repeatable [--require-rows exp=N] flag gates the CURRENT run's
   coverage: the file must hold exactly N rows of that experiment.  A
   sweep that silently dropped points (or double-counted them) fails
   even though every row it did emit is individually clean — this is
   how the dse-smoke gate pins the size of the swept design space.

   Each repeatable [--overhead-budget exp/kernel=factor] flag instead
   gates the RATIO of the current row's "runtime_s" to the baseline's:
   current must be <= factor * baseline.  Since both runs come from the
   same machine in the same CI job, the ratio is machine-independent —
   this is how the telemetry-overhead gate proves that arming the
   observability stack costs at most the budgeted factor.

   A baseline row whose "git" stamp carries a "-dirty" suffix draws a
   warning: it was produced from an uncommitted tree, so it cannot be
   correlated with any commit (the PR-7 baseline had exactly this flaw).

   Exit status: 0 clean, 1 on any quality regression or busted runtime
   budget, 2 on usage or parse errors.

   The parser below handles exactly the flat one-line objects
   [emit_json] produces (string keys, unnested scalar values) — not
   general JSON.  Keeping it hand-rolled avoids a JSON dependency in
   the repo's install footprint. *)

let quality_fields = [ "final_mii"; "legal"; "copies"; "wires" ]

let skipped_experiments = [ "optgap" ]

let contains_substring hay needle =
  let hn = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= hn && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* "key":value scanner over one emit_json line.  Values are scalars
   (number / bool / null) or %S-escaped strings; a string value is
   returned with its quotes so comparisons stay exact. *)
let fields_of_line line =
  let n = String.length line in
  let fields = ref [] in
  let i = ref 0 in
  let fail msg = failwith (Printf.sprintf "%s in %s" msg line) in
  let scan_string () =
    (* [!i] is at the opening quote; returns the contents, leaves [!i]
       past the closing quote. *)
    let b = Buffer.create 16 in
    incr i;
    let rec go () =
      if !i >= n then fail "unterminated string"
      else
        match line.[!i] with
        | '"' -> incr i
        | '\\' when !i + 1 < n ->
            Buffer.add_char b line.[!i];
            Buffer.add_char b line.[!i + 1];
            i := !i + 2;
            go ()
        | c ->
            Buffer.add_char b c;
            incr i;
            go ()
    in
    go ();
    Buffer.contents b
  in
  while !i < n do
    match line.[!i] with
    | '"' ->
        let key = scan_string () in
        if !i >= n || line.[!i] <> ':' then fail "expected ':' after key";
        incr i;
        let value =
          if !i < n && line.[!i] = '"' then "\"" ^ scan_string () ^ "\""
          else begin
            let start = !i in
            while
              !i < n && (match line.[!i] with ',' | '}' -> false | _ -> true)
            do
              incr i
            done;
            String.sub line start (!i - start)
          end
        in
        fields := (key, value) :: !fields
    | _ -> incr i
  done;
  List.rev !fields

let load path =
  let ic = open_in path in
  let rows = ref [] in
  (try
     while true do
       let line = String.trim (input_line ic) in
       if line <> "" then begin
         let fields = fields_of_line line in
         match
           (List.assoc_opt "experiment" fields, List.assoc_opt "kernel" fields)
         with
         | Some e, Some k -> rows := ((e, k), fields) :: !rows
         | _ -> failwith ("row without experiment/kernel: " ^ line)
       end
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !rows

let usage () =
  prerr_endline
    "usage: bench_guard [--runtime-budget EXP/KERNEL=SECONDS]... \
     [--overhead-budget EXP/KERNEL=FACTOR]... [--require-rows EXP=N]... \
     [--gate-optgap] BASELINE.json CURRENT.json";
  exit 2

(* "exp/kernel=seconds" -> ((exp, kernel), seconds) *)
let parse_budget spec =
  match String.index_opt spec '=' with
  | None -> None
  | Some eq -> (
      let target = String.sub spec 0 eq in
      let secs = String.sub spec (eq + 1) (String.length spec - eq - 1) in
      match (String.index_opt target '/', float_of_string_opt secs) with
      | Some slash, Some s when s > 0.0 ->
          let exp = String.sub target 0 slash in
          let kernel =
            String.sub target (slash + 1) (String.length target - slash - 1)
          in
          if exp = "" || kernel = "" then None else Some ((exp, kernel), s)
      | _ -> None)

(* "exp=N" -> (exp, N) *)
let parse_row_count spec =
  match String.index_opt spec '=' with
  | None -> None
  | Some eq -> (
      let exp = String.sub spec 0 eq in
      let count = String.sub spec (eq + 1) (String.length spec - eq - 1) in
      match int_of_string_opt count with
      | Some n when exp <> "" && n >= 0 -> Some (exp, n)
      | _ -> None)

let () =
  let budgets = ref [] in
  let overheads = ref [] in
  let row_counts = ref [] in
  let paths = ref [] in
  let gate_optgap = ref false in
  let rec parse_args = function
    | [] -> ()
    | "--runtime-budget" :: spec :: rest -> (
        match parse_budget spec with
        | Some b ->
            budgets := b :: !budgets;
            parse_args rest
        | None ->
            Printf.eprintf
              "bench_guard: bad --runtime-budget %S (want exp/kernel=seconds)\n"
              spec;
            exit 2)
    | [ "--runtime-budget" ] -> usage ()
    | "--overhead-budget" :: spec :: rest -> (
        match parse_budget spec with
        | Some b ->
            overheads := b :: !overheads;
            parse_args rest
        | None ->
            Printf.eprintf
              "bench_guard: bad --overhead-budget %S (want exp/kernel=factor)\n"
              spec;
            exit 2)
    | [ "--overhead-budget" ] -> usage ()
    | "--require-rows" :: spec :: rest -> (
        match parse_row_count spec with
        | Some rc ->
            row_counts := rc :: !row_counts;
            parse_args rest
        | None ->
            Printf.eprintf
              "bench_guard: bad --require-rows %S (want exp=N)\n" spec;
            exit 2)
    | [ "--require-rows" ] -> usage ()
    | "--gate-optgap" :: rest ->
        gate_optgap := true;
        parse_args rest
    | p :: rest ->
        paths := p :: !paths;
        parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let budgets = List.rev !budgets in
  let overheads = List.rev !overheads in
  let row_counts = List.rev !row_counts in
  match List.rev !paths with
  | [ baseline_path; current_path ] -> (
      match (load baseline_path, load current_path) with
      | exception Failure msg ->
          Printf.eprintf "bench_guard: %s\n" msg;
          exit 2
      | exception Sys_error msg ->
          Printf.eprintf "bench_guard: %s\n" msg;
          exit 2
      | baseline, current ->
          let regressions = ref 0 and compared = ref 0 in
          (* Provenance check: a -dirty stamp means the baseline was
             generated from an uncommitted tree and matches no commit. *)
          let dirty_rows =
            List.filter
              (fun (_, fields) ->
                match List.assoc_opt "git" fields with
                | Some v -> contains_substring v "-dirty"
                | None -> false)
              baseline
          in
          if dirty_rows <> [] then
            Printf.printf
              "  warning: %d baseline row(s) carry a -dirty git stamp \
               (produced from an uncommitted tree); regenerate the baseline \
               from a clean checkout\n"
              (List.length dirty_rows);
          let base_optimal = ref 0 and cur_optimal = ref 0 in
          List.iter
            (fun ((exp, kernel), cur_fields) ->
              let exp_name =
                (* experiment/kernel values carry their quotes *)
                if String.length exp >= 2 then
                  String.sub exp 1 (String.length exp - 2)
                else exp
              in
              match List.assoc_opt (exp, kernel) baseline with
              | _
                when List.mem exp_name skipped_experiments
                     && not (!gate_optgap && exp_name = "optgap") ->
                  ()
              | None ->
                  Printf.printf "  new row %s/%s (not in baseline, ok)\n" exp
                    kernel
              | Some base_fields when exp_name = "optgap" ->
                  (* Budget-robust oracle checks: certificates from two
                     runs of a sound solver can never contradict, no
                     matter how their budgets differed. *)
                  incr compared;
                  let int_field fields name =
                    Option.bind (List.assoc_opt name fields) int_of_string_opt
                  in
                  let status fields = List.assoc_opt "status" fields in
                  if status base_fields = Some "\"optimal\"" then
                    incr base_optimal;
                  if status cur_fields = Some "\"optimal\"" then
                    incr cur_optimal;
                  (match
                     ( int_field cur_fields "lower_bound",
                       int_field base_fields "final_mii" )
                   with
                  | Some lc, Some fb when lc > fb ->
                      incr regressions;
                      Printf.printf
                        "REGRESSION %s/%s: certified lower bound %d \
                         contradicts baseline model at %d\n"
                        exp kernel lc fb
                  | _ -> ());
                  (match
                     ( int_field base_fields "lower_bound",
                       int_field cur_fields "final_mii" )
                   with
                  | Some lb, Some fc when fc < lb ->
                      incr regressions;
                      Printf.printf
                        "REGRESSION %s/%s: model at %d below baseline \
                         certified lower bound %d\n"
                        exp kernel fc lb
                  | _ -> ());
                  (match
                     ( status base_fields,
                       status cur_fields,
                       int_field base_fields "final_mii",
                       int_field cur_fields "final_mii" )
                   with
                  | Some "\"optimal\"", Some "\"optimal\"", Some a, Some b
                    when a <> b ->
                      incr regressions;
                      Printf.printf
                        "REGRESSION %s/%s: proven optimum moved from %d to %d\n"
                        exp kernel a b
                  | _ -> ())
              | Some base_fields ->
                  incr compared;
                  List.iter
                    (fun f ->
                      match
                        ( List.assoc_opt f base_fields,
                          List.assoc_opt f cur_fields )
                      with
                      | Some b, Some c when b <> c ->
                          incr regressions;
                          Printf.printf
                            "REGRESSION %s/%s: %s was %s, now %s\n" exp kernel
                            f b c
                      | Some _, None ->
                          incr regressions;
                          Printf.printf "REGRESSION %s/%s: %s disappeared\n"
                            exp kernel f
                      | None, _ -> ()
                      | Some _, Some _ -> ())
                    quality_fields)
            current;
          if !gate_optgap && !cur_optimal < !base_optimal then begin
            incr regressions;
            Printf.printf
              "REGRESSION optgap: proven-optimal rows dropped from %d to %d \
               (a probe no longer closes within its budget)\n"
              !base_optimal !cur_optimal
          end;
          List.iter
            (fun ((exp, kernel), _) ->
              if not (List.mem_assoc (exp, kernel) current) then
                Printf.printf "  baseline row %s/%s missing from current run\n"
                  exp kernel)
            baseline;
          (* Row keys carry their JSON quotes; budget specs do not. *)
          List.iter
            (fun ((exp, kernel), budget_s) ->
              let key = (Printf.sprintf "%S" exp, Printf.sprintf "%S" kernel) in
              match List.assoc_opt key current with
              | None ->
                  incr regressions;
                  Printf.printf
                    "REGRESSION %s/%s: runtime budget %.3fs set but row \
                     missing from current run\n"
                    exp kernel budget_s
              | Some fields -> (
                  match
                    Option.bind
                      (List.assoc_opt "runtime_s" fields)
                      float_of_string_opt
                  with
                  | None ->
                      incr regressions;
                      Printf.printf
                        "REGRESSION %s/%s: runtime budget %.3fs set but row \
                         has no runtime_s\n"
                        exp kernel budget_s
                  | Some t when t > budget_s ->
                      incr regressions;
                      Printf.printf
                        "REGRESSION %s/%s: runtime_s %.3f over budget %.3f\n"
                        exp kernel t budget_s
                  | Some t ->
                      Printf.printf "  %s/%s runtime_s %.3f within budget %.3f\n"
                        exp kernel t budget_s))
            budgets;
          (* Coverage gate: the current run must hold exactly the
             declared number of rows per experiment — a sweep that
             dropped points emits only clean rows, so nothing else
             would notice. *)
          List.iter
            (fun (exp, want) ->
              let key = Printf.sprintf "%S" exp in
              let got =
                List.length (List.filter (fun ((e, _), _) -> e = key) current)
              in
              if got <> want then begin
                incr regressions;
                Printf.printf
                  "REGRESSION %s: expected %d row(s) in the current run, got \
                   %d\n"
                  exp want got
              end
              else
                Printf.printf "  %s row count %d as required\n" exp got)
            row_counts;
          (* Ratio gate: current runtime_s <= factor * baseline
             runtime_s for the same (experiment, kernel) row.  Both
             runs come from this invocation's two input files, so the
             comparison cancels the machine out. *)
          List.iter
            (fun ((exp, kernel), factor) ->
              let key = (Printf.sprintf "%S" exp, Printf.sprintf "%S" kernel) in
              let runtime rows =
                Option.bind (List.assoc_opt key rows) (fun fields ->
                    Option.bind
                      (List.assoc_opt "runtime_s" fields)
                      float_of_string_opt)
              in
              match (runtime baseline, runtime current) with
              | None, _ | _, None ->
                  incr regressions;
                  Printf.printf
                    "REGRESSION %s/%s: overhead budget %.2fx set but the row \
                     (with runtime_s) is missing from %s\n"
                    exp kernel factor
                    (if runtime baseline = None then "the baseline run"
                     else "the current run")
              | Some base_t, Some cur_t ->
                  if cur_t > factor *. base_t then begin
                    incr regressions;
                    Printf.printf
                      "REGRESSION %s/%s: runtime_s %.3f is %.2fx the baseline \
                       %.3f (budget %.2fx)\n"
                      exp kernel cur_t
                      (if base_t > 0. then cur_t /. base_t else infinity)
                      base_t factor
                  end
                  else
                    Printf.printf
                      "  %s/%s runtime_s %.3f vs baseline %.3f (%.2fx, budget \
                       %.2fx)\n"
                      exp kernel cur_t base_t
                      (if base_t > 0. then cur_t /. base_t else 0.)
                      factor)
            overheads;
          if !regressions > 0 then begin
            Printf.printf "bench_guard: %d quality regression(s) over %d rows\n"
              !regressions !compared;
            exit 1
          end
          else
            Printf.printf "bench_guard: %d rows compared, quality unchanged\n"
              !compared)
  | _ -> usage ()
