(* bench_guard: quality-regression gate over bench NDJSON output.

   Usage: bench_guard BASELINE.json CURRENT.json

   Both files hold newline-delimited JSON records as emitted by
   [bench/main.exe --json].  For every (experiment, kernel) row present
   in BOTH files, the quality fields — "final_mii", "legal", "copies",
   and "wires" when present — must match exactly; runtimes and counters
   may drift, quality may not.  Rows only one side has (new kernels,
   new experiments) are reported but do not fail the gate, so the
   baseline does not need to grow in lockstep with the suite.  The
   "optgap" experiment is skipped: its oracle columns depend on a
   wall-clock SAT budget, so they are not stable across machines.

   Exit status: 0 clean, 1 on any quality regression, 2 on usage or
   parse errors.

   The parser below handles exactly the flat one-line objects
   [emit_json] produces (string keys, unnested scalar values) — not
   general JSON.  Keeping it hand-rolled avoids a JSON dependency in
   the repo's install footprint. *)

let quality_fields = [ "final_mii"; "legal"; "copies"; "wires" ]

let skipped_experiments = [ "optgap" ]

(* "key":value scanner over one emit_json line.  Values are scalars
   (number / bool / null) or %S-escaped strings; a string value is
   returned with its quotes so comparisons stay exact. *)
let fields_of_line line =
  let n = String.length line in
  let fields = ref [] in
  let i = ref 0 in
  let fail msg = failwith (Printf.sprintf "%s in %s" msg line) in
  let scan_string () =
    (* [!i] is at the opening quote; returns the contents, leaves [!i]
       past the closing quote. *)
    let b = Buffer.create 16 in
    incr i;
    let rec go () =
      if !i >= n then fail "unterminated string"
      else
        match line.[!i] with
        | '"' -> incr i
        | '\\' when !i + 1 < n ->
            Buffer.add_char b line.[!i];
            Buffer.add_char b line.[!i + 1];
            i := !i + 2;
            go ()
        | c ->
            Buffer.add_char b c;
            incr i;
            go ()
    in
    go ();
    Buffer.contents b
  in
  while !i < n do
    match line.[!i] with
    | '"' ->
        let key = scan_string () in
        if !i >= n || line.[!i] <> ':' then fail "expected ':' after key";
        incr i;
        let value =
          if !i < n && line.[!i] = '"' then "\"" ^ scan_string () ^ "\""
          else begin
            let start = !i in
            while
              !i < n && (match line.[!i] with ',' | '}' -> false | _ -> true)
            do
              incr i
            done;
            String.sub line start (!i - start)
          end
        in
        fields := (key, value) :: !fields
    | _ -> incr i
  done;
  List.rev !fields

let load path =
  let ic = open_in path in
  let rows = ref [] in
  (try
     while true do
       let line = String.trim (input_line ic) in
       if line <> "" then begin
         let fields = fields_of_line line in
         match
           (List.assoc_opt "experiment" fields, List.assoc_opt "kernel" fields)
         with
         | Some e, Some k -> rows := ((e, k), fields) :: !rows
         | _ -> failwith ("row without experiment/kernel: " ^ line)
       end
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !rows

let () =
  match Sys.argv with
  | [| _; baseline_path; current_path |] -> (
      match (load baseline_path, load current_path) with
      | exception Failure msg ->
          Printf.eprintf "bench_guard: %s\n" msg;
          exit 2
      | exception Sys_error msg ->
          Printf.eprintf "bench_guard: %s\n" msg;
          exit 2
      | baseline, current ->
          let regressions = ref 0 and compared = ref 0 in
          List.iter
            (fun ((exp, kernel), cur_fields) ->
              let exp_name =
                (* experiment/kernel values carry their quotes *)
                if String.length exp >= 2 then
                  String.sub exp 1 (String.length exp - 2)
                else exp
              in
              match List.assoc_opt (exp, kernel) baseline with
              | _ when List.mem exp_name skipped_experiments -> ()
              | None ->
                  Printf.printf "  new row %s/%s (not in baseline, ok)\n" exp
                    kernel
              | Some base_fields ->
                  incr compared;
                  List.iter
                    (fun f ->
                      match
                        ( List.assoc_opt f base_fields,
                          List.assoc_opt f cur_fields )
                      with
                      | Some b, Some c when b <> c ->
                          incr regressions;
                          Printf.printf
                            "REGRESSION %s/%s: %s was %s, now %s\n" exp kernel
                            f b c
                      | Some _, None ->
                          incr regressions;
                          Printf.printf "REGRESSION %s/%s: %s disappeared\n"
                            exp kernel f
                      | None, _ -> ()
                      | Some _, Some _ -> ())
                    quality_fields)
            current;
          List.iter
            (fun ((exp, kernel), _) ->
              if not (List.mem_assoc (exp, kernel) current) then
                Printf.printf "  baseline row %s/%s missing from current run\n"
                  exp kernel)
            baseline;
          if !regressions > 0 then begin
            Printf.printf "bench_guard: %d quality regression(s) over %d rows\n"
              !regressions !compared;
            exit 1
          end
          else
            Printf.printf "bench_guard: %d rows compared, quality unchanged\n"
              !compared)
  | _ ->
      prerr_endline "usage: bench_guard BASELINE.json CURRENT.json";
      exit 2
