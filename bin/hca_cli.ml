(* hca: command-line front-end to the HCA reproduction.

   Subcommands:
     stats  <kernel>   static DDG statistics and MII bounds
     run    <kernel>   full HCA pass on a DSPFabric instance
     exact  <kernel>   SAT-based exact cluster-assignment oracle
     table1            reproduce Table 1 of the paper
     dse               design-space sweep over machine descriptions
     dot    <kernel>   DOT dump (optionally clustered by assignment)
     serve             compile daemon (socket/stdio, persistent memo store)
     loadtest          replay generator traffic against a running daemon
     list              available kernels *)

open Cmdliner
open Hca_ddg
open Hca_machine
open Hca_core
open Hca_kernels

let kernel_conv =
  let parse s =
    match Registry.find s with
    | Some f -> Ok (s, f)
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown kernel %S (try: %s)" s
               (String.concat ", " Registry.sorted)))
  in
  let print ppf (name, _) = Format.pp_print_string ppf name in
  Arg.conv (parse, print)

let kernel_arg =
  Arg.(
    required
    & pos 0 (some kernel_conv) None
    & info [] ~docv:"KERNEL" ~doc:"Kernel name (see $(b,hca list)).")

(* Parses a [.machine] file into (path, description) at option-parsing
   time, so a bad file is a usage error, not a mid-run crash. *)
let machine_file_conv =
  let parse s =
    match Hca_machine.Machine_io.read_file s with
    | Ok m -> Ok (s, m)
    | Error e -> Error (`Msg (Printf.sprintf "%s: %s" s e))
  in
  let print ppf (path, _) = Format.pp_print_string ppf path in
  Arg.conv (parse, print)

let fabric_term =
  let n =
    Arg.(value & opt int 8 & info [ "n" ] ~docv:"N" ~doc:"Level-0 MUX capacity.")
  in
  let m =
    Arg.(value & opt int 8 & info [ "m" ] ~docv:"M" ~doc:"Level-1 MUX capacity.")
  in
  let k =
    Arg.(
      value & opt int 8 & info [ "k" ] ~docv:"K" ~doc:"Leaf crossbar capacity.")
  in
  let machine =
    Arg.(
      value
      & opt (some machine_file_conv) None
      & info [ "machine" ]
          ~docv:"FILE"
          ~doc:
            "Load the machine from a .machine description $(docv) (see \
             $(b,hca dse)); overrides $(b,--n)/$(b,--m)/$(b,--k).")
  in
  let make machine n m k =
    match machine with
    | Some (_, desc) -> desc
    | None -> Dspfabric.make ~n ~m ~k ()
  in
  Term.(const make $ machine $ n $ m $ k)

let config_term =
  let beam =
    Arg.(
      value & opt int Config.default.Config.beam_width
      & info [ "beam" ] ~docv:"W" ~doc:"SEE beam width.")
  in
  let cand =
    Arg.(
      value
      & opt int Config.default.Config.candidate_width
      & info [ "candidates" ] ~docv:"C" ~doc:"Candidate-filter width.")
  in
  let spread =
    Arg.(
      value & flag
      & info [ "spread" ] ~doc:"Spread copies over all wires (Fig. 9 policy).")
  in
  let fanin_cap =
    Arg.(
      value
      & opt int Config.default.Config.leaf_feed_fanin_cap
      & info [ "fanin-cap" ] ~docv:"F"
          ~doc:"In-neighbour cap at the leaf-feeding level.")
  in
  let make beam_width candidate_width mapper_spread leaf_feed_fanin_cap =
    {
      Config.default with
      beam_width;
      candidate_width;
      mapper_spread;
      leaf_feed_fanin_cap;
    }
  in
  Term.(const make $ beam $ cand $ spread $ fanin_cap)

let jobs_term =
  Arg.(
    value & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Size of the domain pool used to probe candidate IIs (or oracle \
           MII bounds) concurrently.  Results are identical at every N.")

let resources_of fabric = Dspfabric.resources fabric

let trace_meta () = [ ("git", Hca_util.Stamp.git_describe ()) ]

(* [--trace FILE]: record the run and save a Chrome trace-event /
   Perfetto JSON file next to whatever the subcommand prints. *)
let with_trace trace f =
  match trace with
  | None -> f ()
  | Some path -> (
      Hca_obs.Obs.reset ();
      Hca_obs.Obs.enable ();
      (* Ctrl-C must unwind as [Sys.Break], or the [finally] below never
         runs and a long traced run dies with nothing on disk. *)
      Sys.catch_break true;
      match
        Fun.protect
          ~finally:(fun () ->
            Hca_obs.Obs.disable ();
            Hca_obs.Obs.Trace.write ~meta:(trace_meta ()) path;
            Printf.eprintf "trace written to %s\n%!" path)
          f
      with
      | v -> v
      | exception Sys.Break ->
          Printf.eprintf "interrupted; partial trace flushed\n%!";
          Stdlib.exit 130)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record the run and write a Chrome trace-event JSON file \
           (load it at https://ui.perfetto.dev): one track per domain, \
           spans for hierarchy levels / SEE / mapper / II probes.")

let stats_cmd =
  let run (name, f) fabric =
    let ddg = f () in
    let r = resources_of fabric in
    Format.printf "kernel %s@." name;
    Format.printf "  instructions : %d@." (Ddg.size ddg);
    Format.printf "  edges        : %d@." (Array.length (Ddg.edges ddg));
    Format.printf "  memory ops   : %d@." (Ddg.memory_ops ddg);
    Format.printf "  MIIRec       : %d@." (Mii.rec_mii ddg);
    Format.printf "  MIIRes       : %d (on %s)@." (Mii.res_mii ddg r)
      (Dspfabric.name fabric);
    Format.printf "  critical path: %d@." (Graph_algo.critical_path ddg)
  in
  Cmd.v (Cmd.info "stats" ~doc:"Static DDG statistics and MII bounds")
    Term.(const run $ kernel_arg $ fabric_term)

let run_cmd =
  let run (name, f) fabric config jobs no_memo stats trace ii =
    ignore name;
    with_trace trace @@ fun () ->
    match ii with
    | None ->
        let report =
          Report.run ~config ~jobs ~memo:(not no_memo) fabric (f ())
        in
        Format.printf "%a@." Report.pp report;
        if stats then
          (* The memo block prints even when all counters are zero;
             a disabled memo is labelled, not elided. *)
          Format.printf
            "search stats: explored=%d routed=%d %s@."
            report.Report.explored_states report.Report.routed_moves
            (if not report.Report.memo_enabled then
               "memo disabled (--no-memo)"
             else
               Printf.sprintf "memo hits=%d misses=%d reused subproblems=%d"
                 report.Report.cache_hits report.Report.cache_misses
                 report.Report.reused_subproblems)
    | Some ii -> (
        (* Debug mode: a single HCA pass at a fixed II. *)
        let ddg = f () in
        let target_ii = Mii.mii ddg (Dspfabric.resources fabric) in
        match Hierarchy.solve ~config ~target_ii fabric ddg ~ii with
        | Error e -> Format.printf "II=%d failed: %s@." ii e
        | Ok res ->
            let m = Metrics.of_result res in
            let legal = Coherency.is_legal res in
            Format.printf "II=%d: %a legal=%b@." ii Metrics.pp m legal)
  in
  let ii_arg =
    Arg.(
      value & opt (some int) None
      & info [ "ii" ] ~docv:"II" ~doc:"Single fixed II (debug).")
  in
  let no_memo =
    Arg.(
      value & flag
      & info [ "no-memo" ]
          ~doc:
            "Disable the cross-probe subproblem memo cache.  Every field \
             except the runtime is identical with or without it.")
  in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "Print a search-statistics line (explored states, routed moves, \
             memo hits/misses, reused subproblems).")
  in
  Cmd.v (Cmd.info "run" ~doc:"Run HCA on one kernel")
    Term.(
      const run $ kernel_arg $ fabric_term $ config_term $ jobs_term $ no_memo
      $ stats $ trace_arg $ ii_arg)

let profile_cmd =
  let run (name, f) fabric config jobs no_memo trace =
    ignore name;
    Hca_obs.Obs.reset ();
    Hca_obs.Obs.enable ();
    let report = Report.run ~config ~jobs ~memo:(not no_memo) fabric (f ()) in
    Hca_obs.Obs.disable ();
    Format.printf "%a@.@." Report.pp report;
    Hca_obs.Obs.Summary.print (Hca_obs.Obs.Summary.collect ());
    match trace with
    | None -> ()
    | Some path ->
        Hca_obs.Obs.Trace.write ~meta:(trace_meta ()) path;
        Printf.eprintf "trace written to %s\n%!" path
  in
  let no_memo =
    Arg.(
      value & flag
      & info [ "no-memo" ] ~doc:"Profile without the subproblem memo cache.")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run HCA on one kernel under the tracer and print aggregated \
          per-phase wall-clock/self-time, counter and histogram tables")
    Term.(
      const run $ kernel_arg $ fabric_term $ config_term $ jobs_term $ no_memo
      $ trace_arg)

let tracecheck_cmd =
  let run file expects quiet =
    match Hca_obs.Trace_check.validate_file file with
    | Error e ->
        Printf.eprintf "INVALID trace %s: %s\n" file e;
        exit 1
    | Ok st ->
        Printf.printf "valid Chrome trace: %d events, %d track(s)\n"
          st.Hca_obs.Trace_check.events
          (List.length st.Hca_obs.Trace_check.tracks);
        if not quiet then begin
          List.iter
            (fun (tid, n) -> Printf.printf "  domain %d: %d span(s)\n" tid n)
            st.Hca_obs.Trace_check.tracks;
          List.iter
            (fun (name, n) -> Printf.printf "  span %-20s x%d\n" name n)
            st.Hca_obs.Trace_check.span_names
        end;
        let missing =
          List.filter
            (fun e ->
              not (List.mem_assoc e st.Hca_obs.Trace_check.span_names))
            expects
        in
        if missing <> [] then begin
          Printf.eprintf "missing expected span(s): %s\n"
            (String.concat ", " missing);
          exit 1
        end
  in
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"TRACE.json" ~doc:"Trace file to validate.")
  in
  let expects =
    Arg.(
      value & opt_all string []
      & info [ "expect" ] ~docv:"NAME"
          ~doc:"Fail unless at least one completed span has this name \
                (repeatable).")
  in
  let quiet =
    Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Only print the verdict.")
  in
  Cmd.v
    (Cmd.info "tracecheck"
       ~doc:
         "Validate a Chrome trace-event JSON file (well-formed JSON, \
          balanced per-track span nesting)")
    Term.(const run $ file $ expects $ quiet)

let table1_cmd =
  let run fabric config =
    let table =
      Hca_util.Tabular.create
        (List.map (fun h -> (h, Hca_util.Tabular.Left)) Report.header)
    in
    List.iter
      (fun (_, f) ->
        let report = Report.run ~config fabric (f ()) in
        Hca_util.Tabular.add_row table (Report.row report))
      Registry.all;
    Hca_util.Tabular.print table
  in
  Cmd.v (Cmd.info "table1" ~doc:"Reproduce Table 1 of the paper")
    Term.(const run $ fabric_term $ config_term)

(* hca dse: enumerate/sample machine points, evaluate every (machine x
   kernel) pair on the domain pool, and report the Pareto front over
   (suite MII, machine wire cost, CN count).  The NDJSON is a pure
   function of the sweep spec, so CI can diff it against a committed
   baseline at any --jobs. *)
let dse_cmd =
  let fanout_shapes_conv =
    let parse s =
      let shape_of t =
        let parts = String.split_on_char 'x' t in
        let dims = List.filter_map int_of_string_opt parts in
        if List.length dims = List.length parts && dims <> [] then
          Ok (Array.of_list dims)
        else Error (`Msg (Printf.sprintf "bad fan-out shape %S (want e.g. 4x4)" t))
      in
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | t :: tl -> (
            match shape_of t with
            | Ok shape -> go (shape :: acc) tl
            | Error _ as e -> e)
      in
      go [] (String.split_on_char ',' s)
    in
    let print ppf shapes =
      Format.pp_print_string ppf
        (String.concat ","
           (List.map
              (fun a ->
                String.concat "x"
                  (Array.to_list (Array.map string_of_int a)))
              shapes))
    in
    Arg.conv (parse, print)
  in
  let machines =
    Arg.(
      value
      & opt_all machine_file_conv []
      & info [ "machine" ] ~docv:"FILE"
          ~doc:"Explicit sweep point from a .machine $(docv) (repeatable).")
  in
  let grid_fanouts =
    Arg.(
      value
      & opt fanout_shapes_conv []
      & info [ "grid-fanouts" ] ~docv:"SHAPES"
          ~doc:
            "Comma-separated hierarchy shapes for the grid, e.g. \
             $(b,4x4x4,2x2).")
  in
  let grid_caps =
    Arg.(
      value & opt (list int) []
      & info [ "grid-caps" ] ~docv:"CAPS"
          ~doc:"MUX capacities for the grid (each $(i,c) is N=M=K=c).")
  in
  let grid_dma =
    Arg.(
      value & opt (list int) [ 8 ]
      & info [ "grid-dma" ] ~docv:"PORTS" ~doc:"DMA port counts for the grid.")
  in
  let random =
    Arg.(
      value & opt int 0
      & info [ "random" ] ~docv:"N"
          ~doc:"Sample $(docv) additional points with the seeded generator.")
  in
  let seed =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"S" ~doc:"First seed of the random points.")
  in
  let hetero =
    Arg.(
      value & opt float 0.
      & info [ "hetero" ] ~docv:"P"
          ~doc:
            "Probability of a heterogeneous resource table per CN in the \
             random points.")
  in
  let kernels =
    Arg.(
      value
      & opt (list kernel_conv) Registry.all
      & info [ "kernels" ] ~docv:"NAMES"
          ~doc:"Kernel suite to score against (default: the paper kernels).")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Write the NDJSON rows to $(docv).")
  in
  let timing =
    Arg.(
      value & flag
      & info [ "timing" ]
          ~doc:
            "Append a dse_meta/sweep row with the wall clock to the NDJSON \
             (off by default: without it the output is byte-identical at \
             any --jobs).")
  in
  let run machines grid_fanouts grid_caps grid_dma random seed hetero kernels
      config jobs out timing =
    let t0 = Hca_util.Clock.now () in
    let explicit = Hca_gen.Dse.machine_points machines in
    let grid =
      if grid_fanouts = [] || grid_caps = [] then []
      else
        Hca_gen.Dse.grid_points ~dma:grid_dma ~fanouts:grid_fanouts
          ~caps:grid_caps ()
    in
    let sampled =
      if random <= 0 then []
      else Hca_gen.Dse.random_points ~hetero ~count:random ~seed ()
    in
    let points =
      match explicit @ grid @ sampled with
      | [] ->
          (* The stock 8-point space: every shape the fuzzer draws, at
             starved and paper capacities. *)
          Hca_gen.Dse.grid_points ~dma:grid_dma
            ~fanouts:[ [| 4; 4; 4 |]; [| 4; 4 |]; [| 2; 2; 2 |]; [| 4; 2 |] ]
            ~caps:[ 4; 8 ] ()
      | pts -> pts
    in
    let kernels = List.map (fun (name, f) -> (name, f ())) kernels in
    let result = Hca_gen.Dse.run ~config ~jobs ~kernels points in
    print_string (Hca_gen.Dse.ranked_table result);
    Format.printf "@.Pareto front (MII x wires x CNs):@.";
    List.iter
      (fun (s : Hca_gen.Dse.summary) ->
        Format.printf "  %s  score=%d wires=%d cns=%d (%s)@." s.point
          (Option.get s.score) s.machine_wires s.cns s.machine)
      result.Hca_gen.Dse.front;
    if result.Hca_gen.Dse.front = [] then
      Format.printf "  (no point mapped the whole suite)@.";
    (match out with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc (Hca_gen.Dse.to_ndjson result);
        if timing then
          output_string oc
            (Printf.sprintf
               "{\"experiment\":\"dse_meta\",\"kernel\":\"sweep\",\"points\":%d,\
                \"kernels\":%d,\"rows\":%d,\"runtime_s\":%.3f}\n"
               (List.length points) (List.length kernels)
               (List.length result.Hca_gen.Dse.evals)
               (Hca_util.Clock.now () -. t0));
        close_out oc;
        Printf.printf "rows written to %s\n" path);
    match Hca_gen.Dse.check result with
    | Ok () -> ()
    | Error e ->
        Printf.eprintf "dse: self-check failed: %s\n" e;
        exit 1
  in
  Cmd.v
    (Cmd.info "dse"
       ~doc:
         "Design-space sweep: score machine descriptions across a kernel \
          suite and report the Pareto front")
    Term.(
      const run $ machines $ grid_fanouts $ grid_caps $ grid_dma $ random
      $ seed $ hetero $ kernels $ config_term $ jobs_term $ out $ timing)

let dot_cmd =
  let run (name, f) fabric assigned =
    ignore name;
    let ddg = f () in
    if not assigned then print_string (Ddg_io.to_dot ddg)
    else
      let report = Report.run fabric ddg in
      match report.Report.result with
      | None -> prerr_endline "clusterisation failed; dumping flat DDG";
               print_string (Ddg_io.to_dot ddg)
      | Some res ->
          let cluster_of i =
            Some (Printf.sprintf "CN %d" res.Hierarchy.cn_of_instr.(i))
          in
          print_string (Ddg_io.to_dot ~cluster_of ddg)
  in
  let assigned =
    Arg.(
      value & flag
      & info [ "assigned" ] ~doc:"Group nodes by their assigned CN.")
  in
  Cmd.v (Cmd.info "dot" ~doc:"Dump the kernel DDG as Graphviz DOT")
    Term.(const run $ kernel_arg $ fabric_term $ assigned)

let explain_cmd =
  let run (name, f) fabric config ii =
    ignore name;
    let ddg = f () in
    let ii =
      match ii with
      | Some ii -> ii
      | None -> Mii.mii ddg (Dspfabric.resources fabric)
    in
    match Hierarchy.solve ~config fabric ddg ~ii with
    | Error e -> Format.printf "II=%d failed: %s@." ii e
    | Ok res ->
        Format.printf "II=%d solved; per-subproblem breakdown:@." ii;
        List.iter
          (fun (sub : Hierarchy.subresult) ->
            let flow = State.flow sub.Hierarchy.state in
            let pg = Problem.pg sub.Hierarchy.problem in
            let regs = Hca_machine.Pattern_graph.regular_nodes pg in
            let loads =
              List.map
                (fun (nd : Hca_machine.Pattern_graph.node) ->
                  List.length
                    (State.cluster_nodes sub.Hierarchy.state nd.id))
                regs
            in
            Format.printf
              "  [%s] ws=%s copies=%d in-ports=%d out-ports=%d wire<=%d@."
              (String.concat "," (List.map string_of_int sub.Hierarchy.path))
              (String.concat "/" (List.map string_of_int loads))
              (Hca_machine.Copy_flow.copy_count flow)
              (List.length (Hca_machine.Pattern_graph.in_ports pg))
              (List.length (Hca_machine.Pattern_graph.out_ports pg))
              sub.Hierarchy.mapres.Mapper.max_wire_load)
          (Hierarchy.subresults res);
        let m = Metrics.of_result res in
        Format.printf "%a legal=%b@." Metrics.pp m (Coherency.is_legal res)
  in
  let ii_arg =
    Arg.(
      value & opt (some int) None
      & info [ "ii" ] ~docv:"II" ~doc:"Fixed II (default: iniMII).")
  in
  Cmd.v (Cmd.info "explain" ~doc:"Per-subproblem breakdown of one HCA pass")
    Term.(const run $ kernel_arg $ fabric_term $ config_term $ ii_arg)

let level0_cmd =
  let run (name, f) fabric config ii =
    ignore name;
    let ddg = f () in
    let ii =
      match ii with
      | Some ii -> ii
      | None -> Mii.mii ddg (Dspfabric.resources fabric)
    in
    let view = Dspfabric.level_view fabric ~level:0 in
    let pg =
      Hca_machine.Pattern_graph.complete ~name:"level0"
        ~capacities:(Dspfabric.child_capacities fabric ~path:[])
        ~max_in:view.Dspfabric.mux_capacity
    in
    let problem = Problem.of_ddg ~name:"level0" ~ddg ~pg () in
    match See.solve ~config problem ~ii with
    | Error e -> Format.printf "level0 failed: %s@." e
    | Ok outcome ->
        let st = outcome.See.state in
        let flow = State.flow st in
        Format.printf "ws:";
        List.iter
          (fun (nd : Hca_machine.Pattern_graph.node) ->
            Format.printf " %d" (List.length (State.cluster_nodes st nd.id)))
          (Hca_machine.Pattern_graph.regular_nodes pg);
        Format.printf "@.arcs:@.";
        List.iter
          (fun (src, dst, vs) ->
            Format.printf "  %d -> %d : %d values@." src dst (List.length vs))
          (Hca_machine.Copy_flow.arcs flow);
        Format.printf "total copies: %d@."
          (Hca_machine.Copy_flow.copy_count flow)
  in
  let ii_arg =
    Arg.(
      value & opt (some int) None
      & info [ "ii" ] ~docv:"II" ~doc:"Fixed II (default: iniMII).")
  in
  Cmd.v
    (Cmd.info "level0" ~doc:"Solve and dump only the level-0 subproblem")
    Term.(const run $ kernel_arg $ fabric_term $ config_term $ ii_arg)

let topology_cmd =
  let run (name, f) fabric config =
    ignore name;
    let report = Report.run ~config fabric (f ()) in
    match report.Report.result with
    | None -> prerr_endline "clusterisation failed"; exit 1
    | Some res -> print_string (Topology.to_string (Topology.of_result res))
  in
  Cmd.v
    (Cmd.info "topology"
       ~doc:"Emit the reconfiguration program of the selected topology")
    Term.(const run $ kernel_arg $ fabric_term $ config_term)

let sched_cmd =
  let run (name, f) fabric config =
    ignore name;
    let ddg = f () in
    let report = Report.run ~config fabric ddg in
    match (report.Report.result, report.Report.final_mii) with
    | Some res, Some final -> (
        let exp = Postprocess.expand res in
        Printf.printf "expanded DDG: %d nodes (%d receives, %d forwards)\n"
          (Ddg.size exp.Postprocess.ddg)
          exp.Postprocess.recv_count exp.Postprocess.forward_count;
        let params = { Hca_sched.Modulo.default_params with copy_latency = 0 } in
        match
          Hca_sched.Modulo.run ~params ~ddg:exp.Postprocess.ddg
            ~cn_of_instr:exp.Postprocess.cn_of_node
            ~cns:(Dspfabric.total_cns fabric)
            ~dma_ports:(Dspfabric.dma_ports fabric) ~start_ii:final ()
        with
        | Error e -> Printf.printf "scheduling failed: %s\n" e
        | Ok s ->
            Printf.printf
              "modulo schedule: II=%d (final MII %d), %d stages, occupancy \
               %.2f\n"
              s.Hca_sched.Modulo.ii final s.Hca_sched.Modulo.stages
              s.Hca_sched.Modulo.occupancy)
    | _ ->
        prerr_endline "clusterisation failed";
        exit 1
  in
  Cmd.v
    (Cmd.info "sched" ~doc:"Modulo-schedule the clusterised kernel end to end")
    Term.(const run $ kernel_arg $ fabric_term $ config_term)

let simulate_cmd =
  let run (name, f) fabric config iterations =
    ignore name;
    let ddg = f () in
    let report = Report.run ~config fabric ddg in
    match (report.Report.result, report.Report.final_mii) with
    | Some res, Some final -> (
        let exp = Postprocess.expand res in
        let params = { Hca_sched.Modulo.default_params with copy_latency = 0 } in
        match
          Hca_sched.Modulo.run ~params ~ddg:exp.Postprocess.ddg
            ~cn_of_instr:exp.Postprocess.cn_of_node
            ~cns:(Dspfabric.total_cns fabric)
            ~dma_ports:(Dspfabric.dma_ports fabric) ~start_ii:final ()
        with
        | Error e -> Printf.printf "scheduling failed: %s\n" e
        | Ok schedule -> (
            match
              Hca_sim.Machine_sim.check_against_reference ~iterations
                ~original:ddg ~expanded:exp.Postprocess.ddg
                ~cn_of_node:exp.Postprocess.cn_of_node ~schedule ()
            with
            | Error e -> Printf.printf "simulation FAILED: %s\n" e
            | Ok stats ->
                Printf.printf
                  "simulated %d iterations: trace matches the reference \
                   (%d stores, %d cycles, %d dynamic instructions)\n"
                  iterations
                  (List.length stats.Hca_sim.Machine_sim.trace)
                  stats.Hca_sim.Machine_sim.cycles
                  stats.Hca_sim.Machine_sim.issued))
    | _ ->
        prerr_endline "clusterisation failed";
        exit 1
  in
  let iters =
    Arg.(
      value & opt int 8
      & info [ "iterations" ] ~docv:"N" ~doc:"Loop iterations to simulate.")
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Execute the compiled kernel on the machine simulator and check \
             it against the reference interpreter")
    Term.(const run $ kernel_arg $ fabric_term $ config_term $ iters)

let portfolio_cmd =
  let run (name, f) fabric jobs trace =
    ignore name;
    with_trace trace @@ fun () ->
    let report, winner = Portfolio.run ~jobs fabric (f ()) in
    Format.printf "%a@.winning configuration: %s@." Report.pp report winner
  in
  Cmd.v
    (Cmd.info "portfolio"
       ~doc:"Run the configuration portfolio and keep the best result")
    Term.(const run $ kernel_arg $ fabric_term $ jobs_term $ trace_arg)

let rcp_cmd =
  let run (name, f) ports =
    ignore name;
    let rcp = Rcp.make ~in_ports:ports () in
    match Rcp_driver.solve rcp (f ()) with
    | Error e ->
        Printf.printf "no feasible topology: %s\n" e;
        exit 1
    | Ok r ->
        Format.printf "%a@." Rcp_driver.pp r;
        (match Rcp_driver.validate r with
        | Ok () -> print_endline "topology validated"
        | Error es ->
            List.iter print_endline es;
            exit 1)
  in
  let ports =
    Arg.(
      value & opt int 2
      & info [ "ports" ] ~docv:"K" ~doc:"Input ports per cluster.")
  in
  Cmd.v
    (Cmd.info "rcp" ~doc:"Map a kernel onto the RCP ring (Fig. 1)")
    Term.(const run $ kernel_arg $ ports)

let exact_cmd =
  let module O = Hca_exact.Oracle in
  let run (name, f) fabric budget strict max_ii jobs no_hca no_reuse trace =
    ignore jobs;
    let ddg = f () in
    with_trace trace @@ fun () ->
    Format.printf "kernel %s on %s@." name (Dspfabric.name fabric);
    (* Heuristic first: its final MII seeds the oracle's downward walk
       (feasible by construction in relaxed mode), so the budget goes
       into tightening the bound instead of rediscovering a model. *)
    let report = if no_hca then None else Some (Report.run fabric ddg) in
    let incumbent =
      match report with
      | Some r when r.Report.legal -> r.Report.final_mii
      | _ -> None
    in
    let oracle =
      O.run ~strict ~budget_s:budget ?max_ii ?incumbent ~reuse:(not no_reuse)
        fabric ddg
    in
    Format.printf "%a@." O.pp oracle;
    List.iter
      (fun (p : O.probe) ->
        Format.printf
          "  probe k=%d: %s in %.3fs (conflicts %d, props %d, learnt %d, \
           reused %d)@."
          p.O.k
          (match p.O.verdict with
          | Hca_exact.Sat.Sat -> "sat"
          | Hca_exact.Sat.Unsat -> "unsat"
          | Hca_exact.Sat.Unknown -> "unknown")
          p.O.time_s p.O.conflicts p.O.propagations p.O.learnt p.O.reused)
      oracle.O.probes;
    match report with
    | None -> ()
    | Some report -> (
        match report.Report.final_mii with
        | None -> Format.printf "HCA heuristic: no legal clusterisation@."
        | Some hca -> (
            Format.printf "HCA heuristic final MII: %d@." hca;
            match (oracle.O.status, oracle.O.final_mii) with
            | O.Optimal, Some exact ->
                Format.printf "optimality gap: %.2f@."
                  (Hca_baseline.Unified.optgap ~achieved:hca ~oracle:exact)
            | _ ->
                if oracle.O.lower_bound > 0 then
                  Format.printf
                    "gap upper bound: %.2f (vs certified lower bound %d)@."
                    (Hca_baseline.Unified.optgap ~achieved:hca
                       ~oracle:oracle.O.lower_bound)
                    oracle.O.lower_bound))
  in
  let budget =
    Arg.(
      value & opt float 10.
      & info [ "budget" ] ~docv:"SECONDS"
          ~doc:"Wall-clock budget for the whole MII binary search.")
  in
  let strict =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:"Also encode structural MUX fan-in and out-wire clauses \
                (models the fabric wiring instead of the certified \
                lower-bound relaxation).")
  in
  let max_ii =
    Arg.(
      value & opt (some int) None
      & info [ "max-ii" ] ~docv:"K" ~doc:"Cap the MII search range.")
  in
  let no_hca =
    Arg.(
      value & flag
      & info [ "no-hca" ]
          ~doc:"Skip the HCA heuristic run, the gap comparison and the \
                incumbent seeding of the oracle walk.")
  in
  let no_reuse =
    Arg.(
      value & flag
      & info [ "no-reuse" ]
          ~doc:"Drop learnt clauses between MII probes instead of carrying \
                them across the walk (the control arm of the incremental \
                solver; verdicts are identical, only the work differs).")
  in
  Cmd.v
    (Cmd.info "exact"
       ~doc:"Exact SAT-based cluster-assignment oracle (optimality gap)")
    Term.(
      const run $ kernel_arg $ fabric_term $ budget $ strict $ max_ii
      $ jobs_term $ no_hca $ no_reuse $ trace_arg)

let fuzz_cmd =
  let module G = Hca_gen.Gen in
  let run seed count minimize corpus replay gap jobs verbose max_size =
    let log = print_endline in
    match replay with
    | Some dir ->
        let opts = { Hca_gen.Corpus.replay_opts with Hca_gen.Diff.jobs } in
        let total, bad = Hca_gen.Fuzz.replay_dir ~opts ~log dir in
        Printf.printf "replayed %d reproducers, %d mismatches\n" total bad;
        if bad > 0 then exit 1
    | None ->
        let opts = { Hca_gen.Diff.default_opts with Hca_gen.Diff.jobs } in
        let ddg_knobs =
          match max_size with
          | None -> G.default_ddg_knobs
          | Some m ->
              {
                G.default_ddg_knobs with
                G.max_size = m;
                min_size = min m G.default_ddg_knobs.G.min_size;
              }
        in
        let stats =
          Hca_gen.Fuzz.run ~opts ~ddg_knobs ~minimize ~corpus_dir:corpus
            ?gap_threshold:gap ~verbose ~log ~seed ~count ()
        in
        if stats.Hca_gen.Fuzz.failed > 0 then exit 1
  in
  let seed =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"S" ~doc:"First seed of the campaign.")
  in
  let count =
    Arg.(
      value & opt int 100
      & info [ "count" ] ~docv:"N" ~doc:"Number of seeds to fuzz.")
  in
  let minimize =
    Arg.(
      value & flag
      & info [ "minimize" ]
          ~doc:"Shrink every finding to a minimal reproducer and write it \
                to the corpus directory.")
  in
  let corpus =
    Arg.(
      value & opt string "test/corpus"
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:"Where minimized reproducers are written.")
  in
  let replay =
    Arg.(
      value & opt (some string) None
      & info [ "replay" ] ~docv:"DIR"
          ~doc:"Replay every reproducer in $(docv) instead of fuzzing; \
                exits non-zero on any verdict mismatch.")
  in
  let gap =
    Arg.(
      value & opt (some int) None
      & info [ "find-gap" ] ~docv:"G"
          ~doc:"Also report (and shrink) instances whose proven optimality \
                gap reaches $(docv) — mines heuristic-miss regression \
                instances.")
  in
  let verbose =
    Arg.(
      value & flag
      & info [ "verbose" ] ~doc:"Print the verdict line of passing seeds too.")
  in
  let max_size =
    Arg.(
      value & opt (some int) None
      & info [ "max-size" ] ~docv:"N"
          ~doc:"Cap the generated kernel size (default 24).")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Differential fuzzing: random kernels and machines through the \
             whole pipeline, cross-checked against the coherency checker, \
             the SAT oracle and the machine simulator")
    Term.(
      const run $ seed $ count $ minimize $ corpus $ replay $ gap $ jobs_term
      $ verbose $ max_size)

let socket_arg =
  Arg.(
    value
    & opt string "/tmp/hca.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

let store_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "store" ] ~docv:"FILE"
        ~doc:
          "Persistent memo store: the cross-request subproblem cache is \
           loaded from $(docv) at startup (ignored when stale) and flushed \
           back on graceful shutdown, so a restarted daemon starts warm.")

let serve_cmd =
  let run socket stdio jobs store trace log log_level trace_sample trace_dir
      slow_ms no_flight flight_capacity =
    (* The log sink comes up before anything else so that even the
       store loading at daemon creation is covered. *)
    (match log with
    | None -> ()
    | Some "stderr" -> Hca_obs.Obs.Log.to_stderr ()
    | Some file -> Hca_obs.Obs.Log.to_file file);
    (match Hca_obs.Obs.Log.level_of_string log_level with
    | Some l -> Hca_obs.Obs.Log.set_level l
    | None ->
        Printf.eprintf "hca serve: unknown log level %S (want debug|info|warn|error)\n"
          log_level;
        exit 2);
    let telemetry =
      {
        Hca_serve.Daemon.trace_sample;
        slow_ms;
        flight = not no_flight;
        flight_capacity;
        trace_dir =
          Option.value
            ~default:Hca_serve.Daemon.default_telemetry.Hca_serve.Daemon.trace_dir
            trace_dir;
      }
    in
    if stdio then
      Hca_serve.Daemon.run_stdio ~jobs ?store_path:store ~telemetry ()
    else
      Hca_serve.Daemon.run_socket ~path:socket ~jobs ?store_path:store ?trace
        ~telemetry ()
  in
  let stdio =
    Arg.(
      value & flag
      & info [ "stdio" ]
          ~doc:
            "Serve one client over stdin/stdout instead of binding the \
             socket (EOF shuts the daemon down gracefully).")
  in
  let jobs =
    Arg.(
      value & opt int 2
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Worker domains solving queued requests (the serving loop is \
             not one of them).")
  in
  let log =
    Arg.(
      value
      & opt (some string) None
      & info [ "log" ] ~docv:"FILE"
          ~doc:
            "Structured logging: append one JSON object per lifecycle event \
             (submit, start, finish, cancel, expiry, crash, store flush, \
             connection churn) to $(docv), or to stderr when $(docv) is \
             $(b,stderr).")
  in
  let log_level =
    Arg.(
      value & opt string "info"
      & info [ "log-level" ] ~docv:"LEVEL"
          ~doc:"Minimum level reaching the log sink: debug|info|warn|error.")
  in
  let trace_sample =
    Arg.(
      value & opt int 0
      & info [ "trace-sample" ] ~docv:"N"
          ~doc:
            "Trace every $(docv)-th request (by id) into a per-request \
             Chrome trace file, as if it had been submitted with \
             trace:true.  0 (default) traces only explicit requests.")
  in
  let trace_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-dir" ] ~docv:"DIR"
          ~doc:
            "Where per-request traces (req-<id>.json) and flight-recorder \
             dumps (flight-<id>.json) are written (created on demand; \
             default: hca-traces under the system temp directory).")
  in
  let slow_ms =
    Arg.(
      value
      & opt (some float) None
      & info [ "slow-ms" ] ~docv:"MS"
          ~doc:
            "Dump the flight recorder for any request slower than $(docv) \
             milliseconds end-to-end, even when it succeeds.")
  in
  let no_flight =
    Arg.(
      value & flag
      & info [ "no-flight" ]
          ~doc:
            "Disarm the always-on flight recorder (a fixed-size ring of \
             recent events dumped post-mortem when a request crashes, \
             misses its deadline or trips $(b,--slow-ms)).")
  in
  let flight_capacity =
    Arg.(
      value & opt int 4096
      & info [ "flight-capacity" ] ~docv:"N"
          ~doc:"Flight-recorder ring slots per domain.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the compile daemon: line-delimited JSON requests (submit / \
          status / result / cancel / stats / metrics) over a Unix socket \
          or stdio, with a persistent cross-request subproblem memo store, \
          structured logging, live metrics, per-request tracing and a \
          flight recorder")
    Term.(
      const run $ socket_arg $ stdio $ jobs $ store_arg $ trace_arg $ log
      $ log_level $ trace_sample $ trace_dir $ slow_ms $ no_flight
      $ flight_capacity)

let loadtest_cmd =
  let run socket count jobs seed max_size deadline verify out =
    match
      Hca_serve.Loadtest.run ~path:socket ~count ~jobs ~seed0:seed ?max_size
        ?deadline_s:deadline ~verify ?json_out:out ()
    with
    | Error e ->
        Printf.eprintf "loadtest failed: %s\n" e;
        exit 1
    | Ok s ->
        Hca_serve.Loadtest.print_summary s;
        if s.Hca_serve.Loadtest.verify_mismatches > 0 then begin
          Printf.eprintf
            "loadtest: %d served result(s) differ from local one-shot runs\n"
            s.Hca_serve.Loadtest.verify_mismatches;
          exit 1
        end
  in
  let count =
    Arg.(
      value & opt int 25
      & info [ "count" ] ~docv:"N" ~doc:"Requests to submit.")
  in
  let jobs =
    Arg.(
      value & opt int 2
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:"Client workers, one connection each.")
  in
  let seed =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"S" ~doc:"First generator seed.")
  in
  let max_size =
    Arg.(
      value & opt (some int) None
      & info [ "max-size" ] ~docv:"N"
          ~doc:"Cap the generated kernel size (default 24).")
  in
  let deadline =
    Arg.(
      value & opt (some float) None
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:"Per-request deadline (queue wait included).")
  in
  let verify =
    Arg.(
      value & flag
      & info [ "verify" ]
          ~doc:
            "Re-run every request locally and require the served result to \
             be bit-identical (exit 1 otherwise).")
  in
  let out =
    Arg.(
      value & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Write bench-style NDJSON rows (per seed + aggregate).")
  in
  Cmd.v
    (Cmd.info "loadtest"
       ~doc:
         "Replay seeded generator traffic against a running daemon and \
          report throughput, latency tails and cache effectiveness")
    Term.(
      const run $ socket_arg $ count $ jobs $ seed $ max_size $ deadline
      $ verify $ out)

let top_cmd =
  let module J = Hca_serve.Json in
  let fetch socket line =
    match Hca_serve.Loadtest.rpc_once ~path:socket line with
    | Ok j -> j
    | Error e ->
        Printf.eprintf "hca top: %s\n" e;
        exit 1
  in
  (* Client-side sanity check of the exposition: every non-comment line
     must be "<series> <float>".  A scrape that passes here parses in
     any Prometheus-text consumer. *)
  let check_prometheus text =
    let bad = ref 0 in
    List.iter
      (fun line ->
        if line <> "" && line.[0] <> '#' then
          let ok =
            match String.rindex_opt line ' ' with
            | None -> false
            | Some i ->
                String.length line > i + 1
                && float_of_string_opt
                     (String.sub line (i + 1) (String.length line - i - 1))
                   <> None
          in
          if not ok then begin
            incr bad;
            Printf.eprintf "hca top: bad series line %S\n" line
          end)
      (String.split_on_char '\n' text);
    !bad = 0
  in
  let fnum j k =
    Option.value ~default:0. (Option.bind (J.member k j) J.num)
  in
  let inum j k = int_of_float (fnum j k) in
  let fields = function Some (J.Obj l) -> l | _ -> [] in
  let render socket stats metrics =
    Printf.printf "hca daemon @ %s  (up %.1f s, stamp %s)\n" socket
      (fnum stats "uptime_s")
      (Option.value ~default:"-"
         (Option.bind (J.member "stamp" stats) J.str));
    Printf.printf
      "jobs: %d submitted | %d finished | %d queued | %d running | %d \
       cancelled | %d expired | %d crashed\n"
      (inum stats "submitted") (inum stats "finished") (inum stats "queued")
      (inum stats "running")
      (inum stats "cancelled")
      (inum stats "expired") (inum stats "crashed")
;
    Printf.printf
      "cache: +%d hits / +%d misses | %d entries (%d loaded at start)\n"
      (inum stats "cache_hits") (inum stats "cache_misses")
      (inum stats "cache_entries")
      (inum stats "loaded_entries");
    Printf.printf
      "latency ms: p50 %.1f  p95 %.1f  p99 %.1f | %d trace file(s), %d \
       flight dump(s)\n"
      (fnum stats "latency_p50_ms")
      (fnum stats "latency_p95_ms")
      (fnum stats "latency_p99_ms")
      (inum stats "trace_files")
      (inum stats "flight_dumps");
    let m = J.member "metrics" metrics in
    let section name =
      Option.bind m (fun m -> J.member name m) |> fun o -> fields o
    in
    let counters = section "counters" and gauges = section "gauges" in
    if counters <> [] then begin
      print_endline "counters:";
      List.iter
        (fun (name, v) ->
          Printf.printf "  %-48s %d\n" name
            (Option.value ~default:0 (J.int v)))
        counters
    end;
    if gauges <> [] then begin
      print_endline "gauges:";
      List.iter
        (fun (name, v) ->
          Printf.printf "  %-48s %g\n" name (Option.value ~default:0. (J.num v)))
        gauges
    end;
    let hists = section "histograms" in
    if hists <> [] then begin
      print_endline "histograms (count / mean):";
      List.iter
        (fun (name, h) ->
          let count = inum h "count" and sum = fnum h "sum" in
          Printf.printf "  %-48s %6d  %g\n" name count
            (if count > 0 then sum /. float_of_int count else 0.))
        hists
    end
  in
  let run socket interval once prometheus check =
    if prometheus then begin
      let j = fetch socket {|{"verb":"metrics","format":"prometheus"}|} in
      let text =
        Option.value ~default:""
          (Option.bind (J.member "prometheus" j) J.str)
      in
      print_string text;
      if check && not (check_prometheus text) then exit 1
    end
    else
      let rec loop () =
        let stats = fetch socket {|{"verb":"stats"}|} in
        let metrics = fetch socket {|{"verb":"metrics"}|} in
        if not once then print_string "\027[2J\027[H";
        render socket stats metrics;
        flush stdout;
        if not once then begin
          Unix.sleepf interval;
          loop ()
        end
      in
      loop ()
  in
  let interval =
    Arg.(
      value & opt float 2.0
      & info [ "interval" ] ~docv:"SECONDS" ~doc:"Refresh period.")
  in
  let once =
    Arg.(
      value & flag
      & info [ "once" ] ~doc:"Print one snapshot and exit (no screen clear).")
  in
  let prometheus =
    Arg.(
      value & flag
      & info [ "prometheus" ]
          ~doc:
            "Print one raw Prometheus text exposition scrape instead of the \
             dashboard, ready to pipe into a scraper or a file.")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "With $(b,--prometheus): validate every series line client-side \
             (name then float) and exit non-zero on any malformed line.")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live dashboard over a running daemon: polls the stats and metrics \
          verbs and renders queue depth, outcome counters, memo \
          effectiveness and latency tails")
    Term.(const run $ socket_arg $ interval $ once $ prometheus $ check)

let list_cmd =
  let run () =
    let table1 = List.sort compare Registry.names in
    print_endline "Table 1 kernels:";
    List.iter (fun n -> print_endline ("  " ^ n)) table1;
    print_endline "extended kernels:";
    List.iter
      (fun n -> if not (List.mem n table1) then print_endline ("  " ^ n))
      Registry.sorted
  in
  Cmd.v (Cmd.info "list" ~doc:"List available kernels") Term.(const run $ const ())

let () =
  let info =
    Cmd.info "hca" ~version:"1.0.0"
      ~doc:"Hierarchical Cluster Assignment for DSPFabric (IPPS 2007 reproduction)"
  in
  exit (Cmd.eval (Cmd.group info [ stats_cmd; run_cmd; profile_cmd; tracecheck_cmd; exact_cmd; table1_cmd; dse_cmd; dot_cmd; explain_cmd; level0_cmd; topology_cmd; sched_cmd; simulate_cmd; portfolio_cmd; rcp_cmd; fuzz_cmd; serve_cmd; loadtest_cmd; top_cmd; list_cmd ]))
