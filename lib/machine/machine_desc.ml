type level = { fanout : int; mux_cap : int }

type t = {
  name : string;
  levels : level array;
  cn_in_wires : int;
  dma_ports : int;
  tables : Resource.t array option;
      (* [None] means every CN is [Resource.cn]; [make] normalises an
         all-uniform explicit table to [None] so the two spellings are
         structurally equal *)
}

let depth t = Array.length t.levels

let total_cns_of levels =
  Array.fold_left (fun acc l -> acc * l.fanout) 1 levels

let total_cns t = total_cns_of t.levels

let make ?tables ~name ~levels ~cn_in_wires ~dma_ports () =
  if Array.length levels = 0 then
    invalid_arg "Machine_desc.make: need at least one level";
  Array.iter
    (fun l ->
      if l.fanout < 1 then
        invalid_arg "Machine_desc.make: fan-out must be >= 1";
      if l.mux_cap < 1 then
        invalid_arg "Machine_desc.make: MUX capacities must be positive")
    levels;
  if cn_in_wires <= 0 || dma_ports <= 0 then
    invalid_arg "Machine_desc.make: cn_in_wires and dma_ports must be positive";
  let cns = total_cns_of levels in
  let tables =
    match tables with
    | None -> None
    | Some a ->
        if Array.length a <> cns then
          invalid_arg
            (Printf.sprintf
               "Machine_desc.make: table has %d entries for %d CNs"
               (Array.length a) cns);
        Array.iter
          (fun (r : Resource.t) ->
            if r.Resource.alus < 0 || r.Resource.ags < 0 then
              invalid_arg "Machine_desc.make: negative resource entry";
            if r.Resource.alus = 0 && r.Resource.ags = 0 then
              invalid_arg "Machine_desc.make: a CN needs at least one unit")
          a;
        if Array.for_all (fun r -> Resource.equal r Resource.cn) a then None
        else Some (Array.copy a)
  in
  { name; levels = Array.copy levels; cn_in_wires; dma_ports; tables }

let name t = t.name

let equal a b = a = b

let levels t = Array.copy t.levels

let cn_in_wires t = t.cn_in_wires

let dma_ports t = t.dma_ports

let is_uniform t = t.tables = None

let cn_table t i =
  if i < 0 || i >= total_cns t then
    invalid_arg "Machine_desc.cn_table: CN index out of range";
  match t.tables with None -> Resource.cn | Some a -> a.(i)

let tables t =
  match t.tables with
  | Some a -> Array.copy a
  | None -> Array.make (total_cns t) Resource.cn

let with_tables ?name:name' t tbl =
  make ~tables:tbl
    ~name:(Option.value ~default:t.name name')
    ~levels:t.levels ~cn_in_wires:t.cn_in_wires ~dma_ports:t.dma_ports ()

(* Injective rendering: the name is length-prefixed (it may contain any
   byte), everything after it is integers behind fixed delimiters, so
   distinct descriptions can never print the same id. *)
let id t =
  let buf = Buffer.create 64 in
  Buffer.add_string buf
    (Printf.sprintf "machine[%d:%s" (String.length t.name) t.name);
  Buffer.add_string buf ";levels=";
  Array.iteri
    (fun i l ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "%d:%d" l.fanout l.mux_cap))
    t.levels;
  Buffer.add_string buf
    (Printf.sprintf ";cn_in=%d;dma=%d;tables=" t.cn_in_wires t.dma_ports);
  (match t.tables with
  | None -> Buffer.add_string buf "uniform"
  | Some a ->
      Array.iteri
        (fun i (r : Resource.t) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf
            (Printf.sprintf "%d.%d" r.Resource.alus r.Resource.ags))
        a);
  Buffer.add_char buf ']';
  Buffer.contents buf

type level_view = {
  level : int;
  children : int;
  cns_per_child : int;
  mux_capacity : int;
  out_capacity : int;
  max_in_ports : int;
  is_leaf : bool;
}

let level_view t ~level =
  if level < 0 || level >= depth t then
    invalid_arg "Machine_desc.level_view: level out of range";
  let is_leaf = level = depth t - 1 in
  let cns_per_child = ref 1 in
  for l = level + 1 to depth t - 1 do
    cns_per_child := !cns_per_child * t.levels.(l).fanout
  done;
  {
    level;
    children = t.levels.(level).fanout;
    cns_per_child = !cns_per_child;
    mux_capacity = (if is_leaf then t.cn_in_wires else t.levels.(level).mux_cap);
    out_capacity = (if is_leaf then 1 else t.levels.(level).mux_cap);
    max_in_ports = (if is_leaf then t.levels.(level).mux_cap else max_int);
    is_leaf;
  }

let child_capacities t ~path =
  let level = List.length path in
  if level >= depth t then
    invalid_arg "Machine_desc.child_capacities: path too deep";
  (* Absolute CN index of the first CN under the cluster at [path]. *)
  let base = ref 0 in
  List.iteri
    (fun l i ->
      if i < 0 || i >= t.levels.(l).fanout then
        invalid_arg "Machine_desc.child_capacities: path step out of range";
      base := (!base * t.levels.(l).fanout) + i)
    path;
  let view = level_view t ~level in
  let base = !base * view.children * view.cns_per_child in
  match t.tables with
  | None ->
      Array.make view.children (Resource.scale view.cns_per_child Resource.cn)
  | Some a ->
      Array.init view.children (fun c ->
          let acc = ref Resource.zero in
          for j = 0 to view.cns_per_child - 1 do
            acc := Resource.add !acc a.(base + (c * view.cns_per_child) + j)
          done;
          !acc)

let resources t =
  let cns = total_cns t in
  match t.tables with
  | None ->
      {
        Hca_ddg.Mii.alu_slots = cns;
        ag_slots = cns;
        issue_slots = cns;
        dma_ports = t.dma_ports;
      }
  | Some a ->
      let alus = ref 0 and ags = ref 0 and issue = ref 0 in
      Array.iter
        (fun (r : Resource.t) ->
          alus := !alus + r.Resource.alus;
          ags := !ags + r.Resource.ags;
          issue := !issue + Resource.issue_slots r)
        a;
      {
        Hca_ddg.Mii.alu_slots = !alus;
        ag_slots = !ags;
        issue_slots = !issue;
        dma_ports = t.dma_ports;
      }

let wire_cost t =
  let clusters = ref 1 and cost = ref 0 in
  Array.iteri
    (fun l lv ->
      clusters := !clusters * lv.fanout;
      let out = if l = depth t - 1 then 1 else lv.mux_cap in
      cost := !cost + (!clusters * out))
    t.levels;
  !cost

let pp ppf t =
  Format.fprintf ppf "%s: %d levels, fan-outs [%s], dma=%d%s" t.name (depth t)
    (String.concat ";"
       (Array.to_list (Array.map (fun l -> string_of_int l.fanout) t.levels)))
    t.dma_ports
    (if is_uniform t then "" else " (heterogeneous)")
