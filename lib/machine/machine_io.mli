(** Serialisation of machine descriptions: the [.machine] line-oriented
    text format, round-trippable exactly ([parse ∘ print = id],
    {!Machine_desc.equal} — names included, escaped as in
    {!Hca_ddg.Ddg_io}).

    Format, one record per line, ['#'] comments allowed:
    {v
    machine <name>
    level <fanout> <mux_cap>      # one per level, top-down
    cn_in_wires <count>
    dma_ports <count>
    cn <lo>[-<hi>] <alus> <ags>   # optional per-CN resource overrides
    v}
    The [machine] header must come first; at least one [level] and
    exactly one [cn_in_wires] / [dma_ports] record are required.  [cn]
    records assign a resource table to an absolute CN index range
    (inclusive); unassigned CNs keep the DSPFabric default of one ALU
    and one AG.  Later records override earlier ones. *)

val to_string : Machine_desc.t -> string

val of_string : string -> (Machine_desc.t, string) result
(** Error message carries the offending line number. *)

val write_file : string -> Machine_desc.t -> unit

val read_file : string -> (Machine_desc.t, string) result
