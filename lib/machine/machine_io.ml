(* The [.machine] format follows Ddg_io's conventions: whitespace-
   separated records, '#' comments, names escaped so that
   [parse ∘ print = id] holds exactly, and errors that name the
   offending line. *)

let escape = Hca_ddg.Ddg_io.escape_name

let unescape = Hca_ddg.Ddg_io.unescape_name

let to_string (m : Machine_desc.t) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("machine " ^ escape (Machine_desc.name m) ^ "\n");
  Array.iter
    (fun (l : Machine_desc.level) ->
      Buffer.add_string buf
        (Printf.sprintf "level %d %d\n" l.Machine_desc.fanout
           l.Machine_desc.mux_cap))
    (Machine_desc.levels m);
  Buffer.add_string buf
    (Printf.sprintf "cn_in_wires %d\n" (Machine_desc.cn_in_wires m));
  Buffer.add_string buf
    (Printf.sprintf "dma_ports %d\n" (Machine_desc.dma_ports m));
  if not (Machine_desc.is_uniform m) then begin
    (* Maximal runs of equal tables; the default table prints nothing. *)
    let tables = Machine_desc.tables m in
    let n = Array.length tables in
    let i = ref 0 in
    while !i < n do
      let j = ref !i in
      while !j + 1 < n && tables.(!j + 1) = tables.(!i) do
        incr j
      done;
      let (r : Resource.t) = tables.(!i) in
      if not (Resource.equal r Resource.cn) then
        Buffer.add_string buf
          (if !i = !j then
             Printf.sprintf "cn %d %d %d\n" !i r.Resource.alus r.Resource.ags
           else
             Printf.sprintf "cn %d-%d %d %d\n" !i !j r.Resource.alus
               r.Resource.ags);
      i := !j + 1
    done
  end;
  Buffer.contents buf

exception Fail of string

let err lineno fmt =
  Printf.ksprintf (fun m -> raise (Fail (Printf.sprintf "line %d: %s" lineno m))) fmt

let int_field lineno what s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> err lineno "%s must be an integer, got %S" what s

let range_field lineno s =
  match String.index_opt s '-' with
  | None ->
      let v = int_field lineno "cn index" s in
      (v, v)
  | Some i ->
      let lo = int_field lineno "cn range start" (String.sub s 0 i) in
      let hi =
        int_field lineno "cn range end"
          (String.sub s (i + 1) (String.length s - i - 1))
      in
      (lo, hi)

let of_string text =
  let lines = String.split_on_char '\n' text in
  let name = ref None in
  let levels = ref [] in
  let cn_in = ref None in
  let dma = ref None in
  (* (lineno, lo, hi, table), in file order; ranges are validated
     against the level structure the moment they are read, so the error
     position is exact. *)
  let overrides = ref [] in
  let total_cns () =
    List.fold_left (fun acc (l : Machine_desc.level) -> acc * l.fanout) 1
      (List.rev !levels)
  in
  try
    List.iteri
      (fun i line ->
        let lineno = i + 1 in
        let line = String.trim line in
        if line = "" || line.[0] = '#' then ()
        else
        match
          String.split_on_char ' ' line |> List.filter (fun t -> t <> "")
        with
        | [] -> ()
        | "machine" :: rest ->
            if !name <> None then err lineno "duplicate machine header";
            if rest = [] then err lineno "machine header needs a name";
            name := Some (unescape (String.concat " " rest))
        | tok :: _ when !name = None ->
            err lineno "expected the machine header, got %S" tok
        | [ "level"; f; c ] ->
            if !overrides <> [] then
              err lineno "level records must precede cn records";
            let fanout = int_field lineno "fan-out" f in
            let mux_cap = int_field lineno "MUX capacity" c in
            if fanout < 1 then err lineno "fan-out must be >= 1";
            if mux_cap < 1 then err lineno "MUX capacity must be >= 1";
            levels := { Machine_desc.fanout; mux_cap } :: !levels
        | [ "cn_in_wires"; v ] ->
            if !cn_in <> None then err lineno "duplicate cn_in_wires";
            let v = int_field lineno "cn_in_wires" v in
            if v < 1 then err lineno "cn_in_wires must be >= 1";
            cn_in := Some v
        | [ "dma_ports"; v ] ->
            if !dma <> None then err lineno "duplicate dma_ports";
            let v = int_field lineno "dma_ports" v in
            if v < 1 then err lineno "dma_ports must be >= 1";
            dma := Some v
        | [ "cn"; range; a; g ] ->
            if !levels = [] then err lineno "cn record before any level";
            let lo, hi = range_field lineno range in
            let cns = total_cns () in
            if lo < 0 || hi < lo || hi >= cns then
              err lineno "cn range %d-%d outside [0, %d)" lo hi cns;
            let alus = int_field lineno "alus" a in
            let ags = int_field lineno "ags" g in
            if alus < 0 || ags < 0 then
              err lineno "resource entries must be >= 0";
            if alus = 0 && ags = 0 then
              err lineno "a CN needs at least one unit";
            overrides := (lo, hi, { Resource.alus; ags }) :: !overrides
        | tok :: _ -> err lineno "unknown record %S" tok)
      lines;
    let name =
      match !name with
      | Some n -> n
      | None -> raise (Fail "line 1: missing machine header")
    in
    if !levels = [] then raise (Fail "missing level records");
    let cn_in_wires =
      match !cn_in with
      | Some v -> v
      | None -> raise (Fail "missing cn_in_wires record")
    in
    let dma_ports =
      match !dma with
      | Some v -> v
      | None -> raise (Fail "missing dma_ports record")
    in
    let levels = Array.of_list (List.rev !levels) in
    let tables =
      match !overrides with
      | [] -> None
      | ovs ->
          let cns =
            Array.fold_left
              (fun acc (l : Machine_desc.level) -> acc * l.fanout)
              1 levels
          in
          let a = Array.make cns Resource.cn in
          List.iter
            (fun (lo, hi, r) ->
              for i = lo to hi do
                a.(i) <- r
              done)
            (List.rev ovs);
          Some a
    in
    match
      Machine_desc.make ?tables ~name ~levels ~cn_in_wires ~dma_ports ()
    with
    | m -> Ok m
    | exception Invalid_argument e -> Error e
  with Fail e -> Error e

let write_file path m =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string m))

let read_file path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | text -> of_string text
  | exception Sys_error e -> Error e
