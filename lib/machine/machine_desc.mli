(** First-class machine descriptions.

    The paper defines hierarchical cluster assignment over an arbitrary
    resource hierarchy; this module is that hierarchy as a value.  A
    description fixes

    {ul
    {- the level structure: a non-empty stack of levels, each with a
       fan-out (children per cluster) and a MUX capacity (output wires
       per cluster at set levels, father wires admitted by the crossbar
       at the leaf);}
    {- the per-CN wiring ([cn_in_wires] incoming wires per computation
       node) and the DMA port count;}
    {- optionally a heterogeneous resource table per computation node
       (ALU/MUL-class vs AG/MEM-class unit counts); omitted, every CN is
       the DSPFabric one — one ALU, one AG.}}

    {!Dspfabric} re-expresses the paper's coprocessor as one such
    description, so the solver stack ({!Hca_core.Hierarchy} and below)
    takes any description without knowing which machine it runs.
    Descriptions are plain immutable data: structural equality is
    machine equality ({!equal}), and {!id} is an injective rendering
    used wherever a machine keys a cache that outlives one run. *)

(** One level of the hierarchy, top-down. *)
type level = {
  fanout : int;  (** clusters (or CNs at the leaf) per parent *)
  mux_cap : int;
      (** MUX capacity at set levels; at the leaf, the crossbar's bound
          on incoming father wires *)
}

type t

val make :
  ?tables:Resource.t array ->
  name:string ->
  levels:level array ->
  cn_in_wires:int ->
  dma_ports:int ->
  unit ->
  t
(** [levels] must be non-empty with positive fan-outs and capacities;
    [tables], when given, must have exactly {!total_cns} entries, each
    with non-negative fields and at least one issue slot.  A table where
    every entry equals [Resource.cn] is normalised away, so descriptions
    built with and without it are {!equal}.
    @raise Invalid_argument on violations. *)

val name : t -> string

val id : t -> string
(** Injective over every field (name included, length-prefixed so no
    name can forge another description's id): two descriptions share an
    [id] iff they are {!equal}.  This is the string that keys the
    subproblem memo cache and the serve daemon's persistent store —
    see DESIGN.md §18 on why aliasing two machines would be unsound. *)

val equal : t -> t -> bool

val depth : t -> int

val total_cns : t -> int

val levels : t -> level array
(** A fresh copy; mutating it does not affect the description. *)

val cn_in_wires : t -> int

val dma_ports : t -> int

val is_uniform : t -> bool
(** No heterogeneous table: every CN is [Resource.cn]. *)

val cn_table : t -> int -> Resource.t
(** Resource table of one CN (by absolute index).
    @raise Invalid_argument if the index is out of range. *)

val tables : t -> Resource.t array
(** Per-CN tables, materialised (a fresh array of {!total_cns}). *)

val with_tables : ?name:string -> t -> Resource.t array -> t
(** Same shape, new per-CN tables (and optionally a new display name).
    @raise Invalid_argument as {!make}. *)

(** Everything the per-level cluster-assignment subproblem needs to know
    about its level of the hierarchy (shape only — capacities of a
    concrete node's children come from {!child_capacities}, which can
    differ per node on heterogeneous machines). *)
type level_view = {
  level : int;
  children : int;  (** PG regular nodes at this level *)
  cns_per_child : int;
  mux_capacity : int;
      (** bound on distinct real in-neighbours per PG node; at the leaf
          this is the per-CN incoming-wire count *)
  out_capacity : int;
      (** output wires per node: the MUX capacity at set levels, 1 at
          the leaf (each CN has a single broadcastable outgoing wire) *)
  max_in_ports : int;
      (** how many father wires may enter: the leaf crossbar's bound,
          unbounded elsewhere (the set MUX capacity already applies) *)
  is_leaf : bool;
}

val level_view : t -> level:int -> level_view
(** @raise Invalid_argument if [level] is out of range. *)

val child_capacities : t -> path:int list -> Resource.t array
(** Resource tables of the children of the cluster reached by [path]
    from the root ([path = []] is the root itself; element [i] picks the
    [i]-th child at each level).  Each entry sums the CN tables of one
    child subtree; on a uniform machine every entry is
    [Resource.scale cns_per_child Resource.cn].
    @raise Invalid_argument if [path] is too deep or steps out of
    range. *)

val resources : t -> Hca_ddg.Mii.resources
(** Whole-machine capacities for the level-0 / unified MIIRes. *)

val wire_cost : t -> int
(** Hardware cost proxy used as a Pareto axis by [hca dse]: total
    output wires over the machine, [sum over levels of
    clusters(level) * out_capacity(level)] (1 per CN at the leaf). *)

val pp : Format.formatter -> t -> unit
