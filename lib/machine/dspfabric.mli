(** Parametric model of the DSPFabric coprocessor (§2.2), re-expressed
    as one {!Machine_desc} description.

    The reference instance (Fig. 2) has 64 computation nodes arranged in
    three levels of fan-out 4: level 0 is an array of four 16-issue
    cluster sets communicating through multiplexers of capacity [N];
    inside each set, level 1 replicates the structure with four 4-issue
    sub-sets and MUX capacity [M]; the last level connects four
    single-issue CNs through a reconfigurable crossbar that admits the
    internal connections plus [K] of the wires incoming from level 1.
    Each CN has two incoming wires and one outgoing wire, an ALU, an AG
    towards the programmable DMA, and modulo-scheduling support.

    The DMA serves at most [dma_ports] simultaneous requests (paper:
    "e.g. 8 requests"), which bounds the resource MII of memory-heavy
    kernels.

    [t] {e is} [Machine_desc.t]: every query below also works on
    descriptions parsed from [.machine] files or sampled by the DSE
    generator, and everything downstream of {!Hca_core.Hierarchy} takes
    either interchangeably. *)

type t = Machine_desc.t

val make :
  ?fanouts:int array ->
  ?cn_in_wires:int ->
  ?dma_ports:int ->
  n:int ->
  m:int ->
  k:int ->
  unit ->
  t
(** Defaults: [fanouts = [|4;4;4|]] (the 64-CN instance),
    [cn_in_wires = 2], [dma_ports = 8].
    @raise Invalid_argument on non-positive parameters, or when
    [Array.length fanouts <> 3] while [n]/[m]/[k] are level-indexed. *)

val reference : t
(** The paper's best configuration: 64 CNs, [N = M = K = 8]. *)

val name : t -> string
(** E.g. ["dspfabric-64(N=8,M=8,K=8)"]. *)

val id : t -> string
(** Total identity ({!Machine_desc.id}): two fabrics share an [id] iff
    they are equal descriptions — unlike {!name}, which for
    {!make}-built fabrics elides the fan-outs, the per-CN wire count
    and the DMA ports.  Used wherever a fabric keys a cache that
    outlives a single run. *)

val depth : t -> int
(** Number of hierarchy levels (3 for the reference instance). *)

val total_cns : t -> int

val n : t -> int

val m : t -> int

val k : t -> int

val dma_ports : t -> int

(** Re-export of {!Machine_desc.level_view}: everything the per-level
    cluster-assignment subproblem needs to know about its level of the
    hierarchy. *)
type level_view = Machine_desc.level_view = {
  level : int;
  children : int;  (** PG regular nodes at this level *)
  cns_per_child : int;
  mux_capacity : int;
      (** bound on distinct real in-neighbours per PG node; at the leaf
          this is the per-CN incoming-wire count (2) *)
  out_capacity : int;
      (** output wires per node: the MUX capacity at set levels, 1 at
          the leaf (each CN has a single broadcastable outgoing wire) *)
  max_in_ports : int;
      (** how many father wires may enter: [K] at the leaf crossbar,
          unbounded elsewhere (the set MUX capacity already applies) *)
  is_leaf : bool;
}

val level_view : t -> level:int -> level_view
(** @raise Invalid_argument if [level] is out of range. *)

val child_capacities : t -> path:int list -> Resource.t array
(** {!Machine_desc.child_capacities}: per-child resource tables of the
    cluster at [path] — uniform [cns_per_child * Resource.cn] entries on
    {!make}-built fabrics. *)

val resources : t -> Hca_ddg.Mii.resources
(** Whole-machine capacities for the level-0 / unified MIIRes. *)

val pp : Format.formatter -> t -> unit
