(** Low-level wire model of one hierarchy level — the target of the
    Mapper (§3, Fig. 7).

    Where the Pattern Graph abstracts "cluster [a] can reach cluster
    [b]", this module tracks the physical medium: every node owns
    [out_capacity] output wires (each broadcastable to any subset of the
    other nodes) and [in_capacity] input wires (each tied to exactly one
    source output wire).  At the set levels of DSPFabric both equal the
    MUX capacity; at the leaf a CN has two input wires and one output
    wire.  The Mapper distributes the copies reported on the PG arcs
    over these wires, balancing the per-wire value load, merging
    broadcasts onto a single source wire, and pre-allocating the wires
    that glue this level to its father (§4.1, Fig. 11). *)

open Hca_ddg

type node_id = int

type wire_id = int
(** Global output-wire identifier; [owner w = wire / out_capacity]. *)

type t

val create : nodes:int -> in_capacity:int -> out_capacity:int -> t

val nodes : t -> int

val in_capacity : t -> int

val out_capacity : t -> int

val clone : t -> t

(** {1 Allocation} *)

val alloc_out_wire : t -> node_id -> wire_id option
(** Next unused output wire of the node; [None] when all wires are
    taken. *)

val free_out_wires : t -> node_id -> int

val free_in_slots : t -> node_id -> int

val connect : t -> wire:wire_id -> dst:node_id -> (unit, string) result
(** Ties one input wire of [dst] to [wire].  Fails when [dst] has no
    input slot left, when [dst] owns the wire, or when the pair is
    already connected. *)

val put_value : t -> wire:wire_id -> Instr.id -> unit
(** Adds a value to the wire's payload (idempotent per value). *)

val reserve_external_in : t -> dst:node_id -> label:int -> (unit, string) result
(** Pre-allocates one input slot of [dst] for a wire arriving from the
    outer level ([label] is the father wire index); these slots cannot
    be used for intra-level copy distribution. *)

val reserve_external_out : t -> src:node_id -> label:int -> (wire_id, string) result
(** Binds the father wire [label] to an output wire of [src]: a fresh
    wire when one is free, otherwise the least-loaded existing wire of
    [src] — a node's output wire physically fans out to siblings {e and}
    up-links at once, which is how the single-out-wire leaf CNs serve
    both.  Fails only when [src] has no wire at all. *)

(** {1 Fault injection (tests only)}

    Hooks for the coherency negative tests: they build corrupted
    configurations the allocation API refuses, so the tests can assert
    the checkers reject them.  Never used by the Mapper. *)

val remove_value : t -> wire:wire_id -> Instr.id -> unit
(** Removes a value from a wire's payload — the model stays
    structurally valid but no longer carries what it promised.
    @raise Invalid_argument when the value is not on the wire. *)

val inject_sink : t -> wire:wire_id -> dst:node_id -> unit
(** Ties an input of [dst] to [wire] {e bypassing} the capacity and
    duplicate checks of {!connect} (slot accounting is updated, so
    {!validate} reports the overfilled capacity itself). *)

val drop_external_in : t -> dst:node_id -> label:int -> unit
(** Removes one pre-allocated father-wire reservation.
    @raise Invalid_argument when [label] is not reserved into [dst]. *)

(** {1 Queries} *)

val owner : t -> wire_id -> node_id

val wire_values : t -> wire_id -> Instr.id list

val wire_sinks : t -> wire_id -> node_id list

val used_out_wires : t -> node_id -> wire_id list

val incoming : t -> node_id -> (wire_id * Instr.id list) list
(** Intra-level input connections of a node with the payload each
    carries (external reservations excluded). *)

val external_ins : t -> node_id -> int list
(** Father-wire labels reserved into this node. *)

val external_outs : t -> node_id -> (int * wire_id) list

val max_wire_load : t -> int
(** Heaviest payload over all wires: the wire-pressure contribution to
    the cluster MII. *)

val validate : t -> (unit, string) result
(** Re-checks every invariant (slot counts, single-source inputs);
    used by tests and by the coherency checker. *)

val pp : Format.formatter -> t -> unit
