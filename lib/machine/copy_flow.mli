(** Mutable inter-cluster copy state over a {!Pattern_graph.t}.

    The search turns *potential* PG arcs into *real* communication
    patterns by routing values over them; this module owns that state
    and enforces the reconfiguration constraints of §4.1:

    - a regular node accepts at most [max_in] distinct real
      in-neighbours (the MUX capacity of the level);
    - an output port accepts exactly one real in-neighbour
      ([outNode_MaxIn]: MUX inputs have unary fan-in);
    - at most [max_in_ports] distinct input ports may feed the level
      (the leaf crossbar admits only [K] of the wires coming down from
      level 1).

    The potential matrix is sparse, so the flow numbers the potential
    arcs in ascending [(src, dst)] order and keeps all mutable per-arc
    state in flat arrays at those compact indices (a [src * n + dst]
    lookup table resolves a pair to its arc in O(1)); the speculation
    trail is a preallocated int arena, so the SEE's probe loop neither
    chases nested arrays nor allocates per move.  Snapshots ({!clone})
    copy the per-arc slots — not an [n * n] matrix — and the immutable
    per-arc value lists stay shared; the beam search clones one per
    beam survivor. *)

open Hca_ddg

type t

val create : ?max_in_ports:int -> Pattern_graph.t -> t
(** [max_in_ports] defaults to unlimited. *)

val reserve_neighbor : t -> src:Pattern_graph.node_id -> dst:Pattern_graph.node_id -> unit
(** Pre-commits the in-neighbour slot for a backbone arc: [can_add]
    treats the pair as already connected, so routing along it is always
    possible even when [dst]'s in-degree budget is otherwise spoken for.
    A reserved arc that ends up carrying no value costs nothing at
    mapping time (the Mapper only wires real arcs) — the reservation
    only shapes the search.  Used to pin a ring backbone on the leaf
    quads, whose two-input CNs deadlock without a planned topology.
    @raise Invalid_argument when the arc is not potential. *)

val pg : t -> Pattern_graph.t

val clone : t -> t

val snapshot : t -> t
(** Like {!clone} but allowed while a speculation mark is outstanding:
    captures the flow exactly as it stands — speculative mutations
    included — with a fresh trail and no marks.  Safe because the
    per-arc value lists are immutable: the original popping them on
    {!undo_to_mark} never disturbs the copy.  The Route Allocator
    commits a successful in-place probe by snapshotting it, instead of
    replaying the whole attempt on a clone. *)

(** {1 Mutation} *)

val can_add : t -> src:Pattern_graph.node_id -> dst:Pattern_graph.node_id -> bool
(** Would routing a value on [(src, dst)] respect the potential matrix
    and all in-neighbour constraints? *)

(** {2 Indexed potential-successor view}

    The Route Allocator's BFS scans a node's potential out-arcs once
    per frontier expansion, tens of thousands of times per kernel:
    these accessors walk the compact per-node arc arrays directly —
    no list is built, no [(src, dst)] pair is re-resolved. *)

val out_arc_count : t -> Pattern_graph.node_id -> int
(** Number of potential out-arcs of a node. *)

val out_arc_dst : t -> Pattern_graph.node_id -> int -> Pattern_graph.node_id
(** Destination of the [k]-th potential out-arc (ascending by
    destination id — the same order [Pattern_graph.potential_succs]
    yields). *)

val can_add_out : t -> Pattern_graph.node_id -> int -> bool
(** [can_add] for the [k]-th potential out-arc of a node, without the
    pair-to-arc lookup. *)

val add_copy :
  t -> src:Pattern_graph.node_id -> dst:Pattern_graph.node_id -> Instr.id -> unit
(** Routes one value.  Idempotent per [(src, dst, value)].
    @raise Invalid_argument when [can_add] is false. *)

val remove_copy :
  t -> src:Pattern_graph.node_id -> dst:Pattern_graph.node_id -> Instr.id -> unit
(** Fault injection for the coherency negative tests: un-routes one
    value, keeping every aggregate counter consistent (the flow remains
    structurally valid — only the communication it promises changes).
    Never used by the search itself.
    @raise Invalid_argument when the value is not routed on the arc or
    a speculation mark is outstanding. *)

(** {1 Speculation trail}

    The SEE probes candidate moves by mutating one scratch flow in
    place instead of cloning per candidate: [push_mark] opens a trail,
    every subsequent {!add_copy} logs its mutation, and [undo_to_mark]
    reverses them exactly, leaving the flow bit-identical to the state
    at the mark (the round trip is property-tested).  Marks nest
    LIFO. *)

type mark

val push_mark : t -> mark
(** Starts (or deepens) trail recording. *)

val undo_to_mark : t -> mark -> unit
(** Reverts every mutation since the matching {!push_mark} and closes
    that mark.
    @raise Invalid_argument when no mark is outstanding. *)

val equal : t -> t -> bool
(** Structural equality of the routed flows (same PG size, same value
    lists on every arc).  The aggregate counters are functions of the
    value matrix, so they are not compared beyond the cheap O(1)
    prefilters. *)

val hash_into : t -> Hca_util.Sig_hash.t -> unit
(** Folds the real arcs (ascending [(src, dst)], values in stack order)
    into a signature: part of the SEE's transposition key. *)

(** {1 Queries} *)

val copies : t -> src:Pattern_graph.node_id -> dst:Pattern_graph.node_id -> Instr.id list
(** Values on the arc, in insertion order. *)

val is_real : t -> src:Pattern_graph.node_id -> dst:Pattern_graph.node_id -> bool

val real_in_neighbors : t -> Pattern_graph.node_id -> Pattern_graph.node_id list

val real_out_neighbors : t -> Pattern_graph.node_id -> Pattern_graph.node_id list

val arcs : t -> (Pattern_graph.node_id * Pattern_graph.node_id * Instr.id list) list
(** All real arcs with their value lists, ordered by [(src, dst)]. *)

val copy_count : t -> int
(** Total value-hops routed. *)

val used_in_ports : t -> Pattern_graph.node_id list
(** Input ports with at least one outgoing copy. *)

val used_in_ports_count : t -> int
(** [List.length (used_in_ports t)] in O(1): the flow maintains its
    aggregate counters incrementally so the cost function's per-move
    queries never re-walk the copy matrix. *)

val real_in_count : t -> Pattern_graph.node_id -> int
(** [List.length (real_in_neighbors t id)] in O(1). *)

val max_arc_pressure : t -> int
(** Largest number of values on a single real arc — the copy-pressure
    term of the cluster MII. *)

val in_pressure : t -> Pattern_graph.node_id -> int
(** Values entering a node: each needs a receive slot. *)

val out_pressure : t -> Pattern_graph.node_id -> int
(** Distinct values leaving a node (a broadcast counts once, the paper's
    Mapper merges broadcast copies onto one wire). *)

val pp : Format.formatter -> t -> unit
