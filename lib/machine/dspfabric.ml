type t = Machine_desc.t

let make ?(fanouts = [| 4; 4; 4 |]) ?(cn_in_wires = 2) ?(dma_ports = 8) ~n ~m
    ~k () =
  if Array.length fanouts < 2 then
    invalid_arg "Dspfabric.make: need at least two levels";
  Array.iter
    (fun f -> if f < 2 then invalid_arg "Dspfabric.make: fan-out must be >= 2")
    fanouts;
  if n <= 0 || m <= 0 || k <= 0 then
    invalid_arg "Dspfabric.make: MUX capacities must be positive";
  if cn_in_wires <= 0 || dma_ports <= 0 then
    invalid_arg "Dspfabric.make: cn_in_wires and dma_ports must be positive";
  let depth = Array.length fanouts in
  (* N applies at level 0, K at the leaf crossbar, M at every level in
     between (the reference machine has exactly one such level). *)
  let levels =
    Array.init depth (fun lvl ->
        {
          Machine_desc.fanout = fanouts.(lvl);
          mux_cap = (if lvl = 0 then n else if lvl = depth - 1 then k else m);
        })
  in
  let total = Array.fold_left ( * ) 1 fanouts in
  Machine_desc.make
    ~name:(Printf.sprintf "dspfabric-%d(N=%d,M=%d,K=%d)" total n m k)
    ~levels ~cn_in_wires ~dma_ports ()

let reference = make ~n:8 ~m:8 ~k:8 ()

let total_cns = Machine_desc.total_cns

let depth = Machine_desc.depth

let n t = (Machine_desc.levels t).(0).Machine_desc.mux_cap

let m t = (Machine_desc.levels t).(min 1 (depth t - 1)).Machine_desc.mux_cap

let k t = (Machine_desc.levels t).(depth t - 1).Machine_desc.mux_cap

let dma_ports = Machine_desc.dma_ports

let name = Machine_desc.name

let id = Machine_desc.id

type level_view = Machine_desc.level_view = {
  level : int;
  children : int;
  cns_per_child : int;
  mux_capacity : int;
  out_capacity : int;
  max_in_ports : int;
  is_leaf : bool;
}

let level_view = Machine_desc.level_view

let child_capacities = Machine_desc.child_capacities

let resources = Machine_desc.resources

let pp = Machine_desc.pp
