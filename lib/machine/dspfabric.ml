type t = {
  fanouts : int array;
  mux_caps : int array;  (* per level: N, M, ..., K *)
  cn_in_wires : int;
  dma_ports : int;
}

let make ?(fanouts = [| 4; 4; 4 |]) ?(cn_in_wires = 2) ?(dma_ports = 8) ~n ~m
    ~k () =
  if Array.length fanouts < 2 then
    invalid_arg "Dspfabric.make: need at least two levels";
  Array.iter
    (fun f -> if f < 2 then invalid_arg "Dspfabric.make: fan-out must be >= 2")
    fanouts;
  if n <= 0 || m <= 0 || k <= 0 then
    invalid_arg "Dspfabric.make: MUX capacities must be positive";
  if cn_in_wires <= 0 || dma_ports <= 0 then
    invalid_arg "Dspfabric.make: cn_in_wires and dma_ports must be positive";
  let depth = Array.length fanouts in
  (* N applies at level 0, K at the leaf crossbar, M at every level in
     between (the reference machine has exactly one such level). *)
  let mux_caps =
    Array.init depth (fun lvl ->
        if lvl = 0 then n else if lvl = depth - 1 then k else m)
  in
  { fanouts; mux_caps; cn_in_wires; dma_ports }

let reference = make ~n:8 ~m:8 ~k:8 ()

let total_cns t = Array.fold_left ( * ) 1 t.fanouts

let depth t = Array.length t.fanouts

let n t = t.mux_caps.(0)

let m t = t.mux_caps.(min 1 (depth t - 1))

let k t = t.mux_caps.(depth t - 1)

let dma_ports t = t.dma_ports

let name t =
  Printf.sprintf "dspfabric-%d(N=%d,M=%d,K=%d)" (total_cns t) (n t) (m t) (k t)

let id t =
  Printf.sprintf "dspfabric[%s;mux=%s;cn_in=%d;dma=%d]"
    (String.concat "x" (Array.to_list (Array.map string_of_int t.fanouts)))
    (String.concat "," (Array.to_list (Array.map string_of_int t.mux_caps)))
    t.cn_in_wires t.dma_ports

type level_view = {
  level : int;
  children : int;
  cns_per_child : int;
  capacity_per_child : Resource.t;
  mux_capacity : int;
  out_capacity : int;
  max_in_ports : int;
  is_leaf : bool;
}

let level_view t ~level =
  if level < 0 || level >= depth t then
    invalid_arg "Dspfabric.level_view: level out of range";
  let is_leaf = level = depth t - 1 in
  let cns_per_child = ref 1 in
  for l = level + 1 to depth t - 1 do
    cns_per_child := !cns_per_child * t.fanouts.(l)
  done;
  {
    level;
    children = t.fanouts.(level);
    cns_per_child = !cns_per_child;
    capacity_per_child = Resource.scale !cns_per_child Resource.cn;
    mux_capacity = (if is_leaf then t.cn_in_wires else t.mux_caps.(level));
    out_capacity = (if is_leaf then 1 else t.mux_caps.(level));
    max_in_ports = (if is_leaf then t.mux_caps.(level) else max_int);
    is_leaf;
  }

let resources t =
  let cns = total_cns t in
  {
    Hca_ddg.Mii.alu_slots = cns;
    ag_slots = cns;
    issue_slots = cns;
    dma_ports = t.dma_ports;
  }

let pp ppf t =
  Format.fprintf ppf "%s: %d levels, fan-outs [%s], dma=%d" (name t) (depth t)
    (String.concat ";" (Array.to_list (Array.map string_of_int t.fanouts)))
    t.dma_ports
