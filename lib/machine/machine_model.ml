open Hca_ddg

type node_id = int

type wire_id = int

type t = {
  nodes : int;
  in_capacity : int;
  out_capacity : int;
  out_used : int array;  (* output wires taken per node *)
  in_used : int array;  (* input slots taken per node *)
  mutable values : Instr.id list array;  (* per wire, reverse order *)
  mutable sinks : node_id list array;  (* per wire *)
  mutable ext_in : int list array;  (* father-wire labels per node *)
  mutable ext_out : (int * wire_id) list array;
}

let create ~nodes ~in_capacity ~out_capacity =
  if nodes <= 0 || in_capacity <= 0 || out_capacity <= 0 then
    invalid_arg "Machine_model.create: non-positive size";
  {
    nodes;
    in_capacity;
    out_capacity;
    out_used = Array.make nodes 0;
    in_used = Array.make nodes 0;
    values = Array.make (nodes * out_capacity) [];
    sinks = Array.make (nodes * out_capacity) [];
    ext_in = Array.make nodes [];
    ext_out = Array.make nodes [];
  }

let nodes t = t.nodes

let in_capacity t = t.in_capacity

let out_capacity t = t.out_capacity

let clone t =
  {
    t with
    out_used = Array.copy t.out_used;
    in_used = Array.copy t.in_used;
    values = Array.copy t.values;
    sinks = Array.copy t.sinks;
    ext_in = Array.copy t.ext_in;
    ext_out = Array.copy t.ext_out;
  }

let check_node t id ctx =
  if id < 0 || id >= t.nodes then invalid_arg (ctx ^ ": bad node id")

let check_wire t w ctx =
  if w < 0 || w >= t.nodes * t.out_capacity then
    invalid_arg (ctx ^ ": bad wire id")

let owner t w =
  check_wire t w "Machine_model.owner";
  w / t.out_capacity

let alloc_out_wire t node =
  check_node t node "Machine_model.alloc_out_wire";
  if t.out_used.(node) >= t.out_capacity then None
  else begin
    let w = (node * t.out_capacity) + t.out_used.(node) in
    t.out_used.(node) <- t.out_used.(node) + 1;
    Some w
  end

let free_out_wires t node =
  check_node t node "Machine_model.free_out_wires";
  t.out_capacity - t.out_used.(node)

let free_in_slots t node =
  check_node t node "Machine_model.free_in_slots";
  t.in_capacity - t.in_used.(node)

let connect t ~wire ~dst =
  check_wire t wire "Machine_model.connect";
  check_node t dst "Machine_model.connect";
  if owner t wire = dst then Error "a node cannot listen to its own wire"
  else if List.mem dst t.sinks.(wire) then Error "wire already feeds this node"
  else if t.in_used.(dst) >= t.in_capacity then Error "no input slot left"
  else begin
    t.in_used.(dst) <- t.in_used.(dst) + 1;
    t.sinks.(wire) <- dst :: t.sinks.(wire);
    Ok ()
  end

let put_value t ~wire v =
  check_wire t wire "Machine_model.put_value";
  if wire >= (owner t wire * t.out_capacity) + t.out_used.(owner t wire) then
    invalid_arg "Machine_model.put_value: wire not allocated";
  if not (List.mem v t.values.(wire)) then
    t.values.(wire) <- v :: t.values.(wire)

let reserve_external_in t ~dst ~label =
  check_node t dst "Machine_model.reserve_external_in";
  if t.in_used.(dst) >= t.in_capacity then Error "no input slot left"
  else begin
    t.in_used.(dst) <- t.in_used.(dst) + 1;
    t.ext_in.(dst) <- label :: t.ext_in.(dst);
    Ok ()
  end

let reserve_external_out t ~src ~label =
  check_node t src "Machine_model.reserve_external_out";
  match alloc_out_wire t src with
  | Some w ->
      t.ext_out.(src) <- (label, w) :: t.ext_out.(src);
      Ok w
  | None -> (
      (* Share: an output wire fans out to siblings and up-links at
         once, so tap the least-loaded existing wire. *)
      let best = ref None in
      for i = 0 to t.out_used.(src) - 1 do
        let w = (src * t.out_capacity) + i in
        let load = List.length t.values.(w) in
        match !best with
        | Some (_, l) when l <= load -> ()
        | _ -> best := Some (w, load)
      done;
      match !best with
      | None -> Error "no output wire left"
      | Some (w, _) ->
          t.ext_out.(src) <- (label, w) :: t.ext_out.(src);
          Ok w)

(* Fault-injection hooks for the coherency negative tests.  They
   deliberately produce configurations the allocation API above cannot:
   [remove_value] keeps the model structurally valid but breaks a
   communication promise; [inject_sink] overfills a MUX (every slot
   counter is updated, so [validate] must flag the capacity, not an
   accounting mismatch); [drop_external_in] severs a father wire. *)

let remove_value t ~wire v =
  check_wire t wire "Machine_model.remove_value";
  if not (List.mem v t.values.(wire)) then
    invalid_arg "Machine_model.remove_value: value not on this wire";
  t.values.(wire) <- List.filter (fun x -> x <> v) t.values.(wire)

let inject_sink t ~wire ~dst =
  check_wire t wire "Machine_model.inject_sink";
  check_node t dst "Machine_model.inject_sink";
  t.in_used.(dst) <- t.in_used.(dst) + 1;
  t.sinks.(wire) <- dst :: t.sinks.(wire)

let drop_external_in t ~dst ~label =
  check_node t dst "Machine_model.drop_external_in";
  if not (List.mem label t.ext_in.(dst)) then
    invalid_arg "Machine_model.drop_external_in: label not reserved";
  t.ext_in.(dst) <-
    (let dropped = ref false in
     List.filter
       (fun l ->
         if l = label && not !dropped then begin
           dropped := true;
           false
         end
         else true)
       t.ext_in.(dst));
  t.in_used.(dst) <- t.in_used.(dst) - 1

let wire_values t w =
  check_wire t w "Machine_model.wire_values";
  List.rev t.values.(w)

let wire_sinks t w =
  check_wire t w "Machine_model.wire_sinks";
  List.rev t.sinks.(w)

let used_out_wires t node =
  check_node t node "Machine_model.used_out_wires";
  List.init t.out_used.(node) (fun i -> (node * t.out_capacity) + i)

let incoming t node =
  check_node t node "Machine_model.incoming";
  let acc = ref [] in
  for w = (t.nodes * t.out_capacity) - 1 downto 0 do
    if List.mem node t.sinks.(w) then acc := (w, List.rev t.values.(w)) :: !acc
  done;
  !acc

let external_ins t node =
  check_node t node "Machine_model.external_ins";
  List.rev t.ext_in.(node)

let external_outs t node =
  check_node t node "Machine_model.external_outs";
  List.rev t.ext_out.(node)

let max_wire_load t =
  Array.fold_left (fun acc vs -> max acc (List.length vs)) 0 t.values

let validate t =
  let errors = ref [] in
  (* Input-slot accounting per node. *)
  for node = 0 to t.nodes - 1 do
    let intra =
      Array.fold_left
        (fun acc sinks -> if List.mem node sinks then acc + 1 else acc)
        0 t.sinks
    in
    let total = intra + List.length t.ext_in.(node) in
    if total <> t.in_used.(node) then
      errors :=
        Printf.sprintf "node %d: in-slot accounting mismatch (%d vs %d)" node
          total t.in_used.(node)
        :: !errors;
    if total > t.in_capacity then
      errors :=
        Printf.sprintf "node %d: %d input connections exceed capacity %d" node
          total t.in_capacity
        :: !errors;
    if t.out_used.(node) > t.out_capacity then
      errors :=
        Printf.sprintf "node %d: output wires exceed capacity" node :: !errors
  done;
  (* A wire never feeds its owner and never feeds the same node twice. *)
  Array.iteri
    (fun w sinks ->
      if sinks <> [] then begin
        let o = w / t.out_capacity in
        if List.mem o sinks then
          errors := Printf.sprintf "wire %d feeds its owner" w :: !errors;
        if List.length (List.sort_uniq compare sinks) <> List.length sinks
        then errors := Printf.sprintf "wire %d has duplicate sinks" w :: !errors
      end)
    t.sinks;
  match !errors with [] -> Ok () | es -> Error (String.concat "; " es)

let pp ppf t =
  Format.fprintf ppf "@[<v>machine model: %d nodes, %d in / %d out wires"
    t.nodes t.in_capacity t.out_capacity;
  for node = 0 to t.nodes - 1 do
    List.iter
      (fun w ->
        Format.fprintf ppf "@,  wire %d (node %d) -> [%s] values [%s]" w node
          (String.concat "," (List.map string_of_int (wire_sinks t w)))
          (String.concat "," (List.map string_of_int (wire_values t w))))
      (used_out_wires t node)
  done;
  Format.fprintf ppf "@]"
