open Hca_ddg

(* Compact arc storage: the potential matrix of a PG is sparse (a node
   only reaches its level neighbours and ports), so instead of an
   [n * n] matrix the flow numbers the potential arcs 0..n_arcs-1 in
   ascending [(src, dst)] order and keeps every mutable per-arc
   structure at that compact index.  [arc_of] maps a flat
   [src * n + dst] to its compact id (-1 when not potential), so the
   hot queries are one load away from the dense arrays; clones copy
   [n_arcs] slots instead of [n * n].  The aggregate counters mirror
   the arc state so the per-move cost queries ([copy_count],
   [in_pressure], [can_add]...) are O(1) reads; every mutation keeps
   them in sync.

   The speculation trail is an arena: a preallocated int array of
   compact arc ids reused across probes, so an apply/undo round trip
   allocates nothing once the arena is warm. *)
type t = {
  pg : Pattern_graph.t;
  n : int;
  max_in_ports : int;
  arc_of : int array;  (* flat [src * n + dst] -> compact arc id or -1 *)
  arc_src : int array;  (* compact arc id -> endpoints *)
  arc_dst : int array;
  in_arcs : int array array;  (* per dst: compact ids, src ascending *)
  out_arcs : int array array;  (* per src: compact ids, dst ascending *)
  values : Instr.id list array;  (* per compact arc, reverse order *)
  reserved : Bytes.t;  (* per compact arc: slot pre-committed *)
  inport : Bytes.t;  (* cached per-node In_port flag *)
  max_in_of : int array;  (* cached per-dst in-neighbour budget *)
  mutable total : int;  (* value-hops over all arcs *)
  in_pres : int array;  (* values entering each node *)
  in_deg : int array;  (* distinct real in-neighbours *)
  out_deg : int array;  (* distinct real out-neighbours *)
  committed_in : int array;  (* real or reserved in-arcs *)
  mutable used_ports : int;  (* in-ports with at least one out-arc *)
  (* Speculation trail: while a mark is outstanding, [add_copy] logs
     each mutated compact arc id so [undo_to_mark] can reverse the
     mutations exactly (LIFO: the value lists are stacks). *)
  mutable trail : int array;
  mutable trail_len : int;
  mutable marks : int;
}

type mark = int

let create ?(max_in_ports = max_int) pg =
  let n = Pattern_graph.size pg in
  let inport = Bytes.make n '\000' in
  let max_in_of = Array.make n 0 in
  Array.iter
    (fun (nd : Pattern_graph.node) ->
      match nd.kind with
      | Pattern_graph.In_port _ -> Bytes.set inport nd.id '\001'
      | Pattern_graph.Out_port _ -> max_in_of.(nd.id) <- 1
      | Pattern_graph.Regular -> max_in_of.(nd.id) <- Pattern_graph.max_in pg)
    (Pattern_graph.nodes pg);
  let arc_of = Array.make (n * n) (-1) in
  let srcs = ref [] and dsts = ref [] and n_arcs = ref 0 in
  (* Compact ids ascend with the flat index, so iterating arcs
     0..n_arcs-1 is the (src, dst)-lexicographic matrix walk the
     signature and equality orders rely on. *)
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      if Pattern_graph.is_potential pg ~src ~dst then begin
        arc_of.((src * n) + dst) <- !n_arcs;
        srcs := src :: !srcs;
        dsts := dst :: !dsts;
        incr n_arcs
      end
    done
  done;
  let arc_src = Array.of_list (List.rev !srcs) in
  let arc_dst = Array.of_list (List.rev !dsts) in
  let collect_arcs by =
    Array.init n (fun id ->
        let acc = ref [] in
        for a = !n_arcs - 1 downto 0 do
          if by.(a) = id then acc := a :: !acc
        done;
        Array.of_list !acc)
  in
  {
    pg;
    n;
    max_in_ports;
    arc_of;
    arc_src;
    arc_dst;
    in_arcs = collect_arcs arc_dst;
    out_arcs = collect_arcs arc_src;
    values = Array.make (max 1 !n_arcs) [];
    reserved = Bytes.make (max 1 !n_arcs) '\000';
    inport;
    max_in_of;
    total = 0;
    in_pres = Array.make n 0;
    in_deg = Array.make n 0;
    out_deg = Array.make n 0;
    committed_in = Array.make n 0;
    used_ports = 0;
    trail = [||];
    trail_len = 0;
    marks = 0;
  }

let pg t = t.pg

(* Copy the mutable arc state as it stands — even mid-speculation: the
   value lists are immutable (sharing their tails is safe when the
   original later pops them on [undo_to_mark]), so the copy captures
   the speculatively mutated flow with a fresh, markless trail.  The
   Route Allocator commits a successful probe this way instead of
   replaying it on a clone. *)
let snapshot t =
  {
    t with
    (* The value lists are immutable, so the arc array clones with a
       single [Array.copy] and the lists stay shared. *)
    values = Array.copy t.values;
    in_pres = Array.copy t.in_pres;
    in_deg = Array.copy t.in_deg;
    out_deg = Array.copy t.out_deg;
    committed_in = Array.copy t.committed_in;
    trail = [||];
    trail_len = 0;
    marks = 0;
  }
  (* [arc_of]/[arc_src]/[arc_dst]/[in_arcs]/[out_arcs]/[reserved]/
     [inport]/[max_in_of] are never mutated after setup, so sharing
     them is safe. *)

let clone t =
  if t.marks <> 0 then invalid_arg "Copy_flow.clone: speculation in flight";
  snapshot t

let arc_id t ~src ~dst =
  if src >= 0 && src < t.n && dst >= 0 && dst < t.n then
    Array.unsafe_get t.arc_of ((src * t.n) + dst)
  else -1

let copies t ~src ~dst =
  match arc_id t ~src ~dst with -1 -> [] | a -> List.rev t.values.(a)

let is_real t ~src ~dst =
  match arc_id t ~src ~dst with -1 -> false | a -> t.values.(a) <> []

let real_in_neighbors t id =
  let arcs = t.in_arcs.(id) in
  let acc = ref [] in
  for i = Array.length arcs - 1 downto 0 do
    let a = arcs.(i) in
    if t.values.(a) <> [] then acc := t.arc_src.(a) :: !acc
  done;
  !acc

let real_out_neighbors t id =
  let arcs = t.out_arcs.(id) in
  let acc = ref [] in
  for i = Array.length arcs - 1 downto 0 do
    let a = arcs.(i) in
    if t.values.(a) <> [] then acc := t.arc_dst.(a) :: !acc
  done;
  !acc

let used_in_ports t =
  Pattern_graph.in_ports t.pg
  |> List.filter_map (fun (nd : Pattern_graph.node) ->
         if t.out_deg.(nd.id) > 0 then Some nd.id else None)

let used_in_ports_count t = t.used_ports

let real_in_count t id = t.in_deg.(id)

let is_in_port t id = Bytes.unsafe_get t.inport id <> '\000'

let reserve_neighbor t ~src ~dst =
  match arc_id t ~src ~dst with
  | -1 -> invalid_arg "Copy_flow.reserve_neighbor: arc not potential"
  | a ->
      (* In-degree with backbone reservations folded in: a reserved arc
         holds its slot whether or not a value flows yet. *)
      if Bytes.get t.reserved a = '\000' && t.values.(a) = [] then
        t.committed_in.(dst) <- t.committed_in.(dst) + 1;
      Bytes.set t.reserved a '\001'

(* [can_add] on an already-resolved compact arc id. *)
let can_add_arc t a ~src ~dst =
  t.values.(a) <> []
  || Bytes.unsafe_get t.reserved a <> '\000'
  || t.committed_in.(dst) < t.max_in_of.(dst)
     && ((not (is_in_port t src))
        || t.out_deg.(src) > 0
        || t.used_ports < t.max_in_ports)

let can_add t ~src ~dst =
  match arc_id t ~src ~dst with
  | -1 -> false
  | a -> can_add_arc t a ~src ~dst

(* Index-based view of a node's potential out-arcs, for the Route
   Allocator's BFS: the successor scan must neither allocate a list per
   expansion (the [Pattern_graph.potential_succs] way) nor re-resolve
   the [(src, dst)] pair it already holds compactly. *)
let out_arc_count t src = Array.length t.out_arcs.(src)

let out_arc_dst t src k = t.arc_dst.(t.out_arcs.(src).(k))

let can_add_out t src k =
  let a = t.out_arcs.(src).(k) in
  can_add_arc t a ~src ~dst:t.arc_dst.(a)

let trail_push t a =
  let cap = Array.length t.trail in
  if t.trail_len = cap then begin
    let grown = Array.make (max 64 (2 * cap)) 0 in
    Array.blit t.trail 0 grown 0 t.trail_len;
    t.trail <- grown
  end;
  t.trail.(t.trail_len) <- a;
  t.trail_len <- t.trail_len + 1

let add_copy t ~src ~dst value =
  let a = arc_id t ~src ~dst in
  if a < 0 || not (can_add_arc t a ~src ~dst) then
    invalid_arg
      (Printf.sprintf "Copy_flow.add_copy: arc %d->%d not allowed" src dst);
  if not (List.mem value t.values.(a)) then begin
    if t.values.(a) = [] then begin
      t.in_deg.(dst) <- t.in_deg.(dst) + 1;
      t.out_deg.(src) <- t.out_deg.(src) + 1;
      if is_in_port t src && t.out_deg.(src) = 1 then
        t.used_ports <- t.used_ports + 1;
      if Bytes.unsafe_get t.reserved a = '\000' then
        t.committed_in.(dst) <- t.committed_in.(dst) + 1
    end;
    t.values.(a) <- value :: t.values.(a);
    t.total <- t.total + 1;
    t.in_pres.(dst) <- t.in_pres.(dst) + 1;
    if t.marks > 0 then trail_push t a
  end

let remove_copy t ~src ~dst value =
  if t.marks <> 0 then invalid_arg "Copy_flow.remove_copy: speculation in flight";
  let a = arc_id t ~src ~dst in
  if a < 0 || not (List.mem value t.values.(a)) then
    invalid_arg "Copy_flow.remove_copy: value not routed on this arc";
  t.values.(a) <- List.filter (fun v -> v <> value) t.values.(a);
  t.total <- t.total - 1;
  t.in_pres.(dst) <- t.in_pres.(dst) - 1;
  if t.values.(a) = [] then begin
    t.in_deg.(dst) <- t.in_deg.(dst) - 1;
    t.out_deg.(src) <- t.out_deg.(src) - 1;
    if is_in_port t src && t.out_deg.(src) = 0 then
      t.used_ports <- t.used_ports - 1;
    if Bytes.unsafe_get t.reserved a = '\000' then
      t.committed_in.(dst) <- t.committed_in.(dst) - 1
  end

let push_mark t =
  t.marks <- t.marks + 1;
  t.trail_len

(* Reverse of the mutating branch of [add_copy]: pop the value, and
   when the arc empties again reverse the arc-level counters under the
   same conditions the add tested. *)
let undo_event t a =
  let src = t.arc_src.(a) and dst = t.arc_dst.(a) in
  match t.values.(a) with
  | [] -> assert false
  | _ :: tl ->
      t.values.(a) <- tl;
      t.total <- t.total - 1;
      t.in_pres.(dst) <- t.in_pres.(dst) - 1;
      if tl = [] then begin
        t.in_deg.(dst) <- t.in_deg.(dst) - 1;
        t.out_deg.(src) <- t.out_deg.(src) - 1;
        if is_in_port t src && t.out_deg.(src) = 0 then
          t.used_ports <- t.used_ports - 1;
        if Bytes.unsafe_get t.reserved a = '\000' then
          t.committed_in.(dst) <- t.committed_in.(dst) - 1
      end

let undo_to_mark t mark =
  if t.marks <= 0 then invalid_arg "Copy_flow.undo_to_mark: no mark in flight";
  while t.trail_len > mark do
    t.trail_len <- t.trail_len - 1;
    undo_event t t.trail.(t.trail_len)
  done;
  t.marks <- t.marks - 1

let equal a b =
  a.n = b.n
  && a.total = b.total
  && a.used_ports = b.used_ports
  &&
  let ok = ref true in
  (try
     for i = 0 to Array.length a.values - 1 do
       if a.values.(i) <> b.values.(i) then begin
         ok := false;
         raise Exit
       end
     done
   with Exit -> ());
  !ok

let hash_into t h =
  Hca_util.Sig_hash.add_int h t.total;
  Hca_util.Sig_hash.add_int h t.used_ports;
  (* Compact-id ascending = (src, dst) lexicographic, the order the
     matrix walk used before the layout went sparse. *)
  for a = 0 to Array.length t.values - 1 do
    match t.values.(a) with
    | [] -> ()
    | vs ->
        Hca_util.Sig_hash.add_int h t.arc_src.(a);
        Hca_util.Sig_hash.add_int h t.arc_dst.(a);
        Hca_util.Sig_hash.add_int_list h vs
  done

let arcs t =
  let acc = ref [] in
  for a = Array.length t.values - 1 downto 0 do
    if t.values.(a) <> [] then
      acc := (t.arc_src.(a), t.arc_dst.(a), List.rev t.values.(a)) :: !acc
  done;
  !acc

let copy_count t = t.total

let max_arc_pressure t =
  Array.fold_left (fun acc vs -> max acc (List.length vs)) 0 t.values

let in_pressure t id = t.in_pres.(id)

let out_pressure t id =
  let module S = Set.Make (Int) in
  let distinct = ref S.empty in
  Array.iter
    (fun a -> List.iter (fun v -> distinct := S.add v !distinct) t.values.(a))
    t.out_arcs.(id);
  S.cardinal !distinct

let pp ppf t =
  Format.fprintf ppf "@[<v>copy flow on %s:" (Pattern_graph.name t.pg);
  List.iter
    (fun (src, dst, vs) ->
      Format.fprintf ppf "@,  %d -> %d : [%s]" src dst
        (String.concat "," (List.map string_of_int vs)))
    (arcs t);
  Format.fprintf ppf "@]"

