open Hca_ddg

(* The aggregate counters mirror [values]/[reserved] so the hot cost
   queries ([copy_count], [in_pressure], [can_add]...) are O(1) reads
   instead of matrix walks; every mutation keeps them in sync. *)
type t = {
  pg : Pattern_graph.t;
  max_in_ports : int;
  values : Instr.id list array array;  (* values.(src).(dst), reverse order *)
  reserved : bool array array;  (* backbone arcs: slot pre-committed *)
  mutable total : int;  (* value-hops over all arcs *)
  in_pres : int array;  (* values entering each node *)
  in_deg : int array;  (* distinct real in-neighbours *)
  out_deg : int array;  (* distinct real out-neighbours *)
  committed_in : int array;  (* real or reserved in-arcs *)
  mutable used_ports : int;  (* in-ports with at least one out-arc *)
  (* Speculation trail: while a mark is outstanding, [add_copy] logs
     each mutated [(src, dst)] so [undo_to_mark] can reverse the
     mutations exactly (LIFO: the value lists are stacks). *)
  mutable trail : (int * int) list;
  mutable trail_len : int;
  mutable marks : int;
}

type mark = int

let create ?(max_in_ports = max_int) pg =
  let n = Pattern_graph.size pg in
  {
    pg;
    max_in_ports;
    values = Array.init n (fun _ -> Array.make n []);
    reserved = Array.init n (fun _ -> Array.make n false);
    total = 0;
    in_pres = Array.make n 0;
    in_deg = Array.make n 0;
    out_deg = Array.make n 0;
    committed_in = Array.make n 0;
    used_ports = 0;
    trail = [];
    trail_len = 0;
    marks = 0;
  }

let pg t = t.pg

let clone t =
  if t.marks <> 0 then invalid_arg "Copy_flow.clone: speculation in flight";
  {
    t with
    values = Array.map Array.copy t.values;
    in_pres = Array.copy t.in_pres;
    in_deg = Array.copy t.in_deg;
    out_deg = Array.copy t.out_deg;
    committed_in = Array.copy t.committed_in;
    trail = [];
    trail_len = 0;
  }
  (* [reserved] is never mutated after setup, so sharing it is safe. *)

let copies t ~src ~dst = List.rev t.values.(src).(dst)

let is_real t ~src ~dst = t.values.(src).(dst) <> []

let real_in_neighbors t id =
  let acc = ref [] in
  for src = Pattern_graph.size t.pg - 1 downto 0 do
    if t.values.(src).(id) <> [] then acc := src :: !acc
  done;
  !acc

let real_out_neighbors t id =
  let acc = ref [] in
  for dst = Pattern_graph.size t.pg - 1 downto 0 do
    if t.values.(id).(dst) <> [] then acc := dst :: !acc
  done;
  !acc

let used_in_ports t =
  Pattern_graph.in_ports t.pg
  |> List.filter_map (fun (nd : Pattern_graph.node) ->
         if t.out_deg.(nd.id) > 0 then Some nd.id else None)

let used_in_ports_count t = t.used_ports

let real_in_count t id = t.in_deg.(id)

let is_in_port t id =
  match (Pattern_graph.node t.pg id).kind with
  | Pattern_graph.In_port _ -> true
  | Pattern_graph.Regular | Pattern_graph.Out_port _ -> false

let max_in_for t dst =
  match (Pattern_graph.node t.pg dst).kind with
  | Pattern_graph.Out_port _ -> 1
  | Pattern_graph.Regular -> Pattern_graph.max_in t.pg
  | Pattern_graph.In_port _ -> 0

let reserve_neighbor t ~src ~dst =
  if not (Pattern_graph.is_potential t.pg ~src ~dst) then
    invalid_arg "Copy_flow.reserve_neighbor: arc not potential";
  (* In-degree with backbone reservations folded in: a reserved arc
     holds its slot whether or not a value flows yet. *)
  if (not t.reserved.(src).(dst)) && t.values.(src).(dst) = [] then
    t.committed_in.(dst) <- t.committed_in.(dst) + 1;
  t.reserved.(src).(dst) <- true

let can_add t ~src ~dst =
  Pattern_graph.is_potential t.pg ~src ~dst
  && (is_real t ~src ~dst || t.reserved.(src).(dst)
     || t.committed_in.(dst) < max_in_for t dst
        && ((not (is_in_port t src))
           || t.out_deg.(src) > 0
           || t.used_ports < t.max_in_ports))

let add_copy t ~src ~dst value =
  if not (can_add t ~src ~dst) then
    invalid_arg
      (Printf.sprintf "Copy_flow.add_copy: arc %d->%d not allowed" src dst);
  if not (List.mem value t.values.(src).(dst)) then begin
    if t.values.(src).(dst) = [] then begin
      t.in_deg.(dst) <- t.in_deg.(dst) + 1;
      t.out_deg.(src) <- t.out_deg.(src) + 1;
      if is_in_port t src && t.out_deg.(src) = 1 then
        t.used_ports <- t.used_ports + 1;
      if not t.reserved.(src).(dst) then
        t.committed_in.(dst) <- t.committed_in.(dst) + 1
    end;
    t.values.(src).(dst) <- value :: t.values.(src).(dst);
    t.total <- t.total + 1;
    t.in_pres.(dst) <- t.in_pres.(dst) + 1;
    if t.marks > 0 then begin
      t.trail <- (src, dst) :: t.trail;
      t.trail_len <- t.trail_len + 1
    end
  end

let remove_copy t ~src ~dst value =
  if t.marks <> 0 then invalid_arg "Copy_flow.remove_copy: speculation in flight";
  if not (List.mem value t.values.(src).(dst)) then
    invalid_arg "Copy_flow.remove_copy: value not routed on this arc";
  t.values.(src).(dst) <-
    List.filter (fun v -> v <> value) t.values.(src).(dst);
  t.total <- t.total - 1;
  t.in_pres.(dst) <- t.in_pres.(dst) - 1;
  if t.values.(src).(dst) = [] then begin
    t.in_deg.(dst) <- t.in_deg.(dst) - 1;
    t.out_deg.(src) <- t.out_deg.(src) - 1;
    if is_in_port t src && t.out_deg.(src) = 0 then
      t.used_ports <- t.used_ports - 1;
    if not t.reserved.(src).(dst) then
      t.committed_in.(dst) <- t.committed_in.(dst) - 1
  end

let push_mark t =
  t.marks <- t.marks + 1;
  t.trail_len

(* Reverse of the mutating branch of [add_copy]: pop the value, and
   when the arc empties again reverse the arc-level counters under the
   same conditions the add tested. *)
let undo_event t (src, dst) =
  match t.values.(src).(dst) with
  | [] -> assert false
  | _ :: tl ->
      t.values.(src).(dst) <- tl;
      t.total <- t.total - 1;
      t.in_pres.(dst) <- t.in_pres.(dst) - 1;
      if tl = [] then begin
        t.in_deg.(dst) <- t.in_deg.(dst) - 1;
        t.out_deg.(src) <- t.out_deg.(src) - 1;
        if is_in_port t src && t.out_deg.(src) = 0 then
          t.used_ports <- t.used_ports - 1;
        if not t.reserved.(src).(dst) then
          t.committed_in.(dst) <- t.committed_in.(dst) - 1
      end

let undo_to_mark t mark =
  if t.marks <= 0 then invalid_arg "Copy_flow.undo_to_mark: no mark in flight";
  while t.trail_len > mark do
    match t.trail with
    | [] -> assert false
    | ev :: rest ->
        undo_event t ev;
        t.trail <- rest;
        t.trail_len <- t.trail_len - 1
  done;
  t.marks <- t.marks - 1

let equal a b =
  let n = Pattern_graph.size a.pg in
  n = Pattern_graph.size b.pg
  && a.total = b.total
  && a.used_ports = b.used_ports
  &&
  let ok = ref true in
  (try
     for src = 0 to n - 1 do
       for dst = 0 to n - 1 do
         if a.values.(src).(dst) <> b.values.(src).(dst) then begin
           ok := false;
           raise Exit
         end
       done
     done
   with Exit -> ());
  !ok

let hash_into t h =
  let n = Pattern_graph.size t.pg in
  Hca_util.Sig_hash.add_int h t.total;
  Hca_util.Sig_hash.add_int h t.used_ports;
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      match t.values.(src).(dst) with
      | [] -> ()
      | vs ->
          Hca_util.Sig_hash.add_int h src;
          Hca_util.Sig_hash.add_int h dst;
          Hca_util.Sig_hash.add_int_list h vs
    done
  done

let arcs t =
  let n = Pattern_graph.size t.pg in
  let acc = ref [] in
  for src = n - 1 downto 0 do
    for dst = n - 1 downto 0 do
      if t.values.(src).(dst) <> [] then
        acc := (src, dst, List.rev t.values.(src).(dst)) :: !acc
    done
  done;
  !acc

let copy_count t = t.total

let max_arc_pressure t =
  Array.fold_left
    (fun acc row ->
      Array.fold_left (fun acc vs -> max acc (List.length vs)) acc row)
    0 t.values

let in_pressure t id = t.in_pres.(id)

let out_pressure t id =
  let module S = Set.Make (Int) in
  let distinct =
    Array.fold_left
      (fun acc vs -> List.fold_left (fun acc v -> S.add v acc) acc vs)
      S.empty t.values.(id)
  in
  S.cardinal distinct

let pp ppf t =
  Format.fprintf ppf "@[<v>copy flow on %s:" (Pattern_graph.name t.pg);
  List.iter
    (fun (src, dst, vs) ->
      Format.fprintf ppf "@,  %d -> %d : [%s]" src dst
        (String.concat "," (List.map string_of_int vs)))
    (arcs t);
  Format.fprintf ppf "@]"
