module Report = Hca_core.Report
module Registry = Hca_obs.Obs.Registry

type summary = {
  count : int;
  ok : int;
  failed : int;
  deadline_exceeded : int;
  errors : int;
  timeouts : int;
  cache_hits : int;
  cache_misses : int;
  cache_entries : int;
  loaded_entries : int;
  elapsed_s : float;
  throughput_rps : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  submit_p50_ms : float;
  submit_p95_ms : float;
  result_p50_ms : float;
  result_p95_ms : float;
  verified : int;
  verify_mismatches : int;
}

exception Client_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Client_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Connection plumbing                                                 *)

type conn = { ic : in_channel; oc : out_channel }

let connect path =
  let rec go tries =
    let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
    match Unix.connect fd (ADDR_UNIX path) with
    | () -> { ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }
    | exception Unix.Unix_error ((ENOENT | ECONNREFUSED), _, _) when tries > 0
      ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Unix.sleepf 0.1;
        go (tries - 1)
    | exception Unix.Unix_error (e, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        fail "connect %s: %s" path (Unix.error_message e)
  in
  go 50

let close conn = try close_out conn.oc with Sys_error _ -> ()

let rpc conn line =
  output_string conn.oc line;
  output_char conn.oc '\n';
  flush conn.oc;
  let reply =
    try input_line conn.ic
    with End_of_file -> fail "daemon closed the connection"
  in
  match Json.parse reply with
  | Error e -> fail "unparsable reply %S: %s" reply e
  | Ok j -> (
      match Option.bind (Json.member "ok" j) Json.bool with
      | Some true -> j
      | Some false | None ->
          fail "daemon error: %s"
            (Option.value ~default:reply
               (Option.bind (Json.member "error" j) Json.str)))

(* Per-verb RPC latency lands in the live registry — client workers run
   on pool domains, so these observations also exercise the registry's
   cross-domain merge for real. *)
let timed_rpc verb conn line =
  let t0 = Hca_util.Clock.now () in
  let j = rpc conn line in
  Registry.observe
    (Printf.sprintf "hca_client_rpc_ms{verb=%S}" verb)
    ((Hca_util.Clock.now () -. t0) *. 1000.);
  j

(* One request over a throwaway connection: what [hca top] polls with. *)
let rpc_once ~path line =
  match
    let conn = connect path in
    Fun.protect ~finally:(fun () -> close conn) (fun () -> rpc conn line)
  with
  | j -> Ok j
  | exception Client_error e -> Error e
  | exception Sys_error e -> Error e

let jint j k =
  match Option.bind (Json.member k j) Json.int with
  | Some v -> v
  | None -> fail "reply misses integer %S" k

let jstr j k =
  match Option.bind (Json.member k j) Json.str with
  | Some v -> v
  | None -> fail "reply misses string %S" k

(* ------------------------------------------------------------------ *)
(* One worker: submit every seed of its slice, then collect.           *)

type served = {
  seed : int;
  kernel : string;
  state : string;
  legal : bool;
  final_mii : int option;
  copies : int;
  invariant : string option;
  latency_s : float;
}

let submit_line ~max_size ~deadline_s seed =
  Json.to_string
    (Json.Obj
       ([ ("verb", Json.Str "submit"); ("gen_seed", Json.Num (float_of_int seed)) ]
       @ (match max_size with
         | None -> []
         | Some m -> [ ("gen_max_size", Json.Num (float_of_int m)) ])
       @
       match deadline_s with
       | None -> []
       | Some d -> [ ("deadline_s", Json.Num d) ]))

let worker ~path ~max_size ~deadline_s seeds =
  let conn = connect path in
  Fun.protect
    ~finally:(fun () -> close conn)
    (fun () ->
      let pending =
        List.map
          (fun seed ->
            let t0 = Hca_util.Clock.now () in
            let j = timed_rpc "submit" conn (submit_line ~max_size ~deadline_s seed) in
            (seed, jint j "id", t0))
          seeds
      in
      List.map
        (fun (seed, id, t0) ->
          let j =
            timed_rpc "result" conn
              (Json.to_string
                 (Json.Obj
                    [
                      ("verb", Json.Str "result");
                      ("id", Json.Num (float_of_int id));
                      ("wait", Json.Bool true);
                    ]))
          in
          let latency_s = Hca_util.Clock.now () -. t0 in
          let state = jstr j "state" in
          (match state with
          | "deadline_exceeded" -> Registry.inc "hca_client_timeouts_total"
          | "failed" | "cancelled" -> Registry.inc "hca_client_errors_total"
          | _ -> ());
          {
            seed;
            kernel = (try jstr j "kernel" with Client_error _ -> "?");
            state;
            legal =
              Option.value ~default:false
                (Option.bind (Json.member "legal" j) Json.bool);
            final_mii = Option.bind (Json.member "final_mii" j) Json.int;
            copies =
              Option.value ~default:0
                (Option.bind (Json.member "copies" j) Json.int);
            invariant = Option.bind (Json.member "invariant" j) Json.str;
            latency_s;
          })
        pending)

(* ------------------------------------------------------------------ *)

let slices jobs l =
  let buckets = Array.make jobs [] in
  List.iteri (fun i x -> buckets.(i mod jobs) <- x :: buckets.(i mod jobs)) l;
  Array.to_list (Array.map List.rev buckets)
  |> List.filter (fun s -> s <> [])

let verify_served ~max_size served =
  match served.invariant with
  | None -> None (* expired / crashed: nothing to compare *)
  | Some remote ->
      let ddg = Daemon.gen_kernel ~seed:served.seed ~max_size in
      let local =
        Report.run ~jobs:1 Hca_machine.Dspfabric.reference ddg
      in
      Some (Report.invariant_string local = remote)

(* The loadtest may share its process with earlier registry traffic
   (tests, repeated runs), so per-run figures are deltas between two
   snapshots, never absolutes. *)
let counter_delta before after name =
  let get s =
    Option.value ~default:0 (List.assoc_opt name s.Registry.counters)
  in
  get after - get before

let hist_delta before after name =
  match List.assoc_opt name after.Registry.hists with
  | None -> None
  | Some a -> (
      match List.assoc_opt name before.Registry.hists with
      | None -> Some a
      | Some b ->
          Some
            {
              a with
              Registry.buckets =
                Array.mapi (fun i v -> v - b.Registry.buckets.(i)) a.Registry.buckets;
              count = a.Registry.count - b.Registry.count;
              sum = a.Registry.sum -. b.Registry.sum;
            })

let delta_quantile before after name q =
  match hist_delta before after name with
  | Some hv when hv.Registry.count > 0 -> Registry.quantile hv q
  | _ -> 0.

let emit_rows path served agg_fields =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun s ->
          Printf.fprintf oc
            "{\"experiment\":\"serve_loadtest\",\"kernel\":%S,\"seed\":%d,\
             \"state\":%S,\"legal\":%b,\"final_mii\":%s,\"copies\":%d,\
             \"latency_ms\":%.3f}\n"
            s.kernel s.seed s.state s.legal
            (match s.final_mii with Some m -> string_of_int m | None -> "null")
            s.copies (s.latency_s *. 1000.))
        served;
      Printf.fprintf oc
        "{\"experiment\":\"serve_loadtest\",\"kernel\":\"_aggregate\"%s}\n"
        (String.concat ""
           (List.map (fun (k, v) -> Printf.sprintf ",%S:%s" k v) agg_fields)))

let run ~path ?(count = 25) ?(jobs = 2) ?(seed0 = 1) ?max_size ?deadline_s
    ?(verify = false) ?json_out () =
  try
    let seeds = List.init count (fun i -> seed0 + i) in
    let stats () =
      let conn = connect path in
      Fun.protect
        ~finally:(fun () -> close conn)
        (fun () -> rpc conn {|{"verb":"stats"}|})
    in
    let before = stats () in
    let reg_before = Registry.snapshot () in
    let t0 = Hca_util.Clock.now () in
    let served =
      Hca_util.Domain_pool.parallel_map ~jobs
        (worker ~path ~max_size ~deadline_s)
        (slices jobs seeds)
      |> List.concat
      |> List.sort (fun a b -> compare a.seed b.seed)
    in
    let elapsed_s = Hca_util.Clock.now () -. t0 in
    let reg_after = Registry.snapshot () in
    let after = stats () in
    let rpc_q verb q =
      delta_quantile reg_before reg_after
        (Printf.sprintf "hca_client_rpc_ms{verb=%S}" verb)
        q
    in
    (* The latency histogram goes through lib/obs so the daemon's own
       percentile machinery is what reports the tails. *)
    Hca_obs.Obs.enable ();
    Hca_obs.Obs.reset ();
    List.iter
      (fun s -> Hca_obs.Obs.observe "serve.latency_ms" (s.latency_s *. 1000.))
      served;
    let hist =
      List.find_opt
        (fun h -> h.Hca_obs.Obs.Summary.h_name = "serve.latency_ms")
        (Hca_obs.Obs.Summary.collect ()).Hca_obs.Obs.Summary.histograms
    in
    let p50, p95, p99 =
      match hist with
      | Some h -> Hca_obs.Obs.Summary.(h.p50, h.p95, h.p99)
      | None -> (0., 0., 0.)
    in
    let n_state st = List.length (List.filter (fun s -> s.state = st) served) in
    let verified_results =
      if not verify then []
      else List.filter_map (verify_served ~max_size) served
    in
    let verified = List.length verified_results in
    let verify_mismatches =
      List.length (List.filter (fun ok -> not ok) verified_results)
    in
    let delta k = jint after k - jint before k in
    let s =
      {
        count;
        ok = n_state "done";
        failed = n_state "failed" + n_state "cancelled";
        deadline_exceeded = n_state "deadline_exceeded";
        errors = counter_delta reg_before reg_after "hca_client_errors_total";
        timeouts =
          counter_delta reg_before reg_after "hca_client_timeouts_total";
        cache_hits = delta "cache_hits";
        cache_misses = delta "cache_misses";
        cache_entries = jint after "cache_entries";
        loaded_entries = jint after "loaded_entries";
        elapsed_s;
        throughput_rps =
          (if elapsed_s > 0. then float_of_int count /. elapsed_s else 0.);
        p50_ms = p50;
        p95_ms = p95;
        p99_ms = p99;
        submit_p50_ms = rpc_q "submit" 0.5;
        submit_p95_ms = rpc_q "submit" 0.95;
        result_p50_ms = rpc_q "result" 0.5;
        result_p95_ms = rpc_q "result" 0.95;
        verified;
        verify_mismatches;
      }
    in
    Option.iter
      (fun out ->
        emit_rows out served
          [
            ("count", string_of_int s.count);
            ("ok", string_of_int s.ok);
            ("failed", string_of_int s.failed);
            ("deadline_exceeded", string_of_int s.deadline_exceeded);
            ("elapsed_s", Printf.sprintf "%.6f" s.elapsed_s);
            ("throughput_rps", Printf.sprintf "%.3f" s.throughput_rps);
            ("p50_ms", Printf.sprintf "%.3f" s.p50_ms);
            ("p95_ms", Printf.sprintf "%.3f" s.p95_ms);
            ("p99_ms", Printf.sprintf "%.3f" s.p99_ms);
            ("submit_p50_ms", Printf.sprintf "%.3f" s.submit_p50_ms);
            ("submit_p95_ms", Printf.sprintf "%.3f" s.submit_p95_ms);
            ("result_p50_ms", Printf.sprintf "%.3f" s.result_p50_ms);
            ("result_p95_ms", Printf.sprintf "%.3f" s.result_p95_ms);
            ("errors", string_of_int s.errors);
            ("timeouts", string_of_int s.timeouts);
            ("cache_hits", string_of_int s.cache_hits);
            ("cache_misses", string_of_int s.cache_misses);
            ("cache_entries", string_of_int s.cache_entries);
            ("loaded_entries", string_of_int s.loaded_entries);
            ("verified", string_of_int s.verified);
            ("verify_mismatches", string_of_int s.verify_mismatches);
          ])
      json_out;
    Ok s
  with
  | Client_error e -> Error e
  | Sys_error e -> Error e

let print_summary s =
  Printf.printf "loadtest: %d requests in %.2f s (%.1f req/s)\n" s.count
    s.elapsed_s s.throughput_rps;
  Printf.printf "  states: ok %d, failed %d, deadline_exceeded %d\n" s.ok
    s.failed s.deadline_exceeded;
  Printf.printf "  latency ms: p50 %.1f  p95 %.1f  p99 %.1f\n" s.p50_ms
    s.p95_ms s.p99_ms;
  Printf.printf
    "  rpc ms: submit p50 %.1f p95 %.1f | result p50 %.1f p95 %.1f | errors \
     %d, timeouts %d\n"
    s.submit_p50_ms s.submit_p95_ms s.result_p50_ms s.result_p95_ms s.errors
    s.timeouts;
  Printf.printf
    "  cache: +%d hits / +%d misses this run; %d entries (%d loaded at start)\n"
    s.cache_hits s.cache_misses s.cache_entries s.loaded_entries;
  if s.verified > 0 then
    Printf.printf "  verify: %d/%d bit-identical to local one-shot runs\n"
      (s.verified - s.verify_mismatches)
      s.verified
