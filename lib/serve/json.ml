type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* {1 Printer} *)

let escape_to b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else
    (* Shortest representation that round-trips a double. *)
    let s = Printf.sprintf "%.17g" f in
    let shorter = Printf.sprintf "%.15g" f in
    if float_of_string shorter = f then shorter else s

let to_string v =
  let b = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string b "null"
    | Bool true -> Buffer.add_string b "true"
    | Bool false -> Buffer.add_string b "false"
    | Num f -> Buffer.add_string b (number_to_string f)
    | Str s ->
        Buffer.add_char b '"';
        escape_to b s;
        Buffer.add_char b '"'
    | Arr l ->
        Buffer.add_char b '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char b ',';
            go x)
          l;
        Buffer.add_char b ']'
    | Obj l ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, x) ->
            if i > 0 then Buffer.add_char b ',';
            Buffer.add_char b '"';
            escape_to b k;
            Buffer.add_string b "\":";
            go x)
          l;
        Buffer.add_char b '}'
  in
  go v;
  Buffer.contents b

(* {1 Parser} — recursive descent over the string, tracking the byte
   offset for error messages. *)

exception Fail of int * string

let parse s =
  let n = String.length s in
  let i = ref 0 in
  let fail msg = raise (Fail (!i, msg)) in
  let peek () = if !i < n then Some s.[!i] else None in
  let skip_ws () =
    while
      !i < n && (match s.[!i] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr i
    done
  in
  let expect c =
    if !i < n && s.[!i] = c then incr i
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !i + l <= n && String.sub s !i l = word then begin
      i := !i + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !i >= n then fail "unterminated string"
      else
        match s.[!i] with
        | '"' -> incr i
        | '\\' ->
            incr i;
            if !i >= n then fail "unterminated escape";
            (match s.[!i] with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | '/' -> Buffer.add_char b '/'
            | 'b' -> Buffer.add_char b '\b'
            | 'f' -> Buffer.add_char b '\012'
            | 'n' -> Buffer.add_char b '\n'
            | 'r' -> Buffer.add_char b '\r'
            | 't' -> Buffer.add_char b '\t'
            | 'u' ->
                if !i + 4 >= n then fail "truncated \\u escape";
                let hex = String.sub s (!i + 1) 4 in
                let code =
                  try int_of_string ("0x" ^ hex)
                  with _ -> fail "bad \\u escape"
                in
                (* Encode the code point as UTF-8; surrogate pairs of
                   the wire format are beyond what the protocol ever
                   carries, so a lone surrogate is kept verbatim. *)
                if code < 0x80 then Buffer.add_char b (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char b (Char.chr (0xc0 lor (code lsr 6)));
                  Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
                end
                else begin
                  Buffer.add_char b (Char.chr (0xe0 lor (code lsr 12)));
                  Buffer.add_char b
                    (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
                  Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
                end;
                i := !i + 4
            | c -> fail (Printf.sprintf "bad escape \\%c" c));
            incr i;
            go ()
        | c ->
            Buffer.add_char b c;
            incr i;
            go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !i in
    if peek () = Some '-' then incr i;
    let digits () =
      let d0 = !i in
      while !i < n && s.[!i] >= '0' && s.[!i] <= '9' do
        incr i
      done;
      if !i = d0 then fail "expected digit"
    in
    digits ();
    if peek () = Some '.' then begin
      incr i;
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        incr i;
        (match peek () with Some ('+' | '-') -> incr i | _ -> ());
        digits ()
    | _ -> ());
    let text = String.sub s start (!i - start) in
    match float_of_string_opt text with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        incr i;
        skip_ws ();
        if peek () = Some '}' then begin
          incr i;
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr i;
                members ()
            | Some '}' -> incr i
            | _ -> fail "expected ',' or '}'"
          in
          members ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        incr i;
        skip_ws ();
        if peek () = Some ']' then begin
          incr i;
          Arr []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr i;
                elements ()
            | Some ']' -> incr i
            | _ -> fail "expected ',' or ']'"
          in
          elements ();
          Arr (List.rev !items)
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !i < n then fail "trailing characters after value";
    v
  with
  | v -> Ok v
  | exception Fail (pos, msg) ->
      Error (Printf.sprintf "%s at offset %d" msg pos)

(* {1 Accessors} *)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let str = function Str s -> Some s | _ -> None

let num = function Num f -> Some f | _ -> None

let int = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let bool = function Bool b -> Some b | _ -> None
