type outcome =
  | Solved of Hca_core.Report.t
  | Expired
  | Crashed of string

type state = Queued | Running | Finished of outcome | Cancelled

type totals = {
  submitted : int;
  finished : int;
  cancelled : int;
  expired : int;
  crashed : int;
  cache_hits : int;
  cache_misses : int;
}

type event =
  | Submitted of { id : int; label : string; priority : int }
  | Started of { id : int; label : string; wait_s : float }
  | Done of {
      id : int;
      label : string;
      outcome : outcome;
      latency_s : float;
      run_s : float;
    }
  | Cancelled_job of { id : int; label : string; latency_s : float }

type job = {
  id : int;
  label : string;
  priority : int;
  deadline_s : float option;
  submitted_s : float;
  work : id:int -> deadline_s:float option -> Hca_core.Report.t;
  mutable jstate : state;
}

type t = {
  mutex : Mutex.t;
  done_cond : Condition.t;  (* any job reached a terminal state *)
  jobs : (int, job) Hashtbl.t;
  mutable pending : job list;  (* unsorted; popped best-first *)
  mutable next_id : int;
  mutable n_running : int;
  mutable tot : totals;
  pool : Hca_util.Domain_pool.t option;
  on_finish : (unit -> unit) option;
  on_event : (event -> unit) option;
}

let zero_totals =
  {
    submitted = 0;
    finished = 0;
    cancelled = 0;
    expired = 0;
    crashed = 0;
    cache_hits = 0;
    cache_misses = 0;
  }

let create ?pool ?on_finish ?on_event () =
  {
    mutex = Mutex.create ();
    done_cond = Condition.create ();
    jobs = Hashtbl.create 64;
    pending = [];
    next_id = 0;
    n_running = 0;
    tot = zero_totals;
    pool;
    on_finish;
    on_event;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* Observers run outside the queue lock, on whichever domain caused
   the transition; a raising observer must never take the queue down. *)
let emit t ev =
  match t.on_event with
  | None -> ()
  | Some f -> ( try f ev with _ -> ())

(* Highest priority wins; FIFO (lowest id) within a priority. *)
let better a b =
  a.priority > b.priority || (a.priority = b.priority && a.id < b.id)

let pop_best t =
  match t.pending with
  | [] -> None
  | first :: _ ->
      let best = List.fold_left (fun acc j -> if better j acc then j else acc) first t.pending in
      t.pending <- List.filter (fun j -> j.id <> best.id) t.pending;
      Some best

(* Terminal transition + accounting; call with the lock held. *)
let finish_locked t job outcome =
  job.jstate <- Finished outcome;
  let tot = t.tot in
  t.tot <-
    (match outcome with
    | Expired -> { tot with finished = tot.finished + 1; expired = tot.expired + 1 }
    | Crashed _ -> { tot with finished = tot.finished + 1; crashed = tot.crashed + 1 }
    | Solved r ->
        {
          tot with
          finished = tot.finished + 1;
          cache_hits = tot.cache_hits + r.Hca_core.Report.cache_hits;
          cache_misses = tot.cache_misses + r.Hca_core.Report.cache_misses;
        });
  Condition.broadcast t.done_cond

let pump t =
  let picked =
    locked t @@ fun () ->
    match pop_best t with
    | None -> None
    | Some job ->
        let remaining =
          Option.map
            (fun d -> d -. (Hca_util.Clock.now () -. job.submitted_s))
            job.deadline_s
        in
        (match remaining with
        | Some r when r <= 0. -> finish_locked t job Expired
        | _ ->
            job.jstate <- Running;
            t.n_running <- t.n_running + 1);
        Some (job, remaining)
  in
  match picked with
  | None -> false
  | Some (job, _) when job.jstate <> Running ->
      (* Expired while queued: terminal already; still poke waiters. *)
      emit t
        (Done
           {
             id = job.id;
             label = job.label;
             outcome = Expired;
             latency_s = Hca_util.Clock.now () -. job.submitted_s;
             run_s = 0.;
           });
      Option.iter (fun f -> f ()) t.on_finish;
      true
  | Some (job, remaining) ->
      let started_s = Hca_util.Clock.now () in
      emit t
        (Started
           {
             id = job.id;
             label = job.label;
             wait_s = started_s -. job.submitted_s;
           });
      let outcome =
        match job.work ~id:job.id ~deadline_s:remaining with
        | r -> Solved r
        | exception e -> Crashed (Printexc.to_string e)
      in
      (locked t @@ fun () ->
       t.n_running <- t.n_running - 1;
       finish_locked t job outcome);
      let now = Hca_util.Clock.now () in
      emit t
        (Done
           {
             id = job.id;
             label = job.label;
             outcome;
             latency_s = now -. job.submitted_s;
             run_s = now -. started_s;
           });
      Option.iter (fun f -> f ()) t.on_finish;
      true

let submit t ~label ?(priority = 0) ?deadline_s work =
  let job, pool =
    locked t @@ fun () ->
    let id = t.next_id in
    t.next_id <- id + 1;
    let job =
      {
        id;
        label;
        priority;
        deadline_s;
        submitted_s = Hca_util.Clock.now ();
        work;
        jstate = Queued;
      }
    in
    Hashtbl.replace t.jobs id job;
    t.pending <- job :: t.pending;
    t.tot <- { t.tot with submitted = t.tot.submitted + 1 };
    (job, t.pool)
  in
  emit t (Submitted { id = job.id; label; priority });
  Option.iter
    (fun pool -> Hca_util.Domain_pool.submit pool (fun () -> ignore (pump t)))
    pool;
  job.id

let find t id = locked t @@ fun () -> Hashtbl.find_opt t.jobs id

let state t id = Option.map (fun j -> j.jstate) (find t id)

let label t id = Option.map (fun j -> j.label) (find t id)

let report t id =
  match state t id with Some (Finished (Solved r)) -> Some r | _ -> None

let cancel t id =
  let poke, r =
    locked t @@ fun () ->
    match Hashtbl.find_opt t.jobs id with
    | None -> (None, Error (Printf.sprintf "unknown job %d" id))
    | Some job -> (
        match job.jstate with
        | Queued ->
            t.pending <- List.filter (fun j -> j.id <> id) t.pending;
            job.jstate <- Cancelled;
            t.tot <- { t.tot with cancelled = t.tot.cancelled + 1 };
            Condition.broadcast t.done_cond;
            (Some job, Ok ())
        | Running -> (None, Error (Printf.sprintf "job %d is already running" id))
        | Finished _ -> (None, Error (Printf.sprintf "job %d already finished" id))
        | Cancelled -> (None, Error (Printf.sprintf "job %d already cancelled" id)))
  in
  Option.iter
    (fun job ->
      emit t
        (Cancelled_job
           {
             id = job.id;
             label = job.label;
             latency_s = Hca_util.Clock.now () -. job.submitted_s;
           });
      Option.iter (fun f -> f ()) t.on_finish)
    poke;
  r

let terminal = function
  | Some (Finished _ | Cancelled) | None -> true
  | Some (Queued | Running) -> false

let rec wait t id =
  let s = state t id in
  if terminal s then s
  else if t.pool = None then begin
    (* Drive the queue ourselves; the target job is queued or running
       on this very domain's call stack, so pumping must eventually
       reach it. *)
    ignore (pump t);
    wait t id
  end
  else begin
    (locked t @@ fun () ->
     match Hashtbl.find_opt t.jobs id with
     | Some job when not (terminal (Some job.jstate)) ->
         Condition.wait t.done_cond t.mutex
     | _ -> ());
    wait t id
  end

let rec drain t =
  let busy =
    locked t @@ fun () ->
    if t.pending = [] && t.n_running = 0 then false
    else if t.pool = None then true
    else begin
      Condition.wait t.done_cond t.mutex;
      t.pending <> [] || t.n_running > 0
    end
  in
  if busy then begin
    if t.pool = None then ignore (pump t);
    drain t
  end

let queued t = locked t @@ fun () -> List.length t.pending

let running t = locked t @@ fun () -> t.n_running

let totals t = locked t @@ fun () -> t.tot
