module Report = Hca_core.Report
module Hierarchy = Hca_core.Hierarchy
module Config = Hca_core.Config
module Dspfabric = Hca_machine.Dspfabric
module Ddg = Hca_ddg.Ddg
module Ddg_io = Hca_ddg.Ddg_io
module Obs = Hca_obs.Obs
module Log = Hca_obs.Obs.Log
module Registry = Hca_obs.Obs.Registry

type telemetry = {
  trace_dir : string;
  trace_sample : int;
  slow_ms : float option;
  flight : bool;
  flight_capacity : int;
}

let default_telemetry =
  {
    trace_dir = Filename.concat (Filename.get_temp_dir_name ()) "hca-traces";
    trace_sample = 0;
    slow_ms = None;
    flight = false;
    flight_capacity = 4096;
  }

type t = {
  q : Jobq.t;
  cache : Hierarchy.cache;
  store_path : string option;
  stamp : string;
  loaded : int;
  started_s : float;
  tel : telemetry;
  mutable stopping : bool;
}

type reply =
  | Line of string
  | Wait_for of int
  | Shutdown_after of string

let rec ensure_dir d =
  if d <> "" && d <> "/" && d <> "." && not (Sys.file_exists d) then begin
    ensure_dir (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error (EEXIST, _, _) -> ()
  end

let trace_file t id =
  Filename.concat t.tel.trace_dir (Printf.sprintf "req-%d.json" id)

let flight_file t id =
  Filename.concat t.tel.trace_dir (Printf.sprintf "flight-%d.json" id)

(* ------------------------------------------------------------------ *)
(* Telemetry plumbing                                                  *)

let outcome_label = function
  | Jobq.Expired -> "expired"
  | Jobq.Crashed _ -> "crashed"
  | Jobq.Solved r ->
      if r.Report.timed_out then "timed_out"
      else if r.Report.legal && r.Report.error = None then "solved"
      else "failed"

let set_queue_gauges t =
  Registry.set "hca_queue_depth" (float_of_int (Jobq.queued t.q));
  Registry.set "hca_jobs_inflight" (float_of_int (Jobq.running t.q))

(* Every lifecycle transition lands here (from the acting domain,
   outside the queue lock): registry counters + gauges, a structured
   log line, and — for crashed / expired / timed-out / slow jobs — a
   flight-recorder dump named by request id. *)
let on_job_event t ev =
  (match ev with
  | Jobq.Submitted { id; label; priority } ->
      Registry.inc "hca_jobs_submitted_total";
      Log.info "job.submit" ~req:id
        [ ("kernel", Log.S label); ("priority", Log.I priority) ]
  | Jobq.Started { id; label; wait_s } ->
      Log.debug "job.start" ~req:id
        [ ("kernel", Log.S label); ("wait_ms", Log.F (wait_s *. 1000.)) ]
  | Jobq.Cancelled_job { id; label; latency_s } ->
      Registry.inc "hca_jobs_cancelled_total";
      Log.info "job.cancel" ~req:id
        [ ("kernel", Log.S label); ("latency_ms", Log.F (latency_s *. 1000.)) ]
  | Jobq.Done { id; label; outcome; latency_s; run_s } ->
      let olabel = outcome_label outcome in
      Registry.inc (Printf.sprintf "hca_jobs_done_total{outcome=%S}" olabel);
      Registry.observe "hca_request_latency_ms" (latency_s *. 1000.);
      Registry.observe "hca_request_run_ms" (run_s *. 1000.);
      (match outcome with
      | Jobq.Solved r ->
          Registry.inc ~by:r.Report.cache_hits "hca_memo_hits_total";
          Registry.inc ~by:r.Report.cache_misses "hca_memo_misses_total"
      | Jobq.Expired | Jobq.Crashed _ -> ());
      let slow =
        match t.tel.slow_ms with
        | Some ms -> latency_s *. 1000. > ms
        | None -> false
      in
      let bad =
        match outcome with
        | Jobq.Expired | Jobq.Crashed _ -> true
        | Jobq.Solved r -> r.Report.timed_out
      in
      let level =
        match outcome with
        | Jobq.Crashed _ -> Log.Error
        | _ when bad || slow -> Log.Warn
        | _ -> Log.Info
      in
      Log.log level "job.finish" ~req:id
        ([
           ("kernel", Log.S label);
           ("outcome", Log.S olabel);
           ("latency_ms", Log.F (latency_s *. 1000.));
           ("run_ms", Log.F (run_s *. 1000.));
         ]
        @
        match outcome with
        | Jobq.Crashed e -> [ ("error", Log.S e) ]
        | _ -> []);
      if t.tel.flight && (bad || slow) then begin
        let file = flight_file t id in
        let reason = if bad then olabel else "slow" in
        try
          ensure_dir t.tel.trace_dir;
          Obs.Ring.write
            ~meta:
              [
                ("request", string_of_int id);
                ("kernel", label);
                ("reason", reason);
              ]
            file;
          Registry.inc "hca_flight_dumps_total";
          Log.warn "flight.dump" ~req:id
            [ ("file", Log.S file); ("reason", Log.S reason) ]
        with Sys_error e ->
          Log.warn "flight.error" ~req:id [ ("error", Log.S e) ]
      end);
  set_queue_gauges t

let create ?pool ?on_finish ?store_path ?stamp
    ?(telemetry = default_telemetry) () =
  let stamp =
    match stamp with Some s -> s | None -> Store.default_stamp ()
  in
  if telemetry.flight then
    Obs.Ring.arm ~capacity:telemetry.flight_capacity ();
  let cache, loaded =
    match store_path with
    | None -> (Hierarchy.create_cache (), 0)
    | Some path -> (
        match Store.load ~path ~stamp with
        | Ok (Some snap) ->
            let n = Hierarchy.snapshot_length snap in
            Log.info "store.load" [ ("path", Log.S path); ("entries", Log.I n) ];
            (Hierarchy.restore snap, n)
        | Ok None ->
            Log.info "store.load"
              [ ("path", Log.S path); ("entries", Log.I 0) ];
            (Hierarchy.create_cache (), 0)
        | Error e ->
            Printf.eprintf "hca serve: ignoring memo store: %s\n%!" e;
            Log.warn "store.error" [ ("error", Log.S e) ];
            (Hierarchy.create_cache (), 0))
  in
  (* The observer needs the daemon (gauges read the queue); tie the
     knot through a cell — no event can fire before [create] returns. *)
  let tref = ref None in
  let on_event ev = Option.iter (fun t -> on_job_event t ev) !tref in
  let t =
    {
      q = Jobq.create ?pool ?on_finish ~on_event ();
      cache;
      store_path;
      stamp;
      loaded;
      started_s = Hca_util.Clock.now ();
      tel = telemetry;
      stopping = false;
    }
  in
  tref := Some t;
  t

let jobq t = t.q

let cache_entries t = Hierarchy.cache_length t.cache

let loaded_entries t = t.loaded

let flush_store t =
  match t.store_path with
  | None -> Ok None
  | Some path -> (
      match Store.save ~path ~stamp:t.stamp (Hierarchy.snapshot t.cache) with
      | Ok n ->
          Log.info "store.flush" [ ("path", Log.S path); ("entries", Log.I n) ];
          Ok (Some n)
      | Error e ->
          Log.warn "store.error" [ ("error", Log.S e) ];
          Error e)

(* Wrap a job's work in a per-request capture when this request is
   traced — explicitly ([trace:true]) or by the 1-in-N sampler.  The
   capture brackets only the solver (one worker domain, [jobs:1]), so
   the stream is the complete request trace; the file is written even
   when the work crashes.  Nothing here touches the report. *)
let instrument t ~trace ~label work ~id ~deadline_s =
  let tel = t.tel in
  let traced =
    trace || (tel.trace_sample > 0 && id mod tel.trace_sample = 0)
  in
  if not traced then work ~deadline_s
  else begin
    Obs.Capture.start ();
    Fun.protect
      ~finally:(fun () ->
        let evs = Obs.Capture.stop () in
        let file = trace_file t id in
        try
          ensure_dir tel.trace_dir;
          Obs.Capture.write
            ~meta:[ ("request", string_of_int id); ("kernel", label) ]
            file evs;
          Registry.inc "hca_trace_files_total";
          Log.info "trace.write" ~req:id [ ("file", Log.S file) ]
        with Sys_error e ->
          Log.warn "trace.error" ~req:id [ ("error", Log.S e) ])
      (fun () -> work ~deadline_s)
  end

let inject t ~label ?priority ?deadline_s ?(trace = false) work =
  Jobq.submit t.q ~label ?priority ?deadline_s
    (instrument t ~trace ~label work)

(* ------------------------------------------------------------------ *)
(* Kernel-source resolution                                            *)

(* Cache keys embed the kernel {e name}, so any kernel that is not a
   registry entry must be named by its content: two different inline
   graphs both called "k" must never alias in the shared store. *)
let content_name prefix ddg =
  let h = Hca_util.Sig_hash.create () in
  Hca_util.Sig_hash.add_string h (Ddg_io.to_string ddg);
  Ddg.with_name ddg
    (Printf.sprintf "%s#%08x" prefix (Hca_util.Sig_hash.value h land 0xffffffff))

let gen_kernel ~seed ~max_size =
  let knobs =
    match max_size with
    | None -> Hca_gen.Gen.default_ddg_knobs
    | Some m ->
        let m = max 2 m in
        let d = Hca_gen.Gen.default_ddg_knobs in
        { d with Hca_gen.Gen.max_size = m; min_size = min d.Hca_gen.Gen.min_size m }
  in
  content_name
    (Printf.sprintf "gen-%d-" seed)
    (Hca_gen.Gen.ddg ~knobs ~seed ())

let resolve_source = function
  | Protocol.Named name -> (
      match Hca_kernels.Registry.find name with
      | Some build -> Ok (build ())
      | None ->
          Error
            (Printf.sprintf "unknown kernel %S (known: %s)" name
               (String.concat ", " Hca_kernels.Registry.sorted)))
  | Protocol.Inline text -> (
      match Ddg_io.of_string text with
      | Ok ddg -> Ok (content_name "inline-" ddg)
      | Error e -> Error ("bad inline ddg: " ^ e))
  | Protocol.Gen { seed; max_size } -> Ok (gen_kernel ~seed ~max_size)

let config_of (s : Protocol.submit) =
  let c = Config.default in
  let c =
    match s.beam with None -> c | Some b -> { c with Config.beam_width = b }
  in
  let c =
    match s.candidates with
    | None -> c
    | Some w -> { c with Config.candidate_width = w }
  in
  let c =
    match s.spread with
    | None -> c
    | Some b -> { c with Config.mapper_spread = b }
  in
  match s.fanin_cap with
  | None -> c
  | Some f -> { c with Config.leaf_feed_fanin_cap = f }

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)

let num i = Json.Num (float_of_int i)

let state_name = function
  | Jobq.Queued -> "queued"
  | Jobq.Running -> "running"
  | Jobq.Cancelled -> "cancelled"
  | Jobq.Finished Jobq.Expired -> "deadline_exceeded"
  | Jobq.Finished (Jobq.Crashed _) -> "failed"
  | Jobq.Finished (Jobq.Solved r) ->
      if r.Report.timed_out then "deadline_exceeded"
      else if r.Report.legal && r.Report.error = None then "done"
      else "failed"

let report_fields (r : Report.t) =
  [
    ("kernel", Json.Str r.kernel);
    ("machine", Json.Str r.machine);
    ("n_instr", num r.n_instr);
    ("legal", Json.Bool r.legal);
    ( "final_mii",
      match r.final_mii with None -> Json.Null | Some m -> num m );
    ("ii_used", num r.ii_used);
    ("copies", num r.copies);
    ("forwards", num r.forwards);
    ("max_wire_load", num r.max_wire_load);
    ("cache_hits", num r.cache_hits);
    ("cache_misses", num r.cache_misses);
    ("timed_out", Json.Bool r.timed_out);
    ("runtime_s", Json.Num r.runtime_s);
    ("invariant", Json.Str (Report.invariant_string r));
  ]
  @ match r.error with None -> [] | Some e -> [ ("error", Json.Str e) ]

let result_line t id =
  let base st = (("id", num id), ("state", Json.Str (state_name st))) in
  match Jobq.state t.q id with
  | None -> Protocol.error_response (Printf.sprintf "unknown job %d" id)
  | Some (Jobq.Queued | Jobq.Running) ->
      Protocol.error_response
        (Printf.sprintf
           "job %d is not finished; use {\"verb\":\"result\",\"id\":%d,\
            \"wait\":true} to block"
           id id)
  | Some (Jobq.Cancelled as st) ->
      let idf, stf = base st in
      Protocol.ok_response [ idf; stf ]
  | Some (Jobq.Finished o as st) -> (
      let idf, stf = base st in
      match o with
      | Jobq.Expired ->
          let label =
            Option.value ~default:"?" (Jobq.label t.q id)
          in
          Protocol.ok_response
            [
              idf;
              stf;
              ("kernel", Json.Str label);
              ("error", Json.Str "deadline expired before the job started");
            ]
      | Jobq.Crashed e ->
          Protocol.ok_response [ idf; stf; ("error", Json.Str e) ]
      | Jobq.Solved r -> Protocol.ok_response (idf :: stf :: report_fields r))

let stats_line t =
  let tot = Jobq.totals t.q in
  let lat =
    List.assoc_opt "hca_request_latency_ms" (Registry.snapshot ()).Registry.hists
  in
  let quant q =
    match lat with
    | None -> Json.Num 0.
    | Some hv -> Json.Num (Registry.quantile hv q)
  in
  Protocol.ok_response
    [
      ("uptime_s", Json.Num (Hca_util.Clock.now () -. t.started_s));
      ("submitted", num tot.Jobq.submitted);
      ("finished", num tot.Jobq.finished);
      ("cancelled", num tot.Jobq.cancelled);
      ("expired", num tot.Jobq.expired);
      ("crashed", num tot.Jobq.crashed);
      ("queued", num (Jobq.queued t.q));
      ("running", num (Jobq.running t.q));
      ("cache_hits", num tot.Jobq.cache_hits);
      ("cache_misses", num tot.Jobq.cache_misses);
      ("cache_entries", num (cache_entries t));
      ("loaded_entries", num t.loaded);
      ("stamp", Json.Str t.stamp);
      ("latency_p50_ms", quant 0.5);
      ("latency_p95_ms", quant 0.95);
      ("latency_p99_ms", quant 0.99);
      ("trace_files", num (Registry.counter "hca_trace_files_total"));
      ("flight_dumps", num (Registry.counter "hca_flight_dumps_total"));
    ]

let metrics_line fmt =
  match fmt with
  | Protocol.Prometheus ->
      Protocol.ok_response
        [
          ("format", Json.Str "prometheus");
          ("prometheus", Json.Str (Registry.to_prometheus ()));
        ]
  | Protocol.Json_metrics -> (
      match Json.parse (Registry.to_json_string ()) with
      | Ok j -> Protocol.ok_response [ ("metrics", j) ]
      | Error e ->
          Protocol.error_response ("metrics serialisation: " ^ e))

(* ------------------------------------------------------------------ *)
(* The handler                                                         *)

let handle_submit t (s : Protocol.submit) =
  if t.stopping then
    Line (Protocol.error_response "daemon is shutting down")
  else
    match resolve_source s.source with
    | Error e ->
        Log.warn "submit.reject" [ ("error", Log.S e) ];
        Line (Protocol.error_response e)
    | Ok ddg -> (
        match
          match (s.machine, s.machine_desc) with
          | None, None -> Ok Dspfabric.reference
          | Some (n, m, k), _ -> (
              try Ok (Dspfabric.make ~n ~m ~k ())
              with Invalid_argument e -> Error e)
          | None, Some text -> Hca_machine.Machine_io.of_string text
        with
        | Error e ->
            Log.warn "submit.reject" [ ("error", Log.S ("bad machine: " ^ e)) ];
            Line (Protocol.error_response ("bad machine: " ^ e))
        | Ok fabric ->
            let config = config_of s in
            let memo = s.memo in
            let cache = if memo then Some t.cache else None in
            let label = Ddg.name ddg in
            let work ~deadline_s =
              Report.run ~config ~jobs:1 ~memo ?cache ?deadline_s fabric ddg
            in
            let id =
              Jobq.submit t.q ~label ~priority:s.priority
                ?deadline_s:s.deadline_s
                (instrument t ~trace:s.trace ~label work)
            in
            Line
              (Protocol.ok_response
                 [ ("id", num id); ("kernel", Json.Str label) ]))

let terminal = function
  | Some (Jobq.Finished _ | Jobq.Cancelled) -> true
  | Some (Jobq.Queued | Jobq.Running) | None -> false

let verb_name = function
  | Protocol.Submit _ -> "submit"
  | Protocol.Status _ -> "status"
  | Protocol.Result _ -> "result"
  | Protocol.Cancel _ -> "cancel"
  | Protocol.Stats -> "stats"
  | Protocol.Metrics _ -> "metrics"
  | Protocol.Ping -> "ping"
  | Protocol.Shutdown -> "shutdown"

let handle_line t line =
  match Protocol.request_of_line line with
  | Error e ->
      Registry.inc "hca_protocol_errors_total";
      Line (Protocol.error_response e)
  | Ok req -> (
      Registry.inc (Printf.sprintf "hca_requests_total{verb=%S}" (verb_name req));
      match req with
      | Protocol.Submit s -> handle_submit t s
      | Protocol.Status id -> (
          match Jobq.state t.q id with
          | None ->
              Line (Protocol.error_response (Printf.sprintf "unknown job %d" id))
          | Some st ->
              let label = Option.value ~default:"?" (Jobq.label t.q id) in
              Line
                (Protocol.ok_response
                   [
                     ("id", num id);
                     ("state", Json.Str (state_name st));
                     ("kernel", Json.Str label);
                   ]))
      | Protocol.Result { id; wait } ->
          let st = Jobq.state t.q id in
          if terminal st then Line (result_line t id)
          else if st = None then
            Line (Protocol.error_response (Printf.sprintf "unknown job %d" id))
          else if wait then Wait_for id
          else Line (result_line t id) (* the "not finished" error *)
      | Protocol.Cancel id -> (
          match Jobq.cancel t.q id with
          | Ok () ->
              Line
                (Protocol.ok_response
                   [ ("id", num id); ("state", Json.Str "cancelled") ])
          | Error e -> Line (Protocol.error_response e))
      | Protocol.Stats -> Line (stats_line t)
      | Protocol.Metrics fmt -> Line (metrics_line fmt)
      | Protocol.Ping ->
          Line (Protocol.ok_response [ ("pong", Json.Bool true) ])
      | Protocol.Shutdown ->
          t.stopping <- true;
          Log.info "daemon.shutdown" [ ("via", Log.S "verb") ];
          Shutdown_after (Protocol.ok_response [ ("stopping", Json.Bool true) ]))

(* ------------------------------------------------------------------ *)
(* stdio transport                                                     *)

let finalise t pool =
  Jobq.drain t.q;
  (match flush_store t with
  | Ok (Some n) -> Printf.eprintf "hca serve: memo store flushed (%d entries)\n%!" n
  | Ok None -> ()
  | Error e -> Printf.eprintf "hca serve: %s\n%!" e);
  Option.iter Hca_util.Domain_pool.shutdown pool

let run_stdio ?(jobs = 1) ?store_path ?stamp ?telemetry () =
  let pool =
    if jobs > 1 then
      Some (Hca_util.Domain_pool.create ~dedicated:true ~jobs ())
    else None
  in
  let t = create ?pool ?store_path ?stamp ?telemetry () in
  let say s =
    print_string s;
    print_newline ();
    flush stdout
  in
  let rec loop () =
    match input_line stdin with
    | exception End_of_file -> ()
    | line -> (
        match handle_line t line with
        | Line s ->
            say s;
            loop ()
        | Wait_for id ->
            ignore (Jobq.wait t.q id);
            say (result_line t id);
            loop ()
        | Shutdown_after s ->
            say s)
  in
  loop ();
  finalise t pool

(* ------------------------------------------------------------------ *)
(* Unix-socket transport: one serving domain multiplexing connections
   with [select], worker domains solving in the background, and a
   self-pipe so a finishing job wakes the loop to answer any blocked
   [result wait:true]. *)

type conn = {
  fd : Unix.file_descr;
  inbuf : Buffer.t;
  mutable outbuf : string;  (* bytes accepted but not yet written *)
  mutable waiting : int list;  (* job ids owed a deferred result line *)
}

let append_line conn s = conn.outbuf <- conn.outbuf ^ s ^ "\n"

(* Split off every complete line; the tail stays buffered. *)
let take_lines conn =
  let s = Buffer.contents conn.inbuf in
  Buffer.clear conn.inbuf;
  let n = String.length s in
  let lines = ref [] in
  let start = ref 0 in
  for i = 0 to n - 1 do
    if s.[i] = '\n' then begin
      let raw = String.sub s !start (i - !start) in
      let raw =
        if raw <> "" && raw.[String.length raw - 1] = '\r' then
          String.sub raw 0 (String.length raw - 1)
        else raw
      in
      lines := raw :: !lines;
      start := i + 1
    end
  done;
  if !start < n then Buffer.add_substring conn.inbuf s !start (n - !start);
  List.rev !lines

let run_socket ~path ?jobs ?store_path ?stamp ?trace ?telemetry () =
  let jobs =
    match jobs with
    | Some j -> max 1 j
    | None -> Hca_util.Domain_pool.default_jobs ()
  in
  Option.iter
    (fun _ ->
      Hca_obs.Obs.enable ();
      Hca_obs.Obs.reset ())
    trace;
  let pool = Hca_util.Domain_pool.create ~dedicated:true ~jobs () in
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_w;
  let poke_buf = Bytes.make 1 '!' in
  let poke () =
    try ignore (Unix.write wake_w poke_buf 0 1)
    with Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  in
  let t = create ~pool ~on_finish:poke ?store_path ?stamp ?telemetry () in
  let stop = ref false in
  let on_signal _ =
    t.stopping <- true;
    stop := true;
    poke ()
  in
  let prev_int = Sys.signal Sys.sigint (Sys.Signal_handle on_signal) in
  let prev_term = Sys.signal Sys.sigterm (Sys.Signal_handle on_signal) in
  let prev_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let restore_signals () =
    Sys.set_signal Sys.sigint prev_int;
    Sys.set_signal Sys.sigterm prev_term;
    Sys.set_signal Sys.sigpipe prev_pipe
  in
  if Sys.file_exists path then Sys.remove path;
  let listen_fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
  Unix.bind listen_fd (ADDR_UNIX path);
  Unix.listen listen_fd 16;
  Log.info "daemon.listen" [ ("socket", Log.S path); ("jobs", Log.I jobs) ];
  let conns = ref [] in
  let drop conn =
    conns := List.filter (fun c -> c.fd != conn.fd) !conns;
    (try Unix.close conn.fd with Unix.Unix_error _ -> ());
    Log.debug "conn.close" [ ("open", Log.I (List.length !conns)) ]
  in
  (* Answer every waiting id whose job went terminal since last time. *)
  let settle conn =
    let still, ready =
      List.partition (fun id -> not (terminal (Jobq.state t.q id))) conn.waiting
    in
    conn.waiting <- still;
    List.iter (fun id -> append_line conn (result_line t id)) ready
  in
  let handle conn line =
    match handle_line t line with
    | Line s -> append_line conn s
    | Wait_for id -> conn.waiting <- conn.waiting @ [ id ]
    | Shutdown_after s ->
        append_line conn s;
        stop := true
  in
  let read_buf = Bytes.create 65536 in
  let service_read conn =
    match Unix.read conn.fd read_buf 0 (Bytes.length read_buf) with
    | 0 -> drop conn
    | n ->
        Buffer.add_subbytes conn.inbuf read_buf 0 n;
        List.iter (handle conn) (take_lines conn)
    | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) -> drop conn
    | exception Unix.Unix_error (EINTR, _, _) -> ()
  in
  let service_write conn =
    match Unix.write_substring conn.fd conn.outbuf 0 (String.length conn.outbuf) with
    | n -> conn.outbuf <- String.sub conn.outbuf n (String.length conn.outbuf - n)
    | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) -> drop conn
    | exception Unix.Unix_error (EINTR, _, _) -> ()
  in
  while not !stop do
    List.iter settle !conns;
    let readers = wake_r :: listen_fd :: List.map (fun c -> c.fd) !conns in
    let writers =
      List.filter_map
        (fun c -> if c.outbuf <> "" then Some c.fd else None)
        !conns
    in
    match Unix.select readers writers [] (-1.0) with
    | exception Unix.Unix_error (EINTR, _, _) -> ()
    | ready_r, ready_w, _ ->
        if List.mem wake_r ready_r then begin
          match Unix.read wake_r read_buf 0 64 with
          | _ -> ()
          | exception Unix.Unix_error _ -> ()
        end;
        let live c = List.memq c !conns in
        List.iter
          (fun c -> if live c && List.mem c.fd ready_w then service_write c)
          !conns;
        List.iter
          (fun c -> if live c && List.mem c.fd ready_r then service_read c)
          !conns;
        if List.mem listen_fd ready_r then begin
          match Unix.accept listen_fd with
          | fd, _ ->
              conns :=
                { fd; inbuf = Buffer.create 256; outbuf = ""; waiting = [] }
                :: !conns;
              Log.debug "conn.accept" [ ("open", Log.I (List.length !conns)) ]
          | exception Unix.Unix_error _ -> ()
        end
  done;
  if t.stopping then Log.info "daemon.stopping" [];
  (* Drain in-flight work, then pay every debt: deferred results first,
     then any bytes still queued, then the store. *)
  Jobq.drain t.q;
  List.iter
    (fun conn ->
      settle conn;
      if conn.outbuf <> "" then begin
        try
          let rec flush_all () =
            if conn.outbuf <> "" then begin
              service_write conn;
              if List.memq conn !conns then flush_all ()
            end
          in
          flush_all ()
        with Unix.Unix_error _ -> ()
      end)
    !conns;
  List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) !conns;
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  if Sys.file_exists path then Sys.remove path;
  (match flush_store t with
  | Ok (Some n) ->
      Printf.eprintf "hca serve: memo store flushed (%d entries)\n%!" n
  | Ok None -> ()
  | Error e -> Printf.eprintf "hca serve: %s\n%!" e);
  Hca_util.Domain_pool.shutdown pool;
  Unix.close wake_r;
  Unix.close wake_w;
  restore_signals ();
  Log.info "daemon.exit" [];
  Option.iter
    (fun path ->
      Hca_obs.Obs.Trace.write ~meta:[ ("source", "hca serve") ] path;
      Printf.eprintf "hca serve: trace written to %s\n%!" path)
    trace
