(** The persistent cross-request memo store: the subproblem cache of
    {!Hca_core.Hierarchy} serialised to disk, so warm caches survive
    daemon restarts.

    Format: a text header — magic line, then the invalidation stamp on
    its own line — followed by the [Marshal]led
    {!Hca_core.Hierarchy.snapshot}.  The stamp (see
    {!Hca_util.Stamp.store_stamp}) ties the file to the exact code tree
    and store format that wrote it: memo entries embed solver-internal
    structures whose meaning drifts with any code change, so a stale
    stamp means the whole file is discarded ([Ok None]), never read.

    Writes are atomic (temp file + [rename]), so a crash mid-flush
    leaves the previous store intact. *)

val format_version : string
(** Fold into the stamp via [Stamp.store_stamp ~extra] so a layout
    change invalidates old files even on the same git tree. *)

val default_stamp : unit -> string
(** [Stamp.store_stamp ~extra:format_version ()]. *)

val save :
  path:string ->
  stamp:string ->
  Hca_core.Hierarchy.snapshot ->
  (int, string) result
(** Atomically replace [path] with the snapshot; returns the number of
    entries written. *)

val load :
  path:string ->
  stamp:string ->
  (Hca_core.Hierarchy.snapshot option, string) result
(** [Ok None] when the file does not exist or carries a different
    stamp (stale — silently start cold); [Error] on a file that exists
    but cannot be a store (bad magic, truncated payload). *)
