(** Minimal JSON for the wire protocol of the compile service.

    The repo deliberately carries no JSON dependency (see
    [bin/bench_guard.ml]); the daemon needs full nested values on both
    directions of the protocol, so this is a complete little parser and
    printer rather than another flat-line scanner.  Numbers are
    [float]s; integral values print without a fraction, so ids survive
    a round trip textually unchanged. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** One JSON value, surrounding whitespace allowed; anything trailing
    is an error (a protocol line holds exactly one value).  Error
    messages carry the byte offset. *)

val to_string : t -> string
(** Compact single-line rendering (the protocol is line-delimited, so
    no embedded newlines — they are escaped inside strings). *)

(** {1 Typed accessors} — all total, [None] on shape mismatch. *)

val member : string -> t -> t option
(** Field of an [Obj]; [None] on anything else or a missing key. *)

val str : t -> string option

val num : t -> float option

val int : t -> int option
(** [Num] with integral value. *)

val bool : t -> bool option
