(** The compilation-as-a-service daemon: accepts {!Protocol} requests,
    schedules them on a {!Jobq}, and shares one persistent
    {!Hca_core.Hierarchy} subproblem cache across every request — the
    PR-3 memo promoted to a cross-request, cross-restart store.

    Two transports speak the same line protocol through the same
    handler: a Unix-domain socket ({!run_socket}, a single-threaded
    [select] loop with worker domains solving in the background and a
    self-pipe waking the loop when a blocked [result wait] can be
    answered) and stdio ({!run_stdio}, one client, blocking waits) —
    the latter also being the harness the protocol tests drive
    in-process via {!create}/{!handle_line} with no pool at all.

    {2 Telemetry}

    The daemon is fully instrumented through {!Hca_obs.Obs}:

    - every lifecycle transition (accept, submit, start, finish,
      cancel, expiry, crash, store load/flush, listen/shutdown) emits
      one structured {!Hca_obs.Obs.Log} line when a log sink is
      configured ([hca serve --log]);
    - the process-wide {!Hca_obs.Obs.Registry} tracks request counts
      per verb, job outcomes, queue depth, in-flight gauge, memo
      hit/miss totals and latency histograms, exposed through the
      [metrics] verb and summarised in [stats];
    - a request submitted with [trace:true] — or sampled 1-in-N by
      [trace_sample] — runs inside a per-request capture and leaves a
      Chrome trace file [req-<id>.json] under [trace_dir];
    - when [flight] is on, a fixed-size ring keeps the most recent
      span events at all times, and a crashed, deadline-exceeded or
      slower-than-[slow_ms] job dumps it as [flight-<id>.json].

    None of this ever changes a result: a report computed with every
    telemetry feature armed is bit-identical (same
    {!Hca_core.Report.invariant_string}) to one computed with all of
    it off.

    Graceful shutdown (SIGINT/SIGTERM, the [shutdown] verb, or EOF on
    stdio) stops accepting work, drains queued and in-flight jobs,
    flushes the memo store and any pending {!Hca_obs} trace buffers,
    then exits. *)

type telemetry = {
  trace_dir : string;  (** where [req-*.json] / [flight-*.json] land *)
  trace_sample : int;
      (** trace every Nth request id (0 = only explicit [trace:true]) *)
  slow_ms : float option;
      (** flight-dump any job slower than this, even when it succeeds *)
  flight : bool;  (** arm the always-on flight-recorder ring *)
  flight_capacity : int;  (** ring slots per domain (see {!Hca_obs.Obs.Ring}) *)
}

val default_telemetry : telemetry
(** [trace_dir] = ["<tmp>/hca-traces"], [trace_sample = 0],
    [slow_ms = None], [flight = false], [flight_capacity = 4096]. *)

type t

type reply =
  | Line of string  (** answer immediately *)
  | Wait_for of int
      (** answer with {!result_line} once this job is terminal *)
  | Shutdown_after of string  (** answer, then drain and exit *)

val create :
  ?pool:Hca_util.Domain_pool.t ->
  ?on_finish:(unit -> unit) ->
  ?store_path:string ->
  ?stamp:string ->
  ?telemetry:telemetry ->
  unit ->
  t
(** Loads the memo store when [store_path] exists with a matching
    [stamp] (default {!Store.default_stamp}); a stale or missing store
    starts cold, a corrupt one warns on stderr and starts cold.  No
    [pool] means jobs run only when the caller pumps ({!Jobq.wait} /
    {!Jobq.pump} via {!jobq}) — the deterministic test mode.  When
    [telemetry.flight] is set, the flight ring is armed here. *)

val jobq : t -> Jobq.t

val handle_line : t -> string -> reply
(** One protocol request in, one reply out.  Never raises on client
    input: malformed JSON and unknown verbs come back as
    [{"ok":false,...}] lines. *)

val result_line : t -> int -> string
(** The [result] response for a job in a terminal state (also what a
    [Wait_for] turns into once {!Jobq.wait} returns). *)

val cache_entries : t -> int

val loaded_entries : t -> int
(** Entries inherited from the store file at startup (0 when cold). *)

val flush_store : t -> (int option, string) result
(** Snapshot the cache to the store path ([Ok None] when no store was
    configured); atomic on disk. *)

val trace_file : t -> int -> string
(** Where request [id]'s per-request trace lands when traced
    ([<trace_dir>/req-<id>.json]); exported for tests and [tracecheck]
    walkthroughs. *)

val inject :
  t ->
  label:string ->
  ?priority:int ->
  ?deadline_s:float ->
  ?trace:bool ->
  (deadline_s:float option -> Hca_core.Report.t) ->
  int
(** Submit arbitrary work through the daemon's own instrumentation
    path — per-request capture, lifecycle events, flight dumps — as if
    it had arrived over the wire.  Test hook: lets a test enqueue a
    closure that raises (to exercise the crash → flight-dump path) or
    sleeps (to trip [slow_ms]) without needing a pathological kernel. *)

val gen_kernel : seed:int -> max_size:int option -> Hca_ddg.Ddg.t
(** The kernel a [gen_seed] submission maps (the fuzzer's generator
    under the daemon's knob policy), exported so the load-test client
    can rebuild the exact graph for local verification. *)

val run_stdio :
  ?jobs:int ->
  ?store_path:string ->
  ?stamp:string ->
  ?telemetry:telemetry ->
  unit ->
  unit
(** Serve stdin/stdout until EOF or a [shutdown] verb, then drain and
    flush.  [jobs >= 1] worker domains ([1] = solve on the serving
    domain between requests). *)

val run_socket :
  path:string ->
  ?jobs:int ->
  ?store_path:string ->
  ?stamp:string ->
  ?trace:string ->
  ?telemetry:telemetry ->
  unit ->
  unit
(** Bind [path] (an existing socket file is replaced), serve concurrent
    connections until SIGINT/SIGTERM or a [shutdown] verb, drain,
    flush the store — and when [trace] is given, write the Chrome
    trace of the whole serving session there on the way out. *)
