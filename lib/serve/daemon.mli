(** The compilation-as-a-service daemon: accepts {!Protocol} requests,
    schedules them on a {!Jobq}, and shares one persistent
    {!Hca_core.Hierarchy} subproblem cache across every request — the
    PR-3 memo promoted to a cross-request, cross-restart store.

    Two transports speak the same line protocol through the same
    handler: a Unix-domain socket ({!run_socket}, a single-threaded
    [select] loop with worker domains solving in the background and a
    self-pipe waking the loop when a blocked [result wait] can be
    answered) and stdio ({!run_stdio}, one client, blocking waits) —
    the latter also being the harness the protocol tests drive
    in-process via {!create}/{!handle_line} with no pool at all.

    Graceful shutdown (SIGINT/SIGTERM, the [shutdown] verb, or EOF on
    stdio) stops accepting work, drains queued and in-flight jobs,
    flushes the memo store and any pending {!Hca_obs} trace buffers,
    then exits. *)

type t

type reply =
  | Line of string  (** answer immediately *)
  | Wait_for of int
      (** answer with {!result_line} once this job is terminal *)
  | Shutdown_after of string  (** answer, then drain and exit *)

val create :
  ?pool:Hca_util.Domain_pool.t ->
  ?on_finish:(unit -> unit) ->
  ?store_path:string ->
  ?stamp:string ->
  unit ->
  t
(** Loads the memo store when [store_path] exists with a matching
    [stamp] (default {!Store.default_stamp}); a stale or missing store
    starts cold, a corrupt one warns on stderr and starts cold.  No
    [pool] means jobs run only when the caller pumps ({!Jobq.wait} /
    {!Jobq.pump} via {!jobq}) — the deterministic test mode. *)

val jobq : t -> Jobq.t

val handle_line : t -> string -> reply
(** One protocol request in, one reply out.  Never raises on client
    input: malformed JSON and unknown verbs come back as
    [{"ok":false,...}] lines. *)

val result_line : t -> int -> string
(** The [result] response for a job in a terminal state (also what a
    [Wait_for] turns into once {!Jobq.wait} returns). *)

val cache_entries : t -> int

val loaded_entries : t -> int
(** Entries inherited from the store file at startup (0 when cold). *)

val flush_store : t -> (int option, string) result
(** Snapshot the cache to the store path ([Ok None] when no store was
    configured); atomic on disk. *)

val gen_kernel : seed:int -> max_size:int option -> Hca_ddg.Ddg.t
(** The kernel a [gen_seed] submission maps (the fuzzer's generator
    under the daemon's knob policy), exported so the load-test client
    can rebuild the exact graph for local verification. *)

val run_stdio :
  ?jobs:int -> ?store_path:string -> ?stamp:string -> unit -> unit
(** Serve stdin/stdout until EOF or a [shutdown] verb, then drain and
    flush.  [jobs >= 1] worker domains ([1] = solve on the serving
    domain between requests). *)

val run_socket :
  path:string ->
  ?jobs:int ->
  ?store_path:string ->
  ?stamp:string ->
  ?trace:string ->
  unit ->
  unit
(** Bind [path] (an existing socket file is replaced), serve concurrent
    connections until SIGINT/SIGTERM or a [shutdown] verb, drain,
    flush the store — and when [trace] is given, write the Chrome
    trace of the whole serving session there on the way out. *)
