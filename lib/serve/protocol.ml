type source =
  | Named of string
  | Inline of string
  | Gen of { seed : int; max_size : int option }

type submit = {
  source : source;
  machine : (int * int * int) option;
  machine_desc : string option;
  beam : int option;
  candidates : int option;
  spread : bool option;
  fanin_cap : int option;
  priority : int;
  deadline_s : float option;
  memo : bool;
  trace : bool;
}

type metrics_format = Json_metrics | Prometheus

type request =
  | Submit of submit
  | Status of int
  | Result of { id : int; wait : bool }
  | Cancel of int
  | Stats
  | Metrics of metrics_format
  | Ping
  | Shutdown

let ( let* ) = Result.bind

let field_int j k = Option.bind (Json.member k j) Json.int

let field_bool j k = Option.bind (Json.member k j) Json.bool

let required_id j =
  match field_int j "id" with
  | Some id when id >= 0 -> Ok id
  | Some _ -> Error "\"id\" must be non-negative"
  | None -> Error "missing integer field \"id\""

let source_of j =
  let named = Option.bind (Json.member "kernel" j) Json.str in
  let inline = Option.bind (Json.member "ddg" j) Json.str in
  let seed = field_int j "gen_seed" in
  match (named, inline, seed) with
  | Some k, None, None -> Ok (Named k)
  | None, Some d, None -> Ok (Inline d)
  | None, None, Some seed ->
      Ok (Gen { seed; max_size = field_int j "gen_max_size" })
  | None, None, None ->
      Error "submit needs a kernel source: \"kernel\", \"ddg\" or \"gen_seed\""
  | _ ->
      Error
        "submit takes exactly one kernel source (\"kernel\", \"ddg\" or \
         \"gen_seed\")"

let machine_of j =
  match Json.member "machine" j with
  | None -> Ok None
  | Some m -> (
      match (field_int m "n", field_int m "m", field_int m "k") with
      | Some n, Some mm, Some k when n > 0 && mm > 0 && k > 0 ->
          Ok (Some (n, mm, k))
      | _ -> Error "\"machine\" must be {\"n\":int,\"m\":int,\"k\":int} > 0")

let machine_desc_of j =
  match Json.member "machine_desc" j with
  | None -> Ok None
  | Some v -> (
      match Json.str v with
      | Some text -> Ok (Some text)
      | None -> Error "\"machine_desc\" must be a string (.machine text)")

let submit_of j =
  let* source = source_of j in
  let* machine = machine_of j in
  let* machine_desc = machine_desc_of j in
  let* () =
    match (machine, machine_desc) with
    | Some _, Some _ ->
        Error "submit takes at most one of \"machine\" and \"machine_desc\""
    | _ -> Ok ()
  in
  let config = Option.value ~default:(Json.Obj []) (Json.member "config" j) in
  let* deadline_s =
    match Json.member "deadline_s" j with
    | None -> Ok None
    | Some v -> (
        match Json.num v with
        | Some d when d >= 0. -> Ok (Some d)
        | _ -> Error "\"deadline_s\" must be a non-negative number")
  in
  Ok
    (Submit
       {
         source;
         machine;
         machine_desc;
         beam = field_int config "beam";
         candidates = field_int config "candidates";
         spread = field_bool config "spread";
         fanin_cap = field_int config "fanin_cap";
         priority = Option.value ~default:0 (field_int j "priority");
         deadline_s;
         memo = Option.value ~default:true (field_bool j "memo");
         trace = Option.value ~default:false (field_bool j "trace");
       })

let request_of_line line =
  let* j =
    Result.map_error (fun e -> "parse error: " ^ e) (Json.parse line)
  in
  let* () = match j with Json.Obj _ -> Ok () | _ -> Error "request must be a JSON object" in
  match Option.bind (Json.member "verb" j) Json.str with
  | None -> Error "missing string field \"verb\""
  | Some "submit" -> submit_of j
  | Some "status" ->
      let* id = required_id j in
      Ok (Status id)
  | Some "result" ->
      let* id = required_id j in
      Ok (Result { id; wait = Option.value ~default:false (field_bool j "wait") })
  | Some "cancel" ->
      let* id = required_id j in
      Ok (Cancel id)
  | Some "stats" -> Ok Stats
  | Some "metrics" -> (
      match Option.bind (Json.member "format" j) Json.str with
      | None | Some "json" -> Ok (Metrics Json_metrics)
      | Some "prometheus" -> Ok (Metrics Prometheus)
      | Some f ->
          Error
            (Printf.sprintf
               "unknown metrics format %S (want \"json\" or \"prometheus\")" f))
  | Some "ping" -> Ok Ping
  | Some "shutdown" -> Ok Shutdown
  | Some v -> Error (Printf.sprintf "unknown verb %S" v)

let error_response msg =
  Json.to_string (Json.Obj [ ("ok", Json.Bool false); ("error", Json.Str msg) ])

let ok_response fields =
  Json.to_string (Json.Obj (("ok", Json.Bool true) :: fields))
