(** The daemon's async job queue: submitted mapping requests wait in a
    priority queue and run on {!Hca_util.Domain_pool} workers.

    Scheduling: ready jobs run highest {e priority} first, FIFO within
    a priority (lowest id).  Every submission enqueues exactly one
    {!pump} step on the pool, and every step consumes exactly one
    queued entry — the {e best} one at the time it runs, not
    necessarily the one whose submission enqueued it — so the backlog
    drains in priority order no matter the arrival order.

    Deadlines are measured from submission, so queue wait counts
    against the budget.  A job whose deadline lapses while still queued
    finishes as {!Expired} without running; one that starts gets the
    remaining budget as its solver deadline
    ({!Hca_core.Report.run}[ ~deadline_s]) and finishes as [Solved]
    with the report's [timed_out] flag carrying the verdict.

    Without a pool, nothing runs by itself: {!pump} (or {!wait}, which
    pumps on the caller) drives jobs on the calling domain — the
    deterministic mode the protocol tests and the stdio transport's
    single-client sessions use. *)

type outcome =
  | Solved of Hca_core.Report.t
      (** ran to completion — inspect [legal]/[error]/[timed_out] *)
  | Expired  (** deadline passed before the job ever started *)
  | Crashed of string  (** the solver raised; the exception, printed *)

type state = Queued | Running | Finished of outcome | Cancelled

type totals = {
  submitted : int;
  finished : int;  (** {!Finished} jobs, any outcome *)
  cancelled : int;
  expired : int;
  crashed : int;
  cache_hits : int;  (** summed over finished reports *)
  cache_misses : int;
}

(** Lifecycle notifications for observers (telemetry, logging).
    Delivered outside the queue lock, on the domain that caused the
    transition: [Submitted] on the submitter, [Started]/[Done] on the
    running worker (or the pumping caller), [Cancelled_job] on the
    canceller.  A raising observer is swallowed — telemetry must never
    take the queue down. *)
type event =
  | Submitted of { id : int; label : string; priority : int }
  | Started of { id : int; label : string; wait_s : float }
      (** [wait_s]: time spent queued before the work ran *)
  | Done of {
      id : int;
      label : string;
      outcome : outcome;
      latency_s : float;  (** submission → terminal, queue wait included *)
      run_s : float;  (** solver wall-clock alone; 0 for queue expiry *)
    }
  | Cancelled_job of { id : int; label : string; latency_s : float }

type t

val create :
  ?pool:Hca_util.Domain_pool.t ->
  ?on_finish:(unit -> unit) ->
  ?on_event:(event -> unit) ->
  unit ->
  t
(** [pool] must be dedicated ({!Hca_util.Domain_pool.create}
    [~dedicated:true]) — the queue only feeds it via [submit].
    [on_finish] fires after every job reaches a terminal state, from
    the finishing worker's domain and outside the queue lock — the
    socket transport pokes its wake-up pipe here.  [on_event] receives
    every {!event} (also outside the lock); [Done] fires before
    [on_finish], so a blocked waiter never observes a terminal job
    whose telemetry has not landed yet. *)

val submit :
  t ->
  label:string ->
  ?priority:int ->
  ?deadline_s:float ->
  (id:int -> deadline_s:float option -> Hca_core.Report.t) ->
  int
(** Enqueue one job; returns its id (dense from 0).  The work closure
    receives its own job id (so request-scoped telemetry can name
    files before [submit] returns) and the budget {e remaining} at
    start time. *)

val state : t -> int -> state option
(** [None] for an id never issued. *)

val label : t -> int -> string option

val report : t -> int -> Hca_core.Report.t option
(** The report of a [Finished (Solved _)] job. *)

val cancel : t -> int -> (unit, string) result
(** Only [Queued] jobs are cancellable; the error says which state got
    in the way. *)

val pump : t -> bool
(** Run the best queued job (or expire it) on the calling domain;
    [false] when nothing was queued. *)

val wait : t -> int -> state option
(** Block until the job reaches a terminal state.  Pool mode sleeps on
    a condition; without a pool it pumps the queue itself, so it cannot
    deadlock on its own job. *)

val drain : t -> unit
(** Block until no job is queued or running (graceful-shutdown barrier;
    pumps when there is no pool). *)

val queued : t -> int

val running : t -> int

val totals : t -> totals
