let magic = "HCA-MEMO-STORE"

(* v2: cache keys switched from the dspfabric-only [Dspfabric.id] to
   the total [Machine_desc.id] (fan-outs, wiring and heterogeneous
   tables included), so stores written by v1 builds must not be
   reused. *)
let format_version = "v2"

let default_stamp () = Hca_util.Stamp.store_stamp ~extra:format_version ()

let save ~path ~stamp snapshot =
  let tmp = path ^ ".tmp" in
  match
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc (magic ^ "\n");
        output_string oc (stamp ^ "\n");
        Marshal.to_channel oc snapshot []);
    Sys.rename tmp path;
    Hca_core.Hierarchy.snapshot_length snapshot
  with
  | n -> Ok n
  | exception Sys_error e -> Error ("store save: " ^ e)

let load ~path ~stamp =
  if not (Sys.file_exists path) then Ok None
  else
    match
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let header = try input_line ic with End_of_file -> "" in
          if header <> magic then
            Error (Printf.sprintf "not a memo store (bad magic %S)" header)
          else
            let file_stamp = try input_line ic with End_of_file -> "" in
            if file_stamp <> stamp then Ok None (* stale: start cold *)
            else
              match
                (Marshal.from_channel ic : Hca_core.Hierarchy.snapshot)
              with
              | snapshot -> Ok (Some snapshot)
              | exception (Failure _ | End_of_file) ->
                  Error "truncated or corrupt memo store payload")
    with
    | r -> r
    | exception Sys_error e -> Error ("store load: " ^ e)
