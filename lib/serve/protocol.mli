(** The wire protocol of the compile service: newline-delimited JSON,
    one request object in, one response object out, over a Unix-domain
    socket or stdio.

    Requests:
    {v
    {"verb":"submit", <kernel source>, "machine":{"n":8,"m":8,"k":8},
     "config":{"beam":8,"candidates":4,"spread":false,"fanin_cap":4},
     "priority":0, "deadline_s":2.5, "memo":true}
    {"verb":"status", "id":3}
    {"verb":"result", "id":3, "wait":true}
    {"verb":"cancel", "id":3}
    {"verb":"stats"}
    {"verb":"ping"}
    {"verb":"shutdown"}
    v}

    The kernel source is exactly one of ["kernel"] (a registry name),
    ["ddg"] (a full kernel in the {!Hca_ddg.Ddg_io} text format, inline
    as a JSON string), or ["gen_seed"] (+ optional ["gen_max_size"]) —
    the seeded {!Hca_gen.Gen} generator, which is what the load-test
    client replays.  Everything but the verb and the source is
    optional.

    Responses always carry ["ok"]: [{"ok":true, ...}] on success,
    [{"ok":false,"error":"..."}] otherwise.  A finished job's result
    row carries ["state"] ∈ {["done"], ["failed"],
    ["deadline_exceeded"], ["cancelled"]}; ["deadline_exceeded"] still
    reports the partial best-so-far fields when the search found any
    legal configuration before the cut-off. *)

type source =
  | Named of string  (** a kernel of the baked-in registry *)
  | Inline of string  (** [Ddg_io] text, content-digested server-side *)
  | Gen of { seed : int; max_size : int option }

type submit = {
  source : source;
  machine : (int * int * int) option;  (** (N, M, K) MUX capacities *)
  beam : int option;
  candidates : int option;
  spread : bool option;
  fanin_cap : int option;
  priority : int;  (** higher runs sooner; default 0 *)
  deadline_s : float option;
      (** budget from submission (queue wait included) *)
  memo : bool;  (** [false] opts this request out of the shared store *)
}

type request =
  | Submit of submit
  | Status of int
  | Result of { id : int; wait : bool }
  | Cancel of int
  | Stats
  | Ping
  | Shutdown

val request_of_line : string -> (request, string) result
(** Parse one protocol line.  Malformed JSON, a non-object, a missing
    or unknown verb, a missing id, or an ambiguous kernel source are
    all [Error] with a client-presentable message. *)

val error_response : string -> string
(** [{"ok":false,"error":...}] — already newline-free. *)

val ok_response : (string * Json.t) list -> string
(** [{"ok":true, <fields>}]. *)
