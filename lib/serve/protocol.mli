(** The wire protocol of the compile service: newline-delimited JSON,
    one request object in, one response object out, over a Unix-domain
    socket or stdio.

    Requests:
    {v
    {"verb":"submit", <kernel source>, "machine":{"n":8,"m":8,"k":8},
     "config":{"beam":8,"candidates":4,"spread":false,"fanin_cap":4},
     "priority":0, "deadline_s":2.5, "memo":true, "trace":false}
    {"verb":"status", "id":3}
    {"verb":"result", "id":3, "wait":true}
    {"verb":"cancel", "id":3}
    {"verb":"stats"}
    {"verb":"metrics", "format":"json"|"prometheus"}
    {"verb":"ping"}
    {"verb":"shutdown"}
    v}

    The kernel source is exactly one of ["kernel"] (a registry name),
    ["ddg"] (a full kernel in the {!Hca_ddg.Ddg_io} text format, inline
    as a JSON string), or ["gen_seed"] (+ optional ["gen_max_size"]) —
    the seeded {!Hca_gen.Gen} generator, which is what the load-test
    client replays.  Everything but the verb and the source is
    optional.  The machine is exactly one of ["machine"] (the
    [{"n":..,"m":..,"k":..}] MUX capacities of the reference-shaped
    fabric) or ["machine_desc"] (a full machine description in the
    {!Hca_machine.Machine_io} text format, inline as one JSON string —
    the path to arbitrary topologies and heterogeneous resource
    tables); giving both is rejected at parse time, and neither means
    the daemon's reference fabric.  ["trace":true] asks the daemon for
    a per-request Chrome
    trace of this submission (written server-side under its trace
    directory as [req-<id>.json]); tracing never changes any result
    field.

    Responses always carry ["ok"]: [{"ok":true, ...}] on success,
    [{"ok":false,"error":"..."}] otherwise.  A finished job's result
    row carries ["state"] ∈ {["done"], ["failed"],
    ["deadline_exceeded"], ["cancelled"]}; ["deadline_exceeded"] still
    reports the partial best-so-far fields when the search found any
    legal configuration before the cut-off.

    {2 The [stats] reply, field by field}

    {v
    uptime_s        float  seconds since the daemon started
    submitted       int    jobs ever accepted by the queue
    finished        int    jobs that reached Finished (any outcome:
                           solved, deadline-expired or crashed)
    cancelled       int    jobs cancelled while still queued
    expired         int    jobs whose deadline lapsed before they ran
    crashed         int    jobs whose solver raised
    queued          int    jobs waiting right now
    running         int    jobs on a worker domain right now
    cache_hits      int    memo-store hits summed over solved reports
    cache_misses    int    memo-store misses, same accounting
    cache_entries   int    subproblem entries in the store right now
    loaded_entries  int    entries inherited from the store file at
                           startup (0 on a cold start)
    stamp           string the store-compatibility stamp (git + config)
    latency_p50_ms  float  per-request latency quantiles, estimated
    latency_p95_ms  float  from the live hca_request_latency_ms
    latency_p99_ms  float  histogram (0 until a job finished)
    trace_files     int    per-request trace files written so far
    flight_dumps    int    flight-recorder dumps written so far
    v}

    The first thirteen fields are the PR-6 snapshot counters from
    {!Jobq.totals} and the store; the last five are derived from the
    {!Hca_obs.Obs.Registry} and are also available, with full label
    detail, through the [metrics] verb.

    {2 The [metrics] reply}

    [{"verb":"metrics"}] (or ["format":"json"]) answers
    [{"ok":true,"metrics":{"counters":{..},"gauges":{..},
    "histograms":{..}}}] — the registry snapshot in the
    {!Hca_obs.Obs.Registry.to_json_string} shape.
    [{"verb":"metrics","format":"prometheus"}] answers
    [{"ok":true,"format":"prometheus","prometheus":"<text>"}] with the
    Prometheus text exposition as one JSON string, ready to serve to a
    scraper. *)

type source =
  | Named of string  (** a kernel of the baked-in registry *)
  | Inline of string  (** [Ddg_io] text, content-digested server-side *)
  | Gen of { seed : int; max_size : int option }

type submit = {
  source : source;
  machine : (int * int * int) option;  (** (N, M, K) MUX capacities *)
  machine_desc : string option;
      (** inline {!Hca_machine.Machine_io} text; exclusive with
          [machine] *)
  beam : int option;
  candidates : int option;
  spread : bool option;
  fanin_cap : int option;
  priority : int;  (** higher runs sooner; default 0 *)
  deadline_s : float option;
      (** budget from submission (queue wait included) *)
  memo : bool;  (** [false] opts this request out of the shared store *)
  trace : bool;  (** request a per-request trace file; default false *)
}

type metrics_format = Json_metrics | Prometheus

type request =
  | Submit of submit
  | Status of int
  | Result of { id : int; wait : bool }
  | Cancel of int
  | Stats
  | Metrics of metrics_format
  | Ping
  | Shutdown

val request_of_line : string -> (request, string) result
(** Parse one protocol line.  Malformed JSON, a non-object, a missing
    or unknown verb, a missing id, an unknown metrics format, or an
    ambiguous kernel source are all [Error] with a client-presentable
    message. *)

val error_response : string -> string
(** [{"ok":false,"error":...}] — already newline-free. *)

val ok_response : (string * Json.t) list -> string
(** [{"ok":true, <fields>}]. *)
