(** Load-test client for the compile daemon: replays seeded {!Hca_gen}
    traffic over the Unix-socket transport and reports throughput and
    latency tails.

    Each of [jobs] client workers owns one connection, floods its share
    of the [count] submissions first, then collects every result with
    [result wait:true] — so the daemon's queue actually backs up and
    the measured latency includes queue wait, exactly what the deadline
    budget charges.  Latencies go through a {!Hca_obs.Obs} histogram,
    whose summary supplies the p50/p95/p99 figures.

    With [verify], every served report is checked bit-identical
    ({!Hca_core.Report.invariant_string}) against a local one-shot
    {!Hca_core.Report.run} of the same seeded kernel — the proof that
    the shared warm store changes the clock, never the answer.

    [json_out] writes bench-style NDJSON: one ["serve_loadtest"] row
    per seed (quality fields, so [bench_guard] can compare a cold and a
    warm lifetime) plus one ["_aggregate"] row with the
    throughput/latency/cache figures. *)

type summary = {
  count : int;
  ok : int;  (** state ["done"] *)
  failed : int;
  deadline_exceeded : int;
  errors : int;
      (** failed/cancelled results, counted through the client-side
          {!Hca_obs.Obs.Registry} ([hca_client_errors_total] delta) *)
  timeouts : int;  (** deadline-exceeded results, same accounting *)
  cache_hits : int;  (** daemon-side delta across this run *)
  cache_misses : int;
  cache_entries : int;  (** store size after the run *)
  loaded_entries : int;  (** what the daemon inherited at startup *)
  elapsed_s : float;
  throughput_rps : float;
  p50_ms : float;  (** end-to-end submit → result, queue wait included *)
  p95_ms : float;
  p99_ms : float;
  submit_p50_ms : float;
      (** per-verb wire round-trip quantiles, estimated from the
          [hca_client_rpc_ms{verb=...}] registry histograms (deltas
          across this run) *)
  submit_p95_ms : float;
  result_p50_ms : float;  (** includes the server-side wait for jobs *)
  result_p95_ms : float;
  verified : int;  (** local re-runs compared (0 without [verify]) *)
  verify_mismatches : int;
}

val rpc_once : path:string -> string -> (Json.t, string) result
(** One request line over a throwaway connection: connect, send,
    parse the one-line reply (an [{"ok":false}] reply or any transport
    failure is [Error]).  What the [hca top] dashboard polls with. *)

val run :
  path:string ->
  ?count:int ->
  ?jobs:int ->
  ?seed0:int ->
  ?max_size:int ->
  ?deadline_s:float ->
  ?verify:bool ->
  ?json_out:string ->
  unit ->
  (summary, string) result
(** Defaults: [count = 25], [jobs = 2], [seed0 = 1] (seeds
    [seed0 .. seed0+count-1]), no per-job deadline.  Connection
    attempts retry for a few seconds so the client can start before
    the daemon finishes binding.  [Error] carries the first transport
    or protocol failure. *)

val print_summary : summary -> unit
(** Human-readable report on stdout. *)
