(** Validation of the Chrome trace-event JSON {!Obs.Trace} emits, used
    by the [hca tracecheck] CLI and the test suite.  The parser is a
    small self-contained JSON reader (no external dependency), general
    enough for any trace-event file, not just our own output. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

val parse : string -> (json, string) result
(** Full JSON parser (objects, arrays, strings with escapes, numbers,
    booleans, null).  Errors carry a character offset. *)

type stats = {
  events : int;  (** total entries in ["traceEvents"] *)
  tracks : (int * int) list;  (** completed span count per tid *)
  span_names : (string * int) list;  (** completed span count per name *)
}

val validate : string -> (stats, string) result
(** Checks that [s] parses, has a ["traceEvents"] array whose entries
    are objects with a ["ph"] string (and ["ts"]/["tid"] where the
    phase requires them), and that every track's "B"/"E" events are
    balanced and properly nested. *)

val validate_file : string -> (stats, string) result
