type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad of string * int

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (msg, !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "truncated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char b '"'; advance ()
               | '\\' -> Buffer.add_char b '\\'; advance ()
               | '/' -> Buffer.add_char b '/'; advance ()
               | 'b' -> Buffer.add_char b '\b'; advance ()
               | 'f' -> Buffer.add_char b '\012'; advance ()
               | 'n' -> Buffer.add_char b '\n'; advance ()
               | 'r' -> Buffer.add_char b '\r'; advance ()
               | 't' -> Buffer.add_char b '\t'; advance ()
               | 'u' ->
                   if !pos + 4 >= n then fail "truncated \\u escape";
                   let hex = String.sub s (!pos + 1) 4 in
                   (match int_of_string_opt ("0x" ^ hex) with
                   | None -> fail "bad \\u escape"
                   | Some code ->
                       (* Keep it simple: store the code point raw when
                          ASCII, else a replacement marker — validation
                          only needs structural fidelity. *)
                       if code < 0x80 then Buffer.add_char b (Char.chr code)
                       else Buffer.add_char b '?');
                   pos := !pos + 5
               | c -> fail (Printf.sprintf "bad escape \\%C" c));
            go ()
        | c ->
            Buffer.add_char b c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (key, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          members ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          elements ();
          Arr (List.rev !items)
        end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad (msg, at) ->
      Error (Printf.sprintf "%s at offset %d" msg at)

type stats = {
  events : int;
  tracks : (int * int) list;
  span_names : (string * int) list;
}

let validate s =
  match parse s with
  | Error e -> Error ("not valid JSON: " ^ e)
  | Ok (Obj fields) -> (
      match List.assoc_opt "traceEvents" fields with
      | Some (Arr evs) -> (
          (* Per-tid begin stacks; every E must close the innermost B of
             its track, and every track must end with an empty stack. *)
          let stacks : (int, string list ref) Hashtbl.t = Hashtbl.create 8 in
          let spans : (int, int) Hashtbl.t = Hashtbl.create 8 in
          let names : (string, int) Hashtbl.t = Hashtbl.create 8 in
          let stack_of tid =
            match Hashtbl.find_opt stacks tid with
            | Some st -> st
            | None ->
                let st = ref [] in
                Hashtbl.add stacks tid st;
                st
          in
          let err = ref None in
          let check i ev =
            if !err = None then
              match ev with
              | Obj f -> (
                  let str k =
                    match List.assoc_opt k f with
                    | Some (Str s) -> Some s
                    | _ -> None
                  in
                  let num k =
                    match List.assoc_opt k f with
                    | Some (Num x) -> Some x
                    | _ -> None
                  in
                  match str "ph" with
                  | None -> err := Some (Printf.sprintf "event %d: no \"ph\"" i)
                  | Some ph -> (
                      let tid =
                        match num "tid" with
                        | Some t -> int_of_float t
                        | None -> -1
                      in
                      match ph with
                      | "B" -> (
                          match (str "name", num "ts", tid) with
                          | None, _, _ ->
                              err :=
                                Some (Printf.sprintf "event %d: B without name" i)
                          | _, None, _ ->
                              err :=
                                Some (Printf.sprintf "event %d: B without ts" i)
                          | Some name, Some _, tid ->
                              let st = stack_of tid in
                              st := name :: !st)
                      | "E" -> (
                          if num "ts" = None then
                            err :=
                              Some (Printf.sprintf "event %d: E without ts" i)
                          else
                            let st = stack_of tid in
                            match !st with
                            | [] ->
                                err :=
                                  Some
                                    (Printf.sprintf
                                       "event %d: E with no open span on tid %d"
                                       i tid)
                            | name :: rest ->
                                st := rest;
                                Hashtbl.replace spans tid
                                  (1
                                  + Option.value ~default:0
                                      (Hashtbl.find_opt spans tid));
                                Hashtbl.replace names name
                                  (1
                                  + Option.value ~default:0
                                      (Hashtbl.find_opt names name)))
                      | "i" | "I" | "C" | "M" -> ()
                      | other ->
                          err :=
                            Some
                              (Printf.sprintf "event %d: unknown phase %S" i
                                 other)))
              | _ -> err := Some (Printf.sprintf "event %d: not an object" i)
          in
          List.iteri check evs;
          (match !err with
          | None ->
              Hashtbl.iter
                (fun tid st ->
                  if !st <> [] && !err = None then
                    err :=
                      Some
                        (Printf.sprintf "tid %d: %d span(s) never closed" tid
                           (List.length !st)))
                stacks
          | Some _ -> ());
          match !err with
          | Some e -> Error e
          | None ->
              Ok
                {
                  events = List.length evs;
                  tracks =
                    List.sort compare
                      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) spans []);
                  span_names =
                    List.sort compare
                      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) names []);
                })
      | _ -> Error "no \"traceEvents\" array")
  | Ok _ -> Error "top level is not an object"

let validate_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> validate s
  | exception Sys_error e -> Error e
