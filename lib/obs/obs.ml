type event = {
  kind : [ `Begin | `End | `Instant | `Count | `Sample ];
  name : string;
  ts : float;
  value : float;
  args : (string * string) list;
}

let dummy = { kind = `Instant; name = ""; ts = 0.; value = 0.; args = [] }

(* %S is not JSON-safe for control characters (OCaml escapes them in
   decimal), so escape by hand; names and args here are plain ASCII. *)
let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* One sink per domain, single writer (the owning domain), created on
   first use and registered once.  Three destinations share it: the
   unbounded trace buffer (the whole-process profiler), a fixed-size
   flight ring (always-on post-mortem), and an optional per-request
   capture; [push] fans one timestamped event out to whichever are
   armed.  Readers only run at quiescent points (trace buffer) or
   tolerate best-effort snapshots (ring, see {!Ring.dump}), so the
   arrays need no per-event synchronisation. *)
type sink = {
  dom : int;
  mutable evs : event array;  (* trace buffer *)
  mutable len : int;
  mutable ring : event array;  (* flight ring; [|" "|] length 0 = off *)
  mutable ring_pos : int;  (* total ring writes, monotonic *)
  mutable cap : event array;  (* per-request capture *)
  mutable cap_len : int;
  mutable capturing : bool;
}

let reg_mu = Mutex.create ()

let registry : sink list ref = ref []

let epoch_v = ref 0.

let epoch () = !epoch_v

(* Which destinations are armed.  [armed] is the single hot-path guard
   ([enabled ()]): true when {e any} destination wants events.  All
   transitions happen under [reg_mu] and re-derive [armed], so it never
   goes stale. *)
let trace_on = Atomic.make false

let ring_cap = Atomic.make 0

let captures = Atomic.make 0

let armed = Atomic.make false

let enabled () = Atomic.get armed

let rearm () =
  Atomic.set armed
    (Atomic.get trace_on || Atomic.get ring_cap > 0 || Atomic.get captures > 0)

let buf_key =
  Domain.DLS.new_key (fun () ->
      let b =
        {
          dom = (Domain.self () :> int);
          evs = Array.make 1024 dummy;
          len = 0;
          ring = [||];
          ring_pos = 0;
          cap = [||];
          cap_len = 0;
          capturing = false;
        }
      in
      Mutex.lock reg_mu;
      registry := b :: !registry;
      Mutex.unlock reg_mu;
      b)

let push kind name value args =
  let b = Domain.DLS.get buf_key in
  let tr = Atomic.get trace_on in
  let cp = b.capturing in
  let rc = Atomic.get ring_cap in
  (* The ring keeps only span structure and instants: recording counter
     and histogram traffic in a besieged hot loop is exactly the
     overhead the always-on recorder must not have. *)
  let rg =
    rc > 0 && (match kind with `Count | `Sample -> false | _ -> true)
  in
  if tr || cp || rg then begin
    let e = { kind; name; ts = Hca_util.Clock.now (); value; args } in
    if tr then begin
      if b.len = Array.length b.evs then begin
        let evs = Array.make (2 * b.len) dummy in
        Array.blit b.evs 0 evs 0 b.len;
        b.evs <- evs
      end;
      b.evs.(b.len) <- e;
      b.len <- b.len + 1
    end;
    if cp then begin
      if b.cap_len = Array.length b.cap then begin
        let cap = Array.make (max 1024 (2 * b.cap_len)) dummy in
        Array.blit b.cap 0 cap 0 b.cap_len;
        b.cap <- cap
      end;
      b.cap.(b.cap_len) <- e;
      b.cap_len <- b.cap_len + 1
    end;
    if rg then begin
      if Array.length b.ring <> rc then begin
        b.ring <- Array.make rc dummy;
        b.ring_pos <- 0
      end;
      b.ring.(b.ring_pos mod rc) <- e;
      b.ring_pos <- b.ring_pos + 1
    end
  end

let enable () =
  if not (Atomic.get trace_on) then begin
    Mutex.lock reg_mu;
    if !epoch_v = 0. then epoch_v := Hca_util.Clock.now ();
    Atomic.set trace_on true;
    rearm ();
    Mutex.unlock reg_mu
  end

let disable () =
  Mutex.lock reg_mu;
  Atomic.set trace_on false;
  rearm ();
  Mutex.unlock reg_mu

let reset () =
  Mutex.lock reg_mu;
  List.iter
    (fun b ->
      b.len <- 0;
      b.ring_pos <- 0)
    !registry;
  epoch_v := Hca_util.Clock.now ();
  Mutex.unlock reg_mu

let span ?(args = []) name f =
  if not (Atomic.get armed) then f ()
  else begin
    push `Begin name 0. args;
    match f () with
    | v ->
        push `End "" 0. [];
        v
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        push `End "" 0. [];
        Printexc.raise_with_backtrace e bt
  end

let instant ?(args = []) name =
  if Atomic.get armed then push `Instant name 0. args

(* Counters and samples never reach the ring, so with only the flight
   recorder armed they must cost one extra load + a domain-local read,
   not a clock read and a store. *)
let counting () =
  Atomic.get trace_on || (Domain.DLS.get buf_key).capturing

let count name d =
  if Atomic.get armed && counting () then
    push `Count name (float_of_int d) []

let observe name v =
  if Atomic.get armed && counting () then push `Sample name v []

let events () =
  Mutex.lock reg_mu;
  let bufs = !registry in
  Mutex.unlock reg_mu;
  List.sort
    (fun (a, _) (b, _) -> compare a b)
    (List.map
       (fun b -> (b.dom, List.init b.len (fun i -> b.evs.(i))))
       bufs)

(* Ring overwrites and capture boundaries can orphan [`End]s or leave
   [`Begin]s open; rebalance so every exported stream nests: drop ends
   at depth zero, close whatever is still open at the last timestamp. *)
let balance evs =
  let kept = ref [] and depth = ref 0 and last = ref 0. in
  List.iter
    (fun e ->
      if e.ts > !last then last := e.ts;
      match e.kind with
      | `End ->
          if !depth > 0 then begin
            decr depth;
            kept := e :: !kept
          end
      | `Begin ->
          incr depth;
          kept := e :: !kept
      | _ -> kept := e :: !kept)
    evs;
  let closer = { dummy with kind = `End; ts = !last } in
  List.rev !kept @ List.init !depth (fun _ -> closer)

(* ------------------------------------------------------------------ *)
(* Structured logging                                                  *)

module Log = struct
  type level = Debug | Info | Warn | Error

  type field = S of string | I of int | F of float | B of bool

  let level_name = function
    | Debug -> "debug"
    | Info -> "info"
    | Warn -> "warn"
    | Error -> "error"

  let level_of_string = function
    | "debug" -> Some Debug
    | "info" -> Some Info
    | "warn" | "warning" -> Some Warn
    | "error" -> Some Error
    | _ -> None

  let rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

  (* One mutex serialises sink swaps and line emission, so lines from
     worker domains never interleave mid-record. *)
  let mu = Mutex.create ()

  let sink : out_channel option ref = ref None

  let owns_sink = ref false

  let threshold = ref Info

  let last_ts = ref 0.

  let close_sink_locked () =
    (match !sink with
    | Some oc when !owns_sink -> ( try close_out oc with Sys_error _ -> ())
    | _ -> ());
    sink := None;
    owns_sink := false

  let off () =
    Mutex.lock mu;
    close_sink_locked ();
    Mutex.unlock mu

  let to_stderr () =
    Mutex.lock mu;
    close_sink_locked ();
    sink := Some stderr;
    Mutex.unlock mu

  let to_file path =
    let oc = open_out_gen [ Open_wronly; Open_creat; Open_append ] 0o644 path in
    Mutex.lock mu;
    close_sink_locked ();
    sink := Some oc;
    owns_sink := true;
    Mutex.unlock mu

  let set_level l =
    Mutex.lock mu;
    threshold := l;
    Mutex.unlock mu

  (* Unlocked fast-path check for callers that build fields eagerly;
     [log] re-checks under the lock. *)
  let active l = !sink <> None && rank l >= rank !threshold

  let field_json = function
    | S s -> "\"" ^ json_escape s ^ "\""
    | I i -> string_of_int i
    | F f -> Printf.sprintf "%g" f
    | B b -> string_of_bool b

  let log level ?req event fields =
    Mutex.lock mu;
    (match !sink with
    | Some oc when rank level >= rank !threshold ->
        (* Wall clock, clamped monotone so the stream always sorts. *)
        let now = Hca_util.Clock.now () in
        let ts = if now > !last_ts then now else !last_ts in
        last_ts := ts;
        let b = Buffer.create 160 in
        Printf.bprintf b "{\"ts\":%.6f,\"level\":\"%s\",\"event\":\"%s\"" ts
          (level_name level) (json_escape event);
        (match req with
        | Some r -> Printf.bprintf b ",\"req\":%d" r
        | None -> ());
        List.iter
          (fun (k, v) ->
            Printf.bprintf b ",\"%s\":%s" (json_escape k) (field_json v))
          fields;
        Buffer.add_string b "}\n";
        output_string oc (Buffer.contents b);
        flush oc
    | _ -> ());
    Mutex.unlock mu

  let debug ?req event fields = log Debug ?req event fields

  let info ?req event fields = log Info ?req event fields

  let warn ?req event fields = log Warn ?req event fields

  let error ?req event fields = log Error ?req event fields
end

(* ------------------------------------------------------------------ *)
(* Live metrics registry                                               *)

module Registry = struct
  type histogram = {
    h_mu : Mutex.t;
    bounds : float array;  (* ascending upper bounds; +Inf implicit *)
    counts : int array;  (* length = bounds + 1 (overflow last) *)
    mutable sum : float;
  }

  type metric =
    | Counter of int Atomic.t
    | Gauge of float Atomic.t
    | Histogram of histogram

  let mu = Mutex.create ()

  let tbl : (string, metric) Hashtbl.t = Hashtbl.create 64

  (* Latency-flavoured default buckets (milliseconds). *)
  let default_buckets =
    [| 1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500.; 1000.; 2000.; 5000.; 10000. |]

  let clear () =
    Mutex.lock mu;
    Hashtbl.reset tbl;
    Mutex.unlock mu

  (* Lock order: [mu] before [h_mu]; creation is rare, mutation is an
     atomic op (counters/gauges) or a per-metric lock (histograms). *)
  let get_or_make name make =
    Mutex.lock mu;
    let m =
      match Hashtbl.find_opt tbl name with
      | Some m -> m
      | None ->
          let m = make () in
          Hashtbl.add tbl name m;
          m
    in
    Mutex.unlock mu;
    m

  let inc ?(by = 1) name =
    match get_or_make name (fun () -> Counter (Atomic.make 0)) with
    | Counter c -> ignore (Atomic.fetch_and_add c by)
    | Gauge _ | Histogram _ -> ()

  let set name v =
    match get_or_make name (fun () -> Gauge (Atomic.make 0.)) with
    | Gauge g -> Atomic.set g v
    | Counter _ | Histogram _ -> ()

  let observe ?buckets name v =
    match
      get_or_make name (fun () ->
          let bounds = Option.value ~default:default_buckets buckets in
          Histogram
            {
              h_mu = Mutex.create ();
              bounds;
              counts = Array.make (Array.length bounds + 1) 0;
              sum = 0.;
            })
    with
    | Histogram h ->
        Mutex.lock h.h_mu;
        let n = Array.length h.bounds in
        let i = ref 0 in
        while !i < n && v > h.bounds.(!i) do
          incr i
        done;
        h.counts.(!i) <- h.counts.(!i) + 1;
        h.sum <- h.sum +. v;
        Mutex.unlock h.h_mu
    | Counter _ | Gauge _ -> ()

  let counter name =
    Mutex.lock mu;
    let v =
      match Hashtbl.find_opt tbl name with
      | Some (Counter c) -> Atomic.get c
      | _ -> 0
    in
    Mutex.unlock mu;
    v

  type hist_view = {
    le : float array;  (** finite upper bounds *)
    buckets : int array;  (** per-bucket (not cumulative); +1 overflow *)
    count : int;
    sum : float;
  }

  type snapshot = {
    counters : (string * int) list;
    gauges : (string * float) list;
    hists : (string * hist_view) list;
  }

  let snapshot () =
    Mutex.lock mu;
    let cs = ref [] and gs = ref [] and hs = ref [] in
    Hashtbl.iter
      (fun name m ->
        match m with
        | Counter c -> cs := (name, Atomic.get c) :: !cs
        | Gauge g -> gs := (name, Atomic.get g) :: !gs
        | Histogram h ->
            Mutex.lock h.h_mu;
            let view =
              {
                le = Array.copy h.bounds;
                buckets = Array.copy h.counts;
                count = Array.fold_left ( + ) 0 h.counts;
                sum = h.sum;
              }
            in
            Mutex.unlock h.h_mu;
            hs := (name, view) :: !hs)
      tbl;
    Mutex.unlock mu;
    {
      counters = List.sort compare !cs;
      gauges = List.sort compare !gs;
      hists = List.sort compare !hs;
    }

  (* Bucket-interpolated quantile estimate: exact enough for a
     dashboard, no sample retention. *)
  let quantile hv q =
    if hv.count = 0 then 0.
    else begin
      let target = q *. float_of_int hv.count in
      let n = Array.length hv.buckets in
      let rec go i acc lower =
        if i >= n then lower
        else
          let c = hv.buckets.(i) in
          let upper =
            if i < Array.length hv.le then hv.le.(i) else lower
          in
          if c > 0 && float_of_int (acc + c) >= target then
            lower
            +. (upper -. lower)
               *. ((target -. float_of_int acc) /. float_of_int c)
          else go (i + 1) (acc + c) upper
      in
      go 0 0 0.
    end

  (* "base{labels}" -> (base, Some "labels"); labels ride inside metric
     names so call sites stay one string. *)
  let split_name name =
    match String.index_opt name '{' with
    | Some i
      when String.length name > 1 && name.[String.length name - 1] = '}' ->
        ( String.sub name 0 i,
          Some (String.sub name (i + 1) (String.length name - i - 2)) )
    | _ -> (name, None)

  let num v = Printf.sprintf "%g" v

  let to_prometheus () =
    let s = snapshot () in
    let b = Buffer.create 2048 in
    let typed = Hashtbl.create 16 in
    let type_line base kind =
      if not (Hashtbl.mem typed base) then begin
        Hashtbl.add typed base ();
        Printf.bprintf b "# TYPE %s %s\n" base kind
      end
    in
    List.iter
      (fun (name, v) ->
        let base, _ = split_name name in
        type_line base "counter";
        Printf.bprintf b "%s %d\n" name v)
      s.counters;
    List.iter
      (fun (name, v) ->
        let base, _ = split_name name in
        type_line base "gauge";
        Printf.bprintf b "%s %s\n" name (num v))
      s.gauges;
    List.iter
      (fun (name, hv) ->
        let base, labels = split_name name in
        type_line base "histogram";
        let bucket le_s =
          match labels with
          | None -> Printf.sprintf "%s_bucket{le=\"%s\"}" base le_s
          | Some l -> Printf.sprintf "%s_bucket{%s,le=\"%s\"}" base l le_s
        in
        let suffixed sfx =
          match labels with
          | None -> Printf.sprintf "%s_%s" base sfx
          | Some l -> Printf.sprintf "%s_%s{%s}" base sfx l
        in
        let acc = ref 0 in
        Array.iteri
          (fun i c ->
            if i < Array.length hv.le then begin
              acc := !acc + c;
              Printf.bprintf b "%s %d\n" (bucket (num hv.le.(i))) !acc
            end)
          hv.buckets;
        Printf.bprintf b "%s %d\n" (bucket "+Inf") hv.count;
        Printf.bprintf b "%s %s\n" (suffixed "sum") (num hv.sum);
        Printf.bprintf b "%s %d\n" (suffixed "count") hv.count)
      s.hists;
    Buffer.contents b

  let to_json_string () =
    let s = snapshot () in
    let b = Buffer.create 2048 in
    let fields out xs =
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Printf.bprintf b "\"%s\":" (json_escape k);
          out v)
        xs;
      Buffer.add_char b '}'
    in
    Buffer.add_string b "{\"counters\":";
    fields (fun v -> Buffer.add_string b (string_of_int v)) s.counters;
    Buffer.add_string b ",\"gauges\":";
    fields (fun v -> Buffer.add_string b (num v)) s.gauges;
    Buffer.add_string b ",\"histograms\":";
    fields
      (fun hv ->
        Printf.bprintf b "{\"count\":%d,\"sum\":%s,\"buckets\":[" hv.count
          (num hv.sum);
        let acc = ref 0 in
        Array.iteri
          (fun i c ->
            if i < Array.length hv.le then begin
              acc := !acc + c;
              if i > 0 then Buffer.add_char b ',';
              Printf.bprintf b "[%s,%d]" (num hv.le.(i)) !acc
            end)
          hv.buckets;
        Buffer.add_string b "]}")
      s.hists;
    Buffer.add_char b '}';
    Buffer.contents b
end

(* ------------------------------------------------------------------ *)

module Summary = struct
  type phase = {
    name : string;
    calls : int;
    total_s : float;
    self_s : float;
    max_s : float;
  }

  type hist = {
    h_name : string;
    samples : int;
    mean : float;
    min_v : float;
    p50 : float;
    p90 : float;
    p95 : float;
    p99 : float;
    max_v : float;
  }

  type t = {
    phases : phase list;
    counters : (string * int) list;
    histograms : hist list;
  }

  let percentile sorted q =
    let n = Array.length sorted in
    if n = 0 then 0.
    else sorted.(int_of_float ((q *. float_of_int (n - 1)) +. 0.5))

  let collect () =
    let phases : (string, phase) Hashtbl.t = Hashtbl.create 16 in
    let counters : (string, int) Hashtbl.t = Hashtbl.create 16 in
    let samples : (string, float list ref) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun (_dom, evs) ->
        (* Per-domain span stack: (name, start, child-time accumulator).
           Streams are single-writer, so each nests on its own. *)
        let stack = ref [] in
        List.iter
          (fun e ->
            match e.kind with
            | `Begin -> stack := (e.name, e.ts, ref 0.) :: !stack
            | `End -> (
                match !stack with
                | [] -> () (* unmatched end: drop *)
                | (name, t0, child) :: rest ->
                    stack := rest;
                    let dur = max 0. (e.ts -. t0) in
                    (match rest with
                    | (_, _, pc) :: _ -> pc := !pc +. dur
                    | [] -> ());
                    let prev =
                      Option.value
                        ~default:
                          {
                            name;
                            calls = 0;
                            total_s = 0.;
                            self_s = 0.;
                            max_s = 0.;
                          }
                        (Hashtbl.find_opt phases name)
                    in
                    Hashtbl.replace phases name
                      {
                        prev with
                        calls = prev.calls + 1;
                        total_s = prev.total_s +. dur;
                        self_s = prev.self_s +. max 0. (dur -. !child);
                        max_s = max prev.max_s dur;
                      })
            | `Count ->
                let d = int_of_float e.value in
                Hashtbl.replace counters e.name
                  (d + Option.value ~default:0 (Hashtbl.find_opt counters e.name))
            | `Sample -> (
                match Hashtbl.find_opt samples e.name with
                | Some l -> l := e.value :: !l
                | None -> Hashtbl.add samples e.name (ref [ e.value ]))
            | `Instant -> ())
          evs)
      (events ());
    let phase_list =
      Hashtbl.fold (fun _ p acc -> p :: acc) phases []
      |> List.sort (fun a b ->
             compare (b.total_s, a.name) (a.total_s, b.name))
    in
    let counter_list =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) counters []
      |> List.sort compare
    in
    let hist_list =
      Hashtbl.fold
        (fun h_name l acc ->
          let a = Array.of_list !l in
          Array.sort compare a;
          let n = Array.length a in
          let sum = Array.fold_left ( +. ) 0. a in
          {
            h_name;
            samples = n;
            mean = (if n = 0 then 0. else sum /. float_of_int n);
            min_v = (if n = 0 then 0. else a.(0));
            p50 = percentile a 0.5;
            p90 = percentile a 0.9;
            p95 = percentile a 0.95;
            p99 = percentile a 0.99;
            max_v = (if n = 0 then 0. else a.(n - 1));
          }
          :: acc)
        samples []
      |> List.sort (fun a b -> compare a.h_name b.h_name)
    in
    { phases = phase_list; counters = counter_list; histograms = hist_list }

  let phase_s t name =
    match List.find_opt (fun (p : phase) -> p.name = name) t.phases with
    | Some p -> p.total_s
    | None -> 0.

  let counter t name =
    Option.value ~default:0 (List.assoc_opt name t.counters)

  let ms v = Printf.sprintf "%.3f" (1e3 *. v)

  let print t =
    let open Hca_util.Tabular in
    if t.phases <> [] then begin
      let tab =
        create
          [
            ("phase", Left); ("calls", Right); ("total ms", Right);
            ("self ms", Right); ("avg ms", Right); ("max ms", Right);
          ]
      in
      List.iter
        (fun p ->
          add_row tab
            [
              p.name;
              string_of_int p.calls;
              ms p.total_s;
              ms p.self_s;
              ms (p.total_s /. float_of_int (max 1 p.calls));
              ms p.max_s;
            ])
        t.phases;
      print tab
    end;
    if t.counters <> [] then begin
      let tab = create [ ("counter", Left); ("value", Right) ] in
      List.iter
        (fun (k, v) -> add_row tab [ k; string_of_int v ])
        t.counters;
      print_newline ();
      print tab
    end;
    if t.histograms <> [] then begin
      let tab =
        create
          [
            ("histogram", Left); ("samples", Right); ("min", Right);
            ("p50", Right); ("p90", Right); ("p95", Right); ("p99", Right);
            ("max", Right); ("mean", Right);
          ]
      in
      let num v = Printf.sprintf "%.1f" v in
      List.iter
        (fun h ->
          add_row tab
            [
              h.h_name;
              string_of_int h.samples;
              num h.min_v;
              num h.p50;
              num h.p90;
              num h.p95;
              num h.p99;
              num h.max_v;
              num h.mean;
            ])
        t.histograms;
      print_newline ();
      print tab
    end
end

module Trace = struct
  let escape = json_escape

  let args_json args =
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (escape k) (escape v)) args)
    ^ "}"

  let chrome_of_streams ?(meta = []) ~epoch streams =
    let b = Buffer.create 65536 in
    let us ts = Printf.sprintf "%.3f" (1e6 *. (ts -. epoch)) in
    Buffer.add_string b "{\"traceEvents\":[";
    let first = ref true in
    let sep () = if !first then first := false else Buffer.add_char b ',' in
    List.iter
      (fun (dom, evs) ->
        sep ();
        Buffer.add_string b
          (Printf.sprintf
             "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":{\"name\":\"domain-%d\"}}"
             dom dom);
        (* Cumulative counter series per (domain, name) so Perfetto can
           chart rising totals; histogram samples stay raw gauges. *)
        let totals : (string, float) Hashtbl.t = Hashtbl.create 8 in
        List.iter
          (fun e ->
            match e.kind with
            | `Begin ->
                sep ();
                Buffer.add_string b
                  (Printf.sprintf
                     "{\"name\":\"%s\",\"cat\":\"hca\",\"ph\":\"B\",\"pid\":1,\"tid\":%d,\"ts\":%s%s}"
                     (escape e.name) dom (us e.ts)
                     (if e.args = [] then ""
                      else ",\"args\":" ^ args_json e.args))
            | `End ->
                sep ();
                Buffer.add_string b
                  (Printf.sprintf
                     "{\"ph\":\"E\",\"pid\":1,\"tid\":%d,\"ts\":%s}" dom
                     (us e.ts))
            | `Instant ->
                sep ();
                Buffer.add_string b
                  (Printf.sprintf
                     "{\"name\":\"%s\",\"cat\":\"hca\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":%d,\"ts\":%s%s}"
                     (escape e.name) dom (us e.ts)
                     (if e.args = [] then ""
                      else ",\"args\":" ^ args_json e.args))
            | `Count ->
                let t =
                  e.value
                  +. Option.value ~default:0. (Hashtbl.find_opt totals e.name)
                in
                Hashtbl.replace totals e.name t;
                sep ();
                Buffer.add_string b
                  (Printf.sprintf
                     "{\"name\":\"%s\",\"ph\":\"C\",\"pid\":1,\"tid\":%d,\"ts\":%s,\"args\":{\"%s\":%g}}"
                     (escape e.name) dom (us e.ts) (escape e.name) t)
            | `Sample ->
                sep ();
                Buffer.add_string b
                  (Printf.sprintf
                     "{\"name\":\"%s\",\"ph\":\"C\",\"pid\":1,\"tid\":%d,\"ts\":%s,\"args\":{\"%s\":%g}}"
                     (escape e.name) dom (us e.ts) (escape e.name) e.value))
          evs)
      streams;
    Buffer.add_string b "],\"displayTimeUnit\":\"ms\",\"otherData\":{";
    Buffer.add_string b
      (String.concat ","
         (List.map
            (fun (k, v) ->
              Printf.sprintf "\"%s\":\"%s\"" (escape k) (escape v))
            (("tool", "hca") :: meta)));
    Buffer.add_string b "}}";
    Buffer.contents b

  let to_chrome_json ?meta () =
    chrome_of_streams ?meta ~epoch:(epoch ()) (events ())

  let write ?meta path =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (to_chrome_json ?meta ()))

  let stream_epoch streams =
    List.fold_left
      (fun acc (_, evs) ->
        List.fold_left
          (fun acc e -> if acc = 0. || e.ts < acc then e.ts else acc)
          acc evs)
      0. streams

  let write_streams ?meta path streams =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc
          (chrome_of_streams ?meta ~epoch:(stream_epoch streams) streams))
end

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                     *)

module Ring = struct
  let arm ?(capacity = 4096) () =
    Mutex.lock reg_mu;
    if !epoch_v = 0. then epoch_v := Hca_util.Clock.now ();
    Atomic.set ring_cap (max 16 capacity);
    rearm ();
    Mutex.unlock reg_mu

  let disarm () =
    Mutex.lock reg_mu;
    Atomic.set ring_cap 0;
    rearm ();
    Mutex.unlock reg_mu

  let armed () = Atomic.get ring_cap > 0

  let capacity () = Atomic.get ring_cap

  (* Best-effort post-mortem snapshot.  Other domains may still be
     writing their rings: slot reads are atomic (boxed events), so the
     worst race is an out-of-order or missing event near the write
     head — [balance] keeps the dump structurally valid regardless. *)
  let dump () =
    Mutex.lock reg_mu;
    let sinks = !registry in
    Mutex.unlock reg_mu;
    List.sort
      (fun (a, _) (b, _) -> compare a b)
      (List.filter_map
         (fun s ->
           let cap = Array.length s.ring in
           let pos = s.ring_pos in
           if cap = 0 || pos = 0 then None
           else begin
             let n = min pos cap in
             let first = pos - n in
             let evs =
               List.init n (fun i -> s.ring.((first + i) mod cap))
             in
             let evs = List.filter (fun e -> e != dummy) evs in
             match balance evs with [] -> None | evs -> Some (s.dom, evs)
           end)
         sinks)

  let write ?(meta = []) path =
    Trace.write_streams ~meta:(("recorder", "flight") :: meta) path (dump ())
end

(* ------------------------------------------------------------------ *)
(* Per-request capture                                                 *)

module Capture = struct
  let start () =
    let b = Domain.DLS.get buf_key in
    if not b.capturing then begin
      Mutex.lock reg_mu;
      if !epoch_v = 0. then epoch_v := Hca_util.Clock.now ();
      Atomic.incr captures;
      rearm ();
      Mutex.unlock reg_mu;
      b.cap_len <- 0;
      b.capturing <- true
    end

  let active () = (Domain.DLS.get buf_key).capturing

  let stop () =
    let b = Domain.DLS.get buf_key in
    if not b.capturing then []
    else begin
      b.capturing <- false;
      Mutex.lock reg_mu;
      Atomic.decr captures;
      rearm ();
      Mutex.unlock reg_mu;
      let evs = List.init b.cap_len (fun i -> b.cap.(i)) in
      b.cap_len <- 0;
      balance evs
    end

  let write ?(meta = []) path evs =
    Trace.write_streams
      ~meta:(("recorder", "request") :: meta)
      path
      [ (0, evs) ]
end
