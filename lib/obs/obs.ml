type event = {
  kind : [ `Begin | `End | `Instant | `Count | `Sample ];
  name : string;
  ts : float;
  value : float;
  args : (string * string) list;
}

let dummy = { kind = `Instant; name = ""; ts = 0.; value = 0.; args = [] }

(* One buffer per domain, single writer (the owning domain), created on
   first use and registered once; readers only run at quiescent points,
   so the buffer needs no per-event synchronisation. *)
type buf = { dom : int; mutable evs : event array; mutable len : int }

let enabled_flag = Atomic.make false

let enabled () = Atomic.get enabled_flag

let reg_mu = Mutex.create ()

let registry : buf list ref = ref []

let epoch_v = ref 0.

let epoch () = !epoch_v

let buf_key =
  Domain.DLS.new_key (fun () ->
      let b =
        { dom = (Domain.self () :> int); evs = Array.make 1024 dummy; len = 0 }
      in
      Mutex.lock reg_mu;
      registry := b :: !registry;
      Mutex.unlock reg_mu;
      b)

let push kind name value args =
  let b = Domain.DLS.get buf_key in
  if b.len = Array.length b.evs then begin
    let evs = Array.make (2 * b.len) dummy in
    Array.blit b.evs 0 evs 0 b.len;
    b.evs <- evs
  end;
  b.evs.(b.len) <- { kind; name; ts = Hca_util.Clock.now (); value; args };
  b.len <- b.len + 1

let enable () =
  if not (Atomic.get enabled_flag) then begin
    Mutex.lock reg_mu;
    if !epoch_v = 0. then epoch_v := Hca_util.Clock.now ();
    Mutex.unlock reg_mu;
    Atomic.set enabled_flag true
  end

let disable () = Atomic.set enabled_flag false

let reset () =
  Mutex.lock reg_mu;
  List.iter (fun b -> b.len <- 0) !registry;
  epoch_v := Hca_util.Clock.now ();
  Mutex.unlock reg_mu

let span ?(args = []) name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    push `Begin name 0. args;
    match f () with
    | v ->
        push `End "" 0. [];
        v
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        push `End "" 0. [];
        Printexc.raise_with_backtrace e bt
  end

let instant ?(args = []) name =
  if Atomic.get enabled_flag then push `Instant name 0. args

let count name d =
  if Atomic.get enabled_flag then push `Count name (float_of_int d) []

let observe name v = if Atomic.get enabled_flag then push `Sample name v []

let events () =
  Mutex.lock reg_mu;
  let bufs = !registry in
  Mutex.unlock reg_mu;
  List.sort
    (fun (a, _) (b, _) -> compare a b)
    (List.map
       (fun b -> (b.dom, List.init b.len (fun i -> b.evs.(i))))
       bufs)

module Summary = struct
  type phase = {
    name : string;
    calls : int;
    total_s : float;
    self_s : float;
    max_s : float;
  }

  type hist = {
    h_name : string;
    samples : int;
    mean : float;
    min_v : float;
    p50 : float;
    p90 : float;
    p95 : float;
    p99 : float;
    max_v : float;
  }

  type t = {
    phases : phase list;
    counters : (string * int) list;
    histograms : hist list;
  }

  let percentile sorted q =
    let n = Array.length sorted in
    if n = 0 then 0.
    else sorted.(int_of_float ((q *. float_of_int (n - 1)) +. 0.5))

  let collect () =
    let phases : (string, phase) Hashtbl.t = Hashtbl.create 16 in
    let counters : (string, int) Hashtbl.t = Hashtbl.create 16 in
    let samples : (string, float list ref) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun (_dom, evs) ->
        (* Per-domain span stack: (name, start, child-time accumulator).
           Streams are single-writer, so each nests on its own. *)
        let stack = ref [] in
        List.iter
          (fun e ->
            match e.kind with
            | `Begin -> stack := (e.name, e.ts, ref 0.) :: !stack
            | `End -> (
                match !stack with
                | [] -> () (* unmatched end: drop *)
                | (name, t0, child) :: rest ->
                    stack := rest;
                    let dur = max 0. (e.ts -. t0) in
                    (match rest with
                    | (_, _, pc) :: _ -> pc := !pc +. dur
                    | [] -> ());
                    let prev =
                      Option.value
                        ~default:
                          {
                            name;
                            calls = 0;
                            total_s = 0.;
                            self_s = 0.;
                            max_s = 0.;
                          }
                        (Hashtbl.find_opt phases name)
                    in
                    Hashtbl.replace phases name
                      {
                        prev with
                        calls = prev.calls + 1;
                        total_s = prev.total_s +. dur;
                        self_s = prev.self_s +. max 0. (dur -. !child);
                        max_s = max prev.max_s dur;
                      })
            | `Count ->
                let d = int_of_float e.value in
                Hashtbl.replace counters e.name
                  (d + Option.value ~default:0 (Hashtbl.find_opt counters e.name))
            | `Sample -> (
                match Hashtbl.find_opt samples e.name with
                | Some l -> l := e.value :: !l
                | None -> Hashtbl.add samples e.name (ref [ e.value ]))
            | `Instant -> ())
          evs)
      (events ());
    let phase_list =
      Hashtbl.fold (fun _ p acc -> p :: acc) phases []
      |> List.sort (fun a b ->
             compare (b.total_s, a.name) (a.total_s, b.name))
    in
    let counter_list =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) counters []
      |> List.sort compare
    in
    let hist_list =
      Hashtbl.fold
        (fun h_name l acc ->
          let a = Array.of_list !l in
          Array.sort compare a;
          let n = Array.length a in
          let sum = Array.fold_left ( +. ) 0. a in
          {
            h_name;
            samples = n;
            mean = (if n = 0 then 0. else sum /. float_of_int n);
            min_v = (if n = 0 then 0. else a.(0));
            p50 = percentile a 0.5;
            p90 = percentile a 0.9;
            p95 = percentile a 0.95;
            p99 = percentile a 0.99;
            max_v = (if n = 0 then 0. else a.(n - 1));
          }
          :: acc)
        samples []
      |> List.sort (fun a b -> compare a.h_name b.h_name)
    in
    { phases = phase_list; counters = counter_list; histograms = hist_list }

  let phase_s t name =
    match List.find_opt (fun (p : phase) -> p.name = name) t.phases with
    | Some p -> p.total_s
    | None -> 0.

  let counter t name =
    Option.value ~default:0 (List.assoc_opt name t.counters)

  let ms v = Printf.sprintf "%.3f" (1e3 *. v)

  let print t =
    let open Hca_util.Tabular in
    if t.phases <> [] then begin
      let tab =
        create
          [
            ("phase", Left); ("calls", Right); ("total ms", Right);
            ("self ms", Right); ("avg ms", Right); ("max ms", Right);
          ]
      in
      List.iter
        (fun p ->
          add_row tab
            [
              p.name;
              string_of_int p.calls;
              ms p.total_s;
              ms p.self_s;
              ms (p.total_s /. float_of_int (max 1 p.calls));
              ms p.max_s;
            ])
        t.phases;
      print tab
    end;
    if t.counters <> [] then begin
      let tab = create [ ("counter", Left); ("value", Right) ] in
      List.iter
        (fun (k, v) -> add_row tab [ k; string_of_int v ])
        t.counters;
      print_newline ();
      print tab
    end;
    if t.histograms <> [] then begin
      let tab =
        create
          [
            ("histogram", Left); ("samples", Right); ("min", Right);
            ("p50", Right); ("p90", Right); ("p95", Right); ("p99", Right);
            ("max", Right); ("mean", Right);
          ]
      in
      let num v = Printf.sprintf "%.1f" v in
      List.iter
        (fun h ->
          add_row tab
            [
              h.h_name;
              string_of_int h.samples;
              num h.min_v;
              num h.p50;
              num h.p90;
              num h.p95;
              num h.p99;
              num h.max_v;
              num h.mean;
            ])
        t.histograms;
      print_newline ();
      print tab
    end
end

module Trace = struct
  (* %S is not JSON-safe for control characters (OCaml escapes them in
     decimal), so escape by hand; names and args here are plain ASCII. *)
  let escape s =
    let b = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let args_json args =
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (escape k) (escape v)) args)
    ^ "}"

  let to_chrome_json ?(meta = []) () =
    let b = Buffer.create 65536 in
    let ep = epoch () in
    let us ts = Printf.sprintf "%.3f" (1e6 *. (ts -. ep)) in
    Buffer.add_string b "{\"traceEvents\":[";
    let first = ref true in
    let sep () = if !first then first := false else Buffer.add_char b ',' in
    List.iter
      (fun (dom, evs) ->
        sep ();
        Buffer.add_string b
          (Printf.sprintf
             "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":{\"name\":\"domain-%d\"}}"
             dom dom);
        (* Cumulative counter series per (domain, name) so Perfetto can
           chart rising totals; histogram samples stay raw gauges. *)
        let totals : (string, float) Hashtbl.t = Hashtbl.create 8 in
        List.iter
          (fun e ->
            match e.kind with
            | `Begin ->
                sep ();
                Buffer.add_string b
                  (Printf.sprintf
                     "{\"name\":\"%s\",\"cat\":\"hca\",\"ph\":\"B\",\"pid\":1,\"tid\":%d,\"ts\":%s%s}"
                     (escape e.name) dom (us e.ts)
                     (if e.args = [] then ""
                      else ",\"args\":" ^ args_json e.args))
            | `End ->
                sep ();
                Buffer.add_string b
                  (Printf.sprintf
                     "{\"ph\":\"E\",\"pid\":1,\"tid\":%d,\"ts\":%s}" dom
                     (us e.ts))
            | `Instant ->
                sep ();
                Buffer.add_string b
                  (Printf.sprintf
                     "{\"name\":\"%s\",\"cat\":\"hca\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":%d,\"ts\":%s%s}"
                     (escape e.name) dom (us e.ts)
                     (if e.args = [] then ""
                      else ",\"args\":" ^ args_json e.args))
            | `Count ->
                let t =
                  e.value
                  +. Option.value ~default:0. (Hashtbl.find_opt totals e.name)
                in
                Hashtbl.replace totals e.name t;
                sep ();
                Buffer.add_string b
                  (Printf.sprintf
                     "{\"name\":\"%s\",\"ph\":\"C\",\"pid\":1,\"tid\":%d,\"ts\":%s,\"args\":{\"%s\":%g}}"
                     (escape e.name) dom (us e.ts) (escape e.name) t)
            | `Sample ->
                sep ();
                Buffer.add_string b
                  (Printf.sprintf
                     "{\"name\":\"%s\",\"ph\":\"C\",\"pid\":1,\"tid\":%d,\"ts\":%s,\"args\":{\"%s\":%g}}"
                     (escape e.name) dom (us e.ts) (escape e.name) e.value))
          evs)
      (events ());
    Buffer.add_string b "],\"displayTimeUnit\":\"ms\",\"otherData\":{";
    Buffer.add_string b
      (String.concat ","
         (List.map
            (fun (k, v) ->
              Printf.sprintf "\"%s\":\"%s\"" (escape k) (escape v))
            (("tool", "hca") :: meta)));
    Buffer.add_string b "}}";
    Buffer.contents b

  let write ?meta path =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (to_chrome_json ?meta ()))
end
