(** Domain-safe tracing, structured logging and live metrics.

    Instrumentation points are free to stay in hot paths permanently:
    when every destination is off (the default) each entry point is a
    single atomic load and a branch — no allocation, no clock read, no
    lock.  When armed, each domain appends events to its own sink
    (created lazily via [Domain.DLS] and registered once under a
    mutex), so [Domain_pool] workers record without contention.

    One event stream feeds three destinations, each armed separately:

    - the {e trace buffer} ([enable]/[disable]): unbounded, merged by
      {!Summary} and {!Trace} — the whole-process profiler;
    - the {e flight recorder} ({!Ring}): a fixed-size per-domain ring
      of recent span/instant events, cheap enough to leave always on,
      dumped post-mortem when a request goes wrong;
    - a {e per-request capture} ({!Capture}): everything the calling
      domain records between [start] and [stop], exported as a
      standalone Chrome trace named by request id.

    Independent of the event stream, {!Log} is a leveled newline-JSON
    logger and {!Registry} a process-wide metrics registry (counters,
    gauges, histograms) with Prometheus-text and JSON exposition.

    Recording never influences the instrumented computation, so search
    results are bit-identical with any combination of destinations on
    or off, at every [--jobs].

    Protocol: [enable]/[reset]/[events]/[Summary.collect]/[Trace.*]
    must be called from quiescent points (no traced work in flight);
    the per-event paths ([span], [count], ...) are safe from any
    domain, and {!Ring.dump} tolerates concurrent writers. *)

val enabled : unit -> bool
(** One atomic load; true when {e any} destination is armed — the
    hot-path guard for eager argument work. *)

val enable : unit -> unit
(** Turn the trace buffer on.  The first arming (or the one following
    a [reset]) pins the trace epoch all timestamps are relative to. *)

val disable : unit -> unit
(** Turn the trace buffer off (ring and captures are unaffected). *)

val reset : unit -> unit
(** Drop every buffered trace event and flight-ring entry (all
    domains) and re-arm the epoch.  Active captures are left alone. *)

val span : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [span name f] brackets [f ()] with begin/end events on the calling
    domain's track.  The end event is recorded even when [f] raises, so
    per-domain streams always nest well-formedly. *)

val instant : ?args:(string * string) list -> string -> unit
(** A point event (Chrome "instant"), e.g. a memo hit. *)

val count : string -> int -> unit
(** [count name d] adds [d] to counter [name].  Merging at flush sums
    per-domain partials, so totals are independent of domain placement.
    Counters skip the flight ring: with only the recorder armed this
    is a load and a branch, no clock read. *)

val observe : string -> float -> unit
(** [observe name v] appends a sample to histogram [name] (trace
    buffer and captures only, like {!count}). *)

type event = {
  kind : [ `Begin | `End | `Instant | `Count | `Sample ];
  name : string;  (** empty for [`End] *)
  ts : float;  (** absolute wall-clock seconds *)
  value : float;  (** counter delta / histogram sample; 0 otherwise *)
  args : (string * string) list;
}

val events : unit -> (int * event list) list
(** Per-domain trace-buffer streams in recording order, sorted by
    domain id.  Raw access for the consumers and the test suite. *)

val epoch : unit -> float
(** The wall-clock origin of the current trace (0. before arming). *)

(** Leveled, domain-safe, newline-JSON structured logging.

    Each line is one flat JSON object:
    [{"ts":<s>,"level":"info","event":"job.finish","req":3,...}] —
    ["ts"] is wall-clock seconds (microsecond precision, clamped
    monotone across the process so the stream always sorts), ["req"]
    the optional request-correlation id, and every extra field a
    caller-supplied key/value.  A single mutex serialises emission, so
    lines from worker domains never interleave.  With no sink
    configured (the default) every call is a cheap no-op. *)
module Log : sig
  type level = Debug | Info | Warn | Error

  type field = S of string | I of int | F of float | B of bool

  val level_name : level -> string

  val level_of_string : string -> level option
  (** ["debug"]/["info"]/["warn"] (or ["warning"])/["error"]. *)

  val set_level : level -> unit
  (** Minimum level that reaches the sink; default [Info]. *)

  val off : unit -> unit
  (** Drop the sink (closing it if owned); the default state. *)

  val to_stderr : unit -> unit

  val to_file : string -> unit
  (** Append to [path] (created 0644); the logger owns the channel. *)

  val active : level -> bool
  (** Unlocked fast check — would a line at [level] be emitted?  For
      callers that build fields eagerly. *)

  val log : level -> ?req:int -> string -> (string * field) list -> unit
  (** [log level ?req event fields] emits one line (or nothing, when
      no sink is set or [level] is below the threshold). *)

  val debug : ?req:int -> string -> (string * field) list -> unit

  val info : ?req:int -> string -> (string * field) list -> unit

  val warn : ?req:int -> string -> (string * field) list -> unit

  val error : ?req:int -> string -> (string * field) list -> unit
end

(** Process-wide live metrics: named counters, gauges and bucketed
    histograms, safe to update from any domain (counters are atomics;
    histograms take a per-metric lock).

    Labels ride inside the metric name in Prometheus syntax —
    [inc "hca_requests_total{verb=\"submit\"}"] — so call sites stay
    one string and exposition groups series by base name.  Metrics are
    created on first update; a name keeps the kind of its first use
    (later calls of another kind are ignored rather than raising, so
    telemetry can never crash the service). *)
module Registry : sig
  val inc : ?by:int -> string -> unit
  (** Add [by] (default 1) to a counter. *)

  val set : string -> float -> unit
  (** Set a gauge. *)

  val observe : ?buckets:float array -> string -> float -> unit
  (** Add one sample to a histogram.  [buckets] (ascending finite
      upper bounds; an overflow bucket is implicit) is only consulted
      when the call creates the metric; the default is a 1 ms – 10 s
      latency ladder. *)

  val counter : string -> int
  (** Current counter value; 0 when absent or not a counter. *)

  type hist_view = {
    le : float array;  (** finite upper bounds *)
    buckets : int array;  (** per-bucket counts; one extra overflow *)
    count : int;
    sum : float;
  }

  type snapshot = {
    counters : (string * int) list;  (** sorted by name *)
    gauges : (string * float) list;
    hists : (string * hist_view) list;
  }

  val snapshot : unit -> snapshot
  (** A consistent-enough copy of every metric (each histogram is
      copied under its own lock). *)

  val quantile : hist_view -> float -> float
  (** [quantile hv q] estimates the [q]-quantile (0..1) by linear
      interpolation within the owning bucket — dashboard accuracy,
      no sample retention. *)

  val to_prometheus : unit -> string
  (** Prometheus text exposition: one [# TYPE] line per base name,
      cumulative [_bucket{le="..."}] plus [_sum]/[_count] series per
      histogram. *)

  val to_json_string : unit -> string
  (** The same snapshot as one JSON object:
      [{"counters":{..},"gauges":{..},"histograms":{name:
      {"count":n,"sum":s,"buckets":[[le,cumulative],..]}}}]. *)

  val clear : unit -> unit
  (** Drop every metric (tests only). *)
end

module Summary : sig
  type phase = {
    name : string;
    calls : int;
    total_s : float;  (** wall-clock inside spans of this name *)
    self_s : float;  (** [total_s] minus time inside child spans *)
    max_s : float;  (** longest single span *)
  }

  type hist = {
    h_name : string;
    samples : int;
    mean : float;
    min_v : float;
    p50 : float;
    p90 : float;
    p95 : float;  (** tail percentiles for serving-latency reports *)
    p99 : float;
    max_v : float;
  }

  type t = {
    phases : phase list;  (** sorted by [total_s], largest first *)
    counters : (string * int) list;  (** sorted by name *)
    histograms : hist list;  (** sorted by name *)
  }

  val collect : unit -> t
  (** Merge every domain's buffer into aggregate tables.  Spans are
      attributed per domain (each stream nests independently), then
      summed across domains; unterminated spans are ignored. *)

  val phase_s : t -> string -> float
  (** Total seconds of the named phase, 0. when absent. *)

  val counter : t -> string -> int

  val print : t -> unit
  (** Per-phase, counter and histogram tables via {!Hca_util.Tabular}. *)
end

module Trace : sig
  val chrome_of_streams :
    ?meta:(string * string) list ->
    epoch:float ->
    (int * event list) list ->
    string
  (** Chrome trace-event / Perfetto JSON ("traceEvents" array) over
      arbitrary per-track streams: one thread track per stream id
      (named [domain-<id>]), "B"/"E" pairs for spans, "i" instants,
      cumulative "C" counter series, raw "C" gauges for histogram
      samples.  Timestamps are microseconds relative to [epoch];
      [meta] lands in ["otherData"]. *)

  val to_chrome_json : ?meta:(string * string) list -> unit -> string
  (** {!chrome_of_streams} over the global trace buffer ({!events})
      with the global {!epoch}. *)

  val write : ?meta:(string * string) list -> string -> unit
  (** [write path] saves {!to_chrome_json} to [path]. *)

  val write_streams :
    ?meta:(string * string) list ->
    string ->
    (int * event list) list ->
    unit
  (** Save explicit streams (a ring dump, a request capture) with the
      epoch pinned to their earliest timestamp. *)
end

(** The flight recorder: a fixed-size per-domain ring of recent
    [`Begin]/[`End]/[`Instant] events that is cheap enough to leave
    armed in a production daemon, then dumped as a valid Chrome trace
    when a request crashes, expires or runs slow — a post-mortem for
    exactly the requests nobody predicted they would need to trace. *)
module Ring : sig
  val arm : ?capacity:int -> unit -> unit
  (** Arm with [capacity] events per domain (default 4096, min 16).
      Domains (re)allocate their ring lazily on the next event. *)

  val disarm : unit -> unit

  val armed : unit -> bool

  val capacity : unit -> int

  val dump : unit -> (int * event list) list
  (** Chronological per-domain streams of whatever the rings currently
      hold, rebalanced so every stream nests (overwritten [`Begin]s
      drop their orphan [`End]s; still-open spans get synthetic ends).
      Safe while other domains keep writing — their tail events may be
      torn off, never the structure. *)

  val write : ?meta:(string * string) list -> string -> unit
  (** {!Trace.write_streams} of {!dump} (tagged [recorder=flight]). *)
end

(** Per-request capture: everything the {e calling domain} records
    between [start] and [stop], for request-scoped trace files.  The
    daemon runs each job on one worker domain, so a capture around the
    job's work closure is the complete request trace. *)
module Capture : sig
  val start : unit -> unit
  (** Begin capturing on this domain (idempotent). *)

  val active : unit -> bool

  val stop : unit -> event list
  (** End the capture and return its rebalanced stream ([] when no
      capture was active). *)

  val write : ?meta:(string * string) list -> string -> event list -> unit
  (** Save one captured stream as a standalone Chrome trace (tagged
      [recorder=request]). *)
end
