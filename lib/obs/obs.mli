(** Domain-safe tracing and metrics.

    Instrumentation points are free to stay in hot paths permanently:
    when tracing is disabled (the default) every entry point is a single
    atomic load and a branch — no allocation, no clock read, no lock.
    When enabled, each domain appends events to its own lock-free buffer
    (created lazily via [Domain.DLS] and registered once under a mutex),
    so [Domain_pool] workers trace without contention; the buffers are
    only merged at flush time by the consumers below.

    Recording never influences the instrumented computation, so search
    results are bit-identical with tracing on or off, at every [--jobs].

    Protocol: [enable]/[reset]/[events]/[Summary.collect]/[Trace.*] must
    be called from quiescent points (no traced work in flight); the
    per-event paths ([span], [count], ...) are safe from any domain. *)

val enabled : unit -> bool
(** One atomic load; the hot-path guard for any eager argument work. *)

val enable : unit -> unit
(** Turn recording on.  The first [enable] (or the one following a
    [reset]) pins the trace epoch all timestamps are relative to. *)

val disable : unit -> unit

val reset : unit -> unit
(** Drop every buffered event (all domains) and re-arm the epoch. *)

val span : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [span name f] brackets [f ()] with begin/end events on the calling
    domain's track.  The end event is recorded even when [f] raises, so
    per-domain streams always nest well-formedly. *)

val instant : ?args:(string * string) list -> string -> unit
(** A point event (Chrome "instant"), e.g. a memo hit. *)

val count : string -> int -> unit
(** [count name d] adds [d] to counter [name].  Merging at flush sums
    per-domain partials, so totals are independent of domain placement. *)

val observe : string -> float -> unit
(** [observe name v] appends a sample to histogram [name]. *)

type event = {
  kind : [ `Begin | `End | `Instant | `Count | `Sample ];
  name : string;  (** empty for [`End] *)
  ts : float;  (** absolute wall-clock seconds *)
  value : float;  (** counter delta / histogram sample; 0 otherwise *)
  args : (string * string) list;
}

val events : unit -> (int * event list) list
(** Per-domain event streams in recording order, sorted by domain id.
    Raw access for the consumers and the test suite. *)

val epoch : unit -> float
(** The wall-clock origin of the current trace (0. before [enable]). *)

module Summary : sig
  type phase = {
    name : string;
    calls : int;
    total_s : float;  (** wall-clock inside spans of this name *)
    self_s : float;  (** [total_s] minus time inside child spans *)
    max_s : float;  (** longest single span *)
  }

  type hist = {
    h_name : string;
    samples : int;
    mean : float;
    min_v : float;
    p50 : float;
    p90 : float;
    p95 : float;  (** tail percentiles for serving-latency reports *)
    p99 : float;
    max_v : float;
  }

  type t = {
    phases : phase list;  (** sorted by [total_s], largest first *)
    counters : (string * int) list;  (** sorted by name *)
    histograms : hist list;  (** sorted by name *)
  }

  val collect : unit -> t
  (** Merge every domain's buffer into aggregate tables.  Spans are
      attributed per domain (each stream nests independently), then
      summed across domains; unterminated spans are ignored. *)

  val phase_s : t -> string -> float
  (** Total seconds of the named phase, 0. when absent. *)

  val counter : t -> string -> int

  val print : t -> unit
  (** Per-phase, counter and histogram tables via {!Hca_util.Tabular}. *)
end

module Trace : sig
  val to_chrome_json : ?meta:(string * string) list -> unit -> string
  (** Chrome trace-event / Perfetto JSON ("traceEvents" array): one
      thread track per domain (named [domain-<id>]), "B"/"E" pairs for
      spans, "i" instants, cumulative "C" counter series, and raw "C"
      gauges for histogram samples.  [meta] lands in ["otherData"]. *)

  val write : ?meta:(string * string) list -> string -> unit
  (** [write path] saves {!to_chrome_json} to [path]. *)
end
