open Hca_ddg
open Hca_machine
open Hca_core

type opts = {
  jobs : int;
  iterations : int;
  oracle_size_cap : int;
  oracle_cn_cap : int;
  oracle_conflicts : int;
}

let default_opts =
  {
    jobs = 1;
    iterations = 4;
    oracle_size_cap = 14;
    oracle_cn_cap = 16;
    oracle_conflicts = 20_000;
  }

type oracle_outcome =
  | Oracle_checked of { lower : int; achieved : int; optimum : int option }
  | Oracle_skipped of string

type sim_outcome =
  | Sim_checked of { stores : int; cycles : int }
  | Sim_skipped of string

type failure = { check : string; detail : string }

type t = {
  instance : Gen.instance;
  feasible : bool;
  final_mii : int option;
  oracle : oracle_outcome;
  sim : sim_outcome;
  failures : failure list;
}

let gap t =
  match t.oracle with
  | Oracle_checked { achieved; optimum = Some o; _ } -> Some (achieved - o)
  | _ -> None

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: tl -> x :: take (n - 1) tl

(* (a) the emitted configuration must satisfy the independent checkers. *)
let check_coherency fail report =
  match report.Report.result with
  | None ->
      if report.Report.legal then
        fail "coherency" "report.legal = true without a result";
      None
  | Some res ->
      (match Coherency.check res with
      | Ok () ->
          if not report.Report.legal then
            fail "coherency" "checker accepts but report.legal = false"
      | Error msgs -> fail "coherency" (String.concat " | " (take 3 msgs)));
      let expanded =
        match Postprocess.expand res with
        | exp -> Some exp
        | exception e ->
            fail "postprocess" ("expand raised: " ^ Printexc.to_string e);
            None
      in
      (match expanded with
      | None -> ()
      | Some exp -> (
          match Postprocess.validate exp res with
          | Ok () -> ()
          | Error m -> fail "postprocess" m));
      expanded

(* (b) the heuristic may never beat the oracle's certified bound. *)
let check_oracle fail opts fabric ddg report =
  if Ddg.size ddg > opts.oracle_size_cap then Oracle_skipped "size"
  else if Dspfabric.total_cns fabric > opts.oracle_cn_cap then
    Oracle_skipped "cns"
  else
    match report.Report.result with
    | None -> Oracle_skipped "infeasible"
    | Some res -> (
        try
          let einst =
            Hca_exact.Encode.of_problem (Hca_exact.Oracle.problem_of fabric ddg)
          in
          let projected =
            Hca_exact.Encode.cluster_mii_of_assignment einst
              res.Hierarchy.cn_of_instr
          in
          let achieved = max report.Report.ini_mii projected in
          (* Seed the oracle's downward walk with the heuristic's own
             flat projection: in relaxed mode the incumbent is feasible
             by construction, so the conflict budget goes into
             tightening.  The verdict stays a pure function of the
             instance ([budget_s = infinity] + conflict budget). *)
          let o =
            Hca_exact.Oracle.run ~budget_s:infinity
              ~max_conflicts:opts.oracle_conflicts ~incumbent:achieved
              fabric ddg
          in
          let lower = o.Hca_exact.Oracle.lower_bound in
          if lower > achieved then
            fail "oracle"
              (Printf.sprintf
                 "heuristic flat projected MII %d beats certified lower bound \
                  %d"
                 achieved lower);
          (match o.Hca_exact.Oracle.status with
          | Unsat ->
              fail "oracle"
                "oracle refuted the whole range including all-on-one-CN"
          | Optimal | Feasible | Timeout -> ());
          let optimum =
            match o.Hca_exact.Oracle.status with
            | Optimal -> o.Hca_exact.Oracle.final_mii
            | _ -> None
          in
          Oracle_checked { lower; achieved; optimum }
        with e ->
          fail "oracle" ("exception: " ^ Printexc.to_string e);
          Oracle_skipped "exception")

(* (c) scheduled + mapped execution against the reference interpreter. *)
let check_semantics fail opts fabric ddg expanded final_mii =
  match (expanded, final_mii) with
  | None, Some _ -> Sim_skipped "expand"
  | _, None -> Sim_skipped "infeasible"
  | Some exp, Some start_ii -> (
      let params =
        { Hca_sched.Modulo.default_params with copy_latency = 0 }
      in
      match
        Hca_sched.Modulo.run ~params ~ddg:exp.Postprocess.ddg
          ~cn_of_instr:exp.Postprocess.cn_of_node
          ~cns:(Dspfabric.total_cns fabric)
          ~dma_ports:(Dspfabric.dma_ports fabric)
          ~start_ii ()
      with
      | Error e -> Sim_skipped ("sched: " ^ e)
      | exception e -> Sim_skipped ("sched raised: " ^ Printexc.to_string e)
      | Ok schedule -> (
          match
            Hca_sim.Machine_sim.check_against_reference
              ~iterations:opts.iterations ~original:ddg
              ~expanded:exp.Postprocess.ddg
              ~cn_of_node:exp.Postprocess.cn_of_node ~schedule ()
          with
          | Ok stats ->
              Sim_checked
                {
                  stores = List.length stats.Hca_sim.Machine_sim.trace;
                  cycles = stats.Hca_sim.Machine_sim.cycles;
                }
          | Error e ->
              fail "semantics" e;
              Sim_skipped "trace-mismatch"
          | exception e ->
              fail "semantics" ("exception: " ^ Printexc.to_string e);
              Sim_skipped "exception"))

(* (d) the quality verdict must not depend on jobs, memo or tracing. *)
let check_invariance fail opts fabric ddg report =
  let base =
    if opts.jobs = 1 then report else Report.run ~jobs:1 fabric ddg
  in
  let base_s = Report.invariant_string base in
  if opts.jobs <> 1 && Report.invariant_string report <> base_s then
    fail "invariance"
      (Printf.sprintf "jobs=%d differs from jobs=1" opts.jobs);
  let j2 = Report.run ~jobs:2 fabric ddg in
  if Report.invariant_string j2 <> base_s then
    fail "invariance" "jobs=2 differs from jobs=1";
  if
    ( base.Report.cache_hits,
      base.Report.cache_misses,
      base.Report.reused_subproblems )
    <> (j2.Report.cache_hits, j2.Report.cache_misses, j2.Report.reused_subproblems)
  then fail "invariance" "memo counters differ between jobs=1 and jobs=2";
  let memo_off = Report.run ~jobs:1 ~memo:false fabric ddg in
  if Report.invariant_string memo_off <> base_s then
    fail "invariance" "memo=off differs from memo=on";
  let was_enabled = Hca_obs.Obs.enabled () in
  Hca_obs.Obs.enable ();
  let traced = Report.run ~jobs:1 fabric ddg in
  if not was_enabled then begin
    Hca_obs.Obs.disable ();
    Hca_obs.Obs.reset ()
  end;
  if Report.invariant_string traced <> base_s then
    fail "invariance" "traced run differs from untraced"

let run ?(opts = default_opts) (inst : Gen.instance) =
  let ddg = inst.Gen.ddg and fabric = inst.Gen.fabric in
  let failures = ref [] in
  let fail check detail = failures := { check; detail } :: !failures in
  let report = Report.run ~jobs:opts.jobs fabric ddg in
  let feasible = report.Report.final_mii <> None in
  let expanded = check_coherency fail report in
  let oracle = check_oracle fail opts fabric ddg report in
  let sim = check_semantics fail opts fabric ddg expanded report.Report.final_mii in
  check_invariance fail opts fabric ddg report;
  {
    instance = inst;
    feasible;
    final_mii = report.Report.final_mii;
    oracle;
    sim;
    failures = List.rev !failures;
  }

let verdict_line t =
  let status =
    match t.failures with
    | [] -> if t.feasible then "ok" else "infeasible"
    | fs ->
        Printf.sprintf "FAIL[%s]"
          (String.concat ","
             (List.sort_uniq compare (List.map (fun f -> f.check) fs)))
  in
  let oracle =
    match t.oracle with
    | Oracle_skipped reason -> "skipped(" ^ reason ^ ")"
    | Oracle_checked { lower; achieved; optimum = Some o } ->
        Printf.sprintf "lower=%d achieved=%d optimum=%d gap=%d" lower achieved
          o (achieved - o)
    | Oracle_checked { lower; achieved; optimum = None } ->
        Printf.sprintf "lower=%d achieved=%d optimum=?" lower achieved
  in
  let sim =
    match t.sim with
    | Sim_checked { stores; cycles } ->
        Printf.sprintf "ok(stores=%d,cycles=%d)" stores cycles
    | Sim_skipped reason -> "skipped(" ^ reason ^ ")"
  in
  Printf.sprintf "seed %d: %s size=%d machine=%s final=%s oracle=%s sim=%s"
    t.instance.Gen.seed status
    (Ddg.size t.instance.Gen.ddg)
    (Dspfabric.name t.instance.Gen.fabric)
    (match t.final_mii with Some m -> string_of_int m | None -> "-")
    oracle sim
