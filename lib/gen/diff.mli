(** The differential driver: one generated instance in, one verdict out.

    For each instance the driver runs the full HCA pipeline and
    cross-checks it four ways:

    - {b coherency} — {!Hca_core.Report.run} must produce configurations
      the independent {!Hca_core.Coherency} checker accepts, and the
      receive expansion must pass {!Hca_core.Postprocess.validate};
    - {b oracle} — on small instances the SAT oracle's certified lower
      bound must not exceed the heuristic's achieved flat projected MII
      ([heuristic < bound] is always a bug; equality with a proven
      optimum is reported as gap 0);
    - {b semantics} — the scheduled, mapped kernel executed on
      {!Hca_sim.Machine_sim} must store bit-identical values to the
      {!Hca_sim.Interp} reference on the original DDG;
    - {b invariance} — {!Hca_core.Report.invariant_string} must be
      bit-identical at [--jobs 1] and [--jobs 2], memo on and off,
      traced and untraced.

    The verdict is a pure function of the instance: the oracle runs
    with an infinite wall-clock budget and a {e conflict} budget, and
    nothing in the driver reads the clock. *)

type opts = {
  jobs : int;  (** pool size of the primary {!Hca_core.Report.run} *)
  iterations : int;  (** simulated loop iterations for the trace check *)
  oracle_size_cap : int;  (** skip the SAT cross-check on larger kernels *)
  oracle_cn_cap : int;  (** ... and on machines with more CNs *)
  oracle_conflicts : int;  (** deterministic per-probe solver budget *)
}

val default_opts : opts
(** jobs 1, 4 iterations, oracle on kernels <= 14 instructions and
    machines <= 16 CNs with 20k conflicts per probe. *)

type oracle_outcome =
  | Oracle_checked of {
      lower : int;  (** certified lower bound on any flat projected MII *)
      achieved : int;  (** the heuristic's own assignment, re-projected *)
      optimum : int option;  (** proven optimum when the oracle closed *)
    }
  | Oracle_skipped of string  (** "size", "cns" or "infeasible" *)

type sim_outcome =
  | Sim_checked of { stores : int; cycles : int }
  | Sim_skipped of string
      (** "infeasible", "expand", or "sched: ..." — an unschedulable
          synthetic shape is a counted skip, not a failure *)

type failure = { check : string; detail : string }
(** [check] is one of ["coherency"], ["postprocess"], ["oracle"],
    ["semantics"], ["invariance"] — the name the shrinker preserves. *)

type t = {
  instance : Gen.instance;
  feasible : bool;  (** a legal clusterisation was found *)
  final_mii : int option;
  oracle : oracle_outcome;
  sim : sim_outcome;
  failures : failure list;  (** empty = the instance passed every check *)
}

val gap : t -> int option
(** [achieved - optimum] when the oracle proved the optimum. *)

val run : ?opts:opts -> Gen.instance -> t

val verdict_line : t -> string
(** Deterministic one-line verdict, e.g.
    ["seed 17: ok size=14 machine=dspfabric-8(N=4,M=4,K=4) final=3 oracle=lower=2 achieved=3 optimum=2 gap=1 sim=ok(stores=8,cycles=21)"].
    Contains no wall-clock figure, so two runs of the same seed print
    the same bytes. *)
