open Hca_ddg
open Hca_machine

let fanouts_of = Gen.fanouts_of

let cn_in_wires_of = Gen.cn_in_wires_of

let rebuild fabric ?fanouts ?n ?m ?k ?dma () =
  let fanouts =
    match fanouts with Some f -> f | None -> fanouts_of fabric
  in
  Dspfabric.make ~fanouts
    ~cn_in_wires:(cn_in_wires_of fabric)
    ~dma_ports:(Option.value dma ~default:(Dspfabric.dma_ports fabric))
    ~n:(Option.value n ~default:(Dspfabric.n fabric))
    ~m:(Option.value m ~default:(Dspfabric.m fabric))
    ~k:(Option.value k ~default:(Dspfabric.k fabric))
    ()

let fabric_candidates fabric =
  let fanouts = fanouts_of fabric in
  let cands = ref [] in
  let add f = cands := f :: !cands in
  (* Fewer CNs first: drop the outermost level... *)
  if Array.length fanouts > 2 then
    add
      (rebuild fabric
         ~fanouts:(Array.sub fanouts 1 (Array.length fanouts - 1))
         ());
  (* ... or reduce one fan-out towards the minimum of 2. *)
  Array.iteri
    (fun i f ->
      if f > 2 then begin
        let fo = Array.copy fanouts in
        fo.(i) <- 2;
        add (rebuild fabric ~fanouts:fo ())
      end)
    fanouts;
  (* Capacity relaxation: a failure that survives on a roomier machine
     is a deeper bug, and the roomy instance is easier to stare at. *)
  if Dspfabric.n fabric < 8 then add (rebuild fabric ~n:8 ());
  if Dspfabric.m fabric < 8 && Dspfabric.depth fabric > 2 then
    add (rebuild fabric ~m:8 ());
  if Dspfabric.k fabric < 8 then add (rebuild fabric ~k:8 ());
  if Dspfabric.dma_ports fabric < 8 then add (rebuild fabric ~dma:8 ());
  List.rev !cands

(* Splice one node out, bypassing each producer->consumer pair through
   it: chains collapse where plain removal would orphan the consumer.
   Latencies and carried distances add up along the bypass, so the
   recurrence structure survives the surgery. *)
let splice g drop =
  let b = Ddg.Builder.create ~name:(Ddg.name g) () in
  Array.iter
    (fun (i : Instr.t) ->
      if i.Instr.id <> drop then
        ignore (Ddg.Builder.add_instr b ~name:i.Instr.name i.Instr.opcode))
    (Ddg.instrs g);
  let remap i = if i > drop then i - 1 else i in
  let preds = ref [] and succs = ref [] in
  Ddg.iter_edges
    (fun (e : Ddg.edge) ->
      match (e.src = drop, e.dst = drop) with
      | false, false ->
          Ddg.Builder.add_dep b ~latency:e.latency ~distance:e.distance
            ~src:(remap e.src) ~dst:(remap e.dst)
      | false, true -> preds := e :: !preds
      | true, false -> succs := e :: !succs
      | true, true -> ())
    g;
  List.iter
    (fun (p : Ddg.edge) ->
      List.iter
        (fun (s : Ddg.edge) ->
          Ddg.Builder.add_dep b
            ~latency:(p.latency + s.latency)
            ~distance:(p.distance + s.distance)
            ~src:(remap p.src) ~dst:(remap s.dst))
        !succs)
    !preds;
  Ddg.Builder.freeze b

let ddg_candidates g =
  let n = Ddg.size g in
  let node_removals =
    if n <= 2 then []
    else
      List.concat
        (List.init n (fun drop ->
             let ids = List.filter (fun i -> i <> drop) (List.init n Fun.id) in
             let sub, _ = Ddg.induced g ids in
             if Gen.well_formed sub then [ sub ] else []))
  in
  let splices =
    if n <= 2 then []
    else
      List.concat
        (List.init n (fun drop ->
             match splice g drop with
             | sub when Gen.well_formed sub -> [ sub ]
             | _ -> []
             | exception Invalid_argument _ -> []))
  in
  let edges = Ddg.edges g in
  let edge_removals =
    List.concat
      (List.init (Array.length edges) (fun drop ->
           let j = ref (-1) in
           let sub =
             Ddg.filter_edges g (fun _ ->
                 incr j;
                 !j <> drop)
           in
           if Gen.well_formed sub then [ sub ] else []))
  in
  node_removals @ splices @ edge_removals

let minimize ~keep (inst : Gen.instance) =
  if not (keep inst) then
    invalid_arg "Shrink.minimize: predicate rejects the initial instance";
  let try_list mk cands =
    List.find_map
      (fun c ->
        let cand = mk c in
        if keep cand then Some cand else None)
      cands
  in
  let step inst =
    match
      try_list
        (fun f -> { inst with Gen.fabric = f })
        (fabric_candidates inst.Gen.fabric)
    with
    | Some _ as r -> r
    | None ->
        try_list
          (fun d -> { inst with Gen.ddg = d })
          (ddg_candidates inst.Gen.ddg)
  in
  let rec fix inst = match step inst with Some i -> fix i | None -> inst in
  fix inst
