(** Replayable reproducers on disk: [<name>.ddg] (the kernel, in
    {!Hca_ddg.Ddg_io} text format) next to [<name>.repro] (the machine,
    the failing check and the expected verdict).

    The [.repro] format is line-oriented, ['#'] comments allowed:
    {v
    seed 19
    ddg fuzz-seed19.ddg
    fabric fanouts=2,2 n=4 m=4 k=4 cn_in=2 dma=8
    expect fail:coherency     (or: ok | gap:2)
    v}

    [expect gap:g] pins the flat optimality gap of the heuristic on
    this instance ([achieved - oracle optimum], see {!Diff.gap}) — the
    regression corpus for the h264deblocking-class misses.  Replaying
    such an entry re-runs the oracle with the caps lifted, so the gap
    is re-certified, not merely remembered. *)

type expectation = Expect_ok | Expect_fail of string | Expect_gap of int

type entry = {
  name : string;  (** file base name, derived from the [.repro] path *)
  instance : Gen.instance;
  expect : expectation;
}

val fabric_to_string : Hca_machine.Dspfabric.t -> string
(** ["fanouts=2,2 n=4 m=4 k=4 cn_in=2 dma=8"] — total, unlike
    {!Hca_machine.Dspfabric.name}. *)

val fabric_of_string : string -> (Hca_machine.Dspfabric.t, string) result

val write : dir:string -> name:string -> Gen.instance -> expectation -> unit
(** Writes [<dir>/<name>.ddg] and [<dir>/<name>.repro] (creates [dir]
    when missing). *)

val read : string -> (entry, string) result
(** Loads one [.repro] file (the [ddg] line is resolved relative to the
    [.repro]'s own directory). *)

val load_dir : string -> (entry list, string) result
(** Every [*.repro] under the directory, sorted by name; the first
    unreadable entry fails the whole load. *)

val replay_opts : Diff.opts
(** The default options {!replay} runs under: {!Diff.default_opts} with
    the oracle size/CN caps lifted and a 10x conflict budget, so gap
    expectations are always re-certified. *)

val replay : ?opts:Diff.opts -> entry -> (string, string) result
(** Re-runs {!Diff.run} and compares against the expectation.
    [Ok line] is the (deterministic) verdict line on a match; [Error]
    explains the mismatch — including the "gap changed, update the
    corpus" case when the heuristic improved. *)
