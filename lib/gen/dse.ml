open Hca_machine
open Hca_core

type point = { pname : string; desc : Machine_desc.t }

type eval = { point : string; kernel : string; report : Report.t }

type summary = {
  point : string;
  machine : string;
  cns : int;
  machine_wires : int;
  score : int option;
  legal_kernels : int;
  pareto : bool;
}

type result = {
  evals : eval list;
  summaries : summary list;
  front : summary list;
}

let shape_name fanouts =
  String.concat "x" (Array.to_list (Array.map string_of_int fanouts))

let grid_points ?(dma = [ 8 ]) ~fanouts ~caps () =
  if fanouts = [] || caps = [] || dma = [] then
    invalid_arg "Dse.grid_points: empty dimension";
  List.concat_map
    (fun shape ->
      List.concat_map
        (fun c ->
          List.map
            (fun d ->
              {
                pname = Printf.sprintf "g%s-c%d-d%d" (shape_name shape) c d;
                desc =
                  Dspfabric.make ~fanouts:(Array.copy shape) ~dma_ports:d ~n:c
                    ~m:c ~k:c ();
              })
            dma)
        caps)
    fanouts

let random_points ?knobs ?hetero ~count ~seed () =
  List.init count (fun i ->
      let seed = seed + i in
      {
        pname = Printf.sprintf "r%d" seed;
        desc = Gen.desc ?knobs ?hetero ~seed ();
      })

let machine_points descs =
  List.map (fun (pname, desc) -> { pname; desc }) descs

(* All three axes minimised; ties (equal triples) are mutually
   non-dominating, so duplicates both stay on the front. *)
let non_dominated costs =
  let n = Array.length costs in
  Array.init n (fun i ->
      let si, wi, ci = costs.(i) in
      let dominated = ref false in
      for j = 0 to n - 1 do
        if j <> i && not !dominated then begin
          let sj, wj, cj = costs.(j) in
          if
            sj <= si && wj <= wi && cj <= ci
            && (sj < si || wj < wi || cj < ci)
          then dominated := true
        end
      done;
      not !dominated)

let summarise points evals =
  let viable =
    List.map
      (fun p ->
        let rows = List.filter (fun (e : eval) -> e.point = p.pname) evals in
        let legal_kernels =
          List.length
            (List.filter
               (fun e -> e.report.Report.legal && e.report.Report.error = None)
               rows)
        in
        let score =
          if legal_kernels < List.length rows then None
          else
            List.fold_left
              (fun acc e ->
                match (acc, e.report.Report.final_mii) with
                | Some a, Some m -> Some (a + m)
                | _ -> None)
              (Some 0) rows
        in
        {
          point = p.pname;
          machine = Machine_desc.name p.desc;
          cns = Machine_desc.total_cns p.desc;
          machine_wires = Machine_desc.wire_cost p.desc;
          score;
          legal_kernels;
          pareto = false;
        })
      points
  in
  let scored = List.filter (fun s -> s.score <> None) viable in
  let costs =
    Array.of_list
      (List.map
         (fun s -> (Option.get s.score, s.machine_wires, s.cns))
         scored)
  in
  let keep = non_dominated costs in
  let on_front = Hashtbl.create 8 in
  List.iteri
    (fun i s -> if keep.(i) then Hashtbl.replace on_front s.point ())
    scored;
  let summaries =
    List.map (fun s -> { s with pareto = Hashtbl.mem on_front s.point }) viable
  in
  let front =
    List.filter (fun s -> s.pareto) summaries
    |> List.sort (fun a b ->
           compare
             (a.score, a.machine_wires, a.cns, a.point)
             (b.score, b.machine_wires, b.cns, b.point))
  in
  (summaries, front)

let run ?(config = Config.default) ?(jobs = 1) ~kernels points =
  if points = [] then invalid_arg "Dse.run: no machine points";
  if kernels = [] then invalid_arg "Dse.run: no kernels";
  let seen = Hashtbl.create 8 in
  List.iter
    (fun p ->
      if Hashtbl.mem seen p.pname then
        invalid_arg (Printf.sprintf "Dse.run: duplicate point %S" p.pname);
      Hashtbl.replace seen p.pname ())
    points;
  let pairs =
    List.concat_map (fun p -> List.map (fun k -> (p, k)) kernels) points
  in
  (* The pool returns results in submission order, so the evaluation
     list — and everything derived from it — is independent of [jobs];
     each evaluation runs at [jobs:1] with a fresh memo cache, so its
     row is bit-equal to a standalone [Report.run] on that machine. *)
  let evals =
    Hca_util.Domain_pool.with_pool ~jobs (fun pool ->
        Hca_util.Domain_pool.map pool
          (fun (p, (kname, ddg)) ->
            {
              point = p.pname;
              kernel = kname;
              report = Report.run ~config ~jobs:1 p.desc ddg;
            })
          pairs)
  in
  let summaries, front = summarise points evals in
  { evals; summaries; front }

(* NDJSON mirrors bench/main.ml's row shape (same quality-field names,
   so bench_guard gates dse rows like any experiment) but only prints
   figures that are pure functions of the sweep spec — no wall clock,
   no allocation meters — so the bytes are identical at any [jobs]. *)
let to_ndjson r =
  let buf = Buffer.create 4096 in
  let row ~experiment ~kernel fields =
    Buffer.add_string buf
      (Printf.sprintf "{\"experiment\":%S,\"kernel\":%S%s}\n" experiment kernel
         (String.concat ""
            (List.map (fun (k, v) -> Printf.sprintf ",%S:%s" k v) fields)))
  in
  let jint = string_of_int in
  let jopt = function None -> "null" | Some v -> string_of_int v in
  let jbool b = if b then "true" else "false" in
  let jstr s = Printf.sprintf "%S" s in
  List.iter
    (fun e ->
      let r = e.report in
      row ~experiment:"dse"
        ~kernel:(e.point ^ "/" ^ e.kernel)
        ([
           ("machine", jstr r.Report.machine);
           ("n_instr", jint r.Report.n_instr);
           ("mii_rec", jint r.Report.mii_rec);
           ("mii_res", jint r.Report.mii_res);
           ("legal", jbool r.Report.legal);
           ("final_mii", jopt r.Report.final_mii);
           ("ii_used", jint r.Report.ii_used);
           ("copies", jint r.Report.copies);
           ("wires", jint r.Report.max_wire_load);
           ("forwards", jint r.Report.forwards);
           ("explored", jint r.Report.explored_states);
           ("invariant", jstr (Report.invariant_string r));
         ]
        @
        match r.Report.error with
        | None -> []
        | Some e -> [ ("error", jstr e) ]))
    r.evals;
  List.iter
    (fun s ->
      row ~experiment:"dse_points" ~kernel:s.point
        [
          ("machine", jstr s.machine);
          ("cns", jint s.cns);
          ("machine_wires", jint s.machine_wires);
          ("score", jopt s.score);
          ("legal_kernels", jint s.legal_kernels);
          ("pareto", jbool s.pareto);
        ])
    r.summaries;
  Buffer.contents buf

let ranked_table r =
  let t =
    Hca_util.Tabular.create
      [
        ("Point", Hca_util.Tabular.Left);
        ("Machine", Hca_util.Tabular.Left);
        ("CNs", Hca_util.Tabular.Right);
        ("Wires", Hca_util.Tabular.Right);
        ("Legal", Hca_util.Tabular.Right);
        ("Score", Hca_util.Tabular.Right);
        ("Pareto", Hca_util.Tabular.Left);
      ]
  in
  let viable, failed =
    List.partition (fun s -> s.score <> None) r.summaries
  in
  let ranked =
    List.sort
      (fun a b ->
        compare
          (a.score, a.machine_wires, a.cns, a.point)
          (b.score, b.machine_wires, b.cns, b.point))
      viable
  in
  List.iter
    (fun s ->
      Hca_util.Tabular.add_row t
        [
          s.point;
          s.machine;
          string_of_int s.cns;
          string_of_int s.machine_wires;
          string_of_int s.legal_kernels;
          (match s.score with Some v -> string_of_int v | None -> "-");
          (if s.pareto then "*" else "");
        ])
    (ranked @ failed);
  Hca_util.Tabular.render t

let check r =
  let ( let* ) = Result.bind in
  let points = List.length r.summaries in
  let kernels =
    match r.summaries with
    | [] -> 0
    | s :: _ ->
        List.length (List.filter (fun (e : eval) -> e.point = s.point) r.evals)
  in
  let* () =
    if List.length r.evals = points * kernels then Ok ()
    else
      Error
        (Printf.sprintf "expected %d evaluations (%d points x %d kernels), got %d"
           (points * kernels) points kernels (List.length r.evals))
  in
  let viable = List.filter (fun s -> s.score <> None) r.summaries in
  let costs =
    Array.of_list
      (List.map (fun s -> (Option.get s.score, s.machine_wires, s.cns)) viable)
  in
  let keep = non_dominated costs in
  let expected = ref [] in
  List.iteri (fun i s -> if keep.(i) then expected := s.point :: !expected) viable;
  let expected = List.sort compare !expected in
  let got = List.sort compare (List.map (fun s -> s.point) r.front) in
  let* () =
    if expected = got then Ok ()
    else
      Error
        (Printf.sprintf "Pareto front mismatch: expected {%s}, got {%s}"
           (String.concat "," expected) (String.concat "," got))
  in
  let* () =
    if
      List.for_all
        (fun (s : summary) ->
          s.pareto = List.exists (fun f -> f.point = s.point) r.front)
        r.summaries
    then Ok ()
    else Error "summary pareto flags disagree with the front"
  in
  Ok ()
