open Hca_ddg
open Hca_machine

type ddg_knobs = {
  min_size : int;
  max_size : int;
  mem_ratio : float;
  const_ratio : float;
  max_fanout : int;
  recurrences : int;
  max_distance : int;
  opcode_mix : Opcode.t array;
}

let default_ddg_knobs =
  {
    min_size = 6;
    max_size = 24;
    mem_ratio = 0.2;
    const_ratio = 0.1;
    max_fanout = 4;
    recurrences = 2;
    max_distance = 2;
    opcode_mix =
      [|
        Opcode.Add; Sub; Mul; Mac; Shl; Shr; And_; Or_; Xor; Min; Max; Abs;
        Clip; Cmp; Sel; Mov;
      |];
  }

type machine_knobs = {
  fanout_choices : int array array;
  min_cap : int;
  max_cap : int;
  min_dma : int;
  max_dma : int;
}

let default_machine_knobs =
  {
    fanout_choices = [| [| 2; 2 |]; [| 4; 2 |]; [| 2; 2; 2 |]; [| 4; 4 |] |];
    min_cap = 2;
    max_cap = 8;
    min_dma = 2;
    max_dma = 8;
  }

type instance = { seed : int; ddg : Ddg.t; fabric : Dspfabric.t }

let check_ddg_knobs k =
  if k.min_size < 2 || k.max_size < k.min_size then
    invalid_arg "Gen.ddg: need 2 <= min_size <= max_size";
  if k.mem_ratio < 0. || k.const_ratio < 0.
     || k.mem_ratio +. k.const_ratio > 0.9
  then invalid_arg "Gen.ddg: ratios must be >= 0 and sum below 0.9";
  if k.max_fanout < 1 then invalid_arg "Gen.ddg: max_fanout must be >= 1";
  if k.recurrences < 0 || k.max_distance < 1 then
    invalid_arg "Gen.ddg: recurrences >= 0 and max_distance >= 1 required";
  if Array.length k.opcode_mix = 0 then
    invalid_arg "Gen.ddg: empty opcode mix";
  Array.iter
    (fun op ->
      match op with
      | Opcode.Const _ | Load | Store | Agen | Recv ->
          invalid_arg "Gen.ddg: opcode_mix must contain plain ALU opcodes"
      | _ -> ())
    k.opcode_mix

(* Sub-streams: the kernel and machine shapes of one seed come from
   distinct splitmix64 streams so that changing a machine knob never
   perturbs the kernel drawn for the same seed (and vice versa). *)
let ddg_stream seed = Hca_util.Prng.create ((seed * 2) + 1)

let fabric_stream seed = Hca_util.Prng.create ((seed * 2) + 2)

let ddg ?(knobs = default_ddg_knobs) ~seed () =
  check_ddg_knobs knobs;
  let rng = ddg_stream seed in
  let n =
    knobs.min_size + Hca_util.Prng.int rng (knobs.max_size - knobs.min_size + 1)
  in
  let b = Ddg.Builder.create ~name:(Printf.sprintf "fuzz-%d" seed) () in
  let out_deg = Array.make n 0 in
  (* Prefer producers still under the fan-out cap; fall back to any
     earlier node so the "every consumer has an operand" invariant never
     bends to the soft cap. *)
  let pick_operand rng i =
    let pick () = Hca_util.Prng.int rng i in
    let rec attempt tries best =
      if tries = 0 then best
      else
        let c = pick () in
        if out_deg.(c) < knobs.max_fanout then c
        else attempt (tries - 1) best
    in
    let src = attempt 4 (pick ()) in
    out_deg.(src) <- out_deg.(src) + 1;
    src
  in
  let stores = ref 0 in
  for i = 0 to n - 1 do
    if i = 0 then
      ignore (Ddg.Builder.add_instr b (Opcode.Const (Hca_util.Prng.int rng 256)))
    else begin
      let roll = Hca_util.Prng.float rng 1.0 in
      let forced_store = i = n - 1 && !stores = 0 in
      if (not forced_store) && roll < knobs.const_ratio then
        ignore
          (Ddg.Builder.add_instr b (Opcode.Const (Hca_util.Prng.int rng 256)))
      else if forced_store || roll < knobs.const_ratio +. knobs.mem_ratio then begin
        (* Memory op: Store needs an address and a value; Load an address. *)
        let is_store = forced_store || Hca_util.Prng.bool rng in
        if is_store then begin
          incr stores;
          let id = Ddg.Builder.add_instr b Opcode.Store in
          let addr = pick_operand rng i in
          let value = pick_operand rng i in
          Ddg.Builder.add_dep b ~src:addr ~dst:id;
          Ddg.Builder.add_dep b ~src:value ~dst:id
        end
        else begin
          let id = Ddg.Builder.add_instr b Opcode.Load in
          let addr = pick_operand rng i in
          Ddg.Builder.add_dep b ~src:addr ~dst:id
        end
      end
      else begin
        let op = Hca_util.Prng.pick rng knobs.opcode_mix in
        let id = Ddg.Builder.add_instr b op in
        let arity = 1 + Hca_util.Prng.int rng 2 in
        for _ = 1 to arity do
          let src = pick_operand rng i in
          Ddg.Builder.add_dep b ~src ~dst:id
        done
      end
    end
  done;
  (* Loop-carried recurrences: distance >= 1 edges may point anywhere,
     including self-loops — the distance-0 subgraph stays acyclic.
     Appended after the operand edges, so they never displace the
     operands the reference semantics reads first. *)
  for _ = 1 to knobs.recurrences do
    let src = Hca_util.Prng.int rng n in
    let dst = Hca_util.Prng.int rng (src + 1) in
    let distance = 1 + Hca_util.Prng.int rng knobs.max_distance in
    Ddg.Builder.add_dep b ~distance ~src ~dst
  done;
  Ddg.Builder.freeze b

let desc ?(knobs = default_machine_knobs) ?(hetero = 0.) ~seed () =
  if Array.length knobs.fanout_choices = 0 then
    invalid_arg "Gen.fabric: empty fanout_choices";
  if knobs.min_cap < 1 || knobs.max_cap < knobs.min_cap then
    invalid_arg "Gen.fabric: need 1 <= min_cap <= max_cap";
  if knobs.min_dma < 1 || knobs.max_dma < knobs.min_dma then
    invalid_arg "Gen.fabric: need 1 <= min_dma <= max_dma";
  if hetero < 0. || hetero > 1. then
    invalid_arg "Gen.desc: hetero must be in [0, 1]";
  let rng = fabric_stream seed in
  let cap () =
    knobs.min_cap + Hca_util.Prng.int rng (knobs.max_cap - knobs.min_cap + 1)
  in
  let fanouts = Array.copy (Hca_util.Prng.pick rng knobs.fanout_choices) in
  let n = cap () and m = cap () and k = cap () in
  let dma =
    knobs.min_dma + Hca_util.Prng.int rng (knobs.max_dma - knobs.min_dma + 1)
  in
  let base = Dspfabric.make ~fanouts ~dma_ports:dma ~n ~m ~k () in
  if hetero <= 0. then base
  else begin
    (* Continued output of the fabric stream: the tables are a pure
       function of (knobs, hetero, seed), and [hetero = 0] never draws,
       so the homogeneous path is bit-identical to the old [fabric]. *)
    let deviant = ref false in
    let tables =
      Array.init (Dspfabric.total_cns base) (fun _ ->
          if Hca_util.Prng.float rng 1.0 >= hetero then Resource.cn
          else begin
            deviant := true;
            match Hca_util.Prng.int rng 3 with
            | 0 -> { Resource.alus = 2; ags = 1 } (* ALU/MUL-heavy *)
            | 1 -> { Resource.alus = 1; ags = 0 } (* pure compute *)
            | _ -> { Resource.alus = 1; ags = 2 } (* memory-heavy *)
          end)
    in
    if not !deviant then base
    else
      Machine_desc.with_tables
        ~name:(Machine_desc.name base ^ "+het")
        base tables
  end

let fabric ?knobs ~seed () = desc ?knobs ~hetero:0. ~seed ()

let instance ?ddg_knobs ?machine_knobs ~seed () =
  { seed; ddg = ddg ?knobs:ddg_knobs ~seed (); fabric = fabric ?knobs:machine_knobs ~seed () }

let fanouts_of fabric =
  Array.init (Dspfabric.depth fabric) (fun l ->
      (Dspfabric.level_view fabric ~level:l).Dspfabric.children)

let cn_in_wires_of fabric =
  (Dspfabric.level_view fabric ~level:(Dspfabric.depth fabric - 1))
    .Dspfabric.mux_capacity

let needs_operand (op : Opcode.t) =
  match op with Const _ | Agen -> false | _ -> true

let well_formed g =
  let ok = ref true in
  Array.iteri
    (fun id (i : Instr.t) ->
      if needs_operand i.Instr.opcode && Ddg.preds g id = [] then ok := false)
    (Ddg.instrs g);
  !ok
