(** The fuzzing campaign: a seed range through {!Diff.run}, with
    optional shrinking of every failure down to a replayable reproducer
    under a corpus directory.

    All output goes through the caller's [log] callback and never
    contains a wall-clock figure: the whole campaign transcript is a
    pure function of [(seeds, knobs, opts)]. *)

type stats = {
  mutable instances : int;
  mutable ok : int;
  mutable infeasible : int;  (** no legal clusterisation — counted, not failed *)
  mutable failed : int;  (** instances with at least one check failure *)
  mutable minimized : int;  (** reproducers written to the corpus *)
  mutable oracle_checked : int;
  mutable oracle_skipped : int;
  mutable oracle_optimal : int;  (** oracle closed the instance *)
  mutable oracle_matched : int;  (** ... and the heuristic met the optimum *)
  mutable max_gap : int;  (** worst proven optimality gap seen *)
  mutable gap_findings : int;  (** instances at or above [gap_threshold] *)
  mutable sim_checked : int;
  mutable sim_skipped : int;
}

val summary_line : stats -> string

val run :
  ?opts:Diff.opts ->
  ?ddg_knobs:Gen.ddg_knobs ->
  ?machine_knobs:Gen.machine_knobs ->
  ?minimize:bool ->
  ?corpus_dir:string ->
  ?gap_threshold:int ->
  ?verbose:bool ->
  ?log:(string -> unit) ->
  seed:int ->
  count:int ->
  unit ->
  stats
(** Fuzzes seeds [seed .. seed + count - 1].  Failure verdicts are
    always logged; per-instance [ok] lines only when [verbose].

    With [gap_threshold] set, an instance whose proven optimality gap
    reaches the threshold is reported (and shrunk) like a failure —
    the knob that mines the corpus for heuristic-miss regression
    instances — without counting into [failed].

    With [minimize] (default off), every finding is shrunk with
    {!Shrink.minimize} under "the same first check still fails" (resp.
    "the gap stays at or above threshold") and, when [corpus_dir] is
    set, written there as [fuzz-seed<N>-<check>.{ddg,repro}]. *)

val replay_dir :
  ?opts:Diff.opts -> ?log:(string -> unit) -> string -> int * int
(** Replays every reproducer in a corpus directory; returns
    [(total, mismatches)].  Mismatch explanations go to [log]. *)
