open Hca_ddg
open Hca_machine

type expectation = Expect_ok | Expect_fail of string | Expect_gap of int

type entry = { name : string; instance : Gen.instance; expect : expectation }

let ( let* ) = Result.bind

let fabric_to_string fabric =
  Printf.sprintf "fanouts=%s n=%d m=%d k=%d cn_in=%d dma=%d"
    (String.concat ","
       (List.map string_of_int (Array.to_list (Gen.fanouts_of fabric))))
    (Dspfabric.n fabric) (Dspfabric.m fabric) (Dspfabric.k fabric)
    (Gen.cn_in_wires_of fabric)
    (Dspfabric.dma_ports fabric)

let fabric_of_string s =
  let fields =
    String.split_on_char ' ' (String.trim s)
    |> List.filter (fun f -> f <> "")
  in
  let tbl = Hashtbl.create 8 in
  let* () =
    List.fold_left
      (fun acc kv ->
        let* () = acc in
        match String.index_opt kv '=' with
        | None -> Error ("fabric: malformed field " ^ kv)
        | Some i ->
            Hashtbl.replace tbl (String.sub kv 0 i)
              (String.sub kv (i + 1) (String.length kv - i - 1));
            Ok ())
      (Ok ()) fields
  in
  let int_field key =
    match Hashtbl.find_opt tbl key with
    | None -> Error ("fabric: missing " ^ key)
    | Some v -> (
        match int_of_string_opt v with
        | Some i -> Ok i
        | None -> Error ("fabric: bad integer for " ^ key))
  in
  let* fanouts =
    match Hashtbl.find_opt tbl "fanouts" with
    | None -> Error "fabric: missing fanouts"
    | Some v -> (
        let parts = String.split_on_char ',' v in
        match
          List.fold_left
            (fun acc p ->
              match (acc, int_of_string_opt p) with
              | Some l, Some i -> Some (i :: l)
              | _ -> None)
            (Some []) parts
        with
        | Some l -> Ok (Array.of_list (List.rev l))
        | None -> Error "fabric: bad fanouts list")
  in
  let* n = int_field "n" in
  let* m = int_field "m" in
  let* k = int_field "k" in
  let* cn_in = int_field "cn_in" in
  let* dma = int_field "dma" in
  try Ok (Dspfabric.make ~fanouts ~cn_in_wires:cn_in ~dma_ports:dma ~n ~m ~k ())
  with Invalid_argument e -> Error e

let expectation_to_string = function
  | Expect_ok -> "ok"
  | Expect_fail check -> "fail:" ^ check
  | Expect_gap g -> "gap:" ^ string_of_int g

let expectation_of_string s =
  match String.trim s with
  | "ok" -> Ok Expect_ok
  | s when String.length s > 5 && String.sub s 0 5 = "fail:" ->
      Ok (Expect_fail (String.sub s 5 (String.length s - 5)))
  | s when String.length s > 4 && String.sub s 0 4 = "gap:" -> (
      match int_of_string_opt (String.sub s 4 (String.length s - 4)) with
      | Some g -> Ok (Expect_gap g)
      | None -> Error ("expect: bad gap " ^ s))
  | s -> Error ("expect: unknown verdict " ^ s)

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let write ~dir ~name (inst : Gen.instance) expect =
  mkdir_p dir;
  Ddg_io.write_file (Filename.concat dir (name ^ ".ddg")) inst.Gen.ddg;
  let oc = open_out (Filename.concat dir (name ^ ".repro")) in
  Printf.fprintf oc "# hca fuzz reproducer; replay with: hca fuzz --replay %s\n"
    dir;
  Printf.fprintf oc "seed %d\n" inst.Gen.seed;
  Printf.fprintf oc "ddg %s.ddg\n" name;
  Printf.fprintf oc "fabric %s\n" (fabric_to_string inst.Gen.fabric);
  Printf.fprintf oc "expect %s\n" (expectation_to_string expect);
  close_out oc

let read path =
  let* lines =
    try
      let ic = open_in path in
      let rec loop acc =
        match input_line ic with
        | line -> loop (line :: acc)
        | exception End_of_file ->
            close_in ic;
            List.rev acc
      in
      Ok (loop [])
    with Sys_error e -> Error e
  in
  let name = Filename.remove_extension (Filename.basename path) in
  let seed = ref None and ddg_file = ref None in
  let fabric = ref None and expect = ref None in
  let* () =
    List.fold_left
      (fun acc line ->
        let* () = acc in
        let line = String.trim line in
        if line = "" || line.[0] = '#' then Ok ()
        else
          let key, rest =
            match String.index_opt line ' ' with
            | None -> (line, "")
            | Some i ->
                ( String.sub line 0 i,
                  String.trim
                    (String.sub line (i + 1) (String.length line - i - 1)) )
          in
          match key with
          | "seed" -> (
              match int_of_string_opt rest with
              | Some s ->
                  seed := Some s;
                  Ok ()
              | None -> Error (path ^ ": bad seed line"))
          | "ddg" ->
              ddg_file := Some rest;
              Ok ()
          | "fabric" ->
              let* f = fabric_of_string rest in
              fabric := Some f;
              Ok ()
          | "expect" ->
              let* e = expectation_of_string rest in
              expect := Some e;
              Ok ()
          | _ -> Error (path ^ ": unknown record " ^ key))
      (Ok ()) lines
  in
  let require what = function
    | Some v -> Ok v
    | None -> Error (path ^ ": missing " ^ what ^ " line")
  in
  let* seed = require "seed" !seed in
  let* ddg_file = require "ddg" !ddg_file in
  let* fabric = require "fabric" !fabric in
  let* expect = require "expect" !expect in
  let* ddg = Ddg_io.read_file (Filename.concat (Filename.dirname path) ddg_file) in
  Ok { name; instance = { Gen.seed; ddg; fabric }; expect }

let load_dir dir =
  let* files =
    try Ok (Sys.readdir dir) with Sys_error e -> Error e
  in
  let repros =
    Array.to_list files
    |> List.filter (fun f -> Filename.check_suffix f ".repro")
    |> List.sort compare
  in
  List.fold_left
    (fun acc f ->
      let* entries = acc in
      let* e = read (Filename.concat dir f) in
      Ok (e :: entries))
    (Ok []) repros
  |> Result.map List.rev

(* Replay lifts the oracle caps: a gap expectation must be
   re-certified by the solver, not merely remembered, so the corpus
   keeps honest when the heuristic improves. *)
let replay_opts =
  {
    Diff.default_opts with
    oracle_size_cap = max_int;
    oracle_cn_cap = max_int;
    oracle_conflicts = 200_000;
  }

let replay ?(opts = replay_opts) entry =
  let d = Diff.run ~opts entry.instance in
  let line = Diff.verdict_line d in
  match entry.expect with
  | Expect_ok ->
      if d.Diff.failures = [] then Ok line
      else Error (Printf.sprintf "%s: expected ok, got: %s" entry.name line)
  | Expect_fail check ->
      if List.exists (fun f -> f.Diff.check = check) d.Diff.failures then
        Ok line
      else
        Error
          (Printf.sprintf "%s: expected a %s failure, got: %s" entry.name
             check line)
  | Expect_gap g -> (
      match Diff.gap d with
      | Some got when got = g && d.Diff.failures = [] -> Ok line
      | Some got when got <> g ->
          Error
            (Printf.sprintf
               "%s: optimality gap changed: expected %d, got %d — the \
                heuristic %s on this instance; update the corpus entry"
               entry.name g got
               (if got < g then "improved" else "regressed"))
      | Some _ ->
          Error
            (Printf.sprintf "%s: gap matches but checks failed: %s" entry.name
               line)
      | None ->
          Error
            (Printf.sprintf "%s: oracle no longer proves the optimum: %s"
               entry.name line))
