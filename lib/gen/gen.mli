(** Seeded random generator of differential-fuzzing instances: a kernel
    DDG plus a machine configuration, both a pure function of the seed.

    The DDGs are {e well-formed by construction}: instruction ids are
    dense, every intra-iteration ([distance = 0]) edge points from a
    lower id to a higher one (so the acyclicity {!Hca_ddg.Ddg.Builder}
    checks holds trivially), and every opcode that needs an operand has
    at least one predecessor — which makes every generated kernel
    executable by the {!Hca_sim.Interp} reference semantics, a
    precondition of the simulator cross-check.

    Nothing here reads the wall clock or [Random]: two processes given
    the same seed and knobs build bit-identical instances, which is
    what makes every fuzz verdict replayable verbatim. *)

open Hca_ddg
open Hca_machine

(** Shape knobs of the kernel generator. *)
type ddg_knobs = {
  min_size : int;  (** inclusive, >= 2 *)
  max_size : int;  (** inclusive *)
  mem_ratio : float;  (** probability of a DMA operation per node, [0, 0.5] *)
  const_ratio : float;  (** probability of a fresh constant per node *)
  max_fanout : int;  (** soft cap on intra-iteration out-degree *)
  recurrences : int;  (** loop-carried back edges drawn per kernel *)
  max_distance : int;  (** omega bound of the back edges, >= 1 *)
  opcode_mix : Opcode.t array;  (** ALU palette (all tolerate 1-2 operands) *)
}

val default_ddg_knobs : ddg_knobs
(** 6..24 instructions, 20% memory, 10% constants, fan-out 4, up to two
    loop-carried edges of distance 1..2. *)

(** Shape knobs of the machine generator. *)
type machine_knobs = {
  fanout_choices : int array array;
      (** hierarchy shapes drawn uniformly; every shape needs >= 2
          levels of fan-out >= 2 *)
  min_cap : int;  (** inclusive lower bound on the N/M/K MUX capacities *)
  max_cap : int;
  min_dma : int;  (** inclusive bounds on the shared DMA request ports *)
  max_dma : int;
}

val default_machine_knobs : machine_knobs
(** 4..16 CNs (shapes [2x2], [4x2], [2x2x2], [4x4]), capacities 2..8,
    2..8 DMA ports — small enough for the SAT oracle to certify. *)

(** One differential-fuzzing instance. *)
type instance = { seed : int; ddg : Ddg.t; fabric : Dspfabric.t }

val ddg : ?knobs:ddg_knobs -> seed:int -> unit -> Ddg.t
(** Deterministic in [(knobs, seed)].  The graph always contains at
    least one [Store], so the reference trace is never vacuous.
    @raise Invalid_argument on nonsense knobs. *)

val fabric : ?knobs:machine_knobs -> seed:int -> unit -> Dspfabric.t
(** Deterministic in [(knobs, seed)]; drawn from an independent
    sub-stream of the same seed, so kernel and machine shapes do not
    correlate. *)

val desc :
  ?knobs:machine_knobs ->
  ?hetero:float ->
  seed:int ->
  unit ->
  Machine_desc.t
(** The machine generator behind [hca dse --random]: {!fabric}'s draws
    (same sub-stream — [desc ~hetero:0. ~seed] {e is} [fabric ~seed]),
    then, with probability [hetero] (default 0) per CN, a heterogeneous
    resource table drawn from continued output of the same stream:
    ALU/MUL-heavy ([2a 1g]), pure-compute ([1a 0g]) or memory-heavy
    ([1a 2g]) CNs.  A non-uniform draw renames the description
    ([name ^ "+het"]) so rows stay tellable apart; {!Machine_desc.id}
    separates them regardless.
    @raise Invalid_argument on nonsense knobs or [hetero] outside
    [0, 1]. *)

val instance :
  ?ddg_knobs:ddg_knobs -> ?machine_knobs:machine_knobs -> seed:int -> unit ->
  instance

val fanouts_of : Dspfabric.t -> int array
(** Per-level fan-outs, recovered through {!Dspfabric.level_view} —
    what {!Dspfabric.make} consumed; used by the shrinker and the
    corpus serialiser. *)

val cn_in_wires_of : Dspfabric.t -> int
(** The leaf per-CN incoming-wire count (the [cn_in_wires] of
    {!Dspfabric.make}). *)

val well_formed : Ddg.t -> bool
(** The invariant the generator guarantees and the shrinker preserves:
    every instruction whose opcode consumes an operand
    (everything except [Const] and [Agen]) has at least one
    predecessor, so {!Hca_sim.Semantics.eval} is total on the graph. *)
