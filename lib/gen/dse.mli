(** Design-space exploration over machine descriptions ([hca dse]).

    A sweep takes an ordered list of named machine points (an explicit
    grid, seeded random samples via {!Gen.desc}, or parsed [.machine]
    files), evaluates every (point × kernel) pair with {!Report.run},
    scores each point by its mapped MII across the kernel suite, and
    reports the Pareto front over (score, machine wire cost, CN count)
    — all three minimised.

    Determinism: evaluations fan out onto a {!Hca_util.Domain_pool}
    but results are reassembled in enumeration order, and every figure
    {!to_ndjson} prints is a pure function of (points, kernels, config)
    — no wall clock, no counters that depend on scheduling — so the
    NDJSON is byte-identical at any [jobs].  The Pareto front is
    ordered canonically by (score, wires, CNs, point name), so its
    contents do not depend on the enumeration order either. *)

open Hca_ddg
open Hca_machine
open Hca_core

type point = { pname : string; desc : Machine_desc.t }

type eval = { point : string; kernel : string; report : Report.t }

type summary = {
  point : string;
  machine : string;  (** display name of the description *)
  cns : int;
  machine_wires : int;  (** {!Machine_desc.wire_cost} *)
  score : int option;
      (** sum of final MIIs across the suite; [None] unless every
          kernel mapped legally *)
  legal_kernels : int;
  pareto : bool;
}

type result = {
  evals : eval list;  (** in enumeration order: points major, kernels minor *)
  summaries : summary list;  (** one per point, in enumeration order *)
  front : summary list;
      (** the non-dominated viable points, canonically ordered *)
}

val grid_points :
  ?dma:int list ->
  fanouts:int array list ->
  caps:int list ->
  unit ->
  point list
(** Cross product, enumerated fanouts-major: one {!Dspfabric.make}
    point per (fanout shape, capacity [c] as [N=M=K=c], DMA count).
    [dma] defaults to [[8]].  Point names are derived from the
    coordinates (["g4x4-c8-d8"]), not the position, so reordering the
    space never renames a point.
    @raise Invalid_argument when a dimension is empty or a shape is
    rejected by {!Dspfabric.make}. *)

val random_points :
  ?knobs:Gen.machine_knobs ->
  ?hetero:float ->
  count:int ->
  seed:int ->
  unit ->
  point list
(** [count] points sampled by {!Gen.desc} at seeds [seed .. seed+count-1],
    named ["r<seed>"]. *)

val machine_points : (string * Machine_desc.t) list -> point list
(** Explicit points, e.g. parsed from [.machine] files; the string is
    the point name (typically the file path). *)

val run :
  ?config:Config.t ->
  ?jobs:int ->
  kernels:(string * Ddg.t) list ->
  point list ->
  result
(** Evaluates the full (point × kernel) product.  [jobs] (default 1)
    sizes the pool; each individual evaluation runs at [jobs:1] with
    its own memo cache, so rows are bit-equal to a standalone
    {!Report.run} on that machine.
    @raise Invalid_argument on an empty point or kernel list, or on
    duplicate point names. *)

val non_dominated : (int * int * int) array -> bool array
(** [non_dominated costs].(i) iff no [j] has every component [<=] and
    at least one [<] — the Pareto membership predicate (all axes
    minimised), exposed for the property tests. *)

val to_ndjson : result -> string
(** One row per evaluation (experiment ["dse"], kernel
    ["<point>/<kernel>"], quality fields named as the bench rows:
    [final_mii], [legal], [copies], [wires]) followed by one row per
    point (experiment ["dse_points"]).  Deterministic byte-for-byte at
    any [jobs]. *)

val ranked_table : result -> string
(** Human-readable ranking: viable points by ascending score (ties by
    wires, then CNs), Pareto members starred, unviable points last. *)

val check : result -> (unit, string) Stdlib.result
(** Self-check for the CI gate: the evaluation count matches
    points × kernels, every summary is consistent with its rows, and
    the front is exactly the non-dominated viable set. *)
