type stats = {
  mutable instances : int;
  mutable ok : int;
  mutable infeasible : int;
  mutable failed : int;
  mutable minimized : int;
  mutable oracle_checked : int;
  mutable oracle_skipped : int;
  mutable oracle_optimal : int;
  mutable oracle_matched : int;
  mutable max_gap : int;
  mutable gap_findings : int;
  mutable sim_checked : int;
  mutable sim_skipped : int;
}

let create_stats () =
  {
    instances = 0;
    ok = 0;
    infeasible = 0;
    failed = 0;
    minimized = 0;
    oracle_checked = 0;
    oracle_skipped = 0;
    oracle_optimal = 0;
    oracle_matched = 0;
    max_gap = 0;
    gap_findings = 0;
    sim_checked = 0;
    sim_skipped = 0;
  }

let summary_line s =
  Printf.sprintf
    "fuzzed %d instances: %d ok, %d infeasible, %d failed (%d minimized); \
     oracle %d checked / %d skipped, %d proven optimal, %d matched, max gap \
     %d (%d findings); sim %d checked / %d skipped"
    s.instances s.ok s.infeasible s.failed s.minimized s.oracle_checked
    s.oracle_skipped s.oracle_optimal s.oracle_matched s.max_gap
    s.gap_findings s.sim_checked s.sim_skipped

let run ?(opts = Diff.default_opts) ?ddg_knobs ?machine_knobs
    ?(minimize = false) ?corpus_dir ?gap_threshold ?(verbose = false)
    ?(log = ignore) ~seed ~count () =
  let s = create_stats () in
  for i = seed to seed + count - 1 do
    let inst = Gen.instance ?ddg_knobs ?machine_knobs ~seed:i () in
    let d = Diff.run ~opts inst in
    s.instances <- s.instances + 1;
    (match d.Diff.oracle with
    | Diff.Oracle_checked { achieved; optimum; _ } ->
        s.oracle_checked <- s.oracle_checked + 1;
        (match optimum with
        | Some o ->
            s.oracle_optimal <- s.oracle_optimal + 1;
            if achieved = o then s.oracle_matched <- s.oracle_matched + 1;
            if achieved - o > s.max_gap then s.max_gap <- achieved - o
        | None -> ())
    | Diff.Oracle_skipped _ -> s.oracle_skipped <- s.oracle_skipped + 1);
    (match d.Diff.sim with
    | Diff.Sim_checked _ -> s.sim_checked <- s.sim_checked + 1
    | Diff.Sim_skipped _ -> s.sim_skipped <- s.sim_skipped + 1);
    let failed = d.Diff.failures <> [] in
    let gap_hit =
      match (gap_threshold, Diff.gap d) with
      | Some t, Some g -> g >= t
      | _ -> false
    in
    if failed then s.failed <- s.failed + 1
    else if not d.Diff.feasible then s.infeasible <- s.infeasible + 1
    else s.ok <- s.ok + 1;
    if gap_hit then s.gap_findings <- s.gap_findings + 1;
    if failed || gap_hit then begin
      log (Diff.verdict_line d);
      List.iter
        (fun f -> log (Printf.sprintf "  %s: %s" f.Diff.check f.Diff.detail))
        d.Diff.failures;
      if minimize then begin
        (* Shrink under "the same first check still fails" — or, for a
           pure gap finding, "the proven gap stays at the threshold". *)
        let kind, keep =
          match d.Diff.failures with
          | (f : Diff.failure) :: _ ->
              ( f.Diff.check,
                fun cand ->
                  let dc = Diff.run ~opts cand in
                  List.exists
                    (fun g -> g.Diff.check = f.Diff.check)
                    dc.Diff.failures )
          | [] ->
              let t = Option.get gap_threshold in
              ( "gap",
                fun cand ->
                  match Diff.gap (Diff.run ~opts cand) with
                  | Some g -> g >= t
                  | None -> false )
        in
        let small = Shrink.minimize ~keep inst in
        s.minimized <- s.minimized + 1;
        let md = Diff.run ~opts small in
        log ("  minimized: " ^ Diff.verdict_line md);
        match corpus_dir with
        | None -> ()
        | Some dir ->
            let name = Printf.sprintf "fuzz-seed%d-%s" i kind in
            let expect =
              if kind = "gap" then
                Corpus.Expect_gap (Option.value (Diff.gap md) ~default:0)
              else Corpus.Expect_fail kind
            in
            Corpus.write ~dir ~name small expect;
            log (Printf.sprintf "  wrote %s/%s.{ddg,repro}" dir name)
      end
    end
    else if verbose then log (Diff.verdict_line d)
  done;
  log (summary_line s);
  s

let replay_dir ?opts ?(log = ignore) dir =
  match Corpus.load_dir dir with
  | Error e ->
      log ("corpus load failed: " ^ e);
      (0, 1)
  | Ok entries ->
      List.fold_left
        (fun (total, bad) (entry : Corpus.entry) ->
          match Corpus.replay ?opts entry with
          | Ok line ->
              log (entry.Corpus.name ^ ": " ^ line);
              (total + 1, bad)
          | Error e ->
              log ("MISMATCH " ^ e);
              (total + 1, bad + 1))
        (0, 0) entries
