(** Greedy delta-debugging shrinker for failing fuzz instances.

    Given a predicate [keep] (typically "the same differential check
    still fails"), {!minimize} repeatedly tries smaller candidates and
    keeps the first one the predicate accepts, until none is accepted:

    - machine simplification first — fewer hierarchy levels, fan-outs
      reduced towards 2, then N/M/K/DMA capacities {e relaxed} towards 8
      (a failure surviving on a roomier machine is a deeper bug);
    - then single-node removal ({!Hca_ddg.Ddg.induced} on all-but-one);
    - then single-node {e splicing} — the node disappears and every
      producer->consumer pair through it is bypassed directly, latencies
      and carried distances summed, so chains collapse where plain
      removal would orphan the consumer;
    - then single-edge removal ({!Hca_ddg.Ddg.filter_edges}).

    Every candidate is checked for {!Gen.well_formed} before the
    predicate runs, so the minimum is still executable by the reference
    semantics.  Each accepted step strictly decreases the measure
    [(CNs, levels, nodes, edges, capacity slack)], so the fixpoint
    terminates.  The shrinker calls nothing but [keep] and pure graph
    surgery: determinism is inherited from the predicate. *)

val ddg_candidates : Hca_ddg.Ddg.t -> Hca_ddg.Ddg.t list
(** Well-formed one-step reductions (each candidate removes exactly one
    node or one edge), in the order {!minimize} tries them. *)

val fabric_candidates : Hca_machine.Dspfabric.t -> Hca_machine.Dspfabric.t list
(** One-step machine simplifications/relaxations, in trial order. *)

val minimize : keep:(Gen.instance -> bool) -> Gen.instance -> Gen.instance
(** Greedy fixpoint.  [keep] must accept the initial instance (checked);
    the result still satisfies [keep] and no one-step reduction does. *)
