open Hca_ddg
open Hca_machine

let mii ddg fabric = Mii.mii ddg (Dspfabric.resources fabric)

let gap ddg fabric ~final_mii =
  float_of_int final_mii /. float_of_int (mii ddg fabric)

let optgap ~achieved ~oracle =
  if oracle <= 0 then invalid_arg "Unified.optgap: oracle bound must be positive";
  float_of_int achieved /. float_of_int oracle
