open Hca_ddg
open Hca_machine
open Hca_core

type t = {
  outcome : See.outcome option;
  projected_mii : int option;
  copies : int;
  ii_used : int;
  explored : int;
  runtime_s : float;
  error : string option;
}

let problem_of fabric ddg =
  let cns = Dspfabric.total_cns fabric in
  let leaf =
    Dspfabric.level_view fabric ~level:(Dspfabric.depth fabric - 1)
  in
  let pg =
    Pattern_graph.complete ~name:"flat-K64"
      ~capacities:(Array.make cns Resource.cn)
      ~max_in:leaf.Dspfabric.mux_capacity
  in
  Problem.of_ddg ~name:(Ddg.name ddg ^ ".flat") ~ddg ~pg ()

let run ?(config = Config.default) fabric ddg =
  let t0 = Hca_util.Clock.now () in
  let problem = problem_of fabric ddg in
  let lower = Mii.mii ddg (Dspfabric.resources fabric) in
  let explored = ref 0 in
  let rec climb ii last_error =
    if ii > config.Config.max_ii then (None, last_error)
    else
      match See.solve ~config problem ~ii with
      | Ok outcome ->
          explored := !explored + outcome.See.explored;
          (Some (ii, outcome), None)
      | Error e ->
          (* See counts states even on failure only via outcome; count
             the attempt cheaply as one state. *)
          incr explored;
          climb (ii + 1) (Some e)
  in
  match climb lower None with
  | None, err ->
      {
        outcome = None;
        projected_mii = None;
        copies = 0;
        ii_used = 0;
        explored = !explored;
        runtime_s = Hca_util.Clock.now () -. t0;
        error = err;
      }
  | Some (ii, outcome), _ ->
      let summary = State.summary outcome.See.state ~ii in
      {
        outcome = Some outcome;
        projected_mii = Some summary.Cost.projected_ii;
        copies = summary.Cost.copies;
        ii_used = ii;
        explored = !explored;
        runtime_s = Hca_util.Clock.now () -. t0;
        error = None;
      }

(* Re-check the flat copy flow against the real fabric: at every
   hierarchy level, a node (cluster set or CN) only owns [capacity]
   input wires, each tied to a single source.  A flat assignment that
   needs more distinct in-neighbours than that is not implementable. *)
let hierarchy_violations fabric outcome =
  let flow = State.flow outcome.See.state in
  let pg = Copy_flow.pg flow in
  let cns = Pattern_graph.size pg in
  let depth = Dspfabric.depth fabric in
  (* Group CN -> enclosing node index at each level: level l nodes are
     groups of cns_per_child CNs. *)
  let violations = ref 0 in
  for level = 0 to depth - 1 do
    let view = Dspfabric.level_view fabric ~level in
    let group_size = view.Dspfabric.cns_per_child in
    let groups = cns / group_size in
    let in_sets = Array.make groups [] in
    for src = 0 to cns - 1 do
      List.iter
        (fun dst ->
          let gs = src / group_size and gd = dst / group_size in
          if gs <> gd && not (List.mem gs in_sets.(gd)) then
            in_sets.(gd) <- gs :: in_sets.(gd))
        (Copy_flow.real_out_neighbors flow src)
    done;
    let cap = view.Dspfabric.mux_capacity in
    Array.iter
      (fun sources ->
        let overflow = List.length sources - cap in
        if overflow > 0 then violations := !violations + overflow)
      in_sets
  done;
  !violations
