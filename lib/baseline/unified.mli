(** The "theoretical optimum computed on an equivalent issue width
    unified bank machine" against which §5 compares the final MII: the
    MII of the kernel on a single cluster holding all 64 CNs worth of
    functional units with a zero-cost register file — no inter-cluster
    copies, no wires, no receive primitives. *)

open Hca_ddg
open Hca_machine

val mii : Ddg.t -> Dspfabric.t -> int
(** [max (rec_mii, res_mii)] with the whole machine's resources pooled. *)

val gap : Ddg.t -> Dspfabric.t -> final_mii:int -> float
(** [final_mii / optimum]: 1.0 means the clusterisation is as good as
    the unified machine. *)

val optgap : achieved:int -> oracle:int -> float
(** [achieved / oracle]: the heuristic-vs-exact ratio of the [optgap]
    comparison tables, where [oracle] is an {!Hca_exact.Oracle} bound
    (proven optimum, or certified lower bound — then the ratio is an
    upper bound on the true gap).  Unlike {!gap}, the denominator
    accounts for copy pressure, not just the unified-machine MII. *)
