(** Name-indexed access to the benchmark kernels, for the CLI, the
    benches and the examples. *)

val all : (string * (unit -> Hca_ddg.Ddg.t)) list
(** The four Table-1 loops, in paper order. *)

val extended : (string * (unit -> Hca_ddg.Ddg.t)) list
(** Every kernel: the Table-1 loops followed by {!Extended.all}. *)

val find : string -> (unit -> Hca_ddg.Ddg.t) option
(** Looks through {!extended}. *)

val names : string list
(** Table-1 names only. *)

val extended_names : string list

val sorted : string list
(** Every findable kernel name (Table-1 and extended), alphabetically —
    what user-facing listings and error messages should print. *)
