let all =
  [
    ("fir2dim", Fir2dim.ddg);
    ("idcthor", Idcthor.ddg);
    ("mpeg2inter", Mpeg2inter.ddg);
    ("h264deblocking", H264deblock.ddg);
  ]

let extended = all @ Extended.all

let find name = List.assoc_opt name extended

let names = List.map fst all

let extended_names = List.map fst extended

let sorted = List.sort compare extended_names
