open Hca_ddg

type value = int32

(* splitmix-style scramble, cheap and stable across runs *)
let scramble x =
  let x = Int32.mul (Int32.logxor x (Int32.shift_right_logical x 15)) 0x2c1b3c6dl in
  let x = Int32.mul (Int32.logxor x (Int32.shift_right_logical x 12)) 0x297a2d39l in
  Int32.logxor x (Int32.shift_right_logical x 15)

let load_image addr = scramble (Int32.add addr 0x9e37l)

let initial id = scramble (Int32.of_int (id + 0x51ed))

let clip v = if v < 0l then 0l else if v > 255l then 255l else v

let bool_of v = if v <> 0l then 1l else 0l

let eval op args =
  let unary f = match args with
    | a :: _ -> f a
    | [] -> invalid_arg ("Semantics.eval: arity of " ^ Opcode.mnemonic op)
  in
  (* Fold over however many operands the dependence edges supply: the
     hand-written kernels use exact arities, the synthetic generator
     wires 1..2 operands freely. *)
  let binary f = match args with
    | [] -> invalid_arg ("Semantics.eval: arity of " ^ Opcode.mnemonic op)
    | a :: rest -> List.fold_left f a rest
  in
  match op with
  | Opcode.Add -> (
      (* Inductions and accumulators appear as 1-ary adds; wider adds
         fold like every other associative opcode (loop-carried edges
         can land extra operands on any node). *)
      match args with
      | [ a ] -> Int32.add a 1l
      | a :: rest -> List.fold_left Int32.add a rest
      | [] -> invalid_arg "Semantics.eval: arity of add")
  | Opcode.Sub -> binary Int32.sub
  | Opcode.Mul -> binary Int32.mul
  | Opcode.Mac -> (
      match args with
      | a :: b :: c :: _ -> Int32.add a (Int32.mul b c)
      | [ a; b ] -> Int32.mul a b
      | [ a ] -> a
      | [] -> invalid_arg "Semantics.eval: arity of mac")
  | Opcode.Shl -> unary (fun a -> Int32.shift_left a 2)
  | Opcode.Shr -> unary (fun a -> Int32.shift_right a 3)
  | Opcode.And_ -> binary Int32.logand
  | Opcode.Or_ -> binary Int32.logor
  | Opcode.Xor -> binary Int32.logxor
  | Opcode.Min -> binary min
  | Opcode.Max -> binary max
  | Opcode.Abs -> unary Int32.abs
  | Opcode.Clip -> unary clip
  | Opcode.Cmp -> (
      match args with
      | a :: b :: _ -> if a < b then 1l else 0l
      | [ a ] -> if a < 0l then 1l else 0l
      | [] -> invalid_arg "Semantics.eval: arity of cmp")
  | Opcode.Sel -> (
      match args with
      | c :: a :: b :: _ -> if bool_of c = 1l then a else b
      | [ c; a ] -> if bool_of c = 1l then a else 0l
      | [ a ] -> a
      | [] -> invalid_arg "Semantics.eval: arity of sel")
  | Opcode.Mov | Opcode.Recv -> unary Fun.id
  | Opcode.Const k -> Int32.of_int k
  | Opcode.Agen -> (
      match args with
      | [] -> 0l
      | a :: rest -> List.fold_left Int32.add a rest)
  | Opcode.Load -> unary (fun addr -> load_image addr)
  | Opcode.Store -> (
      match args with
      | [ v ] -> v
      | _addr :: v :: _ -> v
      | [] -> invalid_arg "Semantics.eval: arity of store")
