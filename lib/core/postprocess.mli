(** The post-processing pass that closes HCA (§4.1): "Each DDG node is
    assigned to a CN and receive primitives are added as new DDG nodes,
    which perform the migration of the operands between different CNs."

    The expanded DDG is what the modulo scheduler consumes: every
    inter-CN dependence is split through an explicit [Recv] on the
    consumer's CN (one per value, destination and carried distance,
    shared by all its consumers there), and every value the Route
    Allocator detoured gets its forwarding [Mov] on the intermediate
    CN.  Transport latency {e and} the loop-carried distance are
    charged on the producer->receive edge — keeping the distance on the
    transport side is what preserves the pre-loop initial values of the
    reference semantics — one extra cycle per hierarchy level the value
    crosses upward and downward. *)

open Hca_ddg

type t = {
  ddg : Ddg.t;  (** original instructions first, then movs, then recvs *)
  cn_of_node : int array;  (** absolute CN per node of [ddg] *)
  recv_count : int;
  forward_count : int;
}

val expand : Hierarchy.t -> t

val hop_distance : Hierarchy.t -> src_cn:int -> dst_cn:int -> int
(** Wire hops between two CNs: 0 on the same CN, otherwise twice the
    tree distance to the lowest common cluster set minus one. *)

val issue_load : t -> int array
(** Per-CN issue-slot demand of the expanded DDG: the per-cluster MII
    contribution the paper's maxClsMII measures. *)

val validate : t -> Hierarchy.t -> (unit, string) result
(** Structural checks: every original edge either stays intra-CN or is
    rerouted through exactly one receive on the consumer's CN. *)
