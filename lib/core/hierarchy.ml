open Hca_ddg
open Hca_machine

type subresult = {
  path : int list;
  problem : Problem.t;
  outcome : See.outcome;
  state : State.t;
      (* the committed solution: [outcome.state] or one of its
         alternatives when inter-level backtracking stepped in *)
  mapres : Mapper.result;
  children : subresult option array;
}

type t = {
  fabric : Dspfabric.t;
  ddg : Ddg.t;
  ii : int;
  root : subresult;
  cn_of_instr : int array;
  forwards : (Instr.id * int) list;
  explored : int;
  routed : int;
}

let ( let* ) = Result.bind

(* {1 Cross-probe subproblem memoization}

   A subproblem's result is a pure function of its identity: the level
   and path fix the PG shape, the working set and ILI fix the problem
   instance, and the capacity window / target II / configuration fix the
   search.  The driver re-solves identical subproblems whenever
   inter-level backtracking walks the beam alternatives of a parent:
   sibling subtrees whose (working set, ILI) did not change between two
   alternatives are recomputed verbatim.  The cache short-circuits those
   recomputations.

   Bit-identity: a hit returns the very result the miss computed, and
   replays the explored/routed deltas the original computation charged,
   so every aggregate of a memoised run equals the memo-off run. *)

type stats = {
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable reused_subproblems : int;
}

let create_stats () =
  { cache_hits = 0; cache_misses = 0; reused_subproblems = 0 }

type key = {
  k_kernel : string;
  k_machine : string;
  k_level : int;
  k_path : int list;
  k_ws : int list;
  k_ili : Ili.t;
  k_ii : int;
  k_target_ii : int;
  k_config : Config.t;
      (* the configuration verbatim, not a fingerprint: lookups compare
         structurally, so distinct configurations can never collide *)
}

type entry = {
  e_res : (subresult, string) result;
  e_explored : int;  (* explored-states delta the computation charged *)
  e_routed : int;
  e_subproblems : int;  (* subtree size, 1 for a failed subproblem *)
}

(* Lock-striped so concurrent II probes ([Report.run ~jobs]) can share
   one cache: keys embed the II, so probes never race on the same key —
   the stripes only serialise physical table access. *)
type cache = (Mutex.t * (key, entry) Hashtbl.t) array

let stripes = 16

let create_cache () =
  Array.init stripes (fun _ -> (Mutex.create (), Hashtbl.create 64))

let stripe_of (cache : cache) key = cache.(Hashtbl.hash key land (stripes - 1))

(* A snapshot is the cache's payload without its mutexes: plain data end
   to end (the solver's records hold no closures), so [Marshal] can ship
   it to disk and a warm restart rebuilds an equivalent cache. *)
type snapshot = (key * entry) array

let snapshot (cache : cache) : snapshot =
  let acc = ref [] in
  Array.iter
    (fun (m, tbl) ->
      Mutex.lock m;
      Hashtbl.iter (fun k e -> acc := (k, e) :: !acc) tbl;
      Mutex.unlock m)
    cache;
  Array.of_list !acc

let snapshot_length (s : snapshot) = Array.length s

let cache_length (cache : cache) =
  Array.fold_left (fun acc (_, tbl) -> acc + Hashtbl.length tbl) 0 cache

let cache_find cache key =
  let m, tbl = stripe_of cache key in
  Mutex.lock m;
  let r = Hashtbl.find_opt tbl key in
  Mutex.unlock m;
  r

let cache_store cache key entry =
  let m, tbl = stripe_of cache key in
  Mutex.lock m;
  if not (Hashtbl.mem tbl key) then Hashtbl.replace tbl key entry;
  Mutex.unlock m

let restore (s : snapshot) : cache =
  let cache = create_cache () in
  Array.iter (fun (k, e) -> cache_store cache k e) s;
  cache

let rec count_subresults sub =
  Array.fold_left
    (fun acc c -> match c with None -> acc | Some s -> acc + count_subresults s)
    1 sub.children

let path_name path =
  match path with
  | [] -> "0"
  | _ -> "0," ^ String.concat "," (List.map string_of_int path)

(* Absolute CN index of child [j] of the subproblem at [path]: the
   mixed-radix number written by the nesting indexes. *)
let absolute_cn fabric path j =
  let children level = (Dspfabric.level_view fabric ~level).Dspfabric.children in
  let rec go acc level = function
    | [] -> acc
    | i :: rest -> go ((acc * children level) + i) (level + 1) rest
  in
  (go 0 0 path * children (List.length path)) + j

let take n l =
  let rec go n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: tl -> x :: go (n - 1) tl
  in
  go n l

let solve ?(config = Config.default) ?target_ii ?cache ?stats fabric ddg ~ii =
  Hca_obs.Obs.span "hierarchy.solve"
    ~args:[ ("kernel", Ddg.name ddg); ("ii", string_of_int ii) ]
  @@ fun () ->
  let target_ii = Option.value ~default:ii target_ii in
  let explored = ref 0 and routed = ref 0 in
  let rec solve_sub ~level ~path ~ws ~ili =
    match cache with
    | None -> compute_sub ~level ~path ~ws ~ili
    | Some cache -> (
        let key =
          {
            k_kernel = Ddg.name ddg;
            (* Total identity: the cache may outlive this run and meet
               fabrics [Dspfabric.name] cannot tell apart (same N/M/K,
               different fan-outs or port counts). *)
            k_machine = Dspfabric.id fabric;
            k_level = level;
            k_path = path;
            k_ws = ws;
            k_ili = ili;
            k_ii = ii;
            k_target_ii = target_ii;
            k_config = config;
          }
        in
        match cache_find cache key with
        | Some e ->
            (match stats with
            | Some s ->
                s.cache_hits <- s.cache_hits + 1;
                s.reused_subproblems <- s.reused_subproblems + e.e_subproblems
            | None -> ());
            Hca_obs.Obs.count "memo.hit" 1;
            if Hca_obs.Obs.enabled () then
              Hca_obs.Obs.instant "memo.hit"
                ~args:[ ("path", path_name path) ];
            explored := !explored + e.e_explored;
            routed := !routed + e.e_routed;
            e.e_res
        | None ->
            (match stats with
            | Some s -> s.cache_misses <- s.cache_misses + 1
            | None -> ());
            Hca_obs.Obs.count "memo.miss" 1;
            let x0 = !explored and r0 = !routed in
            let res = compute_sub ~level ~path ~ws ~ili in
            let e_subproblems =
              match res with Ok sub -> count_subresults sub | Error _ -> 1
            in
            cache_store cache key
              {
                e_res = res;
                e_explored = !explored - x0;
                e_routed = !routed - r0;
                e_subproblems;
              };
            res)
  and compute_sub ~level ~path ~ws ~ili =
    (* One span per solved subproblem, one track level per hierarchy
       level; memo hits skip this entirely (they cost no search). *)
    if not (Hca_obs.Obs.enabled ()) then compute_sub_body ~level ~path ~ws ~ili
    else
      Hca_obs.Obs.span
        ("subproblem.L" ^ string_of_int level)
        ~args:
          [ ("path", path_name path);
            ("ws", string_of_int (List.length ws)) ]
        (fun () -> compute_sub_body ~level ~path ~ws ~ili)
  and compute_sub_body ~level ~path ~ws ~ili =
    let view = Dspfabric.level_view fabric ~level in
    (* Per-child resource tables at this node: uniform machines get the
       same [cns_per_child * Resource.cn] in every slot; heterogeneous
       descriptions differ per child. *)
    let child_caps = Dspfabric.child_capacities fabric ~path in
    let name = path_name path in
    (* Every wire into a child burns one of the child's own input
       slots at the next level down, so stay well under the MUX
       capacity at every set level. *)
    let max_in =
      if view.Dspfabric.is_leaf then view.Dspfabric.mux_capacity
      else min view.Dspfabric.mux_capacity config.Config.leaf_feed_fanin_cap
    in
    let pg_base =
      Pattern_graph.complete ~name ~capacities:child_caps ~max_in
    in
    let pg =
      Pattern_graph.with_ports pg_base ~inputs:ili.Ili.inputs
        ~outputs:ili.Ili.outputs
    in
    let* problem =
      Problem.of_working_set ~name ~ddg ~ws ~pg
        ~max_in_ports:view.Dspfabric.max_in_ports ()
    in
    (* Planned topology backbone: greedy assignment deadlocks when the
       scarce input slots fill before every father wire has a landing
       point, so (i) every input port gets one pre-committed delivery
       arc, round-robin over the clusters, and (ii) the leftover slots
       close a ring between the clusters so any value can still reach
       any cluster by forwarding.  Reservations only shape the search:
       unused ones cost nothing at mapping time. *)
    let backbone =
      let c = view.Dspfabric.children in
      let slots = Array.make c max_in in
      let arcs = ref [] in
      List.iteri
        (fun j (nd : Pattern_graph.node) ->
          let ch = j mod c in
          if slots.(ch) > 0 then begin
            arcs := (nd.Pattern_graph.id, ch) :: !arcs;
            slots.(ch) <- slots.(ch) - 1
          end)
        (Pattern_graph.in_ports pg);
      for i = 0 to c - 1 do
        if slots.(i) > 0 then begin
          arcs := ((i + 1) mod c, i) :: !arcs;
          slots.(i) <- slots.(i) - 1
        end
      done;
      !arcs
    in
    (* Set levels keep ~20% issue headroom: the levels below will add
       receive and forwarding operations this level cannot see, and a
       cluster filled to the brim leaves them nowhere to go.  Never
       below what the working set strictly needs, though. *)
    let see_ii =
      if view.Dspfabric.is_leaf then ii
      else begin
        let demand = Resource.demand ddg ws in
        let capacity =
          Array.fold_left Resource.add Resource.zero child_caps
        in
        let floor_ii =
          (Resource.min_ii ~demand ~capacity + 1) |> min ii
        in
        max floor_ii (ii * 4 / 5)
      end
    in
    let* outcome = See.solve ~config ~target_ii ~backbone problem ~ii:see_ii in
    explored := !explored + outcome.See.explored;
    routed := !routed + outcome.See.routed;
    (* Wires made here become input ports of the children; packing them
       is the default ([mapper_spread = false]). *)
    let consolidate = not config.Config.mapper_spread in
    (* A set-level wire's payload funnels through one child cluster
       downstream, one emission slot per value — cap it at the II.  The
       leaf CN's single wire is exempt (its issue budget already bounds
       what it can emit). *)
    let wire_cap = if view.Dspfabric.is_leaf then max_int else ii in
    (* Colour the values by producer regions sized to the grandchild
       clusters this level's wires funnel into. *)
    let color =
      if view.Dspfabric.is_leaf then None
      else begin
        let grandchild_cns =
          (Dspfabric.level_view fabric ~level:(level + 1)).Dspfabric.cns_per_child
        in
        let in_ws = Hashtbl.create (List.length ws) in
        List.iter (fun g -> Hashtbl.replace in_ws g ()) ws;
        let regions =
          Regions.partition_ddg ddg ~members:ws
            ~capacity:(max 1 (grandchild_cns * ii * 4 / 5))
        in
        Some
          (fun v ->
            if Hashtbl.mem in_ws v then regions v
            else
              (* Pass-through value produced outside this working set:
                 keep it alone on its wire. *)
              1_000_000 + v)
      end
    in
    (* A leaf quad has 4 CNs x 2 input wires, half of them pinned to the
       ring backbone: feeding it more than 4 distinct wires could never
       be hooked up, so the leaf-feeding mapper works with the reduced
       budget. *)
    let feeds_leaves =
      (not view.Dspfabric.is_leaf)
      && (Dspfabric.level_view fabric ~level:(level + 1)).Dspfabric.is_leaf
    in
    let in_capacity =
      if feeds_leaves then min view.Dspfabric.mux_capacity 4
      else view.Dspfabric.mux_capacity
    in
    let commit st =
      let* mapres =
        Result.map_error
          (fun m -> Printf.sprintf "%s: mapper: %s" name m)
          (Mapper.map ~consolidate ~wire_cap ?color ~problem ~state:st
             ~in_capacity ~out_capacity:view.Dspfabric.out_capacity ())
      in
      let children = Array.make view.Dspfabric.children None in
      if view.Dspfabric.is_leaf then
        Ok { path; problem; outcome; state = st; mapres; children }
      else begin
        let ws_of_child = Array.make view.Dspfabric.children [] in
        Array.iter
          (fun (nd : Problem.node) ->
            match (nd.Problem.global, State.placement st nd.Problem.id) with
            | Some g, Some c when Pattern_graph.is_regular pg c ->
                ws_of_child.(c) <- g :: ws_of_child.(c)
            | _ -> ())
          (Problem.nodes problem);
        let rec spawn i =
          if i >= view.Dspfabric.children then Ok ()
          else
            let child_ws = List.rev ws_of_child.(i) in
            let child_ili = mapres.Mapper.child_ilis.(i) in
            if child_ws = [] && Ili.is_empty child_ili then spawn (i + 1)
            else
              let* sub =
                solve_sub ~level:(level + 1) ~path:(path @ [ i ]) ~ws:child_ws
                  ~ili:child_ili
              in
              children.(i) <- Some sub;
              spawn (i + 1)
        in
        let* () = spawn 0 in
        Ok { path; problem; outcome; state = st; mapres; children }
      end
    in
    (* Inter-level backtracking: when the best partial solution's
       subtree fails, fall back on the surviving beam alternatives. *)
    let candidates =
      take config.Config.max_alternatives
        (outcome.See.state :: outcome.See.alternatives)
    in
    let rec try_states last_error = function
      | [] -> Error (Option.value ~default:(name ^ ": no states") last_error)
      | st :: rest -> (
          match commit st with
          | Ok sub -> Ok sub
          | Error e -> try_states (Some e) rest)
    in
    try_states None candidates
  in
  let ws = List.init (Ddg.size ddg) (fun i -> i) in
  let* root = solve_sub ~level:0 ~path:[] ~ws ~ili:Ili.empty in
  (* Harvest the leaf placements from the committed tree. *)
  let cn_of_instr = Array.make (Ddg.size ddg) (-1) in
  let forwards = ref [] in
  let depth = Dspfabric.depth fabric in
  let rec harvest sub =
    if List.length sub.path = depth - 1 then begin
      Array.iter
        (fun (nd : Problem.node) ->
          match (nd.Problem.pinned, State.placement sub.state nd.Problem.id) with
          | Some _, _ -> ()
          | None, None -> assert false (* the SEE returned a complete state *)
          | None, Some cn -> (
              let abs = absolute_cn fabric sub.path cn in
              match nd.Problem.global with
              | Some g -> cn_of_instr.(g) <- abs
              | None -> forwards := (nd.Problem.value, abs) :: !forwards))
        (Problem.nodes sub.problem);
      List.iter
        (fun (value, via) ->
          forwards := (value, absolute_cn fabric sub.path via) :: !forwards)
        (State.forwards sub.state)
    end
    else
      Array.iter
        (function None -> () | Some c -> harvest c)
        sub.children
  in
  harvest root;
  let missing = ref [] in
  Array.iteri (fun g cn -> if cn < 0 then missing := g :: !missing) cn_of_instr;
  match !missing with
  | _ :: _ ->
      Error
        (Printf.sprintf "instructions never reached a CN: [%s]"
           (String.concat "," (List.rev_map string_of_int !missing)))
  | [] ->
      Ok
        {
          fabric;
          ddg;
          ii;
          root;
          cn_of_instr;
          forwards = !forwards;
          explored = !explored;
          routed = !routed;
        }

let subresults t =
  let rec walk sub acc =
    sub
    :: Array.fold_left
         (fun acc child ->
           match child with None -> acc | Some c -> walk c acc)
         acc sub.children
  in
  walk t.root []

let leaf_of_path t path =
  let rec go sub = function
    | [] -> Some sub
    | i :: rest -> (
        if i < 0 || i >= Array.length sub.children then None
        else match sub.children.(i) with None -> None | Some c -> go c rest)
  in
  go t.root path

let cn_count t cn =
  let ops =
    Array.fold_left (fun acc c -> if c = cn then acc + 1 else acc) 0 t.cn_of_instr
  in
  ops + List.length (List.filter (fun (_, c) -> c = cn) t.forwards)

(* A CN receives one value per copy entering it in its leaf problem's
   flow (from sibling CNs and from the wires coming down the
   hierarchy). *)
let recv_count t cn =
  let path_of_cn =
    let rec go cn level acc =
      if level < 0 then acc
      else
        let view = Dspfabric.level_view t.fabric ~level in
        go (cn / view.Dspfabric.children) (level - 1)
          ((cn mod view.Dspfabric.children) :: acc)
    in
    go cn (Dspfabric.depth t.fabric - 1) []
  in
  match path_of_cn with
  | [] -> 0
  | _ -> (
      let leaf_path =
        List.filteri (fun i _ -> i < List.length path_of_cn - 1) path_of_cn
      in
      let local = List.nth path_of_cn (List.length path_of_cn - 1) in
      match leaf_of_path t leaf_path with
      | None -> 0
      | Some leaf -> Copy_flow.in_pressure (State.flow leaf.state) local)

let pp ppf t =
  Format.fprintf ppf
    "@[<v>HCA on %s, kernel %s, II=%d: %d instrs on %d CNs, %d forwards, %d \
     states explored@]"
    (Dspfabric.name t.fabric) (Ddg.name t.ddg) t.ii (Ddg.size t.ddg)
    (Dspfabric.total_cns t.fabric)
    (List.length t.forwards)
    t.explored
