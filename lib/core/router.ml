open Hca_machine

(* Breadth-first search over the PG for a shortest detour whose arcs are
   all individually addable in the current flow.  On a simple path every
   node is the destination of exactly one new arc, so individual
   addability implies joint addability (the in-neighbour and in-port
   budgets are per-destination). *)
let find_path state ~src ~dst ~ii ~max_hops =
  let flow = State.flow state in
  let pg = Copy_flow.pg flow in
  let n = Pattern_graph.size pg in
  let hop_ok via =
    (* An intermediate cluster spends one ALU slot re-emitting. *)
    Pattern_graph.is_regular pg via
    &&
    let cap = (Pattern_graph.node pg via).Pattern_graph.capacity in
    let d = State.demand state via in
    Resource.fits
      ~demand:(Resource.add d { Resource.alus = 1; ags = 0 })
      ~capacity:cap ~ii
  in
  let prev = Array.make n (-2) in
  prev.(src) <- -1;
  let q = Queue.create () in
  Queue.push (src, 0) q;
  let found = ref false in
  while (not !found) && not (Queue.is_empty q) do
    let u, hops = Queue.pop q in
    if hops < max_hops then
      List.iter
        (fun v ->
          if (not !found) && prev.(v) = -2 && Copy_flow.can_add flow ~src:u ~dst:v
          then
            if v = dst then begin
              prev.(v) <- u;
              found := true
            end
            else if hop_ok v then begin
              prev.(v) <- u;
              Queue.push (v, hops + 1) q
            end)
        (Pattern_graph.potential_succs pg u)
  done;
  if not !found then None
  else begin
    let rec build v acc = if v = src then src :: acc else build prev.(v) (v :: acc) in
    Some (build dst [])
  end

let route_value state ~value ~src ~dst ~ii ~max_hops =
  match find_path state ~src ~dst ~ii ~max_hops with
  | None -> false
  | Some path ->
      let flow = State.flow state in
      let rec commit = function
        | a :: (b :: _ as rest) ->
            Copy_flow.add_copy flow ~src:a ~dst:b value;
            if b <> dst then State.add_forward state ~value ~via:b;
            commit rest
        | [ _ ] | [] -> ()
      in
      commit path;
      true

let assign_routed state ~node ~cluster ~ii ~target_ii ~weights ~max_hops =
  match State.force_assign state ~node ~cluster ~ii with
  | Error _ as e -> e
  | Ok (state', blocked) ->
      let ok =
        List.for_all
          (fun (value, src, dst) ->
            route_value state' ~value ~src ~dst ~ii ~max_hops)
          blocked
      in
      if ok then begin
        State.recompute_cost state' ~target_ii ~weights;
        Ok state'
      end
      else Error "route allocator: no feasible detour"

let assign_with_routing state ~node ~cluster ~ii ~target_ii ~weights ~max_hops
    =
  Hca_obs.Obs.count "router.attempt" 1;
  Hca_obs.Obs.span "router.route" (fun () ->
      assign_routed state ~node ~cluster ~ii ~target_ii ~weights ~max_hops)
