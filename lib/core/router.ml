open Hca_machine

(* Breadth-first search over the PG for a shortest detour whose arcs are
   all individually addable in the current flow.  On a simple path every
   node is the destination of exactly one new arc, so individual
   addability implies joint addability (the in-neighbour and in-port
   budgets are per-destination). *)
(* Per-domain BFS scratch, reused across every [find_path] call: the
   search runs once per blocked value of every no-candidate fallback —
   tens of thousands of times per kernel — so it must not allocate its
   frontier.  [find_path] runs to completion with no reentrant calls,
   so one scratch per domain suffices. *)
type bfs_scratch = {
  mutable bn : int;
  mutable prev : int array;
  mutable q_node : int array;
  mutable q_hops : int array;
}

let bfs_scratch : bfs_scratch Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { bn = 0; prev = [||]; q_node = [||]; q_hops = [||] })

let get_bfs_scratch n =
  let s = Domain.DLS.get bfs_scratch in
  if s.bn < n then begin
    s.bn <- n;
    s.prev <- Array.make n (-2);
    s.q_node <- Array.make n 0;
    s.q_hops <- Array.make n 0
  end;
  Array.fill s.prev 0 n (-2);
  s

let find_path state ~src ~dst ~ii ~max_hops =
  let flow = State.flow state in
  let pg = Copy_flow.pg flow in
  let n = Pattern_graph.size pg in
  (* Flat FIFO: every node is enqueued at most once (the [prev] guard),
     so two int arrays replace the boxed-pair Queue, and the
     hop-feasibility test reads the state's flat demand/capacity arrays
     ([State.can_host_forward]) instead of building Resource records
     per visited node. *)
  let s = get_bfs_scratch n in
  let prev = s.prev in
  let q_node = s.q_node in
  let q_hops = s.q_hops in
  prev.(src) <- -1;
  q_node.(0) <- src;
  let head = ref 0 and tail = ref 1 in
  let found = ref false in
  while (not !found) && !head < !tail do
    let u = q_node.(!head) in
    let hops = q_hops.(!head) in
    incr head;
    if hops < max_hops then begin
      (* Potential successors straight off the flow's compact per-node
         arc arrays (ascending dst — the [potential_succs] order), so
         the scan allocates nothing. *)
      let deg = Copy_flow.out_arc_count flow u in
      let k = ref 0 in
      while (not !found) && !k < deg do
        let v = Copy_flow.out_arc_dst flow u !k in
        if prev.(v) = -2 && Copy_flow.can_add_out flow u !k then
          if v = dst then begin
            prev.(v) <- u;
            found := true
          end
          else if State.can_host_forward state ~via:v ~ii then begin
            (* An intermediate cluster spends one ALU slot re-emitting. *)
            prev.(v) <- u;
            q_node.(!tail) <- v;
            q_hops.(!tail) <- hops + 1;
            incr tail
          end;
        incr k
      done
    end
  done;
  if not !found then None
  else begin
    let rec build v acc = if v = src then src :: acc else build prev.(v) (v :: acc) in
    Some (build dst [])
  end

let route_value state ~value ~src ~dst ~ii ~max_hops =
  match find_path state ~src ~dst ~ii ~max_hops with
  | None -> false
  | Some path ->
      let flow = State.flow state in
      let rec commit = function
        | a :: (b :: _ as rest) ->
            Copy_flow.add_copy flow ~src:a ~dst:b value;
            if b <> dst then State.add_forward state ~value ~via:b;
            commit rest
        | [ _ ] | [] -> ()
      in
      commit path;
      true

(* Feasibility first, clone second: the attempt runs on the input
   state's undo trail ([State.probe_force] + detour routing in place),
   and only a successful probe pays a clone — [State.commit_probe]
   snapshots the probed state (bit-identical to replaying the attempt
   on a [force_assign] clone, which is how this worked before) and the
   trail then rewinds the input state either way.  The ~80% of
   fallback attempts with no feasible detour allocate no clone at
   all. *)
let assign_routed state ~node ~cluster ~ii ~target_ii ~weights ~max_hops =
  match State.probe_force state ~node ~cluster ~ii with
  | Error _ as e -> e
  | Ok blocked ->
      let ok =
        List.for_all
          (fun (value, src, dst) ->
            route_value state ~value ~src ~dst ~ii ~max_hops)
          blocked
      in
      let result =
        if ok then Ok (State.commit_probe state ~target_ii ~weights)
        else Error "route allocator: no feasible detour"
      in
      State.abort_force state;
      result

let assign_with_routing state ~node ~cluster ~ii ~target_ii ~weights ~max_hops
    =
  Hca_obs.Obs.count "router.attempt" 1;
  Hca_obs.Obs.span "router.route" (fun () ->
      assign_routed state ~node ~cluster ~ii ~target_ii ~weights ~max_hops)

