(** The top-level HCA entry point: the initiation-interval search loop
    around {!Hierarchy.solve}, plus the record the benches print as the
    rows of Table 1.

    The driver starts at the theoretical lower bound
    [iniMII = max (MIIRec, MIIRes)] and climbs until a legal
    clusterisation exists; it then explores [ii_patience] further II
    values, because a little extra slack sometimes lets the SEE pack
    with fewer copies and a smaller {e final} MII, and keeps the best
    legal result. *)

open Hca_ddg
open Hca_machine

(** Calling-domain allocation accounting, shared by {!run} and the
    exact oracle: [Gc.allocated_bytes] / minor-collection deltas since
    {!Alloc_meter.start}.  Per-domain in OCaml 5 — at [jobs > 1] worker
    churn is invisible; compare like with like at [--jobs 1]. *)
module Alloc_meter : sig
  type meter

  val start : unit -> meter

  val mb : meter -> float
  (** MB allocated on this domain since [start]. *)

  val minor_gcs : meter -> int
  (** Minor collections on this domain since [start]. *)
end

type t = {
  kernel : string;
  machine : string;
  n_instr : int;
  mii_rec : int;
  mii_res : int;
  ini_mii : int;
  legal : bool;
  final_mii : int option;  (** [None] when no II up to the limit worked *)
  ii_used : int;
  copies : int;
  forwards : int;
  max_wire_load : int;
  explored_states : int;
  routed_moves : int;
  cache_hits : int;
      (** subproblem memo hits across the attempts of the sequential
          climb + patience walk (speculative probes excluded, so the
          figure is identical at every [jobs]) *)
  cache_misses : int;
  reused_subproblems : int;
      (** subproblems short-circuited transitively by the hits *)
  memo_enabled : bool;
      (** whether the run carried a memo cache at all — lets consumers
          (and {!pp}) distinguish "memo on, zero hits" from "memo off" *)
  timed_out : bool;
      (** the [deadline_s] budget expired mid-search: the row carries
          the best result found before the cut-off (possibly none) —
          a structured [Deadline_exceeded] signal, not a silent
          truncation.  Always [false] without a deadline. *)
  runtime_s : float;  (** wall-clock seconds spent in the whole search *)
  alloc_mb : float;
      (** MB allocated on the calling domain's OCaml heap during the
          search ({!Gc.allocated_bytes} delta): the churn figure the
          data-layout work optimises.  At [jobs > 1] the worker domains'
          allocation is not included — compare like with like at
          [--jobs 1]. *)
  minor_gcs : int;
      (** minor collections triggered on the calling domain during the
          search (same caveat as {!field-alloc_mb}) *)
  error : string option;
  result : Hierarchy.t option;  (** the winning assignment, for inspection *)
}

val run :
  ?config:Config.t ->
  ?jobs:int ->
  ?memo:bool ->
  ?cache:Hierarchy.cache ->
  ?deadline_s:float ->
  Dspfabric.t ->
  Ddg.t ->
  t
(** [jobs] (default 1) sizes the domain pool used to probe candidate
    IIs.  The climb evaluates [jobs] consecutive IIs speculatively per
    round and still commits to the lowest feasible one; the probes past
    it are reused as the patience attempts.  Results — including the
    [explored_states]/[routed_moves] totals — are identical at every
    [jobs]; only the wall clock changes.

    [memo] (default [true]) shares one {!Hierarchy.cache} across the II
    attempts, short-circuiting subproblems that inter-level
    backtracking would re-solve verbatim.  Every field except
    [runtime_s] is bit-identical with the memo on or off (property
    tested).

    [cache] substitutes a caller-owned cache for the per-run one (only
    meaningful with [memo = true], the default): the compile daemon
    passes its persistent cross-request store here, so repeated or
    similar kernels start warm.  A warm cache changes the hit/miss
    counters and the wall clock, never the result.

    [deadline_s] (wall-clock seconds from entry) cuts the search off
    between II attempts.  An expired deadline sets {!field-timed_out}
    and returns the best attempt that finished in time — a legal row
    when one exists, otherwise an error row — rather than truncating
    silently.  Deadline runs are wall-clock dependent, so the
    invariance guarantees above only cover [deadline_s = None]. *)

val failure_row : kernel:string -> machine:string -> Ddg.t -> string -> t
(** A row for a kernel that could not be clusterised, with the static
    bounds still filled in. *)

val header : string list
(** Column names matching {!row}. *)

val row : t -> string list
(** Paper-style row: loop, N_Instr, MIIRec, MIIRes, legal, final MII. *)

val invariant_string : t -> string
(** Canonical one-line rendering of every field a correct run
    determines uniquely — the quality figures plus an FNV digest of the
    committed placement and forwards.  Excludes the wall clock, the
    memo counters and [memo_enabled], so the differential fuzz harness
    asserts this string is bit-identical at every [jobs], memo on/off,
    traced or untraced. *)

val memo_string : t -> string
(** The memo figures as printed by {!pp}: ["memo=off"] when the run was
    made without a cache, ["memo=H/T (reused R)"] otherwise — even when
    all three counters are zero. *)

val pp : Format.formatter -> t -> unit
