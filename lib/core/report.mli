(** The top-level HCA entry point: the initiation-interval search loop
    around {!Hierarchy.solve}, plus the record the benches print as the
    rows of Table 1.

    The driver starts at the theoretical lower bound
    [iniMII = max (MIIRec, MIIRes)] and climbs until a legal
    clusterisation exists; it then explores [ii_patience] further II
    values, because a little extra slack sometimes lets the SEE pack
    with fewer copies and a smaller {e final} MII, and keeps the best
    legal result. *)

open Hca_ddg
open Hca_machine

type t = {
  kernel : string;
  machine : string;
  n_instr : int;
  mii_rec : int;
  mii_res : int;
  ini_mii : int;
  legal : bool;
  final_mii : int option;  (** [None] when no II up to the limit worked *)
  ii_used : int;
  copies : int;
  forwards : int;
  max_wire_load : int;
  explored_states : int;
  routed_moves : int;
  runtime_s : float;  (** wall-clock seconds spent in the whole search *)
  error : string option;
  result : Hierarchy.t option;  (** the winning assignment, for inspection *)
}

val run : ?config:Config.t -> ?jobs:int -> Dspfabric.t -> Ddg.t -> t
(** [jobs] (default 1) sizes the domain pool used to probe candidate
    IIs.  The climb evaluates [jobs] consecutive IIs speculatively per
    round and still commits to the lowest feasible one; the probes past
    it are reused as the patience attempts.  Results — including the
    [explored_states]/[routed_moves] totals — are identical at every
    [jobs]; only the wall clock changes. *)

val failure_row : kernel:string -> machine:string -> Ddg.t -> string -> t
(** A row for a kernel that could not be clusterised, with the static
    bounds still filled in. *)

val header : string list
(** Column names matching {!row}. *)

val row : t -> string list
(** Paper-style row: loop, N_Instr, MIIRec, MIIRes, legal, final MII. *)

val pp : Format.formatter -> t -> unit
