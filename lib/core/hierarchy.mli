(** The Hierarchical Cluster Assignment driver (§4).

    Starting at level 0, each subproblem — identified by its path of
    nesting indexes, Fig. 8 (a) — maps its Working Set onto the PG of
    its level with the SEE, lowers the resulting copy flow onto the
    level's wires with the Mapper, and spawns one child subproblem per
    cluster set with the ILI the Mapper produced.  The recursion bottoms
    out at the leaf crossbar, where the PG nodes are single computation
    nodes and the placement becomes final. *)

open Hca_ddg
open Hca_machine

type subresult = {
  path : int list;  (** nesting indexes, [[]] for the root problem *)
  problem : Problem.t;
  outcome : See.outcome;
  state : State.t;
      (** the committed solution — [outcome.state], or one of its beam
          alternatives when a child subproblem of the best state proved
          infeasible and the driver backtracked *)
  mapres : Mapper.result;
  children : subresult option array;
      (** one slot per PG regular node; [None] when nothing was assigned
          to — or flows through — that cluster set (always all-[None] at
          the leaf) *)
}

type t = {
  fabric : Dspfabric.t;
  ddg : Ddg.t;
  ii : int;  (** target II the assignment was built against *)
  root : subresult;
  cn_of_instr : int array;  (** instruction id -> absolute CN index *)
  forwards : (Instr.id * int) list;
      (** routed pass-through moves: (value, absolute CN executing it) *)
  explored : int;  (** partial solutions generated across all subproblems *)
  routed : int;  (** SEE moves that needed the Route Allocator *)
}

(** {1 Cross-probe subproblem memoization}

    A subproblem's result is a pure function of (kernel, machine,
    level, path, working set, ILI, II window, target II,
    configuration).  Inter-level backtracking re-solves sibling
    subtrees whose inputs did not change between two beam alternatives
    of their parent; a shared cache short-circuits those
    recomputations.  A hit returns the very result the miss computed
    and replays its explored/routed deltas, so a memoised run is
    bit-identical to a memo-off run (property tested).  The cache is
    lock-striped: keys embed the II, so the concurrent II probes of
    [Report.run ~jobs] never contend on the same key. *)

type stats = {
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable reused_subproblems : int;
      (** subproblems short-circuited transitively: a hit on a subtree
          of [n] solved subproblems counts [n] *)
}

val create_stats : unit -> stats

type cache

val create_cache : unit -> cache
(** Safe to share across domains, II probes, kernels and machines: the
    key embeds the kernel name, the total {!Dspfabric.id}, the II
    window and the configuration, so unrelated requests can pool one
    cache without colliding.  (Callers feeding kernels from outside the
    fixed registry must make the kernel {e name} pin the graph — see
    {!Ddg.with_name}.) *)

type snapshot
(** The cache's payload detached from its locks: plain data, safe to
    [Marshal] — the compile service persists one of these per store
    file so warm caches survive daemon restarts. *)

val snapshot : cache -> snapshot
(** Atomic per stripe; concurrent solvers may keep inserting. *)

val restore : snapshot -> cache
(** A fresh cache holding exactly the snapshot's entries.  Solutions
    served from a restored cache are bit-identical to the run that
    populated it (same entries, same replayed counters). *)

val snapshot_length : snapshot -> int

val cache_length : cache -> int
(** Entries currently stored, over all stripes. *)

val solve :
  ?config:Config.t ->
  ?target_ii:int ->
  ?cache:cache ->
  ?stats:stats ->
  Dspfabric.t ->
  Ddg.t ->
  ii:int ->
  (t, string) result
(** One full HCA pass with capacity window [ii] (cost functions aim at
    [target_ii], default [ii]).  Fails with the path and node of the
    first subproblem that admits no legal clusterisation.  [cache]
    memoises subproblem solutions across calls; [stats] accumulates the
    hit/miss counters of this call. *)

val subresults : t -> subresult list
(** Pre-order walk of the problem tree. *)

val leaf_of_path : t -> int list -> subresult option

val cn_count : t -> int -> int
(** Instructions (forwards included) placed on an absolute CN. *)

val recv_count : t -> int -> int
(** Distinct values a CN receives — each costs one receive primitive. *)

val pp : Format.formatter -> t -> unit
