open Hca_ddg
open Hca_machine

type t = {
  ddg : Ddg.t;
  cn_of_node : int array;
  recv_count : int;
  forward_count : int;
}

let digits fabric cn =
  let rec go cn level acc =
    if level < 0 then acc
    else
      let children = (Dspfabric.level_view fabric ~level).Dspfabric.children in
      go (cn / children) (level - 1) ((cn mod children) :: acc)
  in
  go cn (Dspfabric.depth fabric - 1) []

let hop_distance (res : Hierarchy.t) ~src_cn ~dst_cn =
  if src_cn = dst_cn then 0
  else begin
    let du = digits res.Hierarchy.fabric src_cn
    and dv = digits res.Hierarchy.fabric dst_cn in
    let depth = Dspfabric.depth res.Hierarchy.fabric in
    let rec lca i =
      if i >= depth then i
      else if List.nth du i = List.nth dv i then lca (i + 1)
      else i
    in
    (2 * (depth - lca 0)) - 1
  end

let expand (res : Hierarchy.t) =
  let ddg = res.Hierarchy.ddg in
  let n = Ddg.size ddg in
  let b = Ddg.Builder.create ~name:(Ddg.name ddg ^ ".expanded") () in
  let cns = Hca_util.Vec.create () in
  (* Original instructions keep their ids. *)
  Array.iter
    (fun (i : Instr.t) ->
      ignore (Ddg.Builder.add_instr b ~name:i.name i.opcode);
      ignore (Hca_util.Vec.push cns res.Hierarchy.cn_of_instr.(i.id)))
    (Ddg.instrs ddg);
  (* Forwarding moves injected by the Route Allocator and the
     pass-through nodes: the value flows producer -> mov. *)
  let forward_count = List.length res.Hierarchy.forwards in
  List.iter
    (fun (value, cn) ->
      let producer = Ddg.instr ddg value in
      let mov =
        Ddg.Builder.add_instr b
          ~name:(Printf.sprintf "fwd_%s@%d" producer.Instr.name cn)
          Opcode.Mov
      in
      ignore (Hca_util.Vec.push cns cn);
      let hops =
        hop_distance res ~src_cn:res.Hierarchy.cn_of_instr.(value) ~dst_cn:cn
      in
      Ddg.Builder.add_dep b
        ~latency:(Opcode.latency producer.Instr.opcode + max 1 hops)
        ~src:value ~dst:mov)
    res.Hierarchy.forwards;
  (* One receive per (value, consuming CN, carried distance), shared by
     all the consumers of the value on that CN at that distance.  The
     loop-carried distance travels on the producer->receive transport
     edge: the receive then observes exactly what the consumer would
     have read from the producer — including the pre-loop initial value
     of the {e producer} node, which is what keeps the machine
     execution bit-identical to the reference interpretation during the
     first [distance] iterations. *)
  let recvs = Hashtbl.create 32 in
  let recv_of value dst_cn distance =
    match Hashtbl.find_opt recvs (value, dst_cn, distance) with
    | Some r -> r
    | None ->
        let producer = Ddg.instr ddg value in
        let r =
          Ddg.Builder.add_instr b
            ~name:
              (if distance = 0 then
                 Printf.sprintf "rcv_%s@%d" producer.Instr.name dst_cn
               else
                 Printf.sprintf "rcv_%s@%d~%d" producer.Instr.name dst_cn
                   distance)
            Opcode.Recv
        in
        ignore (Hca_util.Vec.push cns dst_cn);
        let hops =
          hop_distance res ~src_cn:res.Hierarchy.cn_of_instr.(value)
            ~dst_cn
        in
        Ddg.Builder.add_dep b
          ~latency:(Opcode.latency producer.Instr.opcode + hops)
          ~distance ~src:value ~dst:r;
        Hashtbl.replace recvs (value, dst_cn, distance) r;
        r
  in
  Ddg.iter_edges
    (fun (e : Ddg.edge) ->
      let src_cn = res.Hierarchy.cn_of_instr.(e.src)
      and dst_cn = res.Hierarchy.cn_of_instr.(e.dst) in
      if src_cn = dst_cn then
        Ddg.Builder.add_dep b ~latency:e.latency ~distance:e.distance
          ~src:e.src ~dst:e.dst
      else begin
        let r = recv_of e.src dst_cn e.distance in
        (* The local hand-off is intra-iteration and costs one cycle. *)
        Ddg.Builder.add_dep b ~latency:1 ~src:r ~dst:e.dst
      end)
    ddg;
  ignore n;
  {
    ddg = Ddg.Builder.freeze b;
    cn_of_node = Hca_util.Vec.to_array cns;
    recv_count = Hashtbl.length recvs;
    forward_count;
  }

let issue_load t =
  let cns = Array.fold_left max 0 t.cn_of_node + 1 in
  let load = Array.make cns 0 in
  Array.iter (fun cn -> load.(cn) <- load.(cn) + 1) t.cn_of_node;
  load

let validate t (res : Hierarchy.t) =
  let original = res.Hierarchy.ddg in
  let errors = ref [] in
  (* Prefix equality: the original instructions are preserved. *)
  Array.iter
    (fun (i : Instr.t) ->
      if
        not
          (Opcode.equal i.opcode (Ddg.instr t.ddg i.id).Instr.opcode)
      then errors := Printf.sprintf "instruction %%%d changed" i.id :: !errors;
      if t.cn_of_node.(i.id) <> res.Hierarchy.cn_of_instr.(i.id) then
        errors := Printf.sprintf "instruction %%%d moved" i.id :: !errors)
    (Ddg.instrs original);
  (* Every cross-CN dependence is mediated by a receive on the
     consumer's CN. *)
  Ddg.iter_edges
    (fun (e : Ddg.edge) ->
      let src_cn = res.Hierarchy.cn_of_instr.(e.src)
      and dst_cn = res.Hierarchy.cn_of_instr.(e.dst) in
      if src_cn <> dst_cn then begin
        let mediated =
          List.exists
            (fun (pe : Ddg.edge) ->
              let p = Ddg.instr t.ddg pe.src in
              p.Instr.opcode = Opcode.Recv
              && t.cn_of_node.(pe.src) = dst_cn
              && List.exists
                   (fun (te : Ddg.edge) -> te.src = e.src)
                   (Ddg.preds t.ddg pe.src))
            (Ddg.preds t.ddg e.dst)
        in
        if not mediated then
          errors :=
            Printf.sprintf "edge %%%d->%%%d not mediated by a receive" e.src
              e.dst
            :: !errors
      end)
    original;
  match !errors with
  | [] -> Ok ()
  | es -> Error (String.concat "; " es)
