open Hca_machine

type result = {
  model : Machine_model.t;
  child_ilis : Ili.t array;
  max_wire_load : int;
}

type wire_option =
  | Reuse of Machine_model.wire_id  (* sinks already cover the dests *)
  | Extend of Machine_model.wire_id * Pattern_graph.node_id list
  | Fresh  (* allocate a new wire and connect all dests *)

let ( let* ) = Result.bind

let port_wire (nd : Pattern_graph.node) =
  match nd.kind with
  | Pattern_graph.In_port { wire; _ } | Pattern_graph.Out_port { wire; _ } ->
      wire
  | Pattern_graph.Regular -> invalid_arg "Mapper.port_wire: regular node"

(* Pre-allocate the glue between the outer and the inner level: one
   input slot per (father wire, consuming child) pair, one output wire
   per father wire this level owes values to. *)
let preallocate model problem flow =
  let pg = Problem.pg problem in
  let* () =
    List.fold_left
      (fun acc (nd : Pattern_graph.node) ->
        let* () = acc in
        let label = port_wire nd in
        List.fold_left
          (fun acc dst ->
            let* () = acc in
            Result.map_error
              (fun m -> Printf.sprintf "external-in w%d -> child %d: %s" label dst m)
              (Machine_model.reserve_external_in model ~dst ~label))
          (Ok ())
          (Copy_flow.real_out_neighbors flow nd.id))
      (Ok ())
      (Pattern_graph.in_ports pg)
  in
  List.fold_left
    (fun acc (nd : Pattern_graph.node) ->
      let* () = acc in
      let label = port_wire nd in
      let values = Pattern_graph.port_values nd in
      match Copy_flow.real_in_neighbors flow nd.id with
      | [] ->
          if values = [] then Ok ()
          else Error (Printf.sprintf "output wire w%d has values but no source" label)
      | [ src ] -> (
          match Machine_model.reserve_external_out model ~src ~label with
          | Error m ->
              Error (Printf.sprintf "external-out w%d from child %d: %s" label src m)
          | Ok wire ->
              List.iter (fun v -> Machine_model.put_value model ~wire v) values;
              Ok ())
      | _ :: _ :: _ ->
          Error
            (Printf.sprintf "output wire w%d fed by several clusters" label))
    (Ok ())
    (Pattern_graph.out_ports pg)

(* The input slots of every destination are a budget shared by all the
   sources that must reach it: [remaining.(d)] counts the (src, d) pairs
   not yet carried by any wire.  Feasibility is guaranteed because the
   PG in-neighbour constraint matches the input-wire capacity, so a
   wire choice may only consume a non-budgeted slot when strictly more
   slots than unwired pairs are left. *)
type budget = {
  remaining : int array;
  mutable unwired : (int * int) list;  (* (src, dst) pairs *)
}

let budget_of flow ~children =
  let remaining = Array.make children 0 in
  let unwired = ref [] in
  for src = 0 to children - 1 do
    List.iter
      (fun dst ->
        if dst < children then begin
          remaining.(dst) <- remaining.(dst) + 1;
          unwired := (src, dst) :: !unwired
        end)
      (Copy_flow.real_out_neighbors flow src)
  done;
  { remaining; unwired = !unwired }

let mark_wired budget src dst =
  if List.mem (src, dst) budget.unwired then begin
    budget.unwired <- List.filter (fun p -> p <> (src, dst)) budget.unwired;
    budget.remaining.(dst) <- budget.remaining.(dst) - 1
  end

(* Can destination [d] afford one more input connection from [src]?
   Budgeted pairs always can (their slot is reserved); extra balancing
   connections only when slots exceed the outstanding pairs. *)
let slot_ok model budget ~src ~d =
  let free = Machine_model.free_in_slots model d in
  if List.mem (src, d) budget.unwired then free > 0
  else free > budget.remaining.(d)

(* Copy distribution for one source cluster.  Values are handled in
   decreasing fan-out order so that broadcasts grab whole wires first;
   each value picks the cheapest of reuse / sink extension / fresh wire.
   In spread mode (set levels, plentiful slots downstream) cost is
   (resulting load, extra slots): copies spread over all the wires, as
   in Fig. 9.  In consolidate mode (the level feeding the leaf quads,
   where every wire costs one of the CNs' two input slots) the ranking
   flips to (extra slots, resulting load). *)
let distribute model budget ~consolidate ~wire_cap ~color ~wire_color ~src
    ~value_dests =
  let load w = List.length (Machine_model.wire_values model w) in
  let covers w dests =
    let sinks = Machine_model.wire_sinks model w in
    List.for_all (fun d -> List.mem d sinks) dests
  in
  let missing w dests =
    let sinks = Machine_model.wire_sinks model w in
    List.filter (fun d -> not (List.mem d sinks)) dests
  in
  (* A wire's payload funnels through one downstream sub-cluster, so
     only values whose producers plausibly co-locate (same colour) may
     share a wire. *)
  let color_ok w value =
    match Hashtbl.find_opt wire_color w with
    | None -> true
    | Some c -> c = color value
  in
  let set_color w value =
    if not (Hashtbl.mem wire_color w) then
      Hashtbl.replace wire_color w (color value)
  in
  let rank ~load ~slots = if consolidate then (slots, load) else (load, slots) in
  let place (value, dests) =
    let wires = Machine_model.used_out_wires model src in
    let collect ~strict_color ~capped =
      let colored w = (not strict_color) || color_ok w value in
      let within_cap w = (not capped) || load w < wire_cap in
      let reuse_options =
        List.filter_map
          (fun w ->
            if covers w dests && within_cap w && colored w then
              Some (rank ~load:(load w + 1) ~slots:0, Reuse w)
            else None)
          wires
      in
      let fresh_option =
        if
          Machine_model.free_out_wires model src > 0
          && List.for_all (fun d -> slot_ok model budget ~src ~d) dests
        then [ (rank ~load:1 ~slots:(List.length dests), Fresh) ]
        else []
      in
      let extend_options =
        List.filter_map
          (fun w ->
            let miss = missing w dests in
            if
              miss <> [] && within_cap w && colored w
              && List.for_all (fun d -> slot_ok model budget ~src ~d) miss
            then
              Some (rank ~load:(load w + 1) ~slots:(List.length miss), Extend (w, miss))
            else None)
          wires
      in
      List.sort compare (reuse_options @ fresh_option @ extend_options)
    in
    (* Colour discipline and the payload cap are preferences: an
       overloaded or mixed wire (downstream forwards, extra pressure)
       beats failing the level. *)
    let options =
      match collect ~strict_color:true ~capped:true with
      | [] -> (
          match collect ~strict_color:false ~capped:true with
          | [] -> collect ~strict_color:false ~capped:false
          | options -> options)
      | options -> options
    in
    let connect_all w ds =
      List.fold_left
        (fun acc d ->
          let* () = acc in
          let* () = Machine_model.connect model ~wire:w ~dst:d in
          mark_wired budget src d;
          Ok ())
        (Ok ()) ds
    in
    match options with
    | [] ->
        let free_ins =
          List.init (Machine_model.nodes model) (fun d ->
              Printf.sprintf "%d(ext%d,rem%d)"
                (Machine_model.free_in_slots model d)
                (List.length (Machine_model.external_ins model d))
                budget.remaining.(d))
        in
        Error
          (Printf.sprintf
             "no wire for value %%%d from cluster %d (dests [%s], %d free \
              out wires, free in slots [%s], unwired pairs [%s])"
             value src
             (String.concat "," (List.map string_of_int dests))
             (Machine_model.free_out_wires model src)
             (String.concat "," free_ins)
             (String.concat ";"
                (List.map
                   (fun (a, b) -> Printf.sprintf "%d->%d" a b)
                   budget.unwired)))
    | (_, choice) :: _ -> (
        match choice with
        | Reuse w ->
            Machine_model.put_value model ~wire:w value;
            set_color w value;
            List.iter (fun d -> mark_wired budget src d) dests;
            Ok ()
        | Extend (w, miss) ->
            let* () = connect_all w miss in
            Machine_model.put_value model ~wire:w value;
            set_color w value;
            List.iter (fun d -> mark_wired budget src d) dests;
            Ok ()
        | Fresh -> (
            match Machine_model.alloc_out_wire model src with
            | None -> Error "out wire vanished"
            | Some w ->
                let* () = connect_all w dests in
                Machine_model.put_value model ~wire:w value;
                set_color w value;
                Ok ()))
  in
  List.fold_left
    (fun acc vd ->
      let* () = acc in
      place vd)
    (Ok ()) value_dests

let collect_value_dests flow ~src ~children =
  let per_value = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun dst ->
      if dst < children then
        List.iter
          (fun v ->
            (match Hashtbl.find_opt per_value v with
            | None -> order := v :: !order
            | Some _ -> ());
            let cur = Option.value ~default:[] (Hashtbl.find_opt per_value v) in
            if not (List.mem dst cur) then Hashtbl.replace per_value v (dst :: cur))
          (Copy_flow.copies flow ~src ~dst))
    (Copy_flow.real_out_neighbors flow src);
  List.rev_map (fun v -> (v, List.rev (Hashtbl.find per_value v))) !order
  |> List.sort (fun (v1, d1) (v2, d2) ->
         compare (-List.length d1, v1) (-List.length d2, v2))

let build_child_ilis model problem children =
  let pg = Problem.pg problem in
  let father_payload =
    let table = Hashtbl.create 8 in
    List.iter
      (fun (nd : Pattern_graph.node) ->
        Hashtbl.replace table (port_wire nd) (Pattern_graph.port_values nd))
      (Pattern_graph.in_ports pg);
    table
  in
  Array.init children (fun i ->
      let ext_inputs =
        List.map
          (fun label ->
            Option.value ~default:[] (Hashtbl.find_opt father_payload label))
          (Machine_model.external_ins model i)
      in
      let intra_inputs = List.map snd (Machine_model.incoming model i) in
      let outputs =
        List.filter_map
          (fun w ->
            match Machine_model.wire_values model w with
            | [] -> None
            | values -> Some values)
          (Machine_model.used_out_wires model i)
      in
      let label vs = List.mapi (fun idx v -> (idx, v)) vs in
      { Ili.inputs = label (ext_inputs @ intra_inputs); outputs = label outputs })

let map_traced ~consolidate ~wire_cap ~color ~problem ~state ~in_capacity
    ~out_capacity =
  if wire_cap < 1 then invalid_arg "Mapper.map: wire_cap must be >= 1";
  let pg = Problem.pg problem in
  let children = List.length (Pattern_graph.regular_nodes pg) in
  let flow = State.flow state in
  let model = Machine_model.create ~nodes:children ~in_capacity ~out_capacity in
  let* () = preallocate model problem flow in
  let budget = budget_of flow ~children in
  let wire_color = Hashtbl.create 16 in
  let* () =
    List.fold_left
      (fun acc src ->
        let* () = acc in
        let value_dests = collect_value_dests flow ~src ~children in
        distribute model budget ~consolidate ~wire_cap ~color ~wire_color ~src
          ~value_dests)
      (Ok ())
      (List.init children (fun i -> i))
  in
  let* () = Machine_model.validate model in
  let child_ilis = build_child_ilis model problem children in
  Ok { model; child_ilis; max_wire_load = Machine_model.max_wire_load model }

let map ?(consolidate = false) ?(wire_cap = max_int)
    ?(color = fun (_ : Hca_ddg.Instr.id) -> 0) ~problem ~state ~in_capacity
    ~out_capacity () =
  Hca_obs.Obs.span "mapper.map"
    ~args:[ ("problem", Problem.name problem) ]
    (fun () ->
      map_traced ~consolidate ~wire_cap ~color ~problem ~state ~in_capacity
        ~out_capacity)

let wire_pressure_ii r = max 1 r.max_wire_load

let pp_result ppf r =
  Format.fprintf ppf "@[<v>%a@,max wire load: %d@]" Machine_model.pp r.model
    r.max_wire_load
