open Hca_ddg
open Hca_machine

module Alloc_meter = struct
  (* [Gc.allocated_bytes] and the minor-collection counter are
     per-domain in OCaml 5, so at [jobs > 1] the workers' churn is
     invisible to a meter started on the caller — the counters are for
     the [--jobs 1] layout benchmarks. *)
  type meter = { alloc0 : float; minor0 : int }

  let start () =
    {
      alloc0 = Gc.allocated_bytes ();
      minor0 = (Gc.quick_stat ()).Gc.minor_collections;
    }

  let mb m = (Gc.allocated_bytes () -. m.alloc0) /. (1024.0 *. 1024.0)

  let minor_gcs m = (Gc.quick_stat ()).Gc.minor_collections - m.minor0
end

type t = {
  kernel : string;
  machine : string;
  n_instr : int;
  mii_rec : int;
  mii_res : int;
  ini_mii : int;
  legal : bool;
  final_mii : int option;
  ii_used : int;
  copies : int;
  forwards : int;
  max_wire_load : int;
  explored_states : int;
  routed_moves : int;
  cache_hits : int;
  cache_misses : int;
  reused_subproblems : int;
  memo_enabled : bool;
  timed_out : bool;
  runtime_s : float;
  alloc_mb : float;
  minor_gcs : int;
  error : string option;
  result : Hierarchy.t option;
}

let base_row ~kernel ~machine ddg fabric_resources =
  let mii_rec = Mii.rec_mii ddg in
  let mii_res = Mii.res_mii ddg fabric_resources in
  {
    kernel;
    machine;
    n_instr = Ddg.size ddg;
    mii_rec;
    mii_res;
    ini_mii = max mii_rec mii_res;
    legal = false;
    final_mii = None;
    ii_used = 0;
    copies = 0;
    forwards = 0;
    max_wire_load = 0;
    explored_states = 0;
    routed_moves = 0;
    cache_hits = 0;
    cache_misses = 0;
    reused_subproblems = 0;
    memo_enabled = false;
    timed_out = false;
    runtime_s = 0.0;
    alloc_mb = 0.0;
    minor_gcs = 0;
    error = None;
    result = None;
  }

(* Live-registry accounting of every finished run.  Registry updates
   never feed back into the search, so the report itself is unchanged
   by them (see [invariant_string]). *)
let finalize r =
  let module R = Hca_obs.Obs.Registry in
  R.inc "hca_reports_total";
  R.observe "hca_report_runtime_ms" (r.runtime_s *. 1000.);
  R.observe
    ~buckets:[| 1.; 4.; 16.; 64.; 256.; 1024.; 4096. |]
    "hca_report_alloc_mb" r.alloc_mb;
  R.inc ~by:r.minor_gcs "hca_minor_gcs_total";
  r

let run ?(config = Config.default) ?(jobs = 1) ?(memo = true) ?cache
    ?deadline_s fabric ddg =
  Hca_obs.Obs.span "report.run" ~args:[ ("kernel", Ddg.name ddg) ]
  @@ fun () ->
  let t0 = Hca_util.Clock.now () in
  let meter = Alloc_meter.start () in
  let alloc_mb () = Alloc_meter.mb meter in
  let minor_gcs () = Alloc_meter.minor_gcs meter in
  let base =
    {
      (base_row ~kernel:(Ddg.name ddg) ~machine:(Dspfabric.name fabric) ddg
         (Dspfabric.resources fabric))
      with
      memo_enabled = memo;
    }
  in
  let deadline = Option.map (fun d -> t0 +. d) deadline_s in
  let past_deadline () =
    match deadline with
    | None -> false
    | Some d -> Hca_util.Clock.now () > d
  in
  (* One subproblem memo per run — II probes of the same kernel share
     it (the cache is domain-safe and its keys embed the II) — unless
     the caller passed a longer-lived one, e.g. the compile daemon's
     persistent cross-request store. *)
  let hcache =
    if not memo then None
    else match cache with Some c -> Some c | None -> Some (Hierarchy.create_cache ())
  in
  let attempt ii =
    Hca_obs.Obs.span "report.probe" ~args:[ ("ii", string_of_int ii) ]
    @@ fun () ->
    let stats = Hierarchy.create_stats () in
    let r =
      match
        Hierarchy.solve ~config ~target_ii:base.ini_mii ?cache:hcache ~stats
          fabric ddg ~ii
      with
      | Error e -> Error e
      | Ok res ->
          let metrics = Metrics.of_result res in
          let legal = Coherency.is_legal res in
          Ok (res, metrics, legal)
    in
    (r, stats)
  in
  (* Climb to the first feasible II, then give the SEE [ii_patience]
     more values of slack and keep the best legal outcome. *)
  (* Wire constraints do not relax with the II, so a deep climb is
     pointless: cap the search well before the configured ceiling. *)
  let ii_limit = min config.Config.max_ii ((4 * base.ini_mii) + 12) in
  (* Memoised attempts.  At [jobs > 1] the climb probes [jobs]
     consecutive IIs speculatively on the domain pool; the probes past
     the first feasible II are exactly the patience candidates, so a
     kernel whose iniMII is feasible finishes in a single parallel
     round.  The climb itself still commits to the lowest feasible II
     in order, so the outcome is identical to the sequential walk. *)
  let cache = Hashtbl.create 16 in
  let eval ii =
    match Hashtbl.find_opt cache ii with
    | Some (r, _) -> r
    | None ->
        let r, stats = attempt ii in
        Hashtbl.replace cache ii (r, stats);
        r
  in
  (* Memo counters of the attempts the sequential walk would have
     made — speculative probes past that set are excluded, so the
     figures match at any [jobs] (each attempt's counters only depend
     on its own II: the memo keys embed the II, so attempts never see
     each other's entries). *)
  let sum_stats iis =
    List.fold_left
      (fun (h, m, r) ii ->
        match Hashtbl.find_opt cache ii with
        | Some (_, s) ->
            ( h + s.Hierarchy.cache_hits,
              m + s.Hierarchy.cache_misses,
              r + s.Hierarchy.reused_subproblems )
        | None -> (h, m, r))
      (0, 0, 0) iis
  in
  let range lo hi = List.init (max 0 (hi - lo + 1)) (fun i -> lo + i) in
  let eval_batch iis =
    match List.filter (fun ii -> not (Hashtbl.mem cache ii)) iis with
    | [] -> ()
    | fresh ->
        List.iter
          (fun (ii, rs) -> Hashtbl.replace cache ii rs)
          (Hca_util.Domain_pool.parallel_map ~jobs
             (fun ii -> (ii, attempt ii))
             fresh)
  in
  (* A deadline is checked between II attempts (the climb and patience
     loops), never inside one: the structured [timed_out] flag replaces
     the silent truncation a budget used to cause, and the best legal
     attempt finished before the cut-off still comes back. *)
  let rec climb ii last_error =
    if ii > ii_limit then (None, last_error, false)
    else if past_deadline () then (None, last_error, true)
    else begin
      if jobs > 1 && not (Hashtbl.mem cache ii) then
        eval_batch (List.init (min jobs (ii_limit - ii + 1)) (fun i -> ii + i));
      match eval ii with
      | Ok ok -> (Some (ii, ok), None, false)
      | Error e -> climb (ii + 1) (Some e)
    end
  in
  let first, error, timed_out = climb base.ini_mii None in
  match first with
  | None ->
      let cache_hits, cache_misses, reused_subproblems =
        sum_stats (range base.ini_mii ii_limit)
      in
      finalize
      {
        base with
        error =
          (if timed_out then Some "deadline exceeded before a feasible II"
           else error);
        timed_out;
        cache_hits;
        cache_misses;
        reused_subproblems;
        runtime_s = Hca_util.Clock.now () -. t0;
        alloc_mb = alloc_mb ();
        minor_gcs = minor_gcs ();
      }
  | Some (ii0, first_ok) ->
      let better_than (_, m1, l1) (_, m2, l2) =
        match (l1, l2) with
        | true, false -> true
        | false, true -> false
        | _ ->
            (m1 : Metrics.t).final_mii < (m2 : Metrics.t).final_mii
      in
      (* Only attempts the sequential walk would have made count
         towards the explored/routed totals, so the figures match at
         any [jobs]. *)
      let explored = ref 0 and routed = ref 0 in
      let count (res, _, _) =
        explored := !explored + res.Hierarchy.explored;
        routed := !routed + res.Hierarchy.routed
      in
      count first_ok;
      let patience_iis =
        let hi = min config.Config.max_ii (ii0 + config.Config.ii_patience) in
        List.init (max 0 (hi - ii0)) (fun i -> ii0 + 1 + i)
      in
      if jobs > 1 then eval_batch patience_iis;
      let best = ref (ii0, first_ok) in
      let cut_short = ref false in
      List.iter
        (fun ii ->
          if past_deadline () then cut_short := true
          else
            match eval ii with
            | Ok ok ->
                count ok;
                if better_than ok (snd !best) then best := (ii, ok)
            | Error _ -> ())
        patience_iis;
      let ii_used, (res, metrics, legal) = !best in
      let cache_hits, cache_misses, reused_subproblems =
        sum_stats (range base.ini_mii ii0 @ patience_iis)
      in
      finalize
      {
        base with
        legal;
        timed_out = !cut_short;
        final_mii = Some metrics.Metrics.final_mii;
        ii_used;
        copies = metrics.Metrics.copies;
        forwards = metrics.Metrics.forwards;
        max_wire_load = metrics.Metrics.max_wire_load;
        explored_states = !explored;
        routed_moves = !routed;
        cache_hits;
        cache_misses;
        reused_subproblems;
        runtime_s = Hca_util.Clock.now () -. t0;
        alloc_mb = alloc_mb ();
        minor_gcs = minor_gcs ();
        error = (if legal then None else Some "coherency check failed");
        result = Some res;
      }

let failure_row ~kernel ~machine ddg msg =
  let resources =
    (* Static bounds on the reference machine so the row stays
       informative even when the target never materialised. *)
    Dspfabric.resources Dspfabric.reference
  in
  { (base_row ~kernel ~machine ddg resources) with error = Some msg }

let header = [ "Loop"; "N_Instr"; "MIIRec"; "MIIRes"; "Legal"; "Final MII" ]

let row t =
  [
    t.kernel;
    string_of_int t.n_instr;
    string_of_int t.mii_rec;
    string_of_int t.mii_res;
    (if t.legal then "yes" else "no");
    (match t.final_mii with Some m -> string_of_int m | None -> "-");
  ]

let invariant_string t =
  (* Everything a correct run determines uniquely: quality figures plus
     a digest of the actual placement.  Deliberately excludes
     [runtime_s] (wall clock), the memo counters (zero when the memo is
     off) and [memo_enabled], so the same string must come back at any
     [--jobs], memo on/off, traced or untraced. *)
  let placement =
    match t.result with
    | None -> 0
    | Some r ->
        let sig_ = Hca_util.Sig_hash.create () in
        Hca_util.Sig_hash.add_int_array sig_ r.Hierarchy.cn_of_instr;
        List.iter
          (fun (v, cn) ->
            Hca_util.Sig_hash.add_int sig_ v;
            Hca_util.Sig_hash.add_int sig_ cn)
          r.Hierarchy.forwards;
        Hca_util.Sig_hash.value sig_
  in
  Printf.sprintf
    "legal=%b final=%s ii=%d copies=%d forwards=%d wire=%d explored=%d \
     routed=%d placement=%x error=%s"
    t.legal
    (match t.final_mii with Some m -> string_of_int m | None -> "-")
    t.ii_used t.copies t.forwards t.max_wire_load t.explored_states
    t.routed_moves placement
    (match t.error with None -> "-" | Some e -> e)

(* The memo figures print even when every counter is zero — a zero line
   must still read as "memo on, nothing reusable", never be mistaken
   for the memo being off, so the disabled case is labelled. *)
let memo_string t =
  if not t.memo_enabled then "memo=off"
  else
    Printf.sprintf "memo=%d/%d (reused %d)" t.cache_hits
      (t.cache_hits + t.cache_misses)
      t.reused_subproblems

let pp ppf t =
  Format.fprintf ppf
    "@[<v>%s on %s: %d instrs, MIIRec=%d MIIRes=%d ini=%d -> %s (II target \
     %d, legal=%b)@,\
     copies=%d forwards=%d wire<=%d explored=%d routed=%d %s in %.3fs \
     (%.1f MB alloc, %d minor gcs)%s@]"
    t.kernel t.machine t.n_instr t.mii_rec t.mii_res t.ini_mii
    (match t.final_mii with
    | Some m -> "final MII " ^ string_of_int m
    | None -> "FAILED")
    t.ii_used t.legal t.copies t.forwards t.max_wire_load t.explored_states
    t.routed_moves (memo_string t) t.runtime_s t.alloc_mb t.minor_gcs
    ((if t.timed_out then " [deadline exceeded: best-so-far]" else "")
    ^ match t.error with None -> "" | Some e -> " error: " ^ e)
