(** A partial solution of the Space Exploration Engine: the node of the
    exploration space of Fig. 5.

    A state owns a placement map (problem node -> PG node), the copy
    flow routed so far, per-cluster demand accumulators, and the list of
    detour forwards the Route Allocator has injected.  Moving from one
    partial solution to another ({!try_assign}) clones the state, so
    siblings in the beam never alias. *)

open Hca_ddg
open Hca_machine

type t

val create : ?backbone:(Pattern_graph.node_id * Pattern_graph.node_id) list -> Problem.t -> t
(** Fresh state with the port pseudo nodes already pinned to their PG
    nodes.  [backbone] arcs get their in-neighbour slots pre-committed
    ({!Hca_machine.Copy_flow.reserve_neighbor}): the leaf quads use a
    ring so that any value can always reach any CN by forwarding. *)

val problem : t -> Problem.t

val clone : t -> t

(** {1 Placement} *)

val placement : t -> int -> Pattern_graph.node_id option

val is_complete : t -> bool

val assigned_count : t -> int

val try_assign :
  t ->
  node:int ->
  cluster:Pattern_graph.node_id ->
  ii:int ->
  target_ii:int ->
  weights:Cost.weights ->
  (t, string) result
(** [isAssignable] + move: checks the resource table of [cluster] under
    the capacity window [ii], routes the copies towards/from every
    already-placed neighbour of [node] (same-cluster neighbours need
    none), and returns the successor state with its cost updated.
    [target_ii] is the II the objective function aims at — usually the
    kernel's iniMII, which may be below the capacity window when the
    driver had to relax [ii] for feasibility.  The input state is not
    modified. *)

val speculate_assign :
  t ->
  node:int ->
  cluster:Pattern_graph.node_id ->
  ii:int ->
  target_ii:int ->
  weights:Cost.weights ->
  (unit, string) result
(** Trail-based twin of {!try_assign}: applies the same move with the
    same checks and the same cost arithmetic to [t] itself, recording
    an undo trail instead of cloning.  On [Ok ()] the move is left
    applied — read {!cost}, {!free_issue_slots}, {!add_penalty} etc. to
    score it — until {!undo_speculation} restores [t] bit for bit.  On
    [Error] the state has already been rolled back.  At most one
    speculation may be in flight per state, and a state with a
    speculation in flight cannot be cloned.  The costs produced this
    way are bit-identical to the clone-based {!try_assign} (property
    tested), so the SEE can rank candidates speculatively and
    materialise real clones only for the beam survivors. *)

val undo_speculation : t -> unit
(** Reverts the in-flight speculative move.
    @raise Invalid_argument when none is in flight. *)

val score_moves :
  t ->
  node:int ->
  clusters:int array ->
  ii:int ->
  target_ii:int ->
  weights:Cost.weights ->
  tail_of_region:int ->
  scores:float array ->
  int
(** Batched frontier scoring: evaluates the move of [node] to every
    cluster of [clusters] in one pass over the state's flat arrays,
    reusing the preallocated speculation arena per candidate instead
    of allocating an undo record each.  [scores.(k)] receives the
    {!cost} the state would have after the move to [clusters.(k)] —
    including the SEE's region-tear penalty for [tail_of_region]
    remaining region nodes — or [nan] when the move is infeasible
    (non-regular target, resource table exhausted, or no communication
    pattern).  Returns the number of feasible moves.  The state is
    restored bit for bit between candidates and before returning, and
    each score is bit-identical to a
    {!speculate_assign}/penalty/{!cost}/{!undo_speculation} probe of
    the same move (property tested: the scoring arithmetic is shared,
    not duplicated).
    @raise Invalid_argument when a speculation is in flight or [node]
    is already assigned. *)

val probe_force :
  t ->
  node:int ->
  cluster:Pattern_graph.node_id ->
  ii:int ->
  ((Instr.id * Pattern_graph.node_id * Pattern_graph.node_id) list, string)
  result
(** Trail-based feasibility twin of {!force_assign}: applies the move
    and the direct-arc routing to [t] itself under a flow mark and
    returns the same blocked triples the clone path would, without
    cloning and without touching the cost caches.  On [Ok] the move is
    left applied so the Route Allocator can detour the blocked values
    on [t] ({!add_forward} / [Copy_flow.add_copy] route under the open
    mark); {!abort_force} then rewinds everything — detour forwards
    included — bit for bit.  On [Error] the state is untouched.  The
    Route Allocator probes every attempt this way and replays only the
    successful ones through {!force_assign}, so the ~80% of fallback
    attempts with no feasible detour never pay a clone.
    @raise Invalid_argument when a speculation is in flight. *)

val commit_probe : t -> target_ii:int -> weights:Cost.weights -> t
(** Materialises a successful {!probe_force} as a fresh successor
    state: copies the per-state structures exactly as they stand (move,
    direct arcs and detours applied) and re-scores from scratch — the
    same [recompute_cost] the Route Allocator's commit always ran, so
    the result is bit-identical to replaying the attempt through
    {!force_assign} on a clone.  [t] still carries the in-flight probe;
    call {!abort_force} afterwards to rewind it (the snapshot shares
    nothing mutable, so the rewind cannot disturb it).
    @raise Invalid_argument when no probe is in flight. *)

val abort_force : t -> unit
(** Rewinds an [Ok] {!probe_force}, including any detours routed since.
    @raise Invalid_argument when none is in flight. *)

val force_assign :
  t ->
  node:int ->
  cluster:Pattern_graph.node_id ->
  ii:int ->
  (t * (Instr.id * Pattern_graph.node_id * Pattern_graph.node_id) list, string)
  result
(** Like {!try_assign} but a direct arc that cannot be added does not
    fail the move: the blocked [(value, src, dst)] triples are returned
    for the Route Allocator to detour.  Resource exhaustion still
    fails.  The cost of the returned state is {e not} final until the
    router commits or rejects the detours. *)

val add_forward : t -> value:Instr.id -> via:Pattern_graph.node_id -> unit
(** Route-Allocator hook: accounts one forwarding move (one ALU slot) on
    [via] and records it.  The caller checks capacity against its target
    II before committing. *)

val forwards : t -> (Instr.id * Pattern_graph.node_id) list
(** Detour forwards injected by the Route Allocator, newest first. *)

(** {1 Views} *)

val flow : t -> Copy_flow.t

val demand : t -> Pattern_graph.node_id -> Resource.t

val can_host_forward : t -> via:Pattern_graph.node_id -> ii:int -> bool
(** Would [via] still fit its resource table under the window [ii]
    after one extra forwarding ALU slot?  Exactly
    [Resource.fits ~demand:(add (demand t via) {alus = 1; ags = 0})]
    against [via]'s capacity, plus the regular-node check, evaluated on
    the flat demand arrays: the Route Allocator's BFS asks this per
    visited node and must not allocate records. *)

val cluster_nodes : t -> Pattern_graph.node_id -> int list
(** Problem nodes placed on a cluster, id ascending.  Derived from the
    placement array on demand (O(problem size)): only diagnostics read
    it, so states carry no reverse index for the probe loop to maintain,
    clone and rewind. *)

val summary : t -> ii:int -> Cost.summary

val cost : t -> float
(** Cached {!Cost.score} of the current partial solution, plus the
    accumulated search penalties ({!add_penalty}). *)

val add_penalty : t -> float -> unit
(** Permanently worsens this state's cost: used by the SEE for
    lookahead terms (e.g. region tearing) that the per-state summary
    cannot see. *)

val free_issue_slots : t -> cluster:Pattern_graph.node_id -> ii:int -> int
(** Remaining issue capacity of a cluster under the window [ii]. *)

val signature : t -> int
(** Transposition signature over placement, flow, forwards and the
    bit-exact cost terms: two states with different signatures are
    guaranteed different; equal signatures are confirmed with {!equal}
    before the SEE drops a beam entry as a duplicate. *)

val equal : t -> t -> bool
(** Structural identity of two partial solutions: same placement, same
    routed flow, same forwards, same carried cuts and bit-equal cost
    terms. *)

val debug_identical : t -> t -> bool
(** {!equal} plus every derived structure and incremental-cost cache —
    the property-test oracle for speculation round trips. *)

val recompute_cost : t -> target_ii:int -> weights:Cost.weights -> unit
(** From-scratch reference: rebuilds every per-cluster cost
    contribution and re-scores.  {!try_assign} instead refreshes only
    the clusters a move touched; the two agree bit for bit (property
    tested), the incremental path just skips the untouched clusters. *)

val pp : Format.formatter -> t -> unit
