open Hca_ddg
open Hca_machine

type t = {
  problem : Problem.t;
  place : int array;  (* problem node -> PG node, -1 when unassigned *)
  members : int list array;  (* PG node -> problem nodes, id ascending *)
  flow : Copy_flow.t;
  dem : Resource.t array;  (* per PG node *)
  mutable fwds : (Instr.id * Pattern_graph.node_id) list;
  mutable carried_cuts : int;
  mutable cost_v : float;
  mutable extra_cost : float;
  mutable assigned : int;
  (* Per-cluster cost contributions, valid for the window [cache_ii]
     (-1 = stale).  A move touches at most a handful of clusters, so
     [try_assign] refreshes only those instead of re-walking every PG
     regular node per candidate. *)
  node_util : float array;
  node_proj : int array;
  node_fanin : float array;
  mutable cache_ii : int;
  mutable spec : spec option;  (* in-flight speculative move, if any *)
}

(* Undo record of one speculative [try_assign]: everything the move
   mutated, with enough history to restore the state bit for bit. *)
and spec = {
  sp_node : int;
  sp_cluster : int;
  sp_members : int list;
  sp_dem : Hca_machine.Resource.t;
  sp_carried : int;
  sp_cost_v : float;
  sp_extra : float;
  sp_cache_ii : int;
  sp_fmark : Copy_flow.mark;
  (* Per-cluster contribution snapshots taken just before each
     [refresh_node], newest first, so replaying them in list order
     ends on the oldest (pre-move) values even when a cluster was
     refreshed twice. *)
  mutable sp_nodes : (int * float * int * float) list;
  (* Full-array snapshot when the move had to [refresh_all]. *)
  mutable sp_full : (float array * int array * float array) option;
}

let create ?(backbone = []) problem =
  let pg = Problem.pg problem in
  let n = Problem.size problem in
  let pg_n = Pattern_graph.size pg in
  let place = Array.make n (-1) in
  let members = Array.make pg_n [] in
  let assigned = ref 0 in
  Array.iter
    (fun (nd : Problem.node) ->
      match nd.pinned with
      | Some c ->
          place.(nd.id) <- c;
          members.(c) <- nd.id :: members.(c);
          incr assigned
      | None -> ())
    (Problem.nodes problem);
  Array.iteri (fun c l -> members.(c) <- List.rev l) members;
  let flow = Copy_flow.create ~max_in_ports:(Problem.max_in_ports problem) pg in
  List.iter (fun (src, dst) -> Copy_flow.reserve_neighbor flow ~src ~dst) backbone;
  {
    problem;
    place;
    members;
    flow;
    dem = Array.make pg_n Resource.zero;
    fwds = [];
    carried_cuts = 0;
    cost_v = 0.0;
    extra_cost = 0.0;
    assigned = !assigned;
    node_util = Array.make pg_n 0.0;
    node_proj = Array.make pg_n 1;
    node_fanin = Array.make pg_n 0.0;
    cache_ii = -1;
    spec = None;
  }

let problem t = t.problem

let clone t =
  if t.spec <> None then invalid_arg "State.clone: speculation in flight";
  {
    t with
    place = Array.copy t.place;
    members = Array.copy t.members;
    flow = Copy_flow.clone t.flow;
    dem = Array.copy t.dem;
    node_util = Array.copy t.node_util;
    node_proj = Array.copy t.node_proj;
    node_fanin = Array.copy t.node_fanin;
  }

let placement t id = if t.place.(id) < 0 then None else Some t.place.(id)

let is_complete t = t.assigned = Problem.size t.problem

let assigned_count t = t.assigned

let flow t = t.flow

let demand t c = t.dem.(c)

let cluster_nodes t c = t.members.(c)

let forwards t = t.fwds

(* One cluster's cost terms, recomputed from its demand accumulator and
   the flow's O(1) counters. *)
let refresh_node t ~ii (nd : Pattern_graph.node) =
  let pg = Problem.pg t.problem in
  let cap = nd.capacity in
  let d = t.dem.(nd.id) in
  let slots = cap.Resource.alus + cap.Resource.ags in
  if slots > 0 then begin
    let used = d.Resource.alus + d.Resource.ags in
    t.node_util.(nd.id) <- float_of_int used /. float_of_int (slots * ii)
  end;
  t.node_proj.(nd.id) <-
    Cost.cluster_mii ~demand:d ~capacity:cap
      ~receives:(Copy_flow.in_pressure t.flow nd.id)
      ~max_in:(Pattern_graph.max_in pg);
  let sat =
    float_of_int (Copy_flow.real_in_count t.flow nd.id)
    /. float_of_int (Pattern_graph.max_in pg)
  in
  t.node_fanin.(nd.id) <- sat *. sat

let refresh_all t ~ii =
  List.iter
    (fun nd -> refresh_node t ~ii nd)
    (Pattern_graph.regular_nodes (Problem.pg t.problem));
  t.cache_ii <- ii

let ensure_cache t ~ii = if t.cache_ii <> ii then refresh_all t ~ii

(* Fold the cached per-cluster terms; same iteration order as a
   from-scratch walk, so incremental and reference costs are
   bit-identical. *)
let aggregate t ~ii =
  let pg = Problem.pg t.problem in
  let regs = Pattern_graph.regular_nodes pg in
  let max_util = ref 0.0 and min_util = ref infinity in
  let projected = ref 1 in
  let fanin_sat = ref 0.0 in
  List.iter
    (fun (nd : Pattern_graph.node) ->
      let cap = nd.capacity in
      if cap.Resource.alus + cap.Resource.ags > 0 then begin
        let util = t.node_util.(nd.id) in
        if util > !max_util then max_util := util;
        if util < !min_util then min_util := util
      end;
      projected := max !projected t.node_proj.(nd.id);
      fanin_sat := !fanin_sat +. t.node_fanin.(nd.id))
    regs;
  let min_util = if !min_util = infinity then 0.0 else !min_util in
  {
    Cost.copies = Copy_flow.copy_count t.flow;
    max_util = !max_util;
    util_spread = !max_util -. min_util;
    projected_ii = !projected;
    target_ii = ii;
    used_in_ports = Copy_flow.used_in_ports_count t.flow;
    fanin_sat = !fanin_sat;
    carried_cuts = t.carried_cuts;
  }

let summary t ~ii =
  ensure_cache t ~ii;
  aggregate t ~ii

let cost t = t.cost_v +. t.extra_cost

let add_penalty t p = t.extra_cost <- t.extra_cost +. p

let free_issue_slots t ~cluster ~ii =
  let cap = (Pattern_graph.node (Problem.pg t.problem) cluster).capacity in
  let d = t.dem.(cluster) in
  (Resource.issue_slots cap * ii) - (d.Resource.alus + d.Resource.ags)

let recompute_cost t ~target_ii ~weights =
  refresh_all t ~ii:target_ii;
  t.cost_v <- Cost.score weights (aggregate t ~ii:target_ii)

(* Incremental twin of {!recompute_cost}: refresh only the clusters a
   move changed (its target plus every copy destination). *)
let update_cost t ~touched ~target_ii ~weights =
  if t.cache_ii <> target_ii then refresh_all t ~ii:target_ii
  else begin
    let pg = Problem.pg t.problem in
    List.iter
      (fun id ->
        if Pattern_graph.is_regular pg id then
          refresh_node t ~ii:target_ii (Pattern_graph.node pg id))
      touched
  end;
  t.cost_v <- Cost.score weights (aggregate t ~ii:target_ii)

let same_circuit t a b =
  let scc = Problem.scc_of t.problem in
  scc.(a) >= 0 && scc.(a) = scc.(b)

let rec insert_sorted x = function
  | [] -> [ x ]
  | y :: _ as l when x < y -> x :: l
  | y :: tl -> y :: insert_sorted x tl

let try_assign t ~node ~cluster ~ii ~target_ii ~weights =
  let nd = Problem.node t.problem node in
  if t.place.(node) >= 0 then Error "node already assigned"
  else if not (Pattern_graph.is_regular (Problem.pg t.problem) cluster) then
    Error "target is not a regular cluster"
  else
    let capacity = (Pattern_graph.node (Problem.pg t.problem) cluster).capacity in
    let demand' = Resource.add t.dem.(cluster) nd.demand in
    if not (Resource.fits ~demand:demand' ~capacity ~ii) then
      Error "resource table exhausted under target II"
    else begin
      let t' = clone t in
      t'.place.(node) <- cluster;
      t'.members.(cluster) <- insert_sorted node t'.members.(cluster);
      t'.dem.(cluster) <- demand';
      t'.assigned <- t'.assigned + 1;
      let touched = ref [ cluster ] in
      let route ~src ~dst ~carried value =
        if src = dst then Ok ()
        else if Copy_flow.can_add t'.flow ~src ~dst then begin
          Copy_flow.add_copy t'.flow ~src ~dst value;
          touched := dst :: !touched;
          if carried then t'.carried_cuts <- t'.carried_cuts + 1;
          Ok ()
        end
        else Error (Printf.sprintf "no communication pattern %d->%d" src dst)
      in
      let exception Blocked of string in
      try
        List.iter
          (fun (e : Problem.edge) ->
            let s = t'.place.(e.src) in
            if s >= 0 then
              match
                route ~src:s ~dst:cluster
                  ~carried:(e.distance > 0 || same_circuit t e.src e.dst)
                  e.value
              with
              | Ok () -> ()
              | Error m -> raise (Blocked m))
          (Problem.preds t.problem node);
        List.iter
          (fun (e : Problem.edge) ->
            let d = t'.place.(e.dst) in
            if d >= 0 then
              match
                route ~src:cluster ~dst:d
                  ~carried:(e.distance > 0 || same_circuit t e.src e.dst)
                  e.value
              with
              | Ok () -> ()
              | Error m -> raise (Blocked m))
          (Problem.succs t.problem node);
        update_cost t' ~touched:!touched ~target_ii ~weights;
        Ok t'
      with Blocked m -> Error m
    end

(* Trail-based twin of {!try_assign}: the same move, the same checks,
   the same arithmetic — applied to [t] itself under an undo trail
   instead of to a clone.  The SEE probes every candidate this way and
   only materialises a real clone (via the retained {!try_assign}) for
   the few survivors of the beam cut. *)
let speculate_assign t ~node ~cluster ~ii ~target_ii ~weights =
  if t.spec <> None then invalid_arg "State.speculate_assign: already in flight";
  let nd = Problem.node t.problem node in
  if t.place.(node) >= 0 then Error "node already assigned"
  else if not (Pattern_graph.is_regular (Problem.pg t.problem) cluster) then
    Error "target is not a regular cluster"
  else
    let capacity = (Pattern_graph.node (Problem.pg t.problem) cluster).capacity in
    let demand' = Resource.add t.dem.(cluster) nd.demand in
    if not (Resource.fits ~demand:demand' ~capacity ~ii) then
      Error "resource table exhausted under target II"
    else begin
      let sp =
        {
          sp_node = node;
          sp_cluster = cluster;
          sp_members = t.members.(cluster);
          sp_dem = t.dem.(cluster);
          sp_carried = t.carried_cuts;
          sp_cost_v = t.cost_v;
          sp_extra = t.extra_cost;
          sp_cache_ii = t.cache_ii;
          sp_fmark = Copy_flow.push_mark t.flow;
          sp_nodes = [];
          sp_full = None;
        }
      in
      let rollback () =
        t.place.(node) <- -1;
        t.members.(cluster) <- sp.sp_members;
        t.dem.(cluster) <- sp.sp_dem;
        t.assigned <- t.assigned - 1;
        t.carried_cuts <- sp.sp_carried;
        Copy_flow.undo_to_mark t.flow sp.sp_fmark
      in
      t.place.(node) <- cluster;
      t.members.(cluster) <- insert_sorted node t.members.(cluster);
      t.dem.(cluster) <- demand';
      t.assigned <- t.assigned + 1;
      let touched = ref [ cluster ] in
      let route ~src ~dst ~carried value =
        if src = dst then Ok ()
        else if Copy_flow.can_add t.flow ~src ~dst then begin
          Copy_flow.add_copy t.flow ~src ~dst value;
          touched := dst :: !touched;
          if carried then t.carried_cuts <- t.carried_cuts + 1;
          Ok ()
        end
        else Error (Printf.sprintf "no communication pattern %d->%d" src dst)
      in
      let exception Blocked of string in
      try
        List.iter
          (fun (e : Problem.edge) ->
            let s = t.place.(e.src) in
            if s >= 0 then
              match
                route ~src:s ~dst:cluster
                  ~carried:(e.distance > 0 || same_circuit t e.src e.dst)
                  e.value
              with
              | Ok () -> ()
              | Error m -> raise (Blocked m))
          (Problem.preds t.problem node);
        List.iter
          (fun (e : Problem.edge) ->
            let d = t.place.(e.dst) in
            if d >= 0 then
              match
                route ~src:cluster ~dst:d
                  ~carried:(e.distance > 0 || same_circuit t e.src e.dst)
                  e.value
              with
              | Ok () -> ()
              | Error m -> raise (Blocked m))
          (Problem.succs t.problem node);
        (* Inlined {!update_cost} with contribution snapshots. *)
        let pg = Problem.pg t.problem in
        if t.cache_ii <> target_ii then begin
          sp.sp_full <-
            Some
              ( Array.copy t.node_util,
                Array.copy t.node_proj,
                Array.copy t.node_fanin );
          refresh_all t ~ii:target_ii
        end
        else
          List.iter
            (fun id ->
              if Pattern_graph.is_regular pg id then begin
                sp.sp_nodes <-
                  (id, t.node_util.(id), t.node_proj.(id), t.node_fanin.(id))
                  :: sp.sp_nodes;
                refresh_node t ~ii:target_ii (Pattern_graph.node pg id)
              end)
            !touched;
        t.cost_v <- Cost.score weights (aggregate t ~ii:target_ii);
        t.spec <- Some sp;
        Hca_obs.Obs.count "state.spec_apply" 1;
        Ok ()
      with Blocked m ->
        rollback ();
        Hca_obs.Obs.count "state.spec_reject" 1;
        Error m
    end

let undo_speculation t =
  match t.spec with
  | None -> invalid_arg "State.undo_speculation: nothing in flight"
  | Some sp ->
      (match sp.sp_full with
      | Some (u, p, f) ->
          Array.blit u 0 t.node_util 0 (Array.length u);
          Array.blit p 0 t.node_proj 0 (Array.length p);
          Array.blit f 0 t.node_fanin 0 (Array.length f)
      | None ->
          List.iter
            (fun (id, u, p, f) ->
              t.node_util.(id) <- u;
              t.node_proj.(id) <- p;
              t.node_fanin.(id) <- f)
            sp.sp_nodes);
      t.cache_ii <- sp.sp_cache_ii;
      t.cost_v <- sp.sp_cost_v;
      t.extra_cost <- sp.sp_extra;
      t.carried_cuts <- sp.sp_carried;
      t.place.(sp.sp_node) <- -1;
      t.members.(sp.sp_cluster) <- sp.sp_members;
      t.dem.(sp.sp_cluster) <- sp.sp_dem;
      t.assigned <- t.assigned - 1;
      Copy_flow.undo_to_mark t.flow sp.sp_fmark;
      t.spec <- None;
      Hca_obs.Obs.count "state.spec_undo" 1

let force_assign t ~node ~cluster ~ii =
  let nd = Problem.node t.problem node in
  if t.place.(node) >= 0 then Error "node already assigned"
  else if not (Pattern_graph.is_regular (Problem.pg t.problem) cluster) then
    Error "target is not a regular cluster"
  else
    let capacity = (Pattern_graph.node (Problem.pg t.problem) cluster).capacity in
    let demand' = Resource.add t.dem.(cluster) nd.demand in
    if not (Resource.fits ~demand:demand' ~capacity ~ii) then
      Error "resource table exhausted under target II"
    else begin
      let t' = clone t in
      t'.place.(node) <- cluster;
      t'.members.(cluster) <- insert_sorted node t'.members.(cluster);
      t'.dem.(cluster) <- demand';
      t'.assigned <- t'.assigned + 1;
      t'.cache_ii <- -1;
      let blocked = ref [] in
      let route ~src ~dst ~carried value =
        if src <> dst then
          if Copy_flow.can_add t'.flow ~src ~dst then begin
            Copy_flow.add_copy t'.flow ~src ~dst value;
            if carried then t'.carried_cuts <- t'.carried_cuts + 1
          end
          else blocked := (value, src, dst) :: !blocked
      in
      List.iter
        (fun (e : Problem.edge) ->
          let s = t'.place.(e.src) in
          if s >= 0 then
            route ~src:s ~dst:cluster
              ~carried:(e.distance > 0 || same_circuit t e.src e.dst)
              e.value)
        (Problem.preds t.problem node);
      List.iter
        (fun (e : Problem.edge) ->
          let d = t'.place.(e.dst) in
          if d >= 0 then
            route ~src:cluster ~dst:d
              ~carried:(e.distance > 0 || same_circuit t e.src e.dst)
              e.value)
        (Problem.succs t.problem node);
      Ok (t', List.rev !blocked)
    end

let add_forward t ~value ~via =
  t.dem.(via) <- Resource.add t.dem.(via) { Resource.alus = 1; ags = 0 };
  (* The Route Allocator mutates the flow behind our back as well; its
     commit always ends in a full [recompute_cost], so just mark the
     contribution caches stale. *)
  t.cache_ii <- -1;
  t.fwds <- (value, via) :: t.fwds

(* Transposition signature: everything that makes two partial solutions
   behave identically downstream — placement, routed flow, forwards,
   carried cuts and the (bit-exact) cost terms. *)
let signature t =
  let h = Hca_util.Sig_hash.create () in
  Hca_util.Sig_hash.add_int h t.assigned;
  Hca_util.Sig_hash.add_int h t.carried_cuts;
  Hca_util.Sig_hash.add_float h t.cost_v;
  Hca_util.Sig_hash.add_float h t.extra_cost;
  Hca_util.Sig_hash.add_int_array h t.place;
  Copy_flow.hash_into t.flow h;
  List.iter
    (fun (v, via) ->
      Hca_util.Sig_hash.add_int h v;
      Hca_util.Sig_hash.add_int h via)
    t.fwds;
  Hca_util.Sig_hash.value h

let equal a b =
  a.assigned = b.assigned
  && a.carried_cuts = b.carried_cuts
  && a.cost_v = b.cost_v
  && a.extra_cost = b.extra_cost
  && a.place = b.place
  && a.fwds = b.fwds
  && Copy_flow.equal a.flow b.flow

(* Test hook: {!equal} plus the derived structures ([members], [dem])
   and the incremental-cost caches, so the trail property test can
   assert a speculation round trip restores *every* field bit for
   bit. *)
let debug_identical a b =
  equal a b
  && a.members = b.members
  && a.dem = b.dem
  && a.cache_ii = b.cache_ii
  && a.node_util = b.node_util
  && a.node_proj = b.node_proj
  && a.node_fanin = b.node_fanin

let pp ppf t =
  Format.fprintf ppf "@[<v>state (%d/%d assigned, cost %.2f)" t.assigned
    (Problem.size t.problem) (cost t);
  Array.iteri
    (fun id c ->
      if c >= 0 then
        Format.fprintf ppf "@,  %s -> @%d"
          (Problem.node t.problem id).Problem.label c)
    t.place;
  Format.fprintf ppf "@]"
